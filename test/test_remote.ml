(* Remote cache tier suite: the HTTP codec's hostile-input catalog
   (every malformed, oversized, truncated or smuggling-shaped input
   must come back as a typed error, never an exception), the server's
   routing and verification gates over a real loopback socket, and the
   client's degradation ladder — timeouts, retries, garbled bodies,
   dead ports, the circuit breaker and its half-open probe — each of
   which must collapse into a plain local miss with the failure
   counted, never a crash, a hang, or a poisoned store. *)

module Http = Mclock_remote.Http
module Server = Mclock_remote.Server
module Client = Mclock_remote.Client
module Store = Mclock_explore.Store
module Metrics = Mclock_explore.Metrics
module Compiled = Mclock_sim.Compiled

let check = Alcotest.check
let fail = Alcotest.fail
let tech = Mclock_tech.Cmos08.t

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mclock-test-remote.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()
  end

let sample_key = String.make 32 'a'

let sample_metrics =
  {
    Metrics.power_mw = 2.5;
    area = 80000.0;
    latency_steps = 5;
    energy_per_computation_pj = 75.0;
    memory_cells = 9;
    mux_inputs = 10;
    functional_ok = true;
  }

let entry_bytes = Store.encode_entry ~key:sample_key sample_metrics

(* A real, decodable checkpoint blob (the codec requires genuine
   simulator state — garbage is exactly what must be rejected). *)
let checkpoint_blob =
  lazy
    (let w = Mclock_workloads.Facet.t in
     let schedule = Mclock_workloads.Workload.schedule w in
     let design =
       Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 2)
         ~name:"remote" schedule
     in
     let kernel = Compiled.compile tech design in
     let _, ck = Compiled.run_with_checkpoint ~seed:7 kernel ~iterations:3 in
     Compiled.Checkpoint.encode ck)

(* --- Parser helpers ---------------------------------------------------- *)

let parse s = Http.parse_request (Http.reader_of_string s)

let expect_error label outcome = function
  | Ok _ -> fail (label ^ ": hostile input parsed successfully")
  | Error e ->
      let tag =
        match e with
        | Http.Bad_request _ -> `Bad_request
        | Http.Method_not_allowed _ -> `Method_not_allowed
        | Http.Too_large _ -> `Too_large
        | Http.Timeout _ -> `Timeout
        | Http.Io _ -> `Io
      in
      if tag <> outcome then
        fail
          (Printf.sprintf "%s: wrong error class: %s" label
             (Http.error_to_string e))

(* --- Codec: well-formed input ------------------------------------------ *)

let test_parse_valid_get () =
  match parse "GET /v1/healthz HTTP/1.1\r\nHost: h\r\nX-A: b\r\n\r\n" with
  | Error e -> fail (Http.error_to_string e)
  | Ok rq ->
      check Alcotest.string "path" "/v1/healthz" rq.Http.rq_path;
      check Alcotest.string "body empty" "" rq.Http.rq_body;
      (match rq.Http.rq_meth with
      | Http.GET -> ()
      | _ -> fail "method not GET");
      (* Header names come out lowercased. *)
      check Alcotest.(option string) "header" (Some "b")
        (List.assoc_opt "x-a" rq.Http.rq_headers)

let test_parse_valid_put_body () =
  let body = "hello body" in
  let msg =
    Printf.sprintf "PUT /v1/entry/%s HTTP/1.1\r\ncontent-length: %d\r\n\r\n%s"
      sample_key (String.length body) body
  in
  match parse msg with
  | Error e -> fail (Http.error_to_string e)
  | Ok rq ->
      check Alcotest.string "body read exactly" body rq.Http.rq_body

(* --- Codec: the hostile-input catalog ---------------------------------- *)

let test_parse_garbage_request_line () =
  expect_error "binary garbage" `Bad_request
    (parse "\x00\x01\x02garbage\r\n\r\n");
  expect_error "two tokens" `Bad_request (parse "GET /x\r\n\r\n");
  expect_error "empty line" `Bad_request (parse "\r\n\r\n");
  expect_error "empty input" `Io (parse "")

let test_parse_unknown_method () =
  expect_error "POST" `Method_not_allowed
    (parse "POST /v1/stats HTTP/1.1\r\n\r\n");
  expect_error "DELETE" `Method_not_allowed
    (parse "DELETE /v1/entry/aa HTTP/1.1\r\n\r\n");
  (* Not-even-a-token methods are malformed, not merely unsupported. *)
  expect_error "lowercase junk" `Bad_request (parse "get /x HTTP/1.1\r\n\r\n")

let test_parse_bad_version () =
  expect_error "HTTP/2.0" `Bad_request (parse "GET /x HTTP/2.0\r\n\r\n");
  expect_error "junk version" `Bad_request (parse "GET /x POTATO\r\n\r\n")

let test_parse_bare_lf_rejected () =
  (* Bare-LF line endings are a request-smuggling classic; the codec
     takes CRLF only. *)
  expect_error "bare LF request line" `Bad_request
    (parse "GET /v1/healthz HTTP/1.1\nHost: h\n\n")

let test_parse_oversized_uri () =
  let uri = "/" ^ String.make 4096 'a' in
  expect_error "oversized URI" `Too_large
    (parse (Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" uri))

let test_parse_oversized_headers () =
  let big = String.make 9000 'x' in
  expect_error "oversized header line" `Too_large
    (parse (Printf.sprintf "GET /x HTTP/1.1\r\nh: %s\r\n\r\n" big));
  let many =
    String.concat ""
      (List.init 100 (fun i -> Printf.sprintf "h%d: v\r\n" i))
  in
  expect_error "too many headers" `Too_large
    (parse ("GET /x HTTP/1.1\r\n" ^ many ^ "\r\n"))

let test_parse_content_length_pathologies () =
  let put cl =
    parse
      (Printf.sprintf "PUT /v1/entry/aa HTTP/1.1\r\ncontent-length: %s\r\n\r\nx"
         cl)
  in
  expect_error "non-numeric" `Bad_request (put "one");
  expect_error "negative" `Bad_request (put "-1");
  expect_error "trailing junk" `Bad_request (put "1x");
  expect_error "absurd magnitude" `Bad_request
    (put "99999999999999999999999999");
  expect_error "over max_body" `Too_large (put "999999999");
  (* Duplicate, disagreeing Content-Length headers are the smuggling
     vector; even agreeing duplicates are rejected. *)
  expect_error "duplicate" `Bad_request
    (parse
       "PUT /v1/entry/aa HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: \
        1\r\n\r\nx")

let test_parse_truncated_body () =
  expect_error "body shorter than declared" `Io
    (parse
       (Printf.sprintf
          "PUT /v1/entry/%s HTTP/1.1\r\ncontent-length: 100\r\n\r\nshort"
          sample_key));
  expect_error "headers cut mid-stream" `Io
    (parse "GET /v1/healthz HTTP/1.1\r\nHost: h\r\n")

let test_parse_put_requires_content_length () =
  expect_error "PUT without content-length" `Bad_request
    (parse (Printf.sprintf "PUT /v1/entry/%s HTTP/1.1\r\n\r\n" sample_key))

let test_parse_url () =
  (match Http.parse_url "http://127.0.0.1:8090" with
  | Ok u ->
      check Alcotest.string "host" "127.0.0.1" u.Http.u_host;
      check Alcotest.int "port" 8090 u.Http.u_port;
      check Alcotest.string "prefix" "" u.Http.u_prefix
  | Error e -> fail e);
  (match Http.parse_url "http://cache.local/mclock/" with
  | Ok u ->
      check Alcotest.int "default port" 80 u.Http.u_port;
      check Alcotest.string "prefix normalized" "/mclock" u.Http.u_prefix
  | Error e -> fail e);
  List.iter
    (fun bad ->
      match Http.parse_url bad with
      | Ok _ -> fail (Printf.sprintf "junk URL %S parsed" bad)
      | Error _ -> ())
    [ "https://x"; "ftp://x"; "http://"; "http://:80"; "http://h:notaport";
      "not a url at all" ]

(* --- Server over a real loopback socket -------------------------------- *)

let with_server ?writable ~dir f =
  match Server.create ?writable ~dir () with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let get ?(timeout = 2.) srv path =
  match
    Http.request ~timeout ~host:"127.0.0.1" ~port:(Server.port srv)
      ~meth:Http.GET ~path ()
  with
  | Ok rs -> rs
  | Error e -> fail (Http.error_to_string e)

let test_server_healthz_stats_and_404 () =
  let dir = temp_dir () in
  with_server ~dir (fun srv ->
      check Alcotest.int "healthz" 200 (get srv "/v1/healthz").Http.rs_status;
      let stats = get srv "/v1/stats" in
      check Alcotest.int "stats" 200 stats.Http.rs_status;
      (match Mclock_lint.Json.parse stats.Http.rs_body with
      | Ok _ -> ()
      | Error e -> fail ("stats body is not JSON: " ^ e));
      check Alcotest.int "unknown route" 404 (get srv "/nope").Http.rs_status;
      check Alcotest.int "missing entry" 404
        (get srv ("/v1/entry/" ^ sample_key)).Http.rs_status);
  rm_rf dir

let test_server_traversal_keys_rejected () =
  let dir = temp_dir () in
  (* Plant a file outside the store dir that a traversal would reach. *)
  let secret = Filename.concat (Filename.dirname dir) "secret-outside" in
  Out_channel.with_open_bin secret (fun oc ->
      Out_channel.output_string oc "leak");
  with_server ~dir (fun srv ->
      List.iter
        (fun path ->
          check Alcotest.int (Printf.sprintf "%s -> 404" path) 404
            (get srv path).Http.rs_status)
        [
          "/v1/entry/../secret-outside";
          "/v1/entry/%2e%2e%2fsecret-outside";
          "/v1/entry/..";
          "/v1/entry/xyz";  (* not hex *)
          "/v1/entry/";
          "/v1/ckpt/../secret-outside";
        ]);
  Sys.remove secret;
  rm_rf dir

let test_server_serves_only_verified_entries () =
  let dir = temp_dir () in
  let store = Store.open_ ~dir () in
  Store.store store ~key:sample_key sample_metrics;
  let corrupt_key = String.make 32 'b' in
  Out_channel.with_open_bin (Store.entry_path store ~key:corrupt_key)
    (fun oc -> Out_channel.output_string oc "{ \"version\": 1, truncated");
  with_server ~dir (fun srv ->
      let rs = get srv ("/v1/entry/" ^ sample_key) in
      check Alcotest.int "valid entry served" 200 rs.Http.rs_status;
      (match Store.decode_entry ~key:sample_key rs.Http.rs_body with
      | Some m ->
          if not (Metrics.equal m sample_metrics) then
            fail "served entry decodes to different metrics"
      | None -> fail "served body fails verification");
      (* A corrupt on-disk file must look exactly like a miss. *)
      check Alcotest.int "corrupt entry is 404" 404
        (get srv ("/v1/entry/" ^ corrupt_key)).Http.rs_status;
      (* HEAD: status and length, no body bytes. *)
      match
        Http.request ~timeout:2. ~host:"127.0.0.1" ~port:(Server.port srv)
          ~meth:Http.HEAD ~path:("/v1/entry/" ^ sample_key) ()
      with
      | Error e -> fail (Http.error_to_string e)
      | Ok head ->
          check Alcotest.int "HEAD status" 200 head.Http.rs_status;
          check Alcotest.string "HEAD body empty" "" head.Http.rs_body;
          check Alcotest.(option string) "HEAD declares full length"
            (Some (string_of_int (String.length rs.Http.rs_body)))
            (List.assoc_opt "content-length" head.Http.rs_headers));
  rm_rf dir

let test_server_put_gates () =
  let ro_dir = temp_dir () in
  with_server ~dir:ro_dir (fun srv ->
      match
        Http.request ~timeout:2. ~host:"127.0.0.1" ~port:(Server.port srv)
          ~meth:Http.PUT ~path:("/v1/entry/" ^ sample_key) ~body:entry_bytes
          ()
      with
      | Error e -> fail (Http.error_to_string e)
      | Ok rs -> check Alcotest.int "read-only PUT" 403 rs.Http.rs_status);
  rm_rf ro_dir;
  let rw_dir = temp_dir () in
  with_server ~writable:true ~dir:rw_dir (fun srv ->
      let put path body =
        match
          Http.request ~timeout:2. ~host:"127.0.0.1" ~port:(Server.port srv)
            ~meth:Http.PUT ~path ~body ()
        with
        | Ok rs -> rs.Http.rs_status
        | Error e -> fail (Http.error_to_string e)
      in
      check Alcotest.int "valid PUT accepted" 200
        (put ("/v1/entry/" ^ sample_key) entry_bytes);
      check Alcotest.int "garbled entry PUT" 422
        (put ("/v1/entry/" ^ String.make 32 'c') "{ not an entry");
      check Alcotest.int "garbled ckpt PUT" 422
        (put ("/v1/ckpt/" ^ sample_key) "junk checkpoint bytes");
      (* What landed on disk is a verifiable entry under its key. *)
      let store = Store.open_ ~dir:rw_dir () in
      match Store.find store ~key:sample_key with
      | Some m ->
          if not (Metrics.equal m sample_metrics) then
            fail "stored entry decodes differently"
      | None -> fail "accepted PUT not readable from the store");
  rm_rf rw_dir

(* --- Client: read-through, verification, degradation ------------------- *)

let client ?timeout ?retries ?breaker_threshold ?breaker_cooldown ~url () =
  match Client.create ?timeout ?retries ?breaker_threshold ?breaker_cooldown
          ~url ()
  with
  | Ok c -> c
  | Error m -> fail m

let test_client_read_through_fill () =
  let remote_dir = temp_dir () in
  let local_dir = temp_dir () in
  let remote_store = Store.open_ ~dir:remote_dir () in
  Store.store remote_store ~key:sample_key sample_metrics;
  Store.store_checkpoint remote_store ~key:sample_key
    (Lazy.force checkpoint_blob);
  let local = Store.open_ ~dir:local_dir () in
  with_server ~dir:remote_dir (fun srv ->
      let c = client ~url:(Server.url srv) () in
      Store.set_remote local (Some (Client.tier c));
      (match Store.find local ~key:sample_key with
      | Some m ->
          if not (Metrics.equal m sample_metrics) then
            fail "remote-filled metrics differ"
      | None -> fail "remote entry not served through the tier");
      (match Store.find_checkpoint local ~key:sample_key with
      | Some blob -> (
          match Compiled.Checkpoint.decode blob with
          | Ok _ -> ()
          | Error e -> fail ("remote-filled checkpoint does not decode: " ^ e))
      | None -> fail "remote checkpoint not served through the tier");
      let s = Store.stats local in
      check Alcotest.int "entry fill counted" 1 s.Store.remote_fills;
      check Alcotest.int "ckpt fill counted" 1 s.Store.remote_ckpt_fills;
      check Alcotest.int "fill is a hit" 1 s.Store.hits);
  (* The server is now down; the fills must have landed locally. *)
  check Alcotest.bool "second find is purely local" true
    (Store.find local ~key:sample_key <> None);
  check Alcotest.bool "second ckpt find is purely local" true
    (Store.find_checkpoint local ~key:sample_key <> None);
  rm_rf remote_dir;
  rm_rf local_dir

(* A canned server: accepts one connection at a time, drains a little
   request, answers with exactly [response] (or stalls when [None]),
   closes.  The shape every lying or broken peer takes in this suite. *)
let hostile_server response =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listener 8;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let running = ref true in
  let th =
    Thread.create
      (fun () ->
        while !running do
          match Unix.accept listener with
          | fd, _ ->
              (try
                 let buf = Bytes.create 4096 in
                 (try ignore (Unix.read fd buf 0 4096)
                  with Unix.Unix_error (_, _, _) -> ());
                 (match response with
                 | Some s -> (
                     try
                       ignore (Unix.write_substring fd s 0 (String.length s))
                     with Unix.Unix_error (_, _, _) -> ())
                 | None -> Thread.delay 0.6);
                 Unix.close fd
               with _ -> ())
          | exception Unix.Unix_error (_, _, _) -> ()
        done)
      ()
  in
  let stop () =
    running := false;
    (try Unix.shutdown listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
    Thread.join th
  in
  (port, stop)

let test_client_garbled_200_never_pollutes () =
  (* A 200 whose body is not a verifiable entry: fetch must say None,
     count an error, and the local store must stay empty. *)
  let port, stop =
    hostile_server
      (Some
         "HTTP/1.1 200 OK\r\ncontent-length: 12\r\nconnection: \
          close\r\n\r\nnot an entry")
  in
  Fun.protect ~finally:stop (fun () ->
      let local_dir = temp_dir () in
      let local = Store.open_ ~dir:local_dir () in
      let c =
        client ~timeout:1. ~retries:0
          ~url:(Printf.sprintf "http://127.0.0.1:%d" port) ()
      in
      Store.set_remote local (Some (Client.tier c));
      check Alcotest.bool "garbled body is a miss" true
        (Store.find local ~key:sample_key = None);
      let cs = Client.stats c in
      check Alcotest.int "error counted" 1 cs.Client.remote_errors;
      check Alcotest.int "no hit counted" 0 cs.Client.remote_hits;
      check Alcotest.bool "nothing written locally" false
        (Sys.file_exists (Store.entry_path local ~key:sample_key));
      rm_rf local_dir)

let test_client_truncated_body_is_miss () =
  (* The peer declares 100 bytes and drops the connection after 5. *)
  let port, stop =
    hostile_server
      (Some "HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\nshort")
  in
  Fun.protect ~finally:stop (fun () ->
      let c =
        client ~timeout:1. ~retries:0
          ~url:(Printf.sprintf "http://127.0.0.1:%d" port) ()
      in
      check Alcotest.bool "mid-body drop is a miss" true
        (Client.fetch c ~kind:`Entry ~key:sample_key = None);
      check Alcotest.int "error counted" 1
        (Client.stats c).Client.remote_errors)

let test_client_timeout_bounded () =
  (* A peer that accepts and never answers must cost one timeout, not
     a hang. *)
  let port, stop = hostile_server None in
  Fun.protect ~finally:stop (fun () ->
      let c =
        client ~timeout:0.2 ~retries:0
          ~url:(Printf.sprintf "http://127.0.0.1:%d" port) ()
      in
      let t0 = Unix.gettimeofday () in
      check Alcotest.bool "stalled peer is a miss" true
        (Client.fetch c ~kind:`Entry ~key:sample_key = None);
      let dt = Unix.gettimeofday () -. t0 in
      if dt > 2.0 then
        fail (Printf.sprintf "timeout took %.2fs (deadline was 0.2s)" dt);
      check Alcotest.int "error counted" 1
        (Client.stats c).Client.remote_errors)

let test_client_breaker_opens_and_stops_trying () =
  (* Nobody listens on this port (bind-then-close reserves a dead one). *)
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close sock;
  let c =
    client ~timeout:0.5 ~retries:0 ~breaker_threshold:2
      ~url:(Printf.sprintf "http://127.0.0.1:%d" port) ()
  in
  check Alcotest.bool "first fetch misses" true
    (Client.fetch c ~kind:`Entry ~key:sample_key = None);
  check Alcotest.bool "second fetch misses" true
    (Client.fetch c ~kind:`Entry ~key:sample_key = None);
  let s = Client.stats c in
  check Alcotest.int "breaker tripped once" 1 s.Client.breaker_trips;
  check Alcotest.bool "breaker open" true s.Client.breaker_open;
  let attempts_frozen = s.Client.attempts in
  (* With the breaker open, further fetches are instant local misses
     that never touch the network. *)
  check Alcotest.bool "open-breaker fetch misses" true
    (Client.fetch c ~kind:`Entry ~key:sample_key = None);
  check Alcotest.int "no further network attempts" attempts_frozen
    (Client.stats c).Client.attempts

(* A garbled server trips the breaker; inside the cooldown nothing
   touches the network; after the cooldown exactly one half-open probe
   goes out, and — still failing — re-arms the cooldown rather than
   resuming the hammering. *)
let test_client_breaker_half_open_probe_recovers () =
  let port, stop =
    hostile_server
      (Some
         "HTTP/1.1 200 OK\r\ncontent-length: 7\r\nconnection: \
          close\r\n\r\ngarbage")
  in
  Fun.protect ~finally:stop (fun () ->
      let c =
        client ~timeout:1. ~retries:0 ~breaker_threshold:1
          ~breaker_cooldown:0.05
          ~url:(Printf.sprintf "http://127.0.0.1:%d" port) ()
      in
      check Alcotest.bool "first fetch misses" true
        (Client.fetch c ~kind:`Entry ~key:sample_key = None);
      check Alcotest.int "breaker tripped" 1
        (Client.stats c).Client.breaker_trips;
      let before = (Client.stats c).Client.attempts in
      (* Inside the cooldown: no probe, no network. *)
      check Alcotest.bool "inside cooldown: instant miss" true
        (Client.fetch c ~kind:`Entry ~key:sample_key = None);
      check Alcotest.int "inside cooldown: no attempt" before
        (Client.stats c).Client.attempts;
      Thread.delay 0.08;
      (* After the cooldown: exactly one half-open probe. *)
      check Alcotest.bool "probe still misses" true
        (Client.fetch c ~kind:`Entry ~key:sample_key = None);
      check Alcotest.int "probe made one attempt" (before + 1)
        (Client.stats c).Client.attempts;
      (* The failed probe re-armed the cooldown. *)
      check Alcotest.bool "breaker re-armed" true
        (Client.stats c).Client.breaker_open)

let test_client_push_roundtrip () =
  let remote_dir = temp_dir () in
  let local_dir = temp_dir () in
  (match Server.create ~writable:true ~dir:remote_dir () with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect ~finally:(fun () -> Server.stop srv) (fun () ->
          let local = Store.open_ ~dir:local_dir () in
          let c = client ~url:(Server.url srv) () in
          Store.set_remote local (Some (Client.tier ~push:true c));
          Store.store local ~key:sample_key sample_metrics;
          check Alcotest.int "store pushed" 1
            (Client.stats c).Client.remote_pushes;
          let remote_store = Store.open_ ~dir:remote_dir () in
          match Store.find remote_store ~key:sample_key with
          | Some m ->
              if not (Metrics.equal m sample_metrics) then
                fail "pushed entry decodes differently"
          | None -> fail "pushed entry absent from the server store"));
  rm_rf remote_dir;
  rm_rf local_dir

let test_client_push_denied_is_not_breaker_event () =
  let remote_dir = temp_dir () in
  let local_dir = temp_dir () in
  with_server ~dir:remote_dir (fun srv ->
      (* read-only server *)
      let local = Store.open_ ~dir:local_dir () in
      let c = client ~breaker_threshold:1 ~url:(Server.url srv) () in
      Store.set_remote local (Some (Client.tier ~push:true c));
      Store.store local ~key:sample_key sample_metrics;
      let s = Client.stats c in
      check Alcotest.int "denied push counted" 1 s.Client.push_errors;
      check Alcotest.int "no push recorded" 0 s.Client.remote_pushes;
      (* The server is alive; a 403 must not open the breaker. *)
      check Alcotest.bool "breaker still closed" false s.Client.breaker_open;
      (* The local write itself succeeded regardless. *)
      check Alcotest.bool "local store intact" true
        (Store.find local ~key:sample_key <> None));
  rm_rf remote_dir;
  rm_rf local_dir

(* --- End-to-end engine differential ------------------------------------ *)

let test_engine_remote_warm_differential () =
  (* The acceptance criterion in miniature: a cold local exploration,
     then an empty store backed by a loopback server over the first
     store — byte-identical frontier, zero simulations; then the same
     against the dead port — byte-identical again, all local. *)
  let w = Mclock_workloads.Facet.t in
  let graph = Mclock_workloads.Workload.graph w in
  let constraints = w.Mclock_workloads.Workload.constraints in
  let explore ~cache () =
    Mclock_exec.Pool.with_pool ~jobs:1 (fun pool ->
        Mclock_explore.Engine.explore ~pool ~cache ~seed:42 ~iterations:60
          ~max_clocks:2 ~name:"facet" ~sched_constraints:constraints graph)
  in
  let frontier r =
    Mclock_lint.Json.to_string (Mclock_explore.Engine.frontier_json r)
  in
  let src_dir = temp_dir () in
  let cold = explore ~cache:(Store.open_ ~dir:src_dir ()) () in
  let dst_dir = temp_dir () in
  let dead_url = ref "" in
  with_server ~dir:src_dir (fun srv ->
      dead_url := Server.url srv;
      let c = client ~url:(Server.url srv) () in
      let dst = Store.open_ ~dir:dst_dir () in
      Store.set_remote dst (Some (Client.tier c));
      let warm = explore ~cache:dst () in
      check Alcotest.string "remote-warm frontier byte-identical"
        (frontier cold) (frontier warm);
      check Alcotest.int "remote-warm simulated nothing" 0
        warm.Mclock_explore.Engine.stats.Mclock_explore.Engine.simulated;
      check Alcotest.bool "remote hits recorded" true
        ((Client.stats c).Client.remote_hits > 0));
  (* Server stopped: same URL, fresh store — everything re-simulates
     locally behind the failing tier. *)
  let deg_dir = temp_dir () in
  let c = client ~timeout:0.5 ~retries:0 ~breaker_threshold:1 ~url:!dead_url () in
  let deg = Store.open_ ~dir:deg_dir () in
  Store.set_remote deg (Some (Client.tier c));
  let degraded = explore ~cache:deg () in
  check Alcotest.string "degraded frontier byte-identical" (frontier cold)
    (frontier degraded);
  check Alcotest.bool "degraded errors counted" true
    ((Client.stats c).Client.remote_errors > 0);
  rm_rf src_dir;
  rm_rf dst_dir;
  rm_rf deg_dir

let suite =
  [
    ("parse valid GET", `Quick, test_parse_valid_get);
    ("parse valid PUT body", `Quick, test_parse_valid_put_body);
    ("parse garbage request line", `Quick, test_parse_garbage_request_line);
    ("parse unknown method", `Quick, test_parse_unknown_method);
    ("parse bad version", `Quick, test_parse_bad_version);
    ("parse bare LF rejected", `Quick, test_parse_bare_lf_rejected);
    ("parse oversized URI", `Quick, test_parse_oversized_uri);
    ("parse oversized headers", `Quick, test_parse_oversized_headers);
    ( "parse content-length pathologies",
      `Quick,
      test_parse_content_length_pathologies );
    ("parse truncated body", `Quick, test_parse_truncated_body);
    ( "parse PUT requires content-length",
      `Quick,
      test_parse_put_requires_content_length );
    ("parse url", `Quick, test_parse_url);
    ("server healthz/stats/404", `Quick, test_server_healthz_stats_and_404);
    ("server traversal keys", `Quick, test_server_traversal_keys_rejected);
    ( "server serves only verified entries",
      `Quick,
      test_server_serves_only_verified_entries );
    ("server put gates", `Quick, test_server_put_gates);
    ("client read-through fill", `Quick, test_client_read_through_fill);
    ( "client garbled 200 never pollutes",
      `Quick,
      test_client_garbled_200_never_pollutes );
    ("client truncated body", `Quick, test_client_truncated_body_is_miss);
    ("client timeout bounded", `Quick, test_client_timeout_bounded);
    ("client breaker opens", `Quick, test_client_breaker_opens_and_stops_trying);
    ( "client breaker half-open probe",
      `Quick,
      test_client_breaker_half_open_probe_recovers );
    ("client push roundtrip", `Quick, test_client_push_roundtrip);
    ( "client push denied not breaker",
      `Quick,
      test_client_push_denied_is_not_breaker_event );
    ( "engine remote-warm differential",
      `Quick,
      test_engine_remote_warm_differential );
  ]
