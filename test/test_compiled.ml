(* Differential tests for the compiled simulation kernel: it must be
   charge-for-charge identical to the reference interpreter — same
   energy, same per-(component, category) activity cells, same
   iteration outputs — across the workload catalog, both allocators,
   and several batch sizes; plus VCD/observer parity and the loud
   failure on out-of-range mux selects. *)

open Mclock_core
open Mclock_rtl
module B = Mclock_util.Bitvec
module Sim = Mclock_sim.Simulator
module Compiled = Mclock_sim.Compiled
module Activity = Mclock_sim.Activity
module Var = Mclock_dfg.Var

let check = Alcotest.check
let fail = Alcotest.fail
let tech = Mclock_tech.Cmos08.t
let env_equal = Var.Map.equal B.equal
let envs_equal = List.equal env_equal

let assert_identical label (r : Sim.result) (c : Sim.result) =
  check Alcotest.int (label ^ ": cycles") r.Sim.cycles c.Sim.cycles;
  if not (Float.equal r.Sim.energy_pj c.Sim.energy_pj) then
    fail
      (Printf.sprintf "%s: energy %.17g (reference) vs %.17g (compiled)" label
         r.Sim.energy_pj c.Sim.energy_pj);
  if not (Float.equal r.Sim.power_mw c.Sim.power_mw) then
    fail (label ^ ": power differs");
  if not (Activity.equal_cells r.Sim.activity c.Sim.activity) then
    fail (label ^ ": per-(component, category) activity differs");
  if not (envs_equal r.Sim.inputs c.Sim.inputs) then
    fail (label ^ ": input streams differ");
  if not (envs_equal r.Sim.outputs c.Sim.outputs) then
    fail (label ^ ": outputs differ")

(* Catalog x both conventional styles x both allocators at n in
   {1, 2, 4}, each at 1, 2 and 4 computations. *)
let methods =
  [
    Flow.Conventional_non_gated;
    Flow.Conventional_gated;
    Flow.Integrated 1;
    Flow.Integrated 2;
    Flow.Integrated 4;
    Flow.Split 1;
    Flow.Split 2;
    Flow.Split 4;
  ]

let test_differential workload method_ () =
  let schedule = Mclock_workloads.Workload.schedule workload in
  let design = Flow.synthesize ~method_ ~name:"diff" schedule in
  let kernel = Compiled.compile tech design in
  List.iter
    (fun iterations ->
      let label =
        Printf.sprintf "%s/%s/n=%d" workload.Mclock_workloads.Workload.name
          (Flow.method_label method_) iterations
      in
      let r = Sim.run ~seed:97 tech design ~iterations in
      let c = Compiled.run ~seed:97 kernel ~iterations in
      assert_identical label r c)
    [ 1; 2; 4 ]

let differential_tests =
  List.concat_map
    (fun w ->
      List.map
        (fun m ->
          ( Printf.sprintf "compiled = reference: %s / %s"
              w.Mclock_workloads.Workload.name (Flow.method_label m),
            `Quick,
            test_differential w m ))
        methods)
    Mclock_workloads.Catalog.all

(* A compiled design is reusable: one [compile], many seeds, each
   matching a fresh reference run. *)
let test_compile_once_many_seeds () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Biquad.t in
  let design = Flow.synthesize ~method_:(Flow.Integrated 3) ~name:"reuse" s in
  let kernel = Compiled.compile tech design in
  List.iter
    (fun seed ->
      let r = Sim.run ~seed tech design ~iterations:8 in
      let c = Compiled.run ~seed kernel ~iterations:8 in
      assert_identical (Printf.sprintf "seed %d" seed) r c)
    [ 1; 42; 1234 ]

(* Explicit stimulus takes the same path through both kernels. *)
let test_stimulus_parity () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design = Flow.synthesize ~method_:(Flow.Split 2) ~name:"stim" s in
  let probe = Sim.run ~seed:7 tech design ~iterations:6 in
  let stimulus = probe.Sim.inputs in
  let r = Sim.run ~stimulus tech design ~iterations:6 in
  let c = Compiled.run ~stimulus (Compiled.compile tech design) ~iterations:6 in
  assert_identical "stimulus" r c;
  if not (envs_equal r.Sim.inputs stimulus) then fail "stimulus not echoed"

(* Seeded VCD parity: the trace streams must be byte-identical. *)
let test_vcd_parity () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design = Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"vcdp" s in
  let capture run =
    let vcd = Mclock_sim.Vcd.create () in
    ignore (run ~trace:{ Sim.vcd; max_cycles = 60 });
    Mclock_sim.Vcd.contents vcd
  in
  let reference =
    capture (fun ~trace -> Sim.run ~seed:11 ~trace tech design ~iterations:5)
  in
  let kernel = Compiled.compile tech design in
  let compiled =
    capture (fun ~trace -> Compiled.run ~seed:11 ~trace kernel ~iterations:5)
  in
  check Alcotest.string "identical VCD" reference compiled

(* Seeded observer parity: every component value at the end of every
   cycle, plus the step/phase bookkeeping. *)
let test_observer_parity () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Hal.t in
  let design = Flow.synthesize ~method_:(Flow.Split 2) ~name:"obsp" s in
  let comp_ids =
    List.map Comp.id (Datapath.comps (Design.datapath design))
  in
  let capture run =
    let log = ref [] in
    let observer o =
      log :=
        ( o.Sim.obs_cycle,
          o.Sim.obs_step,
          o.Sim.obs_phase,
          List.map (fun id -> B.to_int (o.Sim.obs_value id)) comp_ids )
        :: !log
    in
    ignore (run ~observer);
    List.rev !log
  in
  let reference =
    capture (fun ~observer -> Sim.run ~seed:3 ~observer tech design ~iterations:4)
  in
  let kernel = Compiled.compile tech design in
  let compiled =
    capture (fun ~observer -> Compiled.run ~seed:3 ~observer kernel ~iterations:4)
  in
  if reference <> compiled then fail "observer streams differ"

(* A control word selecting a nonexistent mux choice fails loudly in
   both kernels: the interpreter at the offending cycle, the compiler
   at compile time. *)
let bad_select_design () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let m =
    Datapath.add_mux dp ~name:"m" ~phase:1
      ~choices:[| Comp.From_comp a; Comp.From_const 1 |]
  in
  let r =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp m) ~gated:false ~holds:[]
  in
  Datapath.set_output dp (Var.v "y") (Comp.From_comp r);
  let control =
    Control.create
      [ { Control.selects = [ (m, 5) ]; loads = [ r ]; alu_ops = [] } ]
  in
  Design.create ~name:"bad" ~behaviour:"bad" ~datapath:dp ~control
    ~clock:(Clock.single ~frequency:50e6)
    ~style:Design.conventional_style
    ~input_ports:[ (Var.v "a", a) ]
    ~output_taps:
      [ { Design.var = Var.v "y"; source = Comp.From_comp r; ready_step = 1 } ]

let test_bad_select_raises () =
  let design = bad_select_design () in
  (match Sim.run tech design ~iterations:1 with
  | _ -> fail "reference accepted an out-of-range mux select"
  | exception Invalid_argument _ -> ());
  match Compiled.compile tech design with
  | _ -> fail "compiler accepted an out-of-range mux select"
  | exception Invalid_argument _ -> ()

let suite =
  differential_tests
  @ [
      ("compile once, many seeds", `Quick, test_compile_once_many_seeds);
      ("stimulus parity", `Quick, test_stimulus_parity);
      ("vcd parity", `Quick, test_vcd_parity);
      ("observer parity", `Quick, test_observer_parity);
      ("out-of-range mux select raises", `Quick, test_bad_select_raises);
    ]
