(* Property-based tests (QCheck) on the core data structures and
   invariants: bit-vector algebra, left-edge optimality, clock
   non-overlap, partition arithmetic, schedulers, transfers, and the
   full allocation flow on random scheduled DFGs. *)

open Mclock_dfg
module B = Mclock_util.Bitvec
module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Generators ------------------------------------------------------------ *)

let bitvec_gen width = Q.map (fun v -> B.create ~width v) Q.small_nat

let bitvec_pair width =
  Q.pair (bitvec_gen width) (bitvec_gen width)

(* A random scheduled DFG via the layered generator. *)
let dfg_gen =
  let gen seed =
    let rng = Mclock_util.Rng.create seed in
    let spec =
      {
        Generator.name = "prop";
        layers = 2 + Mclock_util.Rng.int rng 4;
        width = 1 + Mclock_util.Rng.int rng 4;
        num_inputs = 2 + Mclock_util.Rng.int rng 3;
        ops = [ Op.Add; Op.Sub; Op.Mul; Op.And; Op.Xor ];
      }
    in
    Generator.generate rng spec
  in
  Q.map gen Q.small_nat

let schedule_of r = Mclock_sched.Schedule.create r.Generator.graph r.Generator.steps

(* --- Bitvec algebra ---------------------------------------------------------- *)

let prop_add_commutative =
  Q.Test.make ~name:"bitvec add commutative" ~count:200 (bitvec_pair 6)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_add_associative =
  Q.Test.make ~name:"bitvec add associative" ~count:200
    (Q.triple (bitvec_gen 6) (bitvec_gen 6) (bitvec_gen 6))
    (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)))

let prop_sub_inverse =
  Q.Test.make ~name:"bitvec a+b-b = a" ~count:200 (bitvec_pair 6) (fun (a, b) ->
      B.equal a (B.sub (B.add a b) b))

let prop_xor_involution =
  Q.Test.make ~name:"bitvec xor involution" ~count:200 (bitvec_pair 6)
    (fun (a, b) -> B.equal a (B.logxor (B.logxor a b) b))

let prop_not_involution =
  Q.Test.make ~name:"bitvec not involution" ~count:200 (bitvec_gen 6) (fun a ->
      B.equal a (B.lognot (B.lognot a)))

let prop_hamming_symmetric =
  Q.Test.make ~name:"hamming symmetric" ~count:200 (bitvec_pair 6)
    (fun (a, b) -> B.hamming a b = B.hamming b a)

let prop_hamming_triangle =
  Q.Test.make ~name:"hamming triangle inequality" ~count:200
    (Q.triple (bitvec_gen 6) (bitvec_gen 6) (bitvec_gen 6))
    (fun (a, b, c) -> B.hamming a c <= B.hamming a b + B.hamming b c)

let prop_hamming_zero_iff_equal =
  Q.Test.make ~name:"hamming 0 iff equal" ~count:200 (bitvec_pair 6)
    (fun (a, b) -> B.hamming a b = 0 = B.equal a b)

let prop_mul_matches_int =
  Q.Test.make ~name:"mul matches int arithmetic" ~count:200 (bitvec_pair 5)
    (fun (a, b) ->
      B.to_int (B.mul a b) = B.to_int a * B.to_int b land ((1 lsl 5) - 1))

(* --- Left-edge --------------------------------------------------------------- *)

let interval_list_gen =
  let itv =
    Q.map
      (fun (lo, len) -> Mclock_util.Interval.make lo (lo + (len mod 8)))
      (Q.pair Q.small_nat Q.small_nat)
  in
  Q.list_of_size (Q.Gen.int_range 1 30) itv

let max_overlap_depth intervals =
  let points =
    List.concat_map
      (fun i -> [ Mclock_util.Interval.lo i; Mclock_util.Interval.hi i ])
      intervals
  in
  List.fold_left
    (fun acc p ->
      max acc
        (List.length
           (List.filter (fun i -> Mclock_util.Interval.contains i p) intervals)))
    0 points

let prop_left_edge_tracks_disjoint =
  Q.Test.make ~name:"left-edge tracks are disjoint" ~count:100 interval_list_gen
    (fun intervals ->
      let tracks = Mclock_util.Interval.left_edge_pack ~key:Fun.id intervals in
      List.for_all
        (fun track ->
          let rec ok = function
            | a :: (b :: _ as rest) ->
                Mclock_util.Interval.disjoint a b && ok rest
            | [ _ ] | [] -> true
          in
          ok track)
        tracks)

let prop_left_edge_optimal =
  (* For interval graphs the left-edge algorithm is optimal: track
     count equals the maximum overlap depth. *)
  Q.Test.make ~name:"left-edge is optimal" ~count:100 interval_list_gen
    (fun intervals ->
      let tracks = Mclock_util.Interval.left_edge_pack ~key:Fun.id intervals in
      List.length tracks = max_overlap_depth intervals)

let prop_left_edge_preserves_items =
  Q.Test.make ~name:"left-edge loses nothing" ~count:100 interval_list_gen
    (fun intervals ->
      let tracks = Mclock_util.Interval.left_edge_pack ~key:Fun.id intervals in
      Mclock_util.List_ext.sum_by List.length tracks = List.length intervals)

(* --- Clock ------------------------------------------------------------------- *)

let prop_clock_non_overlapping =
  Q.Test.make ~name:"phase clocks never overlap" ~count:50
    Q.(int_range 1 10)
    (fun n ->
      Mclock_rtl.Clock.non_overlapping
        (Mclock_rtl.Clock.create ~phases:n ~frequency:1e6))

let prop_clock_every_cycle_has_a_phase =
  Q.Test.make ~name:"every cycle belongs to exactly one phase" ~count:100
    Q.(pair (int_range 1 8) (int_range 1 100))
    (fun (n, cycle) ->
      let c = Mclock_rtl.Clock.create ~phases:n ~frequency:1e6 in
      let p = Mclock_rtl.Clock.phase_of_cycle c cycle in
      p >= 1 && p <= n)

(* --- Partition arithmetic ------------------------------------------------------ *)

let prop_partition_roundtrip =
  Q.Test.make ~name:"partition local/global roundtrip" ~count:200
    Q.(pair (int_range 1 8) (int_range 1 100))
    (fun (n, t) ->
      let open Mclock_core in
      let p = Partition.of_step ~n t in
      let l = Partition.local_of_global ~n t in
      Partition.global_of_local ~n ~partition:p l = t)

let prop_partition_counts =
  Q.Test.make ~name:"partition step counts sum to T" ~count:100
    Q.(pair (int_range 1 6) (int_range 1 40))
    (fun (n, num_steps) ->
      let open Mclock_core in
      Mclock_util.List_ext.sum_by
        (fun p -> Partition.local_steps ~n ~num_steps p)
        (Mclock_util.List_ext.range 1 n)
      = num_steps)

(* --- Schedulers ------------------------------------------------------------------ *)

let prop_asap_at_most_alap =
  Q.Test.make ~name:"asap <= alap per node" ~count:40 dfg_gen (fun r ->
      let g = r.Generator.graph in
      let asap = Mclock_sched.Asap.steps g in
      let alap = Mclock_sched.Alap.steps g in
      List.for_all2 (fun (_, a) (_, l) -> a <= l) asap alap)

let prop_asap_is_valid =
  Q.Test.make ~name:"asap is a valid schedule" ~count:40 dfg_gen (fun r ->
      ignore (Mclock_sched.Asap.run r.Generator.graph);
      true)

let prop_force_directed_within_deadline =
  Q.Test.make ~name:"force-directed stays within deadline" ~count:20 dfg_gen
    (fun r ->
      let g = r.Generator.graph in
      let deadline = Mclock_sched.Alap.critical_path_length g + 2 in
      let s = Mclock_sched.Force_directed.run ~deadline g in
      Mclock_sched.Schedule.num_steps s <= deadline)

let prop_list_sched_constraint_held =
  Q.Test.make ~name:"list scheduling respects bounds" ~count:30 dfg_gen (fun r ->
      let g = r.Generator.graph in
      let s = Mclock_sched.List_sched.run ~constraints:[ (Op.Mul, 1); (Op.Add, 2) ] g in
      List.for_all
        (fun step ->
          let nodes = Mclock_sched.Schedule.nodes_at s step in
          let count op = List.length (List.filter (fun n -> Op.equal (Node.op n) op) nodes) in
          count Op.Mul <= 1 && count Op.Add <= 2)
        (Mclock_util.List_ext.range 1 (Mclock_sched.Schedule.num_steps s)))

(* --- Transfers -------------------------------------------------------------------- *)

let prop_transfer_unifies_operand_partitions =
  Q.Test.make ~name:"transfers unify stored-operand partitions" ~count:30
    (Q.pair dfg_gen Q.(int_range 2 4))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let p = Transfer.insert (Lifetime.analyze ~n s) in
      List.for_all
        (fun node ->
          let stored_partitions =
            List.filter_map
              (fun src ->
                match src with
                | Lifetime.S_const _ -> None
                | Lifetime.S_var v ->
                    let u = Lifetime.usage p v in
                    if u.Lifetime.is_input then None
                    else Some u.Lifetime.partition)
              (Node.Map.find (Node.id node) p.Lifetime.node_operands)
          in
          match Mclock_util.List_ext.dedup ~compare:Int.compare stored_partitions with
          | [] | [ _ ] -> true
          | _ :: _ :: _ -> false)
        (Graph.nodes (Mclock_sched.Schedule.graph s)))

let prop_transfer_steps_legal =
  Q.Test.make ~name:"transfer steps precede consumers, follow writers" ~count:30
    (Q.pair dfg_gen Q.(int_range 2 4))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let p = Transfer.insert (Lifetime.analyze ~n s) in
      List.for_all
        (fun tr ->
          let src = Lifetime.usage p tr.Lifetime.t_src in
          let dest = Lifetime.usage p tr.Lifetime.t_dest in
          src.Lifetime.write_step < tr.Lifetime.t_step
          && List.for_all (fun r -> r > tr.Lifetime.t_step) dest.Lifetime.read_steps
          && Partition.of_step ~n tr.Lifetime.t_step = tr.Lifetime.t_partition)
        p.Lifetime.transfers)

(* --- Register allocation -------------------------------------------------------------- *)

let prop_reg_alloc_total =
  Q.Test.make ~name:"every stored variable gets exactly one class" ~count:30
    (Q.pair dfg_gen Q.(int_range 1 3))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let p = Transfer.insert (Lifetime.analyze ~n s) in
      let classes = Reg_alloc.allocate ~kind:Mclock_tech.Library.Latch p in
      List.for_all
        (fun u ->
          let holders =
            List.filter
              (fun rc -> List.exists (Var.equal u.Lifetime.var) rc.Reg_alloc.rc_vars)
              classes
          in
          List.length holders = 1)
        (Lifetime.stored_usages p))

(* --- End-to-end: random DFG through the integrated flow -------------------------------- *)

let prop_integrated_flow_functional =
  Q.Test.make ~name:"integrated flow is functionally correct" ~count:10
    (Q.pair dfg_gen Q.(int_range 1 3))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let design = Integrated.allocate ~n ~name:"prop" s in
      let report =
        Mclock_sim.Verify.run ~seed:99 ~iterations:8 Mclock_tech.Cmos08.t design
          r.Generator.graph
      in
      Mclock_sim.Verify.ok report)

let prop_integrated_flow_checks_clean =
  Q.Test.make ~name:"integrated flow passes structural checks" ~count:10
    (Q.pair dfg_gen Q.(int_range 1 3))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let design = Integrated.allocate ~n ~name:"prop" s in
      List.for_all
        (fun g ->
          not
            (List.mem g.Mclock_lint.Diagnostic.code
               [ "MC001"; "MC002"; "MC003"; "MC004"; "MC005" ]))
        (Mclock_lint.Lint.design design))

let prop_split_flow_functional =
  Q.Test.make ~name:"split flow is functionally correct" ~count:8
    (Q.pair dfg_gen Q.(int_range 2 3))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let design = Split_alloc.allocate ~n ~name:"prop" s in
      let report =
        Mclock_sim.Verify.run ~seed:13 ~iterations:8 Mclock_tech.Cmos08.t design
          r.Generator.graph
      in
      Mclock_sim.Verify.ok report)

let prop_resched_preserves_validity =
  Q.Test.make ~name:"rescheduling preserves validity and bound" ~count:20
    (Q.pair dfg_gen Q.(int_range 2 4))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let b = Resched.balance ~n s in
      Resched.partition_alu_bound ~n b <= Resched.partition_alu_bound ~n s)

let prop_mux_aware_binding_functional =
  Q.Test.make ~name:"mux-aware binding is functionally correct" ~count:8
    (Q.pair dfg_gen Q.(int_range 1 3))
    (fun (r, n) ->
      let open Mclock_core in
      let s = schedule_of r in
      let result = Integrated.run ~binding:`Mux_aware ~n ~name:"prop" s in
      let report =
        Mclock_sim.Verify.run ~seed:21 ~iterations:8 Mclock_tech.Cmos08.t
          result.Integrated.design r.Generator.graph
      in
      Mclock_sim.Verify.ok report)

let prop_conventional_flow_functional =
  Q.Test.make ~name:"conventional flow is functionally correct" ~count:10
    (Q.pair dfg_gen Q.bool)
    (fun (r, gated) ->
      let open Mclock_core in
      let s = schedule_of r in
      let design = Conventional.allocate ~gated ~name:"prop" s in
      let report =
        Mclock_sim.Verify.run ~seed:7 ~iterations:8 Mclock_tech.Cmos08.t design
          r.Generator.graph
      in
      Mclock_sim.Verify.ok report)

let suite =
  List.map to_alcotest
    [
      prop_add_commutative;
      prop_add_associative;
      prop_sub_inverse;
      prop_xor_involution;
      prop_not_involution;
      prop_hamming_symmetric;
      prop_hamming_triangle;
      prop_hamming_zero_iff_equal;
      prop_mul_matches_int;
      prop_left_edge_tracks_disjoint;
      prop_left_edge_optimal;
      prop_left_edge_preserves_items;
      prop_clock_non_overlapping;
      prop_clock_every_cycle_has_a_phase;
      prop_partition_roundtrip;
      prop_partition_counts;
      prop_asap_at_most_alap;
      prop_asap_is_valid;
      prop_force_directed_within_deadline;
      prop_list_sched_constraint_held;
      prop_transfer_unifies_operand_partitions;
      prop_transfer_steps_legal;
      prop_reg_alloc_total;
      prop_integrated_flow_functional;
      prop_integrated_flow_checks_clean;
      prop_split_flow_functional;
      prop_resched_preserves_validity;
      prop_mux_aware_binding_functional;
      prop_conventional_flow_functional;
    ]
