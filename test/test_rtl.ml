(* Unit tests for mclock_rtl: clocks, datapath wiring, controller,
   checkers, VHDL/DOT emitters. *)

open Mclock_dfg
open Mclock_rtl

let check = Alcotest.check
let fail = Alcotest.fail

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Clock ------------------------------------------------------------- *)

let test_clock_phase_of_cycle () =
  let c = Clock.create ~phases:3 ~frequency:10e6 in
  check Alcotest.(list int) "phases cycle" [ 1; 2; 3; 1; 2; 3 ]
    (List.map (Clock.phase_of_cycle c) (Mclock_util.List_ext.range 1 6))

let test_clock_single () =
  let c = Clock.single ~frequency:10e6 in
  check Alcotest.int "always phase 1" 1 (Clock.phase_of_cycle c 17)

let test_clock_phase_frequency () =
  let c = Clock.create ~phases:4 ~frequency:20e6 in
  check (Alcotest.float 1.) "f/4" 5e6 (Clock.phase_frequency c)

let test_clock_non_overlapping () =
  List.iter
    (fun n ->
      let c = Clock.create ~phases:n ~frequency:10e6 in
      check Alcotest.bool (Printf.sprintf "%d phases" n) true
        (Clock.non_overlapping c))
    [ 1; 2; 3; 4; 5; 8 ]

let test_clock_waveform_pulses () =
  let c = Clock.create ~phases:2 ~frequency:10e6 in
  check
    Alcotest.(list bool)
    "clk1 over 2 cycles"
    [ true; false; false; false ]
    (Clock.waveform c ~phase:1 ~cycles:2);
  check
    Alcotest.(list bool)
    "clk2 over 2 cycles"
    [ false; false; true; false ]
    (Clock.waveform c ~phase:2 ~cycles:2)

let test_clock_render () =
  let c = Clock.create ~phases:2 ~frequency:10e6 in
  let s = Clock.render_waveforms c ~cycles:4 in
  check Alcotest.bool "has CLK1 row" true (contains s "CLK1");
  check Alcotest.bool "has CLK2 row" true (contains s "CLK2")

let test_clock_invalid () =
  Alcotest.check_raises "0 phases" (Invalid_argument "Clock.create: phases must be >= 1")
    (fun () -> ignore (Clock.create ~phases:0 ~frequency:1e6))

(* --- Datapath ------------------------------------------------------------ *)

(* A minimal FB: in -> alu(+const) -> reg, plus a mux in front. *)
let tiny_datapath () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let b = Datapath.add_input dp (Var.v "b") in
  let mux =
    Datapath.add_mux dp ~name:"m" ~phase:1
      ~choices:[| Comp.From_comp a; Comp.From_comp b |]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp mux) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[ 1 ]
  in
  let reg =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "x" ]
  in
  Datapath.set_output dp (Var.v "x") (Comp.From_comp reg);
  (dp, a, b, mux, alu, reg)

let test_datapath_stats () =
  let dp, _, _, _, _, _ = tiny_datapath () in
  check Alcotest.int "mem cells" 1 (Datapath.memory_cells dp);
  check Alcotest.int "mux inputs" 2 (Datapath.mux_input_count dp);
  check Alcotest.string "alus" "1(+)" (Datapath.alu_inventory_string dp)

let test_datapath_validate_ok () =
  let dp, _, _, _, _, _ = tiny_datapath () in
  Datapath.validate dp

let test_datapath_combinational_order () =
  let dp, _, _, mux, alu, _ = tiny_datapath () in
  match List.map Comp.id (Datapath.combinational_order dp) with
  | [ m; a ] ->
      check Alcotest.int "mux first" mux m;
      check Alcotest.int "alu second" alu a
  | _ -> fail "expected 2 combinational comps"

let test_datapath_fanout () =
  let dp, a, _, _, alu, _ = tiny_datapath () in
  let fanout = Datapath.fanout_counts dp in
  check Alcotest.int "input a feeds mux" 1 (fanout a);
  check Alcotest.int "alu feeds reg" 1 (fanout alu)

let test_datapath_rejects_dangling () =
  let dp = Datapath.create ~width:4 in
  let _ =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp 99) ~gated:false ~holds:[]
  in
  try
    Datapath.validate dp;
    fail "dangling reference accepted"
  with Datapath.Invalid _ -> ()

let test_datapath_rejects_comb_cycle () =
  let dp = Datapath.create ~width:4 in
  (* alu1 <- alu2 <- alu1: a combinational loop. *)
  let alu1 =
    Datapath.add_alu dp ~name:"a1" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp 2) ~src_b:None ~isolated:false ~ops:[]
  in
  let _alu2 =
    Datapath.add_alu dp ~name:"a2" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp alu1) ~src_b:None ~isolated:false ~ops:[]
  in
  try
    Datapath.validate dp;
    fail "combinational cycle accepted"
  with Datapath.Invalid _ -> ()

let test_datapath_storage_feedback_allowed () =
  let dp = Datapath.create ~width:4 in
  (* alu <- reg <- alu: fine, feedback passes through storage. *)
  let alu =
    Datapath.add_alu dp ~name:"a" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp 2) ~src_b:None ~isolated:false ~ops:[]
  in
  let _reg =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp alu) ~gated:false ~holds:[]
  in
  Datapath.validate dp

let test_datapath_rejects_tiny_mux () =
  let dp = Datapath.create ~width:4 in
  try
    ignore (Datapath.add_mux dp ~name:"m" ~phase:1 ~choices:[| Comp.From_const 0 |]);
    fail "1-input mux accepted"
  with Datapath.Invalid _ -> ()

(* --- Control --------------------------------------------------------------- *)

let test_control_wraps () =
  let w1 = { Control.selects = [ (1, 0) ]; loads = [ 2 ]; alu_ops = [] } in
  let w2 = { Control.selects = []; loads = []; alu_ops = [] } in
  let c = Control.create [ w1; w2 ] in
  check Alcotest.int "period" 2 (Control.num_steps c);
  check Alcotest.(list int) "step 3 = step 1 loads" [ 2 ] (Control.loads c ~step:3);
  check Alcotest.(option int) "select wrap" (Some 0) (Control.select c ~step:3 ~mux:1)

let test_control_changes_between () =
  let w1 = { Control.selects = [ (1, 0); (2, 1) ]; loads = [ 5 ]; alu_ops = [ (9, Op.Add) ] } in
  let w2 = { Control.selects = [ (1, 1); (2, 1) ]; loads = [ 6 ]; alu_ops = [ (9, Op.Sub) ] } in
  (* changed: select of mux 1, load 5 off, load 6 on, op of 9 -> 4. *)
  check Alcotest.int "changes" 4 (Control.changes_between w1 w2)

let test_control_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Control.create: no control words")
    (fun () -> ignore (Control.create []))

(* --- Full designs (via the allocator) and checkers ------------------------- *)

let facet_design method_ =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  Mclock_core.Flow.synthesize ~method_ ~name:"facet_t" s

(* The historical Mclock_rtl.Check checkers live on as lint rules
   MC001-MC005; these tests exercise them through the lint entry
   point, filtered to the structural codes. *)
let lint_codes codes d =
  List.filter
    (fun g -> List.mem g.Mclock_lint.Diagnostic.code codes)
    (Mclock_lint.Lint.design d)

let structural_codes = [ "MC001"; "MC002"; "MC003"; "MC004"; "MC005" ]

let test_check_clean_designs () =
  List.iter
    (fun m ->
      let d = facet_design m in
      match lint_codes structural_codes d with
      | [] -> ()
      | vs ->
          fail
            (Fmt.str "%s: %s" (Mclock_core.Flow.method_label m)
               (Mclock_lint.Diagnostic.render vs)))
    [
      Mclock_core.Flow.Conventional_non_gated;
      Mclock_core.Flow.Conventional_gated;
      Mclock_core.Flow.Integrated 1;
      Mclock_core.Flow.Integrated 2;
      Mclock_core.Flow.Integrated 3;
      Mclock_core.Flow.Split 2;
      Mclock_core.Flow.Split 3;
    ]

let test_check_catches_partition_violation () =
  (* Hand-build a design whose storage loads off-phase. *)
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let reg =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Latch ~phase:2
      ~input:(Comp.From_comp a) ~gated:false ~holds:[ Var.v "x" ]
  in
  let control =
    Control.create
      [
        { Control.selects = []; loads = [ reg ]; alu_ops = [] };
        Control.empty_word;
      ]
  in
  let design =
    Design.create ~name:"bad" ~behaviour:"bad" ~datapath:dp ~control
      ~clock:(Clock.create ~phases:2 ~frequency:1e6)
      ~style:Design.multiclock_style ~input_ports:[ (Var.v "a", a) ]
      ~output_taps:[]
  in
  (* Loaded at step 1 (phase 1) but the latch is phase 2. *)
  check Alcotest.bool "violation found" true
    (lint_codes [ "MC002" ] design <> [])

let test_check_catches_latch_rw () =
  let dp = Datapath.create ~width:4 in
  let l1 =
    Datapath.add_storage dp ~name:"l1" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_const 0) ~gated:false ~holds:[ Var.v "x" ]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp l1) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[]
  in
  let l2 =
    Datapath.add_storage dp ~name:"l2" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "y" ]
  in
  (* Rewire l1's input to l2 so both have writers, then load both in
     the same step: l1 is read (through the ALU into l2) while written. *)
  (match Comp.kind (Datapath.comp dp l1) with
  | Comp.Storage s ->
      Datapath.replace_kind dp l1 (Comp.Storage { s with Comp.s_input = Comp.From_comp l2 })
  | _ -> fail "expected storage");
  let control =
    Control.create [ { Control.selects = []; loads = [ l1; l2 ]; alu_ops = [] } ]
  in
  let design =
    Design.create ~name:"bad" ~behaviour:"bad" ~datapath:dp ~control
      ~clock:(Clock.single ~frequency:1e6)
      ~style:Design.multiclock_style ~input_ports:[] ~output_taps:[]
  in
  check Alcotest.bool "latch R/W caught" true
    (lint_codes [ "MC003" ] design <> [])

let test_check_catches_bad_select () =
  let dp, _, _, mux, _, reg = tiny_datapath () in
  let control =
    Control.create
      [ { Control.selects = [ (mux, 7) ]; loads = [ reg ]; alu_ops = [] } ]
  in
  let design =
    Design.create ~name:"bad" ~behaviour:"bad" ~datapath:dp ~control
      ~clock:(Clock.single ~frequency:1e6)
      ~style:Design.conventional_style ~input_ports:[] ~output_taps:[]
  in
  check Alcotest.bool "bad select caught" true
    (lint_codes [ "MC004" ] design <> [])

let test_check_catches_foreign_op () =
  let dp, _, _, _, alu, _ = tiny_datapath () in
  let control =
    Control.create
      [ { Control.selects = []; loads = []; alu_ops = [ (alu, Op.Div) ] } ]
  in
  let design =
    Design.create ~name:"bad" ~behaviour:"bad" ~datapath:dp ~control
      ~clock:(Clock.single ~frequency:1e6)
      ~style:Design.conventional_style ~input_ports:[] ~output_taps:[]
  in
  check Alcotest.bool "foreign op caught" true
    (lint_codes [ "MC005" ] design <> [])

(* --- Emitters --------------------------------------------------------------- *)

let test_vhdl_emits () =
  let d = facet_design (Mclock_core.Flow.Integrated 2) in
  let vhdl = Vhdl.emit d in
  check Alcotest.bool "entity" true (contains vhdl "entity facet_t is");
  check Alcotest.bool "two clocks" true (contains vhdl "clk2 : in std_logic");
  check Alcotest.bool "architecture" true (contains vhdl "architecture rtl");
  check Alcotest.bool "microcode" true (contains vhdl "case step is");
  check Alcotest.bool "latch process" true (contains vhdl "_en = '1'")

let test_vhdl_register_style () =
  let d = facet_design Mclock_core.Flow.Conventional_non_gated in
  let vhdl = Vhdl.emit d in
  check Alcotest.bool "rising edge" true (contains vhdl "rising_edge(clk1)")

let test_vhdl_keyword_safe () =
  check Alcotest.string "reserved" "signal_s" (Vhdl.keyword_safe "signal");
  check Alcotest.string "bad chars" "a_b" (Vhdl.keyword_safe "a-b");
  check Alcotest.string "leading digit" "s_1x" (Vhdl.keyword_safe "1x")

let test_rtl_dot_emits () =
  let d = facet_design (Mclock_core.Flow.Integrated 3) in
  let dot = Rtl_dot.emit (Design.datapath d) in
  check Alcotest.bool "clusters per phase" true (contains dot "cluster_phase3");
  check Alcotest.bool "alu node" true (contains dot "ALU")

let test_design_style_labels () =
  check Alcotest.string "gated" "gated/FF"
    (Design.style_label (facet_design Mclock_core.Flow.Conventional_gated));
  check Alcotest.string "3-clock" "3-clock/latch"
    (Design.style_label (facet_design (Mclock_core.Flow.Integrated 3)))

let suite =
  [
    ("clock phase of cycle", `Quick, test_clock_phase_of_cycle);
    ("clock single", `Quick, test_clock_single);
    ("clock phase frequency", `Quick, test_clock_phase_frequency);
    ("clock non-overlapping", `Quick, test_clock_non_overlapping);
    ("clock waveform pulses", `Quick, test_clock_waveform_pulses);
    ("clock render", `Quick, test_clock_render);
    ("clock invalid", `Quick, test_clock_invalid);
    ("datapath stats", `Quick, test_datapath_stats);
    ("datapath validate ok", `Quick, test_datapath_validate_ok);
    ("datapath combinational order", `Quick, test_datapath_combinational_order);
    ("datapath fanout", `Quick, test_datapath_fanout);
    ("datapath rejects dangling", `Quick, test_datapath_rejects_dangling);
    ("datapath rejects comb cycle", `Quick, test_datapath_rejects_comb_cycle);
    ("datapath storage feedback ok", `Quick, test_datapath_storage_feedback_allowed);
    ("datapath rejects tiny mux", `Quick, test_datapath_rejects_tiny_mux);
    ("control wraps", `Quick, test_control_wraps);
    ("control changes_between", `Quick, test_control_changes_between);
    ("control empty rejected", `Quick, test_control_empty_rejected);
    ("checkers pass on allocator output", `Quick, test_check_clean_designs);
    ("checker catches partition violation", `Quick, test_check_catches_partition_violation);
    ("checker catches latch R/W", `Quick, test_check_catches_latch_rw);
    ("checker catches bad select", `Quick, test_check_catches_bad_select);
    ("checker catches foreign op", `Quick, test_check_catches_foreign_op);
    ("vhdl emits", `Quick, test_vhdl_emits);
    ("vhdl register style", `Quick, test_vhdl_register_style);
    ("vhdl keyword safe", `Quick, test_vhdl_keyword_safe);
    ("rtl dot emits", `Quick, test_rtl_dot_emits);
    ("design style labels", `Quick, test_design_style_labels);
  ]
