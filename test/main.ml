let () =
  Alcotest.run "mclock"
    [
      ("util", Test_util.suite);
      ("dfg", Test_dfg.suite);
      ("sched", Test_sched.suite);
      ("rtl", Test_rtl.suite);
      ("core", Test_core.suite);
      ("sim", Test_sim.suite);
      ("compiled", Test_compiled.suite);
      ("power", Test_power.suite);
      ("workloads", Test_workloads.suite);
      ("gatelevel", Test_gatelevel.suite);
      ("lang", Test_lang.suite);
      ("resched", Test_resched.suite);
      ("ctrl", Test_ctrl.suite);
      ("stimulus", Test_stimulus.suite);
      ("exec", Test_exec.suite);
      ("reg-bind", Test_reg_bind.suite);
      ("structure", Test_structure.suite);
      ("lint", Test_lint.suite);
      ("properties", Test_props.suite);
      ("explore", Test_explore.suite);
      ("search", Test_search.suite);
      ("resume", Test_resume.suite);
      ("static", Test_static.suite);
      ("remote", Test_remote.suite);
      ("obs", Test_obs.suite);
    ]
