(* Checkpoint/resume differential suite.

   The tentpole contract: [Compiled.resume ckpt ~iterations:k2] is
   byte-identical — energy, per-(component, category) activity cells,
   power, input/output envs, VCD — to a fresh [Compiled.run] at k2,
   for every catalog workload, every synthesis method and several
   batch sizes.  On top of the kernel, the suite covers the sealed
   binary serialization (round-trip exactness, corruption degrading
   to a decode error), the store's checkpoint sidecars and GC, the
   engine's resume-or-recompute fallback, and the search's
   resume/racing/adaptive-eta determinism. *)

open Mclock_core
module B = Mclock_util.Bitvec
module Sim = Mclock_sim.Simulator
module Compiled = Mclock_sim.Compiled
module Activity = Mclock_sim.Activity
module Var = Mclock_dfg.Var

let check = Alcotest.check
let fail = Alcotest.fail
let tech = Mclock_tech.Cmos08.t
let env_equal = Var.Map.equal B.equal
let envs_equal = List.equal env_equal

let assert_identical label (r : Sim.result) (c : Sim.result) =
  check Alcotest.int (label ^ ": cycles") r.Sim.cycles c.Sim.cycles;
  if not (Float.equal r.Sim.energy_pj c.Sim.energy_pj) then
    fail
      (Printf.sprintf "%s: energy %.17g (fresh) vs %.17g (resumed)" label
         r.Sim.energy_pj c.Sim.energy_pj);
  if not (Float.equal r.Sim.power_mw c.Sim.power_mw) then
    fail (label ^ ": power differs");
  if not (Activity.equal_cells r.Sim.activity c.Sim.activity) then
    fail (label ^ ": per-(component, category) activity differs");
  if not (envs_equal r.Sim.inputs c.Sim.inputs) then
    fail (label ^ ": input streams differ");
  if not (envs_equal r.Sim.outputs c.Sim.outputs) then
    fail (label ^ ": outputs differ")

let methods =
  [
    Flow.Conventional_non_gated;
    Flow.Conventional_gated;
    Flow.Integrated 1;
    Flow.Integrated 2;
    Flow.Integrated 4;
    Flow.Split 1;
    Flow.Split 2;
    Flow.Split 4;
  ]

(* --- Kernel-level byte-identity ---------------------------------------- *)

(* For every (workload, method, n): checkpoint at every proper prefix
   k1 of n and resume to n; both the prefix result and the combined
   result must equal the fresh runs at k1 and n. *)
let test_differential workload method_ () =
  let schedule = Mclock_workloads.Workload.schedule workload in
  let design = Flow.synthesize ~method_ ~name:"resume" schedule in
  let kernel = Compiled.compile tech design in
  List.iter
    (fun iterations ->
      let fresh = Compiled.run ~seed:97 kernel ~iterations in
      for k1 = 1 to iterations - 1 do
        let label =
          Printf.sprintf "%s/%s/%d->%d"
            workload.Mclock_workloads.Workload.name
            (Flow.method_label method_) k1 iterations
        in
        let prefix, ck =
          Compiled.run_with_checkpoint ~seed:97 kernel ~iterations:k1
        in
        assert_identical (label ^ " (prefix)")
          (Compiled.run ~seed:97 kernel ~iterations:k1)
          prefix;
        check Alcotest.int (label ^ ": checkpoint iterations") k1
          (Compiled.checkpoint_iterations ck);
        let resumed, ck' = Compiled.resume kernel ck ~iterations in
        assert_identical label fresh resumed;
        check Alcotest.int (label ^ ": extended checkpoint") iterations
          (Compiled.checkpoint_iterations ck')
      done)
    [ 2; 4 ]

let differential_tests =
  List.concat_map
    (fun w ->
      List.map
        (fun m ->
          ( Printf.sprintf "resume = fresh: %s / %s"
              w.Mclock_workloads.Workload.name (Flow.method_label m),
            `Quick,
            test_differential w m ))
        methods)
    Mclock_workloads.Catalog.all

(* A checkpoint chain 2 -> 4 -> 7 equals the fresh 7-computation run,
   and the intermediate checkpoint is reusable (resuming twice from
   the same checkpoint gives identical results — no hidden mutation). *)
let test_chained_resume () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Biquad.t in
  let design = Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"chain" s in
  let kernel = Compiled.compile tech design in
  let fresh = Compiled.run ~seed:5 kernel ~iterations:7 in
  let _, ck2 = Compiled.run_with_checkpoint ~seed:5 kernel ~iterations:2 in
  let r4, ck4 = Compiled.resume kernel ck2 ~iterations:4 in
  assert_identical "chain @4" (Compiled.run ~seed:5 kernel ~iterations:4) r4;
  let r7, _ = Compiled.resume kernel ck4 ~iterations:7 in
  assert_identical "chain @7" fresh r7;
  (* ck2 is not consumed: a second, different extension still works. *)
  let r7', _ = Compiled.resume kernel ck2 ~iterations:7 in
  assert_identical "chain 2->7 direct" fresh r7'

(* VCD: prefix samples [1 .. k1*t-1], resume continues into the same
   dump — concatenation byte-identical to the uninterrupted
   checkpointed trace at the combined count (both leave their final
   cycle untraced, since it is the one cycle an extension replays
   differently). *)
let test_vcd_concatenation () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design = Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"vcdr" s in
  let kernel = Compiled.compile tech design in
  let full =
    let vcd = Mclock_sim.Vcd.create () in
    ignore
      (Compiled.run_with_checkpoint ~seed:11
         ~trace:{ Sim.vcd; max_cycles = max_int }
         kernel ~iterations:5);
    Mclock_sim.Vcd.contents vcd
  in
  let vcd = Mclock_sim.Vcd.create () in
  let _, ck =
    Compiled.run_with_checkpoint ~seed:11
      ~trace:{ Sim.vcd; max_cycles = max_int }
      kernel ~iterations:2
  in
  let _ =
    Compiled.resume ~trace:{ Sim.vcd; max_cycles = max_int } kernel ck
      ~iterations:5
  in
  check Alcotest.string "concatenated VCD = uninterrupted VCD" full
    (Mclock_sim.Vcd.contents vcd)

(* Observer streams concatenate the same way. *)
let test_observer_concatenation () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Hal.t in
  let design = Flow.synthesize ~method_:(Flow.Split 2) ~name:"obsr" s in
  let kernel = Compiled.compile tech design in
  let comp_ids =
    List.map Mclock_rtl.Comp.id
      (Mclock_rtl.Datapath.comps (Mclock_rtl.Design.datapath design))
  in
  let log = ref [] in
  let observer o =
    log :=
      ( o.Sim.obs_cycle,
        o.Sim.obs_step,
        o.Sim.obs_phase,
        List.map (fun id -> B.to_int (o.Sim.obs_value id)) comp_ids )
      :: !log
  in
  let capture f =
    log := [];
    f observer;
    List.rev !log
  in
  let full =
    capture (fun observer ->
        ignore
          (Compiled.run_with_checkpoint ~seed:3 ~observer kernel ~iterations:4))
  in
  let stitched =
    capture (fun observer ->
        let _, ck =
          Compiled.run_with_checkpoint ~seed:3 ~observer kernel ~iterations:2
        in
        ignore (Compiled.resume ~observer kernel ck ~iterations:4))
  in
  if full <> stitched then fail "observer streams differ"

(* Explicit stimulus: the resumed run needs the combined stimulus, its
   prefix is validated, and omitting it raises. *)
let test_stimulus_resume () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design = Flow.synthesize ~method_:(Flow.Split 2) ~name:"stimr" s in
  let kernel = Compiled.compile tech design in
  let probe = Compiled.run ~seed:7 kernel ~iterations:6 in
  let stimulus = probe.Sim.inputs in
  let fresh = Compiled.run ~stimulus kernel ~iterations:6 in
  let prefix3 = Mclock_util.List_ext.take 3 stimulus in
  let _, ck =
    Compiled.run_with_checkpoint ~stimulus:prefix3 kernel ~iterations:3
  in
  let resumed, _ = Compiled.resume ~stimulus kernel ck ~iterations:6 in
  assert_identical "stimulus resume" fresh resumed;
  (match Compiled.resume kernel ck ~iterations:6 with
  | _ -> fail "resume without stimulus must raise"
  | exception Invalid_argument _ -> ());
  let mangled =
    match stimulus with
    | e0 :: rest ->
        Var.Map.map (fun b -> B.lognot b) e0 :: rest
    | [] -> assert false
  in
  match Compiled.resume ~stimulus:mangled kernel ck ~iterations:6 with
  | _ -> fail "resume with a different prefix must raise"
  | exception Invalid_argument _ -> ()

(* Mismatched kernels and non-increasing totals are rejected. *)
let test_resume_validation () =
  let sched w = Mclock_workloads.Workload.schedule w in
  let d1 =
    Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"v1"
      (sched Mclock_workloads.Facet.t)
  in
  let d2 =
    Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"v2"
      (sched Mclock_workloads.Biquad.t)
  in
  let k1 = Compiled.compile tech d1 in
  let k2 = Compiled.compile tech d2 in
  let _, ck = Compiled.run_with_checkpoint k1 ~iterations:2 in
  (match Compiled.resume k2 ck ~iterations:4 with
  | _ -> fail "foreign kernel must be rejected"
  | exception Invalid_argument _ -> ());
  match Compiled.resume k1 ck ~iterations:2 with
  | _ -> fail "non-increasing iterations must be rejected"
  | exception Invalid_argument _ -> ()

(* --- Serialization ----------------------------------------------------- *)

let facet_kernel_and_ck () =
  let s = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design = Flow.synthesize ~method_:(Flow.Integrated 2) ~name:"ser" s in
  let kernel = Compiled.compile tech design in
  let _, ck = Compiled.run_with_checkpoint ~seed:13 kernel ~iterations:3 in
  (kernel, ck)

let test_encode_decode_roundtrip () =
  let kernel, ck = facet_kernel_and_ck () in
  let fresh = Compiled.run ~seed:13 kernel ~iterations:8 in
  let blob = Compiled.Checkpoint.encode ck in
  match Compiled.Checkpoint.decode blob with
  | Error e -> fail ("decode failed: " ^ e)
  | Ok ck' ->
      check Alcotest.int "iterations survive" 3
        (Compiled.checkpoint_iterations ck');
      let resumed, _ = Compiled.resume kernel ck' ~iterations:8 in
      assert_identical "decoded checkpoint resumes identically" fresh resumed;
      (* encode is deterministic *)
      check Alcotest.string "encode deterministic" blob
        (Compiled.Checkpoint.encode ck)

let test_decode_rejects_corruption () =
  let _, ck = facet_kernel_and_ck () in
  let blob = Compiled.Checkpoint.encode ck in
  let expect_error label b =
    match Compiled.Checkpoint.decode b with
    | Error _ -> ()
    | Ok _ -> fail (label ^ ": corrupt blob decoded")
  in
  expect_error "empty" "";
  expect_error "truncated" (String.sub blob 0 (String.length blob / 2));
  expect_error "wrong magic" ("XXXX" ^ blob);
  let flipped = Bytes.of_string blob in
  let mid = String.length blob / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
  expect_error "bit flip" (Bytes.to_string flipped);
  expect_error "appended garbage" (blob ^ "trailing")

(* --- Store sidecars, engine fallback, search resume -------------------- *)

open Mclock_explore

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mclock-test-resume.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()
  end

let with_store f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f (Store.open_ ~dir ()))

let smoke_workload = Mclock_workloads.Facet.t
let smoke_graph = Mclock_workloads.Workload.graph smoke_workload
let smoke_constraints = smoke_workload.Mclock_workloads.Workload.constraints

let search ?cache ?(jobs = 1) ?min_iterations ?(iterations = 60) ?resume ?race
    ?race_margin ?close_threshold () =
  Mclock_exec.Pool.with_pool ~jobs (fun pool ->
      Halving.run ~pool ?cache ~eta:2 ?min_iterations ~seed:42 ~iterations
        ~max_clocks:2 ?resume ?race ?race_margin ?close_threshold ~name:"facet"
        ~sched_constraints:smoke_constraints smoke_graph)

let doc r = Mclock_lint.Json.to_string (Halving.result_json r)

let test_store_checkpoint_roundtrip () =
  with_store (fun store ->
      let _, ck = facet_kernel_and_ck () in
      let blob = Compiled.Checkpoint.encode ck in
      let key = String.make 32 'a' in
      check Alcotest.bool "absent sidecar misses" true
        (Store.find_checkpoint store ~key = None);
      Store.store_checkpoint store ~key blob;
      (match Store.find_checkpoint store ~key with
      | Some b -> check Alcotest.string "sidecar bytes round-trip" blob b
      | None -> fail "stored sidecar not found");
      (* A path-hostile key is refused, never written. *)
      Store.store_checkpoint store ~key:"../evil" blob;
      check Alcotest.bool "hostile key misses" true
        (Store.find_checkpoint store ~key:"../evil" = None);
      let s = Store.stats store in
      check Alcotest.int "ckpt stores" 1 s.Store.ckpt_stores;
      check Alcotest.int "ckpt hits" 1 s.Store.ckpt_hits)

(* A corrupted sidecar degrades to a fresh simulation with identical
   metrics — the cache can make evaluation faster, never wrong. *)
let test_corrupt_sidecar_degrades () =
  with_store (fun store ->
      Mclock_exec.Pool.with_pool ~jobs:1 (fun pool ->
          let space =
            Engine.prepare ~max_clocks:2 ~iterations:8 ~name:"facet"
              ~sched_constraints:smoke_constraints smoke_graph
          in
          let cells = space.Engine.sp_cells in
          let reference, _ =
            Engine.evaluate_at ~pool ~seed:42 ~iterations:8 space cells
          in
          (* Populate rung-4 checkpoints, then corrupt every sidecar. *)
          let _, rs4 =
            Engine.evaluate_at ~pool ~cache:store ~checkpoints:true ~seed:42
              ~iterations:4 space cells
          in
          check Alcotest.bool "rung 4 wrote checkpoints" true
            (rs4.Engine.rs_checkpoints_written > 0);
          List.iter
            (fun p ->
              let key = Engine.cell_key space ~seed:42 ~iterations:4 p in
              let path = Store.checkpoint_path store ~key in
              let oc = open_out_bin path in
              output_string oc "garbage";
              close_out oc)
            cells;
          let metrics, rs8 =
            Engine.evaluate_at ~pool ~cache:store ~resume_from:[ 4 ] ~seed:42
              ~iterations:8 space cells
          in
          check Alcotest.int "nothing resumed from garbage" 0
            rs8.Engine.rs_resumed;
          check Alcotest.int "everything simulated fresh"
            (List.length cells) rs8.Engine.rs_simulated;
          List.iter2
            (fun a b ->
              if not (Metrics.equal a b) then
                fail "degraded metrics differ from reference")
            reference metrics))

(* The engine resumes from the highest cached rung at or below the
   target, and the metrics equal an uncached evaluation's. *)
let test_engine_resume_ladder () =
  with_store (fun store ->
      Mclock_exec.Pool.with_pool ~jobs:1 (fun pool ->
          let space =
            Engine.prepare ~max_clocks:2 ~iterations:12 ~name:"facet"
              ~sched_constraints:smoke_constraints smoke_graph
          in
          let cells = space.Engine.sp_cells in
          let reference, _ =
            Engine.evaluate_at ~pool ~seed:42 ~iterations:12 space cells
          in
          let _ =
            Engine.evaluate_at ~pool ~cache:store ~checkpoints:true ~seed:42
              ~iterations:3 space cells
          in
          let _ =
            Engine.evaluate_at ~pool ~cache:store ~checkpoints:true ~seed:42
              ~iterations:6 space cells
          in
          let metrics, rs =
            Engine.evaluate_at ~pool ~cache:store ~resume_from:[ 3; 6 ]
              ~checkpoints:true ~seed:42 ~iterations:12 space cells
          in
          let n = List.length cells in
          check Alcotest.int "every cell resumed" n rs.Engine.rs_resumed;
          (* The ladder picks 6, not 3. *)
          check Alcotest.int "resumed from the highest rung" (n * 6)
            rs.Engine.rs_resumed_iterations;
          check Alcotest.int "only the extension simulated" (n * 6)
            rs.Engine.rs_fresh_iterations;
          List.iter2
            (fun a b ->
              if not (Metrics.equal a b) then
                fail "resumed metrics differ from uncached")
            reference metrics))

(* Search determinism with resume: the uncached, cold-cache and
   warm-cache documents are byte-identical, the warm run simulates
   nothing, and the cold run writes and extends checkpoints. *)
let test_halving_resume_deterministic () =
  with_store (fun store ->
      let uncached = search () in
      let cold = search ~cache:store () in
      let warm = search ~cache:store () in
      check Alcotest.string "cold doc = uncached doc" (doc uncached) (doc cold);
      check Alcotest.string "warm doc = uncached doc" (doc uncached) (doc warm);
      check Alcotest.bool "cold run resumed promotions" true
        (cold.Halving.stats.Halving.resumed > 0);
      check Alcotest.bool "cold run wrote checkpoints" true
        (cold.Halving.stats.Halving.checkpoints_written > 0);
      check Alcotest.int "warm run simulates nothing" 0
        warm.Halving.stats.Halving.simulated;
      (* Resume must beat restart-per-rung on actually-simulated
         iterations, winner unchanged. *)
      rm_rf (Store.dir store);
      let restart = with_store (fun s -> search ~cache:s ~resume:false ()) in
      check Alcotest.string "winner invariant under resume"
        (match restart.Halving.winner with
        | Some w -> w.Halving.c_label
        | None -> "none")
        (match cold.Halving.winner with
        | Some w -> w.Halving.c_label
        | None -> "none");
      let ratio =
        float_of_int restart.Halving.stats.Halving.simulated_iterations
        /. float_of_int cold.Halving.stats.Halving.simulated_iterations
      in
      if ratio < 1.2 then
        fail
          (Printf.sprintf "resume saved only %.2fx over restart-per-rung"
             ratio))

let test_halving_resume_jobs_invariant () =
  let d1 = with_store (fun s -> doc (search ~cache:s ~jobs:1 ())) in
  let d4 = with_store (fun s -> doc (search ~cache:s ~jobs:4 ())) in
  check Alcotest.string "jobs=1 doc = jobs=4 doc" d1 d4

(* Racing: dominated candidates stop at the half-budget checkpoint,
   and the winner still equals the default search's (the margin is
   doing its job on this workload). *)
let test_halving_racing () =
  let default = search () in
  let raced = with_store (fun s -> search ~cache:s ~race:true ()) in
  check Alcotest.bool "racing raced candidates out" true
    (raced.Halving.stats.Halving.raced_out > 0);
  check Alcotest.string "racing preserves the winner"
    (match default.Halving.winner with
    | Some w -> w.Halving.c_label
    | None -> "none")
    (match raced.Halving.winner with
    | Some w -> w.Halving.c_label
    | None -> "none");
  let raced_cands =
    List.concat_map
      (fun r ->
        List.filter
          (fun c -> c.Halving.c_raced_at <> None)
          r.Halving.r_candidates)
      raced.Halving.rungs
  in
  check Alcotest.int "raced_out counts the raced candidates"
    raced.Halving.stats.Halving.raced_out
    (List.length raced_cands);
  (* No raced candidate was ever kept. *)
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          if c.Halving.c_raced_at <> None && List.mem c.Halving.c_label r.Halving.r_kept
          then fail "a raced-out candidate was kept")
        r.Halving.r_candidates)
    raced.Halving.rungs

(* The adaptive keep rule, pinned: default threshold reproduces the
   canonical ceil(n/eta) rule; a positive threshold widens across a
   near-tie and no further. *)
let test_keep_width () =
  let scores = [ 0.10; 0.20; 0.30; 0.31; 0.90 ] in
  check Alcotest.int "default = canonical" 3
    (Halving.keep_width ~eta:2 ~close_threshold:0. ~field:5 scores);
  check Alcotest.int "near-tie widens by one" 4
    (Halving.keep_width ~eta:2 ~close_threshold:0.05 ~field:5 scores);
  check Alcotest.int "huge threshold keeps all" 5
    (Halving.keep_width ~eta:2 ~close_threshold:10. ~field:5 scores);
  check Alcotest.int "fewer functional than base keeps all" 2
    (Halving.keep_width ~eta:2 ~close_threshold:0. ~field:8 [ 0.1; 0.2 ]);
  check Alcotest.int "exact-threshold tie excluded" 3
    (Halving.keep_width ~eta:2 ~close_threshold:0.01 ~field:5 scores)

let test_close_threshold_search () =
  (* A huge threshold keeps every functional candidate at every rung:
     the search degenerates to exhaustive full-fidelity evaluation,
     and the winner still matches the default search's. *)
  let default = search () in
  let wide = search ~close_threshold:1e9 () in
  List.iter
    (fun r ->
      if r.Halving.r_iterations < 60 then
        check Alcotest.int
          (Printf.sprintf "rung %d keeps all functional" r.Halving.r_number)
          (List.length
             (List.filter
                (fun c -> c.Halving.c_score < infinity)
                r.Halving.r_candidates))
          (List.length r.Halving.r_kept))
    wide.Halving.rungs;
  check Alcotest.string "winner invariant"
    (match default.Halving.winner with
    | Some w -> w.Halving.c_label
    | None -> "none")
    (match wide.Halving.winner with
    | Some w -> w.Halving.c_label
    | None -> "none")

let test_degenerate_diagnostic () =
  let r = search ~min_iterations:60 () in
  (match r.Halving.degenerate with
  | None -> fail "min_iterations = iterations must flag a degenerate schedule"
  | Some msg ->
      check Alcotest.bool "message names the cause" true
        (let has needle =
           let nl = String.length needle and l = String.length msg in
           let rec go i = i + nl <= l && (String.sub msg i nl = needle || go (i + 1)) in
           go 0
         in
         has "min_iterations"));
  check Alcotest.int "single rung" 1 (List.length r.Halving.rungs);
  check Alcotest.bool "healthy schedule has no diagnostic" true
    ((search ()).Halving.degenerate = None)

let test_halving_param_validation () =
  Alcotest.check_raises "negative race_margin"
    (Invalid_argument "Halving.run: race_margin >= 0") (fun () ->
      ignore (search ~race_margin:(-0.1) ()));
  Alcotest.check_raises "negative close_threshold"
    (Invalid_argument "Halving.run: close_threshold >= 0") (fun () ->
      ignore (search ~close_threshold:(-1.) ()))

(* --- GC and manifest --------------------------------------------------- *)

let test_gc_and_manifest () =
  with_store (fun store ->
      ignore (search ~cache:store ());
      let m0 = Store.manifest store in
      check Alcotest.bool "manifest rebuilt on first read" true m0.Store.m_rebuilt;
      check Alcotest.bool "entries after a search" true (m0.Store.m_entries > 0);
      check Alcotest.bool "bytes after a search" true (m0.Store.m_bytes > 0);
      let m1 = Store.manifest store in
      check Alcotest.bool "second read is O(1)" false m1.Store.m_rebuilt;
      check Alcotest.int "cached entries agree" m0.Store.m_entries
        m1.Store.m_entries;
      check Alcotest.int "cached bytes agree" m0.Store.m_bytes m1.Store.m_bytes;
      (* Corrupt the manifest: the next read rebuilds atomically. *)
      let oc = open_out_bin (Filename.concat (Store.dir store) "MANIFEST.json") in
      output_string oc "{broken";
      close_out oc;
      let m2 = Store.manifest store in
      check Alcotest.bool "corrupt manifest rebuilds" true m2.Store.m_rebuilt;
      check Alcotest.int "rebuild recovers totals" m0.Store.m_entries
        m2.Store.m_entries;
      (* Size-bounded GC evicts down to the budget and updates the
         manifest; age-bounded GC with a zero age clears everything. *)
      let budget = m0.Store.m_bytes / 2 in
      let g = Store.gc ~max_bytes:budget store in
      check Alcotest.bool "gc evicted something" true
        (g.Store.gc_removed_entries > 0);
      check Alcotest.bool "gc respects the byte budget" true
        (g.Store.gc_remaining_bytes <= budget);
      let m3 = Store.manifest store in
      check Alcotest.bool "gc refreshed the manifest" false m3.Store.m_rebuilt;
      check Alcotest.int "manifest matches gc" g.Store.gc_remaining_entries
        m3.Store.m_entries;
      let g2 = Store.gc ~max_age:0. store in
      check Alcotest.int "zero age clears the store" 0
        g2.Store.gc_remaining_entries;
      check Alcotest.int "nothing left on disk" 0
        (Store.manifest ~rebuild:true store).Store.m_entries;
      (* A warm search after GC recomputes and still matches. *)
      let after = search ~cache:store () in
      check Alcotest.string "post-gc search is unchanged" (doc (search ()))
        (doc after))

let suite =
  differential_tests
  @ [
      ("chained resume", `Quick, test_chained_resume);
      ("vcd concatenation", `Quick, test_vcd_concatenation);
      ("observer concatenation", `Quick, test_observer_concatenation);
      ("stimulus resume", `Quick, test_stimulus_resume);
      ("resume validation", `Quick, test_resume_validation);
      ("encode/decode roundtrip", `Quick, test_encode_decode_roundtrip);
      ("decode rejects corruption", `Quick, test_decode_rejects_corruption);
      ("store checkpoint roundtrip", `Quick, test_store_checkpoint_roundtrip);
      ("corrupt sidecar degrades", `Quick, test_corrupt_sidecar_degrades);
      ("engine resume ladder", `Quick, test_engine_resume_ladder);
      ( "halving resume deterministic",
        `Quick,
        test_halving_resume_deterministic );
      ("halving resume jobs invariant", `Quick, test_halving_resume_jobs_invariant);
      ("halving racing", `Quick, test_halving_racing);
      ("keep width", `Quick, test_keep_width);
      ("close threshold search", `Quick, test_close_threshold_search);
      ("degenerate diagnostic", `Quick, test_degenerate_diagnostic);
      ("halving param validation", `Quick, test_halving_param_validation);
      ("gc and manifest", `Quick, test_gc_and_manifest);
    ]
