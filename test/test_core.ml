(* Unit tests for mclock_core: partitioning, lifetimes, transfers,
   register allocation, ALU allocation, structure generation. *)

open Mclock_dfg
open Mclock_sched
open Mclock_core

let check = Alcotest.check
let fail = Alcotest.fail
let v = Var.v

(* --- Partition ---------------------------------------------------------- *)

let test_partition_of_step () =
  check Alcotest.(list int) "n=2 over 1..6" [ 1; 2; 1; 2; 1; 2 ]
    (List.map (Partition.of_step ~n:2) (Mclock_util.List_ext.range 1 6));
  check Alcotest.(list int) "n=3 over 1..6" [ 1; 2; 3; 1; 2; 3 ]
    (List.map (Partition.of_step ~n:3) (Mclock_util.List_ext.range 1 6))

let test_partition_local_global_roundtrip () =
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          let p = Partition.of_step ~n t in
          let l = Partition.local_of_global ~n t in
          check Alcotest.int
            (Printf.sprintf "n=%d t=%d" n t)
            t
            (Partition.global_of_local ~n ~partition:p l))
        (Mclock_util.List_ext.range 1 12))
    [ 1; 2; 3; 4 ]

let test_partition_of_var () =
  let w = Mclock_workloads.Motivating.t in
  let s = Mclock_workloads.Workload.schedule w in
  (* t1 written at step 1 -> partition 1 under n=2; t2 at step 2 -> 2. *)
  check Alcotest.int "t1" 1 (Partition.of_var ~n:2 s (v "t1"));
  check Alcotest.int "t2" 2 (Partition.of_var ~n:2 s (v "t2"));
  check Alcotest.int "input" 0 (Partition.of_var ~n:2 s (v "a"))

let test_partition_steps_of () =
  check Alcotest.(list int) "p1 of n=2 T=5" [ 1; 3; 5 ]
    (Partition.steps_of ~n:2 ~num_steps:5 1);
  check Alcotest.(list int) "p2 of n=2 T=5" [ 2; 4 ]
    (Partition.steps_of ~n:2 ~num_steps:5 2)

let test_partition_padded_steps () =
  check Alcotest.int "5 steps n=2 -> 6" 6 (Lifetime.padded_steps ~n:2 ~num_steps:5);
  check Alcotest.int "4 steps n=2 -> 4" 4 (Lifetime.padded_steps ~n:2 ~num_steps:4);
  check Alcotest.int "4 steps n=3 -> 6" 6 (Lifetime.padded_steps ~n:3 ~num_steps:4)

(* --- Lifetime ------------------------------------------------------------- *)

let motivating_problem ?(register_inputs = true) n =
  let w = Mclock_workloads.Motivating.t in
  Lifetime.analyze ~register_inputs ~n (Mclock_workloads.Workload.schedule w)

let test_lifetime_write_and_reads () =
  let p = motivating_problem 1 in
  let u = Lifetime.usage p (v "t2") in
  check Alcotest.int "t2 written at 2" 2 u.Lifetime.write_step;
  check Alcotest.(list int) "t2 read at 3,4" [ 3; 4 ] u.Lifetime.read_steps

let test_lifetime_output_persists () =
  let p = motivating_problem 1 in
  let u = Lifetime.usage p (v "out") in
  check Alcotest.bool "is output" true u.Lifetime.is_output;
  check Alcotest.int "last read = T" 5 (Lifetime.last_read u)

let test_lifetime_register_vs_latch_interval () =
  let p = motivating_problem 1 in
  let u = Lifetime.usage p (v "t2") in
  let reg = Lifetime.problem_interval p ~kind:Mclock_tech.Library.Register u in
  let latch = Lifetime.problem_interval p ~kind:Mclock_tech.Library.Latch u in
  check Alcotest.int "register lo = w+1" 3 (Mclock_util.Interval.lo reg);
  check Alcotest.int "latch lo = w" 2 (Mclock_util.Interval.lo latch);
  check Alcotest.int "both hi = last read" 4 (Mclock_util.Interval.hi latch)

let test_lifetime_registered_inputs () =
  let p = motivating_problem 2 in
  let u = Lifetime.usage p (v "a") in
  check Alcotest.bool "registered" true u.Lifetime.registered_input;
  (* padded T = 6 under n=2; input register belongs to the partition of
     the final step. *)
  check Alcotest.int "partition of final step" 2 u.Lifetime.partition

let test_lifetime_input_read_at_final_step_stays_port () =
  (* An input read at the padded final step cannot be re-sampled there. *)
  let r =
    Parse.parse_string "dfg t\ninputs a\noutputs y\nn1: x = a + 1 @ 1\nn2: y = x + a @ 2\n"
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let p = Lifetime.analyze ~n:2 s in
  let u = Lifetime.usage p (v "a") in
  check Alcotest.bool "port-direct" false u.Lifetime.registered_input

let test_lifetime_register_inputs_off () =
  let p = motivating_problem ~register_inputs:false 2 in
  check Alcotest.bool "no registered inputs" true
    (Var.Set.is_empty (Lifetime.registered_inputs p))

let test_lifetime_stored_usages () =
  let p = motivating_problem ~register_inputs:false 1 in
  (* 6 produced variables, no registered inputs. *)
  check Alcotest.int "stored" 6 (List.length (Lifetime.stored_usages p))

let test_lifetime_render_table () =
  let p = motivating_problem 1 in
  let s = Lifetime.render_table p in
  check Alcotest.bool "non-empty" true (String.length s > 100)

(* --- Transfer --------------------------------------------------------------- *)

(* The Fig. 6 situation: x written at step 1 (partition 1 of n=2),
   e written at step 2 (partition 2), both read by an op at step 3. *)
let fig6_schedule () =
  let r =
    Parse.parse_string
      {|
dfg fig6
inputs a b
outputs y
n1: x = a + b @ 1
n2: e = a - b @ 2
n3: y = e + x @ 3
|}
  in
  Schedule.create r.Parse.graph r.Parse.steps

let test_transfer_inserted () =
  let p = Transfer.insert (Lifetime.analyze ~n:2 (fig6_schedule ())) in
  check Alcotest.int "one transfer" 1 (List.length p.Lifetime.transfers);
  match p.Lifetime.transfers with
  | [ tr ] ->
      check Alcotest.string "source is x" "x" (Var.name tr.Lifetime.t_src);
      check Alcotest.int "at e's write step" 2 tr.Lifetime.t_step;
      check Alcotest.int "into e's partition" 2 tr.Lifetime.t_partition
  | _ -> fail "expected exactly one transfer"

let test_transfer_rewrites_operand () =
  let p = Transfer.insert (Lifetime.analyze ~n:2 (fig6_schedule ())) in
  let operands = Node.Map.find 3 p.Lifetime.node_operands in
  match operands with
  | [ Lifetime.S_var e; Lifetime.S_var t ] ->
      check Alcotest.string "e kept" "e" (Var.name e);
      check Alcotest.string "x replaced by temp" (Transfer.temp_name (v "x") 2)
        (Var.name t)
  | _ -> fail "unexpected operand shape"

let test_transfer_shortens_source_lifetime () =
  (* Fig. 6: "since we deleted the READ for X in time step 3" — x's
     last read becomes the transfer step 2. *)
  let p = Transfer.insert (Lifetime.analyze ~n:2 (fig6_schedule ())) in
  let u = Lifetime.usage p (v "x") in
  check Alcotest.int "x dies at 2" 2 (Lifetime.last_read u)

let test_transfer_temp_usage () =
  let p = Transfer.insert (Lifetime.analyze ~n:2 (fig6_schedule ())) in
  let temp = v (Transfer.temp_name (v "x") 2) in
  let u = Lifetime.usage p temp in
  check Alcotest.int "temp written at 2" 2 u.Lifetime.write_step;
  check Alcotest.(list int) "temp read at 3" [ 3 ] u.Lifetime.read_steps;
  check Alcotest.int "temp partition" 2 u.Lifetime.partition

let test_transfer_none_for_n1 () =
  let p = Transfer.insert (Lifetime.analyze ~n:1 (fig6_schedule ())) in
  check Alcotest.int "no transfers" 0 (List.length p.Lifetime.transfers)

let test_transfer_same_partition_untouched () =
  (* Both operands written in the same partition: no transfer. *)
  let r =
    Parse.parse_string
      "dfg t\ninputs a b\noutputs y\nn1: x = a + b @ 1\nn2: e = a - b @ 3\nn3: y = e + x @ 5\n"
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let p = Transfer.insert (Lifetime.analyze ~n:2 s) in
  check Alcotest.int "no transfers" 0 (List.length p.Lifetime.transfers)

let test_transfer_dedup_shared_operand () =
  (* Two consumers in the same partition reading the same stale
     variable share one transfer. *)
  let r =
    Parse.parse_string
      {|
dfg t
inputs a b
outputs y z
n1: x = a + b @ 1
n2: e = a - b @ 2
n3: y = e + x @ 3
n4: f = a + 1 @ 2
n5: z = f + x @ 3
|}
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let p = Transfer.insert (Lifetime.analyze ~n:2 s) in
  check Alcotest.int "one shared transfer" 1 (List.length p.Lifetime.transfers)

let test_transfer_inputs_exempt () =
  (* Primary-input operands never trigger transfers even when mixed
     with stored operands of another partition. *)
  let r =
    Parse.parse_string
      "dfg t\ninputs a b\noutputs y\nn1: x = a + b @ 1\nn2: y = x + a @ 4\n"
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let p = Transfer.insert (Lifetime.analyze ~n:2 s) in
  check Alcotest.int "no transfers" 0 (List.length p.Lifetime.transfers)

(* --- Reg_alloc ---------------------------------------------------------------- *)

let test_reg_alloc_partition_separation () =
  let p = motivating_problem ~register_inputs:false 2 in
  let classes = Reg_alloc.allocate ~kind:Mclock_tech.Library.Latch p in
  List.iter
    (fun rc ->
      List.iter
        (fun var ->
          let u = Lifetime.usage p var in
          check Alcotest.int
            (Printf.sprintf "%s partition" (Var.name var))
            rc.Reg_alloc.rc_partition u.Lifetime.partition)
        rc.Reg_alloc.rc_vars)
    classes

let test_reg_alloc_latch_disjointness () =
  let p = motivating_problem ~register_inputs:false 1 in
  let classes = Reg_alloc.allocate ~kind:Mclock_tech.Library.Latch p in
  List.iter
    (fun rc ->
      let intervals =
        List.map
          (fun var ->
            Lifetime.problem_interval p ~kind:Mclock_tech.Library.Latch
              (Lifetime.usage p var))
          rc.Reg_alloc.rc_vars
      in
      let rec pairwise = function
        | a :: rest ->
            List.iter
              (fun b ->
                if Mclock_util.Interval.overlaps a b then
                  fail "latch class with overlapping lifetimes")
              rest;
            pairwise rest
        | [] -> ()
      in
      pairwise intervals)
    classes

let test_reg_alloc_registers_pack_tighter () =
  (* Register semantics allow write-at-death sharing, so never need
     more elements than latch semantics. *)
  let p = motivating_problem ~register_inputs:false 1 in
  let regs = Reg_alloc.allocate ~kind:Mclock_tech.Library.Register p in
  let latches = Reg_alloc.allocate ~kind:Mclock_tech.Library.Latch p in
  check Alcotest.bool "regs <= latches" true
    (List.length regs <= List.length latches)

let test_reg_alloc_class_of () =
  let p = motivating_problem 1 in
  let classes = Reg_alloc.allocate ~kind:Mclock_tech.Library.Register p in
  check Alcotest.bool "t1 has a class" true (Reg_alloc.class_of classes (v "t1") <> None);
  check Alcotest.bool "ghost has none" true (Reg_alloc.class_of classes (v "ghost") = None)

(* --- Alu_alloc ------------------------------------------------------------------ *)

let alu_config threshold =
  {
    Alu_alloc.tech = Mclock_tech.Cmos08.t;
    width = 4;
    merge = true;
    merge_threshold = threshold;
  }

let test_alu_alloc_no_same_step_sharing () =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  let alus =
    Alu_alloc.allocate ~config:(alu_config 1.6) ~partitions:(Partition.map ~n:1 s) s
  in
  List.iter
    (fun alu ->
      let steps = List.map snd alu.Alu_alloc.alu_nodes in
      let unique = Mclock_util.List_ext.dedup ~compare:Int.compare steps in
      check Alcotest.int "no step collision" (List.length steps) (List.length unique))
    alus

let test_alu_alloc_respects_partitions () =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  let partitions = Partition.map ~n:2 s in
  let alus = Alu_alloc.allocate ~config:(alu_config 1.0) ~partitions s in
  List.iter
    (fun alu ->
      List.iter
        (fun (node_id, _) ->
          check Alcotest.int "node partition matches ALU"
            alu.Alu_alloc.alu_partition
            (Node.Map.find node_id partitions))
        alu.Alu_alloc.alu_nodes)
    alus

let test_alu_alloc_addsub_merge () =
  (* Two ops at different steps, + then -, should share one (+-) ALU
     thanks to the adder-core sharing. *)
  let r =
    Parse.parse_string
      "dfg t\ninputs a b\noutputs y\nn1: x = a + b @ 1\nn2: y = x - a @ 2\n"
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let alus =
    Alu_alloc.allocate ~config:(alu_config 1.0) ~partitions:(Partition.map ~n:1 s) s
  in
  check Alcotest.int "one ALU" 1 (List.length alus)

let test_alu_alloc_div_stays_separate () =
  (* Merging a divider into an adder is never worth its cost. *)
  let r =
    Parse.parse_string
      "dfg t\ninputs a b\noutputs y\nn1: x = a + b @ 1\nn2: y = x / a @ 2\n"
  in
  let s = Schedule.create r.Parse.graph r.Parse.steps in
  let alus =
    Alu_alloc.allocate ~config:(alu_config 1.0) ~partitions:(Partition.map ~n:1 s) s
  in
  check Alcotest.int "two ALUs" 2 (List.length alus)

let test_alu_alloc_merge_disabled () =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  let config = { (alu_config 1.0) with Alu_alloc.merge = false } in
  let alus = Alu_alloc.allocate ~config ~partitions:(Partition.map ~n:1 s) s in
  check Alcotest.int "one ALU per op" 8 (List.length alus)

let test_alu_alloc_every_node_bound () =
  let w = Mclock_workloads.Biquad.t in
  let s = Mclock_workloads.Workload.schedule w in
  let alus =
    Alu_alloc.allocate ~config:(alu_config 1.0) ~partitions:(Partition.map ~n:3 s) s
  in
  List.iter
    (fun node ->
      check Alcotest.bool
        (Printf.sprintf "n%d bound" (Node.id node))
        true
        (Alu_alloc.alu_of alus (Node.id node) <> None))
    (Graph.nodes (Schedule.graph s))

let test_alu_alloc_op_in_repertoire () =
  let w = Mclock_workloads.Hal.t in
  let s = Mclock_workloads.Workload.schedule w in
  let alus =
    Alu_alloc.allocate ~config:(alu_config 1.6) ~partitions:(Partition.map ~n:1 s) s
  in
  List.iter
    (fun node ->
      let alu = Alu_alloc.alu_of_exn alus (Node.id node) in
      check Alcotest.bool "op in fset" true
        (Op.Set.mem (Node.op node) alu.Alu_alloc.alu_fset))
    (Graph.nodes (Schedule.graph s))

(* --- Structure / microcode -------------------------------------------------------- *)

let test_structure_padding () =
  (* Motivating example has 5 steps; under n=2 the controller period
     must be 6. *)
  let w = Mclock_workloads.Motivating.t in
  let s = Mclock_workloads.Workload.schedule w in
  let d = Integrated.allocate ~n:2 ~name:"m2" s in
  check Alcotest.int "padded period" 6
    (Mclock_rtl.Control.num_steps (Mclock_rtl.Design.control d));
  let d1 = Integrated.allocate ~n:1 ~name:"m1" s in
  check Alcotest.int "unpadded period" 5
    (Mclock_rtl.Control.num_steps (Mclock_rtl.Design.control d1))

let test_structure_storage_phases_match_loads () =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  let d = Integrated.allocate ~n:3 ~name:"f3" s in
  check Alcotest.(list string) "no violations" []
    (List.filter_map
       (fun g ->
         if g.Mclock_lint.Diagnostic.code = "MC002" then
           Some g.Mclock_lint.Diagnostic.message
         else None)
       (Mclock_lint.Lint.design d))

let test_structure_conflict_free_microcode () =
  (* Every workload x every method builds without Structure.Conflict. *)
  List.iter
    (fun w ->
      let s = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun m -> ignore (Flow.synthesize ~method_:m ~name:"x" s))
        [
          Flow.Conventional_non_gated;
          Flow.Conventional_gated;
          Flow.Integrated 1;
          Flow.Integrated 2;
          Flow.Integrated 3;
          Flow.Integrated 4;
          Flow.Split 2;
          Flow.Split 3;
        ])
    Mclock_workloads.Catalog.all

let test_structure_output_taps () =
  let w = Mclock_workloads.Hal.t in
  let s = Mclock_workloads.Workload.schedule w in
  let d = Integrated.allocate ~n:2 ~name:"h2" s in
  let taps = Mclock_rtl.Design.output_taps d in
  check Alcotest.int "four outputs" 4 (List.length taps);
  List.iter
    (fun tap ->
      check Alcotest.bool "ready step positive" true (tap.Mclock_rtl.Design.ready_step >= 1))
    taps

let test_structure_transfer_is_storage_to_storage () =
  (* In the Fig. 6 design, the transfer target's storage input must be
     reachable without passing through any ALU. *)
  let s = fig6_schedule () in
  let result = Integrated.run ~n:2 ~name:"fig6" s in
  match result.Integrated.problem.Lifetime.transfers with
  | [ tr ] ->
      let dp = Mclock_rtl.Design.datapath result.Integrated.design in
      let rc =
        Reg_alloc.class_of_exn result.Integrated.reg_classes tr.Lifetime.t_dest
      in
      (* Find the storage element holding the temp. *)
      let holds_temp (_, st) =
        List.exists (Var.equal tr.Lifetime.t_dest) st.Mclock_rtl.Comp.s_holds
      in
      check Alcotest.bool "temp stored" true
        (List.exists holds_temp (Mclock_rtl.Datapath.storages dp));
      check Alcotest.int "temp in partition 2" 2 rc.Reg_alloc.rc_partition
  | _ -> fail "expected one transfer"

(* --- Split allocation ---------------------------------------------------------------- *)

let test_split_stats () =
  let w = Mclock_workloads.Motivating.t in
  let s = Mclock_workloads.Workload.schedule w in
  let r = Split_alloc.run ~n:2 ~name:"m_split" s in
  (* The motivating example cuts edges across the odd/even boundary, so
     the naive per-partition allocation creates pseudo inputs that the
     clean-up resolves. *)
  check Alcotest.bool "cross connections found" true
    (r.Split_alloc.stats.Split_alloc.cross_connections > 0);
  check Alcotest.bool "input registers dropped" true
    (r.Split_alloc.stats.Split_alloc.pseudo_input_registers_removed > 0)

let test_split_latch_conflicts_resolved () =
  (* After clean-up, no class may violate the latch rule. *)
  List.iter
    (fun w ->
      let s = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun n ->
          let r = Split_alloc.run ~n ~name:"sp" s in
          let d = r.Split_alloc.design in
          check
            Alcotest.(list string)
            (Printf.sprintf "%s n=%d" w.Mclock_workloads.Workload.name n)
            []
            (List.filter_map
               (fun g ->
                 if g.Mclock_lint.Diagnostic.code = "MC003" then
                   Some g.Mclock_lint.Diagnostic.message
                 else None)
               (Mclock_lint.Lint.design d)))
        [ 1; 2; 3 ])
    Mclock_workloads.Catalog.all

let test_split_render_partitions () =
  let w = Mclock_workloads.Motivating.t in
  let s = Mclock_workloads.Workload.schedule w in
  let txt = Split_alloc.render_partitions ~n:2 s in
  check Alcotest.bool "mentions partition 2" true (String.length txt > 50)

(* --- Flow labels ------------------------------------------------------------------------ *)

let test_flow_labels () =
  check Alcotest.string "non-gated" "Conven. Alloc. (Non-Gated Clock)"
    (Flow.method_label Flow.Conventional_non_gated);
  check Alcotest.string "1 clock" "1 Clock" (Flow.method_label (Flow.Integrated 1));
  check Alcotest.string "3 clocks" "3 Clocks" (Flow.method_label (Flow.Integrated 3))

let test_flow_standard_suite_order () =
  let w = Mclock_workloads.Facet.t in
  let s = Mclock_workloads.Workload.schedule w in
  let suite = Flow.standard_suite ~name:"facet" s in
  check Alcotest.int "five designs" 5 (List.length suite);
  match List.map fst suite with
  | [ Flow.Conventional_non_gated; Flow.Conventional_gated; Flow.Integrated 1;
      Flow.Integrated 2; Flow.Integrated 3 ] ->
      ()
  | _ -> fail "wrong suite order"

let suite =
  [
    ("partition of step", `Quick, test_partition_of_step);
    ("partition local/global roundtrip", `Quick, test_partition_local_global_roundtrip);
    ("partition of var", `Quick, test_partition_of_var);
    ("partition steps_of", `Quick, test_partition_steps_of);
    ("padded steps", `Quick, test_partition_padded_steps);
    ("lifetime write/reads", `Quick, test_lifetime_write_and_reads);
    ("lifetime output persists", `Quick, test_lifetime_output_persists);
    ("lifetime register vs latch interval", `Quick, test_lifetime_register_vs_latch_interval);
    ("lifetime registered inputs", `Quick, test_lifetime_registered_inputs);
    ("lifetime final-step input stays port", `Quick, test_lifetime_input_read_at_final_step_stays_port);
    ("lifetime register_inputs off", `Quick, test_lifetime_register_inputs_off);
    ("lifetime stored usages", `Quick, test_lifetime_stored_usages);
    ("lifetime render table", `Quick, test_lifetime_render_table);
    ("transfer inserted (Fig 6)", `Quick, test_transfer_inserted);
    ("transfer rewrites operand", `Quick, test_transfer_rewrites_operand);
    ("transfer shortens source lifetime", `Quick, test_transfer_shortens_source_lifetime);
    ("transfer temp usage", `Quick, test_transfer_temp_usage);
    ("transfer none for n=1", `Quick, test_transfer_none_for_n1);
    ("transfer same partition untouched", `Quick, test_transfer_same_partition_untouched);
    ("transfer dedup shared operand", `Quick, test_transfer_dedup_shared_operand);
    ("transfer inputs exempt", `Quick, test_transfer_inputs_exempt);
    ("reg alloc partition separation", `Quick, test_reg_alloc_partition_separation);
    ("reg alloc latch disjointness", `Quick, test_reg_alloc_latch_disjointness);
    ("reg alloc registers pack tighter", `Quick, test_reg_alloc_registers_pack_tighter);
    ("reg alloc class_of", `Quick, test_reg_alloc_class_of);
    ("alu alloc no same-step sharing", `Quick, test_alu_alloc_no_same_step_sharing);
    ("alu alloc respects partitions", `Quick, test_alu_alloc_respects_partitions);
    ("alu alloc add/sub merge", `Quick, test_alu_alloc_addsub_merge);
    ("alu alloc div separate", `Quick, test_alu_alloc_div_stays_separate);
    ("alu alloc merge disabled", `Quick, test_alu_alloc_merge_disabled);
    ("alu alloc every node bound", `Quick, test_alu_alloc_every_node_bound);
    ("alu alloc op in repertoire", `Quick, test_alu_alloc_op_in_repertoire);
    ("structure padding", `Quick, test_structure_padding);
    ("structure storage phases", `Quick, test_structure_storage_phases_match_loads);
    ("structure conflict-free microcode", `Quick, test_structure_conflict_free_microcode);
    ("structure output taps", `Quick, test_structure_output_taps);
    ("structure transfer storage-to-storage", `Quick, test_structure_transfer_is_storage_to_storage);
    ("split stats", `Quick, test_split_stats);
    ("split latch conflicts resolved", `Quick, test_split_latch_conflicts_resolved);
    ("split render partitions", `Quick, test_split_render_partitions);
    ("flow labels", `Quick, test_flow_labels);
    ("flow standard suite order", `Quick, test_flow_standard_suite_order);
  ]
