(* Tests for the design-space exploration subsystem: grid enumeration,
   cache keys, the persistent store's failure modes, Pareto extraction,
   and the engine's determinism + cache-soundness contract (cold = warm
   = uncached = any job count). *)

open Mclock_explore

let check = Alcotest.check
let fail = Alcotest.fail

let tech = Mclock_tech.Cmos08.t

(* A throwaway directory per test; the suite never reuses one, so
   cross-test contamination is impossible. *)
let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mclock-test-cache.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()
  end

let smoke_workload = Mclock_workloads.Facet.t

let smoke_graph = Mclock_workloads.Workload.graph smoke_workload

let smoke_constraints = smoke_workload.Mclock_workloads.Workload.constraints

let with_pool ?(jobs = 1) f = Mclock_exec.Pool.with_pool ~jobs f

let explore ?cache ?constraints ?(jobs = 1) ?(max_clocks = 2) ?estimate_first
    ?top_k () =
  with_pool ~jobs (fun pool ->
      Engine.explore ~pool ?cache ?constraints ~seed:42 ~iterations:60
        ~max_clocks ?estimate_first ?top_k ~name:"facet"
        ~sched_constraints:smoke_constraints smoke_graph)

let sample_metrics =
  {
    Metrics.power_mw = 3.14159;
    area = 123456.75;
    latency_steps = 4;
    energy_per_computation_pj = 88.125;
    memory_cells = 11;
    mux_inputs = 12;
    functional_ok = true;
  }

let sample_key = String.make 32 'a'

(* --- Config ------------------------------------------------------------ *)

let test_enumerate_valid_and_unique () =
  let configs = Config.enumerate ~max_clocks:3 in
  List.iter
    (fun c ->
      if not (Config.is_valid ~max_clocks:3 c) then
        fail (Printf.sprintf "invalid config in grid: %s" (Config.label c)))
    configs;
  let labels = List.map Config.label configs in
  let dedup = List.sort_uniq String.compare labels in
  check Alcotest.int "labels unique" (List.length labels) (List.length dedup);
  (* 4 schedulers x (conv:3 + gated:3 + integrated:5 + split:2). *)
  check Alcotest.int "grid size" (4 * 13) (List.length configs)

let test_enumerate_deterministic () =
  let a = Config.enumerate ~max_clocks:4 in
  let b = Config.enumerate ~max_clocks:4 in
  check
    Alcotest.(list string)
    "same order" (List.map Config.label a) (List.map Config.label b)

let test_enumerate_rejects_bad_max () =
  Alcotest.check_raises "max_clocks 0"
    (Invalid_argument "Config.enumerate: max_clocks < 1") (fun () ->
      ignore (Config.enumerate ~max_clocks:0))

(* --- Cache keys -------------------------------------------------------- *)

let key_of ?(seed = 42) ?(iterations = 60) config =
  Cachekey.digest
    {
      Cachekey.graph = smoke_graph;
      width = 4;
      constraints = smoke_constraints;
      config;
      tech;
      seed;
      iterations;
    }

let test_cachekey_stable_and_sensitive () =
  let configs = Config.enumerate ~max_clocks:2 in
  let c0 = List.hd configs in
  check Alcotest.string "stable" (key_of c0) (key_of c0);
  (* Distinct configs, seeds and iteration counts must key distinct
     cells. *)
  let keys = List.map key_of configs in
  check Alcotest.int "configs key distinct cells"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  if key_of c0 = key_of ~seed:43 c0 then fail "seed not in key";
  if key_of c0 = key_of ~iterations:61 c0 then fail "iterations not in key"

let test_cachekey_graph_structure () =
  let other = Mclock_workloads.Workload.graph Mclock_workloads.Hal.t in
  let config = List.hd (Config.enumerate ~max_clocks:2) in
  let digest graph =
    Cachekey.digest
      {
        Cachekey.graph;
        width = 4;
        constraints = [];
        config;
        tech;
        seed = 42;
        iterations = 60;
      }
  in
  if digest smoke_graph = digest other then
    fail "different behaviours share a key"

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_json_roundtrip_exact () =
  (* Awkward floats on purpose: values with no finite decimal
     representation must still round-trip bit-exactly. *)
  let m =
    {
      sample_metrics with
      Metrics.power_mw = 0.1 +. 0.2;
      area = 1.0 /. 3.0;
      energy_per_computation_pj = Float.max_float;
    }
  in
  match Metrics.of_json (Metrics.to_json m) with
  | Ok m' ->
      if not (Metrics.equal m m') then fail "JSON round-trip not bit-exact"
  | Error e -> fail e

let test_constraint_parsing () =
  (match Metrics.parse_constraint "area<=12000.5" with
  | Ok (Metrics.Max_area f) -> check (Alcotest.float 0.0) "area" 12000.5 f
  | _ -> fail "area constraint");
  (match Metrics.parse_constraint " latency<=6 " with
  | Ok (Metrics.Max_latency 6) -> ()
  | _ -> fail "latency constraint");
  (match Metrics.parse_constraint "mem<=40" with
  | Ok (Metrics.Max_memory 40) -> ()
  | _ -> fail "mem constraint");
  (match Metrics.parse_constraint "power<=3.5" with
  | Ok (Metrics.Max_power f) -> check (Alcotest.float 0.0) "power" 3.5 f
  | _ -> fail "power constraint");
  (match Metrics.parse_constraint "energy<=900" with
  | Ok (Metrics.Max_energy f) -> check (Alcotest.float 0.0) "energy" 900. f
  | _ -> fail "energy constraint");
  (match Metrics.parse_constraint "throughput<=3" with
  | Error _ -> ()
  | Ok _ -> fail "unknown name must not parse");
  match Metrics.parse_constraint "area=3" with
  | Error _ -> ()
  | Ok _ -> fail "missing <= must not parse"

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let test_constraint_unknown_metric_diagnostic () =
  (* A typo'd metric name must produce a diagnostic that names the typo
     and lists every valid metric, not a bare parse failure. *)
  match Metrics.parse_constraint "powr<=3" with
  | Ok _ -> fail "typo'd metric must not parse"
  | Error msg ->
      List.iter
        (fun needle ->
          if not (string_contains ~needle msg) then
            fail (Printf.sprintf "diagnostic %S misses %S" msg needle))
        [ "powr"; "area"; "latency"; "mem"; "power"; "energy" ]

let test_constraint_to_string_roundtrip () =
  List.iter
    (fun c ->
      let rendered = Metrics.constraint_to_string c in
      match Metrics.parse_constraint rendered with
      | Ok c' when c = c' -> ()
      | Ok _ -> fail (Printf.sprintf "%s re-parsed differently" rendered)
      | Error e -> fail (Printf.sprintf "%s does not re-parse: %s" rendered e))
    [
      Metrics.Max_area 12000.5;
      Metrics.Max_latency 6;
      Metrics.Max_memory 40;
      Metrics.Max_power 4.5;
      Metrics.Max_energy 900.;
    ]

(* --- Store failure modes ----------------------------------------------- *)

let test_store_roundtrip () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  check Alcotest.bool "empty store misses" true (Store.find s ~key:sample_key = None);
  Store.store s ~key:sample_key sample_metrics;
  (match Store.find s ~key:sample_key with
  | Some m ->
      if not (Metrics.equal m sample_metrics) then fail "metrics changed"
  | None -> fail "stored entry not found");
  let stats = Store.stats s in
  check Alcotest.int "one hit" 1 stats.Store.hits;
  check Alcotest.int "one miss" 1 stats.Store.misses;
  check Alcotest.int "one store" 1 stats.Store.stores;
  check Alcotest.int "no failures" 0 stats.Store.store_failures;
  rm_rf dir

let test_store_truncated_entry_is_miss () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  Store.store s ~key:sample_key sample_metrics;
  let path = Store.entry_path s ~key:sample_key in
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 2)));
  check Alcotest.bool "truncated entry misses" true
    (Store.find s ~key:sample_key = None);
  rm_rf dir

let test_store_wrong_version_is_miss () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  Store.store s ~key:sample_key sample_metrics;
  let path = Store.entry_path s ~key:sample_key in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let bumped =
    (* Replace the first occurrence of the version-1 marker, whatever
       the exact whitespace the serializer used. *)
    let try_sub needle repl s =
      let nl = String.length needle in
      let rec scan i =
        if i + nl > String.length s then None
        else if String.sub s i nl = needle then
          Some
            (String.sub s 0 i ^ repl
            ^ String.sub s (i + nl) (String.length s - i - nl))
        else scan (i + 1)
      in
      scan 0
    in
    match try_sub "\"version\": 1" "\"version\": 999" text with
    | Some s -> s
    | None -> (
        match try_sub "\"version\":1" "\"version\":999" text with
        | Some s -> s
        | None -> fail "version marker not found in entry")
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc bumped);
  check Alcotest.bool "future-version entry misses" true
    (Store.find s ~key:sample_key = None);
  rm_rf dir

let test_store_digest_mismatch_is_miss () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  Store.store s ~key:sample_key sample_metrics;
  (* Move a valid entry under a different key: the recorded key no
     longer matches the address, so it must not be served. *)
  let other_key = String.make 32 'b' in
  Sys.rename (Store.entry_path s ~key:sample_key)
    (Store.entry_path s ~key:other_key);
  check Alcotest.bool "key-mismatched entry misses" true
    (Store.find s ~key:other_key = None);
  rm_rf dir

let test_store_garbage_entry_is_miss () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  Out_channel.with_open_bin (Store.entry_path s ~key:sample_key) (fun oc ->
      Out_channel.output_string oc "not json at all {{{");
  check Alcotest.bool "garbage entry misses" true
    (Store.find s ~key:sample_key = None);
  rm_rf dir

let test_store_unwritable_dir_never_raises () =
  (* chmod is useless under root, so simulate an unwritable cache
     directory with a path that is actually a regular file: mkdir,
     every write and every read fail on it, and none may raise. *)
  let dir = temp_dir () in
  let blocker = Filename.concat dir "not-a-dir" in
  Out_channel.with_open_bin blocker (fun oc ->
      Out_channel.output_string oc "x");
  let s = Store.open_ ~dir:blocker () in
  Store.store s ~key:sample_key sample_metrics;
  check Alcotest.bool "find on unwritable dir misses" true
    (Store.find s ~key:sample_key = None);
  check Alcotest.int "failure counted" 1 (Store.stats s).Store.store_failures;
  rm_rf dir

let test_store_tmp_sweep () =
  (* A run killed mid-store leaves a ".<key>.<pid>.tmp" orphan; opening
     the store must remove old ones, count them, and leave both young
     temp files (a live writer may still rename them) and real entries
     alone — whatever their age. *)
  let dir = temp_dir () in
  let stale = Filename.concat dir ".deadbeef.123.tmp" in
  let fresh = Filename.concat dir ".cafe.456.tmp" in
  Out_channel.with_open_bin stale (fun oc -> Out_channel.output_string oc "{");
  Out_channel.with_open_bin fresh (fun oc -> Out_channel.output_string oc "{");
  let old = Unix.gettimeofday () -. 7200. in
  Unix.utimes stale old old;
  let s = Store.open_ ~dir () in
  check Alcotest.int "one file swept" 1 (Store.stats s).Store.swept_tmp;
  check Alcotest.bool "stale tmp removed" false (Sys.file_exists stale);
  check Alcotest.bool "young tmp kept" true (Sys.file_exists fresh);
  (* An old *entry* is data, not garbage: reopening must never sweep
     it. *)
  Store.store s ~key:sample_key sample_metrics;
  Unix.utimes (Store.entry_path s ~key:sample_key) old old;
  let s2 = Store.open_ ~dir () in
  check Alcotest.int "nothing else swept" 0 (Store.stats s2).Store.swept_tmp;
  check Alcotest.bool "old entry survives reopen" true
    (Store.find s2 ~key:sample_key <> None);
  rm_rf dir

let test_store_unsafe_key_rejected () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  Store.store s ~key:"../evil" sample_metrics;
  check Alcotest.bool "path-hostile key misses" true
    (Store.find s ~key:"../evil" = None);
  check Alcotest.bool "nothing escaped the dir" false
    (Sys.file_exists (Filename.concat dir "../evil.json"));
  rm_rf dir

let test_store_gc_dry_run_previews_without_removing () =
  let dir = temp_dir () in
  let s = Store.open_ ~dir () in
  let keys = List.map (fun c -> String.make 32 c) [ 'a'; 'b'; 'c'; 'd' ] in
  List.iter (fun key -> Store.store s ~key sample_metrics) keys;
  (* Distinct, known mtimes so the victim span is deterministic. *)
  let now = Unix.gettimeofday () in
  List.iteri
    (fun i key ->
      let t = now -. float_of_int (100 * (List.length keys - i)) in
      Unix.utimes (Store.entry_path s ~key) t t)
    keys;
  let dry = Store.gc ~max_bytes:0 ~dry_run:true s in
  check Alcotest.int "dry run would remove everything" (List.length keys)
    dry.Store.gc_removed_entries;
  check Alcotest.int "dry run would leave nothing" 0
    dry.Store.gc_remaining_entries;
  check Alcotest.bool "dry run removed bytes counted" true
    (dry.Store.gc_removed_bytes > 0);
  (match (dry.Store.gc_oldest_removed, dry.Store.gc_newest_removed) with
  | Some oldest, Some newest ->
      if oldest > newest then fail "victim span inverted"
  | _ -> fail "dry run must report the victim mtime span");
  (* Nothing may actually have been deleted. *)
  List.iter
    (fun key ->
      if Store.find s ~key = None then
        fail (Printf.sprintf "dry-run gc deleted entry %s" key))
    keys;
  (* The real gc must then do exactly what the dry run predicted. *)
  let wet = Store.gc ~max_bytes:0 s in
  check Alcotest.int "real gc removes the predicted count"
    dry.Store.gc_removed_entries wet.Store.gc_removed_entries;
  check Alcotest.int "real gc removes the predicted bytes"
    dry.Store.gc_removed_bytes wet.Store.gc_removed_bytes;
  List.iter
    (fun key ->
      if Store.find s ~key <> None then
        fail (Printf.sprintf "real gc left entry %s behind" key))
    keys;
  rm_rf dir

(* --- Pareto ------------------------------------------------------------ *)

let point index label power area latency =
  {
    Pareto.index;
    label;
    metrics =
      {
        sample_metrics with
        Metrics.power_mw = power;
        area;
        latency_steps = latency;
      };
  }

let test_pareto_frontier_and_attribution () =
  let a = point 0 "a" 1.0 100.0 4 in
  let b = point 1 "b" 2.0 50.0 4 in
  let c = point 2 "c" 2.0 120.0 4 in
  (* dominated by a *)
  let d = point 3 "d" 3.0 60.0 4 in
  (* dominated by b *)
  let r = Pareto.frontier [ a; b; c; d ] in
  check
    Alcotest.(list string)
    "frontier" [ "a"; "b" ]
    (List.map (fun p -> p.Pareto.label) r.Pareto.frontier);
  let verdict label =
    let _, v =
      List.find (fun (p, _) -> p.Pareto.label = label) r.Pareto.verdicts
    in
    v
  in
  (match verdict "c" with
  | Pareto.Dominated_by p -> check Alcotest.string "c by a" "a" p.Pareto.label
  | Pareto.On_frontier -> fail "c should be dominated");
  match verdict "d" with
  | Pareto.Dominated_by p -> check Alcotest.string "d by b" "b" p.Pareto.label
  | Pareto.On_frontier -> fail "d should be dominated"

let test_pareto_ties_stay_on_frontier () =
  let a = point 0 "a" 1.0 100.0 4 in
  let b = point 1 "b" 1.0 100.0 4 in
  let r = Pareto.frontier [ a; b ] in
  check Alcotest.int "both on frontier" 2 (List.length r.Pareto.frontier)

let test_pareto_attribution_lands_on_frontier () =
  (* A chain a < b < c: c's first dominator in index order may itself
     be dominated; attribution must walk to a frontier point. *)
  let a = point 0 "a" 1.0 10.0 4 in
  let b = point 1 "b" 2.0 20.0 4 in
  let c = point 2 "c" 3.0 30.0 4 in
  let r = Pareto.frontier [ a; b; c ] in
  List.iter
    (function
      | _, Pareto.On_frontier -> ()
      | _, Pareto.Dominated_by q ->
          if not (List.memq q r.Pareto.frontier) then
            fail "attributed to a non-frontier point")
    r.Pareto.verdicts

(* --- Engine: determinism + cache soundness ----------------------------- *)

let frontier_string r = Mclock_lint.Json.to_string (Engine.frontier_json r)

(* The explored frontier must equal the frontier of brute-force
   exhaustive evaluation with no engine, no cache and no pool fan-out. *)
let test_engine_matches_exhaustive_uncached () =
  let r = explore () in
  let configs = Config.enumerate ~max_clocks:2 in
  let schedules = Hashtbl.create 4 in
  let brute =
    List.mapi
      (fun i config ->
        let sched =
          match Hashtbl.find_opt schedules config.Config.scheduler with
          | Some s -> s
          | None ->
              let s =
                Config.schedule config ~constraints:smoke_constraints
                  smoke_graph
              in
              Hashtbl.add schedules config.Config.scheduler s;
              s
        in
        let design = Config.synthesize config ~name:"x_facet" sched in
        let report =
          Mclock_power.Report.evaluate ~seed:42 ~iterations:60
            ~label:(Config.label config) tech design smoke_graph
        in
        {
          Pareto.index = i;
          label = Config.label config;
          metrics =
            Metrics.of_report ~config ~tech
              ~latency_steps:(Mclock_rtl.Design.num_steps design)
              report;
        })
      configs
  in
  let brute_frontier =
    (Pareto.frontier
       (List.filter (fun p -> p.Pareto.metrics.Metrics.functional_ok) brute))
      .Pareto.frontier
  in
  check Alcotest.int "same frontier size"
    (List.length brute_frontier)
    (List.length r.Engine.pareto.Pareto.frontier);
  List.iter2
    (fun bp ep ->
      check Alcotest.string "same config" bp.Pareto.label ep.Pareto.label;
      if not (Metrics.equal bp.Pareto.metrics ep.Pareto.metrics) then
        fail (Printf.sprintf "%s: metrics differ" bp.Pareto.label))
    brute_frontier r.Engine.pareto.Pareto.frontier

let test_engine_jobs_invariant () =
  let a = explore ~jobs:1 () in
  let b = explore ~jobs:3 () in
  check Alcotest.string "frontier byte-identical across job counts"
    (frontier_string a) (frontier_string b);
  check Alcotest.string "text render byte-identical across job counts"
    (Engine.render_text a) (Engine.render_text b)

let test_engine_warm_cache_soundness () =
  let dir = temp_dir () in
  let cache = Store.open_ ~dir () in
  let cold = explore ~cache () in
  let warm = explore ~cache ~jobs:2 () in
  check Alcotest.string "warm frontier byte-identical"
    (frontier_string cold) (frontier_string warm);
  check Alcotest.int "cold simulated everything"
    cold.Engine.stats.Engine.enumerated cold.Engine.stats.Engine.simulated;
  check Alcotest.int "warm simulated nothing" 0
    warm.Engine.stats.Engine.simulated;
  check Alcotest.int "warm hit everything"
    warm.Engine.stats.Engine.enumerated warm.Engine.stats.Engine.cache_hits;
  (* The acceptance bar: a warm rerun re-simulates >= 5x fewer cells. *)
  if
    cold.Engine.stats.Engine.simulated
    < 5 * max 1 warm.Engine.stats.Engine.simulated
  then fail "warm rerun not at least 5x cheaper";
  rm_rf dir

let test_engine_corrupt_cache_recovers () =
  let dir = temp_dir () in
  let cache = Store.open_ ~dir () in
  let cold = explore ~cache () in
  (* Vandalize every on-disk entry; the engine must silently fall back
     to simulation and reproduce the same frontier. *)
  Array.iter
    (fun f ->
      Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
          Out_channel.output_string oc "{ \"version\": 1, truncated"))
    (Sys.readdir dir);
  let rerun = explore ~cache () in
  check Alcotest.string "frontier identical after corruption"
    (frontier_string cold) (frontier_string rerun);
  check Alcotest.int "everything re-simulated"
    rerun.Engine.stats.Engine.enumerated rerun.Engine.stats.Engine.simulated;
  rm_rf dir

let test_engine_pruning_sound () =
  (* A constraint tight enough to prune the duplication variants: the
     kept frontier must equal the unconstrained frontier filtered to
     admissible points (pruning exactness), and pruned cells must not
     be simulated. *)
  let area_cap = 3.0e6 in
  let unconstrained = explore () in
  let constrained =
    explore ~constraints:[ Metrics.Max_area area_cap ] ()
  in
  check Alcotest.bool "something was pruned" true
    (constrained.Engine.stats.Engine.pruned > 0);
  check Alcotest.int "pruned cells not simulated"
    (constrained.Engine.stats.Engine.enumerated
    - constrained.Engine.stats.Engine.pruned)
    constrained.Engine.stats.Engine.simulated;
  let expected =
    List.filter
      (fun p -> p.Pareto.metrics.Metrics.area <= area_cap)
      unconstrained.Engine.pareto.Pareto.frontier
  in
  (* Every admissible unconstrained-frontier point survives as a
     constrained-frontier point with identical metrics (dominance only
     shrinks when points are removed). *)
  List.iter
    (fun p ->
      match
        List.find_opt
          (fun q -> q.Pareto.label = p.Pareto.label)
          constrained.Engine.pareto.Pareto.frontier
      with
      | Some q ->
          if not (Metrics.equal p.Pareto.metrics q.Pareto.metrics) then
            fail "metrics changed under constraints"
      | None -> fail (Printf.sprintf "%s lost by pruning" p.Pareto.label))
    expected

let test_engine_power_pruning_differential () =
  (* power<=X is a certified-bound constraint: the pruned set must be
     exactly the cells whose deterministic static bound exceeds the
     cap (pre-prune and post-evaluation views agree), no simulated
     cell may exceed the cap on its bound, and every admissible
     unconstrained-frontier point survives untouched. *)
  let unconstrained = explore () in
  let bounds = List.map (fun c -> c.Engine.bounds.Metrics.b_power_mw)
      unconstrained.Engine.cells in
  (* A cap between the min and max bound so both outcomes occur. *)
  let cap =
    let mn = List.fold_left Float.min Float.max_float bounds in
    let mx = List.fold_left Float.max 0. bounds in
    (mn +. mx) /. 2.
  in
  let constrained = explore ~constraints:[ Metrics.Max_power cap ] () in
  check Alcotest.bool "something was pruned" true
    (constrained.Engine.stats.Engine.pruned > 0);
  check Alcotest.bool "something survived" true
    (constrained.Engine.stats.Engine.simulated > 0);
  List.iter2
    (fun (u : Engine.cell) (c : Engine.cell) ->
      check Alcotest.string "same grid" u.Engine.cell_label c.Engine.cell_label;
      let should_prune = u.Engine.bounds.Metrics.b_power_mw > cap in
      match c.Engine.status with
      | Engine.Pruned v ->
          check Alcotest.bool
            (Printf.sprintf "%s pruned only above cap" c.Engine.cell_label)
            true should_prune;
          check Alcotest.bool "violation names the power cap" true
            (List.mem (Metrics.Max_power cap) v)
      | Engine.Skipped _ -> fail "no top-k in this run"
      | Engine.Cached m | Engine.Simulated m ->
          check Alcotest.bool
            (Printf.sprintf "%s kept only within cap" c.Engine.cell_label)
            false should_prune;
          (* The certificate: an evaluated survivor never violates. *)
          check Alcotest.bool
            (Printf.sprintf "%s simulated within cap" c.Engine.cell_label)
            true
            (m.Metrics.power_mw <= cap))
    unconstrained.Engine.cells constrained.Engine.cells;
  (* Admissible unconstrained-frontier points survive with identical
     metrics, exactly as with the area constraint. *)
  List.iter
    (fun p ->
      let cell =
        List.find
          (fun c -> c.Engine.cell_label = p.Pareto.label)
          unconstrained.Engine.cells
      in
      if cell.Engine.bounds.Metrics.b_power_mw <= cap then
        match
          List.find_opt
            (fun q -> q.Pareto.label = p.Pareto.label)
            constrained.Engine.pareto.Pareto.frontier
        with
        | Some q ->
            if not (Metrics.equal p.Pareto.metrics q.Pareto.metrics) then
              fail "metrics changed under power constraint"
        | None -> fail (Printf.sprintf "%s lost by power pruning" p.Pareto.label))
    unconstrained.Engine.pareto.Pareto.frontier

let test_engine_estimate_first_invariant () =
  (* Ranking the misses by static estimate changes only the submission
     order; the cells and frontier must be byte-identical to the plain
     enumeration-order run. *)
  let plain = explore () in
  let ranked = explore ~estimate_first:true () in
  check Alcotest.int "same simulated count"
    plain.Engine.stats.Engine.simulated ranked.Engine.stats.Engine.simulated;
  check Alcotest.int "nothing skipped" 0 ranked.Engine.stats.Engine.skipped;
  List.iter2
    (fun (a : Engine.cell) (b : Engine.cell) ->
      check Alcotest.string "label" a.Engine.cell_label b.Engine.cell_label;
      match (a.Engine.status, b.Engine.status) with
      | Engine.Simulated m, Engine.Simulated m' ->
          if not (Metrics.equal m m') then fail "metrics differ under ranking"
      | Engine.Pruned _, Engine.Pruned _ -> ()
      | _ -> fail "status changed under ranking")
    plain.Engine.cells ranked.Engine.cells;
  check Alcotest.string "frontier identical"
    (String.concat ","
       (List.map (fun p -> p.Pareto.label) plain.Engine.pareto.Pareto.frontier))
    (String.concat ","
       (List.map (fun p -> p.Pareto.label) ranked.Engine.pareto.Pareto.frontier))

let test_engine_top_k_cutoff () =
  (* top_k simulates exactly the k best-ranked misses; the skipped
     cells carry their static estimate, and every simulated cell's
     estimate is <= every skipped cell's estimate. *)
  let k = 3 in
  let r = explore ~top_k:k () in
  check Alcotest.int "simulated = k" k r.Engine.stats.Engine.simulated;
  check Alcotest.int "skipped = misses - k"
    (r.Engine.stats.Engine.cache_misses - k)
    r.Engine.stats.Engine.skipped;
  let skipped_estimates =
    List.filter_map
      (fun (c : Engine.cell) ->
        match c.Engine.status with
        | Engine.Skipped est -> Some est
        | _ -> None)
      r.Engine.cells
  in
  check Alcotest.int "skipped statuses match stats"
    r.Engine.stats.Engine.skipped
    (List.length skipped_estimates);
  (* Rerunning with a cache: the k simulated cells become hits and the
     next k misses get their turn. *)
  let dir = temp_dir () in
  let cache = Store.open_ ~dir () in
  let warm1 = explore ~cache ~top_k:k () in
  let warm2 = explore ~cache ~top_k:k () in
  check Alcotest.int "second pass re-simulates k more" k
    warm2.Engine.stats.Engine.simulated;
  check Alcotest.int "second pass serves k hits" k
    warm2.Engine.stats.Engine.cache_hits;
  check Alcotest.int "first pass simulated k" k
    warm1.Engine.stats.Engine.simulated;
  rm_rf dir

let test_engine_scaled_cells_consistent () =
  (* The pre-simulation bounds must equal the evaluated metrics for
     area and latency on every cell — including the Scaled transform —
     otherwise pruning could disagree with evaluation. *)
  let r = explore () in
  List.iter
    (fun (c : Engine.cell) ->
      match c.Engine.status with
      | Engine.Pruned _ | Engine.Skipped _ -> ()
      | Engine.Cached m | Engine.Simulated m ->
          if not (Float.equal c.Engine.bounds.Metrics.b_area m.Metrics.area)
          then fail (Printf.sprintf "%s: bound area differs" c.Engine.cell_label);
          check Alcotest.int
            (Printf.sprintf "%s: bound latency" c.Engine.cell_label)
            c.Engine.bounds.Metrics.b_latency_steps m.Metrics.latency_steps;
          check Alcotest.int
            (Printf.sprintf "%s: bound memory" c.Engine.cell_label)
            c.Engine.bounds.Metrics.b_memory_cells m.Metrics.memory_cells;
          (* Power and energy bounds are certificates, not equalities. *)
          check Alcotest.bool
            (Printf.sprintf "%s: power within bound" c.Engine.cell_label)
            true
            (m.Metrics.power_mw
            <= c.Engine.bounds.Metrics.b_power_mw *. (1. +. 1e-9));
          check Alcotest.bool
            (Printf.sprintf "%s: energy within bound" c.Engine.cell_label)
            true
            (m.Metrics.energy_per_computation_pj
            <= c.Engine.bounds.Metrics.b_energy_pj *. (1. +. 1e-9)))
    r.Engine.cells

(* Regression for an indexing bug class: [Engine.best] resolves the
   objective's winning index against the *evaluated* cell list (grid
   order, pruned/failed cells excluded), not the full grid.  Derive
   that list independently and pin the correspondence. *)
let test_engine_best_index_correspondence () =
  let r = explore () in
  let objective = Objective.default in
  let evaluated =
    List.filter_map
      (fun (c : Engine.cell) ->
        match c.Engine.status with
        | (Engine.Cached m | Engine.Simulated m) when m.Metrics.functional_ok
          ->
            Some (c, m)
        | _ -> None)
      r.Engine.cells
  in
  check Alcotest.bool "grid has evaluated cells" true (evaluated <> []);
  match Engine.best ~objective r with
  | None -> fail "functional grid has no best"
  | Some (cell, score) -> (
      match Objective.best objective (List.map snd evaluated) with
      | None -> fail "objective scan is empty"
      | Some (i, expected_score) ->
          let expected_cell, _ = List.nth evaluated i in
          check Alcotest.string "best resolves the objective's index"
            expected_cell.Engine.cell_label cell.Engine.cell_label;
          if not (Float.equal score expected_score) then
            fail "best score differs from the objective's")

let suite =
  [
    ("enumerate valid+unique", `Quick, test_enumerate_valid_and_unique);
    ("enumerate deterministic", `Quick, test_enumerate_deterministic);
    ("enumerate rejects bad max", `Quick, test_enumerate_rejects_bad_max);
    ("cachekey stable+sensitive", `Quick, test_cachekey_stable_and_sensitive);
    ("cachekey graph structure", `Quick, test_cachekey_graph_structure);
    ("metrics json bit-exact", `Quick, test_metrics_json_roundtrip_exact);
    ("constraint parsing", `Quick, test_constraint_parsing);
    ( "constraint unknown metric diagnostic",
      `Quick,
      test_constraint_unknown_metric_diagnostic );
    ("constraint to_string roundtrip", `Quick, test_constraint_to_string_roundtrip);
    ("store roundtrip", `Quick, test_store_roundtrip);
    ("store tmp sweep", `Quick, test_store_tmp_sweep);
    ("store truncated entry", `Quick, test_store_truncated_entry_is_miss);
    ("store wrong version", `Quick, test_store_wrong_version_is_miss);
    ("store digest mismatch", `Quick, test_store_digest_mismatch_is_miss);
    ("store garbage entry", `Quick, test_store_garbage_entry_is_miss);
    ("store unwritable dir", `Quick, test_store_unwritable_dir_never_raises);
    ("store unsafe key", `Quick, test_store_unsafe_key_rejected);
    ("store gc dry run", `Quick, test_store_gc_dry_run_previews_without_removing);
    ("pareto frontier+attribution", `Quick, test_pareto_frontier_and_attribution);
    ("pareto ties", `Quick, test_pareto_ties_stay_on_frontier);
    ("pareto attribution on frontier", `Quick, test_pareto_attribution_lands_on_frontier);
    ("engine = exhaustive uncached", `Quick, test_engine_matches_exhaustive_uncached);
    ("engine jobs-invariant", `Quick, test_engine_jobs_invariant);
    ("engine warm cache sound", `Quick, test_engine_warm_cache_soundness);
    ("engine corrupt cache recovers", `Quick, test_engine_corrupt_cache_recovers);
    ("engine pruning sound", `Quick, test_engine_pruning_sound);
    ("engine power pruning differential", `Quick, test_engine_power_pruning_differential);
    ("engine estimate-first invariant", `Quick, test_engine_estimate_first_invariant);
    ("engine top-k cutoff", `Quick, test_engine_top_k_cutoff);
    ("engine scaled cells consistent", `Quick, test_engine_scaled_cells_consistent);
    ("engine best index correspondence", `Quick, test_engine_best_index_correspondence);
  ]
