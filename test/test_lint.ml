(* Tests for mclock_lint: one seeded-violation fixture per rule (each
   triggers its rule exactly once), allocator cleanliness over the
   whole workload catalog, JSON round-trips, and the CDC acceptance
   case (a deliberately removed transfer register must fire MC006). *)

open Mclock_dfg
open Mclock_rtl
open Mclock_lint

let check = Alcotest.check
let fail = Alcotest.fail

let count_code code ds =
  List.length (List.filter (fun d -> d.Diagnostic.code = code) ds)

(* Assert the fixture fires [code] exactly once; other codes may ride
   along (e.g. a deliberately broken design is often also dead), the
   seeded violation must not. *)
let fires_once code ds =
  check Alcotest.int
    (Printf.sprintf "%s fires exactly once in:\n%s" code (Diagnostic.render ds))
    1 (count_code code ds)

(* --- Fixture scaffolding -------------------------------------------------- *)

let design_of ?(phases = 1) ?(style = Design.multiclock_style)
    ?(input_ports = []) ?(output_taps = []) dp words =
  Design.create ~name:"fixture" ~behaviour:"fixture" ~datapath:dp
    ~control:(Control.create words)
    ~clock:(Clock.create ~phases ~frequency:1e6)
    ~style ~input_ports ~output_taps

(* in -> alu(+1) -> latch, output-tapped. *)
let tiny_latch_pipeline () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp a) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[ 1 ]
  in
  let reg =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "x" ]
  in
  Datapath.set_output dp (Var.v "x") (Comp.From_comp reg);
  (dp, a, alu, reg)

let tap reg =
  [ { Design.var = Var.v "x"; source = Comp.From_comp reg; ready_step = 1 } ]

(* --- MC002 partition discipline ------------------------------------------- *)

let test_mc002_off_phase_load () =
  let dp, a, _, reg = tiny_latch_pipeline () in
  (* The latch claims phase 2 but is loaded at step 1 (phase 1). *)
  (match Comp.kind (Datapath.comp dp reg) with
  | Comp.Storage s ->
      Datapath.replace_kind dp reg (Comp.Storage { s with Comp.s_phase = 2 })
  | _ -> fail "expected storage");
  let d =
    design_of ~phases:2
      ~input_ports:[ (Var.v "a", a) ]
      ~output_taps:(tap reg) dp
      [
        { Control.selects = []; loads = [ reg ]; alu_ops = [] };
        Control.empty_word;
      ]
  in
  fires_once "MC002" (Lint.design d)

(* --- MC003 latch read/write ----------------------------------------------- *)

let test_mc003_latch_race () =
  let dp = Datapath.create ~width:4 in
  let l1 =
    Datapath.add_storage dp ~name:"l1" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_const 0) ~gated:false ~holds:[ Var.v "x" ]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp l1) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[]
  in
  let l2 =
    Datapath.add_storage dp ~name:"l2" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "y" ]
  in
  (* l1 is loaded (from a constant) in the very step l2 latches the
     ALU result that reads l1: a one-directional READ/WRITE race. *)
  Datapath.set_output dp (Var.v "y") (Comp.From_comp l2);
  let d =
    design_of
      ~output_taps:
        [ { Design.var = Var.v "y"; source = Comp.From_comp l2; ready_step = 1 } ]
      dp
      [ { Control.selects = []; loads = [ l1; l2 ]; alu_ops = [] } ]
  in
  fires_once "MC003" (Lint.design d)

(* --- MC004 / MC005 control sanity ------------------------------------------ *)

let muxed_pipeline () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let b = Datapath.add_input dp (Var.v "b") in
  let mux =
    Datapath.add_mux dp ~name:"m" ~phase:1
      ~choices:[| Comp.From_comp a; Comp.From_comp b |]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp mux) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[ 1 ]
  in
  let reg =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "x" ]
  in
  Datapath.set_output dp (Var.v "x") (Comp.From_comp reg);
  (dp, mux, alu, reg)

let test_mc004_select_out_of_range () =
  let dp, mux, _, reg = muxed_pipeline () in
  let d =
    design_of ~style:Design.conventional_style ~output_taps:(tap reg) dp
      [ { Control.selects = [ (mux, 7) ]; loads = [ reg ]; alu_ops = [] } ]
  in
  fires_once "MC004" (Lint.design d)

let test_mc005_foreign_op () =
  let dp, mux, alu, reg = muxed_pipeline () in
  let d =
    design_of ~style:Design.conventional_style ~output_taps:(tap reg) dp
      [
        {
          Control.selects = [ (mux, 0) ];
          loads = [ reg ];
          alu_ops = [ (alu, Op.Div) ];
        };
      ]
  in
  fires_once "MC005" (Lint.design d)

(* --- MC006 missing transfer register ---------------------------------------- *)

(* Two latches written in different partitions feed one ALU directly:
   the paper requires the phase-1 operand to be copied through a
   transfer register in the ALU's partition first. *)
let test_mc006_missing_transfer () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let l1 =
    Datapath.add_storage dp ~name:"l1" ~kind:Mclock_tech.Library.Latch ~phase:1
      ~input:(Comp.From_comp a) ~gated:false ~holds:[ Var.v "u" ]
  in
  let l2 =
    Datapath.add_storage dp ~name:"l2" ~kind:Mclock_tech.Library.Latch ~phase:2
      ~input:(Comp.From_comp a) ~gated:false ~holds:[ Var.v "v" ]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:2
      ~src_a:(Comp.From_comp l1) ~src_b:(Some (Comp.From_comp l2))
      ~isolated:false ~ops:[ 1 ]
  in
  let out =
    Datapath.add_storage dp ~name:"out" ~kind:Mclock_tech.Library.Latch
      ~phase:2 ~input:(Comp.From_comp alu) ~gated:false ~holds:[ Var.v "x" ]
  in
  Datapath.set_output dp (Var.v "x") (Comp.From_comp out);
  let d =
    design_of ~phases:2
      ~input_ports:[ (Var.v "a", a) ]
      ~output_taps:(tap out) dp
      [
        { Control.selects = []; loads = [ l1 ]; alu_ops = [] };
        { Control.selects = []; loads = [ l2 ]; alu_ops = [] };
        Control.empty_word;
        { Control.selects = []; loads = [ out ]; alu_ops = [] };
      ]
  in
  fires_once "MC006" (Lint.design d)

(* The acceptance case: the integrated allocator with transfer
   insertion deliberately disabled must stop being lint-clean, and the
   rule that fires must be the CDC one. *)
let test_mc006_removed_transfers_end_to_end () =
  let hit = ref false in
  List.iter
    (fun w ->
      let s = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun n ->
          let r =
            Mclock_core.Integrated.run ~transfers:false ~n ~name:"notr" s
          in
          let ds = Lint.design r.Mclock_core.Integrated.design in
          if count_code "MC006" ds > 0 then hit := true;
          (* Nothing else may break: disabling transfers violates only
             the transfer discipline. *)
          List.iter
            (fun d ->
              if d.Diagnostic.code <> "MC006" then
                fail
                  (Printf.sprintf "unexpected %s on %s (n=%d): %s"
                     d.Diagnostic.code w.Mclock_workloads.Workload.name n
                     d.Diagnostic.message))
            ds)
        [ 2; 3 ])
    Mclock_workloads.Catalog.all;
  check Alcotest.bool "MC006 fires somewhere without transfers" true !hit

(* --- MC007 combinational loop ---------------------------------------------- *)

let test_mc007_comb_loop () =
  let dp = Datapath.create ~width:4 in
  let alu1 =
    Datapath.add_alu dp ~name:"a1" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp 2) ~src_b:None ~isolated:false ~ops:[]
  in
  let _alu2 =
    Datapath.add_alu dp ~name:"a2" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp alu1) ~src_b:None ~isolated:false ~ops:[]
  in
  fires_once "MC007" (Lint.datapath dp)

let test_mc007_self_loop () =
  let dp = Datapath.create ~width:4 in
  let _alu =
    Datapath.add_alu dp ~name:"a" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp 1) ~src_b:None ~isolated:false ~ops:[]
  in
  fires_once "MC007" (Lint.datapath dp)

(* --- MC008 width ------------------------------------------------------------ *)

let test_mc008_constant_too_wide () =
  let dp = Datapath.create ~width:4 in
  let a = Datapath.add_input dp (Var.v "a") in
  let _alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp a) ~src_b:(Some (Comp.From_const 99))
      ~isolated:false ~ops:[]
  in
  fires_once "MC008" (Lint.datapath dp)

(* --- MC009 dead component --------------------------------------------------- *)

let test_mc009_dead_storage () =
  let dp, _, _, reg = tiny_latch_pipeline () in
  (* A second latch nobody reads. *)
  let _orphan =
    Datapath.add_storage dp ~name:"orphan" ~kind:Mclock_tech.Library.Latch
      ~phase:1 ~input:(Comp.From_const 0) ~gated:false ~holds:[]
  in
  let d =
    design_of ~output_taps:(tap reg) dp
      [ { Control.selects = []; loads = [ reg ]; alu_ops = [] } ]
  in
  fires_once "MC009" (Lint.design d)

(* --- MC010 latch transparency ----------------------------------------------- *)

let test_mc010_transparent_self_loop () =
  let dp = Datapath.create ~width:4 in
  let l =
    Datapath.add_storage dp ~name:"acc" ~kind:Mclock_tech.Library.Latch
      ~phase:1 ~input:(Comp.From_const 0) ~gated:false ~holds:[ Var.v "x" ]
  in
  let alu =
    Datapath.add_alu dp ~name:"alu" ~fset:(Op.Set.singleton Op.Add) ~phase:1
      ~src_a:(Comp.From_comp l) ~src_b:(Some (Comp.From_const 1))
      ~isolated:false ~ops:[]
  in
  (match Comp.kind (Datapath.comp dp l) with
  | Comp.Storage s ->
      Datapath.replace_kind dp l
        (Comp.Storage { s with Comp.s_input = Comp.From_comp alu })
  | _ -> fail "expected storage");
  Datapath.set_output dp (Var.v "x") (Comp.From_comp l);
  let d =
    design_of ~output_taps:(tap l) dp
      [ { Control.selects = []; loads = [ l ]; alu_ops = [] } ]
  in
  let ds = Lint.design d in
  fires_once "MC010" ds;
  (* The same accumulator on an edge-triggered register is fine. *)
  (match Comp.kind (Datapath.comp dp l) with
  | Comp.Storage s ->
      Datapath.replace_kind dp l
        (Comp.Storage { s with Comp.s_kind = Mclock_tech.Library.Register })
  | _ -> fail "expected storage");
  let d =
    design_of ~style:Design.conventional_style ~output_taps:(tap l) dp
      [ { Control.selects = []; loads = [ l ]; alu_ops = [] } ]
  in
  check Alcotest.int "register accumulator is clean" 0
    (count_code "MC010" (Lint.design d))

(* --- MC011 dangling reference ------------------------------------------------ *)

let test_mc011_dangling () =
  let dp = Datapath.create ~width:4 in
  let _ =
    Datapath.add_storage dp ~name:"r" ~kind:Mclock_tech.Library.Register
      ~phase:1 ~input:(Comp.From_comp 99) ~gated:false ~holds:[]
  in
  fires_once "MC011" (Lint.datapath dp)

(* --- MC101-MC105 behaviour rules --------------------------------------------- *)

let behaviour_graph () =
  (* y = (a + b) * c, with a dead node and an unused input d. *)
  Graph.create ~name:"g"
    ~inputs:[ Var.v "a"; Var.v "b"; Var.v "c"; Var.v "d" ]
    ~outputs:[ Var.v "y" ]
    [
      Node.make ~id:1 ~op:Op.Add
        ~operands:[ Node.Operand_var (Var.v "a"); Node.Operand_var (Var.v "b") ]
        ~result:(Var.v "t");
      Node.make ~id:2 ~op:Op.Mul
        ~operands:[ Node.Operand_var (Var.v "t"); Node.Operand_var (Var.v "c") ]
        ~result:(Var.v "y");
      Node.make ~id:3 ~op:Op.Sub
        ~operands:[ Node.Operand_var (Var.v "t"); Node.Operand_var (Var.v "c") ]
        ~result:(Var.v "dead");
    ]

let test_mc101_unscheduled () =
  fires_once "MC101"
    (Lint.schedule (behaviour_graph ()) [ (1, 1); (2, 2) ] (* 3 missing *))

let test_mc102_bad_binding () =
  let g = behaviour_graph () in
  fires_once "MC102" (Lint.schedule g [ (1, 1); (2, 2); (3, 2); (99, 1) ]);
  fires_once "MC102" (Lint.schedule g [ (1, 1); (1, 2); (2, 3); (3, 3) ]);
  fires_once "MC102" (Lint.schedule g [ (1, 0); (2, 2); (3, 2) ])

let test_mc103_dependency_violation () =
  (* Node 2 consumes t in the same step node 1 produces it. *)
  fires_once "MC103"
    (Lint.schedule (behaviour_graph ()) [ (1, 1); (2, 1); (3, 2) ])

let test_mc104_unused_input () =
  let ds = Lint.graph (behaviour_graph ()) in
  fires_once "MC104" ds;
  (match List.find_opt (fun d -> d.Diagnostic.code = "MC104") ds with
  | Some d ->
      check Alcotest.string "info severity" "info"
        (Diagnostic.severity_label d.Diagnostic.severity)
  | None -> fail "MC104 missing")

let test_mc105_dead_node () = fires_once "MC105" (Lint.graph (behaviour_graph ()))

(* --- Allocator cleanliness over the catalog ----------------------------------- *)

let all_methods =
  [
    Mclock_core.Flow.Conventional_non_gated;
    Mclock_core.Flow.Conventional_gated;
    Mclock_core.Flow.Integrated 1;
    Mclock_core.Flow.Integrated 2;
    Mclock_core.Flow.Integrated 3;
    Mclock_core.Flow.Split 1;
    Mclock_core.Flow.Split 2;
    Mclock_core.Flow.Split 3;
  ]

let test_catalog_lint_clean () =
  List.iter
    (fun w ->
      let s = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun m ->
          (* synthesize itself lints (raising Lint_failed on errors);
             assert the stronger property that not even warnings or
             info diagnostics remain. *)
          let d =
            Mclock_core.Flow.synthesize ~method_:m
              ~name:w.Mclock_workloads.Workload.name s
          in
          match Lint.design d with
          | [] -> ()
          | ds ->
              fail
                (Printf.sprintf "%s under %s:\n%s"
                   w.Mclock_workloads.Workload.name
                   (Mclock_core.Flow.method_label m)
                   (Diagnostic.render ds)))
        all_methods)
    Mclock_workloads.Catalog.all

(* The split method's direct cross-partition connections are its
   defining shortcut (paper §4.1): its designs must declare the MC006
   waiver, while the integrated method keeps the claim. *)
let test_split_waives_cdc () =
  let w = List.hd Mclock_workloads.Catalog.all in
  let s = Mclock_workloads.Workload.schedule w in
  let claim m =
    let d = Mclock_core.Flow.synthesize ~method_:m ~name:"waiver" s in
    (Design.style d).Design.cross_partition_transfers
  in
  check Alcotest.bool "split waives the transfer discipline" false
    (claim (Mclock_core.Flow.Split 2));
  check Alcotest.bool "integrated claims the transfer discipline" true
    (claim (Mclock_core.Flow.Integrated 2))

let test_catalog_behaviour_clean () =
  List.iter
    (fun w ->
      let g = Mclock_workloads.Workload.graph w in
      let s = Mclock_workloads.Workload.schedule w in
      match Lint.behaviour g (Mclock_sched.Schedule.assignments s) with
      | [] -> ()
      | ds ->
          fail
            (Printf.sprintf "%s behaviour:\n%s" w.Mclock_workloads.Workload.name
               (Diagnostic.render ds)))
    Mclock_workloads.Catalog.all

(* --- Diagnostics framework ----------------------------------------------------- *)

let test_catalog_rule_codes_unique () =
  let codes = List.map (fun i -> i.Rules.code) Rules.catalog in
  check Alcotest.int "codes unique"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  check Alcotest.bool "lookup by code" true (Rules.find "MC006" <> None);
  check Alcotest.bool "lookup by slug" true (Rules.find "cdc-transfer" <> None);
  check Alcotest.bool "unknown lookup" true (Rules.find "MC999" = None)

let test_werror_promotes () =
  let ds = Lint.graph (behaviour_graph ()) in
  check Alcotest.bool "not all errors" true (Diagnostic.errors ds = []);
  let promoted = Diagnostic.promote ~werror:true ds in
  check Alcotest.int "all promoted"
    (List.length promoted)
    (List.length (Diagnostic.errors promoted))

let test_render_mentions_code_and_summary () =
  let ds = Lint.graph (behaviour_graph ()) in
  let text = Diagnostic.render ds in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "mentions MC104" true (contains text "MC104");
  check Alcotest.bool "has summary line" true (contains text "warning(s)");
  check Alcotest.string "clean render" "clean (no diagnostics)"
    (Diagnostic.render [])

(* --- JSON ----------------------------------------------------------------------- *)

let test_json_roundtrip_diagnostics () =
  (* Collect a diverse diagnostic set: every behaviour rule plus a few
     design rules with steps and component locations. *)
  let dp, _, _, reg = tiny_latch_pipeline () in
  let design =
    design_of ~output_taps:(tap reg) dp
      [ { Control.selects = [ (reg, 0) ]; loads = [ reg ]; alu_ops = [] } ]
  in
  let ds =
    Lint.design design
    @ Lint.graph (behaviour_graph ())
    @ Lint.schedule (behaviour_graph ()) [ (1, 1); (2, 1) ]
  in
  check Alcotest.bool "fixture produced diagnostics" true (ds <> []);
  let json = Diagnostic.list_to_json ~subject:"fixture" ds in
  let text = Json.to_string json in
  match Json.parse text with
  | Error e -> fail ("emitted JSON does not parse: " ^ e)
  | Ok parsed -> (
      check Alcotest.bool "round-trips structurally" true (parsed = json);
      match Json.member "diagnostics" parsed with
      | Some (Json.List items) ->
          check Alcotest.int "all diagnostics present" (List.length ds)
            (List.length items);
          let decoded =
            List.map
              (fun item ->
                match Diagnostic.of_json item with
                | Ok d -> d
                | Error e -> fail ("diagnostic does not decode: " ^ e))
              items
          in
          let sorted = List.sort Diagnostic.compare ds in
          check Alcotest.bool "decoded equals original" true (decoded = sorted)
      | _ -> fail "no diagnostics array")

let test_json_parser_basics () =
  let roundtrip v =
    match Json.parse (Json.to_string v) with
    | Ok v' -> check Alcotest.bool (Json.to_string v) true (v = v')
    | Error e -> fail e
  in
  roundtrip Json.Null;
  roundtrip (Json.Bool true);
  roundtrip (Json.Int (-42));
  roundtrip (Json.String "quote \" backslash \\ newline \n tab \t");
  roundtrip (Json.List [ Json.Int 1; Json.String "two"; Json.Null ]);
  roundtrip
    (Json.Obj
       [ ("a", Json.List []); ("b", Json.Obj [ ("nested", Json.Bool false) ]) ]);
  (match Json.parse "{\"a\": [1, 2.5, \"x\"], \"b\": null}" with
  | Ok (Json.Obj _) -> ()
  | Ok _ | Error _ -> fail "hand-written JSON should parse");
  (match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> fail "bad JSON should not parse");
  match Json.parse "[1] trailing" with
  | Error _ -> ()
  | Ok _ -> fail "trailing garbage should not parse"

(* --- Pretty rendering of JSON matches compact structurally ----------------------- *)

let test_json_pretty_equivalent () =
  let ds = Lint.graph (behaviour_graph ()) in
  let json = Diagnostic.list_to_json ds in
  match (Json.parse (Json.to_string_pretty json), Json.parse (Json.to_string json)) with
  | Ok a, Ok b -> check Alcotest.bool "pretty == compact" true (a = b)
  | _ -> fail "pretty output should parse"

let suite =
  [
    ("MC002 off-phase load", `Quick, test_mc002_off_phase_load);
    ("MC003 latch race", `Quick, test_mc003_latch_race);
    ("MC004 select out of range", `Quick, test_mc004_select_out_of_range);
    ("MC005 foreign op", `Quick, test_mc005_foreign_op);
    ("MC006 missing transfer", `Quick, test_mc006_missing_transfer);
    ("MC006 without transfer insertion", `Slow, test_mc006_removed_transfers_end_to_end);
    ("MC007 comb loop", `Quick, test_mc007_comb_loop);
    ("MC007 self loop", `Quick, test_mc007_self_loop);
    ("MC008 constant too wide", `Quick, test_mc008_constant_too_wide);
    ("MC009 dead storage", `Quick, test_mc009_dead_storage);
    ("MC010 transparent self-loop", `Quick, test_mc010_transparent_self_loop);
    ("MC011 dangling reference", `Quick, test_mc011_dangling);
    ("MC101 unscheduled node", `Quick, test_mc101_unscheduled);
    ("MC102 bad bindings", `Quick, test_mc102_bad_binding);
    ("MC103 dependency violation", `Quick, test_mc103_dependency_violation);
    ("MC104 unused input", `Quick, test_mc104_unused_input);
    ("MC105 dead node", `Quick, test_mc105_dead_node);
    ("catalog designs lint-clean", `Slow, test_catalog_lint_clean);
    ("split waives cdc discipline", `Quick, test_split_waives_cdc);
    ("catalog behaviours lint-clean", `Quick, test_catalog_behaviour_clean);
    ("rule codes unique", `Quick, test_catalog_rule_codes_unique);
    ("werror promotes", `Quick, test_werror_promotes);
    ("render output", `Quick, test_render_mentions_code_and_summary);
    ("json diagnostics round-trip", `Quick, test_json_roundtrip_diagnostics);
    ("json parser basics", `Quick, test_json_parser_basics);
    ("json pretty equivalent", `Quick, test_json_pretty_equivalent);
  ]
