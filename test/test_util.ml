(* Unit tests for mclock_util: RNG, bit vectors, intervals, tables. *)

open Mclock_util

let check = Alcotest.check
let fail = Alcotest.fail

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  List.iter
    (fun _ -> check Alcotest.int "same stream" (Rng.bits a) (Rng.bits b))
    (List_ext.range 1 50)

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.map (fun _ -> Rng.bits a) (List_ext.range 1 10) in
  let ys = List.map (fun _ -> Rng.bits b) (List_ext.range 1 10) in
  if xs = ys then fail "different seeds gave identical streams"

let test_rng_int_range () =
  let rng = Rng.create 3 in
  List.iter
    (fun _ ->
      let x = Rng.int rng 10 in
      if x < 0 || x >= 10 then fail (Printf.sprintf "out of range: %d" x))
    (List_ext.range 1 200)

let test_rng_int_in_range () =
  let rng = Rng.create 4 in
  List.iter
    (fun _ ->
      let x = Rng.int_in_range rng ~lo:5 ~hi:8 in
      if x < 5 || x > 8 then fail "int_in_range out of bounds")
    (List_ext.range 1 100)

let test_rng_int_invalid () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let xs = List.map (fun _ -> Rng.bits parent) (List_ext.range 1 10) in
  let ys = List.map (fun _ -> Rng.bits child) (List_ext.range 1 10) in
  if xs = ys then fail "split stream equals parent stream"

let test_rng_choose () =
  let rng = Rng.create 6 in
  List.iter
    (fun _ ->
      let x = Rng.choose rng [ 1; 2; 3 ] in
      if not (List.mem x [ 1; 2; 3 ]) then fail "choose out of list")
    (List_ext.range 1 50)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 8 in
  let original = List_ext.range 1 20 in
  let shuffled = Rng.shuffle rng original in
  check
    Alcotest.(list int)
    "same multiset" original
    (List.sort Int.compare shuffled)

let test_rng_float_range () =
  let rng = Rng.create 9 in
  List.iter
    (fun _ ->
      let x = Rng.float rng 2.5 in
      if x < 0. || x >= 2.5 then fail "float out of range")
    (List_ext.range 1 100)

(* --- Bitvec ------------------------------------------------------------ *)

let bv w v = Bitvec.create ~width:w v

let test_bitvec_truncation () =
  check Alcotest.int "wraps to width" 1 (Bitvec.to_int (bv 4 17))

let test_bitvec_add_wraps () =
  check Alcotest.int "15+1 = 0 mod 16" 0
    (Bitvec.to_int (Bitvec.add (bv 4 15) (bv 4 1)))

let test_bitvec_sub_wraps () =
  check Alcotest.int "0-1 = 15 mod 16" 15
    (Bitvec.to_int (Bitvec.sub (bv 4 0) (bv 4 1)))

let test_bitvec_mul () =
  check Alcotest.int "3*5 = 15" 15 (Bitvec.to_int (Bitvec.mul (bv 4 3) (bv 4 5)))

let test_bitvec_mul_wraps () =
  check Alcotest.int "4*5 = 4 mod 16" 4
    (Bitvec.to_int (Bitvec.mul (bv 4 4) (bv 4 5)))

let test_bitvec_div () =
  check Alcotest.int "14/3 = 4" 4 (Bitvec.to_int (Bitvec.div (bv 4 14) (bv 4 3)))

let test_bitvec_div_by_zero () =
  check Alcotest.int "x/0 = all ones" 15
    (Bitvec.to_int (Bitvec.div (bv 4 7) (bv 4 0)))

let test_bitvec_logic () =
  check Alcotest.int "and" 0b1000 (Bitvec.to_int (Bitvec.logand (bv 4 0b1100) (bv 4 0b1010)));
  check Alcotest.int "or" 0b1110 (Bitvec.to_int (Bitvec.logor (bv 4 0b1100) (bv 4 0b1010)));
  check Alcotest.int "xor" 0b0110 (Bitvec.to_int (Bitvec.logxor (bv 4 0b1100) (bv 4 0b1010)));
  check Alcotest.int "not" 0b0011 (Bitvec.to_int (Bitvec.lognot (bv 4 0b1100)))

let test_bitvec_shifts () =
  check Alcotest.int "shl" 0b1000 (Bitvec.to_int (Bitvec.shift_left (bv 4 0b0001) 3));
  check Alcotest.int "shl drops" 0b0000 (Bitvec.to_int (Bitvec.shift_left (bv 4 0b1000) 1));
  check Alcotest.int "shr" 0b0001 (Bitvec.to_int (Bitvec.shift_right (bv 4 0b1000) 3))

let test_bitvec_compare_ops () =
  check Alcotest.int "gt true" 1 (Bitvec.to_int (Bitvec.gt (bv 4 9) (bv 4 3)));
  check Alcotest.int "gt false" 0 (Bitvec.to_int (Bitvec.gt (bv 4 3) (bv 4 9)));
  check Alcotest.int "lt" 1 (Bitvec.to_int (Bitvec.lt (bv 4 3) (bv 4 9)));
  check Alcotest.int "eq" 1 (Bitvec.to_int (Bitvec.eq (bv 4 5) (bv 4 5)))

let test_bitvec_hamming () =
  check Alcotest.int "distance" 2 (Bitvec.hamming (bv 4 0b1100) (bv 4 0b1010));
  check Alcotest.int "identical" 0 (Bitvec.hamming (bv 4 9) (bv 4 9));
  check Alcotest.int "max" 4 (Bitvec.hamming (bv 4 0) (bv 4 15))

(* The SWAR popcount against the naive bit-by-bit loop, over the whole
   supported domain: edge patterns plus random values of every width up
   to [max_width]. *)
let test_bitvec_popcount_vs_naive () =
  let naive x =
    let rec loop acc x =
      if x = 0 then acc else loop (acc + (x land 1)) (x lsr 1)
    in
    loop 0 x
  in
  let check_value x =
    check Alcotest.int
      (Printf.sprintf "popcount %d" x)
      (naive x) (Bitvec.popcount x)
  in
  List.iter check_value
    [ 0; 1; 2; 3; 0b1010; max_int; max_int - 1; (1 lsl 62) - 1; 1 lsl 61 ];
  let rng = Rng.create 7 in
  for width = 1 to Bitvec.max_width do
    let mask = (1 lsl width) - 1 in
    for _ = 1 to 200 do
      check_value (Rng.bits rng land mask)
    done
  done

let test_bitvec_width_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitvec: width mismatch (4 vs 5)") (fun () ->
      ignore (Bitvec.add (bv 4 1) (bv 5 1)))

let test_bitvec_bad_width () =
  Alcotest.check_raises "zero width" (Invalid_argument "Bitvec: width 0 out of [1, 62]")
    (fun () -> ignore (Bitvec.create ~width:0 1))

let test_bitvec_binary_string () =
  check Alcotest.string "msb first" "1010" (Bitvec.to_binary_string (bv 4 10))

let test_bitvec_bit () =
  let v = bv 4 0b1010 in
  check Alcotest.bool "bit 0" false (Bitvec.bit v 0);
  check Alcotest.bool "bit 1" true (Bitvec.bit v 1);
  check Alcotest.bool "bit 3" true (Bitvec.bit v 3)

(* --- Interval ----------------------------------------------------------- *)

let itv = Interval.make

let test_interval_invalid () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Interval.make 3 2")
    (fun () -> ignore (itv 3 2))

let test_interval_overlaps () =
  check Alcotest.bool "overlap" true (Interval.overlaps (itv 1 3) (itv 3 5));
  check Alcotest.bool "disjoint" false (Interval.overlaps (itv 1 3) (itv 4 5));
  check Alcotest.bool "contained" true (Interval.overlaps (itv 1 10) (itv 4 5))

let test_interval_hull_inter () =
  check Alcotest.bool "hull" true (Interval.equal (itv 1 5) (Interval.hull (itv 1 3) (itv 4 5)));
  (match Interval.inter (itv 1 4) (itv 3 6) with
  | Some i -> check Alcotest.bool "inter" true (Interval.equal i (itv 3 4))
  | None -> fail "expected intersection");
  check Alcotest.bool "no inter" true (Interval.inter (itv 1 2) (itv 3 4) = None)

let test_interval_length_contains () =
  check Alcotest.int "length" 3 (Interval.length (itv 2 4));
  check Alcotest.bool "contains" true (Interval.contains (itv 2 4) 3);
  check Alcotest.bool "outside" false (Interval.contains (itv 2 4) 5)

let test_left_edge_disjoint_single_track () =
  let tracks =
    Interval.left_edge_pack ~key:Fun.id [ itv 1 2; itv 3 4; itv 5 6 ]
  in
  check Alcotest.int "one track" 1 (List.length tracks)

let test_left_edge_all_overlapping () =
  let tracks =
    Interval.left_edge_pack ~key:Fun.id [ itv 1 5; itv 2 6; itv 3 7 ]
  in
  check Alcotest.int "three tracks" 3 (List.length tracks)

let test_left_edge_classic () =
  (* Classic example: 5 intervals packable into 2 tracks. *)
  let tracks =
    Interval.left_edge_pack ~key:Fun.id
      [ itv 1 3; itv 2 5; itv 4 7; itv 6 9; itv 8 10 ]
  in
  check Alcotest.int "two tracks" 2 (List.length tracks)

let test_left_edge_tracks_are_disjoint () =
  let rng = Rng.create 123 in
  let items =
    List.map
      (fun _ ->
        let lo = Rng.int rng 20 in
        itv lo (lo + Rng.int rng 10))
      (List_ext.range 1 40)
  in
  let tracks = Interval.left_edge_pack ~key:Fun.id items in
  List.iter
    (fun track ->
      let rec pairwise = function
        | a :: (b :: _ as rest) ->
            if Interval.overlaps a b then fail "track members overlap";
            pairwise rest
        | [ _ ] | [] -> ()
      in
      pairwise track)
    tracks;
  check Alcotest.int "no items lost" 40 (List_ext.sum_by List.length tracks)

(* --- Table -------------------------------------------------------------- *)

let test_table_renders () =
  let t =
    Table.create ~title:"T" ~header:[ "a"; "bb" ] ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "has title" true (String.length s > 0 && s.[0] = 'T');
  check Alcotest.int "rows" 2 (List.length (Table.rows t));
  (* Alignment: numbers right-aligned in their column. *)
  check Alcotest.bool "right aligned" true (contains s "|  1 |")

let test_table_bad_row () =
  let t = Table.create ~header:[ "a" ] ~aligns:[ Table.Left ] () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

(* --- List_ext ------------------------------------------------------------ *)

let test_list_ext_basics () =
  check Alcotest.(list int) "take" [ 1; 2 ] (List_ext.take 2 [ 1; 2; 3 ]);
  check Alcotest.(list int) "drop" [ 3 ] (List_ext.drop 2 [ 1; 2; 3 ]);
  check Alcotest.int "sum" 6 (List_ext.sum [ 1; 2; 3 ]);
  check Alcotest.int "max_by" 3 (List_ext.max_by Fun.id [ 1; 3; 2 ]);
  check Alcotest.int "min_by" 1 (List_ext.min_by Fun.id [ 2; 1; 3 ]);
  check Alcotest.(list int) "range" [ 2; 3; 4 ] (List_ext.range 2 4);
  check Alcotest.(list int) "empty range" [] (List_ext.range 3 2);
  check Alcotest.(list int) "dedup" [ 1; 2; 3 ]
    (List_ext.dedup ~compare:Int.compare [ 3; 1; 2; 1; 3 ])

let test_list_ext_group_by () =
  let groups =
    List_ext.group_by ~key:(fun x -> x mod 2) ~compare_key:Int.compare
      [ 1; 2; 3; 4; 5 ]
  in
  check Alcotest.int "two groups" 2 (List.length groups);
  check Alcotest.(list int) "evens" [ 2; 4 ] (List.assoc 0 groups);
  check Alcotest.(list int) "odds" [ 1; 3; 5 ] (List.assoc 1 groups)

(* Recorded from the pre-array implementation
   (List.nth items (int t (List.length items))): the array rewrite must
   consume the stream identically, so seeded draws are unchanged. *)
let test_rng_choose_seeded_regression () =
  let t = Rng.create 7 in
  let items = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  let drawn = List.map (fun _ -> Rng.choose t items) (List_ext.range 1 12) in
  check
    Alcotest.(list string)
    "seed 7 draws"
    [ "f"; "d"; "c"; "c"; "b"; "g"; "b"; "d"; "g"; "d"; "g"; "d" ]
    drawn;
  let t2 = Rng.create 42 in
  let drawn2 =
    List.map (fun _ -> Rng.choose t2 [ 10; 20; 30; 40; 50 ]) (List_ext.range 1 12)
  in
  check
    Alcotest.(list int)
    "seed 42 draws"
    [ 10; 20; 50; 10; 10; 10; 10; 20; 20; 20; 30; 30 ]
    drawn2

(* --- Fingerprint ------------------------------------------------------- *)

let fp_of feed =
  let fp = Fingerprint.create () in
  feed fp;
  Fingerprint.hex fp

let test_fingerprint_deterministic () =
  let feed fp =
    Fingerprint.string fp "hello";
    Fingerprint.int fp 42;
    Fingerprint.float fp 3.25;
    Fingerprint.bool fp true;
    Fingerprint.list fp Fingerprint.int [ 1; 2; 3 ];
    Fingerprint.option fp Fingerprint.string (Some "x")
  in
  check Alcotest.string "same feed, same digest" (fp_of feed) (fp_of feed);
  check Alcotest.int "32 hex chars" 32 (String.length (fp_of feed))

let test_fingerprint_no_concat_ambiguity () =
  let a = fp_of (fun fp -> Fingerprint.string fp "ab"; Fingerprint.string fp "c") in
  let b = fp_of (fun fp -> Fingerprint.string fp "a"; Fingerprint.string fp "bc") in
  if a = b then fail "string split ambiguity";
  let c = fp_of (fun fp -> Fingerprint.list fp Fingerprint.int [ 1; 2 ]) in
  let d = fp_of (fun fp -> Fingerprint.list fp Fingerprint.int [ 1 ]; Fingerprint.int fp 2) in
  if c = d then fail "list boundary ambiguity"

let test_fingerprint_distinguishes_values () =
  let base = fp_of (fun fp -> Fingerprint.float fp 0.) in
  let negz = fp_of (fun fp -> Fingerprint.float fp (-0.)) in
  if base = negz then fail "0. and -0. digest equal";
  let n = fp_of (fun fp -> Fingerprint.option fp Fingerprint.int None) in
  let s = fp_of (fun fp -> Fingerprint.option fp Fingerprint.int (Some 0)) in
  if n = s then fail "None and Some 0 digest equal"

let test_list_ext_find_by () =
  let items = [ ("a", 1); ("b", 2) ] in
  check Alcotest.int "found" 2
    (snd (List_ext.find_by ~what:"t" ~label_of:fst "b" items));
  match List_ext.find_by ~what:"t" ~label_of:fst "z" items with
  | _ -> fail "missing label accepted"
  | exception Invalid_argument msg ->
      if not (contains msg "\"z\"" && contains msg "a" && contains msg "b")
      then fail ("unhelpful message: " ^ msg)

let test_list_ext_zip_strict () =
  check
    Alcotest.(list (pair int string))
    "zips" [ (1, "a"); (2, "b") ]
    (List_ext.zip_strict ~what:"t" [ 1; 2 ] [ "a"; "b" ]);
  match List_ext.zip_strict ~what:"rows" [ 1 ] [ "a"; "b" ] with
  | _ -> fail "length mismatch accepted"
  | exception Invalid_argument msg ->
      if not (contains msg "rows" && contains msg "1" && contains msg "2")
      then fail ("unhelpful message: " ^ msg)

let test_list_ext_assoc_update () =
  let a = List_ext.assoc_update ~key:"x" ~default:0 (fun n -> n + 1) [] in
  check Alcotest.int "insert" 1 (List.assoc "x" a);
  let a = List_ext.assoc_update ~key:"x" ~default:0 (fun n -> n + 1) a in
  check Alcotest.int "update" 2 (List.assoc "x" a)

(* --- Binio -------------------------------------------------------------- *)

let test_binio_roundtrip () =
  let module B = Mclock_util.Binio in
  let w = B.W.create () in
  B.W.bool w true;
  B.W.bool w false;
  B.W.int w min_int;
  B.W.int w max_int;
  B.W.i64 w 0x1234_5678_9abc_def0L;
  B.W.float w 0.1;
  B.W.float w nan;
  B.W.float w neg_infinity;
  B.W.string w "";
  B.W.string w "hello\x00world";
  B.W.int_array w [| -1; 0; 42 |];
  B.W.bool_array w [| true; false; true |];
  B.W.float_array w [| 1.5; -0.0 |];
  let r = B.R.of_string (B.W.contents w) in
  Alcotest.(check bool) "bool t" true (B.R.bool r);
  Alcotest.(check bool) "bool f" false (B.R.bool r);
  Alcotest.(check int) "min_int" min_int (B.R.int r);
  Alcotest.(check int) "max_int" max_int (B.R.int r);
  Alcotest.(check int64) "i64" 0x1234_5678_9abc_def0L (B.R.i64 r);
  Alcotest.(check (float 0.)) "float bit-exact" 0.1 (B.R.float r);
  Alcotest.(check bool) "nan round-trips" true (Float.is_nan (B.R.float r));
  Alcotest.(check (float 0.)) "neg_infinity" neg_infinity (B.R.float r);
  Alcotest.(check string) "empty string" "" (B.R.string r);
  Alcotest.(check string) "nul-safe string" "hello\x00world" (B.R.string r);
  Alcotest.(check (array int)) "int array" [| -1; 0; 42 |] (B.R.int_array r);
  Alcotest.(check (array bool)) "bool array" [| true; false; true |]
    (B.R.bool_array r);
  Alcotest.(check (array (float 0.))) "float array" [| 1.5; -0.0 |]
    (B.R.float_array r);
  B.R.expect_end r

let test_binio_corruption () =
  let module B = Mclock_util.Binio in
  let corrupt f =
    match f () with
    | _ -> Alcotest.fail "corrupt stream decoded"
    | exception B.Corrupt _ -> ()
  in
  (* Wrong tag: an int read from a float's bytes. *)
  let w = B.W.create () in
  B.W.float w 1.0;
  let s = B.W.contents w in
  corrupt (fun () -> B.R.int (B.R.of_string s));
  (* Truncation mid-value. *)
  corrupt (fun () ->
      B.R.float (B.R.of_string (String.sub s 0 (String.length s - 1))));
  (* Trailing bytes. *)
  corrupt (fun () ->
      let r = B.R.of_string (s ^ "x") in
      ignore (B.R.float r);
      B.R.expect_end r);
  (* Negative array length. *)
  let w = B.W.create () in
  B.W.int_array w [||];
  let bad =
    let b = Bytes.of_string (B.W.contents w) in
    Bytes.set_int64_le b 1 (-1L);
    Bytes.to_string b
  in
  corrupt (fun () -> B.R.int_array (B.R.of_string bad))

let test_binio_seal () =
  let module B = Mclock_util.Binio in
  let magic = "TEST-v1\n" in
  let payload = "some sealed payload" in
  let blob = B.seal ~magic payload in
  (match B.unseal ~magic blob with
  | Ok p -> Alcotest.(check string) "unseal inverts seal" payload p
  | Error e -> Alcotest.fail e);
  (match B.unseal ~magic:"OTHER-v1" blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong magic accepted");
  let flipped = Bytes.of_string blob in
  Bytes.set flipped
    (String.length blob - 1)
    (Char.chr (Char.code (Bytes.get flipped (String.length blob - 1)) lxor 1));
  (match B.unseal ~magic (Bytes.to_string flipped) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flipped payload accepted");
  match B.unseal ~magic "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty blob accepted"

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int_in_range", `Quick, test_rng_int_in_range);
    ("rng invalid bound", `Quick, test_rng_int_invalid);
    ("rng split independent", `Quick, test_rng_split_independent);
    ("rng choose", `Quick, test_rng_choose);
    ("rng choose seeded regression", `Quick, test_rng_choose_seeded_regression);
    ("fingerprint deterministic", `Quick, test_fingerprint_deterministic);
    ("fingerprint concat-safe", `Quick, test_fingerprint_no_concat_ambiguity);
    ("fingerprint distinguishes values", `Quick, test_fingerprint_distinguishes_values);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng float range", `Quick, test_rng_float_range);
    ("bitvec truncation", `Quick, test_bitvec_truncation);
    ("bitvec add wraps", `Quick, test_bitvec_add_wraps);
    ("bitvec sub wraps", `Quick, test_bitvec_sub_wraps);
    ("bitvec mul", `Quick, test_bitvec_mul);
    ("bitvec mul wraps", `Quick, test_bitvec_mul_wraps);
    ("bitvec div", `Quick, test_bitvec_div);
    ("bitvec div by zero", `Quick, test_bitvec_div_by_zero);
    ("bitvec logic", `Quick, test_bitvec_logic);
    ("bitvec shifts", `Quick, test_bitvec_shifts);
    ("bitvec comparisons", `Quick, test_bitvec_compare_ops);
    ("bitvec hamming", `Quick, test_bitvec_hamming);
    ("bitvec popcount vs naive", `Quick, test_bitvec_popcount_vs_naive);
    ("bitvec width mismatch", `Quick, test_bitvec_width_mismatch);
    ("bitvec bad width", `Quick, test_bitvec_bad_width);
    ("bitvec binary string", `Quick, test_bitvec_binary_string);
    ("bitvec bit", `Quick, test_bitvec_bit);
    ("interval invalid", `Quick, test_interval_invalid);
    ("interval overlaps", `Quick, test_interval_overlaps);
    ("interval hull/inter", `Quick, test_interval_hull_inter);
    ("interval length/contains", `Quick, test_interval_length_contains);
    ("left-edge disjoint one track", `Quick, test_left_edge_disjoint_single_track);
    ("left-edge overlapping all tracks", `Quick, test_left_edge_all_overlapping);
    ("left-edge classic packing", `Quick, test_left_edge_classic);
    ("left-edge tracks disjoint", `Quick, test_left_edge_tracks_are_disjoint);
    ("table renders", `Quick, test_table_renders);
    ("table bad row", `Quick, test_table_bad_row);
    ("list_ext basics", `Quick, test_list_ext_basics);
    ("list_ext group_by", `Quick, test_list_ext_group_by);
    ("list_ext find_by", `Quick, test_list_ext_find_by);
    ("list_ext zip_strict", `Quick, test_list_ext_zip_strict);
    ("list_ext assoc_update", `Quick, test_list_ext_assoc_update);
    ("binio roundtrip", `Quick, test_binio_roundtrip);
    ("binio corruption", `Quick, test_binio_corruption);
    ("binio seal", `Quick, test_binio_seal);
  ]
