(* Tests for the stimulus models and the voltage-scaling model. *)

open Mclock_dfg
module B = Mclock_util.Bitvec

let check = Alcotest.check
let tech = Mclock_tech.Cmos08.t

let graph () = Mclock_workloads.Workload.graph Mclock_workloads.Facet.t

let gen model iterations =
  Mclock_sim.Stimulus.generate model (Mclock_util.Rng.create 5) ~width:4
    ~iterations (graph ())

let test_stimulus_lengths () =
  List.iter
    (fun model ->
      check Alcotest.int
        (Mclock_sim.Stimulus.name model)
        20
        (List.length (gen model 20)))
    [
      Mclock_sim.Stimulus.Uniform;
      Mclock_sim.Stimulus.Correlated 0.3;
      Mclock_sim.Stimulus.Ramp 2;
      Mclock_sim.Stimulus.Constant;
    ]

let test_stimulus_covers_inputs () =
  let envs = gen Mclock_sim.Stimulus.Uniform 5 in
  List.iter
    (fun env ->
      List.iter
        (fun v -> check Alcotest.bool (Var.name v) true (Var.Map.mem v env))
        (Graph.inputs (graph ())))
    envs

let test_constant_never_changes () =
  match gen Mclock_sim.Stimulus.Constant 10 with
  | first :: rest ->
      List.iter
        (fun env ->
          Var.Map.iter
            (fun v value ->
              check Alcotest.int (Var.name v) (B.to_int (Var.Map.find v first))
                (B.to_int value))
            env)
        rest
  | [] -> Alcotest.fail "empty stimulus"

let test_ramp_increments () =
  match gen (Mclock_sim.Stimulus.Ramp 3) 3 with
  | [ e1; e2; e3 ] ->
      let v = List.hd (Graph.inputs (graph ())) in
      let x1 = B.to_int (Var.Map.find v e1) in
      check Alcotest.int "+3" ((x1 + 3) land 15) (B.to_int (Var.Map.find v e2));
      check Alcotest.int "+6" ((x1 + 6) land 15) (B.to_int (Var.Map.find v e3))
  | _ -> Alcotest.fail "expected 3 envs"

let test_correlated_activity_ordering () =
  (* Mean per-input Hamming distance between consecutive samples grows
     with the flip probability. *)
  let mean_activity model =
    let envs = gen model 300 in
    let rec pairs acc = function
      | a :: (b :: _ as rest) ->
          let d =
            Var.Map.fold
              (fun v x acc -> acc + B.hamming x (Var.Map.find v b))
              a 0
          in
          pairs (acc + d) rest
      | [ _ ] | [] -> acc
    in
    float (pairs 0 envs)
  in
  let low = mean_activity (Mclock_sim.Stimulus.Correlated 0.1) in
  let high = mean_activity (Mclock_sim.Stimulus.Correlated 0.4) in
  check Alcotest.bool "more flips, more activity" true (high > low)

let consecutive_pairs envs =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go ((a, b) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] envs

let test_correlated_zero_is_frozen () =
  (* p = 0.0 must behave exactly like Constant after the first sample. *)
  List.iter
    (fun (a, b) ->
      Var.Map.iter
        (fun v x -> check Alcotest.int (Var.name v) 0 (B.hamming x (Var.Map.find v b)))
        a)
    (consecutive_pairs (gen (Mclock_sim.Stimulus.Correlated 0.0) 50))

let test_correlated_one_flips_every_bit () =
  (* p = 1.0 must invert every input bit on every step. *)
  List.iter
    (fun (a, b) ->
      Var.Map.iter
        (fun v x -> check Alcotest.int (Var.name v) 4 (B.hamming x (Var.Map.find v b)))
        a)
    (consecutive_pairs (gen (Mclock_sim.Stimulus.Correlated 1.0) 50))

let test_constant_zero_activity_floor () =
  List.iter
    (fun (a, b) ->
      Var.Map.iter
        (fun v x -> check Alcotest.int (Var.name v) 0 (B.hamming x (Var.Map.find v b)))
        a)
    (consecutive_pairs (gen Mclock_sim.Stimulus.Constant 50))

let test_ramp_wraps_at_width_boundary () =
  (* Every step advances by k modulo 2^width, and a long enough ramp
     must actually cross the boundary. *)
  let pairs = consecutive_pairs (gen (Mclock_sim.Stimulus.Ramp 7) 40) in
  let wrapped = ref 0 in
  List.iter
    (fun (a, b) ->
      Var.Map.iter
        (fun v x ->
          let x' = B.to_int (Var.Map.find v b) in
          check Alcotest.int (Var.name v) ((B.to_int x + 7) land 15) x';
          if x' < B.to_int x then incr wrapped)
        a)
    pairs;
  check Alcotest.bool "some step wrapped past 2^width - 1" true (!wrapped > 0)

let test_correlated_invalid_probability () =
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Stimulus.generate: flip probability out of [0, 1]")
    (fun () -> ignore (gen (Mclock_sim.Stimulus.Correlated 1.5) 5))

let test_simulator_accepts_stimulus () =
  let w = Mclock_workloads.Facet.t in
  let g = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  let design =
    Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 2)
      ~name:"st" schedule
  in
  let stimulus = gen (Mclock_sim.Stimulus.Correlated 0.2) 30 in
  let result = Mclock_sim.Simulator.run ~stimulus tech design ~iterations:30 in
  let verify = Mclock_sim.Verify.check ~width:4 g result in
  check Alcotest.bool "verified under correlated stimulus" true
    (Mclock_sim.Verify.ok verify)

let test_simulator_rejects_short_stimulus () =
  let schedule = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design =
    Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 1)
      ~name:"st" schedule
  in
  Alcotest.check_raises "short"
    (Invalid_argument "Simulator.run: stimulus shorter than iterations")
    (fun () ->
      ignore
        (Mclock_sim.Simulator.run
           ~stimulus:(gen Mclock_sim.Stimulus.Uniform 5)
           tech design ~iterations:10))

let test_constant_stimulus_cheapest () =
  let schedule = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design =
    Mclock_core.Flow.synthesize ~method_:Mclock_core.Flow.Conventional_non_gated
      ~name:"st" schedule
  in
  let power model =
    let stimulus = gen model 200 in
    (Mclock_sim.Simulator.run ~stimulus tech design ~iterations:200)
      .Mclock_sim.Simulator.power_mw
  in
  check Alcotest.bool "constant < uniform" true
    (power Mclock_sim.Stimulus.Constant < power Mclock_sim.Stimulus.Uniform)

(* --- Voltage model -------------------------------------------------------------- *)

let test_voltage_delay_monotone () =
  let vdd = 4.65 in
  let d v = Mclock_power.Voltage.delay_factor ~vdd v in
  check (Alcotest.float 1e-9) "no scaling, no slowdown" 1.0 (d vdd);
  check Alcotest.bool "lower V, slower" true (d 3.0 > d 4.0);
  check Alcotest.bool "much lower, much slower" true (d 1.5 > d 3.0)

let test_voltage_scaled_inverts_delay () =
  let vdd = 4.65 in
  List.iter
    (fun slowdown ->
      let v = Mclock_power.Voltage.scaled_voltage ~vdd slowdown in
      let achieved = Mclock_power.Voltage.delay_factor ~vdd v in
      check (Alcotest.float 0.01)
        (Printf.sprintf "slowdown %.1f" slowdown)
        slowdown achieved)
    [ 1.5; 2.0; 3.0; 4.0 ]

let test_duplication_tradeoff () =
  let d =
    Mclock_power.Voltage.duplicate ~tech ~baseline_power_mw:10.
      ~baseline_area:3_000_000. 2
  in
  check Alcotest.bool "power drops" true (d.Mclock_power.Voltage.power_mw < 10.);
  check Alcotest.bool "voltage drops" true
    (d.Mclock_power.Voltage.voltage < tech.Mclock_tech.Library.supply_voltage);
  check Alcotest.bool "area roughly doubles" true
    (d.Mclock_power.Voltage.area > 4_000_000.)

let suite =
  [
    ("stimulus lengths", `Quick, test_stimulus_lengths);
    ("stimulus covers inputs", `Quick, test_stimulus_covers_inputs);
    ("constant never changes", `Quick, test_constant_never_changes);
    ("ramp increments", `Quick, test_ramp_increments);
    ("correlated activity ordering", `Quick, test_correlated_activity_ordering);
    ("correlated p=0 frozen", `Quick, test_correlated_zero_is_frozen);
    ("correlated p=1 flips every bit", `Quick, test_correlated_one_flips_every_bit);
    ("constant zero-activity floor", `Quick, test_constant_zero_activity_floor);
    ("ramp wraps at width boundary", `Quick, test_ramp_wraps_at_width_boundary);
    ("correlated invalid probability", `Quick, test_correlated_invalid_probability);
    ("simulator accepts stimulus", `Quick, test_simulator_accepts_stimulus);
    ("simulator rejects short stimulus", `Quick, test_simulator_rejects_short_stimulus);
    ("constant stimulus cheapest", `Quick, test_constant_stimulus_cheapest);
    ("voltage delay monotone", `Quick, test_voltage_delay_monotone);
    ("voltage scaled inverts delay", `Quick, test_voltage_scaled_inverts_delay);
    ("duplication tradeoff", `Quick, test_duplication_tradeoff);
  ]
