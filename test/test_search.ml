(* Tests for the successive-halving search and the scalarized
   objectives it ranks with: determinism across job counts and cache
   states, the rung schedule's arithmetic, the objective grammar and
   its normalization edge cases, and the differential check against
   the exhaustive grid's best. *)

open Mclock_explore

let check = Alcotest.check
let fail = Alcotest.fail

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mclock-test-search.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()
  end

let smoke_workload = Mclock_workloads.Facet.t
let smoke_graph = Mclock_workloads.Workload.graph smoke_workload
let smoke_constraints = smoke_workload.Mclock_workloads.Workload.constraints

let search ?cache ?(jobs = 1) ?(eta = 2) ?min_iterations ?constraints
    ?(iterations = 60) ?(max_clocks = 2) ?objective ?resume ?race ?race_margin
    ?close_threshold () =
  Mclock_exec.Pool.with_pool ~jobs (fun pool ->
      Halving.run ~pool ?cache ~eta ?min_iterations ?constraints ~seed:42
        ~iterations ~max_clocks ?objective ?resume ?race ?race_margin
        ?close_threshold ~name:"facet" ~sched_constraints:smoke_constraints
        smoke_graph)

let doc r = Mclock_lint.Json.to_string (Halving.result_json r)

let metrics_of ?(power = 1.) ?(area = 100.) ?(latency = 4) ?(energy = 50.)
    ?(memory = 10) ?(ok = true) () =
  {
    Metrics.power_mw = power;
    area;
    latency_steps = latency;
    energy_per_computation_pj = energy;
    memory_cells = memory;
    mux_inputs = 8;
    functional_ok = ok;
  }

(* --- Objective grammar ------------------------------------------------- *)

let test_objective_parse_roundtrip () =
  List.iter
    (fun s ->
      match Objective.parse s with
      | Error e -> fail (Printf.sprintf "%S does not parse: %s" s e)
      | Ok t -> (
          let rendered = Objective.to_string t in
          match Objective.parse rendered with
          | Ok t' when Objective.equal t t' -> ()
          | Ok _ ->
              fail
                (Printf.sprintf "%S re-parses differently via %S" s rendered)
          | Error e ->
              fail
                (Printf.sprintf "%S renders as unparseable %S: %s" s rendered
                   e)))
    [
      "power";
      "area";
      "mem";
      "memory";
      "0.7*power+0.2*area+0.1*latency";
      " power + energy ";
      "2*power+power";
    ]

let test_objective_parse_errors () =
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    scan 0
  in
  (match Objective.parse "powr" with
  | Ok _ -> fail "typo'd metric must not parse"
  | Error msg ->
      List.iter
        (fun needle ->
          if not (contains ~needle msg) then
            fail (Printf.sprintf "diagnostic %S misses %S" msg needle))
        [ "powr"; "power"; "area"; "latency"; "energy"; "mem" ]);
  List.iter
    (fun s ->
      match Objective.parse s with
      | Error _ -> ()
      | Ok _ -> fail (Printf.sprintf "%S must not parse" s))
    [ ""; "power+"; "-1*power"; "x*power"; "0*power" ]

let test_objective_single_metric_scores () =
  (* A single-metric objective ranks by that metric alone; scores are
     the normalized values, so the extremes land on 0 and 1. *)
  let t = Objective.default in
  let candidates =
    [
      metrics_of ~power:4. ();
      metrics_of ~power:2. ();
      metrics_of ~power:3. ();
    ]
  in
  (match Objective.scores t candidates with
  | [ a; b; c ] ->
      check (Alcotest.float 1e-9) "max scores 1" 1. a;
      check (Alcotest.float 1e-9) "min scores 0" 0. b;
      check (Alcotest.float 1e-9) "middle is interpolated" 0.5 c
  | _ -> fail "wrong arity");
  match Objective.best t candidates with
  | Some (1, _) -> ()
  | _ -> fail "best must be the lowest-power candidate"

let test_objective_zero_weight_ignored () =
  (* An explicit 0-weight term is accepted but contributes nothing: the
     ranking equals the pure remaining-metric ranking even when the
     zero-weighted axis disagrees. *)
  let t =
    match Objective.parse "power+0*area" with
    | Ok t -> t
    | Error e -> fail e
  in
  check Alcotest.string "renders as the pure objective" "power"
    (Objective.to_string t);
  let candidates =
    [ metrics_of ~power:2. ~area:1. (); metrics_of ~power:1. ~area:999. () ]
  in
  match Objective.best t candidates with
  | Some (1, _) -> ()
  | _ -> fail "area must not influence a 0-weight objective"

let test_objective_degenerate_axis_and_ties () =
  (* All candidates equal on every weighted axis: every score is 0 and
     the earliest index wins — with candidates in enumeration order
     that is the canonical-config tie-break. *)
  let t =
    match Objective.parse "0.5*power+0.5*latency" with
    | Ok t -> t
    | Error e -> fail e
  in
  let candidates = [ metrics_of (); metrics_of (); metrics_of () ] in
  List.iter
    (fun s -> check (Alcotest.float 0.) "degenerate axis scores 0" 0. s)
    (Objective.scores t candidates);
  (match Objective.best t candidates with
  | Some (0, 0.) -> ()
  | _ -> fail "tie must break to the first candidate");
  check Alcotest.(list (float 0.)) "empty set scores empty" []
    (Objective.scores t []);
  check Alcotest.bool "empty set has no best" true
    (Objective.best t [] = None)

(* --- Halving ----------------------------------------------------------- *)

let test_halving_validation () =
  Alcotest.check_raises "eta < 2" (Invalid_argument "Halving.run: eta >= 2")
    (fun () -> ignore (search ~eta:1 ()));
  Alcotest.check_raises "min_iterations 0"
    (Invalid_argument "Halving.run: min_iterations in 1..iterations")
    (fun () -> ignore (search ~min_iterations:0 ()));
  Alcotest.check_raises "min_iterations > iterations"
    (Invalid_argument "Halving.run: min_iterations in 1..iterations")
    (fun () -> ignore (search ~min_iterations:61 ()))

let test_halving_rung_schedule () =
  (* eta=2, 32 admissible cells, 60 iterations, first rung at 60/16=3:
     budgets 3,6,12,24,48,60 over 32,16,8,4,2,1 candidates, and the
     evaluation total is exactly the dot product of the two. *)
  let r = search () in
  check Alcotest.int "enumerated" 32 r.Halving.enumerated;
  check Alcotest.int "pruned" 0 r.Halving.pruned;
  check
    Alcotest.(list int)
    "budgets" [ 3; 6; 12; 24; 48; 60 ]
    (List.map (fun g -> g.Halving.r_iterations) r.Halving.rungs);
  check
    Alcotest.(list int)
    "field sizes" [ 32; 16; 8; 4; 2; 1 ]
    (List.map
       (fun g -> List.length g.Halving.r_candidates)
       r.Halving.rungs);
  (* With resume (the default), promotion is incremental: each rung
     charges only the budget beyond the previous rung's checkpoint. *)
  check Alcotest.int "evaluation iterations"
    ((32 * 3) + (16 * (6 - 3)) + (8 * (12 - 6)) + (4 * (24 - 12))
    + (2 * (48 - 24)) + (60 - 48))
    r.Halving.evaluation_iterations;
  check Alcotest.int "restart evaluation iterations"
    ((32 * 3) + (16 * 6) + (8 * 12) + (4 * 24) + (2 * 48) + 60)
    (search ~resume:false ()).Halving.evaluation_iterations;
  check Alcotest.int "exhaustive iterations" (32 * 60)
    r.Halving.exhaustive_iterations;
  (* Each rung's kept set is exactly the next rung's field. *)
  let rec check_promotion = function
    | a :: (b :: _ as rest) ->
        check
          Alcotest.(list string)
          (Printf.sprintf "rung %d kept = rung %d field" a.Halving.r_number
             b.Halving.r_number)
          a.Halving.r_kept
          (List.map (fun c -> c.Halving.c_label) b.Halving.r_candidates);
        check_promotion rest
    | _ -> ()
  in
  check_promotion r.Halving.rungs;
  match r.Halving.winner with
  | None -> fail "no winner on a fully-functional grid"
  | Some w -> (
      match List.rev r.Halving.rungs with
      | last :: _ ->
          check
            Alcotest.(list string)
            "winner is the last rung's keep" [ w.Halving.c_label ]
            last.Halving.r_kept
      | [] -> fail "no rungs")

let test_halving_jobs_invariant () =
  let a = search ~jobs:1 () in
  let b = search ~jobs:3 () in
  check Alcotest.string "documents byte-identical across jobs" (doc a) (doc b);
  check Alcotest.string "rendering byte-identical across jobs"
    (Halving.render_text a) (Halving.render_text b)

let test_halving_cache_state_invariant () =
  let dir = temp_dir () in
  let cache = Store.open_ ~dir () in
  let uncached = search () in
  let cold = search ~cache () in
  let warm = search ~cache ~jobs:3 () in
  check Alcotest.string "cold document = uncached" (doc uncached) (doc cold);
  check Alcotest.string "warm document = cold" (doc cold) (doc warm);
  check Alcotest.int "warm simulates nothing" 0
    warm.Halving.stats.Halving.simulated;
  check Alcotest.bool "warm serves hits" true
    (warm.Halving.stats.Halving.cache_hits > 0);
  check Alcotest.bool "cold simulated something" true
    (cold.Halving.stats.Halving.simulated > 0);
  rm_rf dir

let test_halving_partial_fidelity_keys_disjoint () =
  (* Rung budgets are part of the cache key, so a halving run and a
     full-fidelity exploration share a cache without collisions: after
     the search, an exhaustive explore still simulates every cell the
     search never took to full fidelity — and reuses the one it did. *)
  let dir = temp_dir () in
  let cache = Store.open_ ~dir () in
  let r = search ~cache () in
  let exhaustive =
    Mclock_exec.Pool.with_pool ~jobs:1 (fun pool ->
        Engine.explore ~pool ~cache ~seed:42 ~iterations:60 ~max_clocks:2
          ~name:"facet" ~sched_constraints:smoke_constraints smoke_graph)
  in
  let full_rung_cells =
    List.filter
      (fun g -> g.Halving.r_iterations = 60)
      r.Halving.rungs
    |> List.concat_map (fun g -> g.Halving.r_candidates)
    |> List.length
  in
  check Alcotest.int "explore reuses exactly the full-fidelity rung"
    full_rung_cells exhaustive.Engine.stats.Engine.cache_hits;
  check Alcotest.int "explore simulates the rest" (32 - full_rung_cells)
    exhaustive.Engine.stats.Engine.simulated;
  rm_rf dir

let test_halving_winner_matches_exhaustive_best () =
  (* The differential acceptance check at test scale: on the smoke
     grid, the halving winner under the default objective equals the
     exhaustive grid's best under the same objective. *)
  let r = search () in
  let exhaustive =
    Mclock_exec.Pool.with_pool ~jobs:1 (fun pool ->
        Engine.explore ~pool ~seed:42 ~iterations:60 ~max_clocks:2
          ~name:"facet" ~sched_constraints:smoke_constraints smoke_graph)
  in
  match (r.Halving.winner, Engine.best ~objective:Objective.default exhaustive)
  with
  | Some w, Some (cell, _) ->
      check Alcotest.string "winner = exhaustive best" cell.Engine.cell_label
        w.Halving.c_label
  | None, _ -> fail "halving found no winner"
  | _, None -> fail "exhaustive grid has no best"

let test_halving_constraints_prune_before_rungs () =
  (* A constraint that rejects part of the grid shrinks every rung and
     the exhaustive baseline alike; pruned cells never appear in any
     rung. *)
  let unconstrained = search () in
  let area_cap = 3.0e6 in
  let r = search ~constraints:[ Metrics.Max_area area_cap ] () in
  check Alcotest.bool "something pruned" true (r.Halving.pruned > 0);
  check Alcotest.int "pruned + admissible = enumerated"
    r.Halving.enumerated
    (r.Halving.pruned
    + (r.Halving.exhaustive_iterations / r.Halving.iterations));
  check Alcotest.bool "baseline shrinks under pruning" true
    (r.Halving.exhaustive_iterations
    < unconstrained.Halving.exhaustive_iterations);
  List.iter
    (fun g ->
      List.iter
        (fun c ->
          if c.Halving.c_metrics.Metrics.area > area_cap then
            fail
              (Printf.sprintf "%s violates the constraint inside a rung"
                 c.Halving.c_label))
        g.Halving.r_candidates)
    r.Halving.rungs

let suite =
  [
    ("objective parse roundtrip", `Quick, test_objective_parse_roundtrip);
    ("objective parse errors", `Quick, test_objective_parse_errors);
    ("objective single metric", `Quick, test_objective_single_metric_scores);
    ("objective zero weight", `Quick, test_objective_zero_weight_ignored);
    ( "objective degenerate axis + ties",
      `Quick,
      test_objective_degenerate_axis_and_ties );
    ("halving validation", `Quick, test_halving_validation);
    ("halving rung schedule", `Quick, test_halving_rung_schedule);
    ("halving jobs-invariant", `Quick, test_halving_jobs_invariant);
    ("halving cache-state invariant", `Quick, test_halving_cache_state_invariant);
    ( "halving partial-fidelity keys disjoint",
      `Quick,
      test_halving_partial_fidelity_keys_disjoint );
    ( "halving winner = exhaustive best",
      `Quick,
      test_halving_winner_matches_exhaustive_best );
    ( "halving constraints prune before rungs",
      `Quick,
      test_halving_constraints_prune_before_rungs );
  ]
