(* Tests for interconnect-aware register binding. *)

open Mclock_core

let check = Alcotest.check
let tech = Mclock_tech.Cmos08.t

let problem_and_alus w n =
  let schedule = Mclock_workloads.Workload.schedule w in
  let problem = Transfer.insert (Lifetime.analyze ~n schedule) in
  let alus =
    Alu_alloc.allocate
      ~config:{ Alu_alloc.tech; width = 4; merge = true; merge_threshold = 1.0 }
      ~partitions:(Partition.map ~n schedule)
      schedule
  in
  (problem, alus)

let test_same_element_count () =
  (* Mux-aware binding must not cost extra storage elements. *)
  List.iter
    (fun w ->
      List.iter
        (fun n ->
          let problem, alus = problem_and_alus w n in
          let le =
            Reg_bind.allocate ~strategy:`Left_edge
              ~kind:Mclock_tech.Library.Latch problem alus
          in
          let ma =
            Reg_bind.allocate ~strategy:`Mux_aware
              ~kind:Mclock_tech.Library.Latch problem alus
          in
          check Alcotest.int
            (Printf.sprintf "%s n=%d" w.Mclock_workloads.Workload.name n)
            (List.length le) (List.length ma))
        [ 1; 2; 3 ])
    Mclock_workloads.Catalog.all

let test_all_vars_bound_once () =
  let problem, alus = problem_and_alus Mclock_workloads.Biquad.t 3 in
  let classes =
    Reg_bind.allocate ~strategy:`Mux_aware ~kind:Mclock_tech.Library.Latch
      problem alus
  in
  List.iter
    (fun u ->
      let holders =
        List.filter
          (fun rc ->
            List.exists (Mclock_dfg.Var.equal u.Lifetime.var) rc.Reg_alloc.rc_vars)
          classes
      in
      check Alcotest.int
        (Mclock_dfg.Var.name u.Lifetime.var)
        1 (List.length holders))
    (Lifetime.stored_usages problem)

let test_latch_disjointness_preserved () =
  let problem, alus = problem_and_alus Mclock_workloads.Bandpass.t 2 in
  let classes =
    Reg_bind.allocate ~strategy:`Mux_aware ~kind:Mclock_tech.Library.Latch
      problem alus
  in
  List.iter
    (fun rc ->
      let intervals =
        List.map
          (fun v ->
            Lifetime.problem_interval problem ~kind:Mclock_tech.Library.Latch
              (Lifetime.usage problem v))
          rc.Reg_alloc.rc_vars
      in
      let rec pairwise = function
        | a :: rest ->
            List.iter
              (fun b ->
                check Alcotest.bool "disjoint" true
                  (Mclock_util.Interval.disjoint a b))
              rest;
            pairwise rest
        | [] -> ()
      in
      pairwise intervals)
    classes

let mux_inputs_of ~binding w n =
  let schedule = Mclock_workloads.Workload.schedule w in
  let r = Integrated.run ~binding ~n ~name:"rb" schedule in
  Mclock_rtl.Datapath.mux_input_count
    (Mclock_rtl.Design.datapath r.Integrated.design)

let test_mux_aware_never_much_worse () =
  (* Across all workloads the mux-aware binding should on aggregate
     reduce mux inputs, and never blow up. *)
  let total_le = ref 0 and total_ma = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun n ->
          total_le := !total_le + mux_inputs_of ~binding:`Left_edge w n;
          total_ma := !total_ma + mux_inputs_of ~binding:`Mux_aware w n)
        [ 2; 3 ])
    Mclock_workloads.Catalog.all;
  check Alcotest.bool
    (Printf.sprintf "aggregate mux inputs %d (mux-aware) <= %d (left-edge)"
       !total_ma !total_le)
    true
    (!total_ma <= !total_le)

let test_mux_aware_design_verified () =
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      let r = Integrated.run ~binding:`Mux_aware ~n:3 ~name:"rb" schedule in
      let report =
        Mclock_sim.Verify.run ~iterations:12 tech r.Integrated.design graph
      in
      check Alcotest.bool
        (w.Mclock_workloads.Workload.name ^ " verified")
        true
        (Mclock_sim.Verify.ok report);
      check Alcotest.(list string) "checks clean" []
        (List.filter_map
           (fun g ->
             if
               List.mem g.Mclock_lint.Diagnostic.code
                 [ "MC001"; "MC002"; "MC003"; "MC004"; "MC005" ]
             then Some g.Mclock_lint.Diagnostic.message
             else None)
           (Mclock_lint.Lint.design r.Integrated.design)))
    Mclock_workloads.Catalog.paper_tables

let suite =
  [
    ("same element count", `Quick, test_same_element_count);
    ("all vars bound once", `Quick, test_all_vars_bound_once);
    ("latch disjointness preserved", `Quick, test_latch_disjointness_preserved);
    ("aggregate mux inputs reduced", `Quick, test_mux_aware_never_much_worse);
    ("mux-aware designs verified", `Quick, test_mux_aware_design_verified);
  ]
