(* Tests for the static switching-activity analyzer: closed-form
   stimulus statistics, charge-exact data-independent categories, and
   the headline soundness property — the certified bound dominates
   simulated power on every catalog x method x clock-count cell, under
   both simulation kernels and every stimulus model. *)

open Mclock_core
module Static = Mclock_static
module Workload = Mclock_workloads.Workload
module Catalog = Mclock_workloads.Catalog
module Stimulus = Mclock_sim.Stimulus
module Simulator = Mclock_sim.Simulator
module Compiled = Mclock_sim.Compiled
module Activity = Mclock_sim.Activity
module Rtl = Mclock_rtl

let check = Alcotest.check
let tech = Mclock_tech.Cmos08.t
let width = 4

let methods =
  [
    ("conv", Flow.Conventional_non_gated);
    ("gated", Flow.Conventional_gated);
    ("mc1", Flow.Integrated 1);
    ("mc2", Flow.Integrated 2);
    ("mc4", Flow.Integrated 4);
    ("split2", Flow.Split 2);
    ("split4", Flow.Split 4);
  ]

let synth w m =
  Flow.synthesize ~method_:m ~name:w.Workload.name (Workload.schedule w)

(* Stimulus statistics: the Ramp closed form must equal the exhaustive
   per-period toggle rate of x -> x + k mod 2^width. *)
let test_ramp_rates () =
  let n = 1 lsl width in
  for k = 0 to n - 1 do
    let rates = Static.Stim.transition (Stimulus.Ramp k) ~width in
    for j = 0 to width - 1 do
      let count = ref 0 in
      for x = 0 to n - 1 do
        if (x lxor ((x + k) land (n - 1))) land (1 lsl j) <> 0 then
          incr count
      done;
      check (Alcotest.float 1e-12)
        (Printf.sprintf "k=%d bit %d" k j)
        (float_of_int !count /. float_of_int n)
        rates.(j)
    done
  done

let test_stimulus_stats () =
  let all_equal name expected arr =
    Array.iteri
      (fun i v ->
        check (Alcotest.float 1e-12) (Printf.sprintf "%s bit %d" name i)
          expected v)
      arr
  in
  all_equal "uniform" 0.5 (Static.Stim.transition Stimulus.Uniform ~width);
  all_equal "correlated" 0.3
    (Static.Stim.transition (Stimulus.Correlated 0.3) ~width);
  all_equal "constant" 0. (Static.Stim.transition Stimulus.Constant ~width);
  (* the bound pins exactly the provably quiet bits *)
  let b = Static.Stim.transition_bound (Stimulus.Ramp 8) ~width in
  check
    Alcotest.(list (float 0.))
    "ramp+8 bound" [ 0.; 0.; 0.; 1. ] (Array.to_list b)

let test_stimulus_parse () =
  let ok s m =
    match Static.Stim.parse s with
    | Ok m' -> check Alcotest.string s (Stimulus.name m) (Stimulus.name m')
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "uniform" Stimulus.Uniform;
  ok "constant" Stimulus.Constant;
  ok "correlated:0.25" (Stimulus.Correlated 0.25);
  ok "ramp:3" (Stimulus.Ramp 3);
  List.iter
    (fun s ->
      match Static.Stim.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "gaussian"; "correlated:1.5"; "correlated:x"; "ramp:-2"; "ramp:" ]

(* The data-independent categories (Clock, Gating, Control,
   Mux_select) are closed forms, not estimates: charge-for-charge
   equal to the simulator on every (component, category) cell. *)
let exact_categories =
  [ Activity.Clock; Activity.Gating; Activity.Control; Activity.Mux_select ]

let max_comp_id design =
  List.fold_left
    (fun acc c -> max acc (Rtl.Comp.id c))
    Activity.global_component
    (Rtl.Datapath.comps (Rtl.Design.datapath design))

let test_exact_categories () =
  let iterations = 37 in
  List.iter
    (fun w ->
      List.iter
        (fun (label, m) ->
          let d = synth w m in
          let a = Static.Analyze.run ~iterations tech d in
          let envs =
            Stimulus.generate Stimulus.Uniform
              (Mclock_util.Rng.create 7)
              ~width ~iterations (Workload.graph w)
          in
          let r = Simulator.run ~seed:7 ~stimulus:envs tech d ~iterations in
          for comp = 0 to max_comp_id d do
            List.iter
              (fun category ->
                let e = Activity.get a.Static.Analyze.estimate ~comp ~category
                and b = Activity.get a.Static.Analyze.bound ~comp ~category
                and s = Activity.get r.Simulator.activity ~comp ~category in
                let name =
                  Printf.sprintf "%s/%s comp %d %s" w.Workload.name label
                    comp
                    (Activity.category_name category)
                in
                check (Alcotest.float (1e-9 *. Float.max 1. s)) name s e;
                check (Alcotest.float (1e-9 *. Float.max 1. s)) name s b)
              exact_categories
          done)
        methods)
    Catalog.all

(* Headline soundness: on every catalog x method cell the certified
   bound dominates both the estimate and the simulated power, in
   total and per component — under the reference kernel. *)
let test_bound_dominates_reference () =
  let iterations = 60 in
  List.iter
    (fun w ->
      List.iter
        (fun (label, m) ->
          let d = synth w m in
          let a = Static.Analyze.run ~iterations tech d in
          let c =
            Static.Report.compare_with_simulation tech d (Workload.graph w) a
          in
          check Alcotest.bool
            (Printf.sprintf "%s/%s sound" w.Workload.name label)
            true c.Static.Report.sound)
        methods)
    Catalog.all

(* ... and under the compiled kernel, with the same stimulus. *)
let test_bound_dominates_compiled () =
  let iterations = 60 in
  List.iter
    (fun w ->
      List.iter
        (fun (label, m) ->
          let d = synth w m in
          let a = Static.Analyze.run ~iterations tech d in
          let envs =
            Stimulus.generate Stimulus.Uniform
              (Mclock_util.Rng.create 42)
              ~width ~iterations (Workload.graph w)
          in
          let r =
            Compiled.run ~seed:42 ~stimulus:envs
              (Compiled.compile tech d)
              ~iterations
          in
          check Alcotest.bool
            (Printf.sprintf "%s/%s compiled sound" w.Workload.name label)
            true
            (Static.Report.leq_tol r.Simulator.power_mw
               a.Static.Analyze.b_power_mw))
        methods)
    Catalog.all

(* Soundness across the non-uniform stimulus models on a spread of
   cells; degenerate stimuli (constant, high-bit ramps) are exactly
   where a naive estimator would overshoot its own certificate. *)
let test_bound_dominates_stimuli () =
  let iterations = 50 in
  let stimuli =
    [
      Stimulus.Correlated 0.15;
      Stimulus.Correlated 0.85;
      Stimulus.Ramp 1;
      Stimulus.Ramp 8;
      Stimulus.Constant;
    ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun (label, m) ->
          let d = synth w m in
          List.iter
            (fun stimulus ->
              let a = Static.Analyze.run ~stimulus ~iterations tech d in
              let c =
                Static.Report.compare_with_simulation tech d
                  (Workload.graph w) a
              in
              check Alcotest.bool
                (Printf.sprintf "%s/%s %s sound" w.Workload.name label
                   (Stimulus.name stimulus))
                true c.Static.Report.sound)
            stimuli)
        [ ("gated", Flow.Conventional_gated); ("mc2", Flow.Integrated 2);
          ("mc4", Flow.Integrated 4); ("split2", Flow.Split 2) ])
    [ Mclock_workloads.Facet.t; Mclock_workloads.Biquad.t ]

(* Documented accuracy band: under the paper's uniform-random
   methodology the estimate lands within 10% of simulation on every
   paper-table benchmark (empirically ~2%, see BENCH_static.json). *)
let test_estimate_accuracy () =
  let iterations = 100 in
  List.iter
    (fun w ->
      List.iter
        (fun (label, m) ->
          let d = synth w m in
          let a = Static.Analyze.run ~iterations tech d in
          let c =
            Static.Report.compare_with_simulation tech d (Workload.graph w) a
          in
          let err = Float.abs c.Static.Report.rel_error in
          if err > 0.10 then
            Alcotest.failf "%s/%s estimate off by %.1f%%" w.Workload.name
              label (100. *. err))
        methods)
    Catalog.paper_tables

(* Bound tightening: constant inputs provably never toggle the ports
   or the registers that latch them, so the bound charges those cells
   exactly zero — a naive worst-case analysis would not. *)
let test_constant_stimulus_bound_tight () =
  let w = Mclock_workloads.Facet.t in
  let d = synth w (Flow.Integrated 2) in
  let a = Static.Analyze.run ~stimulus:Stimulus.Constant ~iterations:50 tech d in
  List.iter
    (fun (v, port) ->
      check (Alcotest.float 0.)
        (Printf.sprintf "port %d data" port)
        0.
        (Activity.get a.Static.Analyze.bound ~comp:port ~category:Activity.Data);
      match Rtl.Design.input_port d v with
      | None -> ()
      | Some _ ->
          List.iter
            (fun (c, s) ->
              if List.exists (Mclock_dfg.Var.equal v) s.Rtl.Comp.s_holds then
                check (Alcotest.float 0.)
                  (Printf.sprintf "input register %d write" (Rtl.Comp.id c))
                  0.
                  (Activity.get a.Static.Analyze.bound ~comp:(Rtl.Comp.id c)
                     ~category:Activity.Storage_write))
            (Rtl.Datapath.storages (Rtl.Design.datapath d)))
    (Rtl.Design.input_ports d)

let suite =
  [
    Alcotest.test_case "ramp rates exact" `Quick test_ramp_rates;
    Alcotest.test_case "stimulus stats" `Quick test_stimulus_stats;
    Alcotest.test_case "stimulus parse" `Quick test_stimulus_parse;
    Alcotest.test_case "exact categories" `Slow test_exact_categories;
    Alcotest.test_case "bound dominates (reference)" `Slow
      test_bound_dominates_reference;
    Alcotest.test_case "bound dominates (compiled)" `Slow
      test_bound_dominates_compiled;
    Alcotest.test_case "bound dominates (stimuli)" `Slow
      test_bound_dominates_stimuli;
    Alcotest.test_case "estimate accuracy" `Slow test_estimate_accuracy;
    Alcotest.test_case "constant bound tight" `Quick
      test_constant_stimulus_bound_tight;
  ]
