(* Tests for the mclock_exec deterministic worker pool: submission-order
   reduction, jobs-count invariance, per-task RNG streams, exception
   propagation, telemetry, and batch report evaluation. *)

open Mclock_exec

let check = Alcotest.check

(* A compute heavy enough that tasks genuinely overlap on a pool. *)
let churn seed =
  let rng = Mclock_util.Rng.create seed in
  let rec go acc k =
    if k = 0 then acc else go ((acc * 31) + Mclock_util.Rng.int rng 1000) (k - 1)
  in
  go 0 2000

let test_default_jobs_positive () =
  check Alcotest.bool "at least one job" true (Pool.default_jobs () >= 1)

let test_invalid_jobs () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Exec.Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_map_submission_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs =
        Pool.map pool (fun i x -> (i, x * x)) [ 3; 1; 4; 1; 5; 9; 2; 6 ]
      in
      check
        Alcotest.(list (pair int int))
        "results in submission order"
        [ (0, 9); (1, 1); (2, 16); (3, 1); (4, 25); (5, 81); (6, 4); (7, 36) ]
        xs)

let test_jobs_invariance () =
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool (fun i seed -> churn (seed + i)) (Mclock_util.List_ext.range 1 12))
  in
  check Alcotest.(list int) "jobs=1 equals jobs=4" (run 1) (run 4)

let test_map_rng_invariance () =
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_rng pool ~seed:7
          (fun ~rng _ x -> x + Mclock_util.Rng.int rng 1_000_000)
          (Mclock_util.List_ext.range 1 10))
  in
  let serial = run 1 in
  check Alcotest.(list int) "streams keyed by index, not worker" serial (run 3);
  (* Distinct tasks get distinct streams. *)
  check Alcotest.bool "streams differ across tasks" true
    (List.length (Mclock_util.List_ext.dedup ~compare:Int.compare serial) > 1)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (match
         Pool.map pool
           (fun i x -> if i = 2 || i = 5 then raise (Boom i) else x)
           [ 10; 11; 12; 13; 14; 15 ]
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Boom i ->
          check Alcotest.int "lowest failing index wins" 2 i);
      (* A failed batch must not kill the worker domains. *)
      let xs = Pool.map pool (fun _ x -> x + 1) [ 1; 2; 3 ] in
      check Alcotest.(list int) "pool survives a failing batch" [ 2; 3; 4 ] xs)

let test_shutdown_rejects_work () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Exec.Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool (fun _ x -> x) [ 1 ]))

let test_timings_telemetry () =
  Pool.with_pool ~jobs:2 (fun pool ->
      ignore (Pool.map pool ~label:(Printf.sprintf "cell %d") (fun i _ -> churn i)
                [ (); (); (); () ]);
      let ts = Pool.timings pool in
      check Alcotest.int "one timing per task" 4 (List.length ts);
      check
        Alcotest.(list string)
        "labels in submission order"
        [ "cell 0"; "cell 1"; "cell 2"; "cell 3" ]
        (List.map (fun t -> t.Pool.t_label) ts);
      List.iter
        (fun t ->
          check Alcotest.bool "non-negative wall" true (t.Pool.t_wall_s >= 0.);
          check Alcotest.bool "worker in range" true
            (t.Pool.t_worker >= 0 && t.Pool.t_worker <= 2))
        ts;
      check Alcotest.bool "json mentions jobs" true
        (String.length (Pool.timings_to_json pool) > 0);
      Pool.reset_timings pool;
      check Alcotest.int "reset clears" 0 (List.length (Pool.timings pool)))

(* The contract the benches rely on: batch evaluation across the pool
   is byte-identical to serial evaluation. *)
let test_evaluate_batch_matches_serial () =
  let tech = Mclock_tech.Cmos08.t in
  let w = Mclock_workloads.Facet.t in
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  let suite = Mclock_core.Flow.standard_suite ~name:"exec" schedule in
  let cells =
    List.map
      (fun (m, design) -> (Mclock_core.Flow.method_label m, design, graph))
      suite
  in
  let serial =
    List.map
      (fun (label, design, graph) ->
        Mclock_power.Report.evaluate ~seed:42 ~iterations:60 ~label tech design
          graph)
      cells
  in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        Mclock_power.Report.evaluate_batch ~pool ~seed:42 ~iterations:60 tech
          cells)
  in
  check Alcotest.(list string) "labels agree"
    (List.map (fun r -> r.Mclock_power.Report.label) serial)
    (List.map (fun r -> r.Mclock_power.Report.label) parallel);
  List.iter2
    (fun (s : Mclock_power.Report.t) (p : Mclock_power.Report.t) ->
      check (Alcotest.float 0.) ("power " ^ s.Mclock_power.Report.label)
        s.Mclock_power.Report.power_mw p.Mclock_power.Report.power_mw;
      check Alcotest.bool "functional" s.Mclock_power.Report.functional_ok
        p.Mclock_power.Report.functional_ok)
    serial parallel

let suite =
  [
    ("default jobs positive", `Quick, test_default_jobs_positive);
    ("invalid jobs", `Quick, test_invalid_jobs);
    ("map keeps submission order", `Quick, test_map_submission_order);
    ("jobs=1 equals jobs=4", `Quick, test_jobs_invariance);
    ("map_rng streams keyed by index", `Quick, test_map_rng_invariance);
    ("exception propagation", `Quick, test_exception_propagation);
    ("shutdown rejects work", `Quick, test_shutdown_rejects_work);
    ("timings telemetry", `Quick, test_timings_telemetry);
    ("evaluate_batch matches serial", `Quick, test_evaluate_batch_matches_serial);
  ]
