(* Tests for the observability layer: registry atomicity, span nesting
   (ambient and across pool domains), the Chrome trace exporter, and
   the registry-absorption parity contracts (legacy stats records must
   be pure reads of the counters).  The final test pins the determinism
   invariant: tracing must never change a result document. *)

open Mclock_obs

let check = Alcotest.check
let fail = Alcotest.fail

(* Tracing is process-global; every test that starts it must stop it
   even on failure, or the remaining suites would record spans. *)
let with_trace ?clock f =
  Obs.start ?clock ();
  Fun.protect ~finally:(fun () -> ignore (Obs.stop ())) (fun () -> f ())

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mclock-test-obs.%d.%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ()
  end

(* --- Registry ----------------------------------------------------------- *)

let test_counter_atomic_across_domains () =
  let reg = Registry.create ~register:false ~name:"t" () in
  let c = Registry.counter reg "hits" in
  let per_domain = 25_000 in
  let worker () =
    for _ = 1 to per_domain do
      Registry.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  check Alcotest.int "no lost increments" (4 * per_domain)
    (Registry.value c)

let test_counter_get_or_create () =
  let reg = Registry.create ~register:false ~name:"t" () in
  let a = Registry.counter reg "x" in
  Registry.incr a ~by:3;
  (* Same name must resolve to the same cell. *)
  Registry.incr (Registry.counter reg "x") ~by:2;
  check Alcotest.int "shared cell" 5 (Registry.value a);
  check Alcotest.(option int) "get" (Some 5) (Registry.get reg "x");
  check Alcotest.(option int) "absent" None (Registry.get reg "y");
  check
    Alcotest.(list (pair string int))
    "snapshot sorted"
    [ ("a", 1); ("x", 5) ]
    (Registry.incr (Registry.counter reg "a");
     Registry.snapshot reg);
  Registry.reset reg;
  check Alcotest.(option int) "reset" (Some 0) (Registry.get reg "x")

(* --- Span nesting (fake clock: deterministic timestamps) ---------------- *)

let test_span_nesting () =
  let now = ref 0. in
  let clock () =
    now := !now +. 1e-3;
    !now
  in
  let events =
    Obs.start ~clock ();
    Fun.protect
      ~finally:(fun () -> ignore (Obs.stop ()))
      (fun () ->
        Obs.with_span ~name:"outer" (fun () ->
            Obs.with_span ~name:"inner" (fun () -> ()));
        Obs.with_span ~name:"sibling" (fun () -> ());
        Obs.stop ())
  in
  check Alcotest.int "three events" 3 (List.length events);
  let by_name n = List.find (fun ev -> ev.Obs.ev_name = n) events in
  let outer = by_name "outer" and inner = by_name "inner" in
  let sibling = by_name "sibling" in
  check Alcotest.(option int) "inner nests under outer"
    (Some outer.Obs.ev_id) inner.Obs.ev_parent;
  check Alcotest.(option int) "outer is a root" None outer.Obs.ev_parent;
  check Alcotest.(option int) "sibling is a root" None sibling.Obs.ev_parent;
  if inner.Obs.ev_ts_us <= outer.Obs.ev_ts_us then
    fail "inner must start after outer";
  if inner.Obs.ev_dur_us >= outer.Obs.ev_dur_us then
    fail "inner must be shorter than outer"

let test_span_end_attrs_merge () =
  let events =
    with_trace (fun () ->
        let sp = Obs.begin_span ~name:"s" ~attrs:[ ("k", "v") ] () in
        Obs.end_span sp ~attrs:[ ("result", "hit") ];
        Obs.stop ())
  in
  match events with
  | [ ev ] ->
      check
        Alcotest.(list (pair string string))
        "begin and end attrs merged"
        [ ("k", "v"); ("result", "hit") ]
        ev.Obs.ev_attrs
  | evs -> fail (Printf.sprintf "expected 1 event, got %d" (List.length evs))

let test_spans_disabled_are_free () =
  check Alcotest.bool "tracing off" false (Obs.tracing ());
  (* No trace started: with_span must just run f, begin_span is None. *)
  check Alcotest.int "passthrough" 41
    (Obs.with_span ~name:"nope" (fun () -> 41));
  check Alcotest.bool "no span handle" true (Obs.begin_span ~name:"n" () = None)

(* --- Parenting across pool domains -------------------------------------- *)

let pool_task_parents ~jobs =
  with_trace (fun () ->
      Mclock_exec.Pool.with_pool ~jobs (fun pool ->
          let sp = Obs.begin_span ~name:"root" () in
          let _ =
            Mclock_exec.Pool.map pool
              ~label:(fun i -> Printf.sprintf "task-%d" i)
              (fun _ x -> x * x)
              [ 1; 2; 3; 4; 5; 6 ]
          in
          Obs.end_span sp;
          let events = Obs.stop () in
          let root = List.find (fun ev -> ev.Obs.ev_name = "root") events in
          let tasks =
            List.filter (fun ev -> ev.Obs.ev_cat = "pool") events
          in
          check Alcotest.int "one span per task" 6 (List.length tasks);
          (root.Obs.ev_id, List.map (fun ev -> ev.Obs.ev_parent) tasks)))

let test_pool_spans_nest_under_submitter () =
  List.iter
    (fun jobs ->
      let root_id, parents = pool_task_parents ~jobs in
      List.iter
        (fun p ->
          check Alcotest.(option int)
            (Printf.sprintf "jobs=%d task parent" jobs)
            (Some root_id) p)
        parents)
    [ 1; 4 ]

(* --- Chrome trace exporter ---------------------------------------------- *)

let test_chrome_export_roundtrip () =
  let now = ref 0. in
  let clock () =
    now := !now +. 1e-3;
    !now
  in
  let events =
    Obs.start ~clock ();
    Fun.protect
      ~finally:(fun () -> ignore (Obs.stop ()))
      (fun () ->
        Obs.with_span ~name:"outer \"quoted\"\nline" (fun () ->
            Obs.with_span ~name:"inner" ~attrs:[ ("key", "a\tb") ] (fun () ->
                ()));
        Obs.stop ())
  in
  let json = Obs.to_chrome_json events in
  match Mclock_lint.Json.parse json with
  | Error e -> fail ("exporter emitted unparseable JSON: " ^ e)
  | Ok (Mclock_lint.Json.List items) ->
      check Alcotest.int "all events exported" (List.length events)
        (List.length items);
      let last_ts = ref neg_infinity in
      List.iter
        (fun item ->
          let member k =
            match Mclock_lint.Json.member k item with
            | Some v -> v
            | None -> fail (Printf.sprintf "event missing %S" k)
          in
          (match member "ph" with
          | Mclock_lint.Json.String "X" -> ()
          | _ -> fail "ph must be \"X\"");
          (match (member "name", member "cat") with
          | Mclock_lint.Json.String _, Mclock_lint.Json.String _ -> ()
          | _ -> fail "name/cat must be strings");
          (match (member "pid", member "tid") with
          | Mclock_lint.Json.Int _, Mclock_lint.Json.Int _ -> ()
          | _ -> fail "pid/tid must be ints");
          (match Mclock_lint.Json.member "id" (member "args") with
          | Some (Mclock_lint.Json.Int _) -> ()
          | _ -> fail "args.id must be an int");
          let ts =
            match member "ts" with
            | Mclock_lint.Json.Float f -> f
            | Mclock_lint.Json.Int i -> float_of_int i
            | _ -> fail "ts must be a number"
          in
          if ts < !last_ts then fail "ts not monotone";
          last_ts := ts)
        items;
      (* Escaping round-trips: the quoted/newlined span name survives. *)
      let names =
        List.filter_map
          (fun item ->
            match Mclock_lint.Json.member "name" item with
            | Some (Mclock_lint.Json.String s) -> Some s
            | _ -> None)
          items
      in
      check Alcotest.bool "escaped name round-trips" true
        (List.mem "outer \"quoted\"\nline" names)
  | Ok _ -> fail "exporter must emit a top-level list"

let test_summary_renders () =
  let now = ref 0. in
  let clock () =
    now := !now +. 1e-3;
    !now
  in
  let events =
    Obs.start ~clock ();
    Fun.protect
      ~finally:(fun () -> ignore (Obs.stop ()))
      (fun () ->
        Obs.with_span ~name:"work" (fun () -> ());
        Obs.stop ())
  in
  let s = Obs.summary events in
  check Alcotest.bool "mentions event count" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 4 <= String.length s && (String.sub s i 4 = "work" || contains (i + 1))
    in
    contains 0)

(* --- Registry absorption parity ----------------------------------------- *)

let test_store_stats_parity () =
  let dir = temp_dir () in
  let store = Mclock_explore.Store.open_ ~dir () in
  let key = String.make 32 'a' in
  let metrics =
    {
      Mclock_explore.Metrics.power_mw = 3.5;
      area = 1000.;
      latency_steps = 4;
      energy_per_computation_pj = 7.25;
      memory_cells = 3;
      mux_inputs = 5;
      functional_ok = true;
    }
  in
  (match Mclock_explore.Store.find store ~key with
  | None -> ()
  | Some _ -> fail "empty store served an entry");
  Mclock_explore.Store.store store ~key metrics;
  (match Mclock_explore.Store.find store ~key with
  | Some _ -> ()
  | None -> fail "stored entry not found");
  let s = Mclock_explore.Store.stats store in
  let reg = Mclock_explore.Store.registry store in
  check Alcotest.string "registry name" "store" (Registry.name reg);
  check Alcotest.(option int) "hits" (Some s.Mclock_explore.Store.hits)
    (Registry.get reg "hits");
  check Alcotest.(option int) "misses" (Some s.Mclock_explore.Store.misses)
    (Registry.get reg "misses");
  check Alcotest.(option int) "stores" (Some s.Mclock_explore.Store.stores)
    (Registry.get reg "stores");
  check Alcotest.int "one hit" 1 s.Mclock_explore.Store.hits;
  check Alcotest.int "one miss" 1 s.Mclock_explore.Store.misses;
  check Alcotest.int "one store" 1 s.Mclock_explore.Store.stores;
  rm_rf dir

let test_client_stats_parity () =
  (* Port 9 (discard) on loopback: nothing listens there, so a single
     zero-retry fetch fails fast and must count as one error, one
     attempt — in both the legacy record and the registry. *)
  let client =
    match
      Mclock_remote.Client.create ~timeout:0.2 ~retries:0
        ~url:"http://127.0.0.1:9" ()
    with
    | Ok c -> c
    | Error e -> fail e
  in
  (match
     Mclock_remote.Client.fetch client ~kind:`Entry ~key:(String.make 32 'b')
   with
  | None -> ()
  | Some _ -> fail "dead remote served bytes");
  let s = Mclock_remote.Client.stats client in
  let reg = Mclock_remote.Client.registry client in
  check Alcotest.string "registry name" "remote" (Registry.name reg);
  check Alcotest.int "one error" 1 s.Mclock_remote.Client.remote_errors;
  check Alcotest.(option int) "errors in registry" (Some 1)
    (Registry.get reg "remote_errors");
  check Alcotest.(option int) "attempts in registry"
    (Some s.Mclock_remote.Client.attempts)
    (Registry.get reg "attempts");
  check Alcotest.int "one attempt" 1 s.Mclock_remote.Client.attempts

let test_pool_registry_matches_timings () =
  Mclock_exec.Pool.with_pool ~jobs:2 (fun pool ->
      let _ =
        Mclock_exec.Pool.map pool
          ~label:(fun i -> Printf.sprintf "t%d" i)
          (fun _ x -> x + 1)
          [ 1; 2; 3; 4; 5 ]
      in
      let timings = Mclock_exec.Pool.timings pool in
      let reg = Mclock_exec.Pool.registry pool in
      check Alcotest.string "registry name" "pool" (Registry.name reg);
      check Alcotest.(option int) "tasks counter tracks timings"
        (Some (List.length timings))
        (Registry.get reg "tasks");
      check Alcotest.int "all tasks timed" 5 (List.length timings))

(* --- Determinism: tracing must not change result documents -------------- *)

let test_trace_does_not_change_frontier () =
  let w = Mclock_workloads.Facet.t in
  let graph = Mclock_workloads.Workload.graph w in
  let sched_constraints = w.Mclock_workloads.Workload.constraints in
  let explore () =
    Mclock_exec.Pool.with_pool ~jobs:2 (fun pool ->
        Mclock_explore.Engine.explore ~pool ~seed:42 ~iterations:60
          ~max_clocks:2 ~name:"facet" ~sched_constraints graph)
  in
  let frontier r =
    Mclock_lint.Json.to_string (Mclock_explore.Engine.frontier_json r)
  in
  let plain = frontier (explore ()) in
  let traced, events =
    with_trace (fun () ->
        let r = explore () in
        (frontier r, Obs.stop ()))
  in
  check Alcotest.string "frontier byte-identical under tracing" plain traced;
  check Alcotest.bool "tracing recorded the evaluations" true
    (List.exists (fun ev -> ev.Obs.ev_name = "explore.evaluate") events
    || List.exists (fun ev -> ev.Obs.ev_name = "explore.simulate") events)

let suite =
  [
    ("counter atomic across domains", `Quick, test_counter_atomic_across_domains);
    ("counter get-or-create", `Quick, test_counter_get_or_create);
    ("span nesting", `Quick, test_span_nesting);
    ("span end attrs merge", `Quick, test_span_end_attrs_merge);
    ("spans disabled are free", `Quick, test_spans_disabled_are_free);
    ("pool spans nest under submitter", `Quick, test_pool_spans_nest_under_submitter);
    ("chrome export round-trips", `Quick, test_chrome_export_roundtrip);
    ("summary renders", `Quick, test_summary_renders);
    ("store stats parity", `Quick, test_store_stats_parity);
    ("client stats parity", `Quick, test_client_stats_parity);
    ("pool registry matches timings", `Quick, test_pool_registry_matches_timings);
    ("tracing keeps frontier bytes", `Quick, test_trace_does_not_change_frontier);
  ]
