(* Tests for the gate-level substrate: every operation's gate expansion
   must be functionally identical to Op.eval, and the calibration
   machinery must produce sane numbers. *)

open Mclock_dfg
module B = Mclock_util.Bitvec
module G = Mclock_gatelevel

let check = Alcotest.check
let fail = Alcotest.fail

let test_gate_eval () =
  check Alcotest.bool "and" true (G.Gate.eval G.Gate.And2 [ true; true ]);
  check Alcotest.bool "nand" false (G.Gate.eval G.Gate.Nand2 [ true; true ]);
  check Alcotest.bool "xor" true (G.Gate.eval G.Gate.Xor2 [ true; false ]);
  check Alcotest.bool "mux sel=0" true (G.Gate.eval G.Gate.Mux2 [ false; true; false ]);
  check Alcotest.bool "mux sel=1" false (G.Gate.eval G.Gate.Mux2 [ true; true; false ])

let test_gate_arity_error () =
  Alcotest.check_raises "inv binary"
    (Invalid_argument "Gate.eval: inv expects 1 inputs, got 2") (fun () ->
      ignore (G.Gate.eval G.Gate.Inv [ true; false ]))

let test_circuit_constants () =
  let b = G.Circuit.builder ~num_inputs:1 in
  let z = G.Circuit.zero b in
  let o = G.Circuit.one b in
  G.Circuit.output b z;
  G.Circuit.output b o;
  let c = G.Circuit.finish b in
  List.iter
    (fun input ->
      match G.Circuit.eval_outputs c [| input |] with
      | [ z; o ] ->
          check Alcotest.bool "zero" false z;
          check Alcotest.bool "one" true o
      | _ -> fail "expected two outputs")
    [ true; false ]

let test_circuit_rejects_forward_reference () =
  let b = G.Circuit.builder ~num_inputs:1 in
  Alcotest.check_raises "undefined signal"
    (Invalid_argument "Circuit.gate: input signal not yet defined") (fun () ->
      ignore (G.Circuit.gate b G.Gate.Inv [ 5 ]))

(* Exhaustive functional equivalence at width 4: every op, every
   operand pair (256 combinations). *)
let test_expansion_exhaustive op () =
  let width = 4 in
  let circuit = G.Expand.circuit ~width op in
  for a = 0 to 15 do
    for bv = 0 to 15 do
      let ba = B.create ~width a and bb = B.create ~width bv in
      let expected =
        match Op.arity op with
        | 1 -> Op.eval op [ ba ]
        | _ -> Op.eval op [ ba; bb ]
      in
      let got = G.Expand.eval circuit ~width ba bb in
      if not (B.equal expected got) then
        fail
          (Printf.sprintf "%s: %d op %d = %d at gate level, expected %d"
             (Op.name op) a bv (B.to_int got) (B.to_int expected))
    done
  done

let exhaustive_tests =
  List.map
    (fun op ->
      ( Printf.sprintf "gate expansion of %s (exhaustive w=4)" (Op.name op),
        `Quick,
        test_expansion_exhaustive op ))
    Op.all

(* Random functional equivalence at larger widths. *)
let test_expansion_width8 () =
  let width = 8 in
  let rng = Mclock_util.Rng.create 55 in
  List.iter
    (fun op ->
      let circuit = G.Expand.circuit ~width op in
      List.iter
        (fun _ ->
          let a = B.random rng ~width and bv = B.random rng ~width in
          let expected =
            match Op.arity op with
            | 1 -> Op.eval op [ a ]
            | _ -> Op.eval op [ a; bv ]
          in
          let got = G.Expand.eval circuit ~width a bv in
          if not (B.equal expected got) then
            fail (Printf.sprintf "%s at width 8 mismatch" (Op.name op)))
        (Mclock_util.List_ext.range 1 60))
    Op.all

let test_multiplier_bigger_than_adder () =
  let add = G.Expand.circuit ~width:4 Op.Add in
  let mul = G.Expand.circuit ~width:4 Op.Mul in
  check Alcotest.bool "mul more gates" true
    (G.Circuit.num_gates mul > 2 * G.Circuit.num_gates add);
  check Alcotest.bool "mul more area" true
    (G.Circuit.area mul > 2. *. G.Circuit.area add)

let test_transitions_zero_on_identical () =
  let c = G.Expand.circuit ~width:4 Op.Add in
  let v = G.Expand.input_vector ~width:4 (B.create ~width:4 5) (B.create ~width:4 9) in
  let toggles, cap = G.Circuit.transitions c ~before:v ~after:v in
  check Alcotest.int "no toggles" 0 toggles;
  check (Alcotest.float 1e-12) "no cap" 0. cap

let test_transitions_positive_on_change () =
  let c = G.Expand.circuit ~width:4 Op.Mul in
  let before = G.Expand.input_vector ~width:4 (B.create ~width:4 0) (B.create ~width:4 0) in
  let after = G.Expand.input_vector ~width:4 (B.create ~width:4 15) (B.create ~width:4 15) in
  let toggles, cap = G.Circuit.transitions c ~before ~after in
  check Alcotest.bool "toggles" true (toggles > 0);
  check Alcotest.bool "cap" true (cap > 0.)

let test_gate_census () =
  let c = G.Expand.circuit ~width:4 Op.And in
  check Alcotest.(list (pair string int)) "4 and gates" [ ("and2", 4) ]
    (G.Circuit.gate_census c)

(* Pinned total gate counts for every expansion at widths 4 and 8: a
   structural regression net over the macro generators (any change to
   the expansion logic — intended or not — shows up here first). *)
let test_gate_counts_pinned () =
  List.iter
    (fun (op, expect4, expect8) ->
      List.iter
        (fun (width, expect) ->
          check Alcotest.int
            (Printf.sprintf "%s w=%d" (Op.name op) width)
            expect
            (G.Circuit.num_gates (G.Expand.circuit ~width op)))
        [ (4, expect4); (8, expect8) ])
    [
      (Op.Add, 22, 42);
      (Op.Sub, 27, 51);
      (Op.Mul, 78, 346);
      (Op.Div, 151, 523);
      (Op.And, 4, 8);
      (Op.Or, 4, 8);
      (Op.Xor, 4, 8);
      (Op.Not, 4, 8);
      (Op.Shl, 14, 26);
      (Op.Shr, 14, 26);
      (Op.Gt, 28, 52);
      (Op.Lt, 28, 52);
      (Op.Eq, 9, 17);
    ]

let test_calibration_sane () =
  let tech = Mclock_tech.Cmos08.t in
  let m = G.Calibrate.measure ~samples:500 tech ~width:4 Op.Add in
  check Alcotest.bool "positive cap" true (m.G.Calibrate.mean_switched_cap > 0.);
  check Alcotest.bool "input toggles ~ 4" true
    (m.G.Calibrate.mean_input_toggles > 2. && m.G.Calibrate.mean_input_toggles < 6.);
  check Alcotest.bool "implied constant positive" true
    (m.G.Calibrate.implied_cap_per_area > 0.)

let test_calibration_mul_heavier_than_add () =
  let tech = Mclock_tech.Cmos08.t in
  let add = G.Calibrate.measure ~samples:500 tech ~width:4 Op.Add in
  let mul = G.Calibrate.measure ~samples:500 tech ~width:4 Op.Mul in
  check Alcotest.bool "mul switches more cap" true
    (mul.G.Calibrate.mean_switched_cap > 2. *. add.G.Calibrate.mean_switched_cap)

let test_calibration_rtl_model_within_band () =
  (* The lump model must over-, never under-estimate the zero-delay
     gate truth (which excludes glitching and wire load), and stay
     within a bounded factor of it. *)
  let tech = Mclock_tech.Cmos08.t in
  List.iter
    (fun op ->
      let m = G.Calibrate.measure ~samples:800 tech ~width:4 op in
      let ratio = m.G.Calibrate.rtl_model_cap /. m.G.Calibrate.mean_switched_cap in
      if ratio < 1. || ratio > 25. then
        fail
          (Printf.sprintf "%s: RTL/gate ratio %.2f out of band" (Op.name op)
             ratio))
    [ Op.Add; Op.Sub; Op.Mul; Op.Div ]

let test_calibration_ratios_proportional () =
  (* Relative proportionality across arithmetic ops: the model/truth
     ratios must not diverge by more than ~5x, or design-style
     comparisons would be skewed toward particular operations. *)
  let tech = Mclock_tech.Cmos08.t in
  let ratios =
    List.map
      (fun op ->
        let m = G.Calibrate.measure ~samples:800 tech ~width:4 op in
        m.G.Calibrate.rtl_model_cap /. m.G.Calibrate.mean_switched_cap)
      [ Op.Add; Op.Sub; Op.Mul; Op.Div; Op.Gt ]
  in
  let lo = List.fold_left min infinity ratios in
  let hi = List.fold_left max 0. ratios in
  check Alcotest.bool
    (Printf.sprintf "spread %.2f..%.2f within 5x" lo hi)
    true
    (hi /. lo < 5.)

let suite =
  [
    ("gate eval", `Quick, test_gate_eval);
    ("gate arity error", `Quick, test_gate_arity_error);
    ("circuit constants", `Quick, test_circuit_constants);
    ("circuit rejects forward reference", `Quick, test_circuit_rejects_forward_reference);
    ("expansion width 8 random", `Quick, test_expansion_width8);
    ("multiplier bigger than adder", `Quick, test_multiplier_bigger_than_adder);
    ("transitions zero on identical", `Quick, test_transitions_zero_on_identical);
    ("transitions positive on change", `Quick, test_transitions_positive_on_change);
    ("gate census", `Quick, test_gate_census);
    ("gate counts pinned", `Quick, test_gate_counts_pinned);
    ("calibration sane", `Quick, test_calibration_sane);
    ("calibration mul heavier", `Quick, test_calibration_mul_heavier_than_add);
    ("calibration RTL model in band", `Quick, test_calibration_rtl_model_within_band);
    ("calibration ratios proportional", `Quick, test_calibration_ratios_proportional);
  ]
  @ exhaustive_tests
