(* Structural digesting of an evaluation cell.

   Everything is fed through Mclock_util.Fingerprint's canonical
   type-tagged encoding; no Marshal, no Hashtbl.hash, no decimal float
   formatting — the digest is stable across processes, OCaml versions
   and machines. *)

let format_version = 1

type spec = {
  graph : Mclock_dfg.Graph.t;
  width : int;
  constraints : Mclock_sched.List_sched.constraints;
  config : Config.t;
  tech : Mclock_tech.Library.t;
  seed : int;
  iterations : int;
}

let fp_operand fp = function
  | Mclock_dfg.Node.Operand_var v ->
      Mclock_util.Fingerprint.string fp "v";
      Mclock_util.Fingerprint.string fp (Mclock_dfg.Var.name v)
  | Mclock_dfg.Node.Operand_const c ->
      Mclock_util.Fingerprint.string fp "c";
      Mclock_util.Fingerprint.int fp c

let fp_node fp node =
  let open Mclock_util.Fingerprint in
  int fp (Mclock_dfg.Node.id node);
  string fp (Mclock_dfg.Op.name (Mclock_dfg.Node.op node));
  list fp fp_operand (Mclock_dfg.Node.operands node);
  string fp (Mclock_dfg.Var.name (Mclock_dfg.Node.result node))

(* The behaviour's structure: nodes in their (deterministic,
   topological) stored order plus the input/output interface.  The
   graph *name* is deliberately excluded — renaming a behaviour does
   not change anything the simulation can observe. *)
let fp_graph fp g =
  let open Mclock_util.Fingerprint in
  string fp "graph";
  let var f v = string f (Mclock_dfg.Var.name v) in
  list fp var (Mclock_dfg.Graph.inputs g);
  list fp var (Mclock_dfg.Graph.outputs g);
  list fp fp_node (Mclock_dfg.Graph.nodes g)

(* Every numeric knob of the library, including the per-op functional
   area table sampled over the whole operation alphabet.  A calibration
   change therefore invalidates exactly the cells it affects. *)
let fp_tech fp (t : Mclock_tech.Library.t) =
  let open Mclock_util.Fingerprint in
  string fp "tech";
  string fp t.name;
  float fp t.supply_voltage;
  float fp t.clock_frequency;
  let storage (s : Mclock_tech.Library.storage_params) =
    float fp s.area_per_bit;
    float fp s.clock_pin_cap;
    float fp s.internal_cap_per_bit;
    float fp s.output_cap_per_bit
  in
  storage t.register;
  storage t.latch;
  float fp t.mux.area_per_input_bit;
  float fp t.mux.data_cap_per_bit;
  float fp t.mux.select_cap;
  list fp
    (fun f op ->
      string f (Mclock_dfg.Op.name op);
      float f (t.fu_area_per_bit op))
    Mclock_dfg.Op.all;
  float fp t.fu_cap_per_area;
  float fp t.fu_output_cap_per_bit;
  float fp t.multifunction_penalty;
  float fp t.addsub_sharing;
  float fp t.control_line_cap;
  float fp t.gating_cell_area;
  float fp t.gating_cell_cap;
  float fp t.isolation_area_per_bit;
  float fp t.isolation_cap_per_bit;
  float fp t.clock_tree_cap_per_sink;
  float fp t.base_area;
  float fp t.routing_factor

let digest spec =
  let open Mclock_util.Fingerprint in
  let fp = create () in
  string fp "mclock-explore-cell";
  int fp format_version;
  fp_graph fp spec.graph;
  int fp spec.width;
  list fp
    (fun f (op, bound) ->
      string f (Mclock_dfg.Op.name op);
      int f bound)
    spec.constraints;
  Config.fingerprint fp spec.config;
  fp_tech fp spec.tech;
  (* Stimulus specification: the engine evaluates under the paper's
     uniform-random methodology; model, seed and length pin the exact
     input streams. *)
  string fp "stimulus";
  string fp "uniform";
  int fp spec.seed;
  int fp spec.iterations;
  hex fp
