(** Per-cell evaluation metrics, the cheap pre-simulation bounds used
    for pruning, and user constraints over both. *)

type t = {
  power_mw : float;
  area : float;  (** total design area, λ² *)
  latency_steps : int;  (** control steps per computation *)
  energy_per_computation_pj : float;
  memory_cells : int;
  mux_inputs : int;
  functional_ok : bool;
}

type bounds = {
  b_area : float;  (** exact post-binding area — no simulation needed *)
  b_latency_steps : int;
  b_memory_cells : int;
  b_power_mw : float;
      (** certified static upper bound on simulated power
          ({!Mclock_static.Analyze}) *)
  b_energy_pj : float;  (** certified upper bound, pJ per computation *)
}
(** Everything here comes from the synthesized binding and the static
    analyzer, before any simulation; constraint pruning on these
    values can never reject a cell the full evaluation would have
    kept.  Power and energy constraints are certified-bound
    constraints by definition: [power<=X] keeps exactly the cells
    whose worst-case bound fits the budget, so pruning decisions are
    deterministic and never admit an actual violator. *)

val bounds_and_estimate_of_design :
  config:Config.t ->
  iterations:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  bounds * float * float
(** [(bounds, est_power_mw, est_energy_pj)] from one static analysis:
    the certified pruning bounds plus the expected-power estimate used
    as the ranking key (estimate-first exploration, halving seed
    pool), all through the [Scaled] transform when the configuration
    asks for it. *)

val bounds_of_design :
  config:Config.t ->
  iterations:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  bounds
(** For [Scaled] configurations the area and storage are those of the
    duplicated array ([clocks] copies) and the power/energy bounds
    carry the same quadratic voltage factor {!of_report} applies,
    matching what evaluation reports.  [iterations] must match the
    evaluation's computation count (the reset transient amortizes over
    it). *)

val estimate_of_design :
  config:Config.t ->
  iterations:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  float * float
(** Static expected [(power_mw, energy_pj)] of a cell, through the
    same scaling transform as {!of_report} — the estimate-first
    ranking key. *)

val of_report :
  config:Config.t ->
  tech:Mclock_tech.Library.t ->
  latency_steps:int ->
  Mclock_power.Report.t ->
  t
(** Metrics of an evaluated cell; applies the voltage-scaling
    duplication transform when the configuration asks for it.
    [latency_steps] is the design's control-step count (reports do not
    carry it). *)

type constraint_ =
  | Max_area of float
  | Max_latency of int
  | Max_memory of int
  | Max_power of float  (** on the certified bound [b_power_mw], mW *)
  | Max_energy of float  (** on the certified bound [b_energy_pj], pJ *)

val parse_constraint : string -> (constraint_, string) result
(** ["area<=12000"], ["latency<=6"], ["mem<=40"], ["power<=4.5"],
    ["energy<=900"]. *)

val constraint_to_string : constraint_ -> string

val admissible : constraints:constraint_ list -> bounds -> bool
(** Whether a cell survives pruning. *)

val violated : constraints:constraint_ list -> bounds -> constraint_ list

val equal : t -> t -> bool
(** Bit-exact on the float fields — the cache round-trip contract. *)

val to_json : t -> Mclock_lint.Json.t
(** Floats are encoded as hexadecimal-float strings so that
    [of_json (to_json m)] returns bit-identical metrics. *)

val of_json : Mclock_lint.Json.t -> (t, string) result

val fingerprint : Mclock_util.Fingerprint.t -> t -> unit
