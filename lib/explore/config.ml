(* The exploration grid.

   The paper samples three points of this space by hand (n = 1, 2, 3
   with fixed allocators); here the whole cross product
   scheduler x allocator x clock count x transfers x voltage mode is
   enumerated, minus the points that are redundant (a conventional
   allocator does not see the clock count) or meaningless (the
   no-transfers ablation on a design with nothing to transfer). *)

type scheduler = Asap | Alap | Force_directed | List_scheduler

type alloc = Conventional | Gated | Integrated | Split

type voltage = Nominal | Scaled

type t = {
  clocks : int;
  scheduler : scheduler;
  alloc : alloc;
  transfers : bool;
  voltage : voltage;
}

let schedulers = [ Asap; Alap; Force_directed; List_scheduler ]

let allocs = [ Conventional; Gated; Integrated; Split ]

let scheduler_name = function
  | Asap -> "asap"
  | Alap -> "alap"
  | Force_directed -> "fds"
  | List_scheduler -> "list"

let alloc_name = function
  | Conventional -> "conv"
  | Gated -> "gated"
  | Integrated -> "mc"
  | Split -> "split"

let is_valid ~max_clocks c =
  c.clocks >= 1
  && c.clocks <= max_clocks
  &&
  match c.alloc with
  | Conventional | Gated -> (
      (* The allocator itself is single-clock; the clock count only
         means something as a duplication factor under scaling. *)
      (not c.transfers)
      &&
      match c.voltage with
      | Nominal -> c.clocks = 1
      | Scaled -> c.clocks >= 2)
  | Integrated ->
      c.voltage = Nominal && (c.transfers || c.clocks >= 2)
  | Split ->
      c.voltage = Nominal && (not c.transfers) && c.clocks >= 2

let enumerate ~max_clocks =
  if max_clocks < 1 then invalid_arg "Config.enumerate: max_clocks < 1";
  List.concat_map
    (fun scheduler ->
      List.concat_map
        (fun alloc ->
          List.concat_map
            (fun clocks ->
              List.concat_map
                (fun transfers ->
                  List.filter_map
                    (fun voltage ->
                      let c =
                        { clocks; scheduler; alloc; transfers; voltage }
                      in
                      if is_valid ~max_clocks c then Some c else None)
                    [ Nominal; Scaled ])
                [ true; false ])
            (Mclock_util.List_ext.range 1 max_clocks))
        allocs)
    schedulers

let label c =
  let base =
    match c.alloc with
    | Conventional | Gated -> alloc_name c.alloc
    | Integrated -> Printf.sprintf "mc%d" c.clocks
    | Split -> Printf.sprintf "split%d" c.clocks
  in
  let base =
    if c.alloc = Integrated && not c.transfers then base ^ "-noxfer" else base
  in
  let base =
    match c.voltage with
    | Nominal -> base
    | Scaled -> Printf.sprintf "%s+dup%d" base c.clocks
  in
  Printf.sprintf "%s/%s" (scheduler_name c.scheduler) base

let compare = Stdlib.compare

let schedule c ~constraints graph =
  match c.scheduler with
  | Asap -> Mclock_sched.Asap.run graph
  | Alap -> Mclock_sched.Alap.run graph
  | Force_directed -> Mclock_sched.Force_directed.run graph
  | List_scheduler -> Mclock_sched.List_sched.run ~constraints graph

let flow_method c =
  match c.alloc with
  | Conventional -> Mclock_core.Flow.Conventional_non_gated
  | Gated -> Mclock_core.Flow.Conventional_gated
  | Integrated -> Mclock_core.Flow.Integrated c.clocks
  | Split -> Mclock_core.Flow.Split c.clocks

let synthesize ?(tech = Mclock_tech.Cmos08.t) ?(width = 4) c ~name schedule =
  match c.alloc with
  | Integrated when not c.transfers ->
      (* Flow.synthesize has no transfers knob; go through the
         allocator directly, keeping the same lint-on-exit contract
         minus MC006 (which the ablation intentionally violates). *)
      let design =
        (Mclock_core.Integrated.run
           ~params:{ Mclock_core.Integrated.tech; width }
           ~transfers:false ~n:c.clocks ~name schedule)
          .Mclock_core.Integrated.design
      in
      let errors =
        List.filter
          (fun d -> d.Mclock_lint.Diagnostic.code <> "MC006")
          (Mclock_lint.Diagnostic.errors (Mclock_lint.Lint.design design))
      in
      if errors <> [] then
        raise (Mclock_core.Flow.Lint_failed { design; diagnostics = errors });
      design
  | Conventional | Gated | Integrated | Split ->
      Mclock_core.Flow.synthesize
        ~params:{ Mclock_core.Flow.tech; width }
        ~method_:(flow_method c) ~name schedule

let fingerprint fp c =
  let open Mclock_util.Fingerprint in
  string fp "config";
  int fp c.clocks;
  string fp (scheduler_name c.scheduler);
  string fp (alloc_name c.alloc);
  bool fp c.transfers;
  bool fp (c.voltage = Scaled)
