(** Scalarized objectives over cell metrics.

    A linear combination of per-metric weights —
    ["power"], ["0.7*power+0.2*area+0.1*latency"] — turned into a
    single comparable score per candidate so that "best" is
    well-defined for the successive-halving keep-rule and for
    [mclock explore --best].

    Each metric is min-max normalized across the candidate set being
    compared (a halving rung, or the evaluated cells of an
    exploration) before weighting, so weights express relative
    priorities rather than unit conversions.  Scores are deterministic
    functions of the candidate metrics: the same candidates in the
    same order always score identically, whatever produced the metrics
    (fresh simulation or cache hit). *)

type metric = Power | Area | Latency | Energy | Memory

type t
(** A non-empty weighted sum of metrics; at least one weight is
    positive, none is negative. *)

val metrics : metric list
(** Every metric, in canonical order. *)

val metric_name : metric -> string
(** ["power"], ["area"], ["latency"], ["energy"], ["mem"]. *)

val metric_value : metric -> Metrics.t -> float

val default : t
(** Pure power minimization (["power"]). *)

val of_weights : (metric * float) list -> (t, string) result
(** Weights for unlisted metrics default to 0; duplicates accumulate.
    Errors on a negative or non-finite weight and on an all-zero
    objective. *)

val weight : t -> metric -> float

val parse : string -> (t, string) result
(** Grammar: terms joined by [+], each term [WEIGHT*METRIC] or a bare
    [METRIC] (weight 1).  An unknown metric name is diagnosed with the
    list of valid metrics. *)

val to_string : t -> string
(** Canonical rendering; [parse (to_string t)] reproduces [t] for any
    [t] whose weights survive ["%g"] formatting (all parseable inputs
    do). *)

val equal : t -> t -> bool

val scores : t -> Metrics.t list -> float list
(** One score per candidate, same order; lower is better.  Each
    weighted metric is min-max normalized across the candidates; a
    degenerate metric (all candidates equal) contributes 0 to every
    score, so a single-candidate list scores [0.]. *)

val best : t -> Metrics.t list -> (int * float) option
(** Index and score of the lowest-scoring candidate; the earliest
    index wins ties, so with candidates in canonical (enumeration)
    order the tie-break is canonical config order.  [None] on the
    empty list. *)
