(* On-disk layout: <dir>/<digest>.json, one entry per evaluated cell:

     { "version": 1, "key": "<digest>", "metrics": { ... } }

   Failure philosophy: the cache is an accelerator, not a source of
   truth.  Every read validates version and key and fully decodes the
   metrics before anything is returned; any irregularity degrades to a
   miss.  Writes go through a temp file and a rename so a concurrent
   or killed run can leave behind at worst a stale temp file, never a
   half-written entry under a valid key.

   The optional remote tier obeys the same philosophy one level up:
   bytes fetched over the network are verified with the exact same
   decoder as bytes read from disk before they are written locally, so
   a hostile or corrupted remote degrades to a miss, never to a
   poisoned store. *)

let version = 1

type remote = {
  r_fetch : [ `Entry | `Ckpt ] -> key:string -> string option;
  r_push : ([ `Entry | `Ckpt ] -> key:string -> string -> unit) option;
}

(* All counters live in a per-store `Mclock_obs.Registry` (name
   ["store"]); the legacy {!stats} record is derived from it on read,
   so `cache stats`, `--stats-json` and the `--trace-summary` counter
   table all observe the same cells. *)
type t = {
  dir : string;
  obs : Mclock_obs.Registry.t;
  c_hits : Mclock_obs.Registry.counter;
  c_misses : Mclock_obs.Registry.counter;
  c_stores : Mclock_obs.Registry.counter;
  c_store_failures : Mclock_obs.Registry.counter;
  c_swept_tmp : Mclock_obs.Registry.counter;
  c_ckpt_hits : Mclock_obs.Registry.counter;
  c_ckpt_misses : Mclock_obs.Registry.counter;
  c_ckpt_stores : Mclock_obs.Registry.counter;
  c_remote_fills : Mclock_obs.Registry.counter;
  c_remote_ckpt_fills : Mclock_obs.Registry.counter;
  mutable remote : remote option;
}

let dir t = t.dir
let registry t = t.obs
let set_remote t r = t.remote <- r
let bump c = Mclock_obs.Registry.incr c

(* A run killed between temp-write and rename leaves a ".<key>.<pid>.tmp"
   orphan behind.  They are invisible to lookups but accumulate
   forever, so opening the store sweeps them — age-gated, because a
   young temp file may belong to a live concurrent writer about to
   rename it.  Every failure is tolerated: sweeping is hygiene, not
   correctness. *)
let is_tmp_name name =
  String.length name > 5
  && name.[0] = '.'
  && Filename.check_suffix name ".tmp"

let sweep_tmp ~max_age dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun swept name ->
          if not (is_tmp_name name) then swept
          else
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error (_, _, _) -> swept
            | st ->
                if
                  st.Unix.st_kind = Unix.S_REG
                  && now -. st.Unix.st_mtime > max_age
                then
                  match Sys.remove path with
                  | () -> swept + 1
                  | exception Sys_error _ -> swept
                else swept)
        0 names

let open_ ?(tmp_max_age = 3600.) ~dir () =
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  let swept = sweep_tmp ~max_age:tmp_max_age dir in
  let obs = Mclock_obs.Registry.create ~name:"store" () in
  let counter = Mclock_obs.Registry.counter obs in
  let t =
    {
      dir;
      obs;
      c_hits = counter "hits";
      c_misses = counter "misses";
      c_stores = counter "stores";
      c_store_failures = counter "store_failures";
      c_swept_tmp = counter "swept_tmp";
      c_ckpt_hits = counter "ckpt_hits";
      c_ckpt_misses = counter "ckpt_misses";
      c_ckpt_stores = counter "ckpt_stores";
      c_remote_fills = counter "remote_fills";
      c_remote_ckpt_fills = counter "remote_ckpt_fills";
      remote = None;
    }
  in
  Mclock_obs.Registry.incr ~by:swept t.c_swept_tmp;
  t

(* Keys come from Cachekey.digest (hex), but defend against a caller
   handing over something path-hostile anyway. *)
let valid_key key =
  String.length key > 0
  && String.for_all
       (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
       key

let entry_path t ~key = Filename.concat t.dir (key ^ ".json")

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception (Sys_error _ | End_of_file) -> None
      in
      close_in_noerr ic;
      r

let decode_entry ~key text =
  match Mclock_lint.Json.parse text with
  | Error _ -> None
  | Ok j -> (
      match
        ( Mclock_lint.Json.member "version" j,
          Mclock_lint.Json.member "key" j,
          Mclock_lint.Json.member "metrics" j )
      with
      | Some (Mclock_lint.Json.Int v), Some (Mclock_lint.Json.String k), Some m
        when v = version && String.equal k key -> (
          match Metrics.of_json m with Ok metrics -> Some metrics | Error _ -> None)
      | _ -> None)

let encode_entry ~key metrics =
  let entry =
    Mclock_lint.Json.Obj
      [
        ("version", Mclock_lint.Json.Int version);
        ("key", Mclock_lint.Json.String key);
        ("metrics", Metrics.to_json metrics);
      ]
  in
  Mclock_lint.Json.to_string_pretty entry ^ "\n"

(* Atomic write: temp file in the same directory, then rename.  The
   temp name embeds the key and pid so concurrent writers never
   collide and the opening sweep can age out orphans. *)
let write_atomic t ~key ~dest text =
  match
    let tmp =
      Filename.concat t.dir (Printf.sprintf ".%s.%d.tmp" key (Unix.getpid ()))
    in
    let oc = open_out_bin tmp in
    (match output_string oc text with
    | () -> close_out oc
    | exception e ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e);
    Sys.rename tmp dest
  with
  | () -> true
  | exception (Sys_error _ | Unix.Unix_error (_, _, _)) -> false

(* Read-through: a verified remote payload is first persisted locally
   (a failed local write is counted but doesn't lose the fill — the
   decoded value is still returned), so the next lookup never touches
   the network.  The tier's callbacks must not raise, but a stray
   exception is contained here anyway: a broken tier is a miss. *)
let remote_fill_entry t ~key =
  match t.remote with
  | None -> None
  | Some { r_fetch; _ } -> (
      match r_fetch `Entry ~key with
      | exception _ -> None
      | None -> None
      | Some text -> (
          match decode_entry ~key text with
          | None -> None
          | Some metrics ->
              bump t.c_remote_fills;
              if not (write_atomic t ~key ~dest:(entry_path t ~key) text) then
                bump t.c_store_failures;
              Some metrics))

let find t ~key =
  let sp =
    Mclock_obs.Obs.begin_span ~cat:"store" ~attrs:[ ("key", key) ]
      ~name:"store.find" ()
  in
  let result =
    if not (valid_key key) then None
    else
      let local =
        match read_file (entry_path t ~key) with
        | None -> None
        | Some text -> decode_entry ~key text
      in
      match local with Some _ -> local | None -> remote_fill_entry t ~key
  in
  (match result with
  | Some _ -> bump t.c_hits
  | None -> bump t.c_misses);
  Mclock_obs.Obs.end_span sp
    ~attrs:
      [ ("result", match result with Some _ -> "hit" | None -> "miss") ];
  result

let push_remote t kind ~key payload =
  match t.remote with
  | Some { r_push = Some push; _ } -> (
      try push kind ~key payload with _ -> ())
  | _ -> ()

let store t ~key metrics =
  Mclock_obs.Obs.with_span ~cat:"store" ~attrs:[ ("key", key) ]
    ~name:"store.store" (fun () ->
      if valid_key key then begin
        let text = encode_entry ~key metrics in
        if write_atomic t ~key ~dest:(entry_path t ~key) text then begin
          bump t.c_stores;
          push_remote t `Entry ~key text
        end
        else bump t.c_store_failures
      end
      else bump t.c_store_failures)

(* --- Checkpoint sidecars ----------------------------------------------- *)

(* A cell's simulation checkpoint lives next to its metrics entry as
   <key>.ckpt.  The store treats the blob as opaque sealed bytes: the
   consumer ([Engine.evaluate_at]) decodes it and degrades any
   corruption to a miss, mirroring the JSON entries' philosophy.
   Because the iteration count is part of the cache key, a checkpoint
   sidecar is always a checkpoint *at* its key's fidelity.

   Remote checkpoint bytes are opaque here too — the fetch callback is
   responsible for decoding them before handing them over (the HTTP
   client does), and the consumer decodes again after the local read,
   so an unverified tier still cannot do worse than waste disk. *)

let checkpoint_path t ~key = Filename.concat t.dir (key ^ ".ckpt")

let remote_fill_ckpt t ~key =
  match t.remote with
  | None -> None
  | Some { r_fetch; _ } -> (
      match r_fetch `Ckpt ~key with
      | exception _ -> None
      | None -> None
      | Some blob ->
          bump t.c_remote_ckpt_fills;
          if not (write_atomic t ~key ~dest:(checkpoint_path t ~key) blob) then
            bump t.c_store_failures;
          Some blob)

let find_checkpoint t ~key =
  let sp =
    Mclock_obs.Obs.begin_span ~cat:"store" ~attrs:[ ("key", key) ]
      ~name:"store.find_ckpt" ()
  in
  let result =
    if not (valid_key key) then None
    else
      match read_file (checkpoint_path t ~key) with
      | Some blob -> Some blob
      | None -> remote_fill_ckpt t ~key
  in
  (match result with
  | Some _ -> bump t.c_ckpt_hits
  | None -> bump t.c_ckpt_misses);
  Mclock_obs.Obs.end_span sp
    ~attrs:
      [ ("result", match result with Some _ -> "hit" | None -> "miss") ];
  result

let store_checkpoint t ~key blob =
  Mclock_obs.Obs.with_span ~cat:"store" ~attrs:[ ("key", key) ]
    ~name:"store.store_ckpt" (fun () ->
      if
        valid_key key
        && write_atomic t ~key ~dest:(checkpoint_path t ~key) blob
      then begin
        bump t.c_ckpt_stores;
        push_remote t `Ckpt ~key blob
      end
      else bump t.c_store_failures)

(* --- Manifest and garbage collection ----------------------------------- *)

let manifest_name = "MANIFEST.json"
let manifest_path t = Filename.concat t.dir manifest_name

(* An entry file is a metrics .json or a checkpoint .ckpt — not the
   manifest, not a temp file. *)
let is_entry_name name =
  (not (is_tmp_name name))
  && (not (String.equal name manifest_name))
  && (Filename.check_suffix name ".json" || Filename.check_suffix name ".ckpt")

(* Stat every entry file: (path, mtime, bytes).  Sorted by (mtime,
   name) so eviction order is deterministic under equal timestamps. *)
let scan_entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             if not (is_entry_name name) then None
             else
               let path = Filename.concat t.dir name in
               match Unix.stat path with
               | exception Unix.Unix_error (_, _, _) -> None
               | st when st.Unix.st_kind = Unix.S_REG ->
                   Some (name, st.Unix.st_mtime, st.Unix.st_size)
               | _ -> None)
      |> List.sort (fun (n1, m1, _) (n2, m2, _) ->
             match Float.compare m1 m2 with
             | 0 -> String.compare n1 n2
             | c -> c)

let write_manifest t ~entries ~bytes =
  let j =
    Mclock_lint.Json.Obj
      [
        ("version", Mclock_lint.Json.Int version);
        ("entries", Mclock_lint.Json.Int entries);
        ("bytes", Mclock_lint.Json.Int bytes);
      ]
  in
  ignore
    (write_atomic t ~key:"manifest" ~dest:(manifest_path t)
       (Mclock_lint.Json.to_string_pretty j ^ "\n"))

type manifest = { m_entries : int; m_bytes : int; m_rebuilt : bool }

let rebuild_manifest t =
  let files = scan_entries t in
  let entries = List.length files in
  let bytes = List.fold_left (fun acc (_, _, b) -> acc + b) 0 files in
  write_manifest t ~entries ~bytes;
  { m_entries = entries; m_bytes = bytes; m_rebuilt = true }

let manifest ?(rebuild = false) t =
  if rebuild then rebuild_manifest t
  else
    let cached =
      match read_file (manifest_path t) with
      | None -> None
      | Some text -> (
          match Mclock_lint.Json.parse text with
          | Error _ -> None
          | Ok j -> (
              match
                ( Mclock_lint.Json.member "version" j,
                  Mclock_lint.Json.member "entries" j,
                  Mclock_lint.Json.member "bytes" j )
              with
              | ( Some (Mclock_lint.Json.Int v),
                  Some (Mclock_lint.Json.Int entries),
                  Some (Mclock_lint.Json.Int bytes) )
                when v = version && entries >= 0 && bytes >= 0 ->
                  Some { m_entries = entries; m_bytes = bytes; m_rebuilt = false }
              | _ -> None))
    in
    match cached with Some m -> m | None -> rebuild_manifest t

type gc_result = {
  gc_removed_entries : int;
  gc_removed_bytes : int;
  gc_remaining_entries : int;
  gc_remaining_bytes : int;
  gc_oldest_removed : float option;
  gc_newest_removed : float option;
}

(* Age pass first (drop entries older than [max_age] seconds), then a
   size pass evicting oldest-mtime-first until the store fits in
   [max_bytes].  Metrics entries and checkpoint sidecars are
   first-class citizens of the same budget — a checkpoint is just a
   bigger, more valuable cache entry.  Every removal failure is
   tolerated (the entry simply still counts as remaining), and the
   manifest is rewritten to the post-GC totals.

   A dry run takes every removal decision identically but deletes
   nothing and leaves the manifest alone, so the report predicts
   exactly what the real pass would do (modulo entries whose real
   removal would fail). *)
let gc ?max_age ?max_bytes ?(dry_run = false) t =
  Mclock_obs.Obs.with_span ~cat:"store"
    ~attrs:[ ("dry_run", string_of_bool dry_run) ]
    ~name:"store.gc"
  @@ fun () ->
  let files = scan_entries t in
  let now = Unix.gettimeofday () in
  let expired (_, mtime, _) =
    match max_age with Some a -> now -. mtime > a | None -> false
  in
  let removed_span = ref None in
  let note_removed (_, mtime, _) =
    removed_span :=
      Some
        (match !removed_span with
        | None -> (mtime, mtime)
        | Some (lo, hi) -> (Float.min lo mtime, Float.max hi mtime))
  in
  let remove_ok ((name, _, _) as f) =
    let ok =
      dry_run
      ||
      match Sys.remove (Filename.concat t.dir name) with
      | () -> true
      | exception Sys_error _ -> false
    in
    if ok then note_removed f;
    ok
  in
  (* Age pass: a failed removal keeps the entry in the survivor set. *)
  let survivors_rev, removed, removed_bytes =
    List.fold_left
      (fun (kept, r, rb) ((_, _, bytes) as f) ->
        if expired f && remove_ok f then (kept, r + 1, rb + bytes)
        else (f :: kept, r, rb))
      ([], 0, 0) files
  in
  let survivors = List.rev survivors_rev in
  let total = List.fold_left (fun a (_, _, b) -> a + b) 0 survivors in
  let removed, removed_bytes, remaining, remaining_bytes =
    match max_bytes with
    | None -> (removed, removed_bytes, List.length survivors, total)
    | Some budget ->
        let rec evict files total kept (removed, removed_bytes) =
          match files with
          | ((_, _, bytes) as f) :: rest when total > budget ->
              if remove_ok f then
                evict rest (total - bytes) kept
                  (removed + 1, removed_bytes + bytes)
              else evict rest total (f :: kept) (removed, removed_bytes)
          | _ ->
              let remaining = List.rev_append kept files in
              ( removed,
                removed_bytes,
                List.length remaining,
                List.fold_left (fun a (_, _, b) -> a + b) 0 remaining )
        in
        evict survivors total [] (removed, removed_bytes)
  in
  if not dry_run then write_manifest t ~entries:remaining ~bytes:remaining_bytes;
  {
    gc_removed_entries = removed;
    gc_removed_bytes = removed_bytes;
    gc_remaining_entries = remaining;
    gc_remaining_bytes = remaining_bytes;
    gc_oldest_removed = Option.map fst !removed_span;
    gc_newest_removed = Option.map snd !removed_span;
  }

type stats = {
  hits : int;
  misses : int;
  stores : int;
  store_failures : int;
  swept_tmp : int;
  ckpt_hits : int;
  ckpt_misses : int;
  ckpt_stores : int;
  remote_fills : int;
  remote_ckpt_fills : int;
}

(* Derived from the registry, so the record and the counter table can
   never disagree (parity-tested in test_obs.ml). *)
let stats (t : t) : stats =
  let v = Mclock_obs.Registry.value in
  {
    hits = v t.c_hits;
    misses = v t.c_misses;
    stores = v t.c_stores;
    store_failures = v t.c_store_failures;
    swept_tmp = v t.c_swept_tmp;
    ckpt_hits = v t.c_ckpt_hits;
    ckpt_misses = v t.c_ckpt_misses;
    ckpt_stores = v t.c_ckpt_stores;
    remote_fills = v t.c_remote_fills;
    remote_ckpt_fills = v t.c_remote_ckpt_fills;
  }

let reset_stats (t : t) = Mclock_obs.Registry.reset t.obs
