(* On-disk layout: <dir>/<digest>.json, one entry per evaluated cell:

     { "version": 1, "key": "<digest>", "metrics": { ... } }

   Failure philosophy: the cache is an accelerator, not a source of
   truth.  Every read validates version and key and fully decodes the
   metrics before anything is returned; any irregularity degrades to a
   miss.  Writes go through a temp file and a rename so a concurrent
   or killed run can leave behind at worst a stale temp file, never a
   half-written entry under a valid key. *)

let version = 1

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable store_failures : int;
  mutable swept_tmp : int;
}

let dir t = t.dir

(* A run killed between temp-write and rename leaves a ".<key>.<pid>.tmp"
   orphan behind.  They are invisible to lookups but accumulate
   forever, so opening the store sweeps them — age-gated, because a
   young temp file may belong to a live concurrent writer about to
   rename it.  Every failure is tolerated: sweeping is hygiene, not
   correctness. *)
let is_tmp_name name =
  String.length name > 5
  && name.[0] = '.'
  && Filename.check_suffix name ".tmp"

let sweep_tmp ~max_age dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let now = Unix.gettimeofday () in
      Array.fold_left
        (fun swept name ->
          if not (is_tmp_name name) then swept
          else
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error (_, _, _) -> swept
            | st ->
                if
                  st.Unix.st_kind = Unix.S_REG
                  && now -. st.Unix.st_mtime > max_age
                then
                  match Sys.remove path with
                  | () -> swept + 1
                  | exception Sys_error _ -> swept
                else swept)
        0 names

let open_ ?(tmp_max_age = 3600.) ~dir () =
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  let swept = sweep_tmp ~max_age:tmp_max_age dir in
  {
    dir;
    hits = 0;
    misses = 0;
    stores = 0;
    store_failures = 0;
    swept_tmp = swept;
  }

(* Keys come from Cachekey.digest (hex), but defend against a caller
   handing over something path-hostile anyway. *)
let safe_key key =
  String.length key > 0
  && String.for_all
       (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
       key

let entry_path t ~key = Filename.concat t.dir (key ^ ".json")

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception (Sys_error _ | End_of_file) -> None
      in
      close_in_noerr ic;
      r

let decode ~key text =
  match Mclock_lint.Json.parse text with
  | Error _ -> None
  | Ok j -> (
      match
        ( Mclock_lint.Json.member "version" j,
          Mclock_lint.Json.member "key" j,
          Mclock_lint.Json.member "metrics" j )
      with
      | Some (Mclock_lint.Json.Int v), Some (Mclock_lint.Json.String k), Some m
        when v = version && String.equal k key -> (
          match Metrics.of_json m with Ok metrics -> Some metrics | Error _ -> None)
      | _ -> None)

let find t ~key =
  let result =
    if not (safe_key key) then None
    else
      match read_file (entry_path t ~key) with
      | None -> None
      | Some text -> decode ~key text
  in
  (match result with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  result

let store t ~key metrics =
  if safe_key key then begin
    let entry =
      Mclock_lint.Json.Obj
        [
          ("version", Mclock_lint.Json.Int version);
          ("key", Mclock_lint.Json.String key);
          ("metrics", Metrics.to_json metrics);
        ]
    in
    let text = Mclock_lint.Json.to_string_pretty entry ^ "\n" in
    match
      let tmp =
        Filename.concat t.dir
          (Printf.sprintf ".%s.%d.tmp" key (Unix.getpid ()))
      in
      let oc = open_out_bin tmp in
      (match output_string oc text with
      | () -> close_out oc
      | exception e ->
          close_out_noerr oc;
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e);
      Sys.rename tmp (entry_path t ~key)
    with
    | () -> t.stores <- t.stores + 1
    | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
        t.store_failures <- t.store_failures + 1
  end
  else t.store_failures <- t.store_failures + 1

type stats = {
  hits : int;
  misses : int;
  stores : int;
  store_failures : int;
  swept_tmp : int;
}

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    store_failures = t.store_failures;
    swept_tmp = t.swept_tmp;
  }

let reset_stats (t : t) =
  t.hits <- 0;
  t.misses <- 0;
  t.stores <- 0;
  t.store_failures <- 0;
  t.swept_tmp <- 0
