(** The exploration engine: enumerate the configuration grid, prune
    with pre-simulation bounds, serve what the persistent cache
    already knows, evaluate the rest on the parallel pool with the
    compiled kernel, and extract the Pareto frontier.

    Determinism contract: for a fixed input (behaviour, constraints,
    seed, iterations, max_clocks, tech), the result — including the
    rendered frontier — is byte-identical whatever the worker count
    and whatever mixture of cache hits and fresh simulations produced
    the metrics. *)

type status =
  | Pruned of Metrics.constraint_ list
      (** rejected by pre-simulation bounds; never simulated *)
  | Skipped of float
      (** estimate-first mode ranked this cell below the [top_k]
          cutoff; carries its static power estimate [mW] *)
  | Cached of Metrics.t  (** served from the persistent store *)
  | Simulated of Metrics.t  (** freshly evaluated this run *)

type cell = {
  config : Config.t;
  cell_label : string;
  key : string;  (** content digest (also the cache address) *)
  bounds : Metrics.bounds;
  status : status;
}

type stats = {
  enumerated : int;
  pruned : int;
  cache_hits : int;
  cache_misses : int;
  simulated : int;
  skipped : int;  (** misses left unsimulated by the [top_k] cutoff *)
  store_failures : int;
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  iterations : int;
  constraints : Metrics.constraint_ list;
  cells : cell list;  (** enumeration order *)
  pareto : Pareto.result;
      (** over evaluated, functionally-correct cells only *)
  stats : stats;
}

type prepared = {
  p_index : int;  (** canonical enumeration index (the tie-break order) *)
  p_config : Config.t;
  p_label : string;
  p_design : Mclock_rtl.Design.t;
  p_bounds : Metrics.bounds;
  p_est_power_mw : float;  (** static expected power, the ranking key *)
}
(** A synthesized, bounded, estimated cell — everything that can be
    known about it without simulating. *)

type space = {
  sp_graph : Mclock_dfg.Graph.t;
  sp_width : int;
  sp_tech : Mclock_tech.Library.t;
  sp_name : string;
  sp_sched_constraints : Mclock_sched.List_sched.constraints;
  sp_cells : prepared list;  (** enumeration order *)
}
(** A prepared search space: the enumerated grid plus the shared
    inputs every cache key derives from. *)

val prepare :
  ?tech:Mclock_tech.Library.t ->
  ?width:int ->
  ?max_clocks:int ->
  iterations:int ->
  name:string ->
  sched_constraints:Mclock_sched.List_sched.constraints ->
  Mclock_dfg.Graph.t ->
  space
(** Enumerate, synthesize, bound and estimate the whole grid (serial,
    cheap — no simulation).  [iterations] is the evaluation fidelity
    the bounds certify (the reset transient amortizes over it). *)

val cell_key : space -> seed:int -> iterations:int -> prepared -> string
(** The cell's content digest at the given evaluation fidelity —
    iteration count is part of the key, so partial-fidelity runs cache
    independently of (and alongside) full-fidelity ones. *)

type rung_stats = {
  rs_cache_hits : int;  (** served from the metrics cache *)
  rs_simulated : int;  (** misses that ran the simulator *)
  rs_resumed : int;  (** of those, how many extended a checkpoint *)
  rs_resumed_iterations : int;
      (** iterations *not* re-simulated thanks to checkpoints *)
  rs_fresh_iterations : int;  (** iterations actually simulated *)
  rs_checkpoints_written : int;  (** sidecars stored at this rung *)
}

val evaluate_at :
  pool:Mclock_exec.Pool.t ->
  ?cache:Store.t ->
  ?resume_from:int list ->
  ?checkpoints:bool ->
  seed:int ->
  iterations:int ->
  space ->
  prepared list ->
  Metrics.t list * rung_stats
(** The partial-fidelity evaluation entry point: evaluate the given
    cells at an arbitrary iteration budget, serving cache hits and
    fanning the misses over the pool (submission order = input order,
    so results are jobs-invariant), writing fresh results back.
    Returns metrics in input order.  Successive-halving rungs are
    built on this; [iterations] need not match the fidelity the space
    was prepared at.

    [resume_from] lists lower iteration counts whose checkpoint
    sidecars (if cached) can seed this rung — the highest available
    one wins, and the remaining iterations alone are simulated.
    [checkpoints] stores a sidecar at this rung for every fresh
    simulation, so a later, higher rung (or a later run) can extend
    it.  Resuming is byte-identical to fresh simulation, and a
    corrupt or mismatched sidecar silently degrades to a fresh run:
    the metrics returned are invariant to the checkpoint cache's
    state.  Both options are inert without [cache]. *)

val explore :
  pool:Mclock_exec.Pool.t ->
  ?cache:Store.t ->
  ?constraints:Metrics.constraint_ list ->
  ?seed:int ->
  ?iterations:int ->
  ?max_clocks:int ->
  ?tech:Mclock_tech.Library.t ->
  ?width:int ->
  ?estimate_first:bool ->
  ?top_k:int ->
  name:string ->
  sched_constraints:Mclock_sched.List_sched.constraints ->
  Mclock_dfg.Graph.t ->
  result
(** Defaults: no cache, no constraints, seed 42, 400 iterations,
    max_clocks 4, the CMOS08 library, width 4.  [sched_constraints]
    bound the list scheduler (a workload's [constraints] field; pass
    [[]] for unconstrained).

    [estimate_first] ranks the cache misses by static expected power
    (ascending) before simulating, so the most promising cells
    evaluate first; [top_k k] (implies [estimate_first]) additionally
    simulates only the [k] best-ranked misses, marking the rest
    {!Skipped}.  The ranking is deterministic, so the simulated set —
    and the frontier over it — remains jobs- and
    cache-state-invariant.  Raises [Invalid_argument] on [top_k < 1]. *)

val render_text : result -> string
(** Cell-by-cell table (status, cache provenance, metrics) plus the
    frontier and the hit/miss/prune counters. *)

val frontier_json : result -> Mclock_lint.Json.t
(** The frontier document: workload, parameters and frontier +
    dominated attribution.  Deliberately excludes run-dependent cache
    counters so that a warm rerun is byte-identical — counters live in
    {!stats_json}. *)

val stats_json : result -> Mclock_lint.Json.t
(** The observability counters of this run. *)

val best : objective:Objective.t -> result -> (cell * float) option
(** The best evaluated, functionally-correct cell under a scalarized
    objective (scores normalized across exactly those cells), with its
    score.  Ties break by canonical config order.  [None] when nothing
    was evaluated.  Deterministic: independent of job count and cache
    state. *)
