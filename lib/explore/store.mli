(** The persistent content-addressed evaluation cache.

    One JSON file per cell under the cache directory, named by the
    cell's digest.  The store is defensive at every edge: a missing,
    truncated, unparseable, wrong-version or wrong-key entry is a
    *miss* (the cell is simply re-evaluated), and a store failure
    (read-only directory, full disk) is counted but never raised — a
    cache must not be able to crash or corrupt an exploration, only to
    make it slower.  Counters for hits / misses / stores / failures
    are kept for observability. *)

type t

val version : int
(** On-disk entry format version; an entry written by any other
    version is treated as a miss. *)

val open_ : dir:string -> t
(** Opens (creating the directory if needed and possible — failure to
    create is tolerated and simply makes every lookup a miss). *)

val dir : t -> string

val find : t -> key:string -> Metrics.t option
(** [Some metrics] only if a well-formed, current-version entry whose
    recorded key matches [key] exists.  Never raises. *)

val store : t -> key:string -> Metrics.t -> unit
(** Atomic write (temp file + rename).  Never raises. *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  store_failures : int;
}

val stats : t -> stats
val reset_stats : t -> unit

val entry_path : t -> key:string -> string
(** Where an entry for [key] lives (exposed for tests and tooling). *)
