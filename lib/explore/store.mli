(** The persistent content-addressed evaluation cache.

    One JSON file per cell under the cache directory, named by the
    cell's digest.  The store is defensive at every edge: a missing,
    truncated, unparseable, wrong-version or wrong-key entry is a
    *miss* (the cell is simply re-evaluated), and a store failure
    (read-only directory, full disk) is counted but never raised — a
    cache must not be able to crash or corrupt an exploration, only to
    make it slower.  Counters for hits / misses / stores / failures
    are kept for observability. *)

type t

val version : int
(** On-disk entry format version; an entry written by any other
    version is treated as a miss. *)

val open_ : ?tmp_max_age:float -> dir:string -> unit -> t
(** Opens (creating the directory if needed and possible — failure to
    create is tolerated and simply makes every lookup a miss).

    Opening also sweeps stale temp files: a run killed between a
    temp-file write and its rename leaks a [.<key>.<pid>.tmp] orphan,
    invisible to lookups but accumulating forever.  Only temp files
    older than [tmp_max_age] seconds (default one hour) are removed, so
    a live concurrent writer's in-flight temp file is never raced; the
    sweep tolerates every filesystem error and reports its count as
    [swept_tmp] in {!stats}. *)

val dir : t -> string

val find : t -> key:string -> Metrics.t option
(** [Some metrics] only if a well-formed, current-version entry whose
    recorded key matches [key] exists.  Never raises. *)

val store : t -> key:string -> Metrics.t -> unit
(** Atomic write (temp file + rename).  Never raises. *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  store_failures : int;
  swept_tmp : int;  (** stale temp files removed when the store opened *)
}

val stats : t -> stats
val reset_stats : t -> unit

val entry_path : t -> key:string -> string
(** Where an entry for [key] lives (exposed for tests and tooling). *)
