(** The persistent content-addressed evaluation cache.

    One JSON file per cell under the cache directory, named by the
    cell's digest.  The store is defensive at every edge: a missing,
    truncated, unparseable, wrong-version or wrong-key entry is a
    *miss* (the cell is simply re-evaluated), and a store failure
    (read-only directory, full disk) is counted but never raised — a
    cache must not be able to crash or corrupt an exploration, only to
    make it slower.  Counters for hits / misses / stores / failures
    are kept for observability.

    A store can optionally be backed by a {!remote} read-through tier:
    a local miss consults the tier, and a verified payload is
    atomically populated into the local directory and served as a hit.
    The tier is plugged as plain callbacks so the store stays free of
    any network dependency; {!Mclock_remote.Client.tier} provides the
    HTTP implementation. *)

type t

val version : int
(** On-disk entry format version; an entry written by any other
    version is treated as a miss. *)

val open_ : ?tmp_max_age:float -> dir:string -> unit -> t
(** Opens (creating the directory if needed and possible — failure to
    create is tolerated and simply makes every lookup a miss).

    Opening also sweeps stale temp files: a run killed between a
    temp-file write and its rename leaks a [.<key>.<pid>.tmp] orphan,
    invisible to lookups but accumulating forever.  Only temp files
    older than [tmp_max_age] seconds (default one hour) are removed, so
    a live concurrent writer's in-flight temp file is never raced; the
    sweep tolerates every filesystem error and reports its count as
    [swept_tmp] in {!stats}. *)

val dir : t -> string

val valid_key : string -> bool
(** The store's key hygiene: nonempty hexadecimal only, so a key can
    never traverse outside the directory.  Exposed so the remote tier
    (server and client alike) rejects hostile keys with the same rule
    instead of a parallel one. *)

val decode_entry : key:string -> string -> Metrics.t option
(** Full verification of an entry's on-disk/on-wire bytes: JSON parse,
    version check, recorded-key-equals-[key] check, and a complete
    metrics decode.  [None] on any irregularity.  This is the only
    gate through which foreign bytes (disk or network) become metrics. *)

val encode_entry : key:string -> Metrics.t -> string
(** The canonical entry serialization [decode_entry] accepts — what
    {!store} writes and what the remote tier transports. *)

type remote = {
  r_fetch : [ `Entry | `Ckpt ] -> key:string -> string option;
      (** Consulted on a local miss.  Must return only payloads it has
          verified (the HTTP client decodes checkpoints before handing
          them over); entries are re-verified by the store with
          {!decode_entry} before anything touches the local directory,
          so a lying tier degrades to a miss, never to a poisoned
          store.  Must not raise. *)
  r_push : ([ `Entry | `Ckpt ] -> key:string -> string -> unit) option;
      (** When present, every freshly stored payload is offered to the
          tier after the local write succeeds (the [--remote-push]
          mode).  Failures are the tier's to swallow; must not
          raise. *)
}
(** A read-through (and optionally write-back) second cache tier. *)

val set_remote : t -> remote option -> unit
(** Attach or detach the remote tier.  [None] (the initial state)
    makes the store purely local. *)

val find : t -> key:string -> Metrics.t option
(** [Some metrics] only if a well-formed, current-version entry whose
    recorded key matches [key] exists — locally, or via the remote
    tier (in which case the verified bytes are first written into the
    local store, so the next lookup is purely local).  Never raises. *)

val store : t -> key:string -> Metrics.t -> unit
(** Atomic write (temp file + rename), then an [r_push] offer when a
    pushing remote tier is attached.  Never raises. *)

val find_checkpoint : t -> key:string -> string option
(** Raw bytes of the checkpoint sidecar stored for [key], if any —
    local first, then the remote tier (remote bytes are persisted
    locally before being returned).  The store does not interpret the
    blob — the consumer decodes it (see
    {!Mclock_sim.Compiled.Checkpoint.decode}) and treats any
    corruption as a miss.  Never raises. *)

val store_checkpoint : t -> key:string -> string -> unit
(** Atomically write a checkpoint sidecar ([<key>.ckpt]) next to the
    metrics entry, then offer it to a pushing remote tier.  Because
    the iteration count is part of the cache key, the sidecar is
    always a checkpoint at its key's fidelity.  Never raises. *)

type manifest = {
  m_entries : int;
  m_bytes : int;
  m_rebuilt : bool;  (** [true] if this call had to rescan the dir *)
}

val manifest : ?rebuild:bool -> t -> manifest
(** Entry-count and byte totals for the store (metrics entries plus
    checkpoint sidecars).  Read from [MANIFEST.json] in O(1) when one
    is present and well-formed; otherwise — or when [rebuild] is set —
    recomputed by scanning the directory and rewritten atomically.
    The manifest is advisory: plain [store]s do not update it (that
    would race concurrent writers), so it reflects the totals as of
    the last rebuild or {!gc}. *)

type gc_result = {
  gc_removed_entries : int;
  gc_removed_bytes : int;
  gc_remaining_entries : int;
  gc_remaining_bytes : int;
  gc_oldest_removed : float option;
      (** mtime of the oldest (would-be-)removed entry, if any *)
  gc_newest_removed : float option;
}

val gc : ?max_age:float -> ?max_bytes:int -> ?dry_run:bool -> t -> gc_result
(** Bounded eviction over metrics entries *and* checkpoint sidecars:
    first drop entries older than [max_age] seconds, then evict
    oldest-mtime-first (ties broken by name, so the order is
    deterministic) until at most [max_bytes] remain.  Failures to
    remove are tolerated — the entry counts as remaining.  Rewrites
    the manifest with the post-GC totals.

    [dry_run] computes the same report — what would be removed, with
    the removed set's oldest/newest mtimes — without deleting anything
    and without touching the manifest.  Never raises. *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  store_failures : int;
  swept_tmp : int;  (** stale temp files removed when the store opened *)
  ckpt_hits : int;
  ckpt_misses : int;
  ckpt_stores : int;
  remote_fills : int;
      (** entries served by the remote tier and populated locally *)
  remote_ckpt_fills : int;  (** checkpoint sidecars filled from the tier *)
}

val stats : t -> stats
val reset_stats : t -> unit

val registry : t -> Mclock_obs.Registry.t
(** The store's metrics registry (name ["store"]); {!stats} is a pure
    read of its counters, so the two views can never diverge. *)

val entry_path : t -> key:string -> string
(** Where an entry for [key] lives (exposed for tests and tooling). *)

val checkpoint_path : t -> key:string -> string
(** Where the checkpoint sidecar for [key] lives. *)
