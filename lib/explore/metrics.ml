(* Cell metrics and pruning bounds.

   The exploration engine decides three times per cell whether work can
   be skipped: constraint pruning (on [bounds], before simulation),
   cache lookup (on the digest), and frontier extraction (on [t]).
   Everything in this module is therefore deterministic and — for the
   cache — bit-exact under a JSON round-trip: floats travel as
   hexadecimal float literals ("%h"), never as decimal renderings. *)

type t = {
  power_mw : float;
  area : float;
  latency_steps : int;
  energy_per_computation_pj : float;
  memory_cells : int;
  mux_inputs : int;
  functional_ok : bool;
}

type bounds = {
  b_area : float;
  b_latency_steps : int;
  b_memory_cells : int;
  b_power_mw : float;
  b_energy_pj : float;
}

(* Area and storage of the [Scaled] duplication variant, derivable from
   the single-copy design without simulating: n copies of the component
   area, the base overhead counted once (same arithmetic as
   [Voltage.duplicate]). *)
let scaled_area tech ~copies area =
  let base = tech.Mclock_tech.Library.base_area in
  base +. (float_of_int copies *. (area -. base))

(* The quadratic voltage factor of the [Scaled] duplication variant:
   power (and per-computation energy) of the n-copy low-voltage array
   relative to the single-copy design — exactly the ratio
   [Voltage.duplicate] applies to its measured baseline, so bounds and
   estimates transform the same way evaluated metrics do. *)
let scaled_power_factor tech ~copies =
  let vdd = tech.Mclock_tech.Library.supply_voltage in
  let v = Mclock_power.Voltage.scaled_voltage ~vdd (float_of_int copies) in
  v /. vdd *. (v /. vdd)

(* One static analysis yields both the certified bounds (for pruning)
   and the expected-power estimate (the ranking key for estimate-first
   exploration and the halving seed pool); computing them together
   halves the analyzer invocations per cell. *)
let bounds_and_estimate_of_design ~config ~iterations tech design =
  let area =
    (Mclock_power.Area.of_design tech design).Mclock_power.Area.design_total
  in
  let cells = Mclock_rtl.Datapath.memory_cells (Mclock_rtl.Design.datapath design) in
  let a = Mclock_static.Analyze.run ~iterations tech design in
  let b_power_mw = a.Mclock_static.Analyze.b_power_mw in
  let b_energy_pj = a.Mclock_static.Analyze.b_energy_pj in
  let est_power = a.Mclock_static.Analyze.est_power_mw in
  let est_energy = a.Mclock_static.Analyze.est_energy_pj in
  match config.Config.voltage with
  | Config.Nominal ->
      ( {
          b_area = area;
          b_latency_steps = Mclock_rtl.Design.num_steps design;
          b_memory_cells = cells;
          b_power_mw;
          b_energy_pj;
        },
        est_power,
        est_energy )
  | Config.Scaled ->
      let factor = scaled_power_factor tech ~copies:config.Config.clocks in
      ( {
          b_area = scaled_area tech ~copies:config.Config.clocks area;
          b_latency_steps = Mclock_rtl.Design.num_steps design;
          b_memory_cells = config.Config.clocks * cells;
          b_power_mw = b_power_mw *. factor;
          b_energy_pj = b_energy_pj *. factor;
        },
        est_power *. factor,
        est_energy *. factor )

let bounds_of_design ~config ~iterations tech design =
  let b, _, _ = bounds_and_estimate_of_design ~config ~iterations tech design in
  b

(* Static expected power/energy of a cell, through the same scaling
   transform as [of_report] — the estimate-first ranking key. *)
let estimate_of_design ~config ~iterations tech design =
  let _, est_power, est_energy =
    bounds_and_estimate_of_design ~config ~iterations tech design
  in
  (est_power, est_energy)

let of_report ~config ~tech ~latency_steps (r : Mclock_power.Report.t) =
  let base =
    {
      power_mw = r.Mclock_power.Report.power_mw;
      area = r.Mclock_power.Report.area.Mclock_power.Area.design_total;
      latency_steps;
      energy_per_computation_pj =
        r.Mclock_power.Report.energy_per_computation_pj;
      memory_cells = r.Mclock_power.Report.memory_cells;
      mux_inputs = r.Mclock_power.Report.mux_inputs;
      functional_ok = r.Mclock_power.Report.functional_ok;
    }
  in
  match config.Config.voltage with
  | Config.Nominal -> base
  | Config.Scaled ->
      let n = config.Config.clocks in
      let d =
        Mclock_power.Voltage.duplicate ~tech ~baseline_power_mw:base.power_mw
          ~baseline_area:base.area n
      in
      (* Throughput is preserved (n copies at f/n), so per-computation
         energy scales exactly like power: the quadratic voltage
         factor. *)
      let ratio = d.Mclock_power.Voltage.power_mw /. base.power_mw in
      {
        base with
        power_mw = d.Mclock_power.Voltage.power_mw;
        area = d.Mclock_power.Voltage.area;
        energy_per_computation_pj = base.energy_per_computation_pj *. ratio;
        memory_cells = n * base.memory_cells;
        mux_inputs = n * base.mux_inputs;
      }

type constraint_ =
  | Max_area of float
  | Max_latency of int
  | Max_memory of int
  | Max_power of float  (** certified upper bound [b_power_mw], mW *)
  | Max_energy of float  (** certified upper bound [b_energy_pj], pJ *)

let parse_constraint s =
  let s = String.trim s in
  match String.index_opt s '<' with
  | Some i
    when i + 1 < String.length s && s.[i + 1] = '=' ->
      let name = String.trim (String.sub s 0 i) in
      let value = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      (match (String.lowercase_ascii name, value) with
      | "area", v -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> Ok (Max_area f)
          | _ -> Error (Printf.sprintf "bad area bound %S" v))
      | "latency", v -> (
          match int_of_string_opt v with
          | Some i when i > 0 -> Ok (Max_latency i)
          | _ -> Error (Printf.sprintf "bad latency bound %S" v))
      | ("mem" | "memory"), v -> (
          match int_of_string_opt v with
          | Some i when i > 0 -> Ok (Max_memory i)
          | _ -> Error (Printf.sprintf "bad memory bound %S" v))
      | "power", v -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> Ok (Max_power f)
          | _ -> Error (Printf.sprintf "bad power bound %S" v))
      | "energy", v -> (
          match float_of_string_opt v with
          | Some f when f > 0. -> Ok (Max_energy f)
          | _ -> Error (Printf.sprintf "bad energy bound %S" v))
      | other, _ ->
          Error
            (Printf.sprintf
               "unknown metric %S in constraint (valid metrics: area, \
                latency, mem, power, energy)"
               other))
  | _ ->
      Error
        (Printf.sprintf
           "cannot parse constraint %S (expected NAME<=VALUE, e.g. \
            area<=12000)"
           s)

let constraint_to_string = function
  | Max_area f -> Printf.sprintf "area<=%g" f
  | Max_latency i -> Printf.sprintf "latency<=%d" i
  | Max_memory i -> Printf.sprintf "mem<=%d" i
  | Max_power f -> Printf.sprintf "power<=%g" f
  | Max_energy f -> Printf.sprintf "energy<=%g" f

let satisfies b = function
  | Max_area f -> b.b_area <= f
  | Max_latency i -> b.b_latency_steps <= i
  | Max_memory i -> b.b_memory_cells <= i
  | Max_power f -> b.b_power_mw <= f
  | Max_energy f -> b.b_energy_pj <= f

let violated ~constraints b =
  List.filter (fun c -> not (satisfies b c)) constraints

let admissible ~constraints b = List.for_all (satisfies b) constraints

let equal a b =
  Float.equal a.power_mw b.power_mw
  && Float.equal a.area b.area
  && a.latency_steps = b.latency_steps
  && Float.equal a.energy_per_computation_pj b.energy_per_computation_pj
  && a.memory_cells = b.memory_cells
  && a.mux_inputs = b.mux_inputs
  && a.functional_ok = b.functional_ok

(* --- Bit-exact JSON ---------------------------------------------------- *)

(* "%h" renders the exact binary value ("0x1.91eb851eb851fp+1"); decimal
   JSON floats would round-trip through two conversions and any
   discrepancy would make a warm-cache frontier differ from a cold one. *)
let float_to_json f = Mclock_lint.Json.String (Printf.sprintf "%h" f)

let float_of_json = function
  | Mclock_lint.Json.String s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad hex float %S" s))
  | _ -> Error "expected a hex-float string"

let to_json m =
  Mclock_lint.Json.Obj
    [
      ("power_mw", float_to_json m.power_mw);
      ("area", float_to_json m.area);
      ("latency_steps", Mclock_lint.Json.Int m.latency_steps);
      ("energy_per_computation_pj", float_to_json m.energy_per_computation_pj);
      ("memory_cells", Mclock_lint.Json.Int m.memory_cells);
      ("mux_inputs", Mclock_lint.Json.Int m.mux_inputs);
      ("functional_ok", Mclock_lint.Json.Bool m.functional_ok);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Mclock_lint.Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let float_field name = Result.bind (field name) float_of_json in
  let int_field name =
    let* v = field name in
    match v with
    | Mclock_lint.Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let bool_field name =
    let* v = field name in
    match v with
    | Mclock_lint.Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "field %S: expected bool" name)
  in
  let* power_mw = float_field "power_mw" in
  let* area = float_field "area" in
  let* latency_steps = int_field "latency_steps" in
  let* energy_per_computation_pj = float_field "energy_per_computation_pj" in
  let* memory_cells = int_field "memory_cells" in
  let* mux_inputs = int_field "mux_inputs" in
  let* functional_ok = bool_field "functional_ok" in
  Ok
    {
      power_mw;
      area;
      latency_steps;
      energy_per_computation_pj;
      memory_cells;
      mux_inputs;
      functional_ok;
    }

let fingerprint fp m =
  let open Mclock_util.Fingerprint in
  string fp "metrics";
  float fp m.power_mw;
  float fp m.area;
  int fp m.latency_steps;
  float fp m.energy_per_computation_pj;
  int fp m.memory_cells;
  int fp m.mux_inputs;
  bool fp m.functional_ok
