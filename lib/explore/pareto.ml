(* Pareto frontier over the three objectives the paper trades off:
   power (the optimization target), area (its cost, Tables 1-4) and
   latency (the schedule length a scheduler choice pays).

   O(n^2) pairwise domination — exploration spaces are hundreds of
   cells, not millions, and the quadratic scan keeps the attribution
   (who dominates whom) trivially deterministic. *)

type point = { index : int; label : string; metrics : Metrics.t }

type verdict = On_frontier | Dominated_by of point

type result = {
  frontier : point list;
  verdicts : (point * verdict) list;
}

let dominates (a : Metrics.t) (b : Metrics.t) =
  a.Metrics.power_mw <= b.Metrics.power_mw
  && a.Metrics.area <= b.Metrics.area
  && a.Metrics.latency_steps <= b.Metrics.latency_steps
  && (a.Metrics.power_mw < b.Metrics.power_mw
     || a.Metrics.area < b.Metrics.area
     || a.Metrics.latency_steps < b.Metrics.latency_steps)

let frontier points =
  let points = List.sort (fun a b -> Stdlib.compare a.index b.index) points in
  let verdicts =
    List.map
      (fun p ->
        let dominator =
          List.find_opt (fun q -> dominates q.metrics p.metrics) points
        in
        match dominator with
        | Some q -> (p, Dominated_by q)
        | None -> (p, On_frontier))
      points
  in
  (* Attribute to a *frontier* point: if p's first dominator q is
     itself dominated, walk up — the chain is finite and acyclic
     because strict improvement in at least one objective is
     transitive. *)
  let rec to_frontier q =
    match List.assq q verdicts with
    | On_frontier | (exception Not_found) -> q
    | Dominated_by r -> to_frontier r
  in
  let verdicts =
    List.map
      (function
        | p, On_frontier -> (p, On_frontier)
        | p, Dominated_by q -> (p, Dominated_by (to_frontier q)))
      verdicts
  in
  {
    frontier =
      List.filter_map
        (function p, On_frontier -> Some p | _, Dominated_by _ -> None)
        verdicts;
    verdicts;
  }
