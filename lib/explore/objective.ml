(* Scalarized objectives: a weight vector over the metric axes plus
   per-candidate-set min-max normalization.

   Normalization happens per comparison set (per halving rung), never
   globally, so a weight of 0.7 on power always means "70% of the
   spread observed among the candidates under comparison" — the score
   is invariant under affine rescaling of any metric. *)

type metric = Power | Area | Latency | Energy | Memory

let metrics = [ Power; Area; Latency; Energy; Memory ]

let metric_name = function
  | Power -> "power"
  | Area -> "area"
  | Latency -> "latency"
  | Energy -> "energy"
  | Memory -> "mem"

let metric_of_name s =
  match String.lowercase_ascii s with
  | "power" -> Some Power
  | "area" -> Some Area
  | "latency" -> Some Latency
  | "energy" -> Some Energy
  | "mem" | "memory" -> Some Memory
  | _ -> None

let valid_metric_names = String.concat ", " (List.map metric_name metrics)

let metric_value m (v : Metrics.t) =
  match m with
  | Power -> v.Metrics.power_mw
  | Area -> v.Metrics.area
  | Latency -> float_of_int v.Metrics.latency_steps
  | Energy -> v.Metrics.energy_per_computation_pj
  | Memory -> float_of_int v.Metrics.memory_cells

let index_of = function
  | Power -> 0
  | Area -> 1
  | Latency -> 2
  | Energy -> 3
  | Memory -> 4

type t = { weights : float array }  (** indexed by [index_of], length 5 *)

let weight t m = t.weights.(index_of m)

let of_weights pairs =
  let weights = Array.make (List.length metrics) 0. in
  let bad =
    List.find_opt
      (fun (_, w) -> not (Float.is_finite w) || w < 0.)
      pairs
  in
  match bad with
  | Some (m, w) ->
      Error
        (Printf.sprintf "metric %s: weight %g must be a finite non-negative \
                         number"
           (metric_name m) w)
  | None ->
      List.iter
        (fun (m, w) -> weights.(index_of m) <- weights.(index_of m) +. w)
        pairs;
      if Array.for_all (fun w -> w = 0.) weights then
        Error "objective needs at least one positive weight"
      else Ok { weights }

let default =
  match of_weights [ (Power, 1.) ] with Ok t -> t | Error _ -> assert false

let parse s =
  let terms = String.split_on_char '+' s in
  let parse_term term =
    let term = String.trim term in
    if term = "" then Error "empty term (stray '+'?)"
    else
      match String.index_opt term '*' with
      | None -> (
          match metric_of_name term with
          | Some m -> Ok (m, 1.)
          | None ->
              Error
                (Printf.sprintf "unknown metric %S (valid metrics: %s)" term
                   valid_metric_names))
      | Some i -> (
          let w = String.trim (String.sub term 0 i) in
          let name =
            String.trim (String.sub term (i + 1) (String.length term - i - 1))
          in
          match (float_of_string_opt w, metric_of_name name) with
          | None, _ -> Error (Printf.sprintf "bad weight %S in term %S" w term)
          | _, None ->
              Error
                (Printf.sprintf "unknown metric %S (valid metrics: %s)" name
                   valid_metric_names)
          | Some w, Some m -> Ok (m, w))
  in
  let rec go acc = function
    | [] -> of_weights (List.rev acc)
    | term :: rest -> (
        match parse_term term with
        | Ok pair -> go (pair :: acc) rest
        | Error e ->
            Error (Printf.sprintf "cannot parse objective %S: %s" s e))
  in
  go [] terms

let to_string t =
  let nonzero =
    List.filter_map
      (fun m ->
        let w = weight t m in
        if w = 0. then None else Some (m, w))
      metrics
  in
  match nonzero with
  | [ (m, 1.) ] -> metric_name m
  | terms ->
      String.concat "+"
        (List.map
           (fun (m, w) -> Printf.sprintf "%g*%s" w (metric_name m))
           terms)

let equal a b = Array.for_all2 Float.equal a.weights b.weights

let scores t candidates =
  match candidates with
  | [] -> []
  | _ ->
      let arr = Array.of_list candidates in
      let contributions =
        List.filter_map
          (fun m ->
            let w = weight t m in
            if w = 0. then None
            else
              let v = Array.map (metric_value m) arr in
              let mn = Array.fold_left Float.min v.(0) v in
              let mx = Array.fold_left Float.max v.(0) v in
              let range = mx -. mn in
              (* A degenerate axis (all candidates equal) cannot rank
                 anyone; it contributes 0 to every score. *)
              if range <= 0. then None
              else Some (Array.map (fun x -> w *. ((x -. mn) /. range)) v))
          metrics
      in
      List.init (Array.length arr) (fun i ->
          List.fold_left (fun acc c -> acc +. c.(i)) 0. contributions)

let best t candidates =
  match scores t candidates with
  | [] -> None
  | ss ->
      let _, best =
        List.fold_left
          (fun (i, acc) s ->
            let acc =
              match acc with
              | Some (_, best_s) when best_s <= s -> acc
              | _ -> Some (i, s)
            in
            (i + 1, acc))
          (0, None) ss
      in
      best
