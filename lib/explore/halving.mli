(** Successive-halving multi-fidelity search over the exploration
    grid.

    Instead of simulating every admissible cell at full fidelity (the
    exhaustive grid of {!Engine.explore}), the search evaluates all
    survivors at a small iteration budget, keeps the best
    [ceil (n / eta)] under a scalarized {!Objective}, multiplies the
    budget by [eta], and repeats until one rung runs at the full
    iteration count — whose best candidate is the winner.  The
    candidate pool is seeded in static-analyzer power ranking order,
    and constraint pruning on the certified pre-simulation bounds
    happens before any rung.

    Every rung's evaluations flow through {!Engine.evaluate_at}: the
    cache key includes the iteration count, so partial-fidelity runs
    are cached and reusable across searches, and fan-out runs on the
    shared pool.

    Determinism contract: for a fixed input, the rung schedule, every
    rung's candidate scores, the kept sets and the winner — and the
    rendered {!render_text} / {!result_json} documents — are
    byte-identical whatever the worker count and whatever mixture of
    cache hits and fresh simulations produced the metrics.  Score ties
    break by canonical config (enumeration) order.  Run-dependent
    cache counters are confined to {!stats_json}. *)

type candidate = {
  c_index : int;  (** canonical enumeration index *)
  c_label : string;
  c_config : Config.t;
  c_metrics : Metrics.t;  (** as evaluated at the rung's budget *)
  c_score : float;
      (** scalarized objective over the rung's functional candidates;
          [infinity] for a functionally-failed candidate *)
}

type rung = {
  r_number : int;  (** 0-based *)
  r_iterations : int;  (** this rung's evaluation budget *)
  r_candidates : candidate list;  (** evaluation order *)
  r_kept : string list;
      (** labels surviving the keep-rule, best first; the final rung
          keeps exactly the winner *)
}

type stats = {
  cache_hits : int;
  simulated : int;  (** cells actually simulated (cache misses) *)
  simulated_iterations : int;
      (** simulated cells weighted by their rung budgets *)
  store_failures : int;
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  eta : int;
  min_iterations : int;
  iterations : int;  (** full fidelity, the last rung's budget *)
  objective : Objective.t;
  constraints : Metrics.constraint_ list;
  enumerated : int;
  pruned : int;  (** rejected by pre-simulation bounds, never evaluated *)
  rungs : rung list;
  winner : candidate option;
      (** best full-fidelity candidate; [None] when every cell is
          pruned or functionally failed *)
  evaluation_iterations : int;
      (** sum over rungs of [candidates * budget] — the search's total
          evaluation work, independent of cache state *)
  exhaustive_iterations : int;
      (** what the exhaustive grid would cost: admissible cells at
          full fidelity *)
  stats : stats;
}

val run :
  pool:Mclock_exec.Pool.t ->
  ?cache:Store.t ->
  ?eta:int ->
  ?min_iterations:int ->
  ?constraints:Metrics.constraint_ list ->
  ?seed:int ->
  ?iterations:int ->
  ?max_clocks:int ->
  ?tech:Mclock_tech.Library.t ->
  ?width:int ->
  ?objective:Objective.t ->
  name:string ->
  sched_constraints:Mclock_sched.List_sched.constraints ->
  Mclock_dfg.Graph.t ->
  result
(** Defaults: eta 2, min_iterations [max 1 (iterations / 16)], no
    constraints, seed 42, 400 iterations, max_clocks 4, the CMOS08
    library, width 4, {!Objective.default} (pure power).

    Raises [Invalid_argument] on [eta < 2], [iterations < 1] or
    [min_iterations] outside [1..iterations]. *)

val render_text : result -> string
(** Rung-by-rung tables (candidate, score, metrics, keep verdict) plus
    the winner and the evaluation-iteration savings.  Deliberately
    excludes cache provenance and counters, so the rendering is
    byte-identical across job counts and cache states. *)

val result_json : result -> Mclock_lint.Json.t
(** The search document: parameters, rung schedule with per-candidate
    scores, kept sets, winner, and the evaluation/exhaustive iteration
    totals.  Same byte-identity guarantee as {!render_text}; cache
    counters live in {!stats_json}. *)

val stats_json : result -> Mclock_lint.Json.t
(** The run-dependent observability counters. *)
