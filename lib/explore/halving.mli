(** Successive-halving multi-fidelity search over the exploration
    grid.

    Instead of simulating every admissible cell at full fidelity (the
    exhaustive grid of {!Engine.explore}), the search evaluates all
    survivors at a small iteration budget, keeps the best
    [ceil (n / eta)] under a scalarized {!Objective}, multiplies the
    budget by [eta], and repeats until one rung runs at the full
    iteration count — whose best candidate is the winner.  The
    candidate pool is seeded in static-analyzer power ranking order,
    and constraint pruning on the certified pre-simulation bounds
    happens before any rung.

    Every rung's evaluations flow through {!Engine.evaluate_at}: the
    cache key includes the iteration count, so partial-fidelity runs
    are cached and reusable across searches, and fan-out runs on the
    shared pool.

    Determinism contract: for a fixed input, the rung schedule, every
    rung's candidate scores, the kept sets and the winner — and the
    rendered {!render_text} / {!result_json} documents — are
    byte-identical whatever the worker count and whatever mixture of
    cache hits and fresh simulations produced the metrics.  Score ties
    break by canonical config (enumeration) order.  Run-dependent
    cache counters are confined to {!stats_json}. *)

type candidate = {
  c_index : int;  (** canonical enumeration index *)
  c_label : string;
  c_config : Config.t;
  c_metrics : Metrics.t;  (** as evaluated at the rung's budget *)
  c_score : float;
      (** scalarized objective over the rung's functional candidates;
          [infinity] for a functionally-failed candidate *)
  c_raced_at : int option;
      (** [Some mid] when racing stopped this candidate at the
          half-budget checkpoint [mid]; its metrics and score are the
          half-budget ones, and it was never kept *)
}

type rung = {
  r_number : int;  (** 0-based *)
  r_iterations : int;  (** this rung's evaluation budget *)
  r_candidates : candidate list;  (** evaluation order *)
  r_kept : string list;
      (** labels surviving the keep-rule, best first; the final rung
          keeps exactly the winner *)
}

type stats = {
  cache_hits : int;
  simulated : int;  (** cells actually simulated (cache misses) *)
  simulated_iterations : int;
      (** iterations actually simulated (a resumed cell only counts
          the extension beyond its checkpoint) *)
  store_failures : int;
  resumed : int;  (** simulations that extended a checkpoint *)
  resumed_iterations : int;
      (** iterations *not* re-simulated thanks to checkpoints *)
  checkpoints_written : int;
  raced_out : int;  (** candidates stopped at a half-budget race *)
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  eta : int;
  min_iterations : int;
  iterations : int;  (** full fidelity, the last rung's budget *)
  objective : Objective.t;
  constraints : Metrics.constraint_ list;
  resume : bool;
  race : bool;
  race_margin : float;
  close_threshold : float;
  degenerate : string option;
      (** a human-readable warning when the parameters collapse the
          rung schedule to a single full-fidelity rung (multi-fidelity
          search saves nothing); [None] for a healthy schedule *)
  enumerated : int;
  pruned : int;  (** rejected by pre-simulation bounds, never evaluated *)
  rungs : rung list;
  winner : candidate option;
      (** best full-fidelity candidate; [None] when every cell is
          pruned or functionally failed *)
  evaluation_iterations : int;
      (** the schedule's nominal simulation cost, independent of cache
          state: with [resume], each rung charges only the iterations
          beyond the previous rung's checkpoint; without, each rung
          charges a full restart ([candidates * budget]) *)
  exhaustive_iterations : int;
      (** what the exhaustive grid would cost: admissible cells at
          full fidelity *)
  stats : stats;
}

val run :
  pool:Mclock_exec.Pool.t ->
  ?cache:Store.t ->
  ?eta:int ->
  ?min_iterations:int ->
  ?constraints:Metrics.constraint_ list ->
  ?seed:int ->
  ?iterations:int ->
  ?max_clocks:int ->
  ?tech:Mclock_tech.Library.t ->
  ?width:int ->
  ?objective:Objective.t ->
  ?resume:bool ->
  ?race:bool ->
  ?race_margin:float ->
  ?close_threshold:float ->
  name:string ->
  sched_constraints:Mclock_sched.List_sched.constraints ->
  Mclock_dfg.Graph.t ->
  result
(** Defaults: eta 2, min_iterations [max 1 (iterations / 16)], no
    constraints, seed 42, 400 iterations, max_clocks 4, the CMOS08
    library, width 4, {!Objective.default} (pure power), resume on,
    racing off, race_margin 0.25, close_threshold 0.

    [resume] makes promotion incremental: each rung stores simulation
    checkpoints (sidecars in the [cache]) and the next rung extends
    them instead of restarting from iteration zero, so a promoted
    candidate pays only the budget *difference*.  Checkpointed
    extension is byte-identical to fresh simulation, so every score,
    kept set, the winner and the rendered documents are unchanged —
    only the simulated-iteration count drops.  Inert without a cache.

    [race] additionally evaluates each rung at half its budget first
    and stops ("races out") candidates scoring worse than the
    keep-boundary by more than [race_margin] (in normalized objective
    units); the rest are always confirmed at the full rung budget,
    which is all the keep rule and the winner ever read.  A raced-out
    candidate could in principle have recovered in the second half —
    the margin makes that unlikely, not impossible, which is why
    racing is opt-in.

    [close_threshold] widens a rung's keep-set beyond
    [ceil (n / eta)] to include every candidate scoring within the
    threshold of the last canonically-kept one (the rung evidence
    cannot separate them); 0 keeps the canonical rule exactly.

    Raises [Invalid_argument] on [eta < 2], [iterations < 1],
    [min_iterations] outside [1..iterations], or a negative
    [race_margin] / [close_threshold]. *)

val keep_width : eta:int -> close_threshold:float -> field:int -> float list -> int
(** The adaptive keep rule, exposed pure for tests: how many of the
    ascending functional [scores] of a rung with [field] total
    candidates survive.  At [close_threshold = 0] this is exactly
    [min (max 1 (ceil (field / eta))) (length scores)]. *)

val render_text : result -> string
(** Rung-by-rung tables (candidate, score, metrics, keep verdict) plus
    the winner and the evaluation-iteration savings.  Deliberately
    excludes cache provenance and counters, so the rendering is
    byte-identical across job counts and cache states. *)

val result_json : result -> Mclock_lint.Json.t
(** The search document: parameters, rung schedule with per-candidate
    scores, kept sets, winner, and the evaluation/exhaustive iteration
    totals.  Same byte-identity guarantee as {!render_text}; cache
    counters live in {!stats_json}. *)

val stats_json : result -> Mclock_lint.Json.t
(** The run-dependent observability counters. *)
