(* Successive-halving search.

   The rung loop is the whole algorithm:

   1. seed   — prepare the grid, prune on certified bounds, rank the
               admissible cells by static expected power (enumeration
               order breaking ties);
   2. rung   — evaluate every survivor at the current budget through
               [Engine.evaluate_at] (cache-served, pool-fanned,
               jobs-invariant), score with the scalarized objective
               (non-functional candidates score infinity), sort by
               (score, enumeration index);
   3. keep   — the best [ceil (n / eta)] functional candidates survive
               to the next rung, whose budget is [eta] times larger
               (capped at full fidelity; a field of <= 1 jumps
               straight to full);
   4. stop   — the rung that ran at the full budget names the winner.

   Budgets strictly increase (eta >= 2), so the loop always reaches the
   full-fidelity rung.  Every quantity the keep-rule consumes is a
   deterministic function of the candidate metrics, which are
   themselves bit-identical across cache states (hex-float round-trip)
   and job counts (submission-order reduction) — hence the byte-identity
   guarantee on the rendered documents. *)

type candidate = {
  c_index : int;
  c_label : string;
  c_config : Config.t;
  c_metrics : Metrics.t;
  c_score : float;
}

type rung = {
  r_number : int;
  r_iterations : int;
  r_candidates : candidate list;
  r_kept : string list;
}

type stats = {
  cache_hits : int;
  simulated : int;
  simulated_iterations : int;
  store_failures : int;
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  eta : int;
  min_iterations : int;
  iterations : int;
  objective : Objective.t;
  constraints : Metrics.constraint_ list;
  enumerated : int;
  pruned : int;
  rungs : rung list;
  winner : candidate option;
  evaluation_iterations : int;
  exhaustive_iterations : int;
  stats : stats;
}

(* Score one rung: min-max normalization runs over the functional
   candidates only (a failed candidate must not stretch the ranges),
   and a failed candidate scores infinity so it sorts last and can
   never be kept over a functional one. *)
let score_rung objective survivors metrics =
  let pairs = List.combine survivors metrics in
  let functional =
    List.filter (fun (_, m) -> m.Metrics.functional_ok) pairs
  in
  let scores = Objective.scores objective (List.map snd functional) in
  let tbl = Hashtbl.create 16 in
  List.iter2
    (fun ((p : Engine.prepared), _) s -> Hashtbl.replace tbl p.Engine.p_index s)
    functional scores;
  List.map
    (fun ((p : Engine.prepared), m) ->
      let score =
        match Hashtbl.find_opt tbl p.Engine.p_index with
        | Some s -> s
        | None -> infinity
      in
      {
        c_index = p.Engine.p_index;
        c_label = p.Engine.p_label;
        c_config = p.Engine.p_config;
        c_metrics = m;
        c_score = score;
      })
    pairs

let run ~pool ?cache ?(eta = 2) ?min_iterations ?(constraints = [])
    ?(seed = 42) ?(iterations = 400) ?(max_clocks = 4) ?tech ?width
    ?(objective = Objective.default) ~name ~sched_constraints graph =
  if eta < 2 then invalid_arg "Halving.run: eta >= 2";
  if iterations < 1 then invalid_arg "Halving.run: iterations >= 1";
  let min_iterations =
    match min_iterations with
    | None -> max 1 (iterations / 16)
    | Some m ->
        if m < 1 || m > iterations then
          invalid_arg "Halving.run: min_iterations in 1..iterations";
        m
  in
  (* Counters accumulate across runs sharing a store; snapshot so this
     result reports only its own failures. *)
  let store_failures_before =
    match cache with
    | None -> 0
    | Some store -> (Store.stats store).Store.store_failures
  in
  let space =
    Engine.prepare ?tech ?width ~max_clocks ~iterations ~name
      ~sched_constraints graph
  in
  let admissible, rejected =
    List.partition
      (fun (p : Engine.prepared) ->
        Metrics.admissible ~constraints p.Engine.p_bounds)
      space.Engine.sp_cells
  in
  (* The seed pool, cheapest static power estimate first — the same
     ranking estimate-first exploration uses, so the small-budget rungs
     spend their work on the statically promising region. *)
  let seed_pool =
    List.stable_sort
      (fun (a : Engine.prepared) (b : Engine.prepared) ->
        match Float.compare a.Engine.p_est_power_mw b.Engine.p_est_power_mw with
        | 0 -> Stdlib.compare a.Engine.p_index b.Engine.p_index
        | c -> c)
      admissible
  in
  let keep_count n = max 1 ((n + eta - 1) / eta) in
  let rec loop rung_no budget survivors acc =
    let rungs_acc, hits, sims, sim_iters, eval_iters = acc in
    let metrics, rs =
      Engine.evaluate_at ~pool ?cache ~seed ~iterations:budget space survivors
    in
    let candidates = score_rung objective survivors metrics in
    let ranked =
      List.stable_sort
        (fun a b ->
          match Float.compare a.c_score b.c_score with
          | 0 -> Stdlib.compare a.c_index b.c_index
          | c -> c)
        candidates
    in
    let functional_ranked =
      List.filter (fun c -> c.c_score < infinity) ranked
    in
    let n = List.length survivors in
    let hits = hits + rs.Engine.rs_cache_hits in
    let sims = sims + rs.Engine.rs_simulated in
    let sim_iters = sim_iters + (rs.Engine.rs_simulated * budget) in
    let eval_iters = eval_iters + (n * budget) in
    if budget >= iterations then
      (* The full-fidelity rung: its best functional candidate is the
         winner. *)
      let winner =
        match functional_ranked with [] -> None | w :: _ -> Some w
      in
      let kept = match winner with None -> [] | Some w -> [ w.c_label ] in
      let r =
        {
          r_number = rung_no;
          r_iterations = budget;
          r_candidates = candidates;
          r_kept = kept;
        }
      in
      (List.rev (r :: rungs_acc), winner, hits, sims, sim_iters, eval_iters)
    else
      let kept =
        List.filteri (fun i _ -> i < keep_count n) functional_ranked
      in
      let r =
        {
          r_number = rung_no;
          r_iterations = budget;
          r_candidates = candidates;
          r_kept = List.map (fun c -> c.c_label) kept;
        }
      in
      match kept with
      | [] ->
          (* Every survivor failed functionally — nothing to promote. *)
          (List.rev (r :: rungs_acc), None, hits, sims, sim_iters, eval_iters)
      | _ ->
          let next_budget =
            if List.length kept <= 1 then iterations
            else min iterations (budget * eta)
          in
          let by_index = Hashtbl.create 16 in
          List.iter
            (fun (p : Engine.prepared) ->
              Hashtbl.replace by_index p.Engine.p_index p)
            survivors;
          let next =
            List.map (fun c -> Hashtbl.find by_index c.c_index) kept
          in
          loop (rung_no + 1) next_budget next
            (r :: rungs_acc, hits, sims, sim_iters, eval_iters)
  in
  let rungs, winner, hits, sims, sim_iters, eval_iters =
    match seed_pool with
    | [] -> ([], None, 0, 0, 0, 0)
    | _ -> loop 0 (min iterations min_iterations) seed_pool ([], 0, 0, 0, 0)
  in
  {
    workload = name;
    max_clocks;
    seed;
    eta;
    min_iterations;
    iterations;
    objective;
    constraints;
    enumerated = List.length space.Engine.sp_cells;
    pruned = List.length rejected;
    rungs;
    winner;
    evaluation_iterations = eval_iters;
    exhaustive_iterations = List.length admissible * iterations;
    stats =
      {
        cache_hits = hits;
        simulated = sims;
        simulated_iterations = sim_iters;
        store_failures =
          (match cache with
          | None -> 0
          | Some store ->
              (Store.stats store).Store.store_failures
              - store_failures_before);
      };
  }

(* --- Rendering --------------------------------------------------------- *)

let score_text c =
  if c.c_score < infinity then Printf.sprintf "%.4f" c.c_score
  else "fail"

let render_text result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "successive-halving search: %s (max %d clocks, eta %d, objective %s)\n"
       result.workload result.max_clocks result.eta
       (Objective.to_string result.objective));
  Buffer.add_string buf
    (Printf.sprintf "cells: %d enumerated, %d pruned by constraints\n"
       result.enumerated result.pruned);
  List.iter
    (fun r ->
      let is_kept l = List.mem l r.r_kept in
      let table =
        Mclock_util.Table.create
          ~title:
            (Printf.sprintf "rung %d: %d candidates @ %d iterations"
               r.r_number
               (List.length r.r_candidates)
               r.r_iterations)
          ~header:
            [ "config"; "score"; "power [mW]"; "area [l^2]"; "lat"; "verdict" ]
          ~aligns:Mclock_util.Table.[ Left; Right; Right; Right; Right; Left ]
          ()
      in
      List.iter
        (fun c ->
          let m = c.c_metrics in
          let verdict =
            if not m.Metrics.functional_ok then "FUNCTIONAL FAIL"
            else if is_kept c.c_label then "kept"
            else "dropped"
          in
          Mclock_util.Table.add_row table
            [
              c.c_label;
              score_text c;
              Printf.sprintf "%.2f" m.Metrics.power_mw;
              Printf.sprintf "%.0f" m.Metrics.area;
              string_of_int m.Metrics.latency_steps;
              verdict;
            ])
        r.r_candidates;
      Buffer.add_string buf (Mclock_util.Table.render table);
      Buffer.add_string buf "\n")
    result.rungs;
  (match result.winner with
  | None -> Buffer.add_string buf "winner: none (no functional candidate)\n"
  | Some w ->
      Buffer.add_string buf
        (Printf.sprintf "winner: %s (score %.4f, %.2f mW @ %d iterations)\n"
           w.c_label w.c_score w.c_metrics.Metrics.power_mw result.iterations));
  Buffer.add_string buf
    (Printf.sprintf
       "evaluation: %d simulated iterations vs %d exhaustive (%.1fx savings)\n"
       result.evaluation_iterations result.exhaustive_iterations
       (if result.evaluation_iterations > 0 then
          float_of_int result.exhaustive_iterations
          /. float_of_int result.evaluation_iterations
        else 0.));
  Buffer.contents buf

let candidate_json c =
  let m = c.c_metrics in
  Mclock_lint.Json.Obj
    [
      ("config", Mclock_lint.Json.String c.c_label);
      ( "score",
        if c.c_score < infinity then Mclock_lint.Json.Float c.c_score
        else Mclock_lint.Json.Null );
      ("functional", Mclock_lint.Json.Bool m.Metrics.functional_ok);
      ("power_mw", Mclock_lint.Json.Float m.Metrics.power_mw);
      ("area", Mclock_lint.Json.Float m.Metrics.area);
      ("latency_steps", Mclock_lint.Json.Int m.Metrics.latency_steps);
      ( "energy_per_computation_pj",
        Mclock_lint.Json.Float m.Metrics.energy_per_computation_pj );
      ("memory_cells", Mclock_lint.Json.Int m.Metrics.memory_cells);
    ]

let rung_json r =
  Mclock_lint.Json.Obj
    [
      ("rung", Mclock_lint.Json.Int r.r_number);
      ("iterations", Mclock_lint.Json.Int r.r_iterations);
      ( "candidates",
        Mclock_lint.Json.List (List.map candidate_json r.r_candidates) );
      ( "kept",
        Mclock_lint.Json.List
          (List.map (fun l -> Mclock_lint.Json.String l) r.r_kept) );
    ]

let result_json result =
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("max_clocks", Mclock_lint.Json.Int result.max_clocks);
      ("seed", Mclock_lint.Json.Int result.seed);
      ("eta", Mclock_lint.Json.Int result.eta);
      ("min_iterations", Mclock_lint.Json.Int result.min_iterations);
      ("iterations", Mclock_lint.Json.Int result.iterations);
      ( "objective",
        Mclock_lint.Json.String (Objective.to_string result.objective) );
      ( "constraints",
        Mclock_lint.Json.List
          (List.map
             (fun c -> Mclock_lint.Json.String (Metrics.constraint_to_string c))
             result.constraints) );
      ("enumerated", Mclock_lint.Json.Int result.enumerated);
      ("pruned", Mclock_lint.Json.Int result.pruned);
      ("rungs", Mclock_lint.Json.List (List.map rung_json result.rungs));
      ( "winner",
        match result.winner with
        | None -> Mclock_lint.Json.Null
        | Some w -> candidate_json w );
      ( "evaluation_iterations",
        Mclock_lint.Json.Int result.evaluation_iterations );
      ( "exhaustive_iterations",
        Mclock_lint.Json.Int result.exhaustive_iterations );
    ]

let stats_json result =
  let s = result.stats in
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("cache_hits", Mclock_lint.Json.Int s.cache_hits);
      ("simulated", Mclock_lint.Json.Int s.simulated);
      ("simulated_iterations", Mclock_lint.Json.Int s.simulated_iterations);
      ("store_failures", Mclock_lint.Json.Int s.store_failures);
    ]
