(* Successive-halving search.

   The rung loop is the whole algorithm:

   1. seed   — prepare the grid, prune on certified bounds, rank the
               admissible cells by static expected power (enumeration
               order breaking ties);
   2. rung   — evaluate every survivor at the current budget through
               [Engine.evaluate_at] (cache-served, pool-fanned,
               jobs-invariant), score with the scalarized objective
               (non-functional candidates score infinity), sort by
               (score, enumeration index);
   3. keep   — the best [ceil (n / eta)] functional candidates survive
               to the next rung, whose budget is [eta] times larger
               (capped at full fidelity; a field of <= 1 jumps
               straight to full);
   4. stop   — the rung that ran at the full budget names the winner.

   Budgets strictly increase (eta >= 2), so the loop always reaches the
   full-fidelity rung.  Every quantity the keep-rule consumes is a
   deterministic function of the candidate metrics, which are
   themselves bit-identical across cache states (hex-float round-trip)
   and job counts (submission-order reduction) — hence the byte-identity
   guarantee on the rendered documents. *)

type candidate = {
  c_index : int;
  c_label : string;
  c_config : Config.t;
  c_metrics : Metrics.t;
  c_score : float;
  c_raced_at : int option;
}

type rung = {
  r_number : int;
  r_iterations : int;
  r_candidates : candidate list;
  r_kept : string list;
}

type stats = {
  cache_hits : int;
  simulated : int;
  simulated_iterations : int;
  store_failures : int;
  resumed : int;
  resumed_iterations : int;
  checkpoints_written : int;
  raced_out : int;
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  eta : int;
  min_iterations : int;
  iterations : int;
  objective : Objective.t;
  constraints : Metrics.constraint_ list;
  resume : bool;
  race : bool;
  race_margin : float;
  close_threshold : float;
  degenerate : string option;
  enumerated : int;
  pruned : int;
  rungs : rung list;
  winner : candidate option;
  evaluation_iterations : int;
  exhaustive_iterations : int;
  stats : stats;
}

(* Score one rung: min-max normalization runs over the functional
   candidates only (a failed candidate must not stretch the ranges),
   and a failed candidate scores infinity so it sorts last and can
   never be kept over a functional one. *)
let score_rung objective survivors metrics =
  let pairs = List.combine survivors metrics in
  let functional =
    List.filter (fun (_, m) -> m.Metrics.functional_ok) pairs
  in
  let scores = Objective.scores objective (List.map snd functional) in
  let tbl = Hashtbl.create 16 in
  List.iter2
    (fun ((p : Engine.prepared), _) s -> Hashtbl.replace tbl p.Engine.p_index s)
    functional scores;
  List.map
    (fun ((p : Engine.prepared), m) ->
      let score =
        match Hashtbl.find_opt tbl p.Engine.p_index with
        | Some s -> s
        | None -> infinity
      in
      {
        c_index = p.Engine.p_index;
        c_label = p.Engine.p_label;
        c_config = p.Engine.p_config;
        c_metrics = m;
        c_score = score;
        c_raced_at = None;
      })
    pairs

(* Adaptive keep width.  The canonical keep-set is the best
   [ceil (field / eta)] functional candidates; when the next scores
   are within [close_threshold] of the last canonically-kept one, the
   small-budget rung cannot reliably separate them, so the set widens
   to include every candidate with score strictly below
   [boundary + close_threshold].  At the default threshold 0 this is
   exactly the canonical rule (a score is never strictly below
   itself), pinning backwards compatibility.  [scores] are the rung's
   functional scores in ascending order. *)
let keep_width ~eta ~close_threshold ~field scores =
  let base = max 1 ((field + eta - 1) / eta) in
  match List.nth_opt scores (base - 1) with
  | None -> List.length scores
  | Some boundary ->
      let widened =
        List.length
          (List.filter (fun s -> s -. boundary < close_threshold) scores)
      in
      max base widened

let run ~pool ?cache ?(eta = 2) ?min_iterations ?(constraints = [])
    ?(seed = 42) ?(iterations = 400) ?(max_clocks = 4) ?tech ?width
    ?(objective = Objective.default) ?(resume = true) ?(race = false)
    ?(race_margin = 0.25) ?(close_threshold = 0.) ~name ~sched_constraints
    graph =
  if eta < 2 then invalid_arg "Halving.run: eta >= 2";
  if iterations < 1 then invalid_arg "Halving.run: iterations >= 1";
  if not (race_margin >= 0.) then invalid_arg "Halving.run: race_margin >= 0";
  if not (close_threshold >= 0.) then
    invalid_arg "Halving.run: close_threshold >= 0";
  let min_iterations =
    match min_iterations with
    | None -> max 1 (iterations / 16)
    | Some m ->
        if m < 1 || m > iterations then
          invalid_arg "Halving.run: min_iterations in 1..iterations";
        m
  in
  let first_budget = min iterations min_iterations in
  let degenerate =
    if first_budget >= iterations then
      Some
        (Printf.sprintf
           "rung schedule degenerates to a single full-fidelity rung \
            (min_iterations %d >= iterations %d): successive halving saves \
            nothing over exhaustive evaluation; lower min_iterations or \
            raise iterations"
           min_iterations iterations)
    else None
  in
  (* Counters accumulate across runs sharing a store; snapshot so this
     result reports only its own failures. *)
  let store_failures_before =
    match cache with
    | None -> 0
    | Some store -> (Store.stats store).Store.store_failures
  in
  let space =
    Engine.prepare ?tech ?width ~max_clocks ~iterations ~name
      ~sched_constraints graph
  in
  let admissible, rejected =
    List.partition
      (fun (p : Engine.prepared) ->
        Metrics.admissible ~constraints p.Engine.p_bounds)
      space.Engine.sp_cells
  in
  (* The seed pool, cheapest static power estimate first — the same
     ranking estimate-first exploration uses, so the small-budget rungs
     spend their work on the statically promising region. *)
  let seed_pool =
    List.stable_sort
      (fun (a : Engine.prepared) (b : Engine.prepared) ->
        match Float.compare a.Engine.p_est_power_mw b.Engine.p_est_power_mw with
        | 0 -> Stdlib.compare a.Engine.p_index b.Engine.p_index
        | c -> c)
      admissible
  in
  (* Run-wide counters (mutated by [eval] below, read once at the end).
     [past] is the ladder of budgets this search has already
     checkpointed — later rungs resume from the highest one cached. *)
  let hits = ref 0 in
  let sims = ref 0 in
  let fresh_iters = ref 0 in
  let resumed = ref 0 in
  let resumed_iters = ref 0 in
  let ckpts = ref 0 in
  let raced_out = ref 0 in
  let eval_iters = ref 0 in
  let past = ref [] in
  let eval ~budget survivors =
    let resume_from = if resume then !past else [] in
    let metrics, rs =
      Engine.evaluate_at ~pool ?cache ~resume_from ~checkpoints:resume ~seed
        ~iterations:budget space survivors
    in
    hits := !hits + rs.Engine.rs_cache_hits;
    sims := !sims + rs.Engine.rs_simulated;
    fresh_iters := !fresh_iters + rs.Engine.rs_fresh_iterations;
    resumed := !resumed + rs.Engine.rs_resumed;
    resumed_iters := !resumed_iters + rs.Engine.rs_resumed_iterations;
    ckpts := !ckpts + rs.Engine.rs_checkpoints_written;
    past := budget :: !past;
    metrics
  in
  (* The nominal cost of evaluating [n] cells at [budget] when they
     last ran at [prev]: incremental under resume, a restart without.
     Deliberately a function of the schedule alone — never of the
     cache state — so [evaluation_iterations] stays byte-identical
     across cold and warm runs. *)
  let charge ~n ~prev ~budget =
    eval_iters := !eval_iters + (n * if resume then budget - prev else budget)
  in
  let rank =
    List.stable_sort (fun a b ->
        match Float.compare a.c_score b.c_score with
        | 0 -> Stdlib.compare a.c_index b.c_index
        | c -> c)
  in
  let rec loop rung_no prev_budget budget survivors rungs_acc =
    let n = List.length survivors in
    (* One span per rung, ended before the recursive call so rungs are
       siblings in the trace, not a nesting tower. *)
    let sp =
      Mclock_obs.Obs.begin_span ~cat:"search" ~name:"search.rung"
        ~attrs:
          [
            ("rung", string_of_int rung_no);
            ("budget", string_of_int budget);
            ("candidates", string_of_int n);
          ]
        ()
    in
    let base_keep = max 1 ((n + eta - 1) / eta) in
    (* Racing: evaluate everyone at half the rung budget first; a
       candidate scoring worse than the keep-boundary by more than
       [race_margin] cannot plausibly close the gap, so it is raced
       out and never pays the full rung.  Survivors of the race are
       always confirmed at the full rung budget — the keep decision
       (and the winner) only ever reads full-budget scores. *)
    let mid = budget / 2 in
    let do_race = race && n > 1 && mid > prev_budget && mid < budget in
    let raced, continue_set, race_base =
      if not do_race then ([], survivors, prev_budget)
      else begin
        let mid_metrics = eval ~budget:mid survivors in
        charge ~n ~prev:prev_budget ~budget:mid;
        let mid_ranked = rank (score_rung objective survivors mid_metrics) in
        let mid_functional =
          List.filter (fun c -> c.c_score < infinity) mid_ranked
        in
        match List.nth_opt mid_functional (base_keep - 1) with
        | None -> ([], survivors, mid)
        | Some boundary_c ->
            let boundary = boundary_c.c_score in
            let raced_tbl = Hashtbl.create 16 in
            List.iter
              (fun c ->
                if c.c_score > boundary +. race_margin then
                  Hashtbl.replace raced_tbl c.c_index
                    { c with c_raced_at = Some mid })
              mid_ranked;
            let continue_set =
              List.filter
                (fun (p : Engine.prepared) ->
                  not (Hashtbl.mem raced_tbl p.Engine.p_index))
                survivors
            in
            let raced =
              List.filter_map
                (fun (p : Engine.prepared) ->
                  Hashtbl.find_opt raced_tbl p.Engine.p_index)
                survivors
            in
            raced_out := !raced_out + List.length raced;
            (raced, continue_set, mid)
      end
    in
    let metrics = eval ~budget continue_set in
    charge ~n:(List.length continue_set) ~prev:race_base ~budget;
    let full_candidates = score_rung objective continue_set metrics in
    (* The rung's candidate list keeps survivor (evaluation) order;
       raced-out candidates carry their half-budget metrics and score. *)
    let cand_tbl = Hashtbl.create 16 in
    List.iter
      (fun c -> Hashtbl.replace cand_tbl c.c_index c)
      (full_candidates @ raced);
    let candidates =
      List.map
        (fun (p : Engine.prepared) -> Hashtbl.find cand_tbl p.Engine.p_index)
        survivors
    in
    let functional_ranked =
      List.filter (fun c -> c.c_score < infinity) (rank full_candidates)
    in
    if budget >= iterations then
      (* The full-fidelity rung: its best functional candidate is the
         winner. *)
      let winner =
        match functional_ranked with [] -> None | w :: _ -> Some w
      in
      let kept = match winner with None -> [] | Some w -> [ w.c_label ] in
      let r =
        {
          r_number = rung_no;
          r_iterations = budget;
          r_candidates = candidates;
          r_kept = kept;
        }
      in
      Mclock_obs.Obs.end_span sp
        ~attrs:[ ("kept", string_of_int (List.length kept)) ];
      (List.rev (r :: rungs_acc), winner)
    else
      let kept_n =
        keep_width ~eta ~close_threshold ~field:n
          (List.map (fun c -> c.c_score) functional_ranked)
      in
      let kept = List.filteri (fun i _ -> i < kept_n) functional_ranked in
      let r =
        {
          r_number = rung_no;
          r_iterations = budget;
          r_candidates = candidates;
          r_kept = List.map (fun c -> c.c_label) kept;
        }
      in
      Mclock_obs.Obs.end_span sp
        ~attrs:[ ("kept", string_of_int (List.length kept)) ];
      match kept with
      | [] ->
          (* Every survivor failed functionally — nothing to promote. *)
          (List.rev (r :: rungs_acc), None)
      | _ ->
          let next_budget =
            if List.length kept <= 1 then iterations
            else min iterations (budget * eta)
          in
          let by_index = Hashtbl.create 16 in
          List.iter
            (fun (p : Engine.prepared) ->
              Hashtbl.replace by_index p.Engine.p_index p)
            survivors;
          let next =
            List.map (fun c -> Hashtbl.find by_index c.c_index) kept
          in
          loop (rung_no + 1) budget next_budget next (r :: rungs_acc)
  in
  let rungs, winner =
    match seed_pool with
    | [] -> ([], None)
    | _ -> loop 0 0 first_budget seed_pool []
  in
  {
    workload = name;
    max_clocks;
    seed;
    eta;
    min_iterations;
    iterations;
    objective;
    constraints;
    resume;
    race;
    race_margin;
    close_threshold;
    degenerate;
    enumerated = List.length space.Engine.sp_cells;
    pruned = List.length rejected;
    rungs;
    winner;
    evaluation_iterations = !eval_iters;
    exhaustive_iterations = List.length admissible * iterations;
    stats =
      {
        cache_hits = !hits;
        simulated = !sims;
        simulated_iterations = !fresh_iters;
        store_failures =
          (match cache with
          | None -> 0
          | Some store ->
              (Store.stats store).Store.store_failures
              - store_failures_before);
        resumed = !resumed;
        resumed_iterations = !resumed_iters;
        checkpoints_written = !ckpts;
        raced_out = !raced_out;
      };
  }

(* --- Rendering --------------------------------------------------------- *)

let score_text c =
  if c.c_score < infinity then Printf.sprintf "%.4f" c.c_score
  else "fail"

let render_text result =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "successive-halving search: %s (max %d clocks, eta %d, objective %s)\n"
       result.workload result.max_clocks result.eta
       (Objective.to_string result.objective));
  Buffer.add_string buf
    (Printf.sprintf "cells: %d enumerated, %d pruned by constraints\n"
       result.enumerated result.pruned);
  (match result.degenerate with
  | Some msg -> Buffer.add_string buf (Printf.sprintf "warning: %s\n" msg)
  | None -> ());
  List.iter
    (fun r ->
      let is_kept l = List.mem l r.r_kept in
      let table =
        Mclock_util.Table.create
          ~title:
            (Printf.sprintf "rung %d: %d candidates @ %d iterations"
               r.r_number
               (List.length r.r_candidates)
               r.r_iterations)
          ~header:
            [ "config"; "score"; "power [mW]"; "area [l^2]"; "lat"; "verdict" ]
          ~aligns:Mclock_util.Table.[ Left; Right; Right; Right; Right; Left ]
          ()
      in
      List.iter
        (fun c ->
          let m = c.c_metrics in
          let verdict =
            match c.c_raced_at with
            | Some mid -> Printf.sprintf "raced out @ %d" mid
            | None ->
                if not m.Metrics.functional_ok then "FUNCTIONAL FAIL"
                else if is_kept c.c_label then "kept"
                else "dropped"
          in
          Mclock_util.Table.add_row table
            [
              c.c_label;
              score_text c;
              Printf.sprintf "%.2f" m.Metrics.power_mw;
              Printf.sprintf "%.0f" m.Metrics.area;
              string_of_int m.Metrics.latency_steps;
              verdict;
            ])
        r.r_candidates;
      Buffer.add_string buf (Mclock_util.Table.render table);
      Buffer.add_string buf "\n")
    result.rungs;
  (match result.winner with
  | None -> Buffer.add_string buf "winner: none (no functional candidate)\n"
  | Some w ->
      Buffer.add_string buf
        (Printf.sprintf "winner: %s (score %.4f, %.2f mW @ %d iterations)\n"
           w.c_label w.c_score w.c_metrics.Metrics.power_mw result.iterations));
  Buffer.add_string buf
    (Printf.sprintf
       "evaluation: %d simulated iterations vs %d exhaustive (%.1fx savings)\n"
       result.evaluation_iterations result.exhaustive_iterations
       (if result.evaluation_iterations > 0 then
          float_of_int result.exhaustive_iterations
          /. float_of_int result.evaluation_iterations
        else 0.));
  Buffer.contents buf

let candidate_json c =
  let m = c.c_metrics in
  Mclock_lint.Json.Obj
    [
      ("config", Mclock_lint.Json.String c.c_label);
      ( "score",
        if c.c_score < infinity then Mclock_lint.Json.Float c.c_score
        else Mclock_lint.Json.Null );
      ("functional", Mclock_lint.Json.Bool m.Metrics.functional_ok);
      ("power_mw", Mclock_lint.Json.Float m.Metrics.power_mw);
      ("area", Mclock_lint.Json.Float m.Metrics.area);
      ("latency_steps", Mclock_lint.Json.Int m.Metrics.latency_steps);
      ( "energy_per_computation_pj",
        Mclock_lint.Json.Float m.Metrics.energy_per_computation_pj );
      ("memory_cells", Mclock_lint.Json.Int m.Metrics.memory_cells);
      ( "raced_at",
        match c.c_raced_at with
        | Some mid -> Mclock_lint.Json.Int mid
        | None -> Mclock_lint.Json.Null );
    ]

let rung_json r =
  Mclock_lint.Json.Obj
    [
      ("rung", Mclock_lint.Json.Int r.r_number);
      ("iterations", Mclock_lint.Json.Int r.r_iterations);
      ( "candidates",
        Mclock_lint.Json.List (List.map candidate_json r.r_candidates) );
      ( "kept",
        Mclock_lint.Json.List
          (List.map (fun l -> Mclock_lint.Json.String l) r.r_kept) );
    ]

let result_json result =
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("max_clocks", Mclock_lint.Json.Int result.max_clocks);
      ("seed", Mclock_lint.Json.Int result.seed);
      ("eta", Mclock_lint.Json.Int result.eta);
      ("min_iterations", Mclock_lint.Json.Int result.min_iterations);
      ("iterations", Mclock_lint.Json.Int result.iterations);
      ( "objective",
        Mclock_lint.Json.String (Objective.to_string result.objective) );
      ( "constraints",
        Mclock_lint.Json.List
          (List.map
             (fun c -> Mclock_lint.Json.String (Metrics.constraint_to_string c))
             result.constraints) );
      ("resume", Mclock_lint.Json.Bool result.resume);
      ("race", Mclock_lint.Json.Bool result.race);
      ("race_margin", Mclock_lint.Json.Float result.race_margin);
      ("close_threshold", Mclock_lint.Json.Float result.close_threshold);
      ( "degenerate",
        match result.degenerate with
        | Some msg -> Mclock_lint.Json.String msg
        | None -> Mclock_lint.Json.Null );
      ("enumerated", Mclock_lint.Json.Int result.enumerated);
      ("pruned", Mclock_lint.Json.Int result.pruned);
      ("rungs", Mclock_lint.Json.List (List.map rung_json result.rungs));
      ( "winner",
        match result.winner with
        | None -> Mclock_lint.Json.Null
        | Some w -> candidate_json w );
      ( "evaluation_iterations",
        Mclock_lint.Json.Int result.evaluation_iterations );
      ( "exhaustive_iterations",
        Mclock_lint.Json.Int result.exhaustive_iterations );
    ]

let stats_json result =
  let s = result.stats in
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("cache_hits", Mclock_lint.Json.Int s.cache_hits);
      ("simulated", Mclock_lint.Json.Int s.simulated);
      ("simulated_iterations", Mclock_lint.Json.Int s.simulated_iterations);
      ("store_failures", Mclock_lint.Json.Int s.store_failures);
      ("resumed", Mclock_lint.Json.Int s.resumed);
      ("resumed_iterations", Mclock_lint.Json.Int s.resumed_iterations);
      ("checkpoints_written", Mclock_lint.Json.Int s.checkpoints_written);
      ("raced_out", Mclock_lint.Json.Int s.raced_out);
    ]
