(** One point of the design-space exploration grid: how to schedule and
    allocate a behaviour, and whether to trade the result through
    voltage-scaled duplication. *)

type scheduler = Asap | Alap | Force_directed | List_scheduler

type alloc = Conventional | Gated | Integrated | Split

type voltage =
  | Nominal  (** full supply, datapath as synthesized *)
  | Scaled
      (** the duplication alternative (paper [12]): [clocks] parallel
          copies of the single-clock datapath at [f/clocks] and the
          correspondingly reduced supply *)

type t = {
  clocks : int;
      (** clock count for [Integrated]/[Split]; copy count for a
          [Scaled] conventional design; 1 otherwise *)
  scheduler : scheduler;
  alloc : alloc;
  transfers : bool;
      (** cross-partition transfer insertion ([Integrated] only; the
          [false] arm is the MC006 ablation and needs [clocks >= 2]) *)
  voltage : voltage;
}

val is_valid : max_clocks:int -> t -> bool
(** The grid contains no redundant or meaningless points: single-clock
    allocators pin [clocks] to 1 unless duplicated, [Split] starts at
    2 clocks, only conventional styles can be voltage-scaled, and the
    no-transfers ablation exists only where transfers could fire. *)

val enumerate : max_clocks:int -> t list
(** Every valid configuration, in a canonical deterministic order
    (scheduler-major, then allocator, clock count, transfers,
    voltage).  Raises [Invalid_argument] if [max_clocks < 1]. *)

val schedulers : scheduler list
val scheduler_name : scheduler -> string
val alloc_name : alloc -> string

val label : t -> string
(** Compact cell label, e.g. ["asap/mc3"], ["fds/conv+dup2"],
    ["alap/mc2-noxfer"]. *)

val compare : t -> t -> int

val schedule :
  t ->
  constraints:Mclock_sched.List_sched.constraints ->
  Mclock_dfg.Graph.t ->
  Mclock_sched.Schedule.t
(** Schedule the behaviour with the configuration's scheduler
    ([constraints] feed the list scheduler; the others ignore it). *)

val flow_method : t -> Mclock_core.Flow.method_
(** The synthesis entry point for the configuration's allocator (the
    [Scaled] transform is applied after evaluation, not here). *)

val synthesize :
  ?tech:Mclock_tech.Library.t ->
  ?width:int ->
  t ->
  name:string ->
  Mclock_sched.Schedule.t ->
  Mclock_rtl.Design.t
(** Synthesize (and lint) the configuration's design, including the
    transfer-ablation arm that {!Mclock_core.Flow.synthesize} does not
    expose. *)

val fingerprint : Mclock_util.Fingerprint.t -> t -> unit
