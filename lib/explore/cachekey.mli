(** Content-addressed cache keys for evaluation cells.

    The digest covers everything the evaluated metrics depend on — the
    behaviour's structure, the configuration, the technology model,
    the stimulus specification and the seed — and nothing they do not
    (behaviour name, file path, enumeration order).  Editing any input
    changes the key; re-running an identical cell reproduces it. *)

val format_version : int
(** Bumped whenever the evaluation semantics change (energy model,
    simulator, metric definitions), so stale caches from older builds
    can never serve an entry. *)

type spec = {
  graph : Mclock_dfg.Graph.t;
  width : int;
  constraints : Mclock_sched.List_sched.constraints;
      (** feed the list scheduler, hence the schedule, hence the design *)
  config : Config.t;
  tech : Mclock_tech.Library.t;
  seed : int;
  iterations : int;
}

val digest : spec -> string
(** 32 hex characters (MD5 of the canonical serialization). *)
