(* The exploration pipeline.

   Phase order matters for both cost and determinism:

   1. enumerate   — Config.enumerate, canonical order (serial);
   2. synthesize  — schedule (one per scheduler, memoized) + allocate
                    every cell; cheap, runs on the submitting domain;
   3. prune       — constraint check on exact pre-simulation bounds;
   4. cache       — digest + lookup on the submitting domain, so hit
                    bookkeeping never races;
   5. simulate    — only the misses, fanned out on the pool; results
                    reduced in submission order (jobs-invariant);
   6. store       — write-back of fresh results (failures tolerated);
   7. frontier    — Pareto over evaluated, functionally-OK cells.

   The frontier can therefore never depend on the cache state: a hit
   returns bit-identical metrics to the simulation that populated it
   (hex-float round-trip), and pruning uses bounds that equal what
   evaluation would report. *)

type status =
  | Pruned of Metrics.constraint_ list
  | Skipped of float
      (** estimate-first mode ranked this cell below the [top_k]
          cutoff; carries its static power estimate [mW] *)
  | Cached of Metrics.t
  | Simulated of Metrics.t

type cell = {
  config : Config.t;
  cell_label : string;
  key : string;
  bounds : Metrics.bounds;
  status : status;
}

type stats = {
  enumerated : int;
  pruned : int;
  cache_hits : int;
  cache_misses : int;
  simulated : int;
  skipped : int;  (** misses left unsimulated by the [top_k] cutoff *)
  store_failures : int;
}

type result = {
  workload : string;
  max_clocks : int;
  seed : int;
  iterations : int;
  constraints : Metrics.constraint_ list;
  cells : cell list;
  pareto : Pareto.result;
  stats : stats;
}

(* --- Prepared search spaces -------------------------------------------- *)

type prepared = {
  p_index : int;
  p_config : Config.t;
  p_label : string;
  p_design : Mclock_rtl.Design.t;
  p_bounds : Metrics.bounds;
  p_est_power_mw : float;
}

type space = {
  sp_graph : Mclock_dfg.Graph.t;
  sp_width : int;
  sp_tech : Mclock_tech.Library.t;
  sp_name : string;
  sp_sched_constraints : Mclock_sched.List_sched.constraints;
  sp_cells : prepared list;
}

let prepare ?(tech = Mclock_tech.Cmos08.t) ?(width = 4) ?(max_clocks = 4)
    ~iterations ~name ~sched_constraints graph =
  Mclock_obs.Obs.with_span ~cat:"explore" ~attrs:[ ("workload", name) ]
    ~name:"explore.prepare"
  @@ fun () ->
  let configs = Config.enumerate ~max_clocks in
  (* One schedule per scheduler, shared by every cell using it. *)
  let schedules = List.map (fun s -> (s, ref None)) Config.schedulers in
  let schedule_for config =
    let slot = List.assoc config.Config.scheduler schedules in
    match !slot with
    | Some s -> s
    | None ->
        let s = Config.schedule config ~constraints:sched_constraints graph in
        slot := Some s;
        s
  in
  (* Synthesize + bound + estimate every cell (serial, cheap). *)
  let cells =
    List.mapi
      (fun i config ->
        let schedule = schedule_for config in
        let design =
          Config.synthesize ~tech ~width config
            ~name:(Printf.sprintf "x_%s" name)
            schedule
        in
        let bounds, est_power, _ =
          Metrics.bounds_and_estimate_of_design ~config ~iterations tech design
        in
        {
          p_index = i;
          p_config = config;
          p_label = Config.label config;
          p_design = design;
          p_bounds = bounds;
          p_est_power_mw = est_power;
        })
      configs
  in
  {
    sp_graph = graph;
    sp_width = width;
    sp_tech = tech;
    sp_name = name;
    sp_sched_constraints = sched_constraints;
    sp_cells = cells;
  }

let cell_key space ~seed ~iterations p =
  Cachekey.digest
    {
      Cachekey.graph = space.sp_graph;
      width = space.sp_width;
      constraints = space.sp_sched_constraints;
      config = p.p_config;
      tech = space.sp_tech;
      seed;
      iterations;
    }

(* --- Partial-fidelity evaluation --------------------------------------- *)

type rung_stats = {
  rs_cache_hits : int;
  rs_simulated : int;
  rs_resumed : int;
  rs_resumed_iterations : int;
  rs_fresh_iterations : int;
  rs_checkpoints_written : int;
}

(* Evaluate [cells] at a fidelity rung.  [resume_from] is the ladder
   of lower iteration counts whose checkpoint sidecars are worth
   trying (highest first wins); [checkpoints] stores a sidecar at this
   rung for each fresh simulation.  Resuming is byte-identical to a
   fresh run (the kernel contract), so the returned metrics — and
   everything downstream, frontier and winner included — are
   invariant to the checkpoint cache's state.  All cache traffic
   stays on the submitting domain; workers only simulate and
   encode/decode blobs. *)
let evaluate_at ~pool ?cache ?(resume_from = []) ?(checkpoints = false) ~seed
    ~iterations space cells =
  let ladder =
    List.sort_uniq (fun a b -> compare b a) resume_from
    |> List.filter (fun k -> k > 0 && k < iterations)
  in
  let looked =
    List.map
      (fun p ->
        let key = cell_key space ~seed ~iterations p in
        let hit =
          match cache with
          | None -> None
          | Some store -> Store.find store ~key
        in
        let blob =
          match (hit, cache) with
          | Some _, _ | _, None -> None
          | None, Some store ->
              List.find_map
                (fun k ->
                  let k_key = cell_key space ~seed ~iterations:k p in
                  Store.find_checkpoint store ~key:k_key)
                ladder
        in
        (p, key, hit, blob))
      cells
  in
  let misses =
    List.filter_map
      (function p, key, None, blob -> Some (p, key, blob) | _ -> None)
      looked
  in
  let misses_arr = Array.of_list misses in
  let want_ckpt = checkpoints && cache <> None in
  let fresh =
    Mclock_exec.Pool.map pool
      ~label:(fun i ->
        let p, _, _ = misses_arr.(i) in
        Printf.sprintf "%s/%s@%d" space.sp_name p.p_label iterations)
      (fun _ (p, key, blob) ->
        Mclock_obs.Obs.with_span ~cat:"explore" ~name:"explore.evaluate"
          ~attrs:
            [
              ("config", p.p_label);
              ("key", key);
              ("iterations", string_of_int iterations);
            ]
        @@ fun () ->
        let evaluate ?resume_from () =
          Mclock_power.Report.evaluate_resumable ~seed ~iterations ?resume_from
            ~label:p.p_label space.sp_tech p.p_design space.sp_graph
        in
        (* A checkpoint that fails to decode, or decodes but does not
           fit this design/fidelity, degrades to a fresh run — the
           cache can make evaluation faster, never wrong. *)
        let report, ck, resumed_from =
          match Option.map Mclock_sim.Compiled.Checkpoint.decode blob with
          | Some (Ok ck) -> (
              match evaluate ~resume_from:ck () with
              | report, ck' ->
                  ( report,
                    ck',
                    Some (Mclock_sim.Compiled.checkpoint_iterations ck) )
              | exception Invalid_argument _ ->
                  let report, ck' = evaluate () in
                  (report, ck', None))
          | Some (Error _) | None ->
              let report, ck' = evaluate () in
              (report, ck', None)
        in
        let metrics =
          Metrics.of_report ~config:p.p_config ~tech:space.sp_tech
            ~latency_steps:(Mclock_rtl.Design.num_steps p.p_design)
            report
        in
        let encoded =
          if want_ckpt then Some (Mclock_sim.Compiled.Checkpoint.encode ck)
          else None
        in
        (metrics, encoded, resumed_from))
      misses
  in
  (* Write-back on the submitting domain. *)
  let checkpoints_written = ref 0 in
  (match cache with
  | None -> ()
  | Some store ->
      List.iter2
        (fun (_, key, _) (m, encoded, _) ->
          Store.store store ~key m;
          match encoded with
          | Some blob ->
              Store.store_checkpoint store ~key blob;
              incr checkpoints_written
          | None -> ())
        misses fresh);
  (* Stitch hits and fresh results back into input order. *)
  let fresh_q = ref fresh in
  let metrics =
    List.map
      (fun (_, _, hit, _) ->
        match hit with
        | Some m -> m
        | None -> (
            match !fresh_q with
            | (m, _, _) :: rest ->
                fresh_q := rest;
                m
            | [] -> assert false))
      looked
  in
  let resumed, resumed_iterations =
    List.fold_left
      (fun (n, iters) (_, _, resumed_from) ->
        match resumed_from with
        | Some k -> (n + 1, iters + k)
        | None -> (n, iters))
      (0, 0) fresh
  in
  let n_misses = List.length misses in
  ( metrics,
    {
      rs_cache_hits = List.length cells - n_misses;
      rs_simulated = n_misses;
      rs_resumed = resumed;
      rs_resumed_iterations = resumed_iterations;
      rs_fresh_iterations = (n_misses * iterations) - resumed_iterations;
      rs_checkpoints_written = !checkpoints_written;
    } )

let explore ~pool ?cache ?(constraints = []) ?(seed = 42) ?(iterations = 400)
    ?(max_clocks = 4) ?tech ?width ?(estimate_first = false) ?top_k ~name
    ~sched_constraints graph =
  (match top_k with
  | Some k when k < 1 -> invalid_arg "Engine.explore: top_k >= 1"
  | _ -> ());
  Mclock_obs.Obs.with_span ~cat:"explore" ~name:"explore"
    ~attrs:
      [
        ("workload", name);
        ("max_clocks", string_of_int max_clocks);
        ("iterations", string_of_int iterations);
      ]
  @@ fun () ->
  let estimate_first = estimate_first || top_k <> None in
  (* Counters accumulate across runs sharing a store (e.g. a cold/warm
     pair); snapshot so this result reports only its own failures. *)
  let store_failures_before =
    match cache with
    | None -> 0
    | Some store -> (Store.stats store).Store.store_failures
  in
  let space =
    prepare ?tech ?width ~max_clocks ~iterations ~name ~sched_constraints graph
  in
  let tech = space.sp_tech in
  (* Prune, then split survivors into cache hits and misses. *)
  let cells_pre =
    List.map
      (fun p ->
        let key = cell_key space ~seed ~iterations p in
        match Metrics.violated ~constraints p.p_bounds with
        | _ :: _ as v -> (p, key, `Pruned v)
        | [] -> (
            match cache with
            | None -> (p, key, `Miss)
            | Some store -> (
                match Store.find store ~key with
                | Some m -> (p, key, `Hit m)
                | None -> (p, key, `Miss))))
      space.sp_cells
  in
  let misses =
    List.filter_map
      (function p, key, `Miss -> Some (p, key) | _ -> None)
      cells_pre
  in
  (* Estimate-first: rank the misses by static expected power
     (ascending, enumeration order breaking ties) so the most
     promising cells simulate first and a [top_k] cutoff is
     well-defined.  Everything here is deterministic, so the
     simulation set — and with it the frontier — is jobs- and
     cache-state-invariant. *)
  let indexed_misses =
    if not estimate_first then
      List.mapi (fun i m -> (i, None, m)) misses
    else
      List.mapi
        (fun i ((p, _key) as m) -> (i, Some p.p_est_power_mw, m))
        misses
      |> List.stable_sort (fun (i, ea, _) (j, eb, _) ->
             match Option.compare Float.compare ea eb with
             | 0 -> Stdlib.compare i j
             | c -> c)
  in
  let selected, cut =
    match top_k with
    | None -> (indexed_misses, [])
    | Some k ->
        List.partition
          (fun (rank, _) -> rank < k)
          (List.mapi (fun rank m -> (rank, m)) indexed_misses)
        |> fun (a, b) -> (List.map snd a, List.map snd b)
  in
  (* Fan the selected misses out; submission order is the (ranked)
     selection order, so the reduced list is jobs-invariant. *)
  let selected_arr = Array.of_list selected in
  let fresh =
    Mclock_exec.Pool.map pool
      ~label:(fun i ->
        let _, _, (p, _) = selected_arr.(i) in
        Printf.sprintf "%s/%s" name p.p_label)
      (fun _ (_, _, (p, key)) ->
        Mclock_obs.Obs.with_span ~cat:"explore" ~name:"explore.simulate"
          ~attrs:
            [
              ("config", p.p_label);
              ("key", key);
              ("iterations", string_of_int iterations);
            ]
        @@ fun () ->
        let report =
          Mclock_power.Report.evaluate ~seed ~iterations ~kernel:`Compiled
            ~label:p.p_label tech p.p_design graph
        in
        Metrics.of_report ~config:p.p_config ~tech
          ~latency_steps:(Mclock_rtl.Design.num_steps p.p_design)
          report)
      selected
  in
  (* Write-back on the submitting domain. *)
  (match cache with
  | None -> ()
  | Some store ->
      List.iter2
        (fun (_, _, (_, key)) metrics -> Store.store store ~key metrics)
        selected fresh);
  (* Stitch results back into enumeration order. *)
  let miss_status = Array.make (List.length misses) None in
  List.iter2
    (fun (i, _, _) m -> miss_status.(i) <- Some (Simulated m))
    selected fresh;
  List.iter
    (fun (i, est, _) ->
      match est with
      | Some e -> miss_status.(i) <- Some (Skipped e)
      | None -> assert false (* a cutoff implies estimate-first *))
    cut;
  let miss_counter = ref 0 in
  let next_miss () =
    let i = !miss_counter in
    incr miss_counter;
    match miss_status.(i) with Some st -> st | None -> assert false
  in
  let cells =
    List.map
      (fun (p, key, tag) ->
        let status =
          match tag with
          | `Pruned v -> Pruned v
          | `Hit m -> Cached m
          | `Miss -> next_miss ()
        in
        { config = p.p_config; cell_label = p.p_label; key; bounds = p.p_bounds; status })
      cells_pre
  in
  let points =
    List.mapi (fun i c -> (i, c)) cells
    |> List.filter_map (fun (i, c) ->
           match c.status with
           | Cached m | Simulated m when m.Metrics.functional_ok ->
               Some { Pareto.index = i; label = c.cell_label; metrics = m }
           | _ -> None)
  in
  let pareto = Pareto.frontier points in
  let n_pruned =
    List.length
      (List.filter (fun c -> match c.status with Pruned _ -> true | _ -> false) cells)
  in
  let n_hits =
    List.length
      (List.filter (fun c -> match c.status with Cached _ -> true | _ -> false) cells)
  in
  let n_misses = List.length misses in
  let n_sim = List.length selected in
  let stats =
    {
      enumerated = List.length space.sp_cells;
      pruned = n_pruned;
      cache_hits = n_hits;
      cache_misses = n_misses;
      simulated = n_sim;
      skipped = n_misses - n_sim;
      store_failures =
        (match cache with
        | None -> 0
        | Some store ->
            (Store.stats store).Store.store_failures - store_failures_before);
    }
  in
  {
    workload = name;
    max_clocks;
    seed;
    iterations;
    constraints;
    cells;
    pareto;
    stats;
  }

(* --- Rendering --------------------------------------------------------- *)

let status_cells result ~index cell =
  match cell.status with
  | Pruned v ->
      ( "pruned",
        Printf.sprintf "violates %s"
          (String.concat ","
             (List.map Metrics.constraint_to_string v)) )
  | Skipped est -> ("skipped", Printf.sprintf "est %.2f mW, below top-k" est)
  | Cached m | Simulated m ->
      let provenance =
        match cell.status with Cached _ -> "cache" | _ -> "sim"
      in
      if not m.Metrics.functional_ok then (provenance, "FUNCTIONAL FAIL")
      else
        let verdict =
          List.find_opt
            (fun (p, _) -> p.Pareto.index = index)
            result.pareto.Pareto.verdicts
        in
        (match verdict with
        | Some (_, Pareto.On_frontier) -> (provenance, "frontier")
        | Some (_, Pareto.Dominated_by q) ->
            (provenance, Printf.sprintf "dominated by %s" q.Pareto.label)
        | None -> (provenance, "-"))

let render_text result =
  let buf = Buffer.create 4096 in
  let table =
    Mclock_util.Table.create
      ~title:
        (Printf.sprintf "design-space exploration: %s (max %d clocks)"
           result.workload result.max_clocks)
      ~header:
        [ "config"; "power [mW]"; "area [l^2]"; "lat"; "mem"; "from"; "verdict" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Left; Left ]
      ()
  in
  List.iteri
    (fun index cell ->
      let provenance, verdict = status_cells result ~index cell in
      let power, area, lat, mem =
        match cell.status with
        | Pruned _ ->
            ( "-",
              Printf.sprintf "%.0f" cell.bounds.Metrics.b_area,
              string_of_int cell.bounds.Metrics.b_latency_steps,
              string_of_int cell.bounds.Metrics.b_memory_cells )
        | Skipped est ->
            ( Printf.sprintf "~%.2f" est,
              Printf.sprintf "%.0f" cell.bounds.Metrics.b_area,
              string_of_int cell.bounds.Metrics.b_latency_steps,
              string_of_int cell.bounds.Metrics.b_memory_cells )
        | Cached m | Simulated m ->
            ( Printf.sprintf "%.2f" m.Metrics.power_mw,
              Printf.sprintf "%.0f" m.Metrics.area,
              string_of_int m.Metrics.latency_steps,
              string_of_int m.Metrics.memory_cells )
      in
      Mclock_util.Table.add_row table
        [ cell.cell_label; power; area; lat; mem; provenance; verdict ])
    result.cells;
  Buffer.add_string buf (Mclock_util.Table.render table);
  Buffer.add_string buf "\n";
  let s = result.stats in
  Buffer.add_string buf
    (Printf.sprintf
       "cells: %d enumerated, %d pruned, %d cache hits, %d simulated%s%s\n"
       s.enumerated s.pruned s.cache_hits s.simulated
       (if s.skipped > 0 then
          Printf.sprintf ", %d skipped (top-k)" s.skipped
        else "")
       (if s.store_failures > 0 then
          Printf.sprintf " (%d cache store failures)" s.store_failures
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "frontier (%d points): %s\n"
       (List.length result.pareto.Pareto.frontier)
       (String.concat ", "
          (List.map
             (fun p -> p.Pareto.label)
             result.pareto.Pareto.frontier)));
  Buffer.contents buf

let point_json (p : Pareto.point) =
  let m = p.Pareto.metrics in
  Mclock_lint.Json.Obj
    [
      ("config", Mclock_lint.Json.String p.Pareto.label);
      ("power_mw", Mclock_lint.Json.Float m.Metrics.power_mw);
      ("area", Mclock_lint.Json.Float m.Metrics.area);
      ("latency_steps", Mclock_lint.Json.Int m.Metrics.latency_steps);
      ( "energy_per_computation_pj",
        Mclock_lint.Json.Float m.Metrics.energy_per_computation_pj );
      ("memory_cells", Mclock_lint.Json.Int m.Metrics.memory_cells);
      ("mux_inputs", Mclock_lint.Json.Int m.Metrics.mux_inputs);
    ]

let frontier_json result =
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("max_clocks", Mclock_lint.Json.Int result.max_clocks);
      ("seed", Mclock_lint.Json.Int result.seed);
      ("iterations", Mclock_lint.Json.Int result.iterations);
      ( "constraints",
        Mclock_lint.Json.List
          (List.map
             (fun c -> Mclock_lint.Json.String (Metrics.constraint_to_string c))
             result.constraints) );
      ( "frontier",
        Mclock_lint.Json.List
          (List.map point_json result.pareto.Pareto.frontier) );
      ( "dominated",
        Mclock_lint.Json.List
          (List.filter_map
             (function
               | _, Pareto.On_frontier -> None
               | p, Pareto.Dominated_by q ->
                   Some
                     (Mclock_lint.Json.Obj
                        [
                          ("config", Mclock_lint.Json.String p.Pareto.label);
                          ( "dominated_by",
                            Mclock_lint.Json.String q.Pareto.label );
                        ]))
             result.pareto.Pareto.verdicts) );
    ]

(* --- Objective-based best pick ----------------------------------------- *)

(* Cells arrive in enumeration order, so Objective.best's first-wins
   tie-break is canonical config order.  The winner index is resolved
   against an array — List.nth would rescan the evaluated list. *)
let best ~objective result =
  let evaluated =
    List.filter_map
      (fun c ->
        match c.status with
        | (Cached m | Simulated m) when m.Metrics.functional_ok -> Some (c, m)
        | _ -> None)
      result.cells
  in
  let by_index = Array.of_list evaluated in
  match Objective.best objective (List.map snd evaluated) with
  | None -> None
  | Some (i, score) ->
      let cell, _ = by_index.(i) in
      Some (cell, score)

let stats_json result =
  let s = result.stats in
  Mclock_lint.Json.Obj
    [
      ("workload", Mclock_lint.Json.String result.workload);
      ("enumerated", Mclock_lint.Json.Int s.enumerated);
      ("pruned", Mclock_lint.Json.Int s.pruned);
      ("cache_hits", Mclock_lint.Json.Int s.cache_hits);
      ("cache_misses", Mclock_lint.Json.Int s.cache_misses);
      ("simulated", Mclock_lint.Json.Int s.simulated);
      ("skipped", Mclock_lint.Json.Int s.skipped);
      ("store_failures", Mclock_lint.Json.Int s.store_failures);
    ]
