(** Pareto-frontier extraction over (power, area, latency), minimized
    jointly, with dominated-point attribution. *)

type point = { index : int; label : string; metrics : Metrics.t }
(** [index] is the point's position in the engine's enumeration order
    — the tie-breaking and attribution anchor. *)

type verdict =
  | On_frontier
  | Dominated_by of point
      (** the first (lowest-index) frontier point that dominates it *)

type result = {
  frontier : point list;  (** in enumeration order *)
  verdicts : (point * verdict) list;  (** every input point, in order *)
}

val dominates : Metrics.t -> Metrics.t -> bool
(** [dominates a b]: [a] is no worse than [b] on power, area and
    latency, and strictly better on at least one. *)

val frontier : point list -> result
(** Deterministic: depends only on the multiset of metrics and the
    input order.  A point with metrics identical to a frontier point's
    is itself on the frontier (mutual non-domination). *)
