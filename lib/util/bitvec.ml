(* Fixed-width bit vectors.

   The simulator carries datapath values as [t]; widths up to 62 bits are
   supported (values live in the int payload).  Arithmetic wraps modulo
   2^width, matching the behaviour of an unsigned hardware datapath.  The
   Hamming-distance function is the basis of transition counting for
   power estimation. *)

type t = { width : int; value : int }

let max_width = 62

let check_width width =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bitvec: width %d out of [1, %d]" width max_width)

let mask width = (1 lsl width) - 1

let create ~width value =
  check_width width;
  { width; value = value land mask width }

let zero ~width = create ~width 0

let ones ~width = create ~width (mask width)

let width t = t.width

let to_int t = t.value

let check_same a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bitvec: width mismatch (%d vs %d)" a.width b.width)

let equal a b = a.width = b.width && a.value = b.value

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Int.compare a.value b.value

(* Constant-time SWAR popcount.  Operands are xor-differences of
   [max_width]-bit (62-bit) values, so they are non-negative and fit in
   OCaml's 63-bit native int.  The pairwise mask is the 64-bit
   0x5555... constant truncated to 62 bits (the full constant exceeds
   [max_int]); the remaining masks fit as-is.  The final byte-summing
   multiply wraps modulo 2^63, which only discards partial sums above
   bit 62 — the total (at bits 56..62, at most 62) is unaffected. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let hamming a b =
  check_same a b;
  popcount (a.value lxor b.value)

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.bit: index out of range";
  (t.value lsr i) land 1 = 1

let lift2 f a b =
  check_same a b;
  { width = a.width; value = f a.value b.value land mask a.width }

let add = lift2 ( + )
let sub = lift2 ( - )
let mul = lift2 ( * )

let div a b =
  check_same a b;
  (* Hardware dividers commonly saturate or wrap on divide-by-zero; we
     define x/0 = all-ones, matching a typical combinational divider. *)
  if b.value = 0 then ones ~width:a.width
  else { width = a.width; value = a.value / b.value }

let logand = lift2 ( land )
let logor = lift2 ( lor )
let logxor = lift2 ( lxor )

let lognot t = { t with value = lnot t.value land mask t.width }

let shift_left t n =
  if n < 0 then invalid_arg "Bitvec.shift_left";
  { t with value = (t.value lsl n) land mask t.width }

let shift_right t n =
  if n < 0 then invalid_arg "Bitvec.shift_right";
  { t with value = t.value lsr n }

let gt a b =
  check_same a b;
  { width = a.width; value = (if a.value > b.value then 1 else 0) }

let lt a b =
  check_same a b;
  { width = a.width; value = (if a.value < b.value then 1 else 0) }

let eq a b =
  check_same a b;
  { width = a.width; value = (if a.value = b.value then 1 else 0) }

let random rng ~width =
  check_width width;
  create ~width (Rng.bits rng)

let pp ppf t = Fmt.pf ppf "%d'd%d" t.width t.value

let to_binary_string t =
  String.init t.width (fun i ->
      if bit t (t.width - 1 - i) then '1' else '0')
