(* Canonical byte-stream accumulator finalized with stdlib MD5.

   Every primitive writes a one-byte type tag before its payload and
   variable-length payloads are length-prefixed, so distinct value
   shapes can never serialize to the same stream (e.g. ["ab"; "c"] vs
   ["a"; "bc"], or an int 0 vs an empty list). *)

type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 256 }

let tag t c = Buffer.add_char t.buf c

let raw_int64 t v = Buffer.add_int64_le t.buf v

let int t v =
  tag t 'i';
  raw_int64 t (Int64.of_int v)

let string t s =
  tag t 's';
  raw_int64 t (Int64.of_int (String.length s));
  Buffer.add_string t.buf s

let bool t b =
  tag t 'b';
  Buffer.add_char t.buf (if b then '\001' else '\000')

let float t f =
  tag t 'f';
  raw_int64 t (Int64.bits_of_float f)

let list t elt items =
  tag t 'l';
  raw_int64 t (Int64.of_int (List.length items));
  List.iter (elt t) items

let option t elt = function
  | None -> tag t 'n'
  | Some v ->
      tag t 'o';
      elt t v

let hex t = Digest.to_hex (Digest.string (Buffer.contents t.buf))
