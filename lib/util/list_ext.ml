(* Small list helpers shared across the code base. *)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as items -> if n <= 0 then items else drop (n - 1) rest

let sum = List.fold_left ( + ) 0

let sum_float = List.fold_left ( +. ) 0.

let sum_by f items = List.fold_left (fun acc x -> acc + f x) 0 items

let sum_by_float f items = List.fold_left (fun acc x -> acc +. f x) 0. items

let max_by f = function
  | [] -> invalid_arg "List_ext.max_by: empty list"
  | x :: rest ->
      List.fold_left (fun best y -> if f y > f best then y else best) x rest

let min_by f = function
  | [] -> invalid_arg "List_ext.min_by: empty list"
  | x :: rest ->
      List.fold_left (fun best y -> if f y < f best then y else best) x rest

let find_by ~what ~label_of label items =
  match List.find_opt (fun x -> String.equal (label_of x) label) items with
  | Some x -> x
  | None ->
      invalid_arg
        (Printf.sprintf "%s: no item labelled %S among [%s]" what label
           (String.concat "; " (List.map label_of items)))

let zip_strict ~what a b =
  let la = List.length a and lb = List.length b in
  if la <> lb then
    invalid_arg
      (Printf.sprintf "%s: length mismatch (%d vs %d items)" what la lb);
  List.combine a b

let dedup ~compare items =
  let sorted = List.sort compare items in
  let rec go = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) -> if compare x y = 0 then go rest else x :: go rest
  in
  go sorted

let group_by ~key ~compare_key items =
  let tagged = List.map (fun x -> (key x, x)) items in
  let sorted = List.sort (fun (a, _) (b, _) -> compare_key a b) tagged in
  let rec go = function
    | [] -> []
    | (k, x) :: rest ->
        let same, others =
          List.partition (fun (k', _) -> compare_key k k' = 0) rest
        in
        (k, x :: List.map snd same) :: go others
  in
  go sorted

let range lo hi =
  let rec go acc i = if i < lo then acc else go (i :: acc) (i - 1) in
  go [] hi

let init_matrix rows cols f =
  List.map (fun r -> List.map (fun c -> f r c) (range 0 (cols - 1))) (range 0 (rows - 1))

let assoc_update ~key ~default f assoc =
  let rec go = function
    | [] -> [ (key, f default) ]
    | (k, v) :: rest -> if k = key then (k, f v) :: rest else (k, v) :: go rest
  in
  go assoc
