(** Deterministic content fingerprints.

    An accumulator over a canonical, type-tagged, length-prefixed byte
    encoding, finalized to an MD5 hex digest.  Two values fingerprint
    equal iff they feed identical byte streams, so the digest is stable
    across runs, processes and machines — the property the persistent
    exploration cache keys rely on.  (This is a content address for a
    trusted local cache, not a cryptographic commitment.) *)

type t

val create : unit -> t

val string : t -> string -> unit
(** Length-prefixed, so [string a; string b] never collides with a
    different split of the same characters. *)

val int : t -> int -> unit
val bool : t -> bool -> unit

val float : t -> float -> unit
(** Feeds the IEEE-754 bit pattern ([Int64.bits_of_float]), so the
    fingerprint distinguishes every distinct float (including [-0.]
    from [0.]) and never depends on decimal formatting. *)

val list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Length then elements, each through [elt]. *)

val option : t -> (t -> 'a -> unit) -> 'a option -> unit

val hex : t -> string
(** MD5 of everything fed so far, as 32 lowercase hex characters.  The
    accumulator stays usable; feeding more data gives the digest of the
    longer stream. *)
