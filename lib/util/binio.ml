(* Tagged binary serialization.

   One byte of type tag per value keeps decoding self-checking: a
   reader that drifts out of sync (version skew, truncation that
   survived the outer digest, a buggy caller) fails loudly on the next
   tag instead of silently misinterpreting bytes.  All multi-byte
   quantities are little-endian 64-bit words via [Bytes.set_int64_le],
   so ints and floats round-trip bit-exactly on every platform OCaml
   supports. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* Type tags. Arrays length-prefix once and pack elements untagged. *)
let tag_bool = 'b'
let tag_int = 'i'
let tag_i64 = 'j'
let tag_float = 'f'
let tag_string = 's'
let tag_int_array = 'I'
let tag_bool_array = 'B'
let tag_float_array = 'F'

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let raw_i64 b v = Buffer.add_int64_le b v
  let raw_int b v = raw_i64 b (Int64.of_int v)

  let bool b v =
    Buffer.add_char b tag_bool;
    Buffer.add_char b (if v then '\001' else '\000')

  let int b v =
    Buffer.add_char b tag_int;
    raw_int b v

  let i64 b v =
    Buffer.add_char b tag_i64;
    raw_i64 b v

  let float b v =
    Buffer.add_char b tag_float;
    raw_i64 b (Int64.bits_of_float v)

  let string b s =
    Buffer.add_char b tag_string;
    raw_int b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    Buffer.add_char b tag_int_array;
    raw_int b (Array.length a);
    Array.iter (raw_int b) a

  let bool_array b a =
    Buffer.add_char b tag_bool_array;
    raw_int b (Array.length a);
    Array.iter (fun v -> Buffer.add_char b (if v then '\001' else '\000')) a

  let float_array b a =
    Buffer.add_char b tag_float_array;
    raw_int b (Array.length a);
    Array.iter (fun v -> raw_i64 b (Int64.bits_of_float v)) a

  let contents = Buffer.contents
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need r n =
    if r.pos + n > String.length r.data then
      corrupt "Binio: truncated stream (need %d bytes at offset %d of %d)" n
        r.pos
        (String.length r.data)

  let raw_i64 r =
    need r 8;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let raw_int r =
    let v = raw_i64 r in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then corrupt "Binio: int out of range";
    i

  let tag r expected =
    need r 1;
    let c = r.data.[r.pos] in
    r.pos <- r.pos + 1;
    if c <> expected then
      corrupt "Binio: expected tag %C, found %C at offset %d" expected c
        (r.pos - 1)

  let bool r =
    tag r tag_bool;
    need r 1;
    let c = r.data.[r.pos] in
    r.pos <- r.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | c -> corrupt "Binio: bad bool byte %C" c

  let int r =
    tag r tag_int;
    raw_int r

  let i64 r =
    tag r tag_i64;
    raw_i64 r

  let float r =
    tag r tag_float;
    Int64.float_of_bits (raw_i64 r)

  let len r =
    let n = raw_int r in
    if n < 0 then corrupt "Binio: negative length %d" n;
    n

  let string r =
    tag r tag_string;
    let n = len r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  (* [Array.init]'s evaluation order is unspecified, so element reads
     (which advance the cursor) go through an explicit ascending loop. *)
  let int_array r =
    tag r tag_int_array;
    let n = len r in
    need r (8 * n);
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- raw_int r
    done;
    a

  let bool_array r =
    tag r tag_bool_array;
    let n = len r in
    need r n;
    let a = Array.make n false in
    for i = 0 to n - 1 do
      (a.(i) <-
         (match r.data.[r.pos] with
         | '\000' -> false
         | '\001' -> true
         | c -> corrupt "Binio: bad bool byte %C" c));
      r.pos <- r.pos + 1
    done;
    a

  let float_array r =
    tag r tag_float_array;
    let n = len r in
    need r (8 * n);
    let a = Array.make n 0. in
    for i = 0 to n - 1 do
      a.(i) <- Int64.float_of_bits (raw_i64 r)
    done;
    a

  let expect_end r =
    if r.pos <> String.length r.data then
      corrupt "Binio: %d trailing bytes" (String.length r.data - r.pos)
end

(* [Digest] is MD5 — not cryptographic, but the threat model is bit
   rot and truncation, the same bar the JSON store's key check sets. *)
let seal ~magic payload = magic ^ Digest.string payload ^ payload

let unseal ~magic blob =
  let ml = String.length magic in
  if String.length blob < ml + 16 then Error "sealed blob too short"
  else if not (String.equal (String.sub blob 0 ml) magic) then
    Error "bad magic"
  else
    let digest = String.sub blob ml 16 in
    let payload = String.sub blob (ml + 16) (String.length blob - ml - 16) in
    if String.equal digest (Digest.string payload) then Ok payload
    else Error "digest mismatch"
