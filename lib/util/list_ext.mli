(** List helpers shared across the code base. *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val sum : int list -> int
val sum_float : float list -> float
val sum_by : ('a -> int) -> 'a list -> int
val sum_by_float : ('a -> float) -> 'a list -> float

val max_by : ('a -> 'b) -> 'a list -> 'a
(** Element maximising [f]; raises [Invalid_argument] on the empty list. *)

val min_by : ('a -> 'b) -> 'a list -> 'a

val find_by : what:string -> label_of:('a -> string) -> string -> 'a list -> 'a
(** [find_by ~what ~label_of label items] is the first item whose
    [label_of] equals [label]; raises [Invalid_argument] naming [what],
    the missing label and every candidate label otherwise.  Use it to
    pair rows by name instead of by position, so a reordered list fails
    loudly instead of silently mispairing. *)

val zip_strict : what:string -> 'a list -> 'b list -> ('a * 'b) list
(** [List.combine] that raises [Invalid_argument] naming [what] and
    both lengths on mismatch. *)

val dedup : compare:('a -> 'a -> int) -> 'a list -> 'a list
(** Sorted deduplicated copy. *)

val group_by :
  key:('a -> 'k) -> compare_key:('k -> 'k -> int) -> 'a list -> ('k * 'a list) list
(** Groups in order of first key occurrence after sorting; members keep
    their relative input order. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi] (empty when [hi < lo]). *)

val init_matrix : int -> int -> (int -> int -> 'a) -> 'a list list

val assoc_update : key:'k -> default:'v -> ('v -> 'v) -> ('k * 'v) list -> ('k * 'v) list
(** Update the binding of [key] (inserting [f default] if absent). *)
