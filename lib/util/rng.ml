(* Deterministic, splittable pseudo-random number generator.

   All stochastic parts of the tool (stimulus generation, random DFGs,
   randomized allocation tie-breaking) draw from this generator so that
   every experiment is reproducible from a single integer seed.  The core
   is SplitMix64, which has good statistical quality for simulation
   purposes and supports O(1) splitting. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* The whole generator is its 64-bit counter, so a stream can be
   suspended and resumed exactly: [of_state (state t)] continues the
   draw sequence where [t] stood.  This is what makes simulation
   checkpoints deterministic — the resumed run draws precisely the
   stimulus the uninterrupted run would have drawn. *)
let state t = t.state

let of_state s = { state = s }

(* SplitMix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let max_bits = 0x3FFFFFFFFFFFFFFF

let bits t = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL)

(* Rejection sampling: [bits] spans [0, 2^62), which a non-power-of-two
   [bound] does not divide, so a plain [mod] over-weights the low
   residues.  Draws in the final partial block are rejected instead;
   power-of-two bounds reduce to a mask (identical to the old [mod]). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else
    let rec draw () =
      let b = bits t in
      let r = b mod bound in
      if b - r > max_bits - (bound - 1) then draw () else r
    in
    draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0)

(* One [Array.of_list] instead of two list traversals
   ([List.length] + [List.nth]).  Consumes exactly one [int] draw, like
   the list-based implementation it replaced, so seeded streams are
   unchanged (regression-tested in test_util). *)
let choose t items =
  match items with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ :: _ ->
      let arr = Array.of_list items in
      arr.(int t (Array.length arr))

let shuffle t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
