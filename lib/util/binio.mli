(** Tagged binary serialization for checkpoint payloads.

    A tiny, dependency-free wire format: every value is written with a
    one-byte type tag followed by a fixed- or length-prefixed encoding
    (ints and floats as little-endian 64-bit words, so round-trips are
    bit-exact — floats are carried as their IEEE-754 image, never
    re-parsed from text).  Readers validate every tag and every length;
    any irregularity raises {!Corrupt}, which callers turn into a
    degrade-to-miss.

    {!seal} / {!unseal} wrap a payload with a magic string and an MD5
    digest so that truncated or bit-flipped files are rejected before
    any structural decoding starts. *)

exception Corrupt of string
(** Raised by every {!R} accessor on a malformed stream. *)

(** Append-only writer. *)
module W : sig
  type t

  val create : unit -> t
  val bool : t -> bool -> unit
  val int : t -> int -> unit
  val i64 : t -> int64 -> unit

  val float : t -> float -> unit
  (** Bit-exact: the IEEE-754 image is written, so NaNs and signed
      zeros survive the round-trip unchanged. *)

  val string : t -> string -> unit
  val int_array : t -> int array -> unit
  val bool_array : t -> bool array -> unit
  val float_array : t -> float array -> unit
  val contents : t -> string
end

(** Validating reader over a string produced by {!W}. *)
module R : sig
  type t

  val of_string : string -> t
  val bool : t -> bool
  val int : t -> int
  val i64 : t -> int64
  val float : t -> float
  val string : t -> string
  val int_array : t -> int array
  val bool_array : t -> bool array
  val float_array : t -> float array

  val expect_end : t -> unit
  (** Raises {!Corrupt} unless the whole stream was consumed. *)
end

val seal : magic:string -> string -> string
(** [seal ~magic payload] is [magic ^ md5 payload ^ payload]. *)

val unseal : magic:string -> string -> (string, string) result
(** Recover the payload of a sealed blob; [Error] (never an exception)
    on wrong magic, truncation, or digest mismatch. *)
