(** Fixed-width bit vectors (1–62 bits) with wrapping unsigned
    arithmetic, the value type carried on simulated datapath nets.

    Arithmetic wraps modulo [2^width]; mixed-width operations raise
    [Invalid_argument]. *)

type t

val max_width : int

val create : width:int -> int -> t
(** [create ~width v] truncates [v] to [width] bits. *)

val zero : width:int -> t
val ones : width:int -> t

val width : t -> int
val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val popcount : int -> int
(** Constant-time SWAR population count of a non-negative int with at
    most [max_width] significant bits (the payload domain of {!t}).
    Exposed so callers carrying raw bit patterns (e.g. the compiled
    simulation kernel) can count transitions without boxing. *)

val hamming : t -> t -> int
(** Number of differing bit positions — the per-net transition count used
    by the power estimator. *)

val bit : t -> int -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division; [x / 0] is all-ones (combinational-divider convention). *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val gt : t -> t -> t
(** 1 if [a > b] else 0, at the operands' width. *)

val lt : t -> t -> t
val eq : t -> t -> t

val random : Rng.t -> width:int -> t

val pp : Format.formatter -> t -> unit
val to_binary_string : t -> string
