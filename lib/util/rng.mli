(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every stochastic part of the toolchain draws from a value of type
    {!t}, so a whole experiment is reproducible from one integer seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting at [t]'s current state. *)

val state : t -> int64
(** The generator's complete internal state.  [of_state (state t)]
    resumes [t]'s stream exactly where it stood — the primitive that
    simulation checkpoints use to continue a stimulus stream. *)

val of_state : int64 -> t
(** A generator continuing from a captured {!state}. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; use to give sub-tasks their own streams. *)

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [\[0, bound)] (rejection
    sampling, no modulo bias). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation. *)
