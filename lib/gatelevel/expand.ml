(* Macro expansion: one gate network per behavioural operation.

   Each expansion takes the operand width and produces a circuit with
   2*width primary inputs (operand a in bits 0..w-1, LSB first, operand
   b in bits w..2w-1; unary operations ignore b) and exactly width
   outputs, functionally identical to Op.eval on Bitvec values:
   - Add/Sub: ripple-carry (subtraction as a + ~b + 1);
   - Mul: array multiplier (AND partial products + adder rows),
     truncated to width;
   - Div: restoring long division, x/0 = all ones;
   - Shl/Shr: 3-stage barrel shifters on the low three bits of b;
   - Gt/Lt: borrow of the appropriate subtraction; Eq: XNOR reduce;
   - And/Or/Xor/Not: bitwise. *)

open Mclock_dfg

let bits_of ~width value =
  Array.init width (fun i -> (value lsr i) land 1 = 1)

let int_of_bits bits =
  List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0
    (List.rev bits)

(* --- building blocks ------------------------------------------------- *)

let full_adder b a c cin =
  let axb = Circuit.gate b Gate.Xor2 [ a; c ] in
  let sum = Circuit.gate b Gate.Xor2 [ axb; cin ] in
  let t1 = Circuit.gate b Gate.And2 [ a; c ] in
  let t2 = Circuit.gate b Gate.And2 [ axb; cin ] in
  let cout = Circuit.gate b Gate.Or2 [ t1; t2 ] in
  (sum, cout)

(* Ripple add of equal-length bit lists (LSB first); returns (sums,
   carry out). *)
let ripple_add b xs ys cin =
  let rec go acc cin = function
    | [], [] -> (List.rev acc, cin)
    | x :: xs, y :: ys ->
        let sum, cout = full_adder b x y cin in
        go (sum :: acc) cout (xs, ys)
    | _ -> invalid_arg "ripple_add: length mismatch"
  in
  go [] cin (xs, ys)

(* a - b as a + ~b + 1; returns (difference, carry out); carry out = 1
   iff a >= b (no borrow). *)
let ripple_sub b xs ys =
  let nys = List.map (fun y -> Circuit.gate b Gate.Inv [ y ]) ys in
  ripple_add b xs nys (Circuit.one b)

let bitwise b kind xs ys = List.map2 (fun x y -> Circuit.gate b kind [ x; y ]) xs ys

let zeros b n = List.init n (fun _ -> Circuit.zero b)

(* --- the operations ---------------------------------------------------- *)

let build_add b xs ys = fst (ripple_add b xs ys (Circuit.zero b))
let build_sub b xs ys = fst (ripple_sub b xs ys)

let build_mul b ~width xs ys =
  (* Row i: partial product (a AND b_i) shifted left by i, truncated to
     [width]; accumulate with ripple adders. *)
  let ys_arr = Array.of_list ys in
  let row i =
    let pp =
      List.map (fun x -> Circuit.gate b Gate.And2 [ x; ys_arr.(i) ]) xs
    in
    let shifted = zeros b i @ pp in
    Mclock_util.List_ext.take width shifted
  in
  let acc = ref (row 0) in
  for i = 1 to width - 1 do
    let sums, _ = ripple_add b !acc (row i) (Circuit.zero b) in
    acc := sums
  done;
  !acc

let build_div b ~width xs ys =
  (* Restoring long division over w+1-bit remainders.  Quotient bit i
     (from MSB) is the carry of (r' - b); the remainder restores on
     borrow.  b = 0 forces an all-ones quotient. *)
  let ext = width + 1 in
  let ys_ext = ys @ [ Circuit.zero b ] in
  let b_nonzero =
    List.fold_left
      (fun acc y -> Circuit.gate b Gate.Or2 [ acc; y ])
      (List.hd ys) (List.tl ys)
  in
  let b_zero = Circuit.gate b Gate.Inv [ b_nonzero ] in
  let xs_arr = Array.of_list xs in
  let r = ref (zeros b ext) in
  let quotient = Array.make width (Circuit.zero b) in
  for i = width - 1 downto 0 do
    (* r' = (r << 1) | a_i, still within ext bits. *)
    let r' = xs_arr.(i) :: Mclock_util.List_ext.take (ext - 1) !r in
    let diff, carry = ripple_sub b r' ys_ext in
    quotient.(i) <- carry;
    (* restore: keep r' when r' < b (carry = 0). *)
    r :=
      List.map2
        (fun d keep -> Circuit.gate b Gate.Mux2 [ carry; keep; d ])
        diff r'
  done;
  List.map
    (fun q -> Circuit.gate b Gate.Or2 [ q; b_zero ])
    (Array.to_list quotient)

let build_shift b ~width ~left xs ys =
  (* Barrel shifter over the low three bits of the amount (matching
     Op.eval's [land 7]); amounts >= width zero out naturally. *)
  let ys_arr = Array.of_list ys in
  let stage bits k =
    let amount_bit = ys_arr.(k) in
    let dist = 1 lsl k in
    let bits_arr = Array.of_list bits in
    List.mapi
      (fun i bit ->
        let shifted_index = if left then i - dist else i + dist in
        let shifted =
          if shifted_index < 0 || shifted_index >= width then Circuit.zero b
          else bits_arr.(shifted_index)
        in
        Circuit.gate b Gate.Mux2 [ amount_bit; bit; shifted ])
      bits
  in
  let stages = min 3 (List.length ys) in
  let rec go bits k = if k >= stages then bits else go (stage bits k) (k + 1) in
  go xs 0

let flag_result b ~width flag = flag :: zeros b (width - 1)

let build_gt b ~width xs ys =
  (* a > b  <=>  borrow of (b - a)  <=>  not carry of (b + ~a + 1). *)
  let _, carry = ripple_sub b ys xs in
  flag_result b ~width (Circuit.gate b Gate.Inv [ carry ])

let build_lt b ~width xs ys =
  let _, carry = ripple_sub b xs ys in
  flag_result b ~width (Circuit.gate b Gate.Inv [ carry ])

let build_eq b ~width xs ys =
  let eqs = bitwise b Gate.Xnor2 xs ys in
  let all =
    List.fold_left
      (fun acc e -> Circuit.gate b Gate.And2 [ acc; e ])
      (List.hd eqs) (List.tl eqs)
  in
  flag_result b ~width all

let circuit ~width op =
  if width < 1 then invalid_arg "Expand.circuit: width must be >= 1";
  let b = Circuit.builder ~num_inputs:(2 * width) in
  let xs = List.init width (fun i -> Circuit.input b i) in
  let ys = List.init width (fun i -> Circuit.input b (width + i)) in
  let outs =
    match (op : Op.t) with
    | Op.Add -> build_add b xs ys
    | Op.Sub -> build_sub b xs ys
    | Op.Mul -> build_mul b ~width xs ys
    | Op.Div -> build_div b ~width xs ys
    | Op.And -> bitwise b Gate.And2 xs ys
    | Op.Or -> bitwise b Gate.Or2 xs ys
    | Op.Xor -> bitwise b Gate.Xor2 xs ys
    | Op.Not -> List.map (fun x -> Circuit.gate b Gate.Inv [ x ]) xs
    | Op.Shl -> build_shift b ~width ~left:true xs ys
    | Op.Shr -> build_shift b ~width ~left:false xs ys
    | Op.Gt -> build_gt b ~width xs ys
    | Op.Lt -> build_lt b ~width xs ys
    | Op.Eq -> build_eq b ~width xs ys
  in
  List.iter (Circuit.output b) outs;
  Circuit.finish b

(* Evaluate an expanded circuit on two Bitvec operands. *)
let eval circuit_t ~width a bv =
  let inputs =
    Array.append
      (bits_of ~width (Mclock_util.Bitvec.to_int a))
      (bits_of ~width (Mclock_util.Bitvec.to_int bv))
  in
  Mclock_util.Bitvec.create ~width
    (int_of_bits (Circuit.eval_outputs circuit_t inputs))

let input_vector ~width a bv =
  Array.append
    (bits_of ~width (Mclock_util.Bitvec.to_int a))
    (bits_of ~width (Mclock_util.Bitvec.to_int bv))
