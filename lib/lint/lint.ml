(* Top-level lint entry points: thin dispatch over Rules. *)

let design = Rules.design_rules
let datapath = Rules.datapath_rules
let graph = Rules.graph_rules
let schedule = Rules.schedule_rules
let behaviour g assignments = Rules.graph_rules g @ Rules.schedule_rules g assignments
let is_clean ds = ds = []
let has_errors ds = Diagnostic.errors ds <> []
