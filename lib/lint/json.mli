(** Minimal JSON values: enough for machine-readable diagnostics and
    their round-trip tests, with no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val to_string_pretty : t -> string
(** Indented rendering for human consumption. *)

val parse : string -> (t, string) result
(** Strict parser for the subset {!to_string} emits (plus standard
    escapes and whitespace); errors carry a character offset. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)
