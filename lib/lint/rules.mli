(** The lint rule set.

    Design/datapath rules (MC0xx) check the structural and timing
    disciplines the paper's multi-clock scheme depends on; behavioural
    rules (MC1xx) check DFGs and raw schedule assignments before
    allocation.  Every rule emits {!Diagnostic.t} values carrying its
    stable code; {!catalog} lists them all for documentation and CLI
    help. *)

open Mclock_dfg

type info = {
  code : string;
  rule : string;
  severity : Diagnostic.severity;
  summary : string;  (** one line: what the rule catches *)
}

val catalog : info list
(** Every rule, in code order. *)

val find : string -> info option
(** Look up by code (["MC006"]) or slug (["cdc-transfer"]). *)

val datapath_rules : Mclock_rtl.Datapath.t -> Diagnostic.t list
(** Rules needing only wiring: combinational loops (MC007), width /
    constant range (MC008), dangling references (MC011).  Safe on
    datapaths that {!Mclock_rtl.Datapath.validate} would reject. *)

val design_rules : Mclock_rtl.Design.t -> Diagnostic.t list
(** The full design-level set: the datapath rules plus clocking,
    partition discipline, latch races, control sanity, CDC transfer
    discipline and dead-component detection (MC001–MC010). *)

val graph_rules : Graph.t -> Diagnostic.t list
(** Behaviour-level hygiene: unused inputs (MC104), dead nodes
    (MC105). *)

val schedule_rules : Graph.t -> (int * int) list -> Diagnostic.t list
(** Raw [(node_id, step)] assignments against a graph: unscheduled
    nodes (MC101), bad bindings (MC102), dependency-order violations
    (MC103).  Accepts assignments {!Mclock_sched.Schedule.create}
    would reject, which is the point. *)
