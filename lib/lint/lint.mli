(** [mclock_lint] — static analysis for multi-clock RTL designs and
    their behaviours.

    Entry points run the full applicable rule set (see {!Rules.catalog})
    and return {!Diagnostic.t} lists; an empty list means clean.
    Rendering and JSON encoding live in {!Diagnostic}. *)

open Mclock_dfg

val design : Mclock_rtl.Design.t -> Diagnostic.t list
(** All design-level rules (MC001–MC011). *)

val datapath : Mclock_rtl.Datapath.t -> Diagnostic.t list
(** Wiring-only rules (MC007, MC008, MC011); total even on datapaths
    {!Mclock_rtl.Datapath.validate} rejects. *)

val graph : Graph.t -> Diagnostic.t list
(** Behaviour hygiene (MC104, MC105). *)

val schedule : Graph.t -> (int * int) list -> Diagnostic.t list
(** Raw [(node_id, step)] assignments (MC101–MC103); total even on
    assignments {!Mclock_sched.Schedule.create} rejects. *)

val behaviour : Graph.t -> (int * int) list -> Diagnostic.t list
(** {!graph} plus {!schedule}. *)

val is_clean : Diagnostic.t list -> bool
(** No diagnostics of any severity. *)

val has_errors : Diagnostic.t list -> bool
