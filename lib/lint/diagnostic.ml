(* Diagnostics: the common currency of every lint rule.  A diagnostic
   pins a stable code (grep-able, documented in README) to a severity,
   a location inside the design or behaviour, and a human message. *)

type severity = Error | Warning | Info

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_label = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type location =
  | Component of int
  | Node of int
  | Variable of string
  | Whole_design

type t = {
  code : string;
  rule : string;
  severity : severity;
  location : location;
  step : int option;
  message : string;
}

let make ~code ~rule ~severity ?step location fmt =
  Format.kasprintf
    (fun message -> { code; rule; severity; location; step; message })
    fmt

let location_rank = function
  | Whole_design -> (0, 0, "")
  | Component id -> (1, id, "")
  | Node id -> (2, id, "")
  | Variable v -> (3, 0, v)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c =
        Option.compare Int.compare a.step b.step
      in
      if c <> 0 then c
      else Stdlib.compare (location_rank a.location) (location_rank b.location)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let promote ~werror ds =
  if werror then List.map (fun d -> { d with severity = Error }) ds else ds

let pp_location ppf = function
  | Component id -> Fmt.pf ppf "c%d" id
  | Node id -> Fmt.pf ppf "n%d" id
  | Variable v -> Fmt.pf ppf "%s" v
  | Whole_design -> Fmt.pf ppf "design"

let pp ppf d =
  Fmt.pf ppf "%s %s %a%a: %s" d.code (severity_label d.severity) pp_location
    d.location
    (Fmt.option (fun ppf s -> Fmt.pf ppf "@@step%d" s))
    d.step d.message

let render ds =
  match ds with
  | [] -> "clean (no diagnostics)"
  | _ :: _ ->
      let ds = List.sort compare ds in
      let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
      let summary =
        Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error)
          (count Warning) (count Info)
      in
      String.concat "\n" (List.map (Fmt.str "%a" pp) ds @ [ summary ])

(* --- JSON ------------------------------------------------------------- *)

let location_to_json = function
  | Component id -> Json.Obj [ ("kind", Json.String "component"); ("id", Json.Int id) ]
  | Node id -> Json.Obj [ ("kind", Json.String "node"); ("id", Json.Int id) ]
  | Variable v ->
      Json.Obj [ ("kind", Json.String "variable"); ("name", Json.String v) ]
  | Whole_design -> Json.Obj [ ("kind", Json.String "design") ]

let to_json d =
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("rule", Json.String d.rule);
       ("severity", Json.String (severity_label d.severity));
       ("location", location_to_json d.location);
     ]
    @ (match d.step with None -> [] | Some s -> [ ("step", Json.Int s) ])
    @ [ ("message", Json.String d.message) ])

let list_to_json ?subject ds =
  let ds = List.sort compare ds in
  Json.Obj
    ((match subject with
     | None -> []
     | Some s -> [ ("subject", Json.String s) ])
    @ [
        ("count", Json.Int (List.length ds));
        ("errors", Json.Int (List.length (errors ds)));
        ("diagnostics", Json.List (List.map to_json ds));
      ])

let of_json json =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name json with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let as_string name = function
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "field %S is not a string" name)
  in
  let* code = Result.bind (field "code") (as_string "code") in
  let* rule = Result.bind (field "rule") (as_string "rule") in
  let* sev_label = Result.bind (field "severity") (as_string "severity") in
  let* severity =
    match severity_of_label sev_label with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown severity %S" sev_label)
  in
  let* message = Result.bind (field "message") (as_string "message") in
  let step =
    match Json.member "step" json with Some (Json.Int s) -> Some s | _ -> None
  in
  let* location =
    let* loc = field "location" in
    match Json.member "kind" loc with
    | Some (Json.String "component") -> (
        match Json.member "id" loc with
        | Some (Json.Int id) -> Ok (Component id)
        | _ -> Error "component location without integer id")
    | Some (Json.String "node") -> (
        match Json.member "id" loc with
        | Some (Json.Int id) -> Ok (Node id)
        | _ -> Error "node location without integer id")
    | Some (Json.String "variable") -> (
        match Json.member "name" loc with
        | Some (Json.String v) -> Ok (Variable v)
        | _ -> Error "variable location without name")
    | Some (Json.String "design") -> Ok Whole_design
    | _ -> Error "location without a known kind"
  in
  Ok { code; rule; severity; location; step; message }
