(* The lint rules.

   Design-level rules re-express the paper's structural discipline as
   diagnostics: every value crossing a phase partition goes through a
   transfer register, latched controls only change in their owner's
   duty cycle, phase clocks never overlap.  The four historical
   Mclock_rtl.Check checks live here as MC001-MC005 (the shim itself
   is gone); MC006-MC011 are new.  Behavioural rules
   (MC1xx) lint DFGs and raw schedule assignments before allocation,
   accepting inputs the validating constructors would reject. *)

open Mclock_dfg
open Mclock_rtl

type info = {
  code : string;
  rule : string;
  severity : Diagnostic.severity;
  summary : string;
}

let mc001 =
  {
    code = "MC001";
    rule = "clock-overlap";
    severity = Diagnostic.Error;
    summary = "phase clocks must be non-overlapping (paper Fig. 2)";
  }

let mc002 =
  {
    code = "MC002";
    rule = "partition-discipline";
    severity = Diagnostic.Error;
    summary = "a storage element loads only during its own phase";
  }

let mc003 =
  {
    code = "MC003";
    rule = "latch-read-write";
    severity = Diagnostic.Error;
    summary = "a latch is never read and written in the same step";
  }

let mc004 =
  {
    code = "MC004";
    rule = "mux-select";
    severity = Diagnostic.Error;
    summary = "mux selects stay in range and target actual muxes";
  }

let mc005 =
  {
    code = "MC005";
    rule = "alu-function";
    severity = Diagnostic.Error;
    summary = "ALU function selects stay within the ALU's repertoire";
  }

let mc006 =
  {
    code = "MC006";
    rule = "cdc-transfer";
    severity = Diagnostic.Error;
    summary =
      "an ALU never mixes operands latched in different clock partitions; \
       cross-partition values pass through a transfer register first \
       (only checked when the design claims the transfer discipline, \
       which the split method waives)";
  }

let mc007 =
  {
    code = "MC007";
    rule = "comb-loop";
    severity = Diagnostic.Error;
    summary = "the datapath has no combinational cycles";
  }

let mc008 =
  {
    code = "MC008";
    rule = "width";
    severity = Diagnostic.Error;
    summary = "constants are representable in the datapath width";
  }

let mc009 =
  {
    code = "MC009";
    rule = "dead-component";
    severity = Diagnostic.Warning;
    summary = "every storage/ALU/mux is reachable from some output tap";
  }

let mc010 =
  {
    code = "MC010";
    rule = "latch-transparency";
    severity = Diagnostic.Error;
    summary = "no latch feeds itself through transparent logic at a step \
               where it is written";
  }

let mc011 =
  {
    code = "MC011";
    rule = "dangling-ref";
    severity = Diagnostic.Error;
    summary = "every referenced component id exists in the datapath";
  }

let mc101 =
  {
    code = "MC101";
    rule = "unscheduled-node";
    severity = Diagnostic.Error;
    summary = "every DFG node is assigned a schedule step";
  }

let mc102 =
  {
    code = "MC102";
    rule = "schedule-binding";
    severity = Diagnostic.Error;
    summary = "schedule assignments bind existing nodes once, to steps >= 1";
  }

let mc103 =
  {
    code = "MC103";
    rule = "dependency-order";
    severity = Diagnostic.Error;
    summary = "every consumer is scheduled strictly after its producers";
  }

let mc104 =
  {
    code = "MC104";
    rule = "unused-input";
    severity = Diagnostic.Info;
    summary = "declared inputs are read by some node";
  }

let mc105 =
  {
    code = "MC105";
    rule = "dead-node";
    severity = Diagnostic.Warning;
    summary = "every node's result is consumed or is a primary output";
  }

let catalog =
  [
    mc001; mc002; mc003; mc004; mc005; mc006; mc007; mc008; mc009; mc010;
    mc011; mc101; mc102; mc103; mc104; mc105;
  ]

let find key =
  List.find_opt (fun i -> i.code = key || i.rule = key) catalog

(* [diag info] is a Diagnostic.make specialized to one rule. *)
let diag info ?step location fmt =
  Diagnostic.make ~code:info.code ~rule:info.rule ~severity:info.severity
    ?step location fmt

(* --- Datapath-only rules ------------------------------------------------ *)

(* Component sources including constants (Comp.fanin drops them). *)
let comp_sources c =
  match Comp.kind c with
  | Comp.Input _ -> []
  | Comp.Storage s -> [ s.Comp.s_input ]
  | Comp.Alu a -> (
      a.Comp.a_src_a :: (match a.Comp.a_src_b with None -> [] | Some s -> [ s ]))
  | Comp.Mux m -> Array.to_list m.Comp.m_choices

(* Total lookup table: lint must survive datapaths that
   Datapath.validate would reject. *)
let comp_table dp =
  let tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace tbl (Comp.id c) c) (Datapath.comps dp);
  tbl

let check_dangling tbl comps =
  List.concat_map
    (fun c ->
      List.filter_map
        (function
          | Comp.From_const _ -> None
          | Comp.From_comp id ->
              if Hashtbl.mem tbl id then None
              else
                Some
                  (diag mc011
                     (Diagnostic.Component (Comp.id c))
                     "c%d(%s) reads undefined component c%d" (Comp.id c)
                     (Comp.name c) id))
        (comp_sources c))
    comps

let check_width dp comps =
  let width = Datapath.width dp in
  if width < 1 then
    [ diag mc008 Diagnostic.Whole_design "datapath width %d is not positive" width ]
  else
    let max_const = if width >= Sys.int_size - 2 then max_int else (1 lsl width) - 1 in
    List.concat_map
      (fun c ->
        List.filter_map
          (function
            | Comp.From_comp _ -> None
            | Comp.From_const k ->
                if k < 0 || k > max_const then
                  Some
                    (diag mc008
                       (Diagnostic.Component (Comp.id c))
                       "constant %d at c%d(%s) does not fit in %d bit(s)" k
                       (Comp.id c) (Comp.name c) width)
                else None)
          (comp_sources c))
      comps

(* Tarjan SCC over the combinational subgraph (muxes and ALUs); a
   cycle is an SCC of size > 1 or a direct self-feed. *)
let check_comb_loops tbl comps =
  let is_comb c =
    match Comp.kind c with
    | Comp.Alu _ | Comp.Mux _ -> true
    | Comp.Input _ | Comp.Storage _ -> false
  in
  let succ c =
    List.filter_map
      (function
        | Comp.From_const _ -> None
        | Comp.From_comp id -> (
            match Hashtbl.find_opt tbl id with
            | Some c' when is_comb c' -> Some id
            | Some _ | None -> None))
      (comp_sources c)
  in
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect id =
    Hashtbl.replace index id !counter;
    Hashtbl.replace lowlink id !counter;
    incr counter;
    stack := id :: !stack;
    Hashtbl.replace on_stack id ();
    let c = Hashtbl.find tbl id in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink id
            (min (Hashtbl.find lowlink id) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink id
            (min (Hashtbl.find lowlink id) (Hashtbl.find index w)))
      (succ c);
    if Hashtbl.find lowlink id = Hashtbl.find index id then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = id then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter
    (fun c -> if is_comb c && not (Hashtbl.mem index (Comp.id c)) then
        strongconnect (Comp.id c))
    comps;
  List.filter_map
    (fun scc ->
      let cyclic =
        match scc with
        | [ id ] ->
            (* Size-1 SCC is a loop only when it feeds itself directly. *)
            List.mem id (succ (Hashtbl.find tbl id))
        | [] -> false
        | _ :: _ :: _ -> true
      in
      if cyclic then
        let ids = List.sort Int.compare scc in
        Some
          (diag mc007
             (Diagnostic.Component (List.hd ids))
             "combinational loop through %s"
             (String.concat " -> "
                (List.map (Printf.sprintf "c%d") (ids @ [ List.hd ids ]))))
      else None)
    !sccs

let datapath_rules dp =
  let tbl = comp_table dp in
  let comps = Datapath.comps dp in
  check_dangling tbl comps @ check_width dp comps @ check_comb_loops tbl comps

(* --- Design-level rules ------------------------------------------------- *)

let check_clock design =
  if Clock.non_overlapping (Design.clock design) then []
  else
    [
      diag mc001 Diagnostic.Whole_design
        "the %d phase clocks overlap" (Clock.phases (Design.clock design));
    ]

(* Iterate (step, phase, word) over one controller period. *)
let steps_of design =
  let control = Design.control design in
  let clock = Design.clock design in
  List.map
    (fun step -> (step, Clock.phase_of_step clock step))
    (Mclock_util.List_ext.range 1 (Control.num_steps control))

let check_partition_discipline tbl design =
  let control = Design.control design in
  List.concat_map
    (fun (step, phase) ->
      List.filter_map
        (fun id ->
          match Hashtbl.find_opt tbl id with
          | None ->
              Some
                (diag mc011 ~step (Diagnostic.Component id)
                   "step %d loads undefined component c%d" step id)
          | Some c -> (
              match Comp.kind c with
              | Comp.Storage s when s.Comp.s_phase <> phase ->
                  Some
                    (diag mc002 ~step (Diagnostic.Component id)
                       "storage c%d(%s) of phase %d loaded at step %d (phase \
                        %d)"
                       id (Comp.name c) s.Comp.s_phase step phase)
              | Comp.Storage _ -> None
              | Comp.Input _ | Comp.Alu _ | Comp.Mux _ ->
                  Some
                    (diag mc002 ~step (Diagnostic.Component id)
                       "load target c%d(%s) is not a storage element" id
                       (Comp.name c))))
        (Control.loads control ~step))
    (steps_of design)

let is_latch datapath id =
  match Comp.kind (Datapath.comp datapath id) with
  | Comp.Storage s -> s.Comp.s_kind = Mclock_tech.Library.Latch
  | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> false

let check_latch_read_write tbl design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  List.concat_map
    (fun (step, _phase) ->
      let loads =
        List.filter (Hashtbl.mem tbl) (Control.loads control ~step)
      in
      let select mux = Control.select control ~step ~mux in
      List.concat_map
        (fun target ->
          match Comp.kind (Datapath.comp datapath target) with
          | Comp.Storage s ->
              let readers =
                Datapath.sequential_cone ~select datapath s.Comp.s_input
              in
              List.filter_map
                (fun reader ->
                  if
                    reader <> target && is_latch datapath reader
                    && List.mem reader loads
                  then
                    Some
                      (diag mc003 ~step (Diagnostic.Component reader)
                         "latch c%d is read (feeding c%d) and written in the \
                          same step %d"
                         reader target step)
                  else None)
                readers
          | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> [])
        loads)
    (steps_of design)

let check_controls tbl design =
  let control = Design.control design in
  List.concat_map
    (fun (step, _phase) ->
      let word = Control.word control ~step in
      let select_violations =
        List.filter_map
          (fun (mux_id, idx) ->
            match Hashtbl.find_opt tbl mux_id with
            | None ->
                Some
                  (diag mc011 ~step (Diagnostic.Component mux_id)
                     "step %d selects on undefined component c%d" step mux_id)
            | Some c -> (
                match Comp.kind c with
                | Comp.Mux m ->
                    if idx < 0 || idx >= Array.length m.Comp.m_choices then
                      Some
                        (diag mc004 ~step (Diagnostic.Component mux_id)
                           "step %d selects input %d of mux c%d (has %d)" step
                           idx mux_id
                           (Array.length m.Comp.m_choices))
                    else None
                | Comp.Input _ | Comp.Storage _ | Comp.Alu _ ->
                    Some
                      (diag mc004 ~step (Diagnostic.Component mux_id)
                         "step %d selects on non-mux c%d" step mux_id)))
          word.Control.selects
      in
      let alu_violations =
        List.filter_map
          (fun (alu_id, op) ->
            match Hashtbl.find_opt tbl alu_id with
            | None ->
                Some
                  (diag mc011 ~step (Diagnostic.Component alu_id)
                     "step %d selects op on undefined component c%d" step
                     alu_id)
            | Some c -> (
                match Comp.kind c with
                | Comp.Alu a ->
                    if not (Op.Set.mem op a.Comp.a_fset) then
                      Some
                        (diag mc005 ~step (Diagnostic.Component alu_id)
                           "step %d runs %s on ALU c%d with repertoire %s"
                           step (Op.name op) alu_id
                           (Op.Set.to_string a.Comp.a_fset))
                    else None
                | Comp.Input _ | Comp.Storage _ | Comp.Mux _ ->
                    Some
                      (diag mc005 ~step (Diagnostic.Component alu_id)
                         "step %d selects op on non-ALU c%d" step alu_id)))
          word.Control.alu_ops
      in
      select_violations @ alu_violations)
    (steps_of design)

(* Storages dedicated to sampled primary inputs: stable for a whole
   computation, so they belong to no partition for CDC purposes (like
   the ports they shadow). *)
let input_register_ids design =
  let input_vars =
    List.fold_left
      (fun acc (v, _) -> Var.Set.add v acc)
      Var.Set.empty (Design.input_ports design)
  in
  List.filter_map
    (fun (c, s) ->
      match s.Comp.s_holds with
      | [] -> None
      | holds ->
          if List.for_all (fun v -> Var.Set.mem v input_vars) holds then
            Some (Comp.id c)
          else None)
    (Datapath.storages (Design.datapath design))

(* ALUs on the resolved path into the storages loaded at [step]: the
   ALUs whose outputs the step actually latches. *)
let evaluated_alus datapath control ~step loads =
  let select mux = Control.select control ~step ~mux in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk = function
    | Comp.From_const _ -> ()
    | Comp.From_comp id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          match Comp.kind (Datapath.comp datapath id) with
          | Comp.Input _ | Comp.Storage _ -> ()
          | Comp.Alu a ->
              acc := id :: !acc;
              walk a.Comp.a_src_a;
              Option.iter walk a.Comp.a_src_b
          | Comp.Mux m -> (
              match select id with
              | Some idx when idx >= 0 && idx < Array.length m.Comp.m_choices
                ->
                  walk m.Comp.m_choices.(idx)
              | Some _ | None -> Array.iter walk m.Comp.m_choices)
        end
  in
  List.iter
    (fun target ->
      match Comp.kind (Datapath.comp datapath target) with
      | Comp.Storage s -> walk s.Comp.s_input
      | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> ())
    loads;
  List.rev !acc

(* MC006 — the paper's transfer discipline (§4.2 Step 1): when an ALU
   fires, every stored operand in its resolved cone must have been
   latched in a single clock partition; mixing partitions means a
   missing transfer register (operands would update at two different
   phase times).  Primary-input ports and input registers are
   partitionless and exempt. *)
let check_cdc tbl design =
  if
    Clock.phases (Design.clock design) <= 1
    || not (Design.style design).Design.cross_partition_transfers
  then []
  else
    let datapath = Design.datapath design in
    let control = Design.control design in
    let input_regs = input_register_ids design in
    List.concat_map
      (fun (step, _phase) ->
        let loads =
          List.filter (Hashtbl.mem tbl) (Control.loads control ~step)
        in
        let select mux = Control.select control ~step ~mux in
        List.filter_map
          (fun alu_id ->
            let cone =
              Datapath.sequential_cone ~select datapath
                (Comp.From_comp alu_id)
            in
            let phases =
              Mclock_util.List_ext.dedup ~compare:Int.compare
                (List.filter_map
                   (fun id ->
                     if List.mem id input_regs then None
                     else
                       match Comp.kind (Datapath.comp datapath id) with
                       | Comp.Storage s -> Some s.Comp.s_phase
                       | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> None)
                   cone)
            in
            match phases with
            | [] | [ _ ] -> None
            | _ :: _ :: _ ->
                Some
                  (diag mc006 ~step (Diagnostic.Component alu_id)
                     "ALU c%d reads operands latched in partitions {%s} at \
                      step %d; route the stragglers through a transfer \
                      register"
                     alu_id
                     (String.concat ","
                        (List.map string_of_int phases))
                     step))
          (evaluated_alus datapath control ~step loads))
      (steps_of design)

let check_dead_components design =
  let datapath = Design.datapath design in
  let reachable = Hashtbl.create 64 in
  let rec visit = function
    | Comp.From_const _ -> ()
    | Comp.From_comp id ->
        if not (Hashtbl.mem reachable id) then begin
          Hashtbl.replace reachable id ();
          List.iter visit (comp_sources (Datapath.comp datapath id))
        end
  in
  List.iter (fun tap -> visit tap.Design.source) (Design.output_taps design);
  List.filter_map
    (fun c ->
      match Comp.kind c with
      | Comp.Input _ -> None
      | Comp.Storage _ | Comp.Alu _ | Comp.Mux _ ->
          if Hashtbl.mem reachable (Comp.id c) then None
          else
            Some
              (diag mc009
                 (Diagnostic.Component (Comp.id c))
                 "c%d(%s) is unreachable from every output tap" (Comp.id c)
                 (Comp.name c)))
    (Datapath.comps datapath)

(* MC010 — a latch that (transitively, through transparent
   combinational logic) feeds its own input at a step where it is
   written races against itself while transparent.  Registers are
   edge-triggered and exempt; MC003 covers latch-to-latch races. *)
let check_latch_transparency tbl design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  List.concat_map
    (fun (step, _phase) ->
      let select mux = Control.select control ~step ~mux in
      List.filter_map
        (fun id ->
          if not (Hashtbl.mem tbl id && is_latch datapath id) then None
          else
            match Comp.kind (Datapath.comp datapath id) with
            | Comp.Storage s ->
                let cone =
                  Datapath.sequential_cone ~select datapath s.Comp.s_input
                in
                if List.mem id cone then
                  Some
                    (diag mc010 ~step (Diagnostic.Component id)
                       "latch c%d(%s) feeds itself through transparent logic \
                        at its own load step %d"
                       id
                       (Comp.name (Datapath.comp datapath id))
                       step)
                else None
            | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> None)
        (Control.loads control ~step))
    (steps_of design)

let design_rules design =
  let datapath = Design.datapath design in
  let tbl = comp_table datapath in
  check_clock design
  @ datapath_rules datapath
  @ check_partition_discipline tbl design
  @ check_latch_read_write tbl design
  @ check_controls tbl design
  @ check_cdc tbl design
  @ check_latch_transparency tbl design
  @ check_dead_components design

(* --- Behaviour-level rules ---------------------------------------------- *)

let graph_rules graph =
  List.map
    (fun v ->
      diag mc104
        (Diagnostic.Variable (Var.name v))
        "input %s is never read" (Var.name v))
    (Graph.unused_inputs graph)
  @ List.map
      (fun n ->
        diag mc105
          (Diagnostic.Node (Node.id n))
          "node n%d produces %s, which is neither consumed nor an output"
          (Node.id n)
          (Var.name (Node.result n)))
      (Graph.dead_nodes graph)

let schedule_rules graph assignments =
  let known id =
    match Graph.node graph id with
    | _ -> true
    | exception Graph.Invalid _ -> false
  in
  let binding_diags =
    List.concat_map
      (fun (id, step) ->
        let bad_node =
          if known id then []
          else
            [
              diag mc102 ~step (Diagnostic.Node id)
                "assignment binds unknown node n%d" id;
            ]
        in
        let bad_step =
          if step >= 1 then []
          else
            [
              diag mc102 (Diagnostic.Node id)
                "node n%d assigned to invalid step %d" id step;
            ]
        in
        bad_node @ bad_step)
      assignments
  in
  let duplicates =
    List.filter_map
      (fun (id, bindings) ->
        match bindings with
        | [] | [ _ ] -> None
        | _ :: _ :: _ ->
            Some
              (diag mc102 (Diagnostic.Node id)
                 "node n%d is scheduled %d times" id (List.length bindings)))
      (Mclock_util.List_ext.group_by ~key:fst ~compare_key:Int.compare
         assignments)
  in
  let step_of id =
    List.assoc_opt id assignments
  in
  let unscheduled =
    List.filter_map
      (fun n ->
        let id = Node.id n in
        match step_of id with
        | Some _ -> None
        | None ->
            Some (diag mc101 (Diagnostic.Node id) "node n%d has no step" id))
      (Graph.nodes graph)
  in
  let dependency =
    List.concat_map
      (fun n ->
        match step_of (Node.id n) with
        | None -> []
        | Some step ->
            List.filter_map
              (fun p ->
                match step_of (Node.id p) with
                | Some pstep when step <= pstep ->
                    Some
                      (diag mc103 ~step
                         (Diagnostic.Node (Node.id n))
                         "node n%d (step %d) consumes %s before its producer \
                          n%d (step %d) completes"
                         (Node.id n) step
                         (Var.name (Node.result p))
                         (Node.id p) pstep)
                | Some _ | None -> None)
              (Graph.predecessors graph n))
      (Graph.nodes graph)
  in
  binding_diags @ duplicates @ unscheduled @ dependency
