(** The lint diagnostics framework: stable rule codes, severities,
    locations, and pretty / machine-readable renderers. *)

type severity = Error | Warning | Info

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_label : string -> severity option

type location =
  | Component of int  (** a datapath component id *)
  | Node of int  (** a behavioural DFG node id *)
  | Variable of string  (** a behavioural variable *)
  | Whole_design  (** the design or graph as a whole *)

type t = {
  code : string;  (** stable rule code, e.g. ["MC006"] *)
  rule : string;  (** rule slug, e.g. ["cdc-transfer"] *)
  severity : severity;
  location : location;
  step : int option;  (** schedule step the diagnostic concerns *)
  message : string;
}

val make :
  code:string ->
  rule:string ->
  severity:severity ->
  ?step:int ->
  location ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~code ~rule ~severity ?step loc fmt ...] builds a diagnostic
    with a formatted message. *)

val compare : t -> t -> int
(** Orders by severity (errors first), then code, step and location —
    the presentation order of the renderers. *)

val errors : t list -> t list
val promote : werror:bool -> t list -> t list
(** With [werror:true], every warning and info becomes an error. *)

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit
(** One line: [MC006 error c12@step3: message]. *)

val render : t list -> string
(** Sorted one-per-line listing with a severity-count summary footer;
    ["clean (no diagnostics)"] on an empty list. *)

val to_json : t -> Json.t

val list_to_json : ?subject:string -> t list -> Json.t
(** [{ "subject": ..., "count": n, "errors": e, "diagnostics": [...] }] *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; used by the round-trip tests and external
    tooling that replays lint reports. *)
