(* Minimal JSON: just what diagnostics need.  The emitter escapes
   control characters and the parser accepts the emitted subset plus
   standard escapes, so [parse (to_string v)] round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec emit ~indent ~level buf v =
  let pad l =
    match indent with
    | None -> ()
    | Some w -> Buffer.add_string buf ("\n" ^ String.make (w * l) ' ')
  in
  let sequence open_ close items render =
    match items with
    | [] ->
        Buffer.add_char buf open_;
        Buffer.add_char buf close
    | _ :: _ ->
        Buffer.add_char buf open_;
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            render item)
          items;
        pad level;
        Buffer.add_char buf close
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List items ->
      sequence '[' ']' items (emit ~indent ~level:(level + 1) buf)
  | Obj fields ->
      sequence '{' '}' fields (fun (k, v) ->
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          if indent <> None then Buffer.add_char buf ' ';
          emit ~indent ~level:(level + 1) buf v)

let render ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:None v
let to_string_pretty v = render ~indent:(Some 2) v

(* --- Parsing --------------------------------------------------------- *)

exception Fail of int * string

let parse text =
  let len = String.length text in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail (!pos, m))) fmt in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > len then fail "truncated \\u escape";
                  let hex = String.sub text !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with Failure _ -> fail "bad \\u escape %s" hex
                  in
                  (* BMP code points only; enough for our own output. *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                  end
              | c -> fail "bad escape \\%c" c);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
