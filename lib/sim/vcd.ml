(* Minimal VCD (Value Change Dump) writer.

   Produces IEEE-1364-style dumps viewable in GTKWave: register one
   signal per interesting net, then sample once per time step; only
   changed values are emitted. *)

module B = Mclock_util.Bitvec

type signal = { code : string; name : string; width : int; mutable last : B.t option }

type t = {
  timescale : string;
  mutable signals : signal list; (* reversed *)
  buf : Buffer.t;
  mutable header_done : bool;
  mutable next_code : int;
}

let create ?(timescale = "1 ns") () =
  {
    timescale;
    signals = [];
    buf = Buffer.create 1024;
    header_done = false;
    next_code = 0;
  }

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let code_of_int n =
  let base = 94 in
  let rec go acc n =
    let digit = Char.chr (33 + (n mod base)) in
    let acc = String.make 1 digit ^ acc in
    if n < base then acc else go acc ((n / base) - 1)
  in
  go "" n

let register t ~name ~width =
  if t.header_done then invalid_arg "Vcd.register: header already emitted";
  let code = code_of_int t.next_code in
  t.next_code <- t.next_code + 1;
  let s = { code; name; width; last = None } in
  t.signals <- s :: t.signals;
  s

(* A resumed simulation continues into the dump its prefix started;
   by then the header is out and [register] would raise, so the kernel
   looks its signals up by name instead.  The [last] cache rides
   along, which is exactly right: a value unchanged across the
   checkpoint boundary is not re-emitted, as in an uninterrupted run. *)
let lookup t ~name = List.find_opt (fun s -> String.equal s.name name) t.signals

let emit_header t =
  Buffer.add_string t.buf (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string t.buf "$scope module mclock $end\n";
  List.iter
    (fun s ->
      Buffer.add_string t.buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.width s.code s.name))
    (List.rev t.signals);
  Buffer.add_string t.buf "$upscope $end\n$enddefinitions $end\n";
  t.header_done <- true

let sample t ~time values =
  if not t.header_done then emit_header t;
  let changes =
    List.filter_map
      (fun (s, value) ->
        match s.last with
        | Some prev when B.equal prev value -> None
        | Some _ | None ->
            s.last <- Some value;
            Some (s, value))
      values
  in
  if changes <> [] then begin
    Buffer.add_string t.buf (Printf.sprintf "#%d\n" time);
    List.iter
      (fun (s, value) ->
        if s.width = 1 then
          Buffer.add_string t.buf
            (Printf.sprintf "%d%s\n" (B.to_int value) s.code)
        else
          Buffer.add_string t.buf
            (Printf.sprintf "b%s %s\n" (B.to_binary_string value) s.code))
      changes
  end

let contents t =
  if not t.header_done then emit_header t;
  Buffer.contents t.buf

let save t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
