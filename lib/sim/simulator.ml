(* Cycle-accurate multi-phase RTL simulator with per-node transition
   counting — the stand-in for the paper's "COMPASS simulator with the
   power option enabled".

   One simulated cycle = one schedule step = one system-clock period.
   Each cycle:
     1. at step 1, fresh random primary-input values are applied (a new
        computation of the behaviour begins, back to back with the
        previous one, as in the paper's overlapped runs);
     2. the control word is applied: specified mux selects and ALU
        function selects update (unspecified ones hold — latched
        controls); control-line transitions are charged;
     3. combinational components propagate in topological order; mux
        and ALU activity is charged from actual bit toggles (Hamming
        distances of old vs. new values); operand-isolated ALUs hold
        their inputs when idle;
     4. storage elements tick: clock-pin energy according to the style
        (free-running, gated to loads, or phase-divided), write energy
        and output-net energy on actual value changes;
     5. output taps whose ready step completed are recorded.

   Functional checking: per computation, the recorded outputs are the
   design's answer for that computation's inputs; Verify compares them
   against the golden interpreter. *)

open Mclock_dfg
open Mclock_rtl
module B = Mclock_util.Bitvec
module L = Mclock_tech.Library

type result = {
  cycles : int;
  iterations : int;
  sim_time_s : float; (* simulated wall-clock time *)
  energy_pj : float;
  power_mw : float;
  activity : Activity.t;
  inputs : Golden.env list; (* per iteration *)
  outputs : Golden.env list; (* per iteration, in the same order *)
}

type trace_request = { vcd : Vcd.t; max_cycles : int }

type observation = {
  obs_cycle : int;
  obs_step : int;
  obs_phase : int;
  obs_value : int -> B.t; (* component output at the end of the cycle *)
}

(* Turn an optional user stimulus into one env per computation,
   drawing fresh random values when none is given.  Shared with the
   compiled kernel: both kernels must consume the RNG in exactly the
   same order (inputs within an env, then env by env) for a given seed
   to see the same input stream. *)
let materialize_stimulus ?stimulus rng ~inputs ~width ~iterations =
  match stimulus with
  | Some envs ->
      if List.length envs < iterations then
        invalid_arg "Simulator.run: stimulus shorter than iterations";
      List.iter
        (fun env ->
          List.iter
            (fun (v, _) ->
              if not (Var.Map.mem v env) then
                invalid_arg
                  (Printf.sprintf "Simulator.run: stimulus misses input %s"
                     (Var.name v)))
            inputs)
        envs;
      Array.of_list (Mclock_util.List_ext.take iterations envs)
  | None ->
      Array.init iterations (fun _ ->
          List.fold_left
            (fun env (v, _) -> Var.Map.add v (B.random rng ~width) env)
            Var.Map.empty inputs)

let run ?(seed = 42) ?trace ?observer ?stimulus tech design ~iterations =
  if iterations < 1 then invalid_arg "Simulator.run: iterations must be >= 1";
  let datapath = Design.datapath design in
  let control = Design.control design in
  let clock = Design.clock design in
  let graph_inputs = Design.input_ports design in
  let width = Datapath.width datapath in
  let rng = Mclock_util.Rng.create seed in
  let t_steps = Control.num_steps control in
  let comps = Datapath.comps datapath in
  let max_id =
    List.fold_left (fun acc c -> max acc (Comp.id c)) 0 comps
  in
  let zero = B.zero ~width in
  let values = Array.make (max_id + 1) zero in
  let comb_order = Datapath.combinational_order datapath in
  let activity = Activity.create () in
  let ept cap = L.energy_per_transition tech cap in
  let charge ~comp ~category pj = Activity.add activity ~comp ~category pj in
  let value_of = function
    | Comp.From_const c -> B.create ~width c
    | Comp.From_comp id -> values.(id)
  in
  (* Mutable control state: held mux selects and ALU functions. *)
  let mux_sel = Array.make (max_id + 1) 0 in
  let alu_fn : Op.t option array = Array.make (max_id + 1) None in
  let alu_in_a = Array.make (max_id + 1) zero in
  let alu_in_b = Array.make (max_id + 1) zero in
  let alu_busy_prev = Array.make (max_id + 1) false in
  let load_prev = Array.make (max_id + 1) false in
  let prev_loads = ref [] in
  (* Initialize default ALU functions. *)
  List.iter
    (fun (c, a) ->
      alu_fn.(Comp.id c) <- Some (List.hd (Op.Set.to_list a.Comp.a_fset)))
    (Datapath.alus datapath);
  (* Optional VCD tracing. *)
  let vcd_signals =
    match trace with
    | None -> []
    | Some { vcd; _ } ->
        List.map
          (fun c ->
            ( Comp.id c,
              Vcd.register vcd
                ~name:(Printf.sprintf "%s_c%d" (Comp.name c) (Comp.id c))
                ~width ))
          comps
  in
  let record_trace cycle =
    match trace with
    | Some { vcd; max_cycles } when cycle <= max_cycles ->
        Vcd.sample vcd ~time:cycle
          (List.map (fun (id, s) -> (s, values.(id))) vcd_signals)
    | Some _ | None -> ()
  in
  (* Input plumbing: an input sampled into a dedicated register (its
     storage element lists the variable among its held values) has its
     port updated at the start of the final step, so the register
     re-samples at that step's end and the next computation reads
     stable values from cycle one.  Port-direct inputs update at the
     start of step 1. *)
  let input_register v =
    List.find_map
      (fun (c, s) ->
        if List.exists (Var.equal v) s.Comp.s_holds then Some (Comp.id c)
        else None)
      (Datapath.storages datapath)
  in
  let input_plumbing =
    List.map (fun (v, port) -> (v, port, input_register v)) graph_inputs
  in
  let envs =
    materialize_stimulus ?stimulus rng ~inputs:graph_inputs ~width ~iterations
  in
  let apply_port env (v, port, _) =
    let fresh = Var.Map.find v env in
    let h = B.hamming values.(port) fresh in
    charge ~comp:port ~category:Activity.Data
      (float h *. ept tech.L.register.L.output_cap_per_bit);
    values.(port) <- fresh
  in
  (* Reset state: ports and input registers preloaded with the first
     computation's values (no energy charged for initialization). *)
  List.iter
    (fun (v, port, reg) ->
      let v0 = Var.Map.find v envs.(0) in
      values.(port) <- v0;
      Option.iter (fun sid -> values.(sid) <- v0) reg)
    input_plumbing;
  (* Iteration bookkeeping. *)
  let all_outputs = ref [] in
  let current_outputs = ref Var.Map.empty in
  let total_cycles = iterations * t_steps in
  for cycle = 1 to total_cycles do
    let step = ((cycle - 1) mod t_steps) + 1 in
    let iter_idx = (cycle - 1) / t_steps in
    let phase = Clock.phase_of_cycle clock cycle in
    (* 1. Fresh inputs: direct ports at step 1 of their computation;
       registered-input ports one step ahead, at the final step of the
       previous computation. *)
    if step = 1 then begin
      current_outputs := Var.Map.empty;
      if iter_idx > 0 then
        List.iter
          (fun ((_, _, reg) as p) ->
            if reg = None then apply_port envs.(iter_idx) p)
          input_plumbing
    end;
    if step = t_steps && iter_idx + 1 < iterations then
      List.iter
        (fun ((_, _, reg) as p) ->
          if reg <> None then apply_port envs.(iter_idx + 1) p)
        input_plumbing;
    (* 2. Control word application. *)
    let word = Control.word control ~step in
    let control_changes = ref 0 in
    List.iter
      (fun (mux_id, idx) ->
        if mux_sel.(mux_id) <> idx then begin
          incr control_changes;
          mux_sel.(mux_id) <- idx;
          charge ~comp:mux_id ~category:Activity.Mux_select
            (ept tech.L.mux.L.select_cap)
        end)
      word.Control.selects;
    let op_changed = Array.make (max_id + 1) false in
    List.iter
      (fun (alu_id, op) ->
        match alu_fn.(alu_id) with
        | Some prev when Op.equal prev op -> ()
        | Some _ | None ->
            incr control_changes;
            op_changed.(alu_id) <- true;
            alu_fn.(alu_id) <- Some op)
      word.Control.alu_ops;
    let loads = word.Control.loads in
    let load_line_changes =
      List.length (List.filter (fun x -> not (List.mem x !prev_loads)) loads)
      + List.length (List.filter (fun x -> not (List.mem x loads)) !prev_loads)
    in
    control_changes := !control_changes + load_line_changes;
    prev_loads := loads;
    charge ~comp:Activity.global_component ~category:Activity.Control
      (float !control_changes *. ept tech.L.control_line_cap);
    let busy alu_id = List.mem_assoc alu_id word.Control.alu_ops in
    (* 3. Combinational propagation. *)
    List.iter
      (fun c ->
        let id = Comp.id c in
        match Comp.kind c with
        | Comp.Mux m ->
            let sel = mux_sel.(id) in
            if sel >= Array.length m.Comp.m_choices then
              invalid_arg
                (Printf.sprintf
                   "Simulator.run: control selects choice %d on mux %d (%d \
                    choices)"
                   sel id
                   (Array.length m.Comp.m_choices));
            let v = value_of m.Comp.m_choices.(sel) in
            let h = B.hamming values.(id) v in
            if h > 0 then begin
              charge ~comp:id ~category:Activity.Mux_data
                (float h *. ept tech.L.mux.L.data_cap_per_bit);
              values.(id) <- v
            end
        | Comp.Alu a ->
            let is_busy = busy id in
            if a.Comp.a_isolated && not is_busy then begin
              (* Isolation holds the operand inputs; charge the
                 isolation cells on the busy->idle edge. *)
              if alu_busy_prev.(id) then
                charge ~comp:id ~category:Activity.Isolation
                  (float width *. ept tech.L.isolation_cap_per_bit);
              alu_busy_prev.(id) <- false
            end
            else begin
              let a_new = value_of a.Comp.a_src_a in
              let b_new =
                match a.Comp.a_src_b with
                | Some src -> value_of src
                | None -> a_new
              in
              let op =
                match alu_fn.(id) with
                | Some op -> op
                | None -> assert false
              in
              let h =
                B.hamming alu_in_a.(id) a_new
                + B.hamming alu_in_b.(id) b_new
                + if op_changed.(id) then width else 0
              in
              if h > 0 then begin
                let frac = float h /. float (2 * width) in
                let c_int = L.alu_internal_cap tech ~width a.Comp.a_fset in
                charge ~comp:id ~category:Activity.Alu_internal
                  (ept (c_int *. frac));
                let out =
                  match Op.arity op with
                  | 1 -> Op.eval op [ a_new ]
                  | _ -> Op.eval op [ a_new; b_new ]
                in
                let ho = B.hamming values.(id) out in
                charge ~comp:id ~category:Activity.Data
                  (float ho *. ept tech.L.fu_output_cap_per_bit);
                values.(id) <- out;
                alu_in_a.(id) <- a_new;
                alu_in_b.(id) <- b_new
              end;
              (* Isolation latches re-capture operands while busy. *)
              if a.Comp.a_isolated && is_busy then
                charge ~comp:id ~category:Activity.Isolation
                  (float h *. ept tech.L.isolation_cap_per_bit);
              alu_busy_prev.(id) <- is_busy
            end
        | Comp.Input _ | Comp.Storage _ -> assert false)
      comb_order;
    (* 4. Sequential update. *)
    List.iter
      (fun (c, s) ->
        let id = Comp.id c in
        let loading = List.mem id loads in
        let kind = s.Comp.s_kind in
        if s.Comp.s_gated then begin
          (* The tree up to the gating cell toggles every cycle; the
             element's pin only on loads. *)
          charge ~comp:id ~category:Activity.Clock
            (2. *. ept tech.L.clock_tree_cap_per_sink);
          if loading then
            charge ~comp:id ~category:Activity.Clock
              (2. *. ept (L.storage_clock_pin_cap tech kind ~width))
        end
        else if phase = s.Comp.s_phase then
          charge ~comp:id ~category:Activity.Clock
            (2. *. ept (L.storage_clock_cap tech kind ~width));
        if s.Comp.s_gated && loading <> load_prev.(id) then
          (* enable-line toggle on the gating cell *)
          charge ~comp:id ~category:Activity.Gating (ept tech.L.gating_cell_cap);
        load_prev.(id) <- loading;
        if loading then begin
          let v = value_of s.Comp.s_input in
          let h = B.hamming values.(id) v in
          if h > 0 then begin
            charge ~comp:id ~category:Activity.Storage_write
              (float h
              *. ept (L.storage_params tech kind).L.internal_cap_per_bit);
            charge ~comp:id ~category:Activity.Data
              (float h *. ept (L.storage_params tech kind).L.output_cap_per_bit);
            values.(id) <- v
          end
        end)
      (Datapath.storages datapath);
    record_trace cycle;
    (match observer with
    | None -> ()
    | Some f ->
        f
          {
            obs_cycle = cycle;
            obs_step = step;
            obs_phase = phase;
            obs_value = (fun id -> values.(id));
          });
    (* 5. Output taps. *)
    List.iter
      (fun tap ->
        if tap.Design.ready_step = step then
          current_outputs :=
            Var.Map.add tap.Design.var (value_of tap.Design.source)
              !current_outputs)
      (Design.output_taps design);
    if step = t_steps then all_outputs := !current_outputs :: !all_outputs
  done;
  let energy_pj = Activity.total activity in
  let sim_time_s = float total_cycles *. Clock.period clock in
  let power_mw = energy_pj *. 1e-12 /. sim_time_s *. 1e3 in
  {
    cycles = total_cycles;
    iterations;
    sim_time_s;
    energy_pj;
    power_mw;
    activity;
    inputs = Array.to_list envs;
    outputs = List.rev !all_outputs;
  }
