(* Compiled simulation kernel.

   [Simulator.run] interprets the design every cycle: control words are
   re-diffed with list scans, the combinational pass re-dispatches on
   [Comp.kind], and every energy coefficient is recomputed from the
   technology library.  This module compiles [(tech, design)] once into
   dense arrays so the per-cycle path is branch-light and (apart from
   user-visible output envs) allocation-free:

   - control words become per-step *deltas*: the mux-select and ALU-op
     writes that actually change state, plus the load-line toggle count
     and the resulting control-network energy, precomputed for the
     first period and for the steady state (the held-control state at
     the end of a period is a fixed point, so period 1 may differ but
     all later periods repeat);
   - per-step load and busy lines become bitsets indexed by component
     id, replacing [List.mem] / [List.mem_assoc];
   - the combinational order becomes an instruction array with encoded
     integer sources and hoisted energy coefficients (ALU internal
     energy is a table indexed by Hamming distance);
   - datapath values are raw int payloads; transitions are counted
     with [Bitvec.popcount] on xors;
   - activity accumulates into the flat [Activity.t] cells directly.

   On top of the precompilation the kernel skips quiescent components:
   change *stamps* record the cycle at which a value, mux select, or
   ALU op last changed, and a combinational instruction is evaluated
   only when one of its inputs carries this cycle's stamp (storage
   writes stamp the *next* cycle, which is when readers see them).
   Sequential elements are walked through a per-(step, phase) active
   list — a phase-divided partition's storages are touched only during
   their duty cycle (gated or loading storages are always active).
   Skipping is sound for energy because a skipped evaluation would have
   found a zero Hamming distance, and zero charges are dropped by
   [Activity.add] in both kernels; the emitted charge sequence — and
   therefore every float accumulation — is identical to the reference
   interpreter's, which is what the differential tests pin down. *)

open Mclock_dfg
open Mclock_rtl
module B = Mclock_util.Bitvec
module L = Mclock_tech.Library

(* Integer-coded ALU functions over raw payloads; semantics mirror
   [Op.eval] composed with [Bitvec] exactly (wrapping arithmetic,
   x/0 = all-ones, shift counts masked to 3 bits, 1/0 comparisons). *)
let op_code : Op.t -> int = function
  | Op.Add -> 0
  | Op.Sub -> 1
  | Op.Mul -> 2
  | Op.Div -> 3
  | Op.And -> 4
  | Op.Or -> 5
  | Op.Xor -> 6
  | Op.Not -> 7
  | Op.Shl -> 8
  | Op.Shr -> 9
  | Op.Gt -> 10
  | Op.Lt -> 11
  | Op.Eq -> 12

let eval_code code a b mask =
  match code with
  | 0 -> (a + b) land mask
  | 1 -> (a - b) land mask
  | 2 -> (a * b) land mask
  | 3 -> if b = 0 then mask else a / b
  | 4 -> a land b
  | 5 -> a lor b
  | 6 -> a lxor b
  | 7 -> lnot a land mask
  | 8 -> (a lsl (b land 7)) land mask
  | 9 -> a lsr (b land 7)
  | 10 -> if a > b then 1 else 0
  | 11 -> if a < b then 1 else 0
  | 12 -> if a = b then 1 else 0
  | _ -> assert false

(* Sources are encoded in one int: a component id ([>= 0], read from
   the value array) or a constant ([< 0], the masked value flipped
   below zero).  Constants never carry a change stamp. *)
let encode_src mask = function
  | Comp.From_comp id -> id
  | Comp.From_const c -> -1 - (c land mask)

let src_val values s = if s >= 0 then values.(s) else -1 - s

type step_ctrl = {
  sc_sel : (int * int) array; (* (mux, select) writes that change state *)
  sc_ops : (int * int) array; (* (alu, op code) writes that change state *)
  sc_ctrl_e : float; (* control-network energy of this step's changes *)
}

type instr =
  | I_mux of { mx_id : int; mx_choices : int array }
  | I_alu of {
      al_id : int;
      al_src_a : int;
      al_src_b : int; (* = al_src_a for unary ALUs *)
      al_isolated : bool;
      al_energy : float array; (* internal energy by Hamming distance *)
    }

type stor = {
  st_id : int;
  st_input : int;
  st_gated : bool;
  st_phase : int;
  st_clk2 : float; (* free-running clock energy per cycle *)
  st_pin2 : float; (* gated clock-pin energy per load *)
  st_wr_e : float; (* write energy per flipped bit *)
  st_out_e : float; (* output-net energy per flipped bit *)
}

type t = {
  clock : Clock.t;
  width : int;
  mask : int;
  t_steps : int;
  max_id : int;
  comps : Comp.t list; (* for VCD signal registration *)
  graph_inputs : (Var.t * int) list;
  plumbing : (Var.t * int * int) array; (* (var, port, register id | -1) *)
  first_ctrl : step_ctrl array; (* by step - 1; cycles 1..t_steps *)
  steady_ctrl : step_ctrl array; (* by step - 1; all later cycles *)
  loads_at : bool array array; (* step -> id -> load line high *)
  busy_at : bool array array; (* step -> id -> ALU scheduled *)
  default_ops : (int * int) array; (* ALU reset functions *)
  instrs : instr array; (* combinational order *)
  stors_at : stor array array array; (* step -> phase -> active storages *)
  taps_at : (Var.t * int) array array; (* step -> output taps ready *)
  e_port : float;
  e_mux_data : float;
  e_mux_sel : float;
  e_fu_out : float;
  e_iso : float;
  e_iso_idle : float; (* full-width isolation charge on busy->idle *)
  e_tree2 : float;
  e_gate : float;
}

let compile tech design =
  Mclock_obs.Obs.with_span ~cat:"sim" ~name:"sim.compile"
    ~attrs:[ ("design", Design.name design) ]
  @@ fun () ->
  let datapath = Design.datapath design in
  let control = Design.control design in
  let clock = Design.clock design in
  let width = Datapath.width datapath in
  let mask = (1 lsl width) - 1 in
  let t_steps = Control.num_steps control in
  let comps = Datapath.comps datapath in
  let max_id = List.fold_left (fun acc c -> max acc (Comp.id c)) 0 comps in
  let ept cap = L.energy_per_transition tech cap in
  let e_ctrl = ept tech.L.control_line_cap in
  let encode = encode_src mask in
  (* Mux arities, for validating control words at compile time. *)
  let n_choices = Array.make (max_id + 1) (-1) in
  List.iter
    (fun (c, m) ->
      n_choices.(Comp.id c) <- Array.length m.Comp.m_choices)
    (Datapath.muxes datapath);
  (* Replay the controller against the held-control state machine for
     two periods.  The state at the end of a period (last written value
     per line, initial value if never written) does not depend on the
     state at its start, so period 2's deltas are the steady state. *)
  let mux_sel = Array.make (max_id + 1) 0 in
  let alu_fn : Op.t option array = Array.make (max_id + 1) None in
  List.iter
    (fun (c, a) ->
      alu_fn.(Comp.id c) <- Some (List.hd (Op.Set.to_list a.Comp.a_fset)))
    (Datapath.alus datapath);
  let prev_loads = ref [] in
  let compile_step step =
    let word = Control.word control ~step in
    let sels =
      List.filter_map
        (fun (m, idx) ->
          if mux_sel.(m) = idx then None
          else begin
            if n_choices.(m) >= 0 && (idx < 0 || idx >= n_choices.(m)) then
              invalid_arg
                (Printf.sprintf
                   "Compiled.compile: step %d selects choice %d on mux %d (%d \
                    choices)"
                   step idx m n_choices.(m));
            mux_sel.(m) <- idx;
            Some (m, idx)
          end)
        word.Control.selects
    in
    let ops =
      List.filter_map
        (fun (a, op) ->
          match alu_fn.(a) with
          | Some prev when Op.equal prev op -> None
          | Some _ | None ->
              alu_fn.(a) <- Some op;
              Some (a, op_code op))
        word.Control.alu_ops
    in
    let loads = word.Control.loads in
    let load_line_changes =
      List.length (List.filter (fun x -> not (List.mem x !prev_loads)) loads)
      + List.length (List.filter (fun x -> not (List.mem x loads)) !prev_loads)
    in
    prev_loads := loads;
    let n = List.length sels + List.length ops + load_line_changes in
    {
      sc_sel = Array.of_list sels;
      sc_ops = Array.of_list ops;
      sc_ctrl_e = float_of_int n *. e_ctrl;
    }
  in
  let compile_period () =
    let dummy = { sc_sel = [||]; sc_ops = [||]; sc_ctrl_e = 0. } in
    let arr = Array.make t_steps dummy in
    for i = 0 to t_steps - 1 do
      arr.(i) <- compile_step (i + 1)
    done;
    arr
  in
  let first_ctrl = compile_period () in
  let steady_ctrl = compile_period () in
  (* Per-step load and busy bitsets. *)
  let loads_at = Array.make (t_steps + 1) [||] in
  let busy_at = Array.make (t_steps + 1) [||] in
  for step = 1 to t_steps do
    let word = Control.word control ~step in
    let ld = Array.make (max_id + 1) false in
    List.iter (fun id -> ld.(id) <- true) word.Control.loads;
    loads_at.(step) <- ld;
    let bs = Array.make (max_id + 1) false in
    List.iter (fun (id, _) -> bs.(id) <- true) word.Control.alu_ops;
    busy_at.(step) <- bs
  done;
  (* Combinational instruction stream. *)
  let instrs =
    Array.of_list
      (List.map
         (fun c ->
           let id = Comp.id c in
           match Comp.kind c with
           | Comp.Mux m ->
               I_mux { mx_id = id; mx_choices = Array.map encode m.Comp.m_choices }
           | Comp.Alu a ->
               let c_int = L.alu_internal_cap tech ~width a.Comp.a_fset in
               let energy =
                 Array.init
                   ((3 * width) + 1)
                   (fun h ->
                     ept (c_int *. (float_of_int h /. float_of_int (2 * width))))
               in
               I_alu
                 {
                   al_id = id;
                   al_src_a = encode a.Comp.a_src_a;
                   al_src_b =
                     (match a.Comp.a_src_b with
                     | Some s -> encode s
                     | None -> encode a.Comp.a_src_a);
                   al_isolated = a.Comp.a_isolated;
                   al_energy = energy;
                 }
           | Comp.Input _ | Comp.Storage _ -> assert false)
         (Datapath.combinational_order datapath))
  in
  (* Storage records and the (step, phase) active matrix: a storage is
     touched in a cycle iff it is gated (tree toggles every cycle), its
     partition is on duty (free-running clock), or it loads this step
     (write path).  Order within a list is ascending id, matching the
     reference's walk over [Datapath.storages]. *)
  let stor_list =
    List.map
      (fun (c, s) ->
        let kind = s.Comp.s_kind in
        let params = L.storage_params tech kind in
        {
          st_id = Comp.id c;
          st_input = encode s.Comp.s_input;
          st_gated = s.Comp.s_gated;
          st_phase = s.Comp.s_phase;
          st_clk2 = 2. *. ept (L.storage_clock_cap tech kind ~width);
          st_pin2 = 2. *. ept (L.storage_clock_pin_cap tech kind ~width);
          st_wr_e = ept params.L.internal_cap_per_bit;
          st_out_e = ept params.L.output_cap_per_bit;
        })
      (Datapath.storages datapath)
  in
  let phases = Clock.phases clock in
  let stors_at = Array.make (t_steps + 1) [||] in
  for step = 1 to t_steps do
    let row = Array.make (phases + 1) [||] in
    for phase = 1 to phases do
      row.(phase) <-
        Array.of_list
          (List.filter_map
             (fun st ->
               if
                 st.st_gated || st.st_phase = phase
                 || loads_at.(step).(st.st_id)
               then Some st
               else None)
             stor_list)
    done;
    stors_at.(step) <- row
  done;
  (* Input plumbing and output taps, as in the reference. *)
  let graph_inputs = Design.input_ports design in
  let input_register v =
    List.find_map
      (fun (c, s) ->
        if List.exists (Var.equal v) s.Comp.s_holds then Some (Comp.id c)
        else None)
      (Datapath.storages datapath)
  in
  let plumbing =
    Array.of_list
      (List.map
         (fun (v, port) ->
           (v, port, Option.value (input_register v) ~default:(-1)))
         graph_inputs)
  in
  let taps_at =
    Array.init (t_steps + 1) (fun step ->
        Array.of_list
          (List.filter_map
             (fun tap ->
               if tap.Design.ready_step = step then
                 Some (tap.Design.var, encode tap.Design.source)
               else None)
             (Design.output_taps design)))
  in
  let default_ops =
    Array.of_list
      (List.map
         (fun (c, a) ->
           (Comp.id c, op_code (List.hd (Op.Set.to_list a.Comp.a_fset))))
         (Datapath.alus datapath))
  in
  {
    clock;
    width;
    mask;
    t_steps;
    max_id;
    comps;
    graph_inputs;
    plumbing;
    first_ctrl;
    steady_ctrl;
    loads_at;
    busy_at;
    default_ops;
    instrs;
    stors_at;
    taps_at;
    e_port = ept tech.L.register.L.output_cap_per_bit;
    e_mux_data = ept tech.L.mux.L.data_cap_per_bit;
    e_mux_sel = ept tech.L.mux.L.select_cap;
    e_fu_out = ept tech.L.fu_output_cap_per_bit;
    e_iso = ept tech.L.isolation_cap_per_bit;
    e_iso_idle = float_of_int width *. ept tech.L.isolation_cap_per_bit;
    e_tree2 = 2. *. ept tech.L.clock_tree_cap_per_sink;
    e_gate = ept tech.L.gating_cell_cap;
  }

(* The complete mutable run state, factored out so a prefix run can be
   snapshotted and resumed.  [Simulator.result]-visible accumulations
   (activity, outputs) live here next to the kernel-internal arrays;
   everything is deep-copied by [copy_state], so a checkpoint is
   independent of the run that produced it. *)
type rstate = {
  s_values : int array;
  s_val_stamp : int array;
  s_ctrl_stamp : int array;
  s_op_stamp : int array;
  s_mux_sel : int array;
  s_alu_op : int array;
  s_alu_in_a : int array;
  s_alu_in_b : int array;
  s_alu_busy_prev : bool array;
  s_load_prev : bool array;
  s_activity : Activity.t;
  mutable s_outputs_rev : Golden.env list; (* completed iterations *)
  mutable s_current : Golden.env; (* taps of the iteration in progress *)
}

(* A checkpoint after [ck_iterations] computations.  The state is the
   one *one cycle before* the run's last ([ck_iterations * t_steps]):
   that last cycle is the only one whose effect depends on whether the
   run continues (a longer run applies the next computation's inputs
   to register-backed ports during it), so [resume] re-executes it
   with the extension-aware behavior while the prefix run executed it
   in final-cycle form for its own result.  Everything else — values,
   stamps, the activity accumulator, recorded outputs, the RNG
   position after drawing the prefix stimulus — transfers verbatim. *)
type checkpoint = {
  ck_width : int;
  ck_t_steps : int;
  ck_n : int; (* component array length, for shape validation *)
  ck_seed : int;
  ck_iterations : int;
  ck_stimulus : bool; (* prefix ran on a user-supplied stimulus *)
  ck_rng : int64; (* RNG state after drawing the prefix envs *)
  ck_envs : Golden.env array; (* the prefix's input envs *)
  ck_state : rstate;
}

let checkpoint_iterations ck = ck.ck_iterations

let fresh_state k env0 =
  let n = k.max_id + 1 in
  let st =
    {
      s_values = Array.make n 0;
      (* Change stamps: cycle at which a value / mux select / ALU
         function last changed.  Cycle 1 forces a full evaluation
         (reset values are not consistent with the netlist);
         afterwards an instruction whose inputs carry no current stamp
         would compute a zero Hamming distance, so skipping it drops
         only zero charges. *)
      s_val_stamp = Array.make n 0;
      s_ctrl_stamp = Array.make n 0;
      s_op_stamp = Array.make n 0;
      s_mux_sel = Array.make n 0;
      s_alu_op = Array.make n 0;
      s_alu_in_a = Array.make n 0;
      s_alu_in_b = Array.make n 0;
      s_alu_busy_prev = Array.make n false;
      s_load_prev = Array.make n false;
      s_activity = Activity.create ~max_comp:k.max_id ();
      s_outputs_rev = [];
      s_current = Var.Map.empty;
    }
  in
  Array.iter (fun (id, code) -> st.s_alu_op.(id) <- code) k.default_ops;
  (* Reset: ports and input registers preloaded with the first
     computation's values (no energy charged). *)
  Array.iter
    (fun (v, port, reg) ->
      let v0 = B.to_int (Var.Map.find v env0) in
      st.s_values.(port) <- v0;
      if reg >= 0 then st.s_values.(reg) <- v0)
    k.plumbing;
  st

let copy_state st =
  {
    s_values = Array.copy st.s_values;
    s_val_stamp = Array.copy st.s_val_stamp;
    s_ctrl_stamp = Array.copy st.s_ctrl_stamp;
    s_op_stamp = Array.copy st.s_op_stamp;
    s_mux_sel = Array.copy st.s_mux_sel;
    s_alu_op = Array.copy st.s_alu_op;
    s_alu_in_a = Array.copy st.s_alu_in_a;
    s_alu_in_b = Array.copy st.s_alu_in_b;
    s_alu_busy_prev = Array.copy st.s_alu_busy_prev;
    s_load_prev = Array.copy st.s_load_prev;
    s_activity = Activity.copy st.s_activity;
    s_outputs_rev = st.s_outputs_rev;
    s_current = st.s_current;
  }

(* Trace signals are looked up before registering so a resumed run can
   keep sampling into the dump its prefix started (the header freezes
   on the first sample). *)
let setup_signals k trace =
  match trace with
  | None -> []
  | Some { Simulator.vcd; _ } ->
      List.map
        (fun c ->
          let name = Printf.sprintf "%s_c%d" (Comp.name c) (Comp.id c) in
          ( Comp.id c,
            match Vcd.lookup vcd ~name with
            | Some s -> s
            | None -> Vcd.register vcd ~name ~width:k.width ))
        k.comps

(* Execute cycles [from_cycle .. to_cycle] of a run totalling
   [iterations] computations.  The body is the hot path; all state
   arrays are re-bound to locals once per range. *)
let exec_range k st ~envs ~iterations ?trace ?observer ~vcd_signals
    ~from_cycle ~to_cycle () =
  let width = k.width in
  let values = st.s_values in
  let val_stamp = st.s_val_stamp in
  let ctrl_stamp = st.s_ctrl_stamp in
  let op_stamp = st.s_op_stamp in
  let mux_sel = st.s_mux_sel in
  let alu_op = st.s_alu_op in
  let alu_in_a = st.s_alu_in_a in
  let alu_in_b = st.s_alu_in_b in
  let alu_busy_prev = st.s_alu_busy_prev in
  let load_prev = st.s_load_prev in
  let activity = st.s_activity in
  let charge ~comp ~category pj = Activity.add activity ~comp ~category pj in
  let record_trace cycle =
    match trace with
    | Some { Simulator.vcd; max_cycles } when cycle <= max_cycles ->
        Vcd.sample vcd ~time:cycle
          (List.map
             (fun (id, s) -> (s, B.create ~width values.(id)))
             vcd_signals)
    | Some _ | None -> ()
  in
  let apply_port ~cycle env (v, port, _) =
    let fresh = B.to_int (Var.Map.find v env) in
    let h = B.popcount (values.(port) lxor fresh) in
    if h > 0 then begin
      charge ~comp:port ~category:Activity.Data (float_of_int h *. k.e_port);
      values.(port) <- fresh;
      val_stamp.(port) <- cycle
    end
  in
  for cycle = from_cycle to to_cycle do
    let step = ((cycle - 1) mod k.t_steps) + 1 in
    let iter_idx = (cycle - 1) / k.t_steps in
    let phase = Clock.phase_of_cycle k.clock cycle in
    let first_eval = cycle = 1 in
    (* 1. Fresh inputs. *)
    if step = 1 then begin
      st.s_current <- Var.Map.empty;
      if iter_idx > 0 then
        Array.iter
          (fun ((_, _, reg) as p) ->
            if reg < 0 then apply_port ~cycle envs.(iter_idx) p)
          k.plumbing
    end;
    if step = k.t_steps && iter_idx + 1 < iterations then
      Array.iter
        (fun ((_, _, reg) as p) ->
          if reg >= 0 then apply_port ~cycle envs.(iter_idx + 1) p)
        k.plumbing;
    (* 2. Control deltas. *)
    let sc =
      (if cycle <= k.t_steps then k.first_ctrl else k.steady_ctrl).(step - 1)
    in
    Array.iter
      (fun (mux_id, idx) ->
        mux_sel.(mux_id) <- idx;
        ctrl_stamp.(mux_id) <- cycle;
        charge ~comp:mux_id ~category:Activity.Mux_select k.e_mux_sel)
      sc.sc_sel;
    Array.iter
      (fun (alu_id, code) ->
        alu_op.(alu_id) <- code;
        op_stamp.(alu_id) <- cycle)
      sc.sc_ops;
    charge ~comp:Activity.global_component ~category:Activity.Control
      sc.sc_ctrl_e;
    let loads = k.loads_at.(step) in
    let busy = k.busy_at.(step) in
    (* 3. Combinational propagation (skipping quiescent instructions). *)
    Array.iter
      (fun instr ->
        match instr with
        | I_mux { mx_id = id; mx_choices } ->
            let src = mx_choices.(mux_sel.(id)) in
            if
              first_eval || ctrl_stamp.(id) = cycle
              || (src >= 0 && val_stamp.(src) = cycle)
            then begin
              let v = src_val values src in
              let h = B.popcount (values.(id) lxor v) in
              if h > 0 then begin
                charge ~comp:id ~category:Activity.Mux_data
                  (float_of_int h *. k.e_mux_data);
                values.(id) <- v;
                val_stamp.(id) <- cycle
              end
            end
        | I_alu a ->
            let id = a.al_id in
            let is_busy = busy.(id) in
            if a.al_isolated && not is_busy then begin
              if alu_busy_prev.(id) then
                charge ~comp:id ~category:Activity.Isolation k.e_iso_idle;
              alu_busy_prev.(id) <- false
            end
            else begin
              let dirty =
                first_eval || op_stamp.(id) = cycle
                || (a.al_src_a >= 0 && val_stamp.(a.al_src_a) = cycle)
                || (a.al_src_b >= 0 && val_stamp.(a.al_src_b) = cycle)
                || (a.al_isolated && not alu_busy_prev.(id))
              in
              if dirty then begin
                let a_new = src_val values a.al_src_a in
                let b_new = src_val values a.al_src_b in
                let h =
                  B.popcount (alu_in_a.(id) lxor a_new)
                  + B.popcount (alu_in_b.(id) lxor b_new)
                  + if op_stamp.(id) = cycle then width else 0
                in
                if h > 0 then begin
                  charge ~comp:id ~category:Activity.Alu_internal
                    a.al_energy.(h);
                  let out = eval_code alu_op.(id) a_new b_new k.mask in
                  let ho = B.popcount (values.(id) lxor out) in
                  charge ~comp:id ~category:Activity.Data
                    (float_of_int ho *. k.e_fu_out);
                  if ho > 0 then begin
                    values.(id) <- out;
                    val_stamp.(id) <- cycle
                  end;
                  alu_in_a.(id) <- a_new;
                  alu_in_b.(id) <- b_new
                end;
                if a.al_isolated && is_busy then
                  charge ~comp:id ~category:Activity.Isolation
                    (float_of_int h *. k.e_iso)
              end;
              alu_busy_prev.(id) <- is_busy
            end)
      k.instrs;
    (* 4. Sequential update over this (step, phase)'s active list. *)
    Array.iter
      (fun st ->
        let id = st.st_id in
        let loading = loads.(id) in
        if st.st_gated then begin
          charge ~comp:id ~category:Activity.Clock k.e_tree2;
          if loading then charge ~comp:id ~category:Activity.Clock st.st_pin2
        end
        else if phase = st.st_phase then
          charge ~comp:id ~category:Activity.Clock st.st_clk2;
        if st.st_gated && loading <> load_prev.(id) then
          charge ~comp:id ~category:Activity.Gating k.e_gate;
        load_prev.(id) <- loading;
        if loading then begin
          let v = src_val values st.st_input in
          let h = B.popcount (values.(id) lxor v) in
          if h > 0 then begin
            charge ~comp:id ~category:Activity.Storage_write
              (float_of_int h *. st.st_wr_e);
            charge ~comp:id ~category:Activity.Data
              (float_of_int h *. st.st_out_e);
            values.(id) <- v;
            (* Readers see the write from the next cycle on. *)
            val_stamp.(id) <- cycle + 1
          end
        end)
      k.stors_at.(step).(phase);
    record_trace cycle;
    (match observer with
    | None -> ()
    | Some f ->
        f
          {
            Simulator.obs_cycle = cycle;
            obs_step = step;
            obs_phase = phase;
            obs_value = (fun id -> B.create ~width values.(id));
          });
    (* 5. Output taps. *)
    Array.iter
      (fun (v, src) ->
        st.s_current <-
          Var.Map.add v (B.create ~width (src_val values src)) st.s_current)
      k.taps_at.(step);
    if step = k.t_steps then st.s_outputs_rev <- st.s_current :: st.s_outputs_rev
  done

let finish k st ~iterations ~envs =
  let total_cycles = iterations * k.t_steps in
  let energy_pj = Activity.total st.s_activity in
  let sim_time_s = float_of_int total_cycles *. Clock.period k.clock in
  let power_mw = energy_pj *. 1e-12 /. sim_time_s *. 1e3 in
  {
    Simulator.cycles = total_cycles;
    iterations;
    sim_time_s;
    energy_pj;
    power_mw;
    activity = st.s_activity;
    inputs = Array.to_list envs;
    outputs = List.rev st.s_outputs_rev;
  }

let run ?(seed = 42) ?trace ?observer ?stimulus k ~iterations =
  if iterations < 1 then invalid_arg "Simulator.run: iterations must be >= 1";
  Mclock_obs.Obs.with_span ~cat:"sim" ~name:"sim.run"
    ~attrs:[ ("iterations", string_of_int iterations) ]
  @@ fun () ->
  let rng = Mclock_util.Rng.create seed in
  let envs =
    Simulator.materialize_stimulus ?stimulus rng ~inputs:k.graph_inputs
      ~width:k.width ~iterations
  in
  let st = fresh_state k envs.(0) in
  let vcd_signals = setup_signals k trace in
  exec_range k st ~envs ~iterations ?trace ?observer ~vcd_signals
    ~from_cycle:1 ~to_cycle:(iterations * k.t_steps) ();
  finish k st ~iterations ~envs

(* The checkpoint boundary sits one cycle before the end of the run:
   cycle [iterations * t_steps] is the only cycle a longer run executes
   differently (it applies the next computation's inputs to
   register-backed ports), so the snapshot is taken before it and
   [resume] re-executes it in extension form.  The charge sequence the
   resumed run then emits — and with it every float accumulation, every
   output env, the VCD sample stream — is exactly the uninterrupted
   run's, which is what the differential suite pins down.

   Consequence for tracing/observation: the prefix run samples cycles
   [1 .. boundary - 1] only, and a resume into the same VCD samples
   [boundary ..] — together byte-identical to an uninterrupted run's
   dump.  The prefix's *result* still covers all its cycles. *)
let run_with_checkpoint ?(seed = 42) ?trace ?observer ?stimulus k ~iterations =
  if iterations < 1 then invalid_arg "Simulator.run: iterations must be >= 1";
  Mclock_obs.Obs.with_span ~cat:"sim" ~name:"sim.run"
    ~attrs:
      [ ("iterations", string_of_int iterations); ("checkpoint", "true") ]
  @@ fun () ->
  let rng = Mclock_util.Rng.create seed in
  let envs =
    Simulator.materialize_stimulus ?stimulus rng ~inputs:k.graph_inputs
      ~width:k.width ~iterations
  in
  let rng_after = Mclock_util.Rng.state rng in
  let st = fresh_state k envs.(0) in
  let vcd_signals = setup_signals k trace in
  let boundary = iterations * k.t_steps in
  exec_range k st ~envs ~iterations ?trace ?observer ~vcd_signals
    ~from_cycle:1 ~to_cycle:(boundary - 1) ();
  let ck =
    {
      ck_width = k.width;
      ck_t_steps = k.t_steps;
      ck_n = k.max_id + 1;
      ck_seed = seed;
      ck_iterations = iterations;
      ck_stimulus = stimulus <> None;
      ck_rng = rng_after;
      ck_envs = envs;
      ck_state = copy_state st;
    }
  in
  exec_range k st ~envs ~iterations ~vcd_signals:[] ~from_cycle:boundary
    ~to_cycle:boundary ();
  (finish k st ~iterations ~envs, ck)

let resume ?trace ?observer ?stimulus k ck ~iterations =
  if ck.ck_width <> k.width || ck.ck_t_steps <> k.t_steps
     || ck.ck_n <> k.max_id + 1
  then invalid_arg "Compiled.resume: checkpoint does not match this kernel";
  if iterations <= ck.ck_iterations then
    invalid_arg "Compiled.resume: iterations must exceed the checkpoint's";
  let k1 = ck.ck_iterations in
  let envs, rng_after =
    match stimulus with
    | Some _ ->
        (* The prefix's stimulus must be the prefix of this one, or the
           checkpointed state is for a different input stream. *)
        let all =
          Simulator.materialize_stimulus ?stimulus
            (Mclock_util.Rng.create ck.ck_seed)
            ~inputs:k.graph_inputs ~width:k.width ~iterations
        in
        Array.iteri
          (fun i env ->
            if i < k1 && not (Var.Map.equal B.equal env ck.ck_envs.(i)) then
              invalid_arg
                "Compiled.resume: stimulus prefix differs from the \
                 checkpointed run's inputs")
          all;
        (all, ck.ck_rng)
    | None ->
        if ck.ck_stimulus then
          invalid_arg
            "Compiled.resume: the checkpointed run used an explicit \
             stimulus; pass ~stimulus covering the combined run";
        let rng = Mclock_util.Rng.of_state ck.ck_rng in
        let extra =
          Simulator.materialize_stimulus rng ~inputs:k.graph_inputs
            ~width:k.width ~iterations:(iterations - k1)
        in
        (Array.append ck.ck_envs extra, Mclock_util.Rng.state rng)
  in
  let st = copy_state ck.ck_state in
  let vcd_signals = setup_signals k trace in
  let boundary = iterations * k.t_steps in
  exec_range k st ~envs ~iterations ?trace ?observer ~vcd_signals
    ~from_cycle:(k1 * k.t_steps) ~to_cycle:(boundary - 1) ();
  let ck' =
    {
      ck with
      ck_iterations = iterations;
      ck_stimulus = ck.ck_stimulus || stimulus <> None;
      ck_rng = rng_after;
      ck_envs = envs;
      ck_state = copy_state st;
    }
  in
  exec_range k st ~envs ~iterations ~vcd_signals:[] ~from_cycle:boundary
    ~to_cycle:boundary ();
  (finish k st ~iterations ~envs, ck')

(* --- Checkpoint serialization ------------------------------------------ *)

module Checkpoint = struct
  module Binio = Mclock_util.Binio

  (* Bump on any layout change: version skew degrades to a decode
     error, which cache consumers treat as a miss. *)
  let magic = "MCLOCK-CKPT-v1\n"

  let write_env w env =
    Binio.W.int w (Var.Map.cardinal env);
    Var.Map.iter
      (fun v b ->
        Binio.W.string w (Var.name v);
        Binio.W.int w (B.width b);
        Binio.W.int w (B.to_int b))
      env

  let read_env r =
    let n = Binio.R.int r in
    let rec go acc i =
      if i = n then acc
      else
        let name = Binio.R.string r in
        let width = Binio.R.int r in
        let value = Binio.R.int r in
        go (Var.Map.add (Var.v name) (B.create ~width value) acc) (i + 1)
    in
    go Var.Map.empty 0

  let encode ck =
    Mclock_obs.Obs.with_span ~cat:"sim" ~name:"sim.ckpt_encode"
      ~attrs:[ ("iterations", string_of_int ck.ck_iterations) ]
    @@ fun () ->
    let w = Binio.W.create () in
    Binio.W.int w ck.ck_width;
    Binio.W.int w ck.ck_t_steps;
    Binio.W.int w ck.ck_n;
    Binio.W.int w ck.ck_seed;
    Binio.W.int w ck.ck_iterations;
    Binio.W.bool w ck.ck_stimulus;
    Binio.W.i64 w ck.ck_rng;
    Binio.W.int w (Array.length ck.ck_envs);
    Array.iter (write_env w) ck.ck_envs;
    let st = ck.ck_state in
    Binio.W.int_array w st.s_values;
    Binio.W.int_array w st.s_val_stamp;
    Binio.W.int_array w st.s_ctrl_stamp;
    Binio.W.int_array w st.s_op_stamp;
    Binio.W.int_array w st.s_mux_sel;
    Binio.W.int_array w st.s_alu_op;
    Binio.W.int_array w st.s_alu_in_a;
    Binio.W.int_array w st.s_alu_in_b;
    Binio.W.bool_array w st.s_alu_busy_prev;
    Binio.W.bool_array w st.s_load_prev;
    Binio.W.float_array w (Activity.raw_cells st.s_activity);
    Binio.W.float w (Activity.total st.s_activity);
    Binio.W.int w (List.length st.s_outputs_rev);
    List.iter (write_env w) st.s_outputs_rev;
    write_env w st.s_current;
    Binio.seal ~magic (Binio.W.contents w)

  let decode blob =
    Mclock_obs.Obs.with_span ~cat:"sim" ~name:"sim.ckpt_decode" @@ fun () ->
    match Binio.unseal ~magic blob with
    | Error e -> Error e
    | Ok payload -> (
        match
          let r = Binio.R.of_string payload in
          let ck_width = Binio.R.int r in
          let ck_t_steps = Binio.R.int r in
          let ck_n = Binio.R.int r in
          let ck_seed = Binio.R.int r in
          let ck_iterations = Binio.R.int r in
          let ck_stimulus = Binio.R.bool r in
          let ck_rng = Binio.R.i64 r in
          let n_envs = Binio.R.int r in
          if n_envs <> ck_iterations then
            raise (Binio.Corrupt "checkpoint: env count <> iterations");
          (* Explicit ascending loops: the reader is stateful and
             [Array.init]/[List.init] evaluation order is unspecified. *)
          let ck_envs = Array.make n_envs Var.Map.empty in
          for i = 0 to n_envs - 1 do
            ck_envs.(i) <- read_env r
          done;
          let int_arr () =
            let a = Binio.R.int_array r in
            if Array.length a <> ck_n then
              raise (Binio.Corrupt "checkpoint: bad state array length");
            a
          in
          let bool_arr () =
            let a = Binio.R.bool_array r in
            if Array.length a <> ck_n then
              raise (Binio.Corrupt "checkpoint: bad state array length");
            a
          in
          let s_values = int_arr () in
          let s_val_stamp = int_arr () in
          let s_ctrl_stamp = int_arr () in
          let s_op_stamp = int_arr () in
          let s_mux_sel = int_arr () in
          let s_alu_op = int_arr () in
          let s_alu_in_a = int_arr () in
          let s_alu_in_b = int_arr () in
          let s_alu_busy_prev = bool_arr () in
          let s_load_prev = bool_arr () in
          let cells = Binio.R.float_array r in
          let total = Binio.R.float r in
          let n_out = Binio.R.int r in
          let outputs_rev =
            let rec go i acc =
              if i = n_out then List.rev acc else go (i + 1) (read_env r :: acc)
            in
            go 0 []
          in
          let current = read_env r in
          Binio.R.expect_end r;
          {
            ck_width;
            ck_t_steps;
            ck_n;
            ck_seed;
            ck_iterations;
            ck_stimulus;
            ck_rng;
            ck_envs;
            ck_state =
              {
                s_values;
                s_val_stamp;
                s_ctrl_stamp;
                s_op_stamp;
                s_mux_sel;
                s_alu_op;
                s_alu_in_a;
                s_alu_in_b;
                s_alu_busy_prev;
                s_load_prev;
                s_activity = Activity.of_raw ~cells ~total;
                s_outputs_rev = outputs_rev;
                s_current = current;
              };
          }
        with
        | ck -> Ok ck
        | exception Binio.Corrupt m -> Error m
        | exception Invalid_argument m -> Error m)
end
