(** Cycle-accurate multi-phase RTL simulator with per-node transition
    counting (the stand-in for the paper's COMPASS power simulation).

    Runs [iterations] back-to-back computations of the behaviour with
    fresh random primary inputs each, charging switched energy per
    component and mechanism; reports average power. *)

type result = {
  cycles : int;
  iterations : int;
  sim_time_s : float;
  energy_pj : float;
  power_mw : float;
  activity : Activity.t;
  inputs : Golden.env list;  (** per computation *)
  outputs : Golden.env list;  (** per computation, same order *)
}

type trace_request = { vcd : Vcd.t; max_cycles : int }

type observation = {
  obs_cycle : int;
  obs_step : int;
  obs_phase : int;
  obs_value : int -> Mclock_util.Bitvec.t;
      (** component output at the end of the cycle *)
}

val materialize_stimulus :
  ?stimulus:Golden.env list ->
  Mclock_util.Rng.t ->
  inputs:(Mclock_dfg.Var.t * int) list ->
  width:int ->
  iterations:int ->
  Golden.env array
(** One input environment per computation: the validated/truncated user
    [stimulus] if given, else fresh uniform random values drawn from
    [rng] (inputs within an env in port-list order, env by env).  Both
    simulation kernels use this, so a given seed yields the same input
    stream under either.  Raises [Invalid_argument] on an unsuitable
    stimulus. *)

val run :
  ?seed:int ->
  ?trace:trace_request ->
  ?observer:(observation -> unit) ->
  ?stimulus:Golden.env list ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  iterations:int ->
  result
(** Deterministic for a given [seed].  [observer] fires after each
    cycle's sequential update (used by the Fig. 4 timing checks);
    [stimulus] supplies one input environment per computation instead
    of the default uniform random stream (see {!Stimulus}).  Raises
    [Invalid_argument] for [iterations < 1], an unsuitable stimulus, or
    a control word selecting a mux choice that does not exist. *)
