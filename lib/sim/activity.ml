(* Switched-energy bookkeeping for the simulator.

   Energy is accrued per (component, category) in picojoules; the
   categories separate the physical mechanisms so reports can show
   where a design style wins:
   - Clock: clock pins and clock tree;
   - Storage_write: internal write energy of storage elements;
   - Data: output-net transitions of any component;
   - Alu_internal: combinational switching inside ALUs;
   - Mux_data / Mux_select: mux datapath and select lines;
   - Control: controller output network (loads, function selects);
   - Isolation: operand-isolation cells;
   - Gating: clock-gating cells.

   Storage is a flat float array indexed [comp * num_categories + cat]
   (grown on demand), so [add] — called once per charge on the
   simulator's hottest path — is a bounds check and one array update,
   and the aggregate queries are single passes in deterministic index
   order.  All charges are non-negative, so a non-zero cell is exactly
   "this (comp, category) was ever charged". *)

type category =
  | Clock
  | Storage_write
  | Data
  | Alu_internal
  | Mux_data
  | Mux_select
  | Control
  | Isolation
  | Gating

let all_categories =
  [ Clock; Storage_write; Data; Alu_internal; Mux_data; Mux_select; Control; Isolation; Gating ]

let num_categories = List.length all_categories

let category_index = function
  | Clock -> 0
  | Storage_write -> 1
  | Data -> 2
  | Alu_internal -> 3
  | Mux_data -> 4
  | Mux_select -> 5
  | Control -> 6
  | Isolation -> 7
  | Gating -> 8

let category_name = function
  | Clock -> "clock"
  | Storage_write -> "storage-write"
  | Data -> "data"
  | Alu_internal -> "alu-internal"
  | Mux_data -> "mux-data"
  | Mux_select -> "mux-select"
  | Control -> "control"
  | Isolation -> "isolation"
  | Gating -> "gating"

type t = {
  mutable cells : float array; (* comp * num_categories + category -> pJ *)
  mutable total : float;
}

(* Component id 0 is reserved for design-global costs (the control
   network); real components start at 1. *)
let global_component = 0

let create ?(max_comp = 15) () =
  { cells = Array.make ((max_comp + 1) * num_categories) 0.; total = 0. }

let ensure t comp =
  let needed = (comp + 1) * num_categories in
  if needed > Array.length t.cells then begin
    let cells = Array.make (max needed (2 * Array.length t.cells)) 0. in
    Array.blit t.cells 0 cells 0 (Array.length t.cells);
    t.cells <- cells
  end

let add t ~comp ~category pj =
  if pj <> 0. then begin
    ensure t comp;
    let i = (comp * num_categories) + category_index category in
    t.cells.(i) <- t.cells.(i) +. pj;
    t.total <- t.total +. pj
  end

let total t = t.total

(* Checkpoint support.  [total] is the running float accumulation, not
   a derived quantity: re-summing the cells would reassociate the
   additions and drift from the uninterrupted run by ULPs, so copies
   and raw snapshots carry it verbatim. *)
let copy t = { cells = Array.copy t.cells; total = t.total }

let raw_cells t = Array.copy t.cells

let of_raw ~cells ~total = { cells = Array.copy cells; total }

let max_comp t = (Array.length t.cells / num_categories) - 1

let get t ~comp ~category =
  let i = (comp * num_categories) + category_index category in
  if i < Array.length t.cells then t.cells.(i) else 0.

(* One pass over the cells, summing per category in component order;
   categories nobody charged are omitted. *)
let by_category t =
  let sums = Array.make num_categories 0. in
  Array.iteri
    (fun i pj -> sums.(i mod num_categories) <- sums.(i mod num_categories) +. pj)
    t.cells;
  List.filter_map
    (fun cat ->
      let sum = sums.(category_index cat) in
      if sum = 0. then None else Some (cat, sum))
    all_categories

(* One pass per component: sum its category cells; components never
   charged are omitted.  Output is in ascending component order. *)
let by_component t =
  let acc = ref [] in
  for comp = max_comp t downto 0 do
    let base = comp * num_categories in
    let sum = ref 0. in
    for c = 0 to num_categories - 1 do
      sum := !sum +. t.cells.(base + c)
    done;
    if !sum <> 0. then acc := (comp, !sum) :: !acc
  done;
  !acc

let of_component t comp =
  let base = comp * num_categories in
  let sum = ref 0. in
  if base + num_categories <= Array.length t.cells then
    for c = 0 to num_categories - 1 do
      sum := !sum +. t.cells.(base + c)
    done;
  !sum

(* Cell-exact equality: same per-(component, category) energies.  Used
   by the compiled-vs-reference differential harness. *)
let equal_cells a b =
  let n = max (Array.length a.cells) (Array.length b.cells) in
  let cell t i = if i < Array.length t.cells then t.cells.(i) else 0. in
  let rec go i = i >= n || (Float.equal (cell a i) (cell b i) && go (i + 1)) in
  go 0
