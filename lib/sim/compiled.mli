(** Compiled simulation kernel: the design is precompiled into dense
    arrays (per-step control deltas, load/busy bitsets, an instruction
    stream for the combinational order, hoisted energy coefficients)
    and the cycle loop skips components whose inputs did not change —
    in particular, a phase-divided partition's storages are only walked
    during their duty cycle.

    The kernel is charge-for-charge equivalent to {!Simulator.run}: for
    the same seed (or stimulus) it produces bit-identical [energy_pj],
    per-(component, category) activity, and iteration outputs.
    {!Simulator.run} stays as the reference oracle; the differential
    tests pin the equivalence down across the workload catalog. *)

type t

val compile : Mclock_tech.Library.t -> Mclock_rtl.Design.t -> t
(** Precompile a design for [run].  Raises [Invalid_argument] if a
    control word selects a mux choice that does not exist (the
    reference interpreter raises at the offending cycle instead). *)

val run :
  ?seed:int ->
  ?trace:Simulator.trace_request ->
  ?observer:(Simulator.observation -> unit) ->
  ?stimulus:Golden.env list ->
  t ->
  iterations:int ->
  Simulator.result
(** Same contract as {!Simulator.run}; a compiled design can be run
    many times (sweeps, batches) without re-paying compilation. *)

type checkpoint
(** Complete kernel state after some number of computations: datapath
    values, change stamps, held controls, operand-isolation latches,
    the activity accumulator (cells and running total, verbatim), the
    recorded input/output envs and the RNG stream position.  A
    checkpoint is immutable — resuming from it never mutates it, so
    one checkpoint can seed many extensions. *)

val checkpoint_iterations : checkpoint -> int
(** The number of computations the checkpointed run covered. *)

val run_with_checkpoint :
  ?seed:int ->
  ?trace:Simulator.trace_request ->
  ?observer:(Simulator.observation -> unit) ->
  ?stimulus:Golden.env list ->
  t ->
  iterations:int ->
  Simulator.result * checkpoint
(** Like {!run}, returning additionally a checkpoint from which the
    run can be extended.  The result is identical to {!run}'s.

    Tracing/observation caveat: the final cycle of a run is the only
    cycle a longer run executes differently (it applies the next
    computation's inputs to register-backed input ports), so the
    checkpoint boundary sits just before it.  [trace] and [observer]
    therefore cover cycles [1 .. iterations*t_steps - 1] here; a
    {!resume} into the same VCD continues at [iterations*t_steps]
    (and in turn leaves its own final cycle untraced), so the
    concatenated dump/stream is byte-identical to an uninterrupted
    [run_with_checkpoint]'s at the combined count. *)

val resume :
  ?trace:Simulator.trace_request ->
  ?observer:(Simulator.observation -> unit) ->
  ?stimulus:Golden.env list ->
  t ->
  checkpoint ->
  iterations:int ->
  Simulator.result * checkpoint
(** [resume k ck ~iterations] extends the checkpointed run to
    [iterations] total computations (strictly more than the
    checkpoint's).  The returned result — [energy_pj], per-cell
    activity, [power_mw], input and output envs — is byte-identical to
    a fresh {!run} at [iterations] with the original seed, and the
    returned checkpoint extends the chain.

    If the checkpointed run drew its stimulus from the seed, the
    resumed run continues the same RNG stream and [stimulus] must be
    omitted; if it ran on an explicit stimulus, a stimulus covering
    the combined run must be supplied (its prefix is validated against
    the checkpointed inputs).  Raises [Invalid_argument] on a
    kernel/checkpoint shape mismatch, a non-increasing [iterations],
    or a stimulus violation. *)

(** Serialization: a sealed binary image (magic + MD5 + tagged
    payload) for content-addressed cache sidecars.  [decode] never
    raises — truncation, bit flips, version skew and structural damage
    all return [Error], which cache consumers treat as a miss. *)
module Checkpoint : sig
  val encode : checkpoint -> string

  val decode : string -> (checkpoint, string) result
  (** Exact inverse of {!encode} on well-formed input: resuming from a
      decoded checkpoint is byte-identical to resuming from the
      original. *)
end
