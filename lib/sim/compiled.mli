(** Compiled simulation kernel: the design is precompiled into dense
    arrays (per-step control deltas, load/busy bitsets, an instruction
    stream for the combinational order, hoisted energy coefficients)
    and the cycle loop skips components whose inputs did not change —
    in particular, a phase-divided partition's storages are only walked
    during their duty cycle.

    The kernel is charge-for-charge equivalent to {!Simulator.run}: for
    the same seed (or stimulus) it produces bit-identical [energy_pj],
    per-(component, category) activity, and iteration outputs.
    {!Simulator.run} stays as the reference oracle; the differential
    tests pin the equivalence down across the workload catalog. *)

type t

val compile : Mclock_tech.Library.t -> Mclock_rtl.Design.t -> t
(** Precompile a design for [run].  Raises [Invalid_argument] if a
    control word selects a mux choice that does not exist (the
    reference interpreter raises at the offending cycle instead). *)

val run :
  ?seed:int ->
  ?trace:Simulator.trace_request ->
  ?observer:(Simulator.observation -> unit) ->
  ?stimulus:Golden.env list ->
  t ->
  iterations:int ->
  Simulator.result
(** Same contract as {!Simulator.run}; a compiled design can be run
    many times (sweeps, batches) without re-paying compilation. *)
