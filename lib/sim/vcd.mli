(** Minimal VCD (Value Change Dump) writer for waveform inspection. *)

type signal
type t

val create : ?timescale:string -> unit -> t

val register : t -> name:string -> width:int -> signal
(** Must precede the first {!sample}. *)

val lookup : t -> name:string -> signal option
(** Find an already-registered signal by name.  A resumed simulation
    uses this to keep sampling into the dump its prefix run started
    (after the first {!sample} the header is frozen and {!register}
    raises). *)

val sample : t -> time:int -> (signal * Mclock_util.Bitvec.t) list -> unit
(** Emit changes at a time stamp (monotonically increasing). *)

val contents : t -> string
val save : t -> string -> unit
