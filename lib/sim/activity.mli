(** Switched-energy bookkeeping (pJ) per component and mechanism. *)

type category =
  | Clock
  | Storage_write
  | Data
  | Alu_internal
  | Mux_data
  | Mux_select
  | Control
  | Isolation
  | Gating

val all_categories : category list
val category_name : category -> string

type t

val global_component : int
(** Pseudo component id for design-global costs (control network). *)

val create : ?max_comp:int -> unit -> t
(** [create ()] starts with room for [max_comp] components and grows on
    demand; pass the design's component count to avoid regrowth. *)

val add : t -> comp:int -> category:category -> float -> unit
val total : t -> float

val copy : t -> t
(** Independent deep copy — charges to one never show in the other. *)

val raw_cells : t -> float array
(** A copy of the flat cell array ([comp * |categories| + category]),
    for checkpoint serialization.  Pair it with {!total}: the running
    total must be carried verbatim, not re-summed, to keep resumed
    accumulations bit-identical. *)

val of_raw : cells:float array -> total:float -> t
(** Rebuild from a {!raw_cells} / {!total} snapshot (copies [cells]). *)

val get : t -> comp:int -> category:category -> float
(** Energy charged to one (component, category) cell; 0 if never charged. *)

val by_category : t -> (category * float) list
val by_component : t -> (int * float) list
(** Per-component totals in ascending component order. *)

val of_component : t -> int -> float

val equal_cells : t -> t -> bool
(** Per-(component, category) exact float equality — the differential
    harness's acceptance predicate for compiled vs. reference kernels. *)
