(** Per-design evaluation reports and paper-style result tables. *)

type t = {
  label : string;
  design_name : string;
  power_mw : float;
  energy_per_computation_pj : float;
      (** total switched energy divided by the number of computations *)
  area : Area.breakdown;
  alus : string;
  memory_cells : int;
  mux_inputs : int;
  energy_by_category : (Mclock_sim.Activity.category * float) list;
  iterations : int;
  functional_ok : bool;
}

type kernel = [ `Compiled | `Reference ]
(** Simulation engine: the precompiled kernel (default — differentially
    tested bit-identical to the interpreter, just faster) or the
    reference interpreter {!Mclock_sim.Simulator.run}. *)

val evaluate :
  ?seed:int ->
  ?iterations:int ->
  ?kernel:kernel ->
  label:string ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Mclock_dfg.Graph.t ->
  t
(** Simulate (default 400 computations), verify against golden
    evaluation, and collect the paper's table columns. *)

val evaluate_resumable :
  ?seed:int ->
  ?iterations:int ->
  ?resume_from:Mclock_sim.Compiled.checkpoint ->
  label:string ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Mclock_dfg.Graph.t ->
  t * Mclock_sim.Compiled.checkpoint
(** Like {!evaluate} with the compiled kernel, additionally returning
    a checkpoint at [iterations] computations.  When [resume_from] is
    a checkpoint of the same design/seed at fewer computations, only
    the remaining computations are simulated; the report is
    byte-identical to a fresh {!evaluate} at the same total count.
    Raises [Invalid_argument] if the checkpoint does not match the
    design shape or does not precede [iterations] (cache layers should
    degrade such checkpoints to a miss instead of passing them in). *)

val evaluate_batch :
  pool:Mclock_exec.Pool.t ->
  ?seed:int ->
  ?iterations:int ->
  ?kernel:kernel ->
  Mclock_tech.Library.t ->
  (string * Mclock_rtl.Design.t * Mclock_dfg.Graph.t) list ->
  t list
(** [evaluate_batch ~pool tech cells] evaluates every
    [(label, design, graph)] cell across the pool's worker domains and
    returns the reports in cell order.  Each cell simulates from the
    same [seed], so the result is byte-identical to mapping
    {!evaluate} serially — the pool only changes wall-clock time. *)

val paper_table : ?title:string -> t list -> Mclock_util.Table.t
(** Power / Area / ALUs / Mem Cells / Mux In's rows, one per report. *)

val render_category_breakdown : t -> string

val reduction_vs : baseline:t -> t -> float
(** Power reduction (%) of a report vs. a baseline; positive = saves. *)

val area_increase_vs : baseline:t -> t -> float
