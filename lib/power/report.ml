(* Per-design evaluation reports and the paper-style tables built from
   them (Tables 1-4: Power [mW], Area [lambda^2], ALUs, Mem. Cells,
   Mux In's). *)

open Mclock_rtl

type t = {
  label : string;
  design_name : string;
  power_mw : float;
  energy_per_computation_pj : float;
  area : Area.breakdown;
  alus : string; (* paper notation, e.g. "2(+),1(*-)" *)
  memory_cells : int;
  mux_inputs : int;
  energy_by_category : (Mclock_sim.Activity.category * float) list;
  iterations : int;
  functional_ok : bool;
}

(* The compiled kernel is the default engine; it is differentially
   tested bit-identical to [Simulator.run], so the choice only affects
   wall-clock time.  [`Reference] keeps the interpreter reachable for
   cross-checks and benchmarks. *)
type kernel = [ `Compiled | `Reference ]

let simulate ~kernel ~seed tech design ~iterations =
  match kernel with
  | `Reference -> Mclock_sim.Simulator.run ~seed tech design ~iterations
  | `Compiled ->
      Mclock_sim.Compiled.run ~seed
        (Mclock_sim.Compiled.compile tech design)
        ~iterations

let of_sim ~label tech design graph ~iterations sim =
  let width = Datapath.width (Design.datapath design) in
  let verify = Mclock_sim.Verify.check ~width graph sim in
  let datapath = Design.datapath design in
  {
    label;
    design_name = Design.name design;
    power_mw = sim.Mclock_sim.Simulator.power_mw;
    energy_per_computation_pj =
      sim.Mclock_sim.Simulator.energy_pj /. float iterations;
    area = Area.of_design tech design;
    alus = Datapath.alu_inventory_string datapath;
    memory_cells = Datapath.memory_cells datapath;
    mux_inputs = Datapath.mux_input_count datapath;
    energy_by_category =
      Mclock_sim.Activity.by_category sim.Mclock_sim.Simulator.activity;
    iterations;
    functional_ok = Mclock_sim.Verify.ok verify;
  }

let evaluate ?(seed = 42) ?(iterations = 400) ?(kernel = `Compiled) ~label tech
    design graph =
  let sim = simulate ~kernel ~seed tech design ~iterations in
  of_sim ~label tech design graph ~iterations sim

(* Checkpointed evaluation: always the compiled kernel (checkpoints
   are a kernel-state snapshot), seeded fresh or extended from a prior
   checkpoint.  The report is byte-identical to [evaluate]'s at the
   same total iteration count — resuming only skips re-simulating the
   prefix. *)
let evaluate_resumable ?(seed = 42) ?(iterations = 400) ?resume_from ~label
    tech design graph =
  let kernel = Mclock_sim.Compiled.compile tech design in
  let sim, ck =
    match resume_from with
    | None -> Mclock_sim.Compiled.run_with_checkpoint ~seed kernel ~iterations
    | Some ck -> Mclock_sim.Compiled.resume kernel ck ~iterations
  in
  (of_sim ~label tech design graph ~iterations sim, ck)

(* Batch evaluation across the exec pool.  Each cell is an independent
   simulation from the same integer seed, so the reports are identical
   whatever the worker count; the pool only changes wall-clock time. *)
let evaluate_batch ~pool ?seed ?iterations ?kernel tech cells =
  (* The label callback runs once per task; indexing the list with
     [List.nth] made labelling O(rows^2).  One [Array.of_list] up front
     keeps each lookup O(1). *)
  let cells_arr = Array.of_list cells in
  Mclock_exec.Pool.map pool
    ~label:(fun i ->
      let label, design, _ = cells_arr.(i) in
      Printf.sprintf "%s/%s" (Design.name design) label)
    (fun _ (label, design, graph) ->
      evaluate ?seed ?iterations ?kernel ~label tech design graph)
    cells

let paper_table ?title reports =
  let table =
    Mclock_util.Table.create ?title
      ~header:
        [ "Design"; "Power [mW]"; "Area [l^2]"; "ALUs"; "Mem. Cells"; "Mux In's"; "OK" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Left; Right; Right; Left ]
      ()
  in
  List.iter
    (fun r ->
      Mclock_util.Table.add_row table
        [
          r.label;
          Printf.sprintf "%.2f" r.power_mw;
          Printf.sprintf "%.0f" r.area.Area.design_total;
          r.alus;
          string_of_int r.memory_cells;
          string_of_int r.mux_inputs;
          (if r.functional_ok then "yes" else "FAIL");
        ])
    reports;
  table

let render_category_breakdown r =
  let table =
    Mclock_util.Table.create
      ~title:(Printf.sprintf "energy breakdown: %s" r.label)
      ~header:[ "mechanism"; "energy [pJ]"; "share" ]
      ~aligns:Mclock_util.Table.[ Left; Right; Right ]
      ()
  in
  let total =
    Mclock_util.List_ext.sum_by_float snd r.energy_by_category
  in
  List.iter
    (fun (cat, pj) ->
      Mclock_util.Table.add_row table
        [
          Mclock_sim.Activity.category_name cat;
          Printf.sprintf "%.1f" pj;
          Printf.sprintf "%.1f%%" (100. *. pj /. total);
        ])
    r.energy_by_category;
  Mclock_util.Table.render table

(* Percentage power reduction of [r] vs a baseline (positive = saves). *)
let reduction_vs ~baseline r =
  100. *. (baseline.power_mw -. r.power_mw) /. baseline.power_mw

let area_increase_vs ~baseline r =
  100.
  *. (r.area.Area.design_total -. baseline.area.Area.design_total)
  /. baseline.area.Area.design_total
