(* Spans and trace export.

   One process-global trace buffer, off by default.  When tracing is
   disabled every instrumentation point is a single atomic load and a
   branch, so the hot paths carry the probes permanently; when a trace
   is started (`--trace` / `--trace-summary` on the CLI), spans record
   a start timestamp, a duration, the recording domain and thread, and
   a parent id.

   The parent id is ambient: each (domain, thread) pair owns a stack
   of open span ids, so nested `with_span` calls link up without any
   plumbing.  Crossing an execution boundary — the worker pool hands a
   closure to another domain — is explicit: the submitter captures
   `context ()` and the worker wraps the task in `with_context`, so
   worker-side spans nest under the span that submitted the job.

   Timestamps are quarantined by construction: they exist only inside
   the trace buffer and leave the process only through the trace file
   and the stderr summary, never through a result document.  The
   determinism tests pin this (same frontier bytes with tracing on and
   off).

   The exporter emits Chrome trace-event JSON ("X" complete events,
   microsecond timestamps, ts-sorted) loadable by chrome://tracing and
   Perfetto. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;  (** start, microseconds since trace start *)
  ev_dur_us : float;
  ev_domain : int;
  ev_thread : int;
  ev_id : int;
  ev_parent : int option;
  ev_attrs : (string * string) list;
}

type trace = {
  tr_mutex : Mutex.t;
  mutable tr_events_rev : event list;
  tr_clock : unit -> float;  (** seconds; injectable for tests *)
  tr_t0 : float;
  tr_next_id : int Atomic.t;
  (* ambient open-span stacks, keyed by (domain, thread) *)
  tr_ctx : (int * int, int list) Hashtbl.t;
}

type span = {
  sp_trace : trace;
  sp_name : string;
  sp_cat : string;
  sp_attrs : (string * string) list;
  sp_id : int;
  sp_parent : int option;
  sp_key : int * int;
  sp_t0 : float;
}

type ctx = int  (** a span id, opaque to callers *)

let current : trace option Atomic.t = Atomic.make None
let tracing () = Atomic.get current <> None

let start ?(clock = Unix.gettimeofday) () =
  let tr =
    {
      tr_mutex = Mutex.create ();
      tr_events_rev = [];
      tr_clock = clock;
      tr_t0 = clock ();
      tr_next_id = Atomic.make 1;
      tr_ctx = Hashtbl.create 16;
    }
  in
  Atomic.set current (Some tr)

let stop () =
  match Atomic.get current with
  | None -> []
  | Some tr ->
      Atomic.set current None;
      Mutex.lock tr.tr_mutex;
      let evs = List.rev tr.tr_events_rev in
      Mutex.unlock tr.tr_mutex;
      evs

let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

(* Stack operations run under tr_mutex. *)
let peek tr key =
  match Hashtbl.find_opt tr.tr_ctx key with
  | Some (top :: _) -> Some top
  | _ -> None

let push tr key id =
  let stack =
    match Hashtbl.find_opt tr.tr_ctx key with Some s -> s | None -> []
  in
  Hashtbl.replace tr.tr_ctx key (id :: stack)

(* Defensive pop: remove the topmost occurrence of [id], tolerating a
   caller that unwound out of order. *)
let pop tr key id =
  match Hashtbl.find_opt tr.tr_ctx key with
  | Some (top :: rest) when top = id -> Hashtbl.replace tr.tr_ctx key rest
  | Some stack ->
      let removed = ref false in
      let stack =
        List.filter
          (fun x ->
            if (not !removed) && x = id then begin
              removed := true;
              false
            end
            else true)
          stack
      in
      Hashtbl.replace tr.tr_ctx key stack
  | None -> ()

(* --- Span recording ----------------------------------------------------- *)

let begin_span ?(cat = "mclock") ?(attrs = []) ~name () =
  match Atomic.get current with
  | None -> None
  | Some tr ->
      let key = self_key () in
      let id = Atomic.fetch_and_add tr.tr_next_id 1 in
      Mutex.lock tr.tr_mutex;
      let parent = peek tr key in
      push tr key id;
      Mutex.unlock tr.tr_mutex;
      Some
        {
          sp_trace = tr;
          sp_name = name;
          sp_cat = cat;
          sp_attrs = attrs;
          sp_id = id;
          sp_parent = parent;
          sp_key = key;
          sp_t0 = tr.tr_clock ();
        }

let end_span ?(attrs = []) sp =
  match sp with
  | None -> ()
  | Some sp ->
      let tr = sp.sp_trace in
      let t1 = tr.tr_clock () in
      let ev =
        {
          ev_name = sp.sp_name;
          ev_cat = sp.sp_cat;
          ev_ts_us = (sp.sp_t0 -. tr.tr_t0) *. 1e6;
          ev_dur_us = Float.max 0. ((t1 -. sp.sp_t0) *. 1e6);
          ev_domain = fst sp.sp_key;
          ev_thread = snd sp.sp_key;
          ev_id = sp.sp_id;
          ev_parent = sp.sp_parent;
          ev_attrs = sp.sp_attrs @ attrs;
        }
      in
      Mutex.lock tr.tr_mutex;
      pop tr sp.sp_key sp.sp_id;
      tr.tr_events_rev <- ev :: tr.tr_events_rev;
      Mutex.unlock tr.tr_mutex

let with_span ?cat ?attrs ~name f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
      let sp = begin_span ?cat ?attrs ~name () in
      Fun.protect ~finally:(fun () -> end_span sp) f

(* --- Cross-execution-boundary parenting -------------------------------- *)

let context () =
  match Atomic.get current with
  | None -> None
  | Some tr ->
      let key = self_key () in
      Mutex.lock tr.tr_mutex;
      let p = peek tr key in
      Mutex.unlock tr.tr_mutex;
      p

let with_context ctx f =
  match (ctx, Atomic.get current) with
  | None, _ | _, None -> f ()
  | Some id, Some tr ->
      let key = self_key () in
      Mutex.lock tr.tr_mutex;
      push tr key id;
      Mutex.unlock tr.tr_mutex;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock tr.tr_mutex;
          pop tr key id;
          Mutex.unlock tr.tr_mutex)
        f

(* --- Chrome trace-event export ----------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Events are sorted by (ts, id) so the file is monotone in ts — the
   buffer itself is in completion order. *)
let sorted_events events =
  List.stable_sort
    (fun a b ->
      match Float.compare a.ev_ts_us b.ev_ts_us with
      | 0 -> Stdlib.compare a.ev_id b.ev_id
      | c -> c)
    events

let event_json pid ev =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
        \"pid\":%d,\"tid\":%d,\"args\":{\"id\":%d"
       (json_escape ev.ev_name) (json_escape ev.ev_cat) ev.ev_ts_us
       ev.ev_dur_us pid
       ((ev.ev_domain lsl 16) lor (ev.ev_thread land 0xffff))
       ev.ev_id);
  (match ev.ev_parent with
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"parent\":%d" p)
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    ev.ev_attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let to_chrome_json events =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let rec go = function
    | [] -> ()
    | [ ev ] -> Buffer.add_string buf (event_json pid ev)
    | ev :: rest ->
        Buffer.add_string buf (event_json pid ev);
        Buffer.add_string buf ",\n";
        go rest
  in
  go (sorted_events events);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* --- Text summary ------------------------------------------------------- *)

(* Top spans by cumulative time, then every registered counter with a
   non-zero value.  Goes to stderr only. *)
let summary ?(top = 15) events =
  let buf = Buffer.create 1024 in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let count, total, mx =
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some x -> x
        | None -> (0, 0., 0.)
      in
      Hashtbl.replace tbl ev.ev_name
        (count + 1, total +. ev.ev_dur_us, Float.max mx ev.ev_dur_us))
    events;
  let rows = Hashtbl.fold (fun name x acc -> (name, x) :: acc) tbl [] in
  let rows =
    List.stable_sort
      (fun (na, (_, ta, _)) (nb, (_, tb, _)) ->
        match Float.compare tb ta with
        | 0 -> String.compare na nb
        | c -> c)
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf "trace summary: %d events, %d distinct spans\n"
       (List.length events) (List.length rows));
  Buffer.add_string buf
    (Printf.sprintf "  %-32s %8s %12s %12s %12s\n" "span" "count"
       "total [ms]" "mean [ms]" "max [ms]");
  let shown = ref 0 in
  List.iter
    (fun (name, (count, total, mx)) ->
      if !shown < top then begin
        incr shown;
        Buffer.add_string buf
          (Printf.sprintf "  %-32s %8d %12.2f %12.3f %12.3f\n" name count
             (total /. 1000.)
             (total /. 1000. /. float_of_int count)
             (mx /. 1000.))
      end)
    rows;
  if List.length rows > top then
    Buffer.add_string buf
      (Printf.sprintf "  ... %d more span names\n" (List.length rows - top));
  let any_counters = ref false in
  List.iter
    (fun reg ->
      let nonzero =
        List.filter (fun (_, v) -> v <> 0) (Registry.snapshot reg)
      in
      if nonzero <> [] then begin
        if not !any_counters then begin
          any_counters := true;
          Buffer.add_string buf "counters:\n"
        end;
        List.iter
          (fun (name, v) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-32s %12d\n"
                 (Registry.name reg ^ "." ^ name)
                 v))
          nonzero
      end)
    (Registry.all ());
  Buffer.contents buf
