(* Named monotonic counters and gauges with atomic updates.

   A registry is a flat namespace of counters (ints, increment-only in
   normal operation) and gauges (floats, last-write-wins).  Handles
   are cheap to hold and safe to bump from any domain or thread; the
   registry mutex only guards the name table, never the hot update
   path.  Subsystems (store, pool, remote client, cache server) each
   own a registry and re-derive their legacy stats records from it, so
   one snapshot mechanism serves `cache stats`, `--stats-json` and the
   `--trace-summary` counter table alike. *)

type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

type t = {
  r_name : string;
  r_mutex : Mutex.t;
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
}

(* Every registry self-registers here (creation order) so a process-wide
   renderer — the trace summary — can enumerate all live counters
   without the subsystems knowing about each other. *)
let registries_mutex = Mutex.create ()
let registries : t list ref = ref []

let create ?(register = true) ~name () =
  let t =
    {
      r_name = name;
      r_mutex = Mutex.create ();
      r_counters = Hashtbl.create 16;
      r_gauges = Hashtbl.create 4;
    }
  in
  if register then begin
    Mutex.lock registries_mutex;
    registries := t :: !registries;
    Mutex.unlock registries_mutex
  end;
  t

let all () =
  Mutex.lock registries_mutex;
  let l = List.rev !registries in
  Mutex.unlock registries_mutex;
  l

let name t = t.r_name

(* --- Counters ----------------------------------------------------------- *)

let counter t cname =
  Mutex.lock t.r_mutex;
  let c =
    match Hashtbl.find_opt t.r_counters cname with
    | Some c -> c
    | None ->
        let c = { c_name = cname; c_cell = Atomic.make 0 } in
        Hashtbl.add t.r_counters cname c;
        c
  in
  Mutex.unlock t.r_mutex;
  c

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_cell by)
let value c = Atomic.get c.c_cell
let set c v = Atomic.set c.c_cell v
let counter_name c = c.c_name

let get t cname =
  Mutex.lock t.r_mutex;
  let v = Hashtbl.find_opt t.r_counters cname in
  Mutex.unlock t.r_mutex;
  Option.map value v

(* --- Gauges ------------------------------------------------------------- *)

let gauge t gname =
  Mutex.lock t.r_mutex;
  let g =
    match Hashtbl.find_opt t.r_gauges gname with
    | Some g -> g
    | None ->
        let g = { g_name = gname; g_cell = Atomic.make 0. } in
        Hashtbl.add t.r_gauges gname g;
        g
  in
  Mutex.unlock t.r_mutex;
  g

let set_gauge g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

(* --- Snapshots ---------------------------------------------------------- *)

let snapshot t =
  Mutex.lock t.r_mutex;
  let cs =
    Hashtbl.fold (fun _ c acc -> (c.c_name, value c) :: acc) t.r_counters []
  in
  Mutex.unlock t.r_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) cs

let gauges_snapshot t =
  Mutex.lock t.r_mutex;
  let gs =
    Hashtbl.fold
      (fun _ g acc -> (g.g_name, gauge_value g) :: acc)
      t.r_gauges []
  in
  Mutex.unlock t.r_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) gs

let reset t =
  Mutex.lock t.r_mutex;
  Hashtbl.iter (fun _ c -> set c 0) t.r_counters;
  Hashtbl.iter (fun _ g -> set_gauge g 0.) t.r_gauges;
  Mutex.unlock t.r_mutex
