(* Threat model: the peer is arbitrary bytes.  Parsing therefore never
   trusts a length it did not bound itself, never waits without a
   deadline, and never raises — internal helpers throw [Fail] and the
   public entry points catch it (plus any stray [Unix_error]) into the
   [error] type.  The happy path is a cache peer speaking the five
   routes in Server; everything else gets a 4xx or an [Error _]. *)

type meth = GET | HEAD | PUT

let meth_to_string = function GET -> "GET" | HEAD -> "HEAD" | PUT -> "PUT"

type limits = {
  max_request_line : int;
  max_uri : int;
  max_header_count : int;
  max_header_bytes : int;
  max_body : int;
}

let default_limits =
  {
    max_request_line = 2048;
    max_uri = 2048;
    max_header_count = 64;
    max_header_bytes = 8192;
    max_body = 16 * 1024 * 1024;
  }

type error =
  | Bad_request of string
  | Method_not_allowed of string
  | Too_large of string
  | Timeout of string
  | Io of string

let error_to_string = function
  | Bad_request m -> "bad request: " ^ m
  | Method_not_allowed m -> "method not allowed: " ^ m
  | Too_large m -> "too large: " ^ m
  | Timeout m -> "timeout: " ^ m
  | Io m -> "io: " ^ m

let status_of_error = function
  | Bad_request _ -> (400, "Bad Request")
  | Method_not_allowed _ -> (405, "Method Not Allowed")
  | Too_large _ -> (413, "Content Too Large")
  | Timeout _ -> (408, "Request Timeout")
  | Io _ -> (400, "Bad Request")

type request = {
  rq_meth : meth;
  rq_path : string;
  rq_headers : (string * string) list;
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;
  rs_body : string;
}

exception Fail of error

let fail e = raise (Fail e)

(* Timeouts are armed on the fd with SO_RCVTIMEO/SO_SNDTIMEO, so a
   stuck peer surfaces as EAGAIN/EWOULDBLOCK from read/write. *)
let io_error op = function
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT ->
      Timeout (op ^ ": deadline expired")
  | e -> Io (op ^ ": " ^ Unix.error_message e)

(* --- Buffered reader --------------------------------------------------- *)

type reader = {
  refill : bytes -> int -> int -> int;  (* like Unix.read; 0 = EOF *)
  buf : Buffer.t;  (* bytes read but not yet consumed *)
  chunk : bytes;
}

let reader_of_fd fd =
  {
    refill =
      (fun b pos len ->
        match Unix.read fd b pos len with
        | n -> n
        | exception Unix.Unix_error (e, _, _) -> fail (io_error "read" e));
    buf = Buffer.create 512;
    chunk = Bytes.create 4096;
  }

let reader_of_string s =
  let consumed = ref 0 in
  {
    refill =
      (fun b pos len ->
        let n = min len (String.length s - !consumed) in
        Bytes.blit_string s !consumed b pos n;
        consumed := !consumed + n;
        n);
    buf = Buffer.create 512;
    chunk = Bytes.create 4096;
  }

let refill_once r =
  let n = r.refill r.chunk 0 (Bytes.length r.chunk) in
  if n > 0 then Buffer.add_subbytes r.buf r.chunk 0 n;
  n

(* One CRLF-terminated line, at most [max] bytes before the CRLF.  A
   bare LF is a protocol violation, not a lenient alternative — being
   strict here closes request-smuggling ambiguity for free. *)
let read_line r ~max ~what =
  let rec find_lf from =
    let s = Buffer.contents r.buf in
    match String.index_from_opt s from '\n' with
    | Some i -> Some (s, i)
    | None ->
        if String.length s > max + 2 then
          fail (Too_large (what ^ " exceeds " ^ string_of_int max ^ " bytes"));
        let searched = String.length s in
        if refill_once r = 0 then None else find_lf searched
  in
  match find_lf 0 with
  | None ->
      if Buffer.length r.buf = 0 then fail (Io (what ^ ": connection closed"))
      else fail (Bad_request (what ^ ": truncated line"))
  | Some (s, i) ->
      if i = 0 || s.[i - 1] <> '\r' then
        fail (Bad_request (what ^ ": bare LF"));
      let line = String.sub s 0 (i - 1) in
      if String.length line > max then
        fail (Too_large (what ^ " exceeds " ^ string_of_int max ^ " bytes"));
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      line

let read_exact r ~len ~what =
  let rec grow () =
    if Buffer.length r.buf >= len then ()
    else if refill_once r = 0 then
      fail
        (Io
           (Printf.sprintf "%s: connection closed after %d of %d bytes" what
              (Buffer.length r.buf) len))
    else grow ()
  in
  grow ();
  let s = Buffer.contents r.buf in
  let body = String.sub s 0 len in
  Buffer.clear r.buf;
  Buffer.add_substring r.buf s len (String.length s - len);
  body

let read_to_eof r ~max ~what =
  let rec grow () =
    if Buffer.length r.buf > max then
      fail (Too_large (what ^ " exceeds " ^ string_of_int max ^ " bytes"))
    else if refill_once r = 0 then ()
    else grow ()
  in
  grow ();
  let s = Buffer.contents r.buf in
  Buffer.clear r.buf;
  s

(* --- Headers ----------------------------------------------------------- *)

let trim_ows s =
  let is_ows c = c = ' ' || c = '\t' in
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && is_ows s.[!i] do incr i done;
  while !j > !i && is_ows s.[!j - 1] do decr j done;
  String.sub s !i (!j - !i)

let parse_headers limits r =
  let rec loop acc count =
    let line = read_line r ~max:limits.max_header_bytes ~what:"header" in
    if String.equal line "" then List.rev acc
    else if count >= limits.max_header_count then
      fail
        (Too_large
           ("more than " ^ string_of_int limits.max_header_count ^ " headers"))
    else
      match String.index_opt line ':' with
      | None | Some 0 -> fail (Bad_request "header without a name")
      | Some i ->
          let name = String.lowercase_ascii (String.sub line 0 i) in
          if String.exists (fun c -> c = ' ' || c = '\t') name then
            fail (Bad_request "whitespace in header name");
          let value =
            trim_ows (String.sub line (i + 1) (String.length line - i - 1))
          in
          loop ((name, value) :: acc) (count + 1)
  in
  loop [] 0

(* Strict decimal, no sign, no whitespace; duplicates rejected. *)
let content_length limits headers =
  match List.filter (fun (n, _) -> String.equal n "content-length") headers with
  | [] -> None
  | _ :: _ :: _ -> fail (Bad_request "duplicate content-length")
  | [ (_, v) ] ->
      if
        String.length v = 0
        || String.length v > 18
        || not (String.for_all (function '0' .. '9' -> true | _ -> false) v)
      then fail (Bad_request ("unparseable content-length: " ^ v));
      let n = int_of_string v in
      if n > limits.max_body then
        fail
          (Too_large
             (Printf.sprintf "content-length %d exceeds max body %d" n
                limits.max_body));
      Some n

(* --- Request ----------------------------------------------------------- *)

let parse_request_exn limits r =
  let line = read_line r ~max:limits.max_request_line ~what:"request line" in
  let meth_s, path, version =
    match String.split_on_char ' ' line with
    | [ m; p; v ] when m <> "" && p <> "" -> (m, p, v)
    | _ -> fail (Bad_request ("malformed request line: " ^ line))
  in
  if not (String.equal version "HTTP/1.1" || String.equal version "HTTP/1.0")
  then fail (Bad_request ("unsupported version: " ^ version));
  let meth =
    match meth_s with
    | "GET" -> GET
    | "HEAD" -> HEAD
    | "PUT" -> PUT
    | m ->
        if String.for_all (function 'A' .. 'Z' -> true | _ -> false) m then
          fail (Method_not_allowed m)
        else fail (Bad_request ("malformed method: " ^ m))
  in
  if String.length path > limits.max_uri then
    fail (Too_large ("uri exceeds " ^ string_of_int limits.max_uri ^ " bytes"));
  if path.[0] <> '/' then fail (Bad_request "uri must be absolute path");
  let headers = parse_headers limits r in
  let body =
    match (meth, content_length limits headers) with
    | PUT, None -> fail (Bad_request "PUT without content-length")
    | _, None -> ""
    | _, Some n -> read_exact r ~len:n ~what:"request body"
  in
  { rq_meth = meth; rq_path = path; rq_headers = headers; rq_body = body }

let parse_request ?(limits = default_limits) r =
  match parse_request_exn limits r with
  | rq -> Ok rq
  | exception Fail e -> Error e
  | exception Unix.Unix_error (e, op, _) -> Error (io_error op e)

(* --- Response ---------------------------------------------------------- *)

let read_response_exn ?(head = false) limits r =
  let line = read_line r ~max:limits.max_request_line ~what:"status line" in
  let status, reason =
    match String.split_on_char ' ' line with
    | version :: code :: rest
      when String.length version >= 5
           && String.equal (String.sub version 0 5) "HTTP/" -> (
        match int_of_string_opt code with
        | Some s when s >= 100 && s <= 599 -> (s, String.concat " " rest)
        | _ -> fail (Bad_request ("malformed status code: " ^ code)))
    | _ -> fail (Bad_request ("malformed status line: " ^ line))
  in
  let headers = parse_headers limits r in
  let body =
    (* A HEAD answer advertises a Content-Length but carries no body
       bytes — reading it per the header would block until EOF-error. *)
    if head then ""
    else
      match content_length limits headers with
      | Some n -> read_exact r ~len:n ~what:"response body"
      | None -> read_to_eof r ~max:limits.max_body ~what:"response body"
  in
  { rs_status = status; rs_reason = reason; rs_headers = headers; rs_body = body }

let read_response ?(limits = default_limits) ?head r =
  match read_response_exn ?head limits r with
  | rs -> Ok rs
  | exception Fail e -> Error e
  | exception Unix.Unix_error (e, op, _) -> Error (io_error op e)

(* --- Writing ----------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go pos =
    if pos < len then
      match Unix.write fd b pos (len - pos) with
      | 0 -> fail (Io "write: connection closed")
      | n -> go (pos + n)
      | exception Unix.Unix_error (e, _, _) -> fail (io_error "write" e)
  in
  go 0

let render_headers b headers =
  List.iter
    (fun (name, value) ->
      Buffer.add_string b name;
      Buffer.add_string b ": ";
      Buffer.add_string b value;
      Buffer.add_string b "\r\n")
    headers

let write_response fd ?body_for_head rs =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" rs.rs_status rs.rs_reason);
  render_headers b rs.rs_headers;
  let declared =
    match body_for_head with
    | Some n -> n
    | None -> String.length rs.rs_body
  in
  Buffer.add_string b (Printf.sprintf "content-length: %d\r\n" declared);
  Buffer.add_string b "connection: close\r\n\r\n";
  if body_for_head = None then Buffer.add_string b rs.rs_body;
  match write_all fd (Buffer.contents b) with
  | () -> Ok ()
  | exception Fail e -> Error e

let write_request fd ?host rq =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %s HTTP/1.1\r\n" (meth_to_string rq.rq_meth) rq.rq_path);
  (match host with
  | Some h -> Buffer.add_string b (Printf.sprintf "host: %s\r\n" h)
  | None -> ());
  render_headers b rq.rq_headers;
  if rq.rq_meth = PUT || String.length rq.rq_body > 0 then
    Buffer.add_string b
      (Printf.sprintf "content-length: %d\r\n" (String.length rq.rq_body));
  Buffer.add_string b "connection: close\r\n\r\n";
  Buffer.add_string b rq.rq_body;
  match write_all fd (Buffer.contents b) with
  | () -> Ok ()
  | exception Fail e -> Error e

(* --- Client connect ---------------------------------------------------- *)

let set_io_timeouts fd timeout =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout

let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> fail (Io ("cannot resolve host: " ^ host))
  | ai :: _ -> ai.Unix.ai_addr
  | exception Unix.Unix_error (e, _, _) -> fail (io_error "getaddrinfo" e)

(* Non-blocking connect + select so a black-holed host cannot wedge us
   for the kernel's default (minutes); then blocking mode with
   SO_RCVTIMEO/SO_SNDTIMEO for the rest of the socket's life. *)
let connect_exn ~timeout ~host ~port =
  let addr = resolve host port in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.set_nonblock fd;
     (match Unix.connect fd addr with
     | () -> ()
     | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
       -> (
         match Unix.select [] [ fd ] [] timeout with
         | _, [], _ -> fail (Timeout "connect: deadline expired")
         | _ -> (
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some e -> fail (io_error "connect" e)))
     | exception Unix.Unix_error (e, _, _) -> fail (io_error "connect" e));
     Unix.clear_nonblock fd;
     set_io_timeouts fd timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  fd

let connect ~timeout ~host ~port =
  match connect_exn ~timeout ~host ~port with
  | fd -> Ok fd
  | exception Fail e -> Error e
  | exception Unix.Unix_error (e, op, _) -> Error (io_error op e)

let request ?limits ~timeout ~host ~port ~meth ~path ?(body = "") () =
  match connect ~timeout ~host ~port with
  | Error e -> Error e
  | Ok fd ->
      let result =
        let rq =
          { rq_meth = meth; rq_path = path; rq_headers = []; rq_body = body }
        in
        match write_request fd ~host rq with
        | Error _ as e -> e
        | Ok () -> read_response ?limits ~head:(meth = HEAD) (reader_of_fd fd)
      in
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      result

(* --- URL --------------------------------------------------------------- *)

type url = { u_host : string; u_port : int; u_prefix : string }

let parse_url s =
  let prefix = "http://" in
  let plen = String.length prefix in
  if String.length s <= plen || not (String.equal (String.sub s 0 plen) prefix)
  then Error ("remote url must start with http://: " ^ s)
  else
    let rest = String.sub s plen (String.length s - plen) in
    let authority, path =
      match String.index_opt rest '/' with
      | None -> (rest, "")
      | Some i ->
          (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    in
    let host, port =
      match String.index_opt authority ':' with
      | None -> (authority, Ok 80)
      | Some i ->
          let p = String.sub authority (i + 1) (String.length authority - i - 1) in
          ( String.sub authority 0 i,
            match int_of_string_opt p with
            | Some n when n > 0 && n < 65536 -> Ok n
            | _ -> Error ("invalid port in remote url: " ^ s) )
    in
    if String.equal host "" then Error ("empty host in remote url: " ^ s)
    else
      match port with
      | Error _ as e -> e
      | Ok port ->
          let prefix =
            (* normalize: no trailing slash, "" for bare root *)
            let p = path in
            let p =
              if String.length p > 0 && p.[String.length p - 1] = '/' then
                String.sub p 0 (String.length p - 1)
              else p
            in
            if String.equal p "/" then "" else p
          in
          Ok { u_host = host; u_port = port; u_prefix = prefix }
