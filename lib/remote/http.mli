(** A minimal, hostile-input-safe HTTP/1.1 codec plus blocking client
    and server primitives over Unix sockets.

    Deliberately tiny: the cache protocol needs exactly GET / HEAD /
    PUT with Content-Length bodies, so there is no chunked encoding,
    no keep-alive (every response carries [Connection: close]), no
    TLS, and no percent-decoding — a cache key is hex, anything else
    is rejected before it can mean something.

    Every parse is bounded by {!limits} before any allocation trusts
    the input: request-line length, method whitelist, URI length,
    header count, per-header size, and Content-Length range.  Every
    socket read and write runs under a deadline ([SO_RCVTIMEO] /
    [SO_SNDTIMEO]); an expired deadline surfaces as [Timeout], never
    as a hang.  No function in this module raises on malformed or
    hostile input — errors are values. *)

type meth = GET | HEAD | PUT

val meth_to_string : meth -> string

type limits = {
  max_request_line : int;  (** bytes, method + URI + version *)
  max_uri : int;
  max_header_count : int;
  max_header_bytes : int;  (** per header line *)
  max_body : int;  (** upper bound accepted for Content-Length *)
}

val default_limits : limits
(** 2 KiB request line / URI, 64 headers of at most 8 KiB each,
    16 MiB body. *)

type error =
  | Bad_request of string  (** malformed syntax — maps to 400 *)
  | Method_not_allowed of string  (** parseable but unsupported — 405 *)
  | Too_large of string  (** a limit tripped — 413 (or 431) *)
  | Timeout of string  (** a read/write/connect deadline expired — 408 *)
  | Io of string  (** connection reset, refused, EOF mid-message, ... *)

val error_to_string : error -> string

val status_of_error : error -> int * string
(** The response status a server should answer with. *)

type request = {
  rq_meth : meth;
  rq_path : string;  (** as received; no decoding beyond the limits *)
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;  (** ["" ] when absent *)
}

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;  (** names lowercased *)
  rs_body : string;
}

(** {1 Buffered reading} *)

type reader
(** A buffered byte source with strict CRLF line discipline.  Backed
    by a file descriptor or, for parser tests, by an in-memory
    string. *)

val reader_of_fd : Unix.file_descr -> reader
val reader_of_string : string -> reader

(** {1 Message codec} *)

val parse_request : ?limits:limits -> reader -> (request, error) result
(** Reads and validates one full request (headers and, when
    Content-Length says so, the body).  A PUT without a Content-Length
    is a [Bad_request] — the codec never reads a body to EOF on the
    server side. *)

val read_response :
  ?limits:limits -> ?head:bool -> reader -> (response, error) result
(** Reads one full response.  The body is read per Content-Length, or
    to EOF (bounded by [max_body]) when the peer omitted it.  [head]
    (default false) marks the answer to a HEAD request: the declared
    Content-Length is kept as a header but no body bytes are read. *)

val write_response :
  Unix.file_descr -> ?body_for_head:int -> response -> (unit, error) result
(** Serializes with [Content-Length] and [Connection: close] appended.
    [body_for_head] declares the length a HEAD answer advertises while
    sending no body bytes. *)

val write_request :
  Unix.file_descr -> ?host:string -> request -> (unit, error) result

(** {1 Client primitives} *)

val connect :
  timeout:float -> host:string -> port:int -> (Unix.file_descr, error) result
(** Non-blocking connect with a deadline, then read/write timeouts
    armed on the resulting socket for the rest of its life. *)

val request :
  ?limits:limits ->
  timeout:float ->
  host:string ->
  port:int ->
  meth:meth ->
  path:string ->
  ?body:string ->
  unit ->
  (response, error) result
(** One-shot: connect, send, read the response, close.  Never raises;
    never outlives the deadline by more than one socket operation. *)

(** {1 URL} *)

type url = { u_host : string; u_port : int; u_prefix : string }
(** [u_prefix] carries any path prefix (no trailing slash; [""] when
    the URL is bare). *)

val parse_url : string -> (url, string) result
(** Accepts [http://host[:port][/prefix]].  Anything else — other
    schemes, empty host, junk port — is an [Error]. *)
