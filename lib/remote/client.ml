(* The client's contract with the engine is absolute: [fetch] is a
   total function returning an option under a hard time bound.  All
   network pathology — dead hosts, slow hosts, lying hosts — collapses
   into [None], which the store reads as a plain miss and the engine
   never sees at all. *)

module Store = Mclock_explore.Store
module Checkpoint = Mclock_sim.Compiled.Checkpoint
module Json = Mclock_lint.Json

type stats = {
  remote_hits : int;
  remote_misses : int;
  remote_errors : int;
  remote_pushes : int;
  push_errors : int;
  breaker_trips : int;
  attempts : int;
  breaker_open : bool;
}

(* Counters live in a per-client `Mclock_obs.Registry` (name
   ["remote"]); only the breaker's state machine stays as plain
   mutable fields, since it is state, not telemetry. *)
type t = {
  u : Http.url;
  timeout : float;
  retries : int;
  backoff : float;
  breaker_threshold : int;
  breaker_cooldown : float option;
  limits : Http.limits;
  mutable consecutive_failures : int;
  mutable open_since : float option;  (* Some t = breaker open since t *)
  mutable jitter_state : int64;  (* xorshift64, private to this client *)
  obs : Mclock_obs.Registry.t;
  c_remote_hits : Mclock_obs.Registry.counter;
  c_remote_misses : Mclock_obs.Registry.counter;
  c_remote_errors : Mclock_obs.Registry.counter;
  c_remote_pushes : Mclock_obs.Registry.counter;
  c_push_errors : Mclock_obs.Registry.counter;
  c_breaker_trips : Mclock_obs.Registry.counter;
  c_attempts : Mclock_obs.Registry.counter;
}

let url t =
  if t.u.Http.u_port = 80 then
    Printf.sprintf "http://%s%s" t.u.Http.u_host t.u.Http.u_prefix
  else
    Printf.sprintf "http://%s:%d%s" t.u.Http.u_host t.u.Http.u_port
      t.u.Http.u_prefix

let create ?(timeout = 3.) ?(retries = 2) ?(backoff = 0.05)
    ?(breaker_threshold = 4) ?breaker_cooldown ?max_body ~url () =
  match Http.parse_url url with
  | Error m -> Error m
  | Ok u ->
      let limits =
        match max_body with
        | None -> Http.default_limits
        | Some n -> { Http.default_limits with Http.max_body = n }
      in
      let obs = Mclock_obs.Registry.create ~name:"remote" () in
      let counter = Mclock_obs.Registry.counter obs in
      Ok
        {
          u;
          timeout;
          retries = max 0 retries;
          backoff = Float.max 0. backoff;
          breaker_threshold = max 1 breaker_threshold;
          breaker_cooldown;
          limits;
          consecutive_failures = 0;
          open_since = None;
          jitter_state = 0x9E3779B97F4A7C15L;
          obs;
          c_remote_hits = counter "remote_hits";
          c_remote_misses = counter "remote_misses";
          c_remote_errors = counter "remote_errors";
          c_remote_pushes = counter "remote_pushes";
          c_push_errors = counter "push_errors";
          c_breaker_trips = counter "breaker_trips";
          c_attempts = counter "attempts";
        }

(* --- Jittered backoff -------------------------------------------------- *)

(* xorshift64: cheap, stateful per client, and deliberately not the
   stdlib Random so exploration determinism (seeded elsewhere) is
   untouched by how flaky the network happens to be. *)
let next_jitter t =
  let x = t.jitter_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.jitter_state <- x;
  (* uniform in [0,1) from the low 30 bits *)
  Int64.to_float (Int64.logand x 0x3FFFFFFFL) /. 1073741824.

let backoff_sleep t ~attempt =
  let base = t.backoff *. (2. ** float_of_int attempt) in
  let jittered = base *. (0.5 +. next_jitter t) in
  let capped = Float.min jittered 2.0 in
  if capped > 0. then Thread.delay capped

(* --- Breaker ----------------------------------------------------------- *)

(* `Closed: full retry budget.  `Probe: the cooldown elapsed, allow a
   single half-open attempt.  `Open: fail instantly. *)
let breaker_state t =
  match t.open_since with
  | None -> `Closed
  | Some since -> (
      match t.breaker_cooldown with
      | None -> `Open
      | Some cd ->
          if Unix.gettimeofday () -. since >= cd then `Probe else `Open)

let note_success t =
  t.consecutive_failures <- 0;
  t.open_since <- None

let note_failure t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  if t.consecutive_failures >= t.breaker_threshold && t.open_since = None
  then begin
    Mclock_obs.Registry.incr t.c_breaker_trips;
    t.open_since <- Some (Unix.gettimeofday ())
  end
  else if t.open_since <> None then
    (* a failed half-open probe re-arms the cooldown *)
    t.open_since <- Some (Unix.gettimeofday ())

(* --- Requests ---------------------------------------------------------- *)

let path_of t kind ~key =
  let seg = match kind with `Entry -> "entry" | `Ckpt -> "ckpt" in
  Printf.sprintf "%s/v1/%s/%s" t.u.Http.u_prefix seg key

let one_request t ~meth ~path ?body () =
  Mclock_obs.Registry.incr t.c_attempts;
  let sp =
    Mclock_obs.Obs.begin_span ~cat:"remote" ~name:"remote.request"
      ~attrs:
        [
          ( "method",
            match meth with
            | Http.GET -> "GET"
            | Http.HEAD -> "HEAD"
            | Http.PUT -> "PUT" );
          ("path", path);
        ]
      ()
  in
  let r =
    Http.request ~limits:t.limits ~timeout:t.timeout ~host:t.u.Http.u_host
      ~port:t.u.Http.u_port ~meth ~path ?body ()
  in
  Mclock_obs.Obs.end_span sp
    ~attrs:
      [
        ( "status",
          match r with
          | Ok rs -> string_of_int rs.Http.rs_status
          | Error _ -> "error" );
      ];
  r

let verify kind ~key body =
  match kind with
  | `Entry -> Store.decode_entry ~key body <> None
  | `Ckpt -> (
      match Checkpoint.decode body with Ok _ -> true | Error _ -> false)

(* One GET outcome: `Hit verified-bytes | `Miss (clean 404) | `Fail.
   A 200 with an unverifiable body is a `Fail — a peer serving garbage
   is indistinguishable from a broken one and should trip the breaker
   rather than burn a retry budget per key forever. *)
let attempt_fetch t ~kind ~key =
  match one_request t ~meth:Http.GET ~path:(path_of t kind ~key) () with
  | Error _ -> `Fail
  | Ok rs ->
      if rs.Http.rs_status = 404 then `Miss
      else if rs.Http.rs_status = 200 then
        if verify kind ~key rs.Http.rs_body then `Hit rs.Http.rs_body
        else `Fail
      else `Fail

let fetch t ~kind ~key =
  if not (Store.valid_key key) then None
  else
    let budget =
      match breaker_state t with
      | `Open -> 0
      | `Probe -> 1
      | `Closed -> t.retries + 1
    in
    if budget = 0 then None
    else
      let rec go attempt =
        if attempt >= budget then begin
          Mclock_obs.Registry.incr t.c_remote_errors;
          note_failure t;
          None
        end
        else begin
          if attempt > 0 then backoff_sleep t ~attempt:(attempt - 1);
          match attempt_fetch t ~kind ~key with
          | `Hit body ->
              note_success t;
              Mclock_obs.Registry.incr t.c_remote_hits;
              Some body
          | `Miss ->
              note_success t;
              Mclock_obs.Registry.incr t.c_remote_misses;
              None
          | `Fail -> go (attempt + 1)
        end
      in
      go 0

let push t ~kind ~key body =
  if Store.valid_key key then
    match breaker_state t with
    | `Open -> ()
    | `Probe | `Closed -> (
        match
          one_request t ~meth:Http.PUT ~path:(path_of t kind ~key) ~body ()
        with
        | Ok rs when rs.Http.rs_status >= 200 && rs.Http.rs_status < 300 ->
            note_success t;
            Mclock_obs.Registry.incr t.c_remote_pushes
        | Ok _ ->
            (* the server answered — alive but unwilling (read-only,
               rejected body).  Not a breaker event. *)
            Mclock_obs.Registry.incr t.c_push_errors
        | Error _ ->
            Mclock_obs.Registry.incr t.c_push_errors;
            note_failure t)

let ping t =
  match
    one_request t ~meth:Http.GET ~path:(t.u.Http.u_prefix ^ "/v1/healthz") ()
  with
  | Ok rs -> rs.Http.rs_status = 200
  | Error _ -> false

let remote_stats t =
  match
    one_request t ~meth:Http.GET ~path:(t.u.Http.u_prefix ^ "/v1/stats") ()
  with
  | Ok rs when rs.Http.rs_status = 200 -> (
      match Json.parse rs.Http.rs_body with Ok j -> Some j | Error _ -> None)
  | Ok _ | Error _ -> None

let push_payload = push

let tier ?(push = false) t =
  {
    Store.r_fetch = (fun kind ~key -> fetch t ~kind ~key);
    Store.r_push =
      (if push then Some (fun kind ~key body -> push_payload t ~kind ~key body)
       else None);
  }

let registry t = t.obs

(* Derived from the registry, so the record, `--stats-json` and the
   trace-summary counter table can never disagree. *)
let stats t =
  let v = Mclock_obs.Registry.value in
  {
    remote_hits = v t.c_remote_hits;
    remote_misses = v t.c_remote_misses;
    remote_errors = v t.c_remote_errors;
    remote_pushes = v t.c_remote_pushes;
    push_errors = v t.c_push_errors;
    breaker_trips = v t.c_breaker_trips;
    attempts = v t.c_attempts;
    breaker_open = (match breaker_state t with `Open -> true | _ -> false);
  }

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("url", Json.String (url t));
      ("remote_hits", Json.Int s.remote_hits);
      ("remote_misses", Json.Int s.remote_misses);
      ("remote_errors", Json.Int s.remote_errors);
      ("remote_pushes", Json.Int s.remote_pushes);
      ("push_errors", Json.Int s.push_errors);
      ("breaker_trips", Json.Int s.breaker_trips);
      ("attempts", Json.Int s.attempts);
      ("breaker_open", Json.Bool s.breaker_open);
    ]
