(* Serving philosophy: the store directory is just bytes that claim to
   be cache entries.  Nothing is served or accepted without passing
   the same verification gates the local store applies, so this
   process can sit on a shared directory, take hostile traffic, and
   the worst outcome is a 4xx/404 — never a poisoned peer and never a
   crash (each connection thread catches everything). *)

module Store = Mclock_explore.Store
module Checkpoint = Mclock_sim.Compiled.Checkpoint
module Json = Mclock_lint.Json

type stats = {
  s_connections : int;
  s_requests : int;
  s_entry_hits : int;
  s_entry_misses : int;
  s_ckpt_hits : int;
  s_ckpt_misses : int;
  s_puts_ok : int;
  s_puts_denied : int;
  s_puts_invalid : int;
  s_bad_requests : int;
  s_errors : int;
}

(* Counters live in a per-server `Mclock_obs.Registry` (name
   ["server"]) — atomics, so connection threads bump them without any
   shared lock; the {!stats} record is derived on read. *)
type t = {
  store : Store.t;
  host : string;
  bound_port : int;
  listener : Unix.file_descr;
  writable : bool;
  limits : Http.limits;
  io_timeout : float;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  obs : Mclock_obs.Registry.t;
  c_connections : Mclock_obs.Registry.counter;
  c_requests : Mclock_obs.Registry.counter;
  c_entry_hits : Mclock_obs.Registry.counter;
  c_entry_misses : Mclock_obs.Registry.counter;
  c_ckpt_hits : Mclock_obs.Registry.counter;
  c_ckpt_misses : Mclock_obs.Registry.counter;
  c_puts_ok : Mclock_obs.Registry.counter;
  c_puts_denied : Mclock_obs.Registry.counter;
  c_puts_invalid : Mclock_obs.Registry.counter;
  c_bad_requests : Mclock_obs.Registry.counter;
  c_errors : Mclock_obs.Registry.counter;
}

let bump c = Mclock_obs.Registry.incr c
let registry t = t.obs

let stats t =
  let v = Mclock_obs.Registry.value in
  {
    s_connections = v t.c_connections;
    s_requests = v t.c_requests;
    s_entry_hits = v t.c_entry_hits;
    s_entry_misses = v t.c_entry_misses;
    s_ckpt_hits = v t.c_ckpt_hits;
    s_ckpt_misses = v t.c_ckpt_misses;
    s_puts_ok = v t.c_puts_ok;
    s_puts_denied = v t.c_puts_denied;
    s_puts_invalid = v t.c_puts_invalid;
    s_bad_requests = v t.c_bad_requests;
    s_errors = v t.c_errors;
  }

let stats_json t =
  let s = stats t in
  Json.Obj
    [
      ("connections", Json.Int s.s_connections);
      ("requests", Json.Int s.s_requests);
      ("entry_hits", Json.Int s.s_entry_hits);
      ("entry_misses", Json.Int s.s_entry_misses);
      ("ckpt_hits", Json.Int s.s_ckpt_hits);
      ("ckpt_misses", Json.Int s.s_ckpt_misses);
      ("puts_ok", Json.Int s.s_puts_ok);
      ("puts_denied", Json.Int s.s_puts_denied);
      ("puts_invalid", Json.Int s.s_puts_invalid);
      ("bad_requests", Json.Int s.s_bad_requests);
      ("errors", Json.Int s.s_errors);
    ]

let port t = t.bound_port
let url t = Printf.sprintf "http://%s:%d" t.host t.bound_port

(* --- Responses --------------------------------------------------------- *)

let text_response status reason body =
  {
    Http.rs_status = status;
    rs_reason = reason;
    rs_headers = [ ("content-type", "text/plain") ];
    rs_body = body;
  }

let not_found = text_response 404 "Not Found" "not found\n"

let octet_response body =
  {
    Http.rs_status = 200;
    rs_reason = "OK";
    rs_headers = [ ("content-type", "application/octet-stream") ];
    rs_body = body;
  }

(* --- File access ------------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception (Sys_error _ | End_of_file) -> None
      in
      close_in_noerr ic;
      r

(* --- Routing ----------------------------------------------------------- *)

type route =
  | Entry of string  (** /v1/entry/<key> *)
  | Ckpt of string  (** /v1/ckpt/<key> *)
  | Stats
  | Healthz
  | Unknown

(* No percent-decoding happens anywhere, so "%2e%2e" stays literal and
   fails the hex-key check; a raw ".." or an empty segment likewise.
   Traversal cannot even form a path: only [Store.valid_key] keys are
   ever joined to the directory. *)
let route_of_path path =
  match String.split_on_char '/' path with
  | [ ""; "v1"; "entry"; key ] when Store.valid_key key -> Entry key
  | [ ""; "v1"; "ckpt"; key ] when Store.valid_key key -> Ckpt key
  | [ ""; "v1"; "stats" ] -> Stats
  | [ ""; "v1"; "healthz" ] -> Healthz
  | _ -> Unknown

(* --- Handlers ---------------------------------------------------------- *)

(* Serve bytes only if they verify; a corrupt on-disk file is
   indistinguishable from a missing one, exactly like a local miss. *)
let get_entry t ~key =
  match read_file (Store.entry_path t.store ~key) with
  | None -> None
  | Some text ->
      if Store.decode_entry ~key text <> None then Some text else None

let get_ckpt t ~key =
  match read_file (Store.checkpoint_path t.store ~key) with
  | None -> None
  | Some blob -> (
      match Checkpoint.decode blob with Ok _ -> Some blob | Error _ -> None)

let handle_get t ~key ~verified =
  match verified with
  | Some body ->
      bump (match key with `E -> t.c_entry_hits | `C -> t.c_ckpt_hits);
      octet_response body
  | None ->
      bump (match key with `E -> t.c_entry_misses | `C -> t.c_ckpt_misses);
      not_found

let handle_put t route (rq : Http.request) =
  if not t.writable then begin
    bump t.c_puts_denied;
    text_response 403 "Forbidden" "server is read-only\n"
  end
  else
    let accepted =
      match route with
      | Entry key -> (
          match Store.decode_entry ~key rq.Http.rq_body with
          | Some metrics ->
              (* Re-canonicalize through the store so what lands on
                 disk is exactly what a local run would have written. *)
              Store.store t.store ~key metrics;
              true
          | None -> false)
      | Ckpt key -> (
          match Checkpoint.decode rq.Http.rq_body with
          | Ok _ ->
              Store.store_checkpoint t.store ~key rq.Http.rq_body;
              true
          | Error _ -> false)
      | _ -> false
    in
    if accepted then begin
      bump t.c_puts_ok;
      text_response 200 "OK" "stored\n"
    end
    else begin
      bump t.c_puts_invalid;
      text_response 422 "Unprocessable Content" "body failed verification\n"
    end

let handle_request t (rq : Http.request) =
  bump t.c_requests;
  let sp =
    Mclock_obs.Obs.begin_span ~cat:"server" ~name:"server.request"
      ~attrs:
        [
          ( "method",
            match rq.Http.rq_meth with
            | Http.GET -> "GET"
            | Http.HEAD -> "HEAD"
            | Http.PUT -> "PUT" );
          ("path", rq.Http.rq_path);
        ]
      ()
  in
  let route = route_of_path rq.Http.rq_path in
  let response =
    match (rq.Http.rq_meth, route) with
    | (Http.GET | Http.HEAD), Healthz -> text_response 200 "OK" "ok\n"
    | Http.GET, Stats ->
        {
          Http.rs_status = 200;
          rs_reason = "OK";
          rs_headers = [ ("content-type", "application/json") ];
          rs_body = Json.to_string_pretty (stats_json t) ^ "\n";
        }
    | (Http.GET | Http.HEAD), Entry key ->
        handle_get t ~key:`E ~verified:(get_entry t ~key)
    | (Http.GET | Http.HEAD), Ckpt key ->
        handle_get t ~key:`C ~verified:(get_ckpt t ~key)
    | Http.PUT, (Entry _ | Ckpt _) -> handle_put t route rq
    | _, Unknown ->
        bump t.c_bad_requests;
        not_found
    | _ ->
        bump t.c_bad_requests;
        text_response 405 "Method Not Allowed" "method not allowed\n"
  in
  Mclock_obs.Obs.end_span sp
    ~attrs:[ ("status", string_of_int response.Http.rs_status) ];
  response

(* --- Connection loop --------------------------------------------------- *)

let handle_connection t fd =
  bump t.c_connections;
  let cleanup () =
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
  in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.io_timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.io_timeout;
     let reader = Http.reader_of_fd fd in
     let response, head =
       match Http.parse_request ~limits:t.limits reader with
       | Ok rq -> (handle_request t rq, rq.Http.rq_meth = Http.HEAD)
       | Error e ->
           bump t.c_bad_requests;
           let status, reason = Http.status_of_error e in
           (text_response status reason (Http.error_to_string e ^ "\n"), false)
     in
     let write =
       if head then
         Http.write_response fd
           ~body_for_head:(String.length response.Http.rs_body)
           { response with Http.rs_body = "" }
       else Http.write_response fd response
     in
     match write with
     | Ok () -> ()
     | Error _ -> bump t.c_errors
   with _ -> bump t.c_errors);
  cleanup ()

let accept_loop t =
  while t.running do
    match Unix.accept t.listener with
    | fd, _ -> ignore (Thread.create (fun () -> handle_connection t fd) ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listener closed by stop *)
        ()
    | exception Unix.Unix_error (_, _, _) -> Thread.yield ()
  done

(* --- Lifecycle --------------------------------------------------------- *)

let create ?(host = "127.0.0.1") ?(port = 0) ?(writable = false) ?max_body
    ?(io_timeout = 10.) ~dir () =
  (* A peer vanishing mid-write must be an EPIPE error, not a signal. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let limits =
    match max_body with
    | None -> Http.default_limits
    | Some n -> { Http.default_limits with Http.max_body = n }
  in
  match
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt listener Unix.SO_REUSEADDR true;
       Unix.bind listener addr;
       Unix.listen listener 64
     with e ->
       (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
       raise e);
    let bound_port =
      match Unix.getsockname listener with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    in
    let obs = Mclock_obs.Registry.create ~name:"server" () in
    let counter = Mclock_obs.Registry.counter obs in
    {
      store = Store.open_ ~dir ();
      host;
      bound_port;
      listener;
      writable;
      limits;
      io_timeout;
      running = true;
      accept_thread = None;
      obs;
      c_connections = counter "connections";
      c_requests = counter "requests";
      c_entry_hits = counter "entry_hits";
      c_entry_misses = counter "entry_misses";
      c_ckpt_hits = counter "ckpt_hits";
      c_ckpt_misses = counter "ckpt_misses";
      c_puts_ok = counter "puts_ok";
      c_puts_denied = counter "puts_denied";
      c_puts_invalid = counter "puts_invalid";
      c_bad_requests = counter "bad_requests";
      c_errors = counter "errors";
    }
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, op, _) ->
      Error (Printf.sprintf "cannot serve on %s:%d: %s: %s" host port op
               (Unix.error_message e))
  | exception Failure m -> Error m

let serve t = accept_loop t

let start t = t.accept_thread <- Some (Thread.create accept_loop t)

let stop t =
  if t.running then begin
    t.running <- false;
    (* Closing the listener makes the blocking accept fail, which the
       loop reads as shutdown. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
    match t.accept_thread with
    | Some th ->
        t.accept_thread <- None;
        Thread.join th
    | None -> ()
  end
