(** The resilient cache client: turns a remote cache server into a
    {!Mclock_explore.Store.remote} read-through tier that can never
    fail or stall an exploration.

    Failure containment, in layers:

    - every request runs under a per-request [timeout] (connect and
      each read/write);
    - a failed request is retried up to [retries] extra times with
      jittered exponential backoff (deterministic xorshift jitter —
      no global RNG state is touched);
    - [breaker_threshold] consecutive exhausted fetches open a circuit
      breaker: further fetches return instantly as misses without
      touching the network.  By default the breaker stays open for the
      rest of the session (a dead remote stays dead); passing
      [breaker_cooldown] enables half-open probing — after the
      cooldown one single-attempt probe is allowed, and a success
      closes the breaker again.

    A 404 is a *successful* request (the remote just doesn't have the
    key) — it resets the consecutive-failure count and is counted as a
    remote miss, not an error.  A 200 whose body fails verification is
    treated exactly like a network failure: the bytes never reach the
    local store.  Checkpoint bodies are decoded here (the store treats
    them as opaque); entry bodies are verified again by the store. *)

type t

val create :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?max_body:int ->
  url:string ->
  unit ->
  (t, string) result
(** Defaults: 3s timeout, 2 retries (3 attempts), 50ms base backoff
    (doubling, jittered, capped at 2s), breaker at 4 consecutive
    failures, no cooldown (open = session-long).  [Error] only on an
    unparseable [url]. *)

val url : t -> string

val fetch : t -> kind:[ `Entry | `Ckpt ] -> key:string -> string option
(** The read-through hook: [Some bytes] only for a 200 whose body
    verifies for [key].  Every other outcome — 404, timeout, refused,
    garbled body, breaker open — is [None].  Never raises; never
    blocks past [timeout * (retries+1)] plus backoff. *)

val push : t -> kind:[ `Entry | `Ckpt ] -> key:string -> string -> unit
(** Best-effort PUT.  A 4xx answer (read-only server, rejected body)
    counts as [push_errors] but not toward the breaker — the remote is
    alive, it just said no; network failures count toward both. *)

val ping : t -> bool
(** One GET /v1/healthz, single attempt, bypassing the breaker. *)

val remote_stats : t -> Mclock_lint.Json.t option
(** GET /v1/stats from the server, parsed; [None] on any failure. *)

val tier : ?push:bool -> t -> Mclock_explore.Store.remote
(** Package this client as a store tier.  [push] (default false)
    enables write-back of freshly stored payloads. *)

type stats = {
  remote_hits : int;
  remote_misses : int;  (** clean 404s *)
  remote_errors : int;  (** fetches that exhausted their attempts *)
  remote_pushes : int;
  push_errors : int;
  breaker_trips : int;
  attempts : int;  (** individual HTTP requests sent (pushes included) *)
  breaker_open : bool;
}

val stats : t -> stats
val stats_json : t -> Mclock_lint.Json.t

val registry : t -> Mclock_obs.Registry.t
(** The client's metrics registry (name ["remote"]); {!stats} is a
    pure read of its counters (plus the live breaker state). *)
