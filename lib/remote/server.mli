(** The cache server: exposes a {!Mclock_explore.Store} directory over
    the {!Http} codec, one system thread per connection.

    Routes (all under a fixed [/v1] prefix):

    {v
    GET/HEAD /v1/entry/<key>   verified metrics entry, 404 on any doubt
    GET/HEAD /v1/ckpt/<key>    verified checkpoint sidecar
    PUT      /v1/entry/<key>   store a verified entry   (requires writable)
    PUT      /v1/ckpt/<key>    store a verified sidecar (requires writable)
    GET      /v1/stats         serving counters as JSON
    GET/HEAD /v1/healthz       liveness probe, body "ok\n"
    v}

    The server never trusts its own disk or its peers: every served
    body is re-verified ([Store.decode_entry] for entries,
    [Compiled.Checkpoint.decode] for sidecars) before a 200, and every
    accepted PUT body is verified before anything is written — a
    garbled upload is a 422, a corrupt on-disk file is a 404, and keys
    are validated with [Store.valid_key] so traversal attempts cannot
    name a path.  Request parsing failures map to 400/405/408/413 per
    {!Http.status_of_error}.  PUT against a read-only server is 403.

    Threads are cheap here because connections are short-lived
    (connection-close protocol) and the payloads are small.  Serving
    counters are atomic cells in an [Mclock_obs.Registry], so
    connection threads bump them without any shared lock. *)

type t

val create :
  ?host:string ->
  ?port:int ->
  ?writable:bool ->
  ?max_body:int ->
  ?io_timeout:float ->
  dir:string ->
  unit ->
  (t, string) result
(** Binds and listens (default host 127.0.0.1; port 0 — the default —
    lets the kernel pick, see {!port}).  [writable] (default false)
    enables PUT.  [io_timeout] (default 10s) bounds every socket
    read/write, so a stalled client cannot pin its thread forever. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val url : t -> string
(** [http://<host>:<port>] for handing to {!Client.create}. *)

val start : t -> unit
(** Runs the accept loop in a background thread and returns. *)

val serve : t -> unit
(** Runs the accept loop on the calling thread; returns after {!stop}
    is called from elsewhere. *)

val stop : t -> unit
(** Stops accepting, closes the listener, and joins the accept thread
    if {!start} was used.  In-flight connection threads finish on
    their own (each is deadline-bounded).  Idempotent. *)

type stats = {
  s_connections : int;
  s_requests : int;
  s_entry_hits : int;
  s_entry_misses : int;
  s_ckpt_hits : int;
  s_ckpt_misses : int;
  s_puts_ok : int;
  s_puts_denied : int;  (** PUT without [writable] *)
  s_puts_invalid : int;  (** body failed verification *)
  s_bad_requests : int;  (** 4xx from parsing/routing *)
  s_errors : int;  (** handler-side I/O failures *)
}

val stats : t -> stats
val stats_json : t -> Mclock_lint.Json.t

val registry : t -> Mclock_obs.Registry.t
(** The server's metrics registry (name ["server"]); {!stats} and
    {!stats_json} are pure reads of its counters. *)
