(** A complete RTL design: datapath + controller + clocking + style. *)

open Mclock_dfg

type style = {
  storage_kind : Mclock_tech.Library.storage_kind;
  clock_gated : bool;
  operand_isolation : bool;
  latched_control : bool;
  cross_partition_transfers : bool;
      (** the design claims the integrated method's transfer discipline
          (paper §4.2, step 1): every ALU's resolved operands are
          latched in at most one clock partition, stragglers having
          been copied over through transfer registers.  The split
          method (§4.1) waives this — it wires cross-partition operands
          directly — so it sets the flag false and the MC006 lint rule
          does not apply.  Vacuous for single-clock designs. *)
}

val conventional_style : style
(** Flip-flops, free-running clock — the paper's "Conven. Alloc.
    (Non-Gated Clock)". *)

val gated_style : style
(** Flip-flops with clock gating and operand isolation — "Conven.
    Alloc. (Gated Clock)". *)

val multiclock_style : style
(** Latches, latched control lines — the paper's scheme ("1 Clock",
    "2 Clocks", "3 Clocks" rows). *)

type output_tap = {
  var : Var.t;
  source : Comp.source;
  ready_step : int;  (** schedule step at whose end the value is valid *)
}

type t

val create :
  name:string ->
  behaviour:string ->
  datapath:Datapath.t ->
  control:Control.t ->
  clock:Clock.t ->
  style:style ->
  input_ports:(Var.t * int) list ->
  output_taps:output_tap list ->
  t
(** Validates the datapath; raises on an empty controller. *)

val name : t -> string
val behaviour : t -> string
val datapath : t -> Datapath.t
val control : t -> Control.t
val clock : t -> Clock.t
val style : t -> style
val input_ports : t -> (Var.t * int) list
val output_taps : t -> output_tap list
val num_steps : t -> int
val input_port : t -> Var.t -> int option

val style_label : t -> string
(** e.g. "gated/FF", "3-clock/latch". *)

val pp : Format.formatter -> t -> unit
