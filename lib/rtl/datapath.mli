(** The datapath: a wired collection of components plus output taps. *)

open Mclock_dfg

type t

exception Invalid of string

val create : width:int -> t

val width : t -> int

val add_input : t -> Var.t -> int
(** Returns the new component's id (as do all [add_*]). *)

val add_storage :
  t ->
  name:string ->
  kind:Mclock_tech.Library.storage_kind ->
  phase:int ->
  input:Comp.source ->
  gated:bool ->
  holds:Var.t list ->
  int

val add_alu :
  t ->
  name:string ->
  fset:Op.Set.t ->
  phase:int ->
  src_a:Comp.source ->
  src_b:Comp.source option ->
  isolated:bool ->
  ops:int list ->
  int

val add_mux : t -> name:string -> phase:int -> choices:Comp.source array -> int
(** Raises {!Invalid} on fewer than 2 choices. *)

val set_output : t -> Var.t -> Comp.source -> unit

val comp : t -> int -> Comp.t
(** Raises {!Invalid} on an unknown id. *)

val comps : t -> Comp.t list
(** All components, by ascending id. *)

val outputs : t -> (Var.t * Comp.source) list

val replace_kind : t -> int -> Comp.kind -> unit
(** Rewire an existing component (used by clean-up passes). *)

val inputs : t -> (Comp.t * Var.t) list
val storages : t -> (Comp.t * Comp.storage) list
val alus : t -> (Comp.t * Comp.alu) list
val muxes : t -> (Comp.t * Comp.mux) list

val memory_cells : t -> int
(** The paper's "Mem. Cells" column: number of storage elements. *)

val mux_input_count : t -> int
(** The paper's "Mux In's" column: total mux inputs. *)

val alu_inventory : t -> (Op.Set.t * int) list
val alu_inventory_string : t -> string
(** Paper notation, e.g. ["2(+),1(*-)"]. *)

val validate : t -> unit
(** Checks dangling references, degenerate muxes, and combinational
    acyclicity; raises {!Invalid} with a diagnostic. *)

val combinational_order : t -> Comp.t list
(** Muxes and ALUs in evaluation (topological) order; validates first. *)

val sequential_cone : ?select:(int -> int option) -> t -> Comp.source -> int list
(** Sequential components (inputs/storages) in a source's combinational
    fan-in; [select] resolves mux routing (unresolved muxes contribute
    all inputs, conservatively). *)

val fanout_counts : t -> int -> int
(** [fanout_counts t id] is the number of sinks reading component
    [id]'s output. *)

val pp : Format.formatter -> t -> unit
