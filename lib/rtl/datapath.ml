(* The datapath: a wired collection of components plus output taps.

   Built imperatively by the allocators, then validated ([validate])
   before use: all referenced ids must exist, muxes need >= 2 inputs,
   and the combinational subgraph (muxes and ALUs) must be acyclic —
   every feedback loop must pass through a storage element. *)

open Mclock_dfg
module IMap = Map.Make (Int)

type t = {
  width : int;
  mutable next_id : int;
  mutable comps : Comp.t IMap.t;
  mutable outputs : (Var.t * Comp.source) list; (* reversed *)
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let create ~width =
  if width < 1 || width > Mclock_util.Bitvec.max_width then
    invalid "width %d out of range" width;
  { width; next_id = 1; comps = IMap.empty; outputs = [] }

let width t = t.width

let add t ~name kind =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.comps <- IMap.add id { Comp.id; name; kind } t.comps;
  id

let add_input t var = add t ~name:(Printf.sprintf "in_%s" (Var.name var)) (Comp.Input var)

let add_storage t ~name ~kind ~phase ~input ~gated ~holds =
  if phase < 1 then invalid "storage %s: phase %d < 1" name phase;
  add t ~name
    (Comp.Storage
       { s_kind = kind; s_phase = phase; s_input = input; s_gated = gated; s_holds = holds })

let add_alu t ~name ~fset ~phase ~src_a ~src_b ~isolated ~ops =
  if Op.Set.is_empty fset then invalid "alu %s: empty function set" name;
  if phase < 1 then invalid "alu %s: phase %d < 1" name phase;
  add t ~name
    (Comp.Alu
       {
         a_fset = fset;
         a_phase = phase;
         a_src_a = src_a;
         a_src_b = src_b;
         a_isolated = isolated;
         a_ops = ops;
       })

let add_mux t ~name ~phase ~choices =
  if Array.length choices < 2 then invalid "mux %s: needs >= 2 inputs" name;
  add t ~name (Comp.Mux { m_phase = phase; m_choices = choices })

let set_output t var source = t.outputs <- (var, source) :: t.outputs

let comp t id =
  match IMap.find_opt id t.comps with
  | Some c -> c
  | None -> invalid "no component with id %d" id

let comps t = List.map snd (IMap.bindings t.comps)

let outputs t = List.rev t.outputs

let replace_kind t id kind =
  let existing = comp t id in
  t.comps <- IMap.add id { existing with Comp.kind } t.comps

let inputs t =
  List.filter_map
    (fun c -> match Comp.kind c with Comp.Input v -> Some (c, v) | _ -> None)
    (comps t)

let storages t =
  List.filter_map
    (fun c -> match Comp.kind c with Comp.Storage s -> Some (c, s) | _ -> None)
    (comps t)

let alus t =
  List.filter_map
    (fun c -> match Comp.kind c with Comp.Alu a -> Some (c, a) | _ -> None)
    (comps t)

let muxes t =
  List.filter_map
    (fun c -> match Comp.kind c with Comp.Mux m -> Some (c, m) | _ -> None)
    (comps t)

(* --- Paper-style statistics ------------------------------------------- *)

let memory_cells t = List.length (storages t)

let mux_input_count t =
  Mclock_util.List_ext.sum_by
    (fun (_, m) -> Array.length m.Comp.m_choices)
    (muxes t)

let alu_inventory t =
  (* Group ALUs by function set and render "2(+), 1(*-)" as in the
     paper's tables. *)
  let sets = List.map (fun (_, a) -> a.Comp.a_fset) (alus t) in
  Mclock_util.List_ext.group_by ~key:Fun.id ~compare_key:Op.Set.compare sets
  |> List.map (fun (fset, members) -> (fset, List.length members))

let alu_inventory_string t =
  alu_inventory t
  |> List.map (fun (fset, n) -> Printf.sprintf "%d%s" n (Op.Set.to_string fset))
  |> String.concat ","

(* --- Validation -------------------------------------------------------- *)

let check_source t ~owner src =
  match src with
  | Comp.From_const _ -> ()
  | Comp.From_comp id ->
      if not (IMap.mem id t.comps) then
        invalid "component %s references missing component %d" owner id

let validate t =
  List.iter
    (fun c ->
      let owner = Printf.sprintf "c%d(%s)" (Comp.id c) (Comp.name c) in
      match Comp.kind c with
      | Comp.Input _ -> ()
      | Comp.Storage s -> check_source t ~owner s.Comp.s_input
      | Comp.Alu a ->
          check_source t ~owner a.Comp.a_src_a;
          Option.iter (check_source t ~owner) a.Comp.a_src_b
      | Comp.Mux m ->
          if Array.length m.Comp.m_choices < 2 then
            invalid "%s: mux with < 2 inputs" owner;
          Array.iter (check_source t ~owner) m.Comp.m_choices)
    (comps t);
  List.iter
    (fun (v, src) ->
      check_source t ~owner:(Printf.sprintf "output %s" (Var.name v)) src)
    (outputs t);
  (* Combinational acyclicity: DFS over mux/ALU components, following
     fanin edges that lead to other combinational components. *)
  let state = Hashtbl.create 32 in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Active -> invalid "combinational cycle through component %d" id
    | None ->
        let c = comp t id in
        if Comp.is_combinational c then begin
          Hashtbl.replace state id `Active;
          List.iter visit (Comp.fanin c);
          Hashtbl.replace state id `Done
        end
        else Hashtbl.replace state id `Done
  in
  List.iter (fun c -> visit (Comp.id c)) (comps t)

(* Topological order of combinational components (inputs/storages first
   conceptually; they are sources and not included). *)
let combinational_order t =
  validate t;
  let order = ref [] in
  let seen = Hashtbl.create 32 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let c = comp t id in
      if Comp.is_combinational c then begin
        List.iter visit (Comp.fanin c);
        order := c :: !order
      end
    end
  in
  List.iter (fun c -> visit (Comp.id c)) (comps t);
  List.rev !order

(* Transitive combinational fan-in of a source: the set of sequential
   component ids (inputs and storages) that can influence it within one
   step.  When [select] is given, muxes whose routing it resolves
   contribute only their selected input (the read that physically
   matters); unresolved muxes contribute every input, conservatively. *)
let sequential_cone ?select t source =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit = function
    | Comp.From_const _ -> ()
    | Comp.From_comp id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          let c = comp t id in
          match Comp.kind c with
          | Comp.Input _ | Comp.Storage _ -> acc := id :: !acc
          | Comp.Alu a ->
              visit a.Comp.a_src_a;
              Option.iter visit a.Comp.a_src_b
          | Comp.Mux m -> (
              let resolved =
                match select with None -> None | Some f -> f id
              in
              match resolved with
              | Some idx when idx >= 0 && idx < Array.length m.Comp.m_choices
                ->
                  visit m.Comp.m_choices.(idx)
              | Some _ | None -> Array.iter visit m.Comp.m_choices)
        end
  in
  visit source;
  !acc

(* Fanout count per component id (how many sinks read its output),
   used for output-load capacitance. *)
let fanout_counts t =
  let counts = Hashtbl.create 32 in
  let bump = function
    | Comp.From_const _ -> ()
    | Comp.From_comp id ->
        Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  in
  List.iter
    (fun c ->
      match Comp.kind c with
      | Comp.Input _ -> ()
      | Comp.Storage s -> bump s.Comp.s_input
      | Comp.Alu a ->
          bump a.Comp.a_src_a;
          Option.iter bump a.Comp.a_src_b
      | Comp.Mux m -> Array.iter bump m.Comp.m_choices)
    (comps t);
  List.iter (fun (_, src) -> bump src) (outputs t);
  fun id -> Option.value ~default:0 (Hashtbl.find_opt counts id)

let pp ppf t =
  Fmt.pf ppf "@[<v>datapath (width %d)@,%a@,outputs: %a@]" t.width
    (Fmt.list ~sep:Fmt.cut Comp.pp) (comps t)
    (Fmt.list ~sep:Fmt.comma (fun ppf (v, src) ->
         Fmt.pf ppf "%a<-%a" Var.pp v Comp.pp_source src))
    (outputs t)
