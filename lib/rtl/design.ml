(* A complete RTL design: datapath + controller + clocking scheme,
   plus the style metadata the power model needs (storage kind, clock
   gating, latched controls).

   [io] records how behaviour maps onto structure: which input port
   carries each primary input and which net to observe (and at which
   step) for each primary output.  The functional-verification harness
   uses it to compare the design against the golden DFG interpreter. *)

open Mclock_dfg

type style = {
  storage_kind : Mclock_tech.Library.storage_kind;
  clock_gated : bool;
  operand_isolation : bool;
  latched_control : bool;
  cross_partition_transfers : bool;
}

let conventional_style =
  {
    storage_kind = Mclock_tech.Library.Register;
    clock_gated = false;
    operand_isolation = false;
    latched_control = false;
    cross_partition_transfers = true;
  }

let gated_style =
  {
    storage_kind = Mclock_tech.Library.Register;
    clock_gated = true;
    operand_isolation = true;
    latched_control = false;
    cross_partition_transfers = true;
  }

let multiclock_style =
  {
    storage_kind = Mclock_tech.Library.Latch;
    clock_gated = false;
    operand_isolation = false;
    latched_control = true;
    cross_partition_transfers = true;
  }

type output_tap = { var : Var.t; source : Comp.source; ready_step : int }

type t = {
  name : string;
  behaviour : string; (* name of the source DFG *)
  datapath : Datapath.t;
  control : Control.t;
  clock : Clock.t;
  style : style;
  input_ports : (Var.t * int) list; (* primary input -> input component id *)
  output_taps : output_tap list;
}

let create ~name ~behaviour ~datapath ~control ~clock ~style ~input_ports
    ~output_taps =
  Datapath.validate datapath;
  if Control.num_steps control < 1 then
    invalid_arg "Design.create: empty controller";
  { name; behaviour; datapath; control; clock; style; input_ports; output_taps }

let name t = t.name
let behaviour t = t.behaviour
let datapath t = t.datapath
let control t = t.control
let clock t = t.clock
let style t = t.style
let input_ports t = t.input_ports
let output_taps t = t.output_taps

let num_steps t = Control.num_steps t.control

let input_port t var =
  match
    List.find_opt (fun (v, _) -> Var.equal v var) t.input_ports
  with
  | Some (_, id) -> Some id
  | None -> None

let style_label t =
  let storage =
    match t.style.storage_kind with
    | Mclock_tech.Library.Register -> "FF"
    | Mclock_tech.Library.Latch -> "latch"
  in
  let phases = Clock.phases t.clock in
  if phases > 1 then Printf.sprintf "%d-clock/%s" phases storage
  else if t.style.clock_gated then Printf.sprintf "gated/%s" storage
  else Printf.sprintf "1-clock/%s" storage

let pp ppf t =
  Fmt.pf ppf "@[<v>design %s (behaviour %s, %s)@,%a@,clock: %a@]" t.name
    t.behaviour (style_label t) Datapath.pp t.datapath Clock.pp t.clock
