(** Structural checkers for complete designs: partition discipline,
    latch READ/WRITE separation, control sanity, clock non-overlap.

    Deprecated shim: these four checks migrated into the
    [Mclock_lint] rule set as MC002 (partition discipline), MC003
    (latch read/write), MC004/MC005 (control sanity) and MC001 (clock
    overlap), which adds severities, stable codes, locations and
    renderers on top.  New code should call [Mclock_lint.Lint.design];
    this module remains for existing callers (and because the lint
    layer reuses {!sequential_cone}). *)

type violation = { check : string; message : string }

val sequential_cone :
  ?select:(int -> int option) -> Datapath.t -> Comp.source -> int list
(** Sequential components (inputs/storages) in a source's combinational
    fan-in; [select] resolves mux routing (unresolved muxes contribute
    all inputs, conservatively). *)

val check_partition_discipline : Design.t -> violation list
(** Storage elements must only load during their own phase. *)

val check_latch_read_write : Design.t -> violation list
(** A latch must never be read and written in the same step. *)

val check_controls : Design.t -> violation list
(** Mux selects in range and on muxes; ALU ops within repertoires. *)

val check_clock : Design.t -> violation list
(** Phase clocks must be non-overlapping ({!Clock.non_overlapping}) —
    the property the paper's whole scheme assumes (Fig. 2). *)

val all : Design.t -> violation list
(** Every check; empty means the design is clean. *)

val pp_violation : Format.formatter -> violation -> unit
