(* The integrated multi-clock allocation method (paper §4.2) — the
   system's primary contribution.

   Step 1  insert cross-partition transfers (Transfer.insert), so every
           operation's stored operands update in one phase window;
   Step 2  left-edge register allocation within partitions, with latch
           semantics (fully disjoint READ/WRITE spans);
   Step 3  greedy partition-respecting ALU merging;
   Step 4  mux/datapath construction and latched-control microcode,
           with power-aware idle mux parking.

   With n = 1 this degenerates to the paper's "1 Clock" row: the same
   latch-based allocation discipline without clock partitions.

   The optional knobs exist for the ablation benches: [storage_kind]
   swaps the latches for flip-flops, [latched_control:false] re-emits
   don't-care controls each step like a conventional controller,
   [transfers:false] skips Step 1, and [park:false] disables idle mux
   parking.  Defaults give the paper's scheme. *)

type params = { tech : Mclock_tech.Library.t; width : int }

let default_params = { tech = Mclock_tech.Cmos08.t; width = 4 }

type result = {
  design : Mclock_rtl.Design.t;
  problem : Lifetime.problem; (* after transfer insertion *)
  reg_classes : Reg_alloc.reg_class list;
  alus : Alu_alloc.alu list;
}

let run ?(params = default_params) ?(park = true)
    ?(storage_kind = Mclock_tech.Library.Latch) ?(latched_control = true)
    ?(transfers = true) ?(binding = `Left_edge) ~n ~name schedule =
  if n < 1 then invalid_arg "Integrated.run: n must be >= 1";
  let problem = Lifetime.analyze ~n schedule in
  let problem = if transfers then Transfer.insert problem else problem in
  let partitions = Partition.map ~n schedule in
  let alu_config =
    {
      Alu_alloc.tech = params.tech;
      width = params.width;
      merge = true;
      merge_threshold = 1.0;
    }
  in
  let alus = Alu_alloc.allocate ~config:alu_config ~partitions schedule in
  let reg_classes =
    Reg_bind.allocate ~strategy:binding ~kind:storage_kind problem alus
  in
  let style =
    (* [cross_partition_transfers] stays true even under
       [~transfers:false]: that flag is an ablation of this method, so
       the design still claims the discipline and the MC006 lint rule
       flags every operand mix the omitted transfers would have fixed. *)
    {
      Mclock_rtl.Design.multiclock_style with
      Mclock_rtl.Design.storage_kind;
      latched_control;
    }
  in
  let design =
    Structure.build
      {
        Structure.tech = params.tech;
        width = params.width;
        style;
        idle_controls = (if latched_control then `Hold else `Zero);
        park_idle_muxes = park && latched_control;
        name;
      }
      problem reg_classes alus
  in
  { design; problem; reg_classes; alus }

let allocate ?params ?park ~n ~name schedule =
  (run ?params ?park ~n ~name schedule).design
