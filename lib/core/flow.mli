(** End-to-end synthesis flow: one entry per design style, plus the
    five-design suite each of the paper's tables reports. *)

open Mclock_sched

type method_ =
  | Conventional_non_gated
  | Conventional_gated
  | Integrated of int  (** clock count *)
  | Split of int

val method_label : method_ -> string
(** The paper's row labels, e.g. "Conven. Alloc. (Gated Clock)". *)

type params = { tech : Mclock_tech.Library.t; width : int }

val default_params : params

exception
  Lint_failed of {
    design : Mclock_rtl.Design.t;
    diagnostics : Mclock_lint.Diagnostic.t list;
  }
(** Raised when a freshly allocated design fails the
    {!Mclock_lint.Lint.design} rule set with error-severity
    diagnostics. *)

val synthesize :
  ?params:params ->
  ?lint:bool ->
  method_:method_ ->
  name:string ->
  Schedule.t ->
  Mclock_rtl.Design.t
(** Allocates, then runs the full lint rule set over the result and
    raises {!Lint_failed} on error diagnostics.  [lint:false] (default
    [true]) skips the gate for callers that collect diagnostics
    themselves. *)

val standard_suite :
  ?params:params -> name:string -> Schedule.t -> (method_ * Mclock_rtl.Design.t) list
(** Non-gated, gated, and integrated 1/2/3-clock designs, in the
    tables' row order. *)
