(* End-to-end synthesis flow API: one entry point per design style plus
   the five-design suite each of the paper's tables reports. *)


type method_ =
  | Conventional_non_gated
  | Conventional_gated
  | Integrated of int (* clock count *)
  | Split of int

let method_label = function
  | Conventional_non_gated -> "Conven. Alloc. (Non-Gated Clock)"
  | Conventional_gated -> "Conven. Alloc. (Gated Clock)"
  | Integrated 1 -> "1 Clock"
  | Integrated n -> Printf.sprintf "%d Clocks" n
  | Split n -> Printf.sprintf "Split %d Clocks" n

type params = { tech : Mclock_tech.Library.t; width : int }

let default_params = { tech = Mclock_tech.Cmos08.t; width = 4 }

exception
  Lint_failed of {
    design : Mclock_rtl.Design.t;
    diagnostics : Mclock_lint.Diagnostic.t list;
  }

let () =
  Printexc.register_printer (function
    | Lint_failed { design; diagnostics } ->
        Some
          (Printf.sprintf "Flow.Lint_failed on %s:\n%s"
             (Mclock_rtl.Design.name design)
             (Mclock_lint.Diagnostic.render diagnostics))
    | _ -> None)

let allocate ~params ~method_ ~name schedule =
  match method_ with
  | Conventional_non_gated ->
      Conventional.allocate
        ~params:{ Conventional.tech = params.tech; width = params.width }
        ~gated:false ~name schedule
  | Conventional_gated ->
      Conventional.allocate
        ~params:{ Conventional.tech = params.tech; width = params.width }
        ~gated:true ~name schedule
  | Integrated n ->
      Integrated.allocate
        ~params:{ Integrated.tech = params.tech; width = params.width }
        ~n ~name schedule
  | Split n ->
      Split_alloc.allocate
        ~params:{ Split_alloc.tech = params.tech; width = params.width }
        ~n ~name schedule

(* Every allocation is linted on the way out: an allocator emitting a
   design that violates the paper's structural discipline is a bug we
   want loud, not a wrong power number downstream.  [lint:false] is
   for tooling (e.g. the lint CLI) that wants the diagnostics
   themselves rather than an exception. *)
let synthesize ?(params = default_params) ?(lint = true) ~method_ ~name
    schedule =
  let design = allocate ~params ~method_ ~name schedule in
  if lint then begin
    match Mclock_lint.Diagnostic.errors (Mclock_lint.Lint.design design) with
    | [] -> design
    | _ :: _ as diagnostics -> raise (Lint_failed { design; diagnostics })
  end
  else design

(* The five designs of each of the paper's tables, in row order. *)
let standard_suite ?(params = default_params) ~name schedule =
  List.map
    (fun method_ ->
      let design_name =
        Printf.sprintf "%s_%s" name
          (match method_ with
          | Conventional_non_gated -> "conv"
          | Conventional_gated -> "gated"
          | Integrated n -> Printf.sprintf "mc%d" n
          | Split n -> Printf.sprintf "split%d" n)
      in
      (method_, synthesize ~params ~method_ ~name:design_name schedule))
    [
      Conventional_non_gated;
      Conventional_gated;
      Integrated 1;
      Integrated 2;
      Integrated 3;
    ]
