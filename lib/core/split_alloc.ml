(* The split allocation method (paper §4.1).

   Step 1  partition the schedule by clock: partition p holds the nodes
           of steps with ((t-1) mod n)+1 = p, renumbered to local steps
           1', 2', ...; edges cut by the partition boundary become
           pseudo primary inputs/outputs that keep their original life
           spans;
   Step 2  run a conventional allocator on each partition
           independently (left-edge with ordinary register semantics on
           the local time axis, greedy ALU merging within the
           partition);
   Step 3  clean up the merged result: drop the registers the naive
           flow duplicated for primary inputs (read from the shared
           port), replace pseudo-I/O registers by direct connections to
           the producing partition's storage, and split any variables
           that register-semantics merging put into one element but
           that conflict under the latch READ/WRITE rule on the global
           time axis.

   The output is a latch-based multi-clock design structurally
   comparable to the integrated method's, but without cross-partition
   transfers, and the clean-up statistics quantify what Step 3 removed
   (the Fig. 5 walk-through). *)

open Mclock_dfg
open Mclock_sched

type params = { tech : Mclock_tech.Library.t; width : int }

let default_params = { tech = Mclock_tech.Cmos08.t; width = 4 }

type cleanup_stats = {
  pseudo_input_registers_removed : int;
      (* registers the per-partition flow created for primary inputs *)
  cross_connections : int;
      (* pseudo-I/O registers replaced by direct connections *)
  classes_split : int; (* register classes split for latch R/W conflicts *)
}

type result = {
  design : Mclock_rtl.Design.t;
  stats : cleanup_stats;
  reg_classes : Reg_alloc.reg_class list;
  alus : Alu_alloc.alu list;
}

(* Local step on partition [p]'s time axis by which a value written at
   global step [w] (inside p) must persist to cover global step
   [death]: the smallest local l with (l-1)*n + p >= death. *)
let local_death ~n ~partition death =
  let l = ((death - partition) + (n - 1)) / n + 1 in
  max 1 l

(* Per-partition left-edge with ordinary register semantics on the
   local time axis (what a conventional allocator would do, Step 2). *)
let partition_classes ~n (problem : Lifetime.problem) =
  let registered, working =
    List.partition
      (fun u -> u.Lifetime.registered_input)
      (Lifetime.stored_usages problem)
  in
  let groups =
    Mclock_util.List_ext.group_by
      ~key:(fun u -> u.Lifetime.partition)
      ~compare_key:Int.compare working
  in
  let next = ref 0 in
  (* Registered inputs get dedicated elements in every method. *)
  let input_classes =
    List.map
      (fun u ->
        let id = !next in
        incr next;
        {
          Reg_alloc.rc_id = id;
          rc_partition = max 1 u.Lifetime.partition;
          rc_vars = [ u.Lifetime.var ];
        })
      registered
  in
  input_classes
  @ List.concat_map
    (fun (partition, members) ->
      let local_interval u =
        let w_loc = Partition.local_of_global ~n u.Lifetime.write_step in
        let death = max (Lifetime.last_read u) u.Lifetime.write_step in
        let d_loc = local_death ~n ~partition death in
        (* Register semantics: occupied from the local step after the
           write; a same-local-step read+write is allowed. *)
        Mclock_util.Interval.make (w_loc + 1) (max (w_loc + 1) d_loc)
      in
      let tracks =
        Mclock_util.Interval.left_edge_pack ~key:local_interval members
      in
      List.map
        (fun track ->
          let id = !next in
          incr next;
          {
            Reg_alloc.rc_id = id;
            rc_partition = max 1 partition;
            rc_vars = List.map (fun u -> u.Lifetime.var) track;
          })
        tracks)
    groups

(* Step 3c: re-check each class under the latch rule on the global time
   axis and split conflicting members into fresh classes. *)
let split_latch_conflicts (problem : Lifetime.problem) classes =
  let next = ref (List.length classes) in
  let splits = ref 0 in
  let resolved =
    List.concat_map
      (fun rc ->
        let usages =
          List.map (fun v -> Lifetime.usage problem v) rc.Reg_alloc.rc_vars
        in
        let tracks =
          Mclock_util.Interval.left_edge_pack
            ~key:
              (Lifetime.problem_interval problem
                 ~kind:Mclock_tech.Library.Latch)
            usages
        in
        match tracks with
        | [ _ ] -> [ rc ]
        | _ :: _ :: _ ->
            splits := !splits + List.length tracks - 1;
            List.map
              (fun track ->
                let id = !next in
                incr next;
                {
                  Reg_alloc.rc_id = id;
                  rc_partition = rc.Reg_alloc.rc_partition;
                  rc_vars = List.map (fun u -> u.Lifetime.var) track;
                })
              tracks
        | [] -> [])
      classes
  in
  (resolved, !splits)

(* Pseudo-I/O census for the clean-up statistics: per partition, the
   variables its nodes read but that the partition does not write. *)
let pseudo_input_counts ~n (problem : Lifetime.problem) =
  let schedule = problem.Lifetime.schedule in
  let graph = Schedule.graph schedule in
  let per_partition = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let p = Partition.of_node ~n schedule node in
      List.iter
        (fun v ->
          let vp = (Lifetime.usage problem v).Lifetime.partition in
          if vp <> p then begin
            let key = (p, Var.name v) in
            if not (Hashtbl.mem per_partition key) then
              Hashtbl.replace per_partition key (Graph.is_input graph v)
          end)
        (Node.operand_vars node))
    (Graph.nodes graph);
  Hashtbl.fold
    (fun _ is_input (prim, cross) ->
      if is_input then (prim + 1, cross) else (prim, cross + 1))
    per_partition (0, 0)

let run ?(params = default_params) ~n ~name schedule =
  if n < 1 then invalid_arg "Split_alloc.run: n must be >= 1";
  let problem = Lifetime.analyze ~n schedule in
  let classes = partition_classes ~n problem in
  let reg_classes, classes_split = split_latch_conflicts problem classes in
  let prim, cross = pseudo_input_counts ~n problem in
  let partitions = Partition.map ~n schedule in
  let alu_config =
    {
      Alu_alloc.tech = params.tech;
      width = params.width;
      merge = true;
      merge_threshold = 1.0;
    }
  in
  let alus = Alu_alloc.allocate ~config:alu_config ~partitions schedule in
  let design =
    Structure.build
      {
        Structure.tech = params.tech;
        width = params.width;
        style =
          (* Direct cross-partition connections are this method's
             defining shortcut, so it opts out of the transfer
             discipline that MC006 enforces. *)
          {
            Mclock_rtl.Design.multiclock_style with
            cross_partition_transfers = false;
          };
        idle_controls = `Hold;
        park_idle_muxes = true;
        name;
      }
      problem reg_classes alus
  in
  {
    design;
    stats =
      {
        pseudo_input_registers_removed = prim;
        cross_connections = cross;
        classes_split;
      };
    reg_classes;
    alus;
  }

let allocate ?params ~n ~name schedule = (run ?params ~n ~name schedule).design

(* Fig. 5(a)/(b)-style rendering: the original schedule and the local
   schedules of each partition. *)
let render_partitions ~n schedule =
  let graph = Schedule.graph schedule in
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "original schedule (%d steps):\n" (Schedule.num_steps schedule);
  List.iter
    (fun s ->
      let ids =
        List.map (fun node -> Printf.sprintf "n%d" (Node.id node)) (Schedule.nodes_at schedule s)
      in
      addf "  T%d: %s\n" s (String.concat " " ids))
    (Mclock_util.List_ext.range 1 (Schedule.num_steps schedule));
  List.iter
    (fun p ->
      addf "partition %d (CLK%d), local steps:\n" p p;
      List.iter
        (fun s ->
          let l = Partition.local_of_global ~n s in
          let ids =
            List.map
              (fun node -> Printf.sprintf "n%d" (Node.id node))
              (Schedule.nodes_at schedule s)
          in
          if ids <> [] then addf "  T%d': %s (global T%d)\n" l (String.concat " " ids) s)
        (Partition.steps_of ~n ~num_steps:(Schedule.num_steps schedule) p))
    (Mclock_util.List_ext.range 1 n);
  ignore graph;
  Buffer.contents buf
