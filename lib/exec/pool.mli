(** Deterministic parallel execution engine.

    A fixed-size pool of OCaml 5 domains drains a shared work queue;
    batches submitted with {!map} (or {!map_rng}) are reduced in
    submission order, so the caller-observable result is byte-for-byte
    independent of the worker count: [jobs:1] and [jobs:N] agree.

    The determinism contract:
    - results come back in submission order, never completion order;
    - a task never shares a mutable RNG — {!map_rng} splits one child
      stream per task, keyed by task index, on the submitting side
      before any worker runs;
    - an exception in a task is captured with its backtrace and
      re-raised on the submitting side (lowest task index wins when
      several fail), after every task of the batch has settled, so a
      failure can neither kill a worker domain nor reorder siblings.

    Tasks must not call back into the pool that runs them (no nested
    batches); workloads here are CPU-bound leaf computations. *)

type t

type timing = {
  t_label : string;  (** task label, e.g. ["facet/3 Clocks"] *)
  t_wall_s : float;  (** wall-clock seconds inside the task *)
  t_alloc_bytes : float;  (** bytes allocated by the task's domain *)
  t_worker : int;  (** worker index; 0 is the submitting domain *)
}

val default_jobs : unit -> int
(** The [MCLOCK_JOBS] environment variable if set to a positive
    integer, else [Domain.recommended_domain_count () - 1], floored at
    1 (one spare core is left for the submitting domain). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs <= 1] spawns
    none and runs every task inline). Default: {!default_jobs}. Raises
    [Invalid_argument] on [jobs < 1]. *)

val jobs : t -> int

val registry : t -> Mclock_obs.Registry.t
(** The pool's metrics registry (name ["pool"]): counters [tasks],
    [wall_us] and [alloc_bytes], maintained in lock-step with
    {!timings}. *)

val shutdown : t -> unit
(** Drains the queue and joins every worker domain. Idempotent;
    submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on the
    way out, exception or not. *)

val map : t -> ?label:(int -> string) -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [map pool f items] runs [f i item] for each item (where [i] is the
    0-based submission index) across the pool and returns the results
    in submission order. See the module header for the exception
    contract. *)

val map_rng :
  t ->
  seed:int ->
  ?label:(int -> string) ->
  (rng:Mclock_util.Rng.t -> int -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!map}, but each task also receives a private RNG stream:
    child [i] of [Rng.create seed] split off in index order before
    submission, so streams depend only on [(seed, i)] — never on the
    worker count or on scheduling. *)

val timings : t -> timing list
(** Per-task telemetry of every batch run so far, in submission
    order. *)

val reset_timings : t -> unit

val render_timings : t -> string
(** Human-readable per-task table plus a busy/wall summary. *)

val timings_to_json : t -> string
(** The same telemetry as a JSON document:
    [{ "jobs": n, "tasks": [ {label, wall_s, alloc_bytes, worker} ] }]. *)
