(* Deterministic parallel execution engine on OCaml 5 domains.

   A fixed set of worker domains drains one shared queue of closures.
   Determinism comes from three choices, none of which cost measurable
   throughput:

   - results are reduced in submission order (each task writes into its
     own slot of a batch-local array, the submitter reads the array
     left to right), so completion order is unobservable;
   - per-task RNG streams are split off the master generator on the
     submitting side, keyed by task index, before any worker runs;
   - task exceptions are captured (with backtrace) in the task's slot
     and re-raised by the submitter once the whole batch has settled —
     a failing task can neither kill a domain nor reorder siblings.

   Telemetry (wall clock + allocated bytes per task) is collected into
   the same per-task slots and appended to the pool's log in submission
   order, so even the telemetry stream is stable across job counts.
   The same totals feed the pool's `Mclock_obs.Registry` (tasks,
   wall_us, alloc_bytes), and when tracing is on each task runs inside
   a span parented to the span that submitted the batch — the
   submitter's ambient context is captured once per batch and
   re-installed on the worker domain around the task body. *)

type timing = {
  t_label : string;
  t_wall_s : float;
  t_alloc_bytes : float;
  t_worker : int;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : (int -> unit) Queue.t; (* closures receive their worker index *)
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable timings_rev : timing list; (* most recent batch first *)
  obs : Mclock_obs.Registry.t;
  c_tasks : Mclock_obs.Registry.counter;
  c_wall_us : Mclock_obs.Registry.counter;
  c_alloc_bytes : Mclock_obs.Registry.counter;
}

let default_jobs () =
  match Sys.getenv_opt "MCLOCK_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "MCLOCK_JOBS=%S: expected a positive integer" s))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t worker_id =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.work) then Some (Queue.pop t.work)
    else if t.closed then None
    else begin
      Condition.wait t.work_available t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      job worker_id;
      worker_loop t worker_id

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
  let obs = Mclock_obs.Registry.create ~name:"pool" () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Queue.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      closed = false;
      workers = [];
      timings_rev = [];
      obs;
      c_tasks = Mclock_obs.Registry.counter obs "tasks";
      c_wall_us = Mclock_obs.Registry.counter obs "wall_us";
      c_alloc_bytes = Mclock_obs.Registry.counter obs "alloc_bytes";
    }
  in
  if jobs > 1 then
    t.workers <-
      List.init jobs (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let jobs t = t.jobs
let registry t = t.obs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One task: run [f], fill the result/error slot, and record telemetry.
   Runs on a worker domain (or the submitting domain when jobs = 1), so
   [Gc.allocated_bytes] is the running domain's own counter.  [parent]
   is the submitter's ambient span context, re-installed here so the
   task span (and anything the task opens) nests under the submitting
   job in the trace. *)
let run_slot ~parent ~label ~results ~errors ~timings f i x worker_id =
  Mclock_obs.Obs.with_context parent (fun () ->
      Mclock_obs.Obs.with_span ~cat:"pool" ~name:(label i)
        ~attrs:[ ("worker", string_of_int worker_id) ]
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let a0 = Gc.allocated_bytes () in
          (try results.(i) <- Some (f i x)
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             errors.(i) <- Some (e, bt));
          timings.(i) <-
            Some
              {
                t_label = label i;
                t_wall_s = Unix.gettimeofday () -. t0;
                t_alloc_bytes = Gc.allocated_bytes () -. a0;
                t_worker = worker_id;
              }))

let map t ?label f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let label = match label with Some l -> l | None -> Printf.sprintf "task %d" in
  let results = Array.make n None in
  let errors = Array.make n None in
  let timings = Array.make n None in
  let parent = Mclock_obs.Obs.context () in
  let run_slot i x w =
    run_slot ~parent ~label ~results ~errors ~timings f i x w
  in
  if n > 0 then
    if t.jobs <= 1 || n = 1 then begin
      if t.closed then invalid_arg "Exec.Pool.map: pool is shut down";
      Array.iteri (fun i x -> run_slot i x 0) arr
    end
    else begin
      let remaining = ref n in
      Mutex.lock t.mutex;
      if t.closed then begin
        Mutex.unlock t.mutex;
        invalid_arg "Exec.Pool.map: pool is shut down"
      end;
      Array.iteri
        (fun i x ->
          Queue.push
            (fun worker_id ->
              run_slot i x worker_id;
              Mutex.lock t.mutex;
              decr remaining;
              if !remaining = 0 then Condition.broadcast t.batch_done;
              Mutex.unlock t.mutex)
            t.work)
        arr;
      Condition.broadcast t.work_available;
      while !remaining > 0 do
        Condition.wait t.batch_done t.mutex
      done;
      Mutex.unlock t.mutex
    end;
  (* Append this batch's telemetry in submission order, whatever order
     the workers finished in; bump the registry with the same rounded
     quantities so the counters are a pure function of the timing
     stream (parity-tested). *)
  Mutex.lock t.mutex;
  Array.iter
    (function
      | Some tm ->
          t.timings_rev <- tm :: t.timings_rev;
          Mclock_obs.Registry.incr t.c_tasks;
          Mclock_obs.Registry.incr t.c_wall_us
            ~by:(int_of_float (tm.t_wall_s *. 1e6));
          Mclock_obs.Registry.incr t.c_alloc_bytes
            ~by:(int_of_float tm.t_alloc_bytes)
      | None -> ())
    timings;
  Mutex.unlock t.mutex;
  (* Lowest-index failure wins, deterministically. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
    errors;
  Array.to_list
    (Array.map
       (function
         | Some r -> r
         | None -> invalid_arg "Exec.Pool.map: task produced no result")
       results)

let map_rng t ~seed ?label f items =
  let master = Mclock_util.Rng.create seed in
  (* Split one child per task up front: stream [i] depends only on
     [(seed, i)], never on which worker runs the task. *)
  let streams =
    Array.init (List.length items) (fun _ -> Mclock_util.Rng.split master)
  in
  map t ?label (fun i x -> f ~rng:streams.(i) i x) items

let timings t =
  Mutex.lock t.mutex;
  let l = List.rev t.timings_rev in
  Mutex.unlock t.mutex;
  l

let reset_timings t =
  Mutex.lock t.mutex;
  t.timings_rev <- [];
  Mutex.unlock t.mutex

let render_timings t =
  let ts = timings t in
  let table =
    Mclock_util.Table.create ~title:"per-task timings"
      ~header:[ "task"; "wall [ms]"; "alloc [MB]"; "worker" ]
      ~aligns:Mclock_util.Table.[ Left; Right; Right; Right ]
      ()
  in
  List.iter
    (fun tm ->
      Mclock_util.Table.add_row table
        [
          tm.t_label;
          Printf.sprintf "%.1f" (1000. *. tm.t_wall_s);
          Printf.sprintf "%.1f" (tm.t_alloc_bytes /. 1_048_576.);
          string_of_int tm.t_worker;
        ])
    ts;
  let busy = List.fold_left (fun acc tm -> acc +. tm.t_wall_s) 0. ts in
  Printf.sprintf "%s\n%d tasks, %.2f s busy across %d job%s\n"
    (Mclock_util.Table.render table)
    (List.length ts) busy t.jobs
    (if t.jobs = 1 then "" else "s")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let timings_to_json t =
  let ts = timings t in
  let task tm =
    Printf.sprintf
      "    { \"label\": \"%s\", \"wall_s\": %.6f, \"alloc_bytes\": %.0f, \
       \"worker\": %d }"
      (json_escape tm.t_label) tm.t_wall_s tm.t_alloc_bytes tm.t_worker
  in
  Printf.sprintf "{\n  \"jobs\": %d,\n  \"tasks\": [\n%s\n  ]\n}\n" t.jobs
    (String.concat ",\n" (List.map task ts))
