(* Controller synthesis estimation.

   The datapath's controller is a cyclic FSM with one state per control
   step.  This module extracts its output functions from a design's
   controller (resolving the hold semantics of latched controls into
   concrete per-state values), minimizes each control line as a
   two-level function of the state code (Qm), and reports PLA-style
   area plus switching energy per period for a chosen state encoding:

   - state register: one storage bit per code bit, toggling per the
     encoding's Hamming schedule;
   - AND plane: product terms x 2*code_width crosspoints;
   - OR plane: product terms x output lines crosspoints;
   - output network: per-line toggles between consecutive states, at
     the technology's control-line capacitance.

   The estimates deliberately exclude the datapath (Report covers it);
   the Ablations bench uses them to compare encodings and to show the
   controller's share of each design style. *)

open Mclock_rtl
module L = Mclock_tech.Library

type line = {
  line_name : string;
  on_states : int list; (* 0-based states where the line is 1 *)
}

type report = {
  encoding : Encoding.t;
  states : int;
  code_width : int;
  output_lines : int;
  product_terms : int;
  total_literals : int;
  register_toggles_per_period : int;
  output_toggles_per_period : int;
  area : float; (* lambda^2 *)
  energy_per_period_pj : float;
  power_mw : float; (* at the design's system clock *)
}

let bits_needed = Encoding.bits_needed

(* Hold-resolved control values per state (0-based).  Two passes over
   the cyclic schedule stabilize the held values. *)
let resolved_controls design =
  let control = Design.control design in
  let datapath = Design.datapath design in
  let t_steps = Control.num_steps control in
  let muxes = Datapath.muxes datapath in
  let alus =
    List.filter
      (fun (_, a) -> Mclock_dfg.Op.Set.cardinal a.Comp.a_fset > 1)
      (Datapath.alus datapath)
  in
  let mux_sel = Hashtbl.create 8 and alu_fn = Hashtbl.create 8 in
  List.iter (fun (c, _) -> Hashtbl.replace mux_sel (Comp.id c) 0) muxes;
  List.iter (fun (c, _) -> Hashtbl.replace alu_fn (Comp.id c) 0) alus;
  (* Op -> function-select index per multifunction ALU, hoisted out of
     the per-step replay (the ALU scan and the function-set listing are
     loop invariants). *)
  let alu_fn_index = Hashtbl.create 8 in
  List.iter
    (fun (c, a) ->
      let by_op = Hashtbl.create 4 in
      List.iteri
        (fun i op -> Hashtbl.replace by_op op i)
        (Mclock_dfg.Op.Set.to_list a.Comp.a_fset);
      Hashtbl.replace alu_fn_index (Comp.id c) by_op)
    alus;
  let per_state = Array.make t_steps ([], [], []) in
  for pass = 1 to 2 do
    for step = 1 to t_steps do
      let word = Control.word control ~step in
      List.iter
        (fun (mux, idx) ->
          if Hashtbl.mem mux_sel mux then Hashtbl.replace mux_sel mux idx)
        word.Control.selects;
      List.iter
        (fun (alu, op) ->
          match Hashtbl.find_opt alu_fn_index alu with
          | Some by_op ->
              let idx = Option.value (Hashtbl.find_opt by_op op) ~default:0 in
              Hashtbl.replace alu_fn alu idx
          | None -> ())
        word.Control.alu_ops;
      if pass = 2 then
        per_state.(step - 1) <-
          ( word.Control.loads,
            List.map (fun (c, _) -> (Comp.id c, Hashtbl.find mux_sel (Comp.id c))) muxes,
            List.map (fun (c, _) -> (Comp.id c, Hashtbl.find alu_fn (Comp.id c))) alus )
    done
  done;
  per_state

(* Flatten the resolved controls into named single-bit output lines. *)
let output_lines design =
  let datapath = Design.datapath design in
  let per_state = resolved_controls design in
  let t_steps = Array.length per_state in
  let states = Mclock_util.List_ext.range 0 (t_steps - 1) in
  let storage_lines =
    List.map
      (fun (c, _) ->
        let id = Comp.id c in
        {
          line_name = Printf.sprintf "load_%s" (Comp.name c);
          on_states =
            List.filter
              (fun s ->
                let loads, _, _ = per_state.(s) in
                List.mem id loads)
              states;
        })
      (Datapath.storages datapath)
  in
  let select_lines =
    List.concat_map
      (fun (c, m) ->
        let id = Comp.id c in
        let bits = bits_needed (Array.length m.Comp.m_choices) in
        List.map
          (fun bit ->
            {
              line_name = Printf.sprintf "sel_%s_%d" (Comp.name c) bit;
              on_states =
                List.filter
                  (fun s ->
                    let _, sels, _ = per_state.(s) in
                    (List.assoc id sels lsr bit) land 1 = 1)
                  states;
            })
          (Mclock_util.List_ext.range 0 (bits - 1)))
      (Datapath.muxes datapath)
  in
  let fn_lines =
    List.concat_map
      (fun (c, a) ->
        let card = Mclock_dfg.Op.Set.cardinal a.Comp.a_fset in
        if card <= 1 then []
        else
          let id = Comp.id c in
          let bits = bits_needed card in
          List.map
            (fun bit ->
              {
                line_name = Printf.sprintf "fn_%s_%d" (Comp.name c) bit;
                on_states =
                  List.filter
                    (fun s ->
                      let _, _, fns = per_state.(s) in
                      (List.assoc id fns lsr bit) land 1 = 1)
                    states;
              })
            (Mclock_util.List_ext.range 0 (bits - 1)))
      (Datapath.alus datapath)
  in
  storage_lines @ select_lines @ fn_lines

(* PLA geometry constants (lambda^2 per crosspoint / per register bit
   at the 0.8 micron scale). *)
let crosspoint_area = 95.
let plane_cap_per_term = 0.012 (* pF switched per toggled input, per term *)

let estimate tech design encoding =
  let control = Design.control design in
  let states = Control.num_steps control in
  let code_width = Encoding.width encoding ~states in
  let codes = Array.of_list (Encoding.codes encoding ~states) in
  let lines = output_lines design in
  (* Minimize each output line plus each next-state bit over the code;
     unused code points are don't-cares (this is what makes one-hot
     decode cheap). *)
  let all_codes = Array.to_list codes in
  let minimize_on_set on_states =
    let on = List.map (fun s -> codes.(s)) on_states in
    let off x = List.mem x all_codes && not (List.mem x on) in
    Qm.minimize_with_dc ~width:code_width ~off on
  in
  let output_costs = List.map (fun l -> minimize_on_set l.on_states) lines in
  let next_state_costs =
    List.map
      (fun bit ->
        let on =
          List.filter
            (fun s -> (codes.((s + 1) mod states) lsr bit) land 1 = 1)
            (Mclock_util.List_ext.range 0 (states - 1))
        in
        minimize_on_set on)
      (Mclock_util.List_ext.range 0 (code_width - 1))
  in
  let all_costs = output_costs @ next_state_costs in
  let product_terms =
    Mclock_util.List_ext.sum_by (fun c -> c.Qm.product_terms) all_costs
  in
  let total_literals =
    Mclock_util.List_ext.sum_by (fun c -> c.Qm.total_literals) all_costs
  in
  let output_lines_n = List.length lines in
  let area =
    (* AND plane + OR plane + state register. *)
    (float product_terms *. float (2 * code_width) *. crosspoint_area)
    +. (float product_terms *. float (output_lines_n + code_width) *. crosspoint_area)
    +. L.storage_area tech L.Register ~width:code_width
  in
  (* Switching per period. *)
  let register_toggles = Encoding.toggles_per_period encoding ~states in
  let output_toggles = ref 0 in
  List.iter
    (fun l ->
      let on = Array.make states false in
      List.iter (fun s -> on.(s) <- true) l.on_states;
      for s = 0 to states - 1 do
        if on.(s) <> on.((s + 1) mod states) then incr output_toggles
      done)
    lines;
  let ept cap = L.energy_per_transition tech cap in
  let energy =
    (* State register: clock every cycle + data toggles. *)
    (float states *. 2. *. ept (L.storage_clock_cap tech L.Register ~width:code_width))
    +. (float register_toggles
       *. ept (L.storage_params tech L.Register).L.internal_cap_per_bit)
    (* Plane: each toggled code bit sweeps the AND plane. *)
    +. (float register_toggles *. float product_terms *. ept plane_cap_per_term)
    (* Output lines into the datapath. *)
    +. (float !output_toggles *. ept tech.L.control_line_cap)
  in
  let period_s = float states /. tech.L.clock_frequency in
  {
    encoding;
    states;
    code_width;
    output_lines = output_lines_n;
    product_terms;
    total_literals;
    register_toggles_per_period = register_toggles;
    output_toggles_per_period = !output_toggles;
    area;
    energy_per_period_pj = energy;
    power_mw = energy *. 1e-12 /. period_s *. 1e3;
  }

let render reports =
  let table =
    Mclock_util.Table.create
      ~header:
        [ "encoding"; "bits"; "terms"; "literals"; "reg toggles"; "line toggles";
          "area [l^2]"; "power [mW]" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun r ->
      Mclock_util.Table.add_row table
        [
          Encoding.name r.encoding;
          string_of_int r.code_width;
          string_of_int r.product_terms;
          string_of_int r.total_literals;
          string_of_int r.register_toggles_per_period;
          string_of_int r.output_toggles_per_period;
          Printf.sprintf "%.0f" r.area;
          Printf.sprintf "%.3f" r.power_mw;
        ])
    reports;
  Mclock_util.Table.render table
