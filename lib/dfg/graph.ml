(* The data-flow graph: single-assignment behaviour to be synthesized.

   Invariants established by [create] (and assumed everywhere else):
   - node ids are unique;
   - each variable is produced by at most one node;
   - no primary input is produced by a node;
   - every variable read is either a primary input or produced;
   - every primary output is produced by some node;
   - the def-use relation is acyclic (a topological order exists). *)

type t = {
  name : string;
  nodes : Node.t list; (* in a valid topological order *)
  inputs : Var.t list;
  outputs : Var.t list;
  producer : Node.t Var.Map.t;
  consumers : Node.t list Var.Map.t;
  by_id : Node.t Node.Map.t;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let build_producer nodes =
  List.fold_left
    (fun acc node ->
      let result = Node.result node in
      if Var.Map.mem result acc then
        invalid "variable %a produced by more than one node" Var.pp result
      else Var.Map.add result node acc)
    Var.Map.empty nodes

let build_consumers nodes =
  List.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc v ->
          let existing = Option.value ~default:[] (Var.Map.find_opt v acc) in
          Var.Map.add v (node :: existing) acc)
        acc (Node.operand_vars node))
    Var.Map.empty nodes
  |> Var.Map.map List.rev

(* Kahn topological sort over the def-use relation.  Returns nodes in
   dependency order or raises [Invalid] when a cycle exists. *)
let topological_order ~producer nodes =
  let deps node =
    List.filter_map
      (fun v -> Var.Map.find_opt v producer)
      (Node.operand_vars node)
  in
  let indegree =
    List.fold_left
      (fun acc node -> Node.Map.add (Node.id node) (List.length (deps node)) acc)
      Node.Map.empty nodes
  in
  let dependents =
    List.fold_left
      (fun acc node ->
        List.fold_left
          (fun acc dep ->
            let key = Node.id dep in
            let existing = Option.value ~default:[] (Node.Map.find_opt key acc) in
            Node.Map.add key (node :: existing) acc)
          acc (deps node))
      Node.Map.empty nodes
  in
  let ready =
    List.filter (fun n -> Node.Map.find (Node.id n) indegree = 0) nodes
  in
  let rec go acc indegree = function
    | [] ->
        let sorted = List.rev acc in
        if List.length sorted <> List.length nodes then
          invalid "data-flow graph has a dependency cycle"
        else sorted
    | node :: ready ->
        let followers =
          Option.value ~default:[] (Node.Map.find_opt (Node.id node) dependents)
        in
        let indegree, newly_ready =
          List.fold_left
            (fun (indegree, newly) follower ->
              let key = Node.id follower in
              let d = Node.Map.find key indegree - 1 in
              let indegree = Node.Map.add key d indegree in
              if d = 0 then (indegree, follower :: newly)
              else (indegree, newly))
            (indegree, []) followers
        in
        go (node :: acc) indegree (newly_ready @ ready)
  in
  go [] indegree ready

let create ~name ~inputs ~outputs nodes =
  let ids = List.map Node.id nodes in
  let unique_ids = Mclock_util.List_ext.dedup ~compare:Int.compare ids in
  if List.length unique_ids <> List.length ids then
    invalid "duplicate node ids";
  let producer = build_producer nodes in
  List.iter
    (fun input ->
      if Var.Map.mem input producer then
        invalid "primary input %a is produced by a node" Var.pp input)
    inputs;
  let input_set = Var.Set.of_list inputs in
  List.iter
    (fun node ->
      List.iter
        (fun v ->
          if (not (Var.Set.mem v input_set)) && not (Var.Map.mem v producer)
          then
            invalid "variable %a read by node %d is never defined" Var.pp v
              (Node.id node))
        (Node.operand_vars node))
    nodes;
  List.iter
    (fun output ->
      if not (Var.Map.mem output producer) then
        invalid "primary output %a is never produced" Var.pp output)
    outputs;
  let nodes = topological_order ~producer nodes in
  let by_id =
    List.fold_left
      (fun acc node -> Node.Map.add (Node.id node) node acc)
      Node.Map.empty nodes
  in
  {
    name;
    nodes;
    inputs;
    outputs;
    producer;
    consumers = build_consumers nodes;
    by_id;
  }

let name t = t.name
let nodes t = t.nodes
let inputs t = t.inputs
let outputs t = t.outputs

let node_count t = List.length t.nodes

let node t id =
  match Node.Map.find_opt id t.by_id with
  | Some n -> n
  | None -> invalid "no node with id %d" id

let producer t v = Var.Map.find_opt v t.producer

let consumers t v = Option.value ~default:[] (Var.Map.find_opt v t.consumers)

let is_input t v = List.exists (Var.equal v) t.inputs
let is_output t v = List.exists (Var.equal v) t.outputs

let variables t =
  let produced = List.map Node.result t.nodes in
  Var.Set.elements (Var.Set.of_list (t.inputs @ produced))

let predecessors t node =
  List.filter_map (fun v -> producer t v) (Node.operand_vars node)

let successors t node = consumers t (Node.result node)

let unused_inputs t =
  List.filter (fun v -> consumers t v = [] && not (is_output t v)) t.inputs

let dead_nodes t =
  List.filter
    (fun n ->
      let r = Node.result n in
      consumers t r = [] && not (is_output t r))
    t.nodes

(* Operation-kind census, e.g. for sizing resource constraints. *)
let op_census t =
  let incr op acc =
    Mclock_util.List_ext.assoc_update ~key:op ~default:0 (fun n -> n + 1) acc
  in
  List.fold_left (fun acc node -> incr (Node.op node) acc) [] t.nodes

let pp ppf t =
  Fmt.pf ppf "@[<v>dfg %s@,inputs: %a@,outputs: %a@,%a@]" t.name
    (Fmt.list ~sep:(Fmt.any " ") Var.pp) t.inputs
    (Fmt.list ~sep:(Fmt.any " ") Var.pp) t.outputs
    (Fmt.list ~sep:Fmt.cut Node.pp) t.nodes
