(** The data-flow graph: single-assignment behaviour to be synthesized.

    A valid graph has unique node ids, one producer per variable,
    defined reads, produced outputs, and an acyclic def-use relation. *)

type t

exception Invalid of string

val create : name:string -> inputs:Var.t list -> outputs:Var.t list -> Node.t list -> t
(** Validates all invariants; raises {!Invalid} with a diagnostic
    otherwise.  Nodes are stored in a topological order. *)

val name : t -> string

val nodes : t -> Node.t list
(** In topological (dependency) order. *)

val inputs : t -> Var.t list
val outputs : t -> Var.t list
val node_count : t -> int

val node : t -> int -> Node.t
(** Raises {!Invalid} if the id is unknown. *)

val producer : t -> Var.t -> Node.t option
(** The unique node producing a variable, if any. *)

val consumers : t -> Var.t -> Node.t list
(** Nodes reading a variable. *)

val is_input : t -> Var.t -> bool
val is_output : t -> Var.t -> bool

val variables : t -> Var.t list
(** All variables (inputs and produced), sorted. *)

val predecessors : t -> Node.t -> Node.t list
val successors : t -> Node.t -> Node.t list

val unused_inputs : t -> Var.t list
(** Declared inputs that no node reads and that are not outputs. *)

val dead_nodes : t -> Node.t list
(** Nodes whose result is neither consumed nor a primary output. *)

val op_census : t -> (Op.t * int) list
(** Count of nodes per operation kind. *)

val pp : Format.formatter -> t -> unit
