(** The mode-parameterized propagation engine for the data-dependent
    activity categories (Data, Mux_data, Alu_internal, Storage_write,
    Isolation).  In [Estimate] mode it computes expected energies under
    the stimulus statistics; in [Bound] mode it runs the same schedule
    over the {0, 1/2, 1} pinned/unknown abstract domain, yielding a
    worst-case charge that dominates any simulation run. *)

val op_output :
  Prob.mode ->
  Mclock_dfg.Op.t ->
  width:int ->
  float array ->
  float array ->
  float array
(** Per-bit output signal probabilities of one ALU evaluation; exact
    constant folding when every operand bit is pinned. *)

val run :
  Prob.mode ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Schedule_model.t ->
  stimulus:Mclock_sim.Stimulus.model ->
  iterations:int ->
  Mclock_sim.Activity.t
(** Full-unroll propagation over all [iterations * t_steps] cycles,
    charging the data-dependent categories only (combine with
    {!Duty.charge} for the complete picture). *)
