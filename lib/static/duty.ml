(* The duty-cycle model: closed-form energy of every data-independent
   mechanism.

   The paper's central power lever is that a storage element in
   partition p of an n-clock scheme sees a clock edge only during its
   1/n duty window: over N cycles its pin toggles ceil-style
   (N - p)/n + 1 times instead of N times.  Clock energy, gating-cell
   enable edges, control-line transitions and mux select lines are all
   functions of the schedule alone, so this module computes them in
   closed form — they are exact (charge-for-charge equal to the
   simulator), not estimated, and are shared unchanged by the estimate
   and the bound. *)

open Mclock_rtl
module L = Mclock_tech.Library
module Activity = Mclock_sim.Activity

(* Number of cycles c in [1, cycles] with ((c-1) mod n) + 1 = phase:
   the storage's duty window. *)
let phase_ticks ~phases ~phase ~cycles =
  if cycles < phase then 0 else ((cycles - phase) / phases) + 1

(* Load-enable edge count of one storage over the whole run: the
   per-step load flag sequence repeats every period; the enable line
   starts low. *)
let gating_toggles (m : Schedule_model.t) ~iterations id =
  let l arr s = arr.(s).Schedule_model.loads.(id) in
  let within arr =
    let c = ref 0 in
    for s = 1 to m.Schedule_model.t_steps - 1 do
      if l arr s <> l arr (s - 1) then incr c
    done;
    !c
  in
  let t = m.Schedule_model.t_steps in
  let first = (if l m.Schedule_model.first 0 then 1 else 0) + within m.Schedule_model.first in
  let boundary =
    if l m.Schedule_model.steady 0 <> l m.Schedule_model.steady (t - 1) then 1
    else 0
  in
  let steady = boundary + within m.Schedule_model.steady in
  first + ((iterations - 1) * steady)

let loads_per_period (m : Schedule_model.t) id =
  let c = ref 0 in
  Array.iter
    (fun s -> if s.Schedule_model.loads.(id) then incr c)
    m.Schedule_model.steady;
  !c

let charge tech design (m : Schedule_model.t) ~iterations ~into =
  let datapath = Design.datapath design in
  let clock = Design.clock design in
  let width = Datapath.width datapath in
  let cycles = iterations * m.Schedule_model.t_steps in
  let ept cap = L.energy_per_transition tech cap in
  let sum_steps f =
    let tot arr = Array.fold_left (fun acc s -> acc +. f s) 0. arr in
    tot m.Schedule_model.first
    +. (float_of_int (iterations - 1) *. tot m.Schedule_model.steady)
  in
  (* Clock and gating, per storage. *)
  List.iter
    (fun (c, s) ->
      let id = Comp.id c in
      let kind = s.Comp.s_kind in
      if s.Comp.s_gated then begin
        Activity.add into ~comp:id ~category:Activity.Clock
          (float_of_int cycles *. 2. *. ept tech.L.clock_tree_cap_per_sink);
        let load_cycles = iterations * loads_per_period m id in
        Activity.add into ~comp:id ~category:Activity.Clock
          (float_of_int load_cycles
          *. 2.
          *. ept (L.storage_clock_pin_cap tech kind ~width));
        Activity.add into ~comp:id ~category:Activity.Gating
          (float_of_int (gating_toggles m ~iterations id)
          *. ept tech.L.gating_cell_cap)
      end
      else
        let ticks =
          phase_ticks ~phases:(Clock.phases clock) ~phase:s.Comp.s_phase ~cycles
        in
        Activity.add into ~comp:id ~category:Activity.Clock
          (float_of_int ticks *. 2. *. ept (L.storage_clock_cap tech kind ~width)))
    (Datapath.storages datapath);
  (* Control network, charged to the global component. *)
  Activity.add into ~comp:Activity.global_component ~category:Activity.Control
    (sum_steps (fun s -> float_of_int s.Schedule_model.control_changes)
    *. ept tech.L.control_line_cap);
  (* Select lines, per mux. *)
  List.iter
    (fun (c, _) ->
      let id = Comp.id c in
      Activity.add into ~comp:id ~category:Activity.Mux_select
        (sum_steps (fun s ->
             if s.Schedule_model.sel_changed.(id) then 1. else 0.)
        *. ept (L.mux_select_cap tech)))
    (Datapath.muxes datapath)
