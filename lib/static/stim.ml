(* Closed-form input statistics of the stimulus models.

   The simulator applies one fresh environment per computation; a port
   therefore sees a stream of adjacent (env_{i-1}, env_i) pairs, and
   the per-bit statistics of that stream have closed forms for every
   model in [Mclock_sim.Stimulus]:

   - Uniform: independent uniform draws; every bit has signal
     probability 1/2 and flips between adjacent draws with
     probability 1/2.
   - Correlated p: each bit flips with probability p per step; the
     first draw is uniform and bit-flipping preserves uniformity, so
     the signal probability stays 1/2.
   - Ramp k: x_{i+1} = x_i + k (mod 2^w) from a uniform start, which
     keeps every x_i uniform.  Bit j of x xor (x+k) is a function of
     x mod 2^(j+1) only (carries come from below), so its exact toggle
     rate is an average over that residue — enumerated below.  Bits
     below the 2-adic valuation of k never toggle.
   - Constant: the first draw repeats forever; signal probability 1/2
     (the held value is a uniform unknown), toggle probability 0.

   The first environment is always a uniform draw regardless of model,
   so the reset-time signal probability is 1/2 for every model. *)

let signal_probability (_ : Mclock_sim.Stimulus.model) = 0.5

(* Exact toggle rate of bit [j] under x -> x + k at width [w], averaged
   over a uniform x: enumerate the low (j+1)-bit residues.  Falls back
   to 1/2 above [enum_limit] bits (no bundled workload is that wide). *)
let enum_limit = 20

let ramp_bit_rate ~width ~k j =
  let k = k land ((1 lsl width) - 1) in
  if k = 0 then 0.
  else if j + 1 > enum_limit then 0.5
  else begin
    let m = 1 lsl (j + 1) in
    let kl = k land (m - 1) in
    let count = ref 0 in
    for x = 0 to m - 1 do
      let toggled = (x lxor ((x + kl) land (m - 1))) land (1 lsl j) <> 0 in
      if toggled then incr count
    done;
    float_of_int !count /. float_of_int m
  end

(* Per-bit probability that one applied port update flips the bit
   (index 0 = LSB). *)
let transition model ~width =
  match (model : Mclock_sim.Stimulus.model) with
  | Uniform -> Array.make width 0.5
  | Correlated p -> Array.make width p
  | Constant -> Array.make width 0.
  | Ramp k -> Array.init width (ramp_bit_rate ~width ~k)

(* May-flip indicators: a bit whose exact rate is 0 provably never
   toggles (Constant ports, Ramp bits below the valuation of k); any
   positive rate may toggle on any given update. *)
let transition_bound model ~width =
  Array.map (fun r -> if r = 0. then 0. else 1.) (transition model ~width)

let parse s =
  let fail () =
    Error
      (Printf.sprintf
         "bad stimulus %S (expected uniform, correlated:P, ramp:K or constant)"
         s)
  in
  match String.lowercase_ascii (String.trim s) with
  | "uniform" -> Ok Mclock_sim.Stimulus.Uniform
  | "constant" -> Ok Mclock_sim.Stimulus.Constant
  | t -> (
      match String.index_opt t ':' with
      | Some i -> (
          let head = String.sub t 0 i in
          let arg = String.sub t (i + 1) (String.length t - i - 1) in
          match head with
          | "correlated" -> (
              match float_of_string_opt arg with
              | Some p when p >= 0. && p <= 1. ->
                  Ok (Mclock_sim.Stimulus.Correlated p)
              | _ -> fail ())
          | "ramp" -> (
              match int_of_string_opt arg with
              | Some k when k >= 0 -> Ok (Mclock_sim.Stimulus.Ramp k)
              | _ -> fail ())
          | _ -> fail ())
      | None -> fail ())
