(** Exact resolution of the latched control schedule into two fully
    held-resolved periods (the first period from reset, and the steady
    period every later cycle replays).  Everything here is
    data-independent and therefore exact for any simulation run. *)

type step = {
  sel : int array;  (** held select per mux id, in force this cycle *)
  sel_changed : bool array;  (** select assignment changed the line *)
  op : Mclock_dfg.Op.t option array;  (** held function per ALU id *)
  op_changed : bool array;  (** function assignment changed the line *)
  busy : bool array;  (** ALU has a function assignment this step *)
  loads : bool array;  (** storage load-enable per id *)
  control_changes : int;
      (** select + function + load-line transitions this cycle *)
}

type t = {
  t_steps : int;
  max_id : int;
  first : step array;  (** steps 1..T of the first period, 0-indexed *)
  steady : step array;  (** steps 1..T of every later period *)
}

val build : Mclock_rtl.Design.t -> t

val step_at : t -> cycle:int -> step
(** The resolved step in force at 1-based global [cycle]. *)
