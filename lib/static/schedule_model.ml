(* Exact replay of the latched control schedule.

   Control words assign mux selects and ALU functions sparsely;
   unassigned lines hold their previous value.  From the simulator's
   reset state (selects 0, each ALU on the first function of its set,
   no loads) the held state after one full period repeats every period
   thereafter: the same assignments land on the same held values.  Two
   resolved periods therefore describe every cycle of a run:

   - [first]   — steps 1..T from reset (transient select/function
     changes, the load-line edge out of the all-idle reset);
   - [steady]  — steps 1..T of every later period.

   Each resolved step carries, per component, the held select/function
   in force during that cycle, whether the control assignment changed
   it (the simulator charges select-line and function-change energy on
   exactly those events), the busy and load sets, and the total
   control-line change count including load-line edges.  All of it is
   data-independent, so these are exact facts about any simulation of
   the design, not estimates. *)

open Mclock_rtl

type step = {
  sel : int array;  (** held select per mux id, in force this cycle *)
  sel_changed : bool array;
  op : Mclock_dfg.Op.t option array;  (** held function per ALU id *)
  op_changed : bool array;
  busy : bool array;  (** ALU listed in this step's function assignments *)
  loads : bool array;  (** storage load-enable per id *)
  control_changes : int;
      (** select + function + load-line transitions this cycle *)
}

type t = {
  t_steps : int;
  max_id : int;
  first : step array;  (** steps 1..T of the first period, 0-indexed *)
  steady : step array;  (** steps 1..T of every later period *)
}

let build design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  let t_steps = Control.num_steps control in
  let max_id =
    List.fold_left (fun acc c -> max acc (Comp.id c)) 0 (Datapath.comps datapath)
  in
  (* Held state, mirrored from the simulator's reset values. *)
  let sel = Array.make (max_id + 1) 0 in
  let fn : Mclock_dfg.Op.t option array = Array.make (max_id + 1) None in
  List.iter
    (fun (c, a) ->
      fn.(Comp.id c) <-
        Some (List.hd (Mclock_dfg.Op.Set.to_list a.Comp.a_fset)))
    (Datapath.alus datapath);
  let prev_loads = Array.make (max_id + 1) false in
  let resolve step_no =
    let word = Control.word control ~step:(((step_no - 1) mod t_steps) + 1) in
    let changes = ref 0 in
    let sel_changed = Array.make (max_id + 1) false in
    List.iter
      (fun (mux_id, idx) ->
        if sel.(mux_id) <> idx then begin
          incr changes;
          sel_changed.(mux_id) <- true;
          sel.(mux_id) <- idx
        end)
      word.Control.selects;
    let op_changed = Array.make (max_id + 1) false in
    let busy = Array.make (max_id + 1) false in
    List.iter
      (fun (alu_id, op) ->
        busy.(alu_id) <- true;
        (match fn.(alu_id) with
        | Some prev when Mclock_dfg.Op.equal prev op -> ()
        | Some _ | None ->
            incr changes;
            op_changed.(alu_id) <- true);
        fn.(alu_id) <- Some op)
      word.Control.alu_ops;
    let loads = Array.make (max_id + 1) false in
    List.iter (fun id -> loads.(id) <- true) word.Control.loads;
    for id = 0 to max_id do
      if loads.(id) <> prev_loads.(id) then incr changes;
      prev_loads.(id) <- loads.(id)
    done;
    {
      sel = Array.copy sel;
      sel_changed;
      op = Array.copy fn;
      op_changed;
      busy;
      loads;
      control_changes = !changes;
    }
  in
  let first = Array.init t_steps (fun i -> resolve (i + 1)) in
  let steady = Array.init t_steps (fun i -> resolve (t_steps + i + 1)) in
  { t_steps; max_id; first; steady }

let step_at t ~cycle =
  let idx = (cycle - 1) mod t.t_steps in
  if cycle <= t.t_steps then t.first.(idx) else t.steady.(idx)
