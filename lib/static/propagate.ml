(* The propagation engine: per-bit signal and transition probabilities
   pushed through the datapath, cycle by cycle, against the exact
   control schedule — no values, no RNG, only statistics.

   The engine mirrors the reference simulator's cycle structure
   (ports, combinational components in topological order, storages in
   ascending id order) so that every "which value does this reader see
   this cycle" question has the simulator's exact answer:

   - combinational components read a storage's value from the end of
     the previous cycle (storages tick after propagation);
   - a storage reading a smaller-id storage sees this cycle's update,
     a larger-id storage's previous value (the simulator updates
     storages in ascending id order);
   - ports update before propagation (direct ports at step 1,
     registered-input ports at the final step of the previous
     computation — exactly the simulator's plumbing, including the
     missing first/last applications).

   Per component the engine tracks the statistics of the same state
   the simulator holds concretely: the held output value (signal
   probability), the operand capture registers of ALUs and the stored
   word of storages (as running "differs from the capture"
   accumulators), and charges the data-dependent activity categories
   (Data, Mux_data, Alu_internal, Storage_write, Isolation) from
   expected — or, in Bound mode, worst-case — Hamming distances.
   Every charge in the simulator is linear in a Hamming distance, so
   expectations fold through exactly and worst cases dominate.

   The data-independent categories (Clock, Gating, Control,
   Mux_select) are exact closed forms and live in [Duty]. *)

open Mclock_rtl
module L = Mclock_tech.Library
module Activity = Mclock_sim.Activity
module Op = Mclock_dfg.Op
module Var = Mclock_dfg.Var
module B = Mclock_util.Bitvec

(* Output-bit signal probabilities of one ALU evaluation.  When every
   operand bit is a proven constant the operation is evaluated
   exactly (both modes — this is the bound-tightening rule that pins
   e.g. constant-operand datapaths); otherwise per-operation rules
   apply, with the comparison operations' zero upper bits pinned. *)
let op_output mode op ~width pa pb =
  let all_pinned arr = Array.for_all Prob.pinned arr in
  let bv_of arr =
    let v = ref 0 in
    Array.iteri (fun i x -> if x = 1. then v := !v lor (1 lsl i)) arr;
    B.create ~width !v
  in
  if all_pinned pa && (Op.arity op = 1 || all_pinned pb) then begin
    let r =
      match Op.arity op with
      | 1 -> Op.eval op [ bv_of pa ]
      | _ -> Op.eval op [ bv_of pa; bv_of pb ]
    in
    Array.init width (fun b -> if B.bit r b then 1. else 0.)
  end
  else
    match op with
    | Op.Add | Op.Sub ->
        Array.init width (fun b ->
            if b = 0 then Prob.xor_p mode pa.(0) pb.(0) else 0.5)
    | Op.Mul ->
        Array.init width (fun b ->
            if b = 0 then Prob.and_p mode pa.(0) pb.(0) else 0.5)
    | Op.Div | Op.Shl | Op.Shr -> Array.make width 0.5
    | Op.And -> Array.init width (fun b -> Prob.and_p mode pa.(b) pb.(b))
    | Op.Or -> Array.init width (fun b -> Prob.or_p mode pa.(b) pb.(b))
    | Op.Xor -> Array.init width (fun b -> Prob.xor_p mode pa.(b) pb.(b))
    | Op.Not -> Array.map (Prob.not_p mode) pa
    | Op.Gt | Op.Lt ->
        Array.init width (fun b -> if b = 0 then 0.5 else 0.)
    | Op.Eq ->
        Array.init width (fun b ->
            if b <> 0 then 0.
            else
              match mode with
              | Prob.Bound -> 0.5
              | Prob.Estimate ->
                  let m = ref 1. in
                  for i = 0 to width - 1 do
                    m :=
                      !m
                      *. ((pa.(i) *. pb.(i))
                         +. ((1. -. pa.(i)) *. (1. -. pb.(i))))
                  done;
                  !m)

let run mode tech design (model : Schedule_model.t) ~stimulus ~iterations =
  let datapath = Design.datapath design in
  let width = Datapath.width datapath in
  let t_steps = model.Schedule_model.t_steps in
  let max_id = model.Schedule_model.max_id in
  let comb_order = Datapath.combinational_order datapath in
  let storages = Datapath.storages datapath in
  let activity = Activity.create ~max_comp:max_id () in
  let ept cap = L.energy_per_transition tech cap in
  let charge ~comp ~category v = Activity.add activity ~comp ~category v in
  let w = width in
  let zeros = Array.make w 0. in
  let mk () = Array.init (max_id + 1) (fun _ -> Array.make w 0.) in
  (* Held output statistics per component; storage values are double-
     buffered so readers see the simulator-exact vintage. *)
  let p = mk () and t_cur = mk () in
  let stor_p_prev = mk () and stor_t_prev = mk () in
  let acc_a = mk () and acc_b = mk () and acc_s = mk () in
  let busy_prev = Array.make (max_id + 1) false in
  let mux_first = Array.make (max_id + 1) true in
  let is_storage = Array.make (max_id + 1) false in
  List.iter (fun (c, _) -> is_storage.(Comp.id c) <- true) storages;
  (* Input plumbing, as in the simulator. *)
  let graph_inputs = Design.input_ports design in
  let input_register v =
    List.find_map
      (fun (c, s) ->
        if List.exists (Var.equal v) s.Comp.s_holds then Some (Comp.id c)
        else None)
      storages
  in
  let plumbing =
    List.map (fun (v, port) -> (v, port, input_register v)) graph_inputs
  in
  let p0 = Stim.signal_probability stimulus in
  let trans =
    match mode with
    | Prob.Estimate -> Stim.transition stimulus ~width
    | Prob.Bound -> Stim.transition_bound stimulus ~width
  in
  (* Reset state: ports and input registers hold the first environment
     (signal probability [p0]); every other component resets to zero,
     a proven constant. *)
  List.iter
    (fun (_, port, reg) ->
      Array.fill p.(port) 0 w p0;
      Option.iter (fun sid -> Array.fill p.(sid) 0 w p0) reg)
    plumbing;
  List.iter
    (fun (c, _) ->
      let id = Comp.id c in
      Array.blit p.(id) 0 stor_p_prev.(id) 0 w)
    storages;
  let const_cache = Hashtbl.create 8 in
  let const_p cst =
    match Hashtbl.find_opt const_cache cst with
    | Some arr -> arr
    | None ->
        let arr =
          Array.init w (fun b -> if (cst lsr b) land 1 = 1 then 1. else 0.)
        in
        Hashtbl.add const_cache cst arr;
        arr
  in
  let reset_p = function
    | Comp.From_const cst -> const_p cst
    | Comp.From_comp sid -> p.(sid)
  in
  (* Operand captures and stored words start out holding the reset
     value of their source (zero for everything except ports and input
     registers), so the accumulators start at "differs from zero". *)
  List.iter
    (fun (c, a) ->
      let id = Comp.id c in
      let pa = reset_p a.Comp.a_src_a in
      for b = 0 to w - 1 do
        acc_a.(id).(b) <- Prob.init_diff mode pa.(b)
      done;
      let pb =
        match a.Comp.a_src_b with Some s -> reset_p s | None -> pa
      in
      for b = 0 to w - 1 do
        acc_b.(id).(b) <- Prob.init_diff mode pb.(b)
      done)
    (Datapath.alus datapath);
  List.iter
    (fun (c, s) ->
      let id = Comp.id c in
      let own_port =
        (* an input register fed straight by its own port holds the
           same first-environment value: provably no initial skew *)
        List.exists
          (fun (_, port, reg) ->
            reg = Some id && s.Comp.s_input = Comp.From_comp port)
          plumbing
      in
      if not own_port then
        let ps = reset_p s.Comp.s_input in
        for b = 0 to w - 1 do
          acc_s.(id).(b) <- Prob.differ mode ps.(b) p.(id).(b)
        done)
    storages;
  (* Hoisted coefficients. *)
  let ept_reg_out = ept tech.L.register.L.output_cap_per_bit in
  let ept_mux_data = ept tech.L.mux.L.data_cap_per_bit in
  let ept_fu_out = ept tech.L.fu_output_cap_per_bit in
  let ept_iso = ept tech.L.isolation_cap_per_bit in
  let alu_int_ept = Array.make (max_id + 1) 0. in
  List.iter
    (fun (c, a) ->
      alu_int_ept.(Comp.id c) <-
        ept (L.alu_internal_cap tech ~width a.Comp.a_fset)
        /. (2. *. float_of_int w))
    (Datapath.alus datapath);
  let stor_write_ept = Array.make (max_id + 1) 0. in
  let stor_out_ept = Array.make (max_id + 1) 0. in
  List.iter
    (fun (c, s) ->
      let ps = L.storage_params tech s.Comp.s_kind in
      stor_write_ept.(Comp.id c) <- ept ps.L.internal_cap_per_bit;
      stor_out_ept.(Comp.id c) <- ept ps.L.output_cap_per_bit)
    storages;
  (* Source views: what a reader sees this cycle. *)
  let comb_view = function
    | Comp.From_const cst -> (const_p cst, zeros)
    | Comp.From_comp sid ->
        if is_storage.(sid) then (stor_p_prev.(sid), stor_t_prev.(sid))
        else (p.(sid), t_cur.(sid))
  in
  let storage_view ~reader = function
    | Comp.From_const cst -> (const_p cst, zeros)
    | Comp.From_comp sid ->
        if is_storage.(sid) && sid >= reader then
          (stor_p_prev.(sid), stor_t_prev.(sid))
        else (p.(sid), t_cur.(sid))
  in
  let trans_sum = Prob.sum trans in
  let total_cycles = iterations * t_steps in
  for cycle = 1 to total_cycles do
    let sm = Schedule_model.step_at model ~cycle in
    let step = ((cycle - 1) mod t_steps) + 1 in
    let iter_idx = (cycle - 1) / t_steps in
    (* 1. Ports. *)
    List.iter
      (fun (_, port, reg) ->
        Array.fill t_cur.(port) 0 w 0.;
        let fires =
          match reg with
          | None -> step = 1 && iter_idx > 0
          | Some _ -> step = t_steps && iter_idx + 1 < iterations
        in
        if fires then begin
          Array.blit trans 0 t_cur.(port) 0 w;
          charge ~comp:port ~category:Activity.Data
            (trans_sum *. ept_reg_out)
        end)
      plumbing;
    (* 2. Combinational propagation. *)
    List.iter
      (fun c ->
        let id = Comp.id c in
        match Comp.kind c with
        | Comp.Mux m ->
            let sel = sm.Schedule_model.sel.(id) in
            let psrc, tsrc = comb_view m.Comp.m_choices.(sel) in
            let reselected =
              sm.Schedule_model.sel_changed.(id) || mux_first.(id)
            in
            mux_first.(id) <- false;
            let tout = t_cur.(id) in
            if reselected then
              for b = 0 to w - 1 do
                tout.(b) <- Prob.differ mode p.(id).(b) psrc.(b)
              done
            else Array.blit tsrc 0 tout 0 w;
            charge ~comp:id ~category:Activity.Mux_data
              (Prob.sum tout *. ept_mux_data);
            Array.blit psrc 0 p.(id) 0 w
        | Comp.Alu a ->
            let busy = sm.Schedule_model.busy.(id) in
            let psa, tsa = comb_view a.Comp.a_src_a in
            let psb, tsb =
              match a.Comp.a_src_b with
              | Some s -> comb_view s
              | None -> (psa, tsa)
            in
            for b = 0 to w - 1 do
              acc_a.(id).(b) <- Prob.toggle_acc mode acc_a.(id).(b) tsa.(b);
              acc_b.(id).(b) <- Prob.toggle_acc mode acc_b.(id).(b) tsb.(b)
            done;
            if a.Comp.a_isolated && not busy then begin
              (* Inputs frozen behind the isolation cells; charge the
                 cells on the busy->idle edge.  Source toggles keep
                 accumulating against the frozen captures. *)
              if busy_prev.(id) then
                charge ~comp:id ~category:Activity.Isolation
                  (float_of_int w *. ept_iso);
              busy_prev.(id) <- false;
              Array.fill t_cur.(id) 0 w 0.
            end
            else begin
              let opch = sm.Schedule_model.op_changed.(id) in
              let eh =
                Prob.sum acc_a.(id)
                +. Prob.sum acc_b.(id)
                +. if opch then float_of_int w else 0.
              in
              charge ~comp:id ~category:Activity.Alu_internal
                (eh *. alu_int_ept.(id));
              let q =
                if opch then 1.
                else if a.Comp.a_src_b = None then Prob.union_any acc_a.(id)
                else
                  1.
                  -. (1. -. Prob.union_any acc_a.(id))
                     *. (1. -. Prob.union_any acc_b.(id))
              in
              let op =
                match sm.Schedule_model.op.(id) with
                | Some o -> o
                | None -> assert false
              in
              let pnew = op_output mode op ~width psa psb in
              let tout = t_cur.(id) in
              for b = 0 to w - 1 do
                tout.(b) <- q *. Prob.differ mode p.(id).(b) pnew.(b);
                p.(id).(b) <-
                  Prob.blend mode ~q ~held:p.(id).(b) ~fresh:pnew.(b)
              done;
              charge ~comp:id ~category:Activity.Data
                (Prob.sum tout *. ept_fu_out);
              if a.Comp.a_isolated && busy then
                charge ~comp:id ~category:Activity.Isolation (eh *. ept_iso);
              Array.fill acc_a.(id) 0 w 0.;
              Array.fill acc_b.(id) 0 w 0.;
              busy_prev.(id) <- busy
            end
        | Comp.Input _ | Comp.Storage _ -> assert false)
      comb_order;
    (* 3. Storage updates, ascending id. *)
    List.iter
      (fun (c, s) ->
        let id = Comp.id c in
        let psrc, tsrc = storage_view ~reader:id s.Comp.s_input in
        for b = 0 to w - 1 do
          acc_s.(id).(b) <- Prob.toggle_acc mode acc_s.(id).(b) tsrc.(b)
        done;
        let tout = t_cur.(id) in
        if sm.Schedule_model.loads.(id) then begin
          let h = Prob.sum acc_s.(id) in
          charge ~comp:id ~category:Activity.Storage_write
            (h *. stor_write_ept.(id));
          charge ~comp:id ~category:Activity.Data (h *. stor_out_ept.(id));
          Array.blit acc_s.(id) 0 tout 0 w;
          Array.blit psrc 0 p.(id) 0 w;
          Array.fill acc_s.(id) 0 w 0.
        end
        else Array.fill tout 0 w 0.)
      storages;
    (* 4. Publish storage outputs for the next cycle's readers. *)
    List.iter
      (fun (c, _) ->
        let id = Comp.id c in
        Array.blit t_cur.(id) 0 stor_t_prev.(id) 0 w;
        Array.blit p.(id) 0 stor_p_prev.(id) 0 w)
      storages
  done;
  activity
