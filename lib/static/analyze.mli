(** Simulation-free power analysis of a synthesized design.

    [run] resolves the latched control schedule exactly, seeds
    per-bit signal/transition statistics from the stimulus model's
    closed forms, propagates them through the datapath over the full
    run, and returns both an expected-value estimate and a sound
    upper bound: [b_power_mw] is a certificate — no simulation of the
    design under the given stimulus model can dissipate more. *)

type t = {
  design_name : string;
  stimulus : Mclock_sim.Stimulus.model;
  iterations : int;
  cycles : int;
  sim_time_s : float;
  estimate : Mclock_sim.Activity.t;
      (** expected per-(component, category) pJ *)
  bound : Mclock_sim.Activity.t;
      (** sound worst-case per-(component, category) pJ *)
  est_power_mw : float;
  b_power_mw : float;
  est_energy_pj : float;  (** expected energy per computation *)
  b_energy_pj : float;  (** worst-case energy per computation *)
}

val run :
  ?stimulus:Mclock_sim.Stimulus.model ->
  ?iterations:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  t
(** Defaults: [stimulus = Uniform], [iterations = 500] (matching
    {!Mclock_power.Report.evaluate}). *)
