(* Top level of the static analyzer: resolve the control schedule
   once, fold the exact data-independent energies (Duty) into both
   activities, run the propagation engine twice — once per mode — and
   convert total charge into the simulator's power/energy units. *)

module Activity = Mclock_sim.Activity
module Stimulus = Mclock_sim.Stimulus
open Mclock_rtl

type t = {
  design_name : string;
  stimulus : Stimulus.model;
  iterations : int;
  cycles : int;
  sim_time_s : float;
  estimate : Activity.t;  (** expected per-(component, category) pJ *)
  bound : Activity.t;  (** sound worst-case per-(component, category) pJ *)
  est_power_mw : float;
  b_power_mw : float;
  est_energy_pj : float;  (** expected energy per computation *)
  b_energy_pj : float;  (** worst-case energy per computation *)
}

let run ?(stimulus = Stimulus.Uniform) ?(iterations = 500) tech design =
  let model = Schedule_model.build design in
  let cycles = iterations * model.Schedule_model.t_steps in
  let sim_time_s = float_of_int cycles *. Clock.period (Design.clock design) in
  let mode_activity mode =
    let activity =
      Propagate.run mode tech design model ~stimulus ~iterations
    in
    Duty.charge tech design model ~iterations ~into:activity;
    activity
  in
  let estimate = mode_activity Prob.Estimate in
  let bound = mode_activity Prob.Bound in
  let power act = Activity.total act *. 1e-12 /. sim_time_s *. 1e3 in
  let energy act = Activity.total act /. float_of_int iterations in
  {
    design_name = Design.name design;
    stimulus;
    iterations;
    cycles;
    sim_time_s;
    estimate;
    bound;
    est_power_mw = power estimate;
    b_power_mw = power bound;
    est_energy_pj = energy estimate;
    b_energy_pj = energy bound;
  }
