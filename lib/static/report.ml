(* Rendering and simulator cross-checking for static analyses. *)

module Activity = Mclock_sim.Activity
module Stimulus = Mclock_sim.Stimulus
module Simulator = Mclock_sim.Simulator
module Json = Mclock_lint.Json

type comparison = {
  simulated_power_mw : float;
  simulated_energy_pj : float;  (** per computation *)
  rel_error : float;  (** (estimate - simulated) / simulated *)
  sound : bool;  (** simulated <= bound and estimate <= bound *)
  components : (int * float * float * float) list;
      (** (component, estimate pJ, simulated pJ, bound pJ) *)
}

(* Tiny slack for the floating-point accumulation-order difference
   between the analyzer's expected sums and the simulator's per-event
   charges; both sides sum the same magnitudes, so a relative epsilon
   is enough. *)
let leq_tol a b = a <= b +. (1e-9 *. Float.max 1. (Float.abs b))

let compare_with_simulation ?(seed = 42) tech design graph
    (a : Analyze.t) =
  let width = Mclock_rtl.Datapath.width (Mclock_rtl.Design.datapath design) in
  let envs =
    Stimulus.generate a.Analyze.stimulus
      (Mclock_util.Rng.create seed)
      ~width ~iterations:a.Analyze.iterations graph
  in
  let r =
    Simulator.run ~seed ~stimulus:envs tech design
      ~iterations:a.Analyze.iterations
  in
  let sim_energy =
    r.Simulator.energy_pj /. float_of_int a.Analyze.iterations
  in
  let comp_ids =
    List.sort_uniq Stdlib.compare
      (List.map fst (Activity.by_component a.Analyze.bound)
      @ List.map fst (Activity.by_component r.Simulator.activity))
  in
  let components =
    List.map
      (fun c ->
        ( c,
          Activity.of_component a.Analyze.estimate c,
          Activity.of_component r.Simulator.activity c,
          Activity.of_component a.Analyze.bound c ))
      comp_ids
  in
  let sound =
    leq_tol r.Simulator.power_mw a.Analyze.b_power_mw
    && leq_tol a.Analyze.est_power_mw a.Analyze.b_power_mw
    && List.for_all
         (fun (_, est, sim, bound) ->
           leq_tol est bound && leq_tol sim bound)
         components
  in
  let rel_error =
    if r.Simulator.power_mw = 0. then 0.
    else
      (a.Analyze.est_power_mw -. r.Simulator.power_mw)
      /. r.Simulator.power_mw
  in
  {
    simulated_power_mw = r.Simulator.power_mw;
    simulated_energy_pj = sim_energy;
    rel_error;
    sound;
    components;
  }

let to_text ?comparison (a : Analyze.t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "design       %s\n" a.Analyze.design_name;
  pf "stimulus     %s\n" (Stimulus.name a.Analyze.stimulus);
  pf "computations %d (%d cycles)\n\n" a.Analyze.iterations a.Analyze.cycles;
  pf "%-14s %14s %14s\n" "category" "estimate [pJ]" "bound [pJ]";
  List.iter
    (fun cat ->
      let e =
        List.assoc_opt cat (Activity.by_category a.Analyze.estimate)
        |> Option.value ~default:0.
      and b =
        List.assoc_opt cat (Activity.by_category a.Analyze.bound)
        |> Option.value ~default:0.
      in
      if e <> 0. || b <> 0. then
        pf "%-14s %14.2f %14.2f\n" (Activity.category_name cat) e b)
    Activity.all_categories;
  pf "%-14s %14.2f %14.2f\n\n" "total"
    (Activity.total a.Analyze.estimate)
    (Activity.total a.Analyze.bound);
  pf "power        %.4f mW estimated, <= %.4f mW certified\n"
    a.Analyze.est_power_mw a.Analyze.b_power_mw;
  pf "energy/comp  %.2f pJ estimated, <= %.2f pJ certified\n"
    a.Analyze.est_energy_pj a.Analyze.b_energy_pj;
  (match comparison with
  | None -> ()
  | Some c ->
      pf "\nsimulated    %.4f mW (%.2f pJ/comp), estimate error %+.1f%%\n"
        c.simulated_power_mw c.simulated_energy_pj (100. *. c.rel_error);
      pf "soundness    %s\n"
        (if c.sound then "ok (simulated <= bound on every component)"
         else "VIOLATED"));
  Buffer.contents buf

let activity_json act =
  Json.Obj
    (List.filter_map
       (fun cat ->
         match List.assoc_opt cat (Activity.by_category act) with
         | Some v when v <> 0. ->
             Some (Activity.category_name cat, Json.Float v)
         | _ -> None)
       Activity.all_categories)

let to_json ?comparison (a : Analyze.t) =
  let side act power energy =
    Json.Obj
      [
        ("power_mw", Json.Float power);
        ("energy_per_computation_pj", Json.Float energy);
        ("total_pj", Json.Float (Activity.total act));
        ("by_category", activity_json act);
      ]
  in
  let base =
    [
      ("design", Json.String a.Analyze.design_name);
      ("stimulus", Json.String (Stimulus.name a.Analyze.stimulus));
      ("iterations", Json.Int a.Analyze.iterations);
      ("cycles", Json.Int a.Analyze.cycles);
      ( "estimate",
        side a.Analyze.estimate a.Analyze.est_power_mw a.Analyze.est_energy_pj
      );
      ("bound", side a.Analyze.bound a.Analyze.b_power_mw a.Analyze.b_energy_pj);
    ]
  in
  let extra =
    match comparison with
    | None -> []
    | Some c ->
        [
          ( "comparison",
            Json.Obj
              [
                ("simulated_power_mw", Json.Float c.simulated_power_mw);
                ( "simulated_energy_per_computation_pj",
                  Json.Float c.simulated_energy_pj );
                ("relative_error", Json.Float c.rel_error);
                ("sound", Json.Bool c.sound);
                ( "components",
                  Json.List
                    (List.map
                       (fun (comp, est, sim, bound) ->
                         Json.Obj
                           [
                             ("component", Json.Int comp);
                             ("estimate_pj", Json.Float est);
                             ("simulated_pj", Json.Float sim);
                             ("bound_pj", Json.Float bound);
                           ])
                       c.components) );
              ] );
        ]
  in
  Json.Obj (base @ extra)
