(** Closed-form per-bit statistics of the stimulus models: signal
    probability of a held input value and toggle probability of one
    applied port update.  Exact for every model (Ramp by residue
    enumeration up to 20 bits). *)

val signal_probability : Mclock_sim.Stimulus.model -> float
(** Reset-time and stationary P[bit = 1]; 1/2 for every model because
    the first environment is a uniform draw. *)

val ramp_bit_rate : width:int -> k:int -> int -> float
(** Exact toggle rate of bit [j] under [x -> x + k] at [width] bits,
    averaged over a uniform start value. *)

val transition : Mclock_sim.Stimulus.model -> width:int -> float array
(** Per-bit flip probability of one adjacent environment pair,
    index 0 = LSB. *)

val transition_bound : Mclock_sim.Stimulus.model -> width:int -> float array
(** {0, 1} may-flip indicators; 0 exactly where the bit provably never
    toggles. *)

val parse : string -> (Mclock_sim.Stimulus.model, string) result
(** Parse "uniform", "correlated:P", "ramp:K" or "constant". *)
