(** The duty-cycle model: closed-form, charge-exact energy of every
    data-independent mechanism — clock pins over their 1/n duty
    windows, gated clock trees and gating-cell enables, control-line
    transitions, mux select lines.  Shared unchanged by the estimate
    and the bound. *)

val phase_ticks : phases:int -> phase:int -> cycles:int -> int
(** Number of global cycles in [1, cycles] belonging to [phase] of an
    n-phase clock: the storage's duty window. *)

val gating_toggles : Schedule_model.t -> iterations:int -> int -> int
(** Exact enable-line edge count of storage [id] over the run. *)

val charge :
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Schedule_model.t ->
  iterations:int ->
  into:Mclock_sim.Activity.t ->
  unit
(** Accumulate the Clock, Gating, Control and Mux_select categories
    into [into]; per-(component, category) equal to what
    {!Mclock_sim.Simulator.run} charges. *)
