(** Text/JSON rendering of static analyses and the simulator
    cross-check behind [mclock estimate --compare]. *)

type comparison = {
  simulated_power_mw : float;
  simulated_energy_pj : float;  (** per computation *)
  rel_error : float;  (** (estimate - simulated) / simulated *)
  sound : bool;  (** simulated <= bound and estimate <= bound *)
  components : (int * float * float * float) list;
      (** (component, estimate pJ, simulated pJ, bound pJ) *)
}

val leq_tol : float -> float -> bool
(** [a <= b] up to the relative float-summation epsilon used by the
    soundness checks. *)

val compare_with_simulation :
  ?seed:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Mclock_dfg.Graph.t ->
  Analyze.t ->
  comparison
(** Simulate the design under the analysis' stimulus model (matched
    environments from {!Mclock_sim.Stimulus.generate}) and check the
    bound per component. *)

val to_text : ?comparison:comparison -> Analyze.t -> string
val to_json : ?comparison:comparison -> Analyze.t -> Mclock_lint.Json.t
