(* Probability algebra for static switching-activity analysis.

   Two interpretations share every propagation rule:

   - [Estimate]: values are real probabilities in [0, 1].  Signal
     probabilities p = P[bit = 1] and transition probabilities
     t = P[bit toggles this cycle] combine under an independence
     assumption — the classic static power-estimation algebra.

   - [Bound]: values are elements of a tiny abstract domain.  A signal
     probability is one of {0.0, 1.0, 0.5}, read as "provably 0",
     "provably 1", "unknown" (0.5 is the top element, not a
     probability).  A transition value is 0.0 ("provably cannot
     toggle") or 1.0 ("may toggle").  Every combinator returns the
     worst case over all concrete behaviours, so any quantity summed
     from [Bound] transition values dominates the corresponding count
     in any concrete simulation run.

   Soundness of estimate <= bound is by pointwise dominance: for every
   combinator, if each estimate input is <= the corresponding bound
   input (and agrees exactly on pinned values), the estimate output is
   <= the bound output.  Each combinator below notes why. *)

type mode = Estimate | Bound

(* A [Bound]-mode signal value that is exactly 0 or 1 is a proven
   constant; estimate-mode values hit 0/1 only when they were derived
   from the same proofs (reset values, constants, pinned op bits). *)
let pinned p = p = 0. || p = 1.

(* Least upper bound of two abstract signal values. *)
let join a b = if a = b then a else 0.5

(* P[a <> b] of two independent bits, used both as the value of an XOR
   bit and as the toggle probability of a freshly selected net.
   Bound: 0 only when both sides are pinned equal; 1 otherwise (a
   pinned unequal pair must differ, which 1 also covers). *)
let differ mode pa pb =
  match mode with
  | Estimate -> (pa *. (1. -. pb)) +. (pb *. (1. -. pa))
  | Bound -> if pinned pa && pa = pb then 0. else 1.

(* The value-level XOR of two signal bits: same quantity as [differ]
   but landing in the signal domain, so an unknown result is top (0.5)
   rather than "may toggle" (1). *)
let xor_p mode pa pb =
  match mode with
  | Estimate -> differ Estimate pa pb
  | Bound -> if pinned pa && pinned pb then abs_float (pa -. pb) else 0.5

let and_p mode pa pb =
  match mode with
  | Estimate -> pa *. pb
  | Bound -> if pa = 0. || pb = 0. then 0. else if pa = 1. && pb = 1. then 1. else 0.5

let or_p mode pa pb =
  match mode with
  | Estimate -> pa +. pb -. (pa *. pb)
  | Bound -> if pa = 1. || pb = 1. then 1. else if pa = 0. && pb = 0. then 0. else 0.5

let not_p _mode p = 1. -. p

(* Accumulate one more cycle's toggle probability into a running
   "differs from the captured value" state.  Estimate: P[odd number of
   toggles] of independent events (exact for a single event, the usual
   approximation for several).  Bound: the captured value may differ
   as soon as any cycle may toggle; if no cycle can toggle the values
   are provably equal — max is exactly that.  Dominance: a+b-2ab <=
   max(A,B) whenever a <= A, b <= B in {0,1}. *)
let toggle_acc mode acc t =
  match mode with
  | Estimate -> acc +. t -. (2. *. acc *. t)
  | Bound -> Float.max acc t

(* P[at least one bit of the array toggles]: gates downstream
   re-evaluation.  Independence product for the estimate; for bounds
   the product over {0,1} is the exact may-any. *)
let union_any arr =
  let q = ref 1. in
  Array.iter (fun t -> q := !q *. (1. -. t)) arr;
  1. -. !q

(* Held-value update after a re-evaluation that fires with probability
   [q].  Estimate: probability mixture.  Bound: if the update cannot
   fire the old value survives; otherwise either may survive, so join.
   Dominance: the mixture lies between [held] and [fresh], and the
   bound join is top unless both are pinned equal. *)
let blend mode ~q ~held ~fresh =
  match mode with
  | Estimate -> (q *. fresh) +. ((1. -. q) *. held)
  | Bound -> if q = 0. then held else join held fresh

(* Initial "differs from an all-zero reset value" state for a source
   whose reset-time signal probability is [p]. *)
let init_diff mode p = match mode with Estimate -> p | Bound -> if p = 0. then 0. else 1.

let sum arr = Array.fold_left ( +. ) 0. arr
