(** Probability algebra shared by the estimate and bound propagations.

    [Estimate] works with real probabilities under an independence
    assumption; [Bound] works with a three-point abstract domain
    ({0, 1} = proven constants, 0.5 = unknown) for signal values and
    {0, 1} may-toggle indicators for transitions.  Every combinator is
    worst-case correct in [Bound] mode and pointwise dominates its
    [Estimate] counterpart, which is the construction behind
    [estimate <= b_power]. *)

type mode = Estimate | Bound

val pinned : float -> bool
(** The value is a proven constant (exactly 0.0 or 1.0). *)

val join : float -> float -> float

val differ : mode -> float -> float -> float
(** P[a <> b] landing in the transition domain (Bound: 0 = provably
    equal, 1 = may differ). *)

val xor_p : mode -> float -> float -> float
(** P[a <> b] landing in the signal domain (Bound: unknown is 0.5). *)

val and_p : mode -> float -> float -> float
val or_p : mode -> float -> float -> float
val not_p : mode -> float -> float

val toggle_acc : mode -> float -> float -> float
(** [toggle_acc mode acc t] folds one cycle's toggle probability into a
    running "differs from the captured value" accumulator. *)

val union_any : float array -> float
(** P[at least one element toggles]. *)

val blend : mode -> q:float -> held:float -> fresh:float -> float
(** Held-value signal probability after an update firing with
    probability [q]. *)

val init_diff : mode -> float -> float
(** "Differs from all-zero reset" state of a source with reset signal
    probability [p]. *)

val sum : float array -> float
