(* FACET case study: the full Table-1 flow plus the artifacts a user
   would hand downstream — per-design energy breakdowns, a structural
   DOT plot of the 3-clock datapath, and its VHDL.

   Run with: dune exec examples/facet_study.exe
   Writes facet_mc3.dot and facet_mc3.vhd to the current directory. *)

let tech = Mclock_tech.Cmos08.t

let () =
  let w = Mclock_workloads.Facet.t in
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  Fmt.pr "workload: %a@.@." Mclock_workloads.Workload.pp w;
  Fmt.pr "%s@." (Mclock_core.Split_alloc.render_partitions ~n:2 schedule);

  let suite = Mclock_core.Flow.standard_suite ~name:"facet" schedule in
  let reports =
    List.map
      (fun (m, design) ->
        let diags = Mclock_lint.Lint.design design in
        if diags <> [] then
          Fmt.epr "lint diagnostics in %s:@.%s@."
            (Mclock_core.Flow.method_label m)
            (Mclock_lint.Diagnostic.render diags);
        Mclock_power.Report.evaluate ~iterations:600
          ~label:(Mclock_core.Flow.method_label m) tech design graph)
      suite
  in
  Mclock_util.Table.print
    (Mclock_power.Report.paper_table ~title:"Table 1 — FACET" reports);
  print_newline ();
  List.iter
    (fun r -> print_endline (Mclock_power.Report.render_category_breakdown r))
    reports;

  (* Savings summary against the gated-clock baseline, as the paper
     reports them. *)
  (match reports with
  | [ _; gated; _; _; mc3 ] ->
      Fmt.pr "3-clock vs conventional gated: %.0f%% power reduction, %.0f%% area change@."
        (Mclock_power.Report.reduction_vs ~baseline:gated mc3)
        (Mclock_power.Report.area_increase_vs ~baseline:gated mc3)
  | _ -> ());

  (* Hand-off artifacts for the 3-clock design. *)
  let mc3 =
    Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 3)
      ~name:"facet_mc3" schedule
  in
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Fmt.pr "wrote %s@." path
  in
  write "facet_mc3.dot" (Mclock_rtl.Rtl_dot.emit (Mclock_rtl.Design.datapath mc3));
  write "facet_mc3.vhd" (Mclock_rtl.Vhdl.emit mc3)
