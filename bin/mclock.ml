(* mclock — multi-clock RTL power-management synthesis CLI.

   Subcommands:
     list       bundled workloads
     show       print a behaviour, its schedule and lifetime table
     synth      synthesize one design, report power/area, emit artifacts
     lint       static analysis (MC0xx/MC1xx rules) of a synthesized design
     table      the paper's five-design comparison table for a workload
     waves      ASCII waveforms of an n-phase clocking scheme
     sweep      clock-count sweep for a workload
     explore    exhaustive design-space exploration (Pareto frontier)
     search     successive-halving multi-fidelity search (scalarized best)
     estimate   simulation-free static power analysis

   Behaviours come from the bundled catalog (--workload) or a text-format
   DFG file (--file); unscheduled files are scheduled with the chosen
   scheduler. *)

open Cmdliner

let tech = Mclock_tech.Cmos08.t

(* --- Behaviour loading --------------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type input = { graph : Mclock_dfg.Graph.t; schedule : Mclock_sched.Schedule.t }

(* A file whose first meaningful token is 'behavior' is in the
   behaviour description language; anything else is the DFG format. *)
let is_behaviour_file path =
  match read_file path with
  | exception Sys_error _ -> false
  | text ->
      let lines = String.split_on_char '\n' text in
      let meaningful =
        List.find_opt
          (fun l ->
            let l = String.trim l in
            l <> "" && l.[0] <> '#')
          lines
      in
      (match meaningful with
      | Some l ->
          let l = String.trim l in
          String.length l >= 8
          && (String.sub l 0 8 = "behavior" || String.sub l 0 8 = "behaviou")
      | None -> false)

let load ~workload ~file ~scheduler =
  match (workload, file) with
  | Some name, None -> (
      match Mclock_workloads.Catalog.find name with
      | Some w ->
          Ok
            {
              graph = Mclock_workloads.Workload.graph w;
              schedule = Mclock_workloads.Workload.schedule w;
            }
      | None ->
          Error
            (Printf.sprintf "unknown workload %S (try: mclock list)" name))
  | None, Some path when is_behaviour_file path -> (
      match Mclock_lang.Compile.compile_string (read_file path) with
      | exception Mclock_lang.Lexer.Error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message)
      | exception Mclock_lang.Parser.Error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message)
      | exception Mclock_lang.Compile.Error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message)
      | exception Sys_error msg -> Error msg
      | graph -> (
          match scheduler with
          | `Alap -> Ok { graph; schedule = Mclock_sched.Alap.run graph }
          | `Asap -> Ok { graph; schedule = Mclock_sched.Asap.run graph }
          | `Annotated | `Fds ->
              (* Behaviour files carry no step annotations; default to
                 force-directed scheduling. *)
              Ok { graph; schedule = Mclock_sched.Force_directed.run graph }))
  | None, Some path -> (
      match Mclock_dfg.Parse.parse_string (read_file path) with
      | exception Mclock_dfg.Parse.Error { line; message } ->
          Error (Printf.sprintf "%s:%d: %s" path line message)
      | exception Sys_error msg -> Error msg
      | { Mclock_dfg.Parse.graph; steps } -> (
          match (steps, scheduler) with
          | _ :: _, `Annotated -> (
              match Mclock_sched.Schedule.create graph steps with
              | s -> Ok { graph; schedule = s }
              | exception Mclock_sched.Schedule.Invalid m -> Error m)
          | [], `Annotated ->
              Error "file has no @step annotations; pick --scheduler"
          | _, `Asap -> Ok { graph; schedule = Mclock_sched.Asap.run graph }
          | _, `Alap -> Ok { graph; schedule = Mclock_sched.Alap.run graph }
          | _, `Fds ->
              Ok { graph; schedule = Mclock_sched.Force_directed.run graph }))
  | Some _, Some _ -> Error "--workload and --file are mutually exclusive"
  | None, None -> Error "need --workload NAME or --file PATH"

(* --- Common options --------------------------------------------------------- *)

let workload_arg =
  Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
         ~doc:"Bundled workload name (see $(b,mclock list)).")

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH"
         ~doc:"Text-format DFG file (with optional @step annotations).")

let scheduler_arg =
  let kind =
    Arg.enum
      [ ("annotated", `Annotated); ("asap", `Asap); ("alap", `Alap); ("fds", `Fds) ]
  in
  Arg.(value & opt kind `Annotated & info [ "scheduler" ] ~docv:"KIND"
         ~doc:"Scheduler for unannotated files: annotated, asap, alap or fds.")

let method_arg =
  let kind = Arg.enum [ ("conv", `Conv); ("gated", `Gated); ("mc", `Mc); ("split", `Split) ] in
  Arg.(value & opt kind `Mc & info [ "m"; "method" ] ~docv:"METHOD"
         ~doc:"Allocation method: conv, gated, mc (integrated) or split.")

let clocks_arg =
  Arg.(value & opt int 2 & info [ "n"; "clocks" ] ~docv:"N"
         ~doc:"Number of non-overlapping clocks (mc/split methods).")

let iterations_arg =
  Arg.(value & opt int 500 & info [ "iterations" ] ~docv:"N"
         ~doc:"Number of simulated computations for power estimation.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Stimulus seed.")

let kernel_arg =
  let kind = Arg.enum [ ("compiled", `Compiled); ("reference", `Reference) ] in
  Arg.(value & opt kind `Compiled & info [ "kernel" ] ~docv:"KERNEL"
         ~doc:"Simulation kernel: $(b,compiled) (precompiled engine, default) \
               or $(b,reference) (interpreter). Results are bit-identical; \
               only wall-clock time differs.")

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel evaluation. Defaults to the \
               $(b,MCLOCK_JOBS) environment variable, else one less than \
               the core count. Results are byte-identical for any value.")

let timings_arg =
  Arg.(value & flag & info [ "timings" ]
         ~doc:"Print the per-task timing summary to stderr.")

let timings_json_arg =
  Arg.(value & opt (some string) None & info [ "timings-json" ] ~docv:"PATH"
         ~doc:"Write the per-task timing telemetry as JSON to $(docv).")

let resolve_jobs = function
  | Some j -> j
  | None -> Mclock_exec.Pool.default_jobs ()

(* Timings go to stderr / a side file so stdout stays byte-identical
   across --jobs values. *)
let emit_timings pool ~timings ~timings_json =
  if timings then prerr_string (Mclock_exec.Pool.render_timings pool);
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Mclock_exec.Pool.timings_to_json pool);
      close_out oc;
      Fmt.epr "wrote %s@." path)
    timings_json

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
         ~doc:"Write a Chrome trace-event JSON file of this run's spans \
               (compile/simulate, per-cell evaluation, cache and remote \
               operations) to $(docv); load it in Perfetto or \
               chrome://tracing. Tracing never touches stdout or the \
               result documents — they stay byte-identical with and \
               without it.")

let trace_summary_arg =
  Arg.(value & flag & info [ "trace-summary" ]
         ~doc:"Print a per-span timing table and all non-zero counters \
               to stderr when the run finishes.")

(* Tracing brackets a whole subcommand.  [f] must RETURN (exit codes
   are decided by the caller afterwards): [exit] would skip the
   Fun.protect finalizer and lose the trace file.  Trace output goes
   to a side file / stderr only, preserving stdout byte-identity. *)
let with_tracing ~name ~trace ~trace_summary f =
  if trace = None && not trace_summary then f ()
  else begin
    Mclock_obs.Obs.start ();
    let flush_trace () =
      let events = Mclock_obs.Obs.stop () in
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Mclock_obs.Obs.to_chrome_json events);
          close_out oc;
          Fmt.epr "wrote %s@." path)
        trace;
      if trace_summary then prerr_string (Mclock_obs.Obs.summary events)
    in
    Fun.protect ~finally:flush_trace (fun () ->
        Mclock_obs.Obs.with_span ~cat:"cli" ~name f)
  end

let method_of = function
  | `Conv, _ -> Mclock_core.Flow.Conventional_non_gated
  | `Gated, _ -> Mclock_core.Flow.Conventional_gated
  | `Mc, n -> Mclock_core.Flow.Integrated n
  | `Split, n -> Mclock_core.Flow.Split n

let or_die = function
  | Ok v -> v
  | Error msg ->
      Fmt.epr "mclock: %s@." msg;
      exit 1

(* Uniform validation of count-like options: every subcommand rejects a
   zero or negative value the same way — a usage error on stderr and
   exit 1 — instead of hanging a worker pool or raising deep inside a
   library. *)
let require_at_least ~what ~min n =
  if n < min then
    or_die (Error (Printf.sprintf "%s must be >= %d (got %d)" what min n))

let require_positive ~what n = require_at_least ~what ~min:1 n

(* --- list --------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun w -> Fmt.pr "%a@." Mclock_workloads.Workload.pp w)
      Mclock_workloads.Catalog.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled workloads.")
    Term.(const run $ const ())

(* --- show --------------------------------------------------------------------- *)

let show_cmd =
  let run workload file scheduler clocks =
    let input = or_die (load ~workload ~file ~scheduler) in
    Fmt.pr "%a@.@." Mclock_dfg.Graph.pp input.graph;
    Fmt.pr "%a@." Mclock_sched.Schedule.pp input.schedule;
    let problem = Mclock_core.Lifetime.analyze ~n:clocks input.schedule in
    Fmt.pr "@.lifetimes (n=%d):@.%s@." clocks
      (Mclock_core.Lifetime.render_table problem);
    if clocks > 1 then
      Fmt.pr "%s@."
        (Mclock_core.Split_alloc.render_partitions ~n:clocks input.schedule)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a behaviour, its schedule and lifetimes.")
    Term.(const run $ workload_arg $ file_arg $ scheduler_arg $ clocks_arg)

(* --- synth --------------------------------------------------------------------- *)

let synth_cmd =
  let vhdl_arg =
    Arg.(value & opt (some string) None & info [ "vhdl" ] ~docv:"PATH"
           ~doc:"Write structural VHDL to $(docv).")
  in
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH"
           ~doc:"Write a Graphviz datapath plot to $(docv).")
  in
  let verilog_arg =
    Arg.(value & opt (some string) None & info [ "verilog" ] ~docv:"PATH"
           ~doc:"Write structural Verilog to $(docv).")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"PATH"
           ~doc:"Write a VCD waveform trace of the first computations to $(docv).")
  in
  let run workload file scheduler method_ clocks iterations seed kernel vhdl
      verilog dot vcd trace trace_summary =
    let ok =
      with_tracing ~name:"synth" ~trace ~trace_summary @@ fun () ->
      let input = or_die (load ~workload ~file ~scheduler) in
    let m = method_of (method_, clocks) in
    let name =
      match (workload, file) with
      | Some n, _ -> n
      | _, Some p -> Filename.remove_extension (Filename.basename p)
      | None, None -> "design"
    in
    let design = Mclock_core.Flow.synthesize ~method_:m ~name input.schedule in
    (* [synthesize] already failed on lint errors; surface the rest. *)
    List.iter
      (fun d -> Fmt.epr "%a@." Mclock_lint.Diagnostic.pp d)
      (Mclock_lint.Lint.design design);
    let trace =
      Option.map
        (fun _ ->
          {
            Mclock_sim.Simulator.vcd = Mclock_sim.Vcd.create ();
            max_cycles = 4 * Mclock_rtl.Design.num_steps design;
          })
        vcd
    in
    let sim =
      match kernel with
      | `Reference -> Mclock_sim.Simulator.run ~seed ?trace tech design ~iterations
      | `Compiled ->
          Mclock_sim.Compiled.run ~seed ?trace
            (Mclock_sim.Compiled.compile tech design)
            ~iterations
    in
    let verify =
      Mclock_sim.Verify.check
        ~width:(Mclock_rtl.Datapath.width (Mclock_rtl.Design.datapath design))
        input.graph sim
    in
    let report =
      Mclock_power.Report.evaluate ~seed ~iterations ~kernel
        ~label:(Mclock_core.Flow.method_label m) tech design input.graph
    in
    Fmt.pr "design:      %s (%s)@." name (Mclock_rtl.Design.style_label design);
    Fmt.pr "power:       %.3f mW (%d computations)@." sim.Mclock_sim.Simulator.power_mw iterations;
    Fmt.pr "area:        %.0f lambda^2@." report.Mclock_power.Report.area.Mclock_power.Area.design_total;
    Fmt.pr "ALUs:        %s@." report.Mclock_power.Report.alus;
    Fmt.pr "mem cells:   %d@." report.Mclock_power.Report.memory_cells;
    Fmt.pr "mux inputs:  %d@." report.Mclock_power.Report.mux_inputs;
    Fmt.pr "functional:  %s@."
      (if Mclock_sim.Verify.ok verify then "verified against golden model"
       else "MISMATCH");
    print_endline (Mclock_power.Report.render_category_breakdown report);
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Fmt.pr "wrote %s@." path
    in
    Option.iter (fun p -> write p (Mclock_rtl.Vhdl.emit design)) vhdl;
    Option.iter (fun p -> write p (Mclock_rtl.Verilog.emit design)) verilog;
    Option.iter
      (fun p -> write p (Mclock_rtl.Rtl_dot.emit (Mclock_rtl.Design.datapath design)))
      dot;
    Option.iter
      (fun p ->
        match trace with
        | Some t -> write p (Mclock_sim.Vcd.contents t.Mclock_sim.Simulator.vcd)
        | None -> ())
      vcd;
      Mclock_sim.Verify.ok verify
    in
    if not ok then exit 2
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize one design; simulate, verify and report power/area.")
    Term.(
      const run $ workload_arg $ file_arg $ scheduler_arg $ method_arg
      $ clocks_arg $ iterations_arg $ seed_arg $ kernel_arg $ vhdl_arg
      $ verilog_arg $ dot_arg $ vcd_arg $ trace_arg $ trace_summary_arg)

(* --- lint --------------------------------------------------------------------- *)

let lint_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the diagnostics as a machine-readable JSON report.")
  in
  let werror_arg =
    Arg.(value & flag & info [ "werror" ]
           ~doc:"Promote warnings and info diagnostics to errors.")
  in
  let no_transfers_arg =
    Arg.(value & flag & info [ "no-transfers" ]
           ~doc:"Ablation: skip cross-partition transfer insertion in the \
                 integrated method (--method mc) so rule MC006 has \
                 something to find.")
  in
  let run workload file scheduler method_ clocks json werror no_transfers =
    let input = or_die (load ~workload ~file ~scheduler) in
    let m = method_of (method_, clocks) in
    let name =
      match (workload, file) with
      | Some n, _ -> n
      | _, Some p -> Filename.remove_extension (Filename.basename p)
      | None, None -> "design"
    in
    let behaviour_diags =
      let assignments =
        List.map
          (fun node ->
            let id = Mclock_dfg.Node.id node in
            (id, Mclock_sched.Schedule.step_of_id input.schedule id))
          (Mclock_dfg.Graph.nodes input.graph)
      in
      Mclock_lint.Lint.behaviour input.graph assignments
    in
    let design =
      if no_transfers then
        match m with
        | Mclock_core.Flow.Integrated n ->
            (Mclock_core.Integrated.run ~transfers:false ~n ~name
               input.schedule)
              .Mclock_core.Integrated.design
        | _ -> or_die (Error "--no-transfers only applies to --method mc")
      else Mclock_core.Flow.synthesize ~lint:false ~method_:m ~name input.schedule
    in
    let diags =
      Mclock_lint.Diagnostic.promote ~werror
        (behaviour_diags @ Mclock_lint.Lint.design design)
    in
    if json then
      print_endline
        (Mclock_lint.Json.to_string_pretty
           (Mclock_lint.Diagnostic.list_to_json ~subject:name diags))
    else print_endline (Mclock_lint.Diagnostic.render diags);
    if Mclock_lint.Lint.has_errors diags then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the MC0xx/MC1xx static-analysis rules over a behaviour \
             and its synthesized design; non-zero exit on any error.")
    Term.(
      const run $ workload_arg $ file_arg $ scheduler_arg $ method_arg
      $ clocks_arg $ json_arg $ werror_arg $ no_transfers_arg)

(* --- table --------------------------------------------------------------------- *)

let table_cmd =
  let run workload file scheduler iterations seed kernel jobs timings
      timings_json trace trace_summary =
    require_positive ~what:"--iterations" iterations;
    Option.iter (require_positive ~what:"--jobs") jobs;
    with_tracing ~name:"table" ~trace ~trace_summary @@ fun () ->
    let input = or_die (load ~workload ~file ~scheduler) in
    let name = Option.value ~default:"design" workload in
    let suite = Mclock_core.Flow.standard_suite ~name input.schedule in
    Mclock_exec.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
        let reports =
          Mclock_power.Report.evaluate_batch ~pool ~seed ~iterations ~kernel tech
            (List.map
               (fun (m, design) ->
                 (Mclock_core.Flow.method_label m, design, input.graph))
               suite)
        in
        Mclock_util.Table.print
          (Mclock_power.Report.paper_table
             ~title:(Printf.sprintf "Multiple Clocks with Latches for %s" name)
             reports);
        emit_timings pool ~timings ~timings_json)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"The paper's five-design comparison table.")
    Term.(
      const run $ workload_arg $ file_arg $ scheduler_arg $ iterations_arg
      $ seed_arg $ kernel_arg $ jobs_arg $ timings_arg $ timings_json_arg
      $ trace_arg $ trace_summary_arg)

(* --- controller ------------------------------------------------------------------ *)

let controller_cmd =
  let run workload file scheduler method_ clocks =
    let input = or_die (load ~workload ~file ~scheduler) in
    let m = method_of (method_, clocks) in
    let design = Mclock_core.Flow.synthesize ~method_:m ~name:"ctl" input.schedule in
    let reports =
      List.map
        (fun enc -> Mclock_ctrl.Synth.estimate tech design enc)
        Mclock_ctrl.Encoding.all
    in
    print_string (Mclock_ctrl.Synth.render reports)
  in
  Cmd.v
    (Cmd.info "controller"
       ~doc:"Controller synthesis estimate per state encoding.")
    Term.(const run $ workload_arg $ file_arg $ scheduler_arg $ method_arg $ clocks_arg)

(* --- calibrate -------------------------------------------------------------------- *)

let calibrate_cmd =
  let samples_arg =
    Arg.(value & opt int 3000 & info [ "samples" ] ~docv:"N"
           ~doc:"Random operand pairs per operation.")
  in
  let width_arg =
    Arg.(value & opt int 4 & info [ "width" ] ~docv:"BITS" ~doc:"Operand width.")
  in
  let run samples width =
    let ms = Mclock_gatelevel.Calibrate.measure_all ~samples tech ~width in
    print_string (Mclock_gatelevel.Calibrate.render ms)
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Gate-level calibration of the RTL ALU activity model.")
    Term.(const run $ samples_arg $ width_arg)

(* --- waves --------------------------------------------------------------------- *)

let waves_cmd =
  let cycles_arg =
    Arg.(value & opt int 8 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to draw.")
  in
  let run clocks cycles =
    let c = Mclock_rtl.Clock.create ~phases:clocks ~frequency:tech.Mclock_tech.Library.clock_frequency in
    Fmt.pr "%a@.%s@." Mclock_rtl.Clock.pp c
      (Mclock_rtl.Clock.render_waveforms c ~cycles)
  in
  Cmd.v
    (Cmd.info "waves" ~doc:"ASCII waveforms of an n-phase clocking scheme.")
    Term.(const run $ clocks_arg $ cycles_arg)

(* --- sweep --------------------------------------------------------------------- *)

let sweep_cmd =
  let max_arg =
    Arg.(value & opt int 4 & info [ "max" ] ~docv:"N" ~doc:"Largest clock count.")
  in
  let run workload file scheduler iterations seed kernel max_n jobs timings
      timings_json trace trace_summary =
    require_positive ~what:"--iterations" iterations;
    require_positive ~what:"--max" max_n;
    Option.iter (require_positive ~what:"--jobs") jobs;
    with_tracing ~name:"sweep" ~trace ~trace_summary @@ fun () ->
    let input = or_die (load ~workload ~file ~scheduler) in
    let table =
      Mclock_util.Table.create ~title:"clock-count sweep"
        ~header:[ "clocks"; "power [mW]"; "area [l^2]"; "ALUs"; "mem"; "mux" ]
        ~aligns:Mclock_util.Table.[ Right; Right; Right; Left; Right; Right ]
        ()
    in
    (* Synthesis rides inside the task so the whole cell parallelizes;
       rows are reduced in submission order, so the table is identical
       for any job count. *)
    let reports =
      Mclock_exec.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
          let reports =
            Mclock_exec.Pool.map pool
              ~label:(fun i -> Printf.sprintf "mc%d" (i + 1))
              (fun _ n ->
                let design =
                  Mclock_core.Flow.synthesize
                    ~method_:(Mclock_core.Flow.Integrated n)
                    ~name:(Printf.sprintf "mc%d" n) input.schedule
                in
                Mclock_power.Report.evaluate ~seed ~iterations ~kernel
                  ~label:(string_of_int n) tech design input.graph)
              (Mclock_util.List_ext.range 1 max_n)
          in
          emit_timings pool ~timings ~timings_json;
          reports)
    in
    List.iter
      (fun r ->
        Mclock_util.Table.add_row table
          [
            r.Mclock_power.Report.label;
            Printf.sprintf "%.2f" r.Mclock_power.Report.power_mw;
            Printf.sprintf "%.0f" r.Mclock_power.Report.area.Mclock_power.Area.design_total;
            r.Mclock_power.Report.alus;
            string_of_int r.Mclock_power.Report.memory_cells;
            string_of_int r.Mclock_power.Report.mux_inputs;
          ])
      reports;
    Mclock_util.Table.print table
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Power/area across clock counts 1..N.")
    Term.(
      const run $ workload_arg $ file_arg $ scheduler_arg $ iterations_arg
      $ seed_arg $ kernel_arg $ max_arg $ jobs_arg $ timings_arg
      $ timings_json_arg $ trace_arg $ trace_summary_arg)

(* --- explore / search shared options ------------------------------------- *)

let max_clocks_arg =
  Arg.(value & opt (some int) None & info [ "max-clocks" ] ~docv:"N"
         ~doc:"Largest clock count in the exploration grid \
               (default 4; 2 under $(b,--smoke)).")

let constraint_arg =
  Arg.(value & opt_all string [] & info [ "c"; "constraint" ] ~docv:"EXPR"
         ~doc:"Prune cells violating a bound, e.g. $(b,area<=12000), \
               $(b,latency<=6), $(b,mem<=40), $(b,power<=4.5) or \
               $(b,energy<=900). Repeatable; bounds are checked on \
               pre-simulation binding results and the static power \
               analyzer's certified bound, so pruned cells are never \
               simulated. Power/energy caps are conservative: they keep \
               exactly the cells whose worst-case bound fits the \
               budget.")

let cache_dir_arg =
  Arg.(value & opt string ".mclock-cache" & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persistent content-addressed evaluation cache directory \
               (created on demand).")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the persistent cache: every surviving cell is \
               simulated.")

let stats_json_arg =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"PATH"
         ~doc:"Write this run's hit/miss/prune counters as JSON to \
               $(docv).")

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ]
         ~doc:"CI-sized run: the facet workload (unless one is given), \
               2 clocks, 120 computations per cell.")

let explore_iterations_arg =
  Arg.(value & opt (some int) None & info [ "iterations" ] ~docv:"N"
         ~doc:"Simulated computations per cell (default 400; 120 under \
               $(b,--smoke)).")

let objective_arg =
  Arg.(value & opt (some string) None & info [ "objective" ] ~docv:"EXPR"
         ~doc:"Scalarized objective, e.g. $(b,power) or \
               $(b,0.7*power+0.2*area+0.1*latency): a weighted sum of \
               per-metric scores, each min-max normalized across the \
               candidates being compared (lower is better). Valid \
               metrics: power, area, latency, energy, mem.")

let remote_arg =
  let env = Cmd.Env.info "MCLOCK_REMOTE" ~doc:"Default remote cache URL." in
  Arg.(value & opt (some string) None & info [ "remote" ] ~docv:"URL" ~env
         ~doc:"Read-through remote cache server, e.g. \
               $(b,http://127.0.0.1:8090). A local cache miss consults the \
               server; verified payloads populate the local cache and are \
               served as hits. Every remote failure — dead host, timeout, \
               garbled body — degrades to a plain local miss, and after a \
               few consecutive failures a circuit breaker goes local-only \
               for the rest of the run.")

let remote_push_arg =
  Arg.(value & flag & info [ "remote-push" ]
         ~doc:"Also upload freshly evaluated results and checkpoints to the \
               $(b,--remote) server (which must run with $(b,--writable)).")

(* Attach the remote tier to the local store.  --remote without a local
   cache is refused: the tier works by populating the local store. *)
let attach_remote ~remote ~remote_push cache =
  match remote with
  | None ->
      if remote_push then or_die (Error "--remote-push requires --remote URL");
      None
  | Some url ->
      let cache =
        match cache with
        | Some c -> c
        | None -> or_die (Error "--remote cannot be combined with --no-cache")
      in
      let client = or_die (Mclock_remote.Client.create ~url ()) in
      Mclock_explore.Store.set_remote cache
        (Some (Mclock_remote.Client.tier ~push:remote_push client));
      Some client

(* The remote summary goes to stderr so stdout documents stay
   byte-identical with and without a remote; the counters ride into
   --stats-json under a "remote" key. *)
let remote_summary client =
  Option.iter
    (fun c ->
      let s = Mclock_remote.Client.stats c in
      Fmt.epr "remote %s: %d hits, %d misses, %d errors, %d pushes%s@."
        (Mclock_remote.Client.url c) s.Mclock_remote.Client.remote_hits
        s.Mclock_remote.Client.remote_misses
        s.Mclock_remote.Client.remote_errors
        s.Mclock_remote.Client.remote_pushes
        (if s.Mclock_remote.Client.breaker_open then " (breaker open)" else ""))
    client

let with_remote_stats client json =
  match client with
  | None -> json
  | Some c -> (
      match json with
      | Mclock_lint.Json.Obj fields ->
          Mclock_lint.Json.Obj
            (fields @ [ ("remote", Mclock_remote.Client.stats_json c) ])
      | j -> j)

(* Shared by explore and search so both emit documents identically. *)
let write_doc path json =
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.epr "wrote %s@." path

let parse_constraints constraints =
  List.map
    (fun s -> or_die (Mclock_explore.Metrics.parse_constraint s))
    constraints

let sched_constraints_of ~workload =
  match workload with
  | Some n -> (
      match Mclock_workloads.Catalog.find n with
      | Some w -> w.Mclock_workloads.Workload.constraints
      | None -> [])
  | None -> []

(* --- explore ----------------------------------------------------------------- *)

let explore_cmd =
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
           ~doc:"Write the frontier document (frontier + dominated-point \
                 attribution) as JSON to $(docv). Byte-identical across \
                 reruns and job counts; cache counters are excluded (see \
                 $(b,--stats-json)).")
  in
  let estimate_first_arg =
    Arg.(value & flag & info [ "estimate-first" ]
           ~doc:"Rank cache misses by static power estimate (ascending) \
                 before simulating, so the most promising cells evaluate \
                 first.")
  in
  let top_k_arg =
    Arg.(value & opt (some int) None & info [ "top-k" ] ~docv:"K"
           ~doc:"Simulate only the $(docv) best-ranked misses (implies \
                 $(b,--estimate-first)); the rest are reported with their \
                 static estimate only.")
  in
  let best_arg =
    Arg.(value & flag & info [ "best" ]
           ~doc:"Also print the best evaluated cell under the scalarized \
                 $(b,--objective) (default: pure power).")
  in
  let run workload file max_clocks constraints iterations seed jobs cache_dir
      no_cache json stats_json smoke estimate_first top_k objective best
      remote remote_push timings timings_json trace trace_summary =
    Option.iter (require_positive ~what:"--iterations") iterations;
    Option.iter (require_positive ~what:"--max-clocks") max_clocks;
    Option.iter (require_positive ~what:"--jobs") jobs;
    Option.iter (require_positive ~what:"--top-k") top_k;
    let any_functional_failure =
      with_tracing ~name:"explore" ~trace ~trace_summary @@ fun () ->
    let objective_opt =
      Option.map (fun s -> or_die (Mclock_explore.Objective.parse s)) objective
    in
    (* --objective alone implies --best: parsing an objective and then
       not using it would be surprising. *)
    let best = best || objective_opt <> None in
    let objective =
      Option.value ~default:Mclock_explore.Objective.default objective_opt
    in
    let all_workloads = workload = Some "all" in
    if all_workloads && file <> None then
      or_die (Error "--workload all cannot be combined with --file");
    let workload =
      match (workload, file, smoke) with
      | None, None, true -> Some "facet"
      | w, _, _ -> w
    in
    let max_clocks =
      match max_clocks with Some n -> n | None -> if smoke then 2 else 4
    in
    let iterations =
      match iterations with Some n -> n | None -> if smoke then 120 else 400
    in
    let constraints = parse_constraints constraints in
    (* --workload all: every catalog behaviour in one pool session
       against one shared cache (and one remote client/breaker). *)
    let targets =
      if all_workloads then
        List.map
          (fun w ->
            ( w.Mclock_workloads.Workload.name,
              Mclock_workloads.Workload.graph w,
              w.Mclock_workloads.Workload.constraints ))
          Mclock_workloads.Catalog.all
      else
        let input = or_die (load ~workload ~file ~scheduler:`Annotated) in
        let name =
          match (workload, file) with
          | Some n, _ -> n
          | _, Some p -> Filename.remove_extension (Filename.basename p)
          | None, None -> "design"
        in
        [ (name, input.graph, sched_constraints_of ~workload) ]
    in
    let cache =
      if no_cache then None else Some (Mclock_explore.Store.open_ ~dir:cache_dir ())
    in
    let client = attach_remote ~remote ~remote_push cache in
    let results =
      Mclock_exec.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
          let results =
            List.map
              (fun (name, graph, sched_constraints) ->
                Mclock_explore.Engine.explore ~pool ?cache ~constraints ~seed
                  ~iterations ~max_clocks ~estimate_first ?top_k ~name
                  ~sched_constraints graph)
              targets
          in
          emit_timings pool ~timings ~timings_json;
          results)
    in
    List.iter
      (fun result ->
        if all_workloads then
          Printf.printf "== %s ==\n" result.Mclock_explore.Engine.workload;
        print_string (Mclock_explore.Engine.render_text result);
        if best then
          match Mclock_explore.Engine.best ~objective result with
          | Some (cell, score) ->
              Printf.printf "best (%s): %s (score %.4f)\n"
                (Mclock_explore.Objective.to_string objective)
                cell.Mclock_explore.Engine.cell_label score
          | None ->
              Printf.printf "best (%s): none (no evaluated functional cell)\n"
                (Mclock_explore.Objective.to_string objective))
      results;
    remote_summary client;
    (* Single-workload documents keep their original shape (CI diffs
       them byte-for-byte); "all" wraps per-workload documents in one
       "workloads" list. *)
    let doc_of one_of_each = function
      | [ single ] when not all_workloads -> one_of_each single
      | many ->
          Mclock_lint.Json.Obj
            [ ("workloads", Mclock_lint.Json.List (List.map one_of_each many)) ]
    in
    Option.iter
      (fun p -> write_doc p (doc_of Mclock_explore.Engine.frontier_json results))
      json;
    Option.iter
      (fun p ->
        write_doc p
          (with_remote_stats client
             (doc_of Mclock_explore.Engine.stats_json results)))
      stats_json;
      List.exists
        (fun result ->
          List.exists
            (fun (c : Mclock_explore.Engine.cell) ->
              match c.Mclock_explore.Engine.status with
              | Mclock_explore.Engine.Cached m
              | Mclock_explore.Engine.Simulated m ->
                  not m.Mclock_explore.Metrics.functional_ok
              | Mclock_explore.Engine.Pruned _
              | Mclock_explore.Engine.Skipped _ ->
                  false)
            result.Mclock_explore.Engine.cells)
        results
    in
    if any_functional_failure then exit 2
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Explore the scheduler x allocator x clock-count x transfers x \
             voltage design space; prune with pre-simulation bounds, reuse \
             the persistent evaluation cache, and report the \
             power/area/latency Pareto frontier.  $(b,--workload all) \
             iterates the whole catalog in one pool session against one \
             shared cache.")
    Term.(
      const run $ workload_arg $ file_arg $ max_clocks_arg $ constraint_arg
      $ explore_iterations_arg $ seed_arg $ jobs_arg $ cache_dir_arg
      $ no_cache_arg $ json_arg $ stats_json_arg $ smoke_arg
      $ estimate_first_arg $ top_k_arg $ objective_arg $ best_arg
      $ remote_arg $ remote_push_arg $ timings_arg $ timings_json_arg
      $ trace_arg $ trace_summary_arg)

(* --- search ------------------------------------------------------------------ *)

let search_cmd =
  let eta_arg =
    Arg.(value & opt int 2 & info [ "eta" ] ~docv:"N"
           ~doc:"Halving rate: each rung keeps the best ceil(n/$(docv)) \
                 candidates and multiplies the iteration budget by \
                 $(docv). Must be >= 2.")
  in
  let min_iterations_arg =
    Arg.(value & opt (some int) None & info [ "min-iterations" ] ~docv:"N"
           ~doc:"First rung's iteration budget (default: iterations/16, \
                 at least 1).")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
           ~doc:"Write the search document (rung schedule, per-candidate \
                 scores, kept sets, winner, iteration totals) as JSON to \
                 $(docv). Byte-identical across reruns, job counts and \
                 cache states; cache counters are excluded (see \
                 $(b,--stats-json)).")
  in
  let no_resume_arg =
    Arg.(value & flag & info [ "no-resume" ]
           ~doc:"Restart every rung's simulations from iteration zero \
                 instead of extending the previous rung's checkpoints. \
                 Scores, kept sets and the winner are byte-identical \
                 either way; this only forgoes the saved iterations \
                 (and the checkpoint sidecars in the cache).")
  in
  let race_arg =
    Arg.(value & flag & info [ "race" ]
           ~doc:"Race each rung: evaluate at half the budget first and \
                 stop candidates scoring worse than the keep-boundary by \
                 more than $(b,--race-margin); survivors are always \
                 confirmed at the full rung budget.")
  in
  let race_margin_arg =
    Arg.(value & opt float 0.25 & info [ "race-margin" ] ~docv:"M"
           ~doc:"Safety margin (in normalized objective units, >= 0) a \
                 candidate must trail the keep-boundary by before \
                 $(b,--race) stops it early.")
  in
  let close_threshold_arg =
    Arg.(value & opt float 0. & info [ "close-threshold" ] ~docv:"T"
           ~doc:"Widen a rung's keep-set to every candidate scoring \
                 within $(docv) (normalized objective units, >= 0) of \
                 the last canonically-kept one; 0 keeps exactly \
                 ceil(n/eta).")
  in
  let run workload file max_clocks constraints iterations seed jobs cache_dir
      no_cache json stats_json smoke eta min_iterations objective no_resume
      race race_margin close_threshold remote remote_push timings timings_json
      trace trace_summary =
    require_at_least ~what:"--eta" ~min:2 eta;
    if race_margin < 0. then or_die (Error "--race-margin must be >= 0");
    if close_threshold < 0. then
      or_die (Error "--close-threshold must be >= 0");
    Option.iter (require_positive ~what:"--iterations") iterations;
    Option.iter (require_positive ~what:"--min-iterations") min_iterations;
    Option.iter (require_positive ~what:"--max-clocks") max_clocks;
    Option.iter (require_positive ~what:"--jobs") jobs;
    let workload =
      match (workload, file, smoke) with
      | None, None, true -> Some "facet"
      | w, _, _ -> w
    in
    let max_clocks =
      match max_clocks with Some n -> n | None -> if smoke then 2 else 4
    in
    let iterations =
      match iterations with Some n -> n | None -> if smoke then 120 else 400
    in
    Option.iter
      (fun m ->
        if m > iterations then
          or_die
            (Error
               (Printf.sprintf
                  "--min-iterations (%d) must not exceed --iterations (%d)" m
                  iterations)))
      min_iterations;
    let objective =
      match objective with
      | None -> Mclock_explore.Objective.default
      | Some s -> or_die (Mclock_explore.Objective.parse s)
    in
    let constraints = parse_constraints constraints in
    let no_winner =
      with_tracing ~name:"search" ~trace ~trace_summary @@ fun () ->
    let input = or_die (load ~workload ~file ~scheduler:`Annotated) in
    let name =
      match (workload, file) with
      | Some n, _ -> n
      | _, Some p -> Filename.remove_extension (Filename.basename p)
      | None, None -> "design"
    in
    let sched_constraints = sched_constraints_of ~workload in
    let cache =
      if no_cache then None
      else Some (Mclock_explore.Store.open_ ~dir:cache_dir ())
    in
    let client = attach_remote ~remote ~remote_push cache in
    let result =
      Mclock_exec.Pool.with_pool ~jobs:(resolve_jobs jobs) (fun pool ->
          let result =
            Mclock_explore.Halving.run ~pool ?cache ~eta ?min_iterations
              ~constraints ~seed ~iterations ~max_clocks ~objective
              ~resume:(not no_resume) ~race ~race_margin ~close_threshold
              ~name ~sched_constraints input.graph
          in
          emit_timings pool ~timings ~timings_json;
          result)
    in
    Option.iter
      (fun msg -> Fmt.epr "warning: %s@." msg)
      result.Mclock_explore.Halving.degenerate;
    print_string (Mclock_explore.Halving.render_text result);
    remote_summary client;
    Option.iter
      (fun p -> write_doc p (Mclock_explore.Halving.result_json result))
      json;
    Option.iter
      (fun p ->
        write_doc p
          (with_remote_stats client (Mclock_explore.Halving.stats_json result)))
      stats_json;
      result.Mclock_explore.Halving.winner = None
    in
    if no_winner then exit 2
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Successive-halving multi-fidelity search of the design space: \
             evaluate everything cheaply, keep the best ceil(n/eta) under \
             the scalarized objective, double down on the survivors until \
             one rung runs at full fidelity. Shares the persistent \
             evaluation cache with $(b,mclock explore); results are \
             byte-identical across job counts and cache states. By \
             default each rung resumes the survivors' simulations from \
             the previous rung's checkpoints instead of restarting \
             them (see $(b,--no-resume), $(b,--race)).")
    Term.(
      const run $ workload_arg $ file_arg $ max_clocks_arg $ constraint_arg
      $ explore_iterations_arg $ seed_arg $ jobs_arg $ cache_dir_arg
      $ no_cache_arg $ json_arg $ stats_json_arg $ smoke_arg $ eta_arg
      $ min_iterations_arg $ objective_arg $ no_resume_arg $ race_arg
      $ race_margin_arg $ close_threshold_arg $ remote_arg $ remote_push_arg
      $ timings_arg $ timings_json_arg $ trace_arg $ trace_summary_arg)

(* --- estimate ------------------------------------------------------------ *)

let estimate_cmd =
  let stimulus_arg =
    Arg.(value & opt string "uniform" & info [ "stimulus" ] ~docv:"MODEL"
           ~doc:"Stimulus statistics: $(b,uniform), $(b,correlated:P), \
                 $(b,ramp:K) or $(b,constant).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the analysis as machine-readable JSON.")
  in
  let compare_arg =
    Arg.(value & flag & info [ "compare" ]
           ~doc:"Also run the simulator under the same stimulus model and \
                 report the per-component estimation error and the bound \
                 check; exits 3 if any component exceeds its certified \
                 bound.")
  in
  let run workload file scheduler method_ clocks iterations seed stimulus json
      compare =
    let input = or_die (load ~workload ~file ~scheduler) in
    let m = method_of (method_, clocks) in
    let name =
      match (workload, file) with
      | Some n, _ -> n
      | _, Some p -> Filename.remove_extension (Filename.basename p)
      | None, None -> "design"
    in
    let stimulus = or_die (Mclock_static.Stim.parse stimulus) in
    let design = Mclock_core.Flow.synthesize ~method_:m ~name input.schedule in
    let analysis =
      Mclock_static.Analyze.run ~stimulus ~iterations tech design
    in
    let comparison =
      if compare then
        Some
          (Mclock_static.Report.compare_with_simulation ~seed tech design
             input.graph analysis)
      else None
    in
    if json then
      print_endline
        (Mclock_lint.Json.to_string_pretty
           (Mclock_static.Report.to_json ?comparison analysis))
    else print_string (Mclock_static.Report.to_text ?comparison analysis);
    match comparison with
    | Some c when not c.Mclock_static.Report.sound -> exit 3
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Simulation-free static power analysis: expected power under a \
             stimulus model plus a certified upper bound, per component and \
             mechanism.")
    Term.(
      const run $ workload_arg $ file_arg $ scheduler_arg $ method_arg
      $ clocks_arg $ iterations_arg $ seed_arg $ stimulus_arg $ json_arg
      $ compare_arg)

let cache_cmd =
  let module Store = Mclock_explore.Store in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as JSON.")
  in
  let stats_cmd =
    let rebuild_arg =
      Arg.(value & flag & info [ "rebuild" ]
             ~doc:"Rescan the cache directory and rewrite the manifest \
                   instead of trusting an existing one.")
    in
    let stats_remote_arg =
      Arg.(value & opt (some string) None & info [ "remote" ] ~docv:"URL"
             ~doc:"Query a running cache server's /v1/stats instead of a \
                   local directory.")
    in
    let run cache_dir rebuild remote json =
      match remote with
      | Some url ->
          let client = or_die (Mclock_remote.Client.create ~url ()) in
          (match Mclock_remote.Client.remote_stats client with
          | None ->
              or_die
                (Error
                   (Printf.sprintf "no stats from %s (server down?)"
                      (Mclock_remote.Client.url client)))
          | Some j ->
              if json then
                print_endline (Mclock_lint.Json.to_string_pretty j)
              else
                Fmt.pr "%s: %s@."
                  (Mclock_remote.Client.url client)
                  (Mclock_lint.Json.to_string j))
      | None ->
          let store = Store.open_ ~dir:cache_dir () in
          let m = Store.manifest ~rebuild store in
          if json then
            print_endline
              (Mclock_lint.Json.to_string_pretty
                 (Mclock_lint.Json.Obj
                    [
                      ("dir", Mclock_lint.Json.String (Store.dir store));
                      ("entries", Mclock_lint.Json.Int m.Store.m_entries);
                      ("bytes", Mclock_lint.Json.Int m.Store.m_bytes);
                      ("rebuilt", Mclock_lint.Json.Bool m.Store.m_rebuilt);
                    ]))
          else
            Fmt.pr "%s: %d entries, %d bytes%s@." (Store.dir store)
              m.Store.m_entries m.Store.m_bytes
              (if m.Store.m_rebuilt then " (manifest rebuilt)" else "")
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Entry-count and byte totals for the evaluation cache \
               (metrics entries plus checkpoint sidecars), O(1) via the \
               manifest when one is present; or, with $(b,--remote), a \
               running cache server's serving counters.")
      Term.(const run $ cache_dir_arg $ rebuild_arg $ stats_remote_arg
            $ json_arg)
  in
  let gc_cmd =
    let max_age_arg =
      Arg.(value & opt (some float) None & info [ "max-age" ] ~docv:"SECONDS"
             ~doc:"Remove entries older than $(docv) seconds.")
    in
    let max_size_arg =
      Arg.(value & opt (some int) None & info [ "max-size" ] ~docv:"BYTES"
             ~doc:"Evict oldest-first until at most $(docv) bytes remain.")
    in
    let dry_run_arg =
      Arg.(value & flag & info [ "dry-run" ]
             ~doc:"Report what would be removed — entry count, bytes, and \
                   the oldest/newest would-be victims — without deleting \
                   anything or touching the manifest.")
    in
    let run cache_dir max_age max_size dry_run json =
      (match (max_age, max_size) with
      | None, None ->
          or_die (Error "cache gc: give --max-age and/or --max-size")
      | _ -> ());
      (match max_age with
      | Some a when a < 0. -> or_die (Error "--max-age must be >= 0")
      | _ -> ());
      (match max_size with
      | Some s when s < 0 -> or_die (Error "--max-size must be >= 0")
      | _ -> ());
      let store = Store.open_ ~dir:cache_dir () in
      let r = Store.gc ?max_age ?max_bytes:max_size ~dry_run store in
      if json then
        let mtime_json = function
          | None -> Mclock_lint.Json.Null
          | Some m -> Mclock_lint.Json.Float m
        in
        print_endline
          (Mclock_lint.Json.to_string_pretty
             (Mclock_lint.Json.Obj
                [
                  ("dir", Mclock_lint.Json.String (Store.dir store));
                  ("dry_run", Mclock_lint.Json.Bool dry_run);
                  ( "removed_entries",
                    Mclock_lint.Json.Int r.Store.gc_removed_entries );
                  ( "removed_bytes",
                    Mclock_lint.Json.Int r.Store.gc_removed_bytes );
                  ( "remaining_entries",
                    Mclock_lint.Json.Int r.Store.gc_remaining_entries );
                  ( "remaining_bytes",
                    Mclock_lint.Json.Int r.Store.gc_remaining_bytes );
                  ("oldest_removed", mtime_json r.Store.gc_oldest_removed);
                  ("newest_removed", mtime_json r.Store.gc_newest_removed);
                ]))
      else begin
        Fmt.pr "%s: %s %d entries (%d bytes), %d entries (%d bytes) %s@."
          (Store.dir store)
          (if dry_run then "would remove" else "removed")
          r.Store.gc_removed_entries r.Store.gc_removed_bytes
          r.Store.gc_remaining_entries r.Store.gc_remaining_bytes
          (if dry_run then "would remain" else "remain");
        match (r.Store.gc_oldest_removed, r.Store.gc_newest_removed) with
        | Some oldest, Some newest ->
            let now = Unix.gettimeofday () in
            Fmt.pr "  victims span %.0fs to %.0fs old@." (now -. newest)
              (now -. oldest)
        | _ -> ()
      end
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Bounded eviction over the evaluation cache: drop entries \
               older than $(b,--max-age), then evict oldest-first down to \
               $(b,--max-size) bytes.  Result and checkpoint entries are \
               treated uniformly; the manifest is rewritten with the \
               post-GC totals.  $(b,--dry-run) only reports.")
      Term.(const run $ cache_dir_arg $ max_age_arg $ max_size_arg
            $ dry_run_arg $ json_arg)
  in
  let serve_cmd =
    let dir_arg =
      Arg.(value & opt string ".mclock-cache"
           & info [ "dir"; "cache-dir" ] ~docv:"DIR"
               ~doc:"Cache directory to serve (created on demand).")
    in
    let host_arg =
      Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
             ~doc:"Address to bind (an IP literal).")
    in
    let port_arg =
      Arg.(value & opt int 8090 & info [ "p"; "port" ] ~docv:"PORT"
             ~doc:"Port to bind; 0 lets the kernel pick one (printed on \
                   stderr).")
    in
    let writable_arg =
      Arg.(value & flag & info [ "writable" ]
             ~doc:"Accept PUT uploads (every body is verified before it is \
                   written). Off by default: the server is read-only.")
    in
    let max_body_arg =
      Arg.(value & opt (some int) None & info [ "max-body" ] ~docv:"BYTES"
             ~doc:"Largest request/response body accepted (default 16 MiB).")
    in
    let io_timeout_arg =
      Arg.(value & opt float 10. & info [ "io-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-connection socket read/write deadline.")
    in
    let run dir host port writable max_body io_timeout trace trace_summary =
      if port < 0 || port > 65535 then
        or_die (Error "--port must be in 0..65535");
      Option.iter (require_positive ~what:"--max-body") max_body;
      if io_timeout <= 0. then or_die (Error "--io-timeout must be > 0");
      with_tracing ~name:"cache serve" ~trace ~trace_summary @@ fun () ->
      let server =
        or_die
          (Mclock_remote.Server.create ~host ~port ~writable ?max_body
             ~io_timeout ~dir ())
      in
      Fmt.epr "serving %s on %s%s@." dir
        (Mclock_remote.Server.url server)
        (if writable then " (writable)" else " (read-only)");
      Mclock_remote.Server.serve server
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Serve a cache directory over HTTP for read-through clients \
               ($(b,--remote) on $(b,explore)/$(b,search)): verified \
               entries and checkpoint sidecars under /v1, liveness at \
               /v1/healthz, counters at /v1/stats.  Runs until killed.")
      Term.(const run $ dir_arg $ host_arg $ port_arg $ writable_arg
            $ max_body_arg $ io_timeout_arg $ trace_arg $ trace_summary_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect, bound and serve the persistent evaluation cache.")
    [ stats_cmd; gc_cmd; serve_cmd ]

let () =
  let info =
    Cmd.info "mclock" ~version:"1.0.0"
      ~doc:"Multi-clock RTL power-management synthesis (DAC'96 reproduction)."
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; show_cmd; synth_cmd; lint_cmd; table_cmd; waves_cmd;
         sweep_cmd; explore_cmd; search_cmd; estimate_cmd; controller_cmd;
         calibrate_cmd; cache_cmd ]))
