(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables 1-4, Figures 1-7), runs the ablation studies
   called out in DESIGN.md, and finishes with Bechamel micro-benchmarks
   of the allocators and the simulator (one group per table).

   Every independent (design x workload x clock-count) evaluation cell
   runs on the mclock_exec worker pool; the tables are byte-identical
   for any job count (MCLOCK_JOBS or --jobs N).

   Run with: dune exec bench/main.exe
   Flags: --smoke (first table + Figure 1 only, for CI)
          --jobs N (worker domains; default MCLOCK_JOBS or cores-1)
          --timings (per-task timing table on stderr)
          --timings-json PATH (telemetry as JSON)
   Modes: sim-throughput (cycles/sec of the reference interpreter vs
          the compiled kernel per workload x method; writes
          BENCH_sim.json, --json PATH overrides; --smoke shrinks the
          grid for CI)
          explore (design-space exploration cold vs warm against a
          fresh persistent cache; asserts the warm frontier is
          byte-identical with zero simulations and writes
          BENCH_explore.json)
          search (successive-halving search cold vs warm against a
          fresh persistent cache, then the exhaustive grid on the same
          cache; asserts byte-identical warm documents, and — under
          --smoke — that the winner equals the exhaustive best and the
          search costs less than half the grid's simulated iterations;
          writes BENCH_search.json)
          resume (halving search with checkpointed incremental
          promotion vs restart-per-rung on fresh caches; asserts
          identical scores and winner, byte-identical warm documents,
          winner equal to the exhaustive best, and — under --smoke —
          >= 1.2x fewer simulated iterations; writes BENCH_resume.json)
          static-accuracy (static power estimate vs simulation vs
          certified bound over the catalog x every method; asserts
          soundness on every cell and writes the error distribution
          to BENCH_static.json)
          remote (read-through cache tier against a loopback HTTP
          server: cold local, then remote-warm into an empty local
          store — asserting a byte-identical frontier with zero
          simulations and nonzero remote hits — then a degraded pass
          against the stopped server, asserting identical local
          results with the failures counted; writes
          BENCH_remote.json) *)

let tech = Mclock_tech.Cmos08.t
let iterations = 500
let seed = 42

let argv_flag name = Array.exists (( = ) name) Sys.argv

let argv_opt name =
  let n = Array.length Sys.argv in
  let rec go i =
    if i >= n - 1 then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let pool =
  let jobs =
    match argv_opt "--jobs" with
    | Some s -> int_of_string s
    | None -> Mclock_exec.Pool.default_jobs ()
  in
  Mclock_exec.Pool.create ~jobs ()

let section title =
  Fmt.pr "@.=== %s ===@.@." title

(* --- Tables 1-4 --------------------------------------------------------- *)

let evaluate_suite w =
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  let suite =
    Mclock_core.Flow.standard_suite ~name:w.Mclock_workloads.Workload.name
      schedule
  in
  (* Lint on the submitting side so diagnostics interleave
     deterministically, then fan the five evaluations out. *)
  List.iter
    (fun (m, design) ->
      let diags = Mclock_lint.Lint.design design in
      if diags <> [] then
        Fmt.epr "lint diagnostics in %s / %s:@.%s@."
          w.Mclock_workloads.Workload.name
          (Mclock_core.Flow.method_label m)
          (Mclock_lint.Diagnostic.render diags))
    suite;
  Mclock_power.Report.evaluate_batch ~pool ~seed ~iterations tech
    (List.map
       (fun (m, design) -> (Mclock_core.Flow.method_label m, design, graph))
       suite)

let print_paper_comparison w reports =
  match Paper_data.for_bench w.Mclock_workloads.Workload.name with
  | None -> ()
  | Some paper ->
      let table =
        Mclock_util.Table.create
          ~title:"paper vs measured (reductions are vs the gated-clock row)"
          ~header:
            [ "Design"; "paper mW"; "ours mW"; "paper dP"; "ours dP"; "paper dA"; "ours dA" ]
          ~aligns:
            Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right ]
          ()
      in
      (* The reductions are relative to the gated-clock row; both the
         paper row and our report are found by label rather than
         position, and the row pairing itself is label-checked, so a
         reordered suite fails loudly instead of silently mispairing
         rows. *)
      let what =
        Printf.sprintf "paper comparison for %s"
          w.Mclock_workloads.Workload.name
      in
      let gated_label =
        Mclock_core.Flow.method_label Mclock_core.Flow.Conventional_gated
      in
      let paper_gated =
        Mclock_util.List_ext.find_by ~what
          ~label_of:(fun (p : Paper_data.row) -> p.Paper_data.label)
          gated_label paper.Paper_data.rows
      in
      let our_gated =
        Mclock_util.List_ext.find_by ~what
          ~label_of:(fun (r : Mclock_power.Report.t) ->
            r.Mclock_power.Report.label)
          gated_label reports
      in
      let pairs =
        Mclock_util.List_ext.zip_strict ~what paper.Paper_data.rows reports
      in
      List.iter
        (fun ((p : Paper_data.row), (r : Mclock_power.Report.t)) ->
          if p.Paper_data.label <> r.Mclock_power.Report.label then
            Fmt.failwith "%s: paper row %S paired with report %S" what
              p.Paper_data.label r.Mclock_power.Report.label;
          let paper_dp =
            100. *. (paper_gated.Paper_data.power -. p.Paper_data.power)
            /. paper_gated.Paper_data.power
          in
          let our_dp = Mclock_power.Report.reduction_vs ~baseline:our_gated r in
          let paper_da =
            100.
            *. (p.Paper_data.area -. paper_gated.Paper_data.area)
            /. paper_gated.Paper_data.area
          in
          let our_da =
            Mclock_power.Report.area_increase_vs ~baseline:our_gated r
          in
          Mclock_util.Table.add_row table
            [
              r.Mclock_power.Report.label;
              Printf.sprintf "%.2f" p.Paper_data.power;
              Printf.sprintf "%.2f" r.Mclock_power.Report.power_mw;
              Printf.sprintf "%+.0f%%" (-.paper_dp);
              Printf.sprintf "%+.0f%%" (-.our_dp);
              Printf.sprintf "%+.0f%%" paper_da;
              Printf.sprintf "%+.0f%%" our_da;
            ])
        pairs;
      Mclock_util.Table.print table

let run_table index w =
  section (Printf.sprintf "Table %d — Multiple Clocks with Latches for the %s"
             index (String.capitalize_ascii w.Mclock_workloads.Workload.name));
  let reports = evaluate_suite w in
  Mclock_util.Table.print (Mclock_power.Report.paper_table reports);
  print_newline ();
  print_paper_comparison w reports;
  reports

(* --- Figure 1: Circuit 1 vs Circuit 2 ------------------------------------- *)

let run_figure1 () =
  section "Figure 1 — minimal-resource Circuit 1 vs two-clock Circuit 2";
  let w = Mclock_workloads.Motivating.t in
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  let run m label =
    Mclock_power.Report.evaluate ~seed ~iterations ~label tech
      (Mclock_core.Flow.synthesize ~method_:m ~name:label schedule)
      graph
  in
  let c1 = run Mclock_core.Flow.Conventional_non_gated "Circuit 1 (1 clock)" in
  let c2 = run (Mclock_core.Flow.Integrated 2) "Circuit 2 (2 clocks)" in
  Mclock_util.Table.print (Mclock_power.Report.paper_table [ c1; c2 ]);
  Fmt.pr "@.Circuit 2 saves %.1f%% power for %.1f%% more area.@."
    (Mclock_power.Report.reduction_vs ~baseline:c1 c2)
    (Mclock_power.Report.area_increase_vs ~baseline:c1 c2)

(* --- Figure 2: non-overlapping clock waveforms ------------------------------ *)

let run_figure2 () =
  section "Figure 2 — the multiple clocking scheme";
  List.iter
    (fun n ->
      let clock =
        Mclock_rtl.Clock.create ~phases:n
          ~frequency:tech.Mclock_tech.Library.clock_frequency
      in
      Fmt.pr "%a — non-overlap: %b@.%s@." Mclock_rtl.Clock.pp clock
        (Mclock_rtl.Clock.non_overlapping clock)
        (Mclock_rtl.Clock.render_waveforms clock ~cycles:6))
    [ 2; 3 ];
  Fmt.pr
    "each phase clock runs at f/n while the effective datapath rate stays f@."

(* --- Figure 3: FB / DPM structural inventory --------------------------------- *)

let run_figure3 () =
  section "Figure 3 — functional blocks and datapath modules (3-clock FACET)";
  let schedule = Mclock_workloads.Workload.schedule Mclock_workloads.Facet.t in
  let design =
    Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 3)
      ~name:"facet3" schedule
  in
  let dp = Mclock_rtl.Design.datapath design in
  let table =
    Mclock_util.Table.create ~title:"components per DPM (clock partition)"
      ~header:[ "DPM"; "ALUs"; "storage"; "muxes"; "mux inputs" ]
      ~aligns:Mclock_util.Table.[ Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun p ->
      let of_phase f = List.filter (fun (c, _) -> Mclock_rtl.Comp.phase c = p) (f dp) in
      let muxes = of_phase Mclock_rtl.Datapath.muxes in
      Mclock_util.Table.add_row table
        [
          string_of_int p;
          string_of_int (List.length (of_phase Mclock_rtl.Datapath.alus));
          string_of_int (List.length (of_phase Mclock_rtl.Datapath.storages));
          string_of_int (List.length muxes);
          string_of_int
            (Mclock_util.List_ext.sum_by
               (fun (_, m) -> Array.length m.Mclock_rtl.Comp.m_choices)
               muxes);
        ])
    [ 1; 2; 3 ];
  Mclock_util.Table.print table

(* --- Figure 4: timing discipline ----------------------------------------------- *)

let run_figure4 () =
  section "Figure 4 — stored signals switch only in their own phase";
  let w = Mclock_workloads.Facet.t in
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  List.iter
    (fun n ->
      let design =
        Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated n)
          ~name:"f4" schedule
      in
      let dp = Mclock_rtl.Design.datapath design in
      let storages = Mclock_rtl.Datapath.storages dp in
      let prev = Hashtbl.create 16 in
      let violations = ref 0 and changes = ref 0 in
      let observer obs =
        List.iter
          (fun (c, s) ->
            let id = Mclock_rtl.Comp.id c in
            let v = obs.Mclock_sim.Simulator.obs_value id in
            match Hashtbl.find_opt prev id with
            | Some old when not (Mclock_util.Bitvec.equal old v) ->
                incr changes;
                if obs.Mclock_sim.Simulator.obs_phase <> s.Mclock_rtl.Comp.s_phase
                then incr violations;
                Hashtbl.replace prev id v
            | Some _ -> ()
            | None -> Hashtbl.replace prev id v)
          storages
      in
      let result =
        Mclock_sim.Simulator.run ~seed ~observer tech design ~iterations:50
      in
      let verify = Mclock_sim.Verify.check ~width:4 graph result in
      Fmt.pr
        "n=%d: %d storage transitions observed, %d outside their phase; \
         functional: %s@."
        n !changes !violations
        (if Mclock_sim.Verify.ok verify then "ok" else "BROKEN"))
    [ 1; 2; 3 ]

(* --- Figure 5: split allocation walk-through -------------------------------------- *)

let run_figure5 () =
  section "Figure 5 — split allocation of the motivating example (n=2)";
  let w = Mclock_workloads.Motivating.t in
  let schedule = Mclock_workloads.Workload.schedule w in
  print_string (Mclock_core.Split_alloc.render_partitions ~n:2 schedule);
  let r = Mclock_core.Split_alloc.run ~n:2 ~name:"fig5" schedule in
  let stats = r.Mclock_core.Split_alloc.stats in
  Fmt.pr
    "@.clean-up: %d duplicated primary-input registers dropped, %d pseudo-I/O \
     registers replaced by connections, %d classes split for latch R/W \
     conflicts@."
    stats.Mclock_core.Split_alloc.pseudo_input_registers_removed
    stats.Mclock_core.Split_alloc.cross_connections
    stats.Mclock_core.Split_alloc.classes_split;
  let graph = Mclock_workloads.Workload.graph w in
  let report =
    Mclock_power.Report.evaluate ~seed ~iterations ~label:"split 2-clock" tech
      r.Mclock_core.Split_alloc.design graph
  in
  let integrated =
    Mclock_power.Report.evaluate ~seed ~iterations ~label:"integrated 2-clock"
      tech
      (Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 2)
         ~name:"fig5i" schedule)
      graph
  in
  Mclock_util.Table.print
    (Mclock_power.Report.paper_table [ report; integrated ])

(* --- Figure 6: lifetime analysis with transfers -------------------------------------- *)

let fig6_schedule () =
  let r =
    Mclock_dfg.Parse.parse_string
      {|
dfg fig6
inputs a b
outputs y
n1: x = a + b @ 1
n2: e = a - b @ 2
n3: y = e + x @ 3
|}
  in
  Mclock_sched.Schedule.create r.Mclock_dfg.Parse.graph r.Mclock_dfg.Parse.steps

let run_figure6 () =
  section "Figure 6 — READ/WRITE lifetimes and the partition transfer (n=2)";
  let schedule = fig6_schedule () in
  let before = Mclock_core.Lifetime.analyze ~n:2 schedule in
  Fmt.pr "before transfer insertion:@.%s@."
    (Mclock_core.Lifetime.render_table before);
  let after = Mclock_core.Transfer.insert before in
  Fmt.pr "after transfer insertion:@.%s@."
    (Mclock_core.Lifetime.render_table after);
  List.iter
    (fun tr -> Fmt.pr "transfer: %a@." Mclock_core.Lifetime.pp_transfer tr)
    after.Mclock_core.Lifetime.transfers

(* --- Figure 7: integrated allocation result --------------------------------------------- *)

let run_figure7 () =
  section "Figure 7 — integrated allocation of the Fig. 6 example (n=2)";
  let schedule = fig6_schedule () in
  let r = Mclock_core.Integrated.run ~n:2 ~name:"fig7" schedule in
  Fmt.pr "%a@." Mclock_rtl.Datapath.pp
    (Mclock_rtl.Design.datapath r.Mclock_core.Integrated.design);
  Fmt.pr "@.%a@." Mclock_rtl.Control.pp
    (Mclock_rtl.Design.control r.Mclock_core.Integrated.design)

(* --- Ablations ------------------------------------------------------------------------------ *)

let ablation_row label design graph =
  Mclock_power.Report.evaluate ~seed ~iterations ~label tech design graph

let run_ablations () =
  section "Ablations — design choices of the scheme (3 clocks, all benchmarks)";
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      (* Each variant (synthesis + simulation) is one pool task; the
         row order is the submission order, so the table is stable for
         any job count. *)
      let variant ?park ?storage_kind ?latched_control ?transfers ?binding
          label =
        ( label,
          fun () ->
            let r =
              Mclock_core.Integrated.run ?park ?storage_kind ?latched_control
                ?transfers ?binding ~n:3 ~name:label schedule
            in
            ablation_row label r.Mclock_core.Integrated.design graph )
      in
      let specs =
        [
          variant "full scheme";
          variant ~storage_kind:Mclock_tech.Library.Register "flip-flops instead of latches";
          variant ~latched_control:false "unlatched control lines";
          variant ~transfers:false "no cross-partition transfers";
          variant ~park:false "no idle mux parking";
          variant ~transfers:false ~park:false "no transfers, no parking";
          variant ~binding:`Mux_aware "interconnect-aware register binding";
        ]
      in
      let rows =
        Mclock_exec.Pool.map pool
          ~label:(fun i ->
            Printf.sprintf "%s/%s" w.Mclock_workloads.Workload.name
              (fst (List.nth specs i)))
          (fun _ (_, run) -> run ())
          specs
      in
      let full = List.hd rows in
      let table =
        Mclock_util.Table.create
          ~title:(Printf.sprintf "%s (3 clocks)" w.Mclock_workloads.Workload.name)
          ~header:[ "variant"; "power [mW]"; "vs full"; "area [l^2]"; "OK" ]
          ~aligns:Mclock_util.Table.[ Left; Right; Right; Right; Left ]
          ()
      in
      List.iter
        (fun r ->
          Mclock_util.Table.add_row table
            [
              r.Mclock_power.Report.label;
              Printf.sprintf "%.2f" r.Mclock_power.Report.power_mw;
              Printf.sprintf "%+.0f%%"
                (100.
                *. (r.Mclock_power.Report.power_mw -. full.Mclock_power.Report.power_mw)
                /. full.Mclock_power.Report.power_mw);
              Printf.sprintf "%.0f" r.Mclock_power.Report.area.Mclock_power.Area.design_total;
              (if r.Mclock_power.Report.functional_ok then "yes" else "FAIL");
            ])
        rows;
      Mclock_util.Table.print table;
      print_newline ())
    Mclock_workloads.Catalog.paper_tables

let run_clock_sweep () =
  section "Clock-count sweep — diminishing returns (all benchmarks)";
  let table =
    Mclock_util.Table.create
      ~header:
        ("bench"
        :: List.map (fun n -> Printf.sprintf "n=%d [mW]" n) [ 1; 2; 3; 4; 5; 6 ])
      ~aligns:(Mclock_util.Table.Left :: List.map (fun _ -> Mclock_util.Table.Right) [ 1; 2; 3; 4; 5; 6 ])
      ()
  in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      let cells =
        Mclock_exec.Pool.map pool
          ~label:(fun i ->
            Printf.sprintf "%s/sweep n=%d" w.Mclock_workloads.Workload.name
              (i + 1))
          (fun _ n ->
            let r =
              Mclock_power.Report.evaluate ~seed ~iterations:300
                ~label:(string_of_int n) tech
                (Mclock_core.Flow.synthesize
                   ~method_:(Mclock_core.Flow.Integrated n)
                   ~name:(Printf.sprintf "s%d" n) schedule)
                graph
            in
            Printf.sprintf "%.2f" r.Mclock_power.Report.power_mw)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Mclock_util.Table.add_row table (w.Mclock_workloads.Workload.name :: cells))
    Mclock_workloads.Catalog.paper_tables;
  Mclock_util.Table.print table

(* --- Gate-level calibration --------------------------------------------------------------- *)

let run_calibration () =
  section "Gate-level calibration of the ALU activity model";
  let measurements =
    Mclock_gatelevel.Calibrate.measure_all ~samples:3000 tech ~width:4
  in
  print_string (Mclock_gatelevel.Calibrate.render measurements);
  Fmt.pr "@.(zero-delay gate counting excludes glitching and wire load, so the@.";
  Fmt.pr "lump model is expected to sit a bounded factor above it; what the@.";
  Fmt.pr "design comparisons rely on is the bounded spread of the ratios.)@."

(* --- Partition-aware rescheduling ------------------------------------------------------------ *)

let run_rescheduling () =
  section "Partition-aware rescheduling (3 clocks)";
  let table =
    Mclock_util.Table.create
      ~header:
        [ "bench"; "ALU bound"; "rebalanced"; "power [mW]"; "rebalanced"; "area [l^2]"; "rebalanced" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      let balanced = Mclock_core.Resched.balance ~n:3 schedule in
      let eval s label =
        Mclock_power.Report.evaluate ~seed ~iterations ~label tech
          (Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 3)
             ~name:label s)
          graph
      in
      let base = eval schedule "base" in
      let rebal = eval balanced "rebalanced" in
      Mclock_util.Table.add_row table
        [
          w.Mclock_workloads.Workload.name;
          string_of_int (Mclock_core.Resched.partition_alu_bound ~n:3 schedule);
          string_of_int (Mclock_core.Resched.partition_alu_bound ~n:3 balanced);
          Printf.sprintf "%.2f" base.Mclock_power.Report.power_mw;
          Printf.sprintf "%.2f" rebal.Mclock_power.Report.power_mw;
          Printf.sprintf "%.0f" base.Mclock_power.Report.area.Mclock_power.Area.design_total;
          Printf.sprintf "%.0f" rebal.Mclock_power.Report.area.Mclock_power.Area.design_total;
        ])
    Mclock_workloads.Catalog.paper_tables;
  Mclock_util.Table.print table

(* --- Controller encodings ------------------------------------------------------------------ *)

let run_controller_study () =
  section "Controller synthesis — state encodings (3-clock designs)";
  List.iter
    (fun w ->
      let schedule = Mclock_workloads.Workload.schedule w in
      let design =
        Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 3)
          ~name:"ctl" schedule
      in
      let reports =
        List.map
          (fun enc -> Mclock_ctrl.Synth.estimate tech design enc)
          Mclock_ctrl.Encoding.all
      in
      Fmt.pr "%s:@.%s@." w.Mclock_workloads.Workload.name
        (Mclock_ctrl.Synth.render reports))
    Mclock_workloads.Catalog.paper_tables

(* --- Stimulus sensitivity ------------------------------------------------------------------- *)

let run_stimulus_study () =
  section "Stimulus sensitivity — data correlation vs design style (biquad)";
  let w = Mclock_workloads.Biquad.t in
  let graph = Mclock_workloads.Workload.graph w in
  let schedule = Mclock_workloads.Workload.schedule w in
  let designs =
    List.map
      (fun m ->
        (Mclock_core.Flow.method_label m,
         Mclock_core.Flow.synthesize ~method_:m ~name:"st" schedule))
      [ Mclock_core.Flow.Conventional_gated; Mclock_core.Flow.Integrated 3 ]
  in
  let models =
    [
      Mclock_sim.Stimulus.Uniform;
      Mclock_sim.Stimulus.Correlated 0.25;
      Mclock_sim.Stimulus.Correlated 0.1;
      Mclock_sim.Stimulus.Ramp 1;
      Mclock_sim.Stimulus.Constant;
    ]
  in
  let table =
    Mclock_util.Table.create
      ~header:("stimulus" :: List.map fst designs)
      ~aligns:(Mclock_util.Table.Left :: List.map (fun _ -> Mclock_util.Table.Right) designs)
      ()
  in
  List.iter
    (fun model ->
      let row =
        List.map
          (fun (_, design) ->
            let rng = Mclock_util.Rng.create seed in
            let stimulus =
              Mclock_sim.Stimulus.generate model rng ~width:4 ~iterations:400 graph
            in
            let r = Mclock_sim.Simulator.run ~stimulus tech design ~iterations:400 in
            Printf.sprintf "%.2f mW" r.Mclock_sim.Simulator.power_mw)
          designs
      in
      Mclock_util.Table.add_row table (Mclock_sim.Stimulus.name model :: row))
    models;
  Mclock_util.Table.print table;
  Fmt.pr
    "@.(lower data activity shrinks the combinational share, so the clock-     dominated@. conventional designs converge toward the multi-clock ones      from above)@."

(* --- Voltage scaling / duplication comparison ------------------------------------------------- *)

let run_voltage_study () =
  section "Voltage-scaled duplication [12] vs the multi-clock scheme";
  let table =
    Mclock_util.Table.create
      ~header:
        [ "bench"; "conv [mW]"; "dup n=2 [mW]"; "dup n=2 area"; "mc2 [mW]"; "mc2 area";
          "dup n=3 [mW]"; "mc3 [mW]" ]
      ~aligns:
        (Mclock_util.Table.Left :: List.map (fun _ -> Mclock_util.Table.Right) [ 1; 2; 3; 4; 5; 6; 7 ])
      ()
  in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      let eval m label =
        Mclock_power.Report.evaluate ~seed ~iterations ~label tech
          (Mclock_core.Flow.synthesize ~method_:m ~name:label schedule)
          graph
      in
      let conv = eval Mclock_core.Flow.Conventional_non_gated "conv" in
      let mc2 = eval (Mclock_core.Flow.Integrated 2) "mc2" in
      let mc3 = eval (Mclock_core.Flow.Integrated 3) "mc3" in
      let dup n =
        Mclock_power.Voltage.duplicate ~tech
          ~baseline_power_mw:conv.Mclock_power.Report.power_mw
          ~baseline_area:conv.Mclock_power.Report.area.Mclock_power.Area.design_total
          n
      in
      let d2 = dup 2 and d3 = dup 3 in
      Mclock_util.Table.add_row table
        [
          w.Mclock_workloads.Workload.name;
          Printf.sprintf "%.2f" conv.Mclock_power.Report.power_mw;
          Printf.sprintf "%.2f" d2.Mclock_power.Voltage.power_mw;
          Printf.sprintf "%.0f" d2.Mclock_power.Voltage.area;
          Printf.sprintf "%.2f" mc2.Mclock_power.Report.power_mw;
          Printf.sprintf "%.0f" mc2.Mclock_power.Report.area.Mclock_power.Area.design_total;
          Printf.sprintf "%.2f" d3.Mclock_power.Voltage.power_mw;
          Printf.sprintf "%.2f" mc3.Mclock_power.Report.power_mw;
        ])
    Mclock_workloads.Catalog.paper_tables;
  Mclock_util.Table.print table;
  Fmt.pr
    "@.(duplication buys its savings with a quadratic voltage factor but      roughly@. doubles/triples the datapath; the multi-clock scheme reaches a      comparable@. band through synthesis alone, at full supply voltage — the      paper's Section 2@. remark, quantified)@."

(* --- Beyond the paper: extended workloads ------------------------------------------------------ *)

let run_extended_workloads () =
  section "Beyond the paper — EWF and FIR8";
  List.iter
    (fun w ->
      let reports = evaluate_suite w in
      Mclock_util.Table.print
        (Mclock_power.Report.paper_table
           ~title:(Printf.sprintf "Multiple Clocks with Latches for the %s"
                     w.Mclock_workloads.Workload.name)
           reports);
      print_newline ())
    Mclock_workloads.Catalog.extended

(* --- Bechamel micro-benchmarks --------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let per_table w =
    let schedule = Mclock_workloads.Workload.schedule w in
    let name = w.Mclock_workloads.Workload.name in
    let design =
      Mclock_core.Flow.synthesize ~method_:(Mclock_core.Flow.Integrated 3)
        ~name:"bench" schedule
    in
    Test.make_grouped ~name
      [
        Test.make ~name:"synth-suite"
          (Staged.stage (fun () ->
               ignore (Mclock_core.Flow.standard_suite ~name schedule)));
        Test.make ~name:"synth-integrated-3clk"
          (Staged.stage (fun () ->
               ignore
                 (Mclock_core.Flow.synthesize
                    ~method_:(Mclock_core.Flow.Integrated 3) ~name:"b" schedule)));
        Test.make ~name:"simulate-20-computations"
          (Staged.stage (fun () ->
               ignore (Mclock_sim.Simulator.run tech design ~iterations:20)));
      ]
  in
  Test.make_grouped ~name:"mclock"
    (List.map per_table Mclock_workloads.Catalog.paper_tables)

let run_bechamel () =
  section "Bechamel micro-benchmarks (time per run)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let table =
    Mclock_util.Table.create ~header:[ "benchmark"; "time per run" ]
      ~aligns:Mclock_util.Table.[ Left; Right ]
      ()
  in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) ->
            if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
            else Printf.sprintf "%.0f ns" t
        | Some [] | None -> "n/a"
      in
      Mclock_util.Table.add_row table [ name; estimate ])
    (List.sort compare rows);
  Mclock_util.Table.print table

(* --- Simulation throughput: reference interpreter vs compiled kernel --------------------------- *)

(* `sim-throughput` times both kernels over workload x method cells and
   writes the cycles/sec trajectory to BENCH_sim.json (override with
   --json PATH).  The two runs must agree bit-for-bit on energy — the
   benchmark doubles as one more differential check. *)
let run_sim_throughput () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 300 else 2000 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ] else Mclock_workloads.Catalog.all
  in
  let methods =
    [
      ("conv", Mclock_core.Flow.Conventional_non_gated);
      ("gated", Mclock_core.Flow.Conventional_gated);
      ("mc1", Mclock_core.Flow.Integrated 1);
      ("mc2", Mclock_core.Flow.Integrated 2);
      ("mc3", Mclock_core.Flow.Integrated 3);
      ("split2", Mclock_core.Flow.Split 2);
    ]
  in
  section
    (Printf.sprintf
       "Simulation throughput — reference vs compiled kernel (%d computations)"
       iterations);
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "method"; "cycles"; "reference [cyc/s]"; "compiled [cyc/s]"; "speedup" ]
      ~aligns:
        Mclock_util.Table.[ Left; Left; Right; Right; Right; Right ]
      ()
  in
  let time run =
    ignore (run 10); (* warm-up *)
    let t0 = Unix.gettimeofday () in
    let r = run iterations in
    (r, Unix.gettimeofday () -. t0)
  in
  let results = ref [] in
  List.iter
    (fun w ->
      let schedule = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun (mlabel, m) ->
          let design =
            Mclock_core.Flow.synthesize ~method_:m ~name:mlabel schedule
          in
          let rr, ref_dt =
            time (fun iterations ->
                Mclock_sim.Simulator.run ~seed tech design ~iterations)
          in
          let kernel = Mclock_sim.Compiled.compile tech design in
          let cr, comp_dt =
            time (fun iterations ->
                Mclock_sim.Compiled.run ~seed kernel ~iterations)
          in
          if
            not
              (Float.equal rr.Mclock_sim.Simulator.energy_pj
                 cr.Mclock_sim.Simulator.energy_pj)
          then
            Fmt.failwith "%s/%s: kernels disagree on energy"
              w.Mclock_workloads.Workload.name mlabel;
          let cycles = rr.Mclock_sim.Simulator.cycles in
          let ref_cps = float_of_int cycles /. ref_dt in
          let comp_cps = float_of_int cycles /. comp_dt in
          let speedup = comp_cps /. ref_cps in
          results :=
            (w.Mclock_workloads.Workload.name, mlabel, cycles, ref_cps, comp_cps, speedup)
            :: !results;
          Mclock_util.Table.add_row table
            [
              w.Mclock_workloads.Workload.name;
              mlabel;
              string_of_int cycles;
              Printf.sprintf "%.3g" ref_cps;
              Printf.sprintf "%.3g" comp_cps;
              Printf.sprintf "%.2fx" speedup;
            ])
        methods)
    workloads;
  Mclock_util.Table.print table;
  let results = List.rev !results in
  let best =
    List.fold_left (fun acc (_, _, _, _, _, s) -> max acc s) 0. results
  in
  Fmt.pr "@.best speedup: %.2fx@." best;
  let path = Option.value (argv_opt "--json") ~default:"BENCH_sim.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"benchmark\": \"sim-throughput\",\n  \"iterations\": %d,\n  \
        \"seed\": %d,\n  \"results\": [\n"
       iterations seed);
  List.iteri
    (fun i (wname, mlabel, cycles, ref_cps, comp_cps, speedup) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workload\": %S, \"method\": %S, \"cycles\": %d, \
            \"reference_cycles_per_sec\": %.6g, \"compiled_cycles_per_sec\": \
            %.6g, \"speedup\": %.4g }%s\n"
           wname mlabel cycles ref_cps comp_cps speedup
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.pr "wrote %s@." path;
  Mclock_exec.Pool.shutdown pool

(* --- Design-space exploration: cold vs warm cache ---------------------------------------------- *)

(* `explore` runs the full exploration twice per workload against a
   fresh cache directory — a cold pass that populates it and a warm
   pass that must serve every cell from the store — and reports wall
   times, hit/miss/prune counters and the resulting speedup.  The warm
   frontier must render byte-identically to the cold one; a mismatch
   fails the benchmark (cache soundness is part of the contract, not
   just a perf property). *)
let run_explore () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 120 else 400 in
  let max_clocks = if smoke then 2 else 4 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ]
    else Mclock_workloads.Catalog.paper_tables
  in
  section
    (Printf.sprintf
       "Design-space exploration — cold vs warm cache (max %d clocks, %d \
        computations)"
       max_clocks iterations);
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mclock-bench-cache.%d" (Unix.getpid ()))
  in
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "cells"; "pruned"; "frontier"; "cold [s]"; "warm [s]";
          "warm hits"; "speedup" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right; Right ]
      ()
  in
  let results = ref [] in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let name = w.Mclock_workloads.Workload.name in
      let sched_constraints = w.Mclock_workloads.Workload.constraints in
      let cache = Mclock_explore.Store.open_ ~dir:cache_dir () in
      let pass () =
        let t0 = Unix.gettimeofday () in
        let r =
          Mclock_explore.Engine.explore ~pool ~cache ~seed ~iterations
            ~max_clocks ~name ~sched_constraints graph
        in
        (r, Unix.gettimeofday () -. t0)
      in
      let cold, cold_dt = pass () in
      let warm, warm_dt = pass () in
      let frontier r =
        Mclock_lint.Json.to_string (Mclock_explore.Engine.frontier_json r)
      in
      if frontier cold <> frontier warm then
        Fmt.failwith "%s: warm-cache frontier differs from cold" name;
      if warm.Mclock_explore.Engine.stats.Mclock_explore.Engine.simulated <> 0
      then
        Fmt.failwith "%s: warm pass simulated %d cells (expected 0)" name
          warm.Mclock_explore.Engine.stats.Mclock_explore.Engine.simulated;
      let cs = cold.Mclock_explore.Engine.stats in
      let ws = warm.Mclock_explore.Engine.stats in
      results := (name, cs, ws, cold_dt, warm_dt) :: !results;
      Mclock_util.Table.add_row table
        [
          name;
          string_of_int cs.Mclock_explore.Engine.enumerated;
          string_of_int cs.Mclock_explore.Engine.pruned;
          string_of_int
            (List.length
               cold.Mclock_explore.Engine.pareto.Mclock_explore.Pareto.frontier);
          Printf.sprintf "%.3f" cold_dt;
          Printf.sprintf "%.3f" warm_dt;
          string_of_int ws.Mclock_explore.Engine.cache_hits;
          Printf.sprintf "%.1fx" (cold_dt /. warm_dt);
        ])
    workloads;
  Mclock_util.Table.print table;
  (* The bench cache is throwaway; leave nothing behind. *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat cache_dir f))
       (Sys.readdir cache_dir);
     Unix.rmdir cache_dir
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  let path = Option.value (argv_opt "--json") ~default:"BENCH_explore.json" in
  let json =
    Mclock_lint.Json.Obj
      [
        ("benchmark", Mclock_lint.Json.String "explore");
        ("iterations", Mclock_lint.Json.Int iterations);
        ("max_clocks", Mclock_lint.Json.Int max_clocks);
        ("seed", Mclock_lint.Json.Int seed);
        ( "results",
          Mclock_lint.Json.List
            (List.rev_map
               (fun (name, cs, ws, cold_dt, warm_dt) ->
                 Mclock_lint.Json.Obj
                   [
                     ("workload", Mclock_lint.Json.String name);
                     ( "enumerated",
                       Mclock_lint.Json.Int cs.Mclock_explore.Engine.enumerated
                     );
                     ("pruned", Mclock_lint.Json.Int cs.Mclock_explore.Engine.pruned);
                     ( "cold_simulated",
                       Mclock_lint.Json.Int cs.Mclock_explore.Engine.simulated );
                     ( "warm_hits",
                       Mclock_lint.Json.Int ws.Mclock_explore.Engine.cache_hits );
                     ("cold_seconds", Mclock_lint.Json.Float cold_dt);
                     ("warm_seconds", Mclock_lint.Json.Float warm_dt);
                     ( "speedup",
                       Mclock_lint.Json.Float (cold_dt /. warm_dt) );
                   ])
               !results) );
      ]
  in
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.pr "wrote %s@." path;
  Mclock_exec.Pool.shutdown pool

(* --- Successive-halving search vs exhaustive grid ---------------------------------------------- *)

(* `search` runs the halving search twice per workload against a fresh
   cache (cold, then warm: the search document must be byte-identical
   and the warm pass must simulate nothing), then runs the exhaustive
   exploration against the same cache and checks the halving winner
   against the exhaustive best under the same objective.  The headline
   number is the simulated-iteration savings: halving's total
   evaluation work vs the exhaustive grid at full fidelity. *)
let run_search () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 120 else 400 in
  let max_clocks = if smoke then 2 else 4 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ]
    else Mclock_workloads.Catalog.paper_tables
  in
  let objective = Mclock_explore.Objective.default in
  section
    (Printf.sprintf
       "Successive-halving search vs exhaustive grid (max %d clocks, %d \
        computations, objective %s)"
       max_clocks iterations
       (Mclock_explore.Objective.to_string objective))
  ;
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mclock-bench-search-cache.%d" (Unix.getpid ()))
  in
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "cells"; "rungs"; "search iters"; "grid iters";
          "savings"; "winner"; "= exhaustive" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Left; Left ]
      ()
  in
  let results = ref [] in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let name = w.Mclock_workloads.Workload.name in
      let sched_constraints = w.Mclock_workloads.Workload.constraints in
      let cache = Mclock_explore.Store.open_ ~dir:cache_dir () in
      let pass () =
        let t0 = Unix.gettimeofday () in
        let r =
          Mclock_explore.Halving.run ~pool ~cache ~seed ~iterations
            ~max_clocks ~objective ~name ~sched_constraints graph
        in
        (r, Unix.gettimeofday () -. t0)
      in
      let cold, cold_dt = pass () in
      let warm, warm_dt = pass () in
      let doc r =
        Mclock_lint.Json.to_string (Mclock_explore.Halving.result_json r)
      in
      if doc cold <> doc warm then
        Fmt.failwith "%s: warm-cache search document differs from cold" name;
      if warm.Mclock_explore.Halving.stats.Mclock_explore.Halving.simulated <> 0
      then
        Fmt.failwith "%s: warm search simulated %d cells (expected 0)" name
          warm.Mclock_explore.Halving.stats.Mclock_explore.Halving.simulated;
      if warm.Mclock_explore.Halving.stats.Mclock_explore.Halving.cache_hits = 0
      then Fmt.failwith "%s: warm search served no cache hits" name;
      let winner =
        match cold.Mclock_explore.Halving.winner with
        | Some c -> c.Mclock_explore.Halving.c_label
        | None -> Fmt.failwith "%s: search found no functional winner" name
      in
      (* The exhaustive grid shares the cache, so the halving rungs it
         already paid for (the full-fidelity final rung in particular)
         are not re-simulated. *)
      let exhaustive =
        Mclock_explore.Engine.explore ~pool ~cache ~seed ~iterations
          ~max_clocks ~name ~sched_constraints graph
      in
      let exhaustive_best =
        match Mclock_explore.Engine.best ~objective exhaustive with
        | Some (cell, _) -> cell.Mclock_explore.Engine.cell_label
        | None -> Fmt.failwith "%s: exhaustive grid has no functional cell" name
      in
      let matches = String.equal winner exhaustive_best in
      (* The smoke grid is the CI contract: the halving winner must be
         the exhaustive best, and the search must cost less than half
         the grid.  The full catalog reports the same numbers without
         failing, fidelity-vs-optimality being the trade-off under
         study there. *)
      if smoke && not matches then
        Fmt.failwith "%s: halving winner %s but exhaustive best %s" name
          winner exhaustive_best;
      let search_iters = cold.Mclock_explore.Halving.evaluation_iterations in
      let grid_iters = cold.Mclock_explore.Halving.exhaustive_iterations in
      let savings = float_of_int grid_iters /. float_of_int search_iters in
      if smoke && savings < 2.0 then
        Fmt.failwith
          "%s: halving saved only %.2fx vs the exhaustive grid (expected >= \
           2x)"
          name savings;
      results :=
        (name, cold, winner, exhaustive_best, matches, savings, cold_dt,
         warm_dt, warm.Mclock_explore.Halving.stats)
        :: !results;
      Mclock_util.Table.add_row table
        [
          name;
          string_of_int cold.Mclock_explore.Halving.enumerated;
          string_of_int (List.length cold.Mclock_explore.Halving.rungs);
          string_of_int search_iters;
          string_of_int grid_iters;
          Printf.sprintf "%.1fx" savings;
          winner;
          (if matches then "yes" else Printf.sprintf "no (%s)" exhaustive_best);
        ])
    workloads;
  Mclock_util.Table.print table;
  (* The bench cache is throwaway; leave nothing behind. *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat cache_dir f))
       (Sys.readdir cache_dir);
     Unix.rmdir cache_dir
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  let path = Option.value (argv_opt "--json") ~default:"BENCH_search.json" in
  let json =
    Mclock_lint.Json.Obj
      [
        ("benchmark", Mclock_lint.Json.String "search");
        ("iterations", Mclock_lint.Json.Int iterations);
        ("max_clocks", Mclock_lint.Json.Int max_clocks);
        ("seed", Mclock_lint.Json.Int seed);
        ( "objective",
          Mclock_lint.Json.String (Mclock_explore.Objective.to_string objective)
        );
        ( "results",
          Mclock_lint.Json.List
            (List.rev_map
               (fun (name, cold, winner, exhaustive_best, matches, savings,
                     cold_dt, warm_dt, warm_stats) ->
                 Mclock_lint.Json.Obj
                   [
                     ("workload", Mclock_lint.Json.String name);
                     ( "enumerated",
                       Mclock_lint.Json.Int
                         cold.Mclock_explore.Halving.enumerated );
                     ( "pruned",
                       Mclock_lint.Json.Int cold.Mclock_explore.Halving.pruned
                     );
                     ( "rungs",
                       Mclock_lint.Json.Int
                         (List.length cold.Mclock_explore.Halving.rungs) );
                     ( "search_iterations",
                       Mclock_lint.Json.Int
                         cold.Mclock_explore.Halving.evaluation_iterations );
                     ( "exhaustive_iterations",
                       Mclock_lint.Json.Int
                         cold.Mclock_explore.Halving.exhaustive_iterations );
                     ("savings", Mclock_lint.Json.Float savings);
                     ("winner", Mclock_lint.Json.String winner);
                     ( "exhaustive_best",
                       Mclock_lint.Json.String exhaustive_best );
                     ("winner_matches", Mclock_lint.Json.Bool matches);
                     ("cold_seconds", Mclock_lint.Json.Float cold_dt);
                     ("warm_seconds", Mclock_lint.Json.Float warm_dt);
                     ( "warm_hits",
                       Mclock_lint.Json.Int
                         warm_stats.Mclock_explore.Halving.cache_hits );
                   ])
               !results) );
      ]
  in
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.pr "wrote %s@." path;
  Mclock_exec.Pool.shutdown pool

(* --- Checkpointed resume vs restart-per-rung --------------------------------------------------- *)

(* `resume` quantifies what the checkpoint sidecars buy: the halving
   search runs against two fresh caches, once with the default
   incremental promotion (each rung extends the previous rung's
   checkpoints) and once with --no-resume semantics (every rung
   restarts from iteration zero).  Both searches must agree on every
   score and the winner — resume is a pure cost optimization — and the
   winner must equal the exhaustive best under the same objective.  A
   warm re-run of the incremental search must render byte-identically
   and simulate nothing.  The headline number is the reduction in
   actually-simulated iterations; the smoke run enforces >= 1.2x as
   the CI contract. *)
let run_resume () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 120 else 400 in
  let max_clocks = if smoke then 2 else 4 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ]
    else Mclock_workloads.Catalog.paper_tables
  in
  let objective = Mclock_explore.Objective.default in
  section
    (Printf.sprintf
       "Checkpointed resume vs restart-per-rung (max %d clocks, %d \
        computations, objective %s)"
       max_clocks iterations
       (Mclock_explore.Objective.to_string objective));
  let fresh_cache tag name =
    Mclock_explore.Store.open_
      ~dir:
        (Filename.concat
           (Filename.get_temp_dir_name ())
           (Printf.sprintf "mclock-bench-resume-%s-%s.%d" tag name
              (Unix.getpid ())))
      ()
  in
  let drop_cache cache =
    let dir = Mclock_explore.Store.dir cache in
    try
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    with Sys_error _ | Unix.Unix_error (_, _, _) -> ()
  in
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "cells"; "rungs"; "restart iters"; "resume iters";
          "reduction"; "resumed"; "ckpts"; "winner"; "= exhaustive" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right;
                            Right; Left; Left ]
      ()
  in
  let results = ref [] in
  List.iter
    (fun w ->
      let graph = Mclock_workloads.Workload.graph w in
      let name = w.Mclock_workloads.Workload.name in
      let sched_constraints = w.Mclock_workloads.Workload.constraints in
      let search ~resume cache =
        Mclock_explore.Halving.run ~pool ~cache ~seed ~iterations ~max_clocks
          ~objective ~resume ~name ~sched_constraints graph
      in
      let doc r =
        Mclock_lint.Json.to_string (Mclock_explore.Halving.result_json r)
      in
      let resume_cache = fresh_cache "inc" name in
      let cold = search ~resume:true resume_cache in
      let warm = search ~resume:true resume_cache in
      if doc cold <> doc warm then
        Fmt.failwith "%s: warm-cache search document differs from cold" name;
      if
        warm.Mclock_explore.Halving.stats
          .Mclock_explore.Halving.simulated_iterations <> 0
      then
        Fmt.failwith "%s: warm search simulated %d iterations (expected 0)"
          name
          warm.Mclock_explore.Halving.stats
            .Mclock_explore.Halving.simulated_iterations;
      let restart_cache = fresh_cache "restart" name in
      let restart = search ~resume:false restart_cache in
      drop_cache restart_cache;
      let cs = cold.Mclock_explore.Halving.stats in
      let rs = restart.Mclock_explore.Halving.stats in
      let winner_label r =
        match r.Mclock_explore.Halving.winner with
        | Some c -> c.Mclock_explore.Halving.c_label
        | None -> Fmt.failwith "%s: search found no functional winner" name
      in
      let winner = winner_label cold in
      if not (String.equal winner (winner_label restart)) then
        Fmt.failwith "%s: resume winner %s but restart winner %s" name winner
          (winner_label restart);
      (* Scores must agree rung by rung, not just the winner: resume
         only changes where iterations come from. *)
      let scores r =
        List.concat_map
          (fun rung ->
            List.map
              (fun c ->
                (c.Mclock_explore.Halving.c_label,
                 c.Mclock_explore.Halving.c_score))
              rung.Mclock_explore.Halving.r_candidates)
          r.Mclock_explore.Halving.rungs
      in
      if scores cold <> scores restart then
        Fmt.failwith "%s: resume and restart rung scores differ" name;
      (* The exhaustive grid shares the incremental cache, so the
         full-fidelity final rung is already paid for. *)
      let exhaustive =
        Mclock_explore.Engine.explore ~pool ~cache:resume_cache ~seed
          ~iterations ~max_clocks ~name ~sched_constraints graph
      in
      drop_cache resume_cache;
      let exhaustive_best =
        match Mclock_explore.Engine.best ~objective exhaustive with
        | Some (cell, _) -> cell.Mclock_explore.Engine.cell_label
        | None -> Fmt.failwith "%s: exhaustive grid has no functional cell" name
      in
      let matches = String.equal winner exhaustive_best in
      if smoke && not matches then
        Fmt.failwith "%s: halving winner %s but exhaustive best %s" name
          winner exhaustive_best;
      let reduction =
        float_of_int rs.Mclock_explore.Halving.simulated_iterations
        /. float_of_int cs.Mclock_explore.Halving.simulated_iterations
      in
      if smoke && reduction < 1.2 then
        Fmt.failwith
          "%s: checkpoints cut simulated iterations only %.2fx vs \
           restart-per-rung (expected >= 1.2x)"
          name reduction;
      if cs.Mclock_explore.Halving.resumed = 0 then
        Fmt.failwith "%s: cold incremental search resumed no checkpoints" name;
      if cs.Mclock_explore.Halving.checkpoints_written = 0 then
        Fmt.failwith "%s: cold incremental search wrote no checkpoints" name;
      results := (name, cold, restart, winner, exhaustive_best, matches,
                  reduction)
                 :: !results;
      Mclock_util.Table.add_row table
        [
          name;
          string_of_int cold.Mclock_explore.Halving.enumerated;
          string_of_int (List.length cold.Mclock_explore.Halving.rungs);
          string_of_int rs.Mclock_explore.Halving.simulated_iterations;
          string_of_int cs.Mclock_explore.Halving.simulated_iterations;
          Printf.sprintf "%.1fx" reduction;
          string_of_int cs.Mclock_explore.Halving.resumed;
          string_of_int cs.Mclock_explore.Halving.checkpoints_written;
          winner;
          (if matches then "yes" else Printf.sprintf "no (%s)" exhaustive_best);
        ])
    workloads;
  Mclock_util.Table.print table;
  let path = Option.value (argv_opt "--json") ~default:"BENCH_resume.json" in
  let json =
    Mclock_lint.Json.Obj
      [
        ("benchmark", Mclock_lint.Json.String "resume");
        ("iterations", Mclock_lint.Json.Int iterations);
        ("max_clocks", Mclock_lint.Json.Int max_clocks);
        ("seed", Mclock_lint.Json.Int seed);
        ( "objective",
          Mclock_lint.Json.String (Mclock_explore.Objective.to_string objective)
        );
        ( "results",
          Mclock_lint.Json.List
            (List.rev_map
               (fun (name, cold, restart, winner, exhaustive_best, matches,
                     reduction) ->
                 let cs = cold.Mclock_explore.Halving.stats in
                 let rs = restart.Mclock_explore.Halving.stats in
                 Mclock_lint.Json.Obj
                   [
                     ("workload", Mclock_lint.Json.String name);
                     ( "enumerated",
                       Mclock_lint.Json.Int
                         cold.Mclock_explore.Halving.enumerated );
                     ( "rungs",
                       Mclock_lint.Json.Int
                         (List.length cold.Mclock_explore.Halving.rungs) );
                     ( "restart_simulated_iterations",
                       Mclock_lint.Json.Int
                         rs.Mclock_explore.Halving.simulated_iterations );
                     ( "resume_simulated_iterations",
                       Mclock_lint.Json.Int
                         cs.Mclock_explore.Halving.simulated_iterations );
                     ("reduction", Mclock_lint.Json.Float reduction);
                     ( "resumed",
                       Mclock_lint.Json.Int cs.Mclock_explore.Halving.resumed );
                     ( "resumed_iterations",
                       Mclock_lint.Json.Int
                         cs.Mclock_explore.Halving.resumed_iterations );
                     ( "checkpoints_written",
                       Mclock_lint.Json.Int
                         cs.Mclock_explore.Halving.checkpoints_written );
                     ("winner", Mclock_lint.Json.String winner);
                     ( "exhaustive_best",
                       Mclock_lint.Json.String exhaustive_best );
                     ("winner_matches", Mclock_lint.Json.Bool matches);
                   ])
               !results) );
      ]
  in
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.pr "wrote %s@." path;
  Mclock_exec.Pool.shutdown pool

(* --- Static estimate accuracy ------------------------------------------------------------------ *)

(* Sweeps the catalog x all allocation methods x n in {1,2,4},
   asserting the certified static bound dominates both the analytic
   estimate and the simulated power on every cell, and writes the
   estimate error distribution to BENCH_static.json (--json PATH
   overrides; --smoke shrinks the grid for CI). *)
let run_static_accuracy () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 100 else 400 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ]
    else Mclock_workloads.Catalog.all
  in
  let methods =
    [
      ("conv", Mclock_core.Flow.Conventional_non_gated);
      ("gated", Mclock_core.Flow.Conventional_gated);
      ("mc1", Mclock_core.Flow.Integrated 1);
      ("mc2", Mclock_core.Flow.Integrated 2);
      ("mc4", Mclock_core.Flow.Integrated 4);
      ("split2", Mclock_core.Flow.Split 2);
      ("split4", Mclock_core.Flow.Split 4);
    ]
  in
  section
    (Printf.sprintf
       "Static estimate vs simulation vs certified bound (%d computations)"
       iterations);
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "method"; "estimate [mW]"; "simulated [mW]";
          "bound [mW]"; "error"; "bound/sim" ]
      ~aligns:
        Mclock_util.Table.[ Left; Left; Right; Right; Right; Right; Right ]
      ()
  in
  let cells = ref [] in
  List.iter
    (fun w ->
      let name = w.Mclock_workloads.Workload.name in
      let graph = Mclock_workloads.Workload.graph w in
      let schedule = Mclock_workloads.Workload.schedule w in
      List.iter
        (fun (label, m) ->
          let d = Mclock_core.Flow.synthesize ~method_:m ~name schedule in
          let a = Mclock_static.Analyze.run ~iterations tech d in
          let c = Mclock_static.Report.compare_with_simulation ~seed tech d graph a in
          if not c.Mclock_static.Report.sound then
            Fmt.failwith "%s/%s: bound violated (est %.4f sim %.4f bound %.4f)"
              name label a.Mclock_static.Analyze.est_power_mw
              c.Mclock_static.Report.simulated_power_mw
              a.Mclock_static.Analyze.b_power_mw;
          let sim = c.Mclock_static.Report.simulated_power_mw in
          let bound_ratio = a.Mclock_static.Analyze.b_power_mw /. sim in
          cells := (name, label, a, c, bound_ratio) :: !cells;
          Mclock_util.Table.add_row table
            [
              name;
              label;
              Printf.sprintf "%.4f" a.Mclock_static.Analyze.est_power_mw;
              Printf.sprintf "%.4f" sim;
              Printf.sprintf "%.4f" a.Mclock_static.Analyze.b_power_mw;
              Printf.sprintf "%+.1f%%" (100. *. c.Mclock_static.Report.rel_error);
              Printf.sprintf "%.2fx" bound_ratio;
            ])
        methods)
    workloads;
  Mclock_util.Table.print table;
  let cells = List.rev !cells in
  let errors = List.map (fun (_, _, _, c, _) -> c.Mclock_static.Report.rel_error) cells in
  let ratios = List.map (fun (_, _, _, _, r) -> r) cells in
  let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  let fold f = function
    | [] -> nan
    | x :: xs -> List.fold_left f x xs
  in
  let max_abs_error = fold Float.max (List.map Float.abs errors) in
  Fmt.pr
    "error: mean %+.2f%%, mean |e| %.2f%%, max |e| %.2f%%; bound/sim: min \
     %.2fx, max %.2fx — all %d cells sound@."
    (100. *. mean errors)
    (100. *. mean (List.map Float.abs errors))
    (100. *. max_abs_error)
    (fold Float.min ratios) (fold Float.max ratios) (List.length cells);
  let path = Option.value (argv_opt "--json") ~default:"BENCH_static.json" in
  let json =
    Mclock_lint.Json.Obj
      [
        ("benchmark", Mclock_lint.Json.String "static-accuracy");
        ("iterations", Mclock_lint.Json.Int iterations);
        ("seed", Mclock_lint.Json.Int seed);
        ("stimulus", Mclock_lint.Json.String "uniform");
        ( "summary",
          Mclock_lint.Json.Obj
            [
              ("cells", Mclock_lint.Json.Int (List.length cells));
              ("all_sound", Mclock_lint.Json.Bool true);
              ("mean_error", Mclock_lint.Json.Float (mean errors));
              ( "mean_abs_error",
                Mclock_lint.Json.Float (mean (List.map Float.abs errors)) );
              ("max_abs_error", Mclock_lint.Json.Float max_abs_error);
              ("min_bound_ratio", Mclock_lint.Json.Float (fold Float.min ratios));
              ("max_bound_ratio", Mclock_lint.Json.Float (fold Float.max ratios));
            ] );
        ( "cells",
          Mclock_lint.Json.List
            (List.map
               (fun (name, label, a, c, ratio) ->
                 Mclock_lint.Json.Obj
                   [
                     ("workload", Mclock_lint.Json.String name);
                     ("method", Mclock_lint.Json.String label);
                     ( "estimate_mw",
                       Mclock_lint.Json.Float a.Mclock_static.Analyze.est_power_mw );
                     ( "simulated_mw",
                       Mclock_lint.Json.Float
                         c.Mclock_static.Report.simulated_power_mw );
                     ( "bound_mw",
                       Mclock_lint.Json.Float a.Mclock_static.Analyze.b_power_mw );
                     ( "rel_error",
                       Mclock_lint.Json.Float c.Mclock_static.Report.rel_error );
                     ("bound_ratio", Mclock_lint.Json.Float ratio);
                   ])
               cells) );
      ]
  in
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.pr "wrote %s@." path

(* --- Remote read-through cache tier ------------------------------------------------------------ *)

(* Three legs per workload against one loopback server:

     cold      — plain local exploration populating the source store;
     remote    — a loopback server on the source store backs an empty
                 local store through the read-through tier: the
                 frontier must be byte-identical and *zero* cells may
                 be simulated (every find is a remote fill);
     degraded  — the server is stopped and a fresh client pointed at
                 the dead port backs another empty store: the frontier
                 must again be byte-identical (everything re-simulated
                 locally) with the failures visible in the client's
                 counters, not as a crash or a hang.

   Writes BENCH_remote.json (--json PATH overrides; --smoke shrinks
   the grid for CI). *)
let run_remote () =
  let smoke = argv_flag "--smoke" in
  let iterations = if smoke then 120 else 400 in
  let max_clocks = if smoke then 2 else 4 in
  let workloads =
    if smoke then [ Mclock_workloads.Facet.t ]
    else Mclock_workloads.Catalog.paper_tables
  in
  section
    (Printf.sprintf
       "Remote read-through cache tier — cold vs remote-warm vs degraded \
        (max %d clocks, %d computations)"
       max_clocks iterations);
  let dir_of tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mclock-bench-remote-%s.%d" tag (Unix.getpid ()))
  in
  let src_dir = dir_of "src" in
  let dst_dir = dir_of "dst" in
  let deg_dir = dir_of "deg" in
  let drop_dir dir =
    try
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir
    with Sys_error _ | Unix.Unix_error (_, _, _) -> ()
  in
  let explore ~cache w =
    let t0 = Unix.gettimeofday () in
    let r =
      Mclock_explore.Engine.explore ~pool ~cache ~seed ~iterations
        ~max_clocks ~name:w.Mclock_workloads.Workload.name
        ~sched_constraints:w.Mclock_workloads.Workload.constraints
        (Mclock_workloads.Workload.graph w)
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let frontier r =
    Mclock_lint.Json.to_string (Mclock_explore.Engine.frontier_json r)
  in
  (* Leg 1: cold local exploration populating the source store. *)
  let cold_runs =
    List.map
      (fun w ->
        let cache = Mclock_explore.Store.open_ ~dir:src_dir () in
        let r, dt = explore ~cache w in
        (w, r, dt))
      workloads
  in
  (* Leg 2: loopback server over the source store backs empty stores. *)
  let server =
    match Mclock_remote.Server.create ~dir:src_dir () with
    | Ok s -> s
    | Error m -> Fmt.failwith "cannot start loopback cache server: %s" m
  in
  Mclock_remote.Server.start server;
  let server_url = Mclock_remote.Server.url server in
  let client =
    match Mclock_remote.Client.create ~url:server_url () with
    | Ok c -> c
    | Error m -> Fmt.failwith "client: %s" m
  in
  let remote_runs =
    List.map
      (fun (w, cold, _) ->
        let name = w.Mclock_workloads.Workload.name in
        let cache = Mclock_explore.Store.open_ ~dir:dst_dir () in
        Mclock_explore.Store.set_remote cache
          (Some (Mclock_remote.Client.tier client));
        let r, dt = explore ~cache w in
        if frontier cold <> frontier r then
          Fmt.failwith "%s: remote-warm frontier differs from cold local" name;
        if r.Mclock_explore.Engine.stats.Mclock_explore.Engine.simulated <> 0
        then
          Fmt.failwith "%s: remote-warm pass simulated %d cells (expected 0)"
            name r.Mclock_explore.Engine.stats.Mclock_explore.Engine.simulated;
        let fills =
          (Mclock_explore.Store.stats cache)
            .Mclock_explore.Store.remote_fills
        in
        if fills = 0 then
          Fmt.failwith "%s: remote-warm pass filled no entries from the tier"
            name;
        (r, dt, fills))
      cold_runs
  in
  let client_stats = Mclock_remote.Client.stats client in
  if client_stats.Mclock_remote.Client.remote_hits = 0 then
    Fmt.failwith "remote-warm legs recorded no remote hits";
  if client_stats.Mclock_remote.Client.remote_errors <> 0 then
    Fmt.failwith "remote-warm legs recorded %d remote errors against a live \
                  loopback server"
      client_stats.Mclock_remote.Client.remote_errors;
  let server_stats_json = Mclock_remote.Server.stats_json server in
  Mclock_remote.Server.stop server;
  (* Leg 3: the port is now dead; everything must degrade to local. *)
  let dead_client =
    match
      Mclock_remote.Client.create ~timeout:0.5 ~retries:0
        ~breaker_threshold:1 ~url:server_url ()
    with
    | Ok c -> c
    | Error m -> Fmt.failwith "client: %s" m
  in
  let degraded_runs =
    List.map
      (fun (w, cold, _) ->
        let name = w.Mclock_workloads.Workload.name in
        let cache = Mclock_explore.Store.open_ ~dir:deg_dir () in
        Mclock_explore.Store.set_remote cache
          (Some (Mclock_remote.Client.tier dead_client));
        let r, dt = explore ~cache w in
        if frontier cold <> frontier r then
          Fmt.failwith "%s: degraded-remote frontier differs from cold local"
            name;
        (r, dt))
      cold_runs
  in
  let dead_stats = Mclock_remote.Client.stats dead_client in
  if dead_stats.Mclock_remote.Client.remote_errors = 0 then
    Fmt.failwith "degraded legs recorded no remote errors against a dead port";
  if not dead_stats.Mclock_remote.Client.breaker_open then
    Fmt.failwith "degraded legs did not open the circuit breaker";
  let table =
    Mclock_util.Table.create
      ~header:
        [ "workload"; "cells"; "frontier"; "cold [s]"; "remote [s]";
          "fills"; "degraded [s]" ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right ]
      ()
  in
  let rows =
    List.map2
      (fun ((w, cold, cold_dt), (_, remote_dt, fills)) (_, degraded_dt) ->
        (w, cold, cold_dt, remote_dt, fills, degraded_dt))
      (List.combine cold_runs remote_runs)
      degraded_runs
  in
  List.iter
    (fun (w, cold, cold_dt, remote_dt, fills, degraded_dt) ->
      let cs = cold.Mclock_explore.Engine.stats in
      Mclock_util.Table.add_row table
        [
          w.Mclock_workloads.Workload.name;
          string_of_int cs.Mclock_explore.Engine.enumerated;
          string_of_int
            (List.length
               cold.Mclock_explore.Engine.pareto.Mclock_explore.Pareto.frontier);
          Printf.sprintf "%.3f" cold_dt;
          Printf.sprintf "%.3f" remote_dt;
          string_of_int fills;
          Printf.sprintf "%.3f" degraded_dt;
        ])
    rows;
  Mclock_util.Table.print table;
  Fmt.pr
    "remote tier: %d hits, %d misses, %d errors over %d requests; degraded: \
     %d errors, breaker %s@."
    client_stats.Mclock_remote.Client.remote_hits
    client_stats.Mclock_remote.Client.remote_misses
    client_stats.Mclock_remote.Client.remote_errors
    client_stats.Mclock_remote.Client.attempts
    dead_stats.Mclock_remote.Client.remote_errors
    (if dead_stats.Mclock_remote.Client.breaker_open then "open" else "closed");
  drop_dir src_dir;
  drop_dir dst_dir;
  drop_dir deg_dir;
  let path = Option.value (argv_opt "--json") ~default:"BENCH_remote.json" in
  let json =
    Mclock_lint.Json.Obj
      [
        ("benchmark", Mclock_lint.Json.String "remote");
        ("iterations", Mclock_lint.Json.Int iterations);
        ("max_clocks", Mclock_lint.Json.Int max_clocks);
        ("seed", Mclock_lint.Json.Int seed);
        ( "results",
          Mclock_lint.Json.List
            (List.map
               (fun (w, cold, cold_dt, remote_dt, fills, degraded_dt) ->
                 let cs = cold.Mclock_explore.Engine.stats in
                 Mclock_lint.Json.Obj
                   [
                     ( "workload",
                       Mclock_lint.Json.String w.Mclock_workloads.Workload.name
                     );
                     ( "enumerated",
                       Mclock_lint.Json.Int cs.Mclock_explore.Engine.enumerated
                     );
                     ( "cold_simulated",
                       Mclock_lint.Json.Int cs.Mclock_explore.Engine.simulated );
                     ("remote_simulated", Mclock_lint.Json.Int 0);
                     ("remote_fills", Mclock_lint.Json.Int fills);
                     ("cold_seconds", Mclock_lint.Json.Float cold_dt);
                     ("remote_seconds", Mclock_lint.Json.Float remote_dt);
                     ("degraded_seconds", Mclock_lint.Json.Float degraded_dt);
                   ])
               rows) );
        ("client", Mclock_remote.Client.stats_json client);
        ("degraded_client", Mclock_remote.Client.stats_json dead_client);
        ("server", server_stats_json);
      ]
  in
  let oc = open_out path in
  output_string oc (Mclock_lint.Json.to_string_pretty json ^ "\n");
  close_out oc;
  Fmt.pr "wrote %s@." path;
  Mclock_exec.Pool.shutdown pool

(* --- Entry ------------------------------------------------------------------------------------- *)

(* Timings go to stderr / a side file so stdout stays byte-identical
   across job counts. *)
let emit_telemetry () =
  if argv_flag "--timings" then
    prerr_string (Mclock_exec.Pool.render_timings pool);
  (match argv_opt "--timings-json" with
  | Some path ->
      let oc = open_out path in
      output_string oc (Mclock_exec.Pool.timings_to_json pool);
      close_out oc;
      Fmt.epr "wrote %s@." path
  | None -> ());
  Mclock_exec.Pool.shutdown pool

let check_failures all_reports =
  let failures =
    List.concat_map
      (fun (_, reports) ->
        List.filter (fun r -> not r.Mclock_power.Report.functional_ok) reports)
      all_reports
  in
  if failures <> [] then begin
    Fmt.epr "@.%d designs FAILED functional verification!@."
      (List.length failures);
    exit 1
  end
  else
    Fmt.pr "@.all %d designs verified against the golden model.@."
      (Mclock_util.List_ext.sum_by (fun (_, rs) -> List.length rs) all_reports)

let run_smoke () =
  let w = List.hd Mclock_workloads.Catalog.paper_tables in
  let reports = run_table 1 w in
  run_figure1 ();
  emit_telemetry ();
  check_failures [ (w, reports) ]

let run_full () =
  let all_reports =
    List.mapi
      (fun i w -> (w, run_table (i + 1) w))
      Mclock_workloads.Catalog.paper_tables
  in
  run_figure1 ();
  run_figure2 ();
  run_figure3 ();
  run_figure4 ();
  run_figure5 ();
  run_figure6 ();
  run_figure7 ();
  run_ablations ();
  run_clock_sweep ();
  run_calibration ();
  run_rescheduling ();
  run_controller_study ();
  run_stimulus_study ();
  run_voltage_study ();
  run_extended_workloads ();
  run_bechamel ();
  section "Summary — power savings of the 3-clock scheme vs gated clocks";
  List.iter
    (fun (w, reports) ->
      match reports with
      | [ _; gated; _; _; mc3 ] ->
          Fmt.pr "%-10s %.2f mW -> %.2f mW  (%.0f%% reduction, %+.0f%% area)@."
            w.Mclock_workloads.Workload.name gated.Mclock_power.Report.power_mw
            mc3.Mclock_power.Report.power_mw
            (Mclock_power.Report.reduction_vs ~baseline:gated mc3)
            (Mclock_power.Report.area_increase_vs ~baseline:gated mc3)
      | _ -> ())
    all_reports;
  emit_telemetry ();
  check_failures all_reports

let () =
  Fmt.pr "mclock benchmark harness — %a@." Mclock_tech.Library.pp tech;
  if argv_flag "sim-throughput" then run_sim_throughput ()
  else if argv_flag "explore" then run_explore ()
  else if argv_flag "search" then run_search ()
  else if argv_flag "resume" then run_resume ()
  else if argv_flag "static-accuracy" then run_static_accuracy ()
  else if argv_flag "remote" then run_remote ()
  else if argv_flag "--smoke" then run_smoke ()
  else run_full ()
