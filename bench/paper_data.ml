(* The published numbers of the paper's Tables 1-4, used to print the
   measured-vs-paper comparisons.  Power in mW, area in lambda^2.  Each
   row carries the label of the design style it reports, matching
   [Mclock_core.Flow.method_label] exactly, so consumers pair paper
   rows with measured reports by label rather than by position. *)

type row = { label : string; power : float; area : float }

type table = { bench : string; rows : row list }

(* The five designs of each published table, in row order; must match
   [Mclock_core.Flow.standard_suite]'s labels (checked by test_util). *)
let suite_labels =
  [
    "Conven. Alloc. (Non-Gated Clock)";
    "Conven. Alloc. (Gated Clock)";
    "1 Clock";
    "2 Clocks";
    "3 Clocks";
  ]

let rows_of bench pairs =
  List.map
    (fun (label, (power, area)) -> { label; power; area })
    (Mclock_util.List_ext.zip_strict
       ~what:(Printf.sprintf "Paper_data.rows_of %s" bench)
       suite_labels pairs)

let table bench pairs = { bench; rows = rows_of bench pairs }

let facet =
  table "facet"
    [
      (9.85, 2680425.);
      (6.92, 2383553.);
      (7.39, 2668365.);
      (6.41, 2552425.);
      (3.52, 2484873.);
    ]

let hal =
  table "hal"
    [
      (12.48, 3080133.);
      (8.12, 2819025.);
      (5.61, 2627484.);
      (4.98, 2901501.);
      (3.73, 2954465.);
    ]

let biquad =
  table "biquad"
    [
      (18.65, 5118795.);
      (11.49, 4826283.);
      (11.31, 5126718.);
      (9.24, 5194451.);
      (7.19, 5327823.);
    ]

let bandpass =
  table "bandpass"
    [
      (18.01, 5588975.);
      (8.87, 4181238.);
      (7.39, 3049956.);
      (6.15, 3729654.);
      (5.78, 4728731.);
    ]

let tables = [ facet; hal; biquad; bandpass ]

let for_bench name = List.find_opt (fun t -> t.bench = name) tables
