(** Technology library: per-cell area and switched-capacitance models
    (the stand-in for the paper's COMPASS 0.8 µm VSC450 library).

    Units: capacitance pF, area λ², voltage V, frequency Hz.  The power
    methodology matches the paper's tool: count transitions per node and
    apply [P = f_node · C_node · V²]. *)

open Mclock_dfg

type storage_params = {
  area_per_bit : float;
  clock_pin_cap : float;
  internal_cap_per_bit : float;
  output_cap_per_bit : float;
}

type mux_params = {
  area_per_input_bit : float;
  data_cap_per_bit : float;
  select_cap : float;
}

type fu_params = {
  area_per_bit : float;
  cap_per_area : float;
  output_cap_per_bit : float;
}

type t = {
  name : string;
  supply_voltage : float;
  clock_frequency : float;
  register : storage_params;
  latch : storage_params;
  mux : mux_params;
  fu_area_per_bit : Op.t -> float;
  fu_cap_per_area : float;
  fu_output_cap_per_bit : float;
  multifunction_penalty : float;
  addsub_sharing : float;
  control_line_cap : float;
  gating_cell_area : float;
  gating_cell_cap : float;
  isolation_area_per_bit : float;
  isolation_cap_per_bit : float;
  clock_tree_cap_per_sink : float;
  base_area : float;
  routing_factor : float;
}

val energy_per_transition : t -> float -> float
(** [energy_per_transition t cap] is ½·C·V² in pJ for [cap] in pF. *)

val alu_area : t -> width:int -> Op.Set.t -> float
(** Area of a (multifunction) ALU: function areas with Add/Sub core
    sharing and a per-extra-function penalty (the favourable (+-) pair
    is exempt, matching the paper's synthesis observations).  Raises
    [Invalid_argument] on an empty function set. *)

val alu_internal_cap : t -> width:int -> Op.Set.t -> float
(** Internal switched capacitance at full input activity. *)

val alu_output_cap : t -> width:int -> float

type storage_kind = Register | Latch

val storage_params : t -> storage_kind -> storage_params
val storage_area : t -> storage_kind -> width:int -> float

val storage_clock_cap : t -> storage_kind -> width:int -> float
(** Clock-pin plus clock-tree capacitance per clock transition. *)

val storage_clock_pin_cap : t -> storage_kind -> width:int -> float
(** Pin capacitance alone — what a gating cell saves; the tree up to
    the gate still toggles every cycle. *)

val storage_internal_cap : t -> storage_kind -> width:int -> float
val storage_output_cap : t -> storage_kind -> width:int -> float

val mux_area : t -> width:int -> inputs:int -> float
(** 0 for fewer than 2 inputs (a wire, not a mux). *)

val mux_data_cap : t -> float
val mux_select_cap : t -> float

val design_area : t -> component_area:float -> float
(** [base_area + routing_factor · component_area]. *)

val pp : Format.formatter -> t -> unit
