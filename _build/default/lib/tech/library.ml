(* Technology library: per-cell area and switched-capacitance models.

   This replaces the paper's COMPASS 0.8 micron VSC450 library.  The
   power methodology is identical to the paper's tool: count transitions
   per node, apply P = f_node * C_node * V^2.  All capacitances are in
   picofarads, areas in lambda^2, voltages in volts, frequencies in Hz.

   Area model: a design's area is
       base_area + routing_factor * sum(component areas)
   where the base term stands for the controller, clock tree, pads and
   fixed overhead of a laid-out block, and the routing factor folds in
   wiring and placement overhead that COMPASS layout would add on top of
   raw cell area.

   Capacitance model per component class:
   - storage (register or latch): clock-pin cap (toggled by the clock),
     internal cap (switched on a write, scaled by data activity), and
     output cap (switched when the stored value changes);
   - mux: per-input data cap plus a select-line cap;
   - ALU: internal cap proportional to its area (switched in proportion
     to the fraction of input bits that toggle) plus an output cap.

   Multifunction ALUs: the paper notes COMPASS synthesizes most
   multifunction ALUs poorly, with (+-) the favourable exception.  The
   model mirrors this: function areas add up, a per-extra-function
   penalty applies, and the Add/Sub pair shares its adder core. *)

open Mclock_dfg

type storage_params = {
  area_per_bit : float;
  clock_pin_cap : float; (* pF per bit of storage, per clock transition *)
  internal_cap_per_bit : float; (* pF switched on a write at full activity *)
  output_cap_per_bit : float; (* pF per output bit transition *)
}

type mux_params = {
  area_per_input_bit : float;
  data_cap_per_bit : float; (* pF per toggling input bit *)
  select_cap : float; (* pF per select-line transition *)
}

type fu_params = {
  area_per_bit : float;
  cap_per_area : float; (* pF of internal switched cap per lambda^2, at full input activity *)
  output_cap_per_bit : float;
}

type t = {
  name : string;
  supply_voltage : float;
  clock_frequency : float; (* the system clock f, Hz *)
  register : storage_params;
  latch : storage_params;
  mux : mux_params;
  fu_area_per_bit : Op.t -> float;
  fu_cap_per_area : float;
  fu_output_cap_per_bit : float;
  multifunction_penalty : float; (* extra area fraction per additional function *)
  addsub_sharing : float; (* fraction of the Sub area added when paired with Add *)
  control_line_cap : float; (* pF per control-net transition *)
  gating_cell_area : float; (* lambda^2 per gated clock sink *)
  gating_cell_cap : float; (* pF per enable-line transition *)
  isolation_area_per_bit : float; (* operand-isolation logic, lambda^2 per bit *)
  isolation_cap_per_bit : float; (* pF per isolated bit transition *)
  clock_tree_cap_per_sink : float; (* pF per storage element, per clock transition *)
  base_area : float;
  routing_factor : float;
}

let energy_per_transition t cap_pf =
  (* 1/2 C V^2, in picojoules when [cap_pf] is in pF. *)
  0.5 *. cap_pf *. t.supply_voltage *. t.supply_voltage

(* --- ALU sizing ------------------------------------------------------- *)

let alu_area t ~width fset =
  let ops = Op.Set.to_list fset in
  if ops = [] then invalid_arg "Library.alu_area: empty function set";
  let has_add = Op.Set.mem Op.Add fset and has_sub = Op.Set.mem Op.Sub fset in
  let raw =
    Mclock_util.List_ext.sum_by_float
      (fun op ->
        if Op.equal op Op.Sub && has_add && has_sub then
          (* Sub shares the adder core when paired with Add. *)
          t.addsub_sharing *. t.fu_area_per_bit op
        else t.fu_area_per_bit op)
      ops
  in
  let n = List.length ops in
  let penalized_extras =
    (* The favourable (+-) pairing does not pay the multifunction
       penalty; any function beyond that pairing does. *)
    if has_add && has_sub then max 0 (n - 2) else max 0 (n - 1)
  in
  let penalty = 1. +. (t.multifunction_penalty *. float penalized_extras) in
  raw *. penalty *. float width

let alu_internal_cap t ~width fset = alu_area t ~width fset *. t.fu_cap_per_area

let alu_output_cap t ~width = t.fu_output_cap_per_bit *. float width

(* --- Storage ----------------------------------------------------------- *)

type storage_kind = Register | Latch

let storage_params t = function
  | Register -> t.register
  | Latch -> t.latch

let storage_area t kind ~width = (storage_params t kind).area_per_bit *. float width

let storage_clock_cap t kind ~width =
  let p = storage_params t kind in
  (p.clock_pin_cap *. float width) +. t.clock_tree_cap_per_sink

(* Pin capacitance alone: what a clock-gating cell saves.  The tree up
   to the gating cell ([clock_tree_cap_per_sink]) still toggles every
   cycle. *)
let storage_clock_pin_cap t kind ~width =
  (storage_params t kind).clock_pin_cap *. float width

let storage_internal_cap t kind ~width =
  (storage_params t kind).internal_cap_per_bit *. float width

let storage_output_cap t kind ~width =
  (storage_params t kind).output_cap_per_bit *. float width

(* --- Mux --------------------------------------------------------------- *)

let mux_area t ~width ~inputs =
  if inputs < 2 then 0.
  else t.mux.area_per_input_bit *. float inputs *. float width

let mux_data_cap t = t.mux.data_cap_per_bit

let mux_select_cap t = t.mux.select_cap

(* --- Design-level area ------------------------------------------------- *)

let design_area t ~component_area = t.base_area +. (t.routing_factor *. component_area)

let pp ppf t =
  Fmt.pf ppf "technology %s (Vdd=%.2fV, f=%.1fMHz)" t.name t.supply_voltage
    (t.clock_frequency /. 1e6)
