lib/tech/library.mli: Format Mclock_dfg Op
