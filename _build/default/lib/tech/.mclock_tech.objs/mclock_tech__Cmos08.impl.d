lib/tech/cmos08.ml: Library Mclock_dfg Op
