lib/tech/library.ml: Fmt List Mclock_dfg Mclock_util Op
