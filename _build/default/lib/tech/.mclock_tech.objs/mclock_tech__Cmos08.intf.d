lib/tech/cmos08.mli: Library
