(** Default 0.8 µm-scale CMOS technology (V = 4.65 V, 10 MHz system
    clock), calibrated to the paper's power/area bands. *)

val t : Library.t

val with_clock_frequency : float -> Library.t
val with_supply_voltage : float -> Library.t
