(* Default 0.8 micron-scale CMOS technology numbers.

   Calibrated so that 4-bit datapaths of the paper's benchmarks land in
   the same few-mW power band and few-million-lambda^2 area band as
   Tables 1-4 (V = 4.65 V as in the paper; 10 MHz system clock).  The
   absolute values are a plausible early-90s standard-cell scale; only
   the relative ordering between design styles is claimed. *)

open Mclock_dfg

let fu_area_per_bit = function
  | Op.Add -> 2800.
  | Op.Sub -> 2800.
  | Op.Mul -> 14000.
  | Op.Div -> 16000.
  | Op.And -> 650.
  | Op.Or -> 650.
  | Op.Xor -> 950.
  | Op.Not -> 320.
  | Op.Shl -> 1300.
  | Op.Shr -> 1300.
  | Op.Gt -> 1900.
  | Op.Lt -> 1900.
  | Op.Eq -> 1300.

let t : Library.t =
  {
    name = "cmos08";
    supply_voltage = 4.65;
    clock_frequency = 33e6;
    register =
      {
        area_per_bit = 3600.;
        clock_pin_cap = 0.045;
        internal_cap_per_bit = 0.14;
        output_cap_per_bit = 0.09;
      };
    latch =
      (* Level-sensitive latches: roughly 60% of the flip-flop cost. *)
      {
        area_per_bit = 2200.;
        clock_pin_cap = 0.028;
        internal_cap_per_bit = 0.085;
        output_cap_per_bit = 0.09;
      };
    mux =
      {
        area_per_input_bit = 700.;
        data_cap_per_bit = 0.035;
        select_cap = 0.05;
      };
    fu_area_per_bit;
    fu_cap_per_area = 2.2e-4;
    fu_output_cap_per_bit = 0.10;
    multifunction_penalty = 0.28;
    addsub_sharing = 0.35;
    control_line_cap = 0.09;
    gating_cell_area = 900.;
    gating_cell_cap = 0.04;
    isolation_area_per_bit = 260.;
    isolation_cap_per_bit = 0.02;
    clock_tree_cap_per_sink = 0.06;
    base_area = 1_200_000.;
    routing_factor = 6.0;
  }

let with_clock_frequency hz = { t with Library.clock_frequency = hz }

let with_supply_voltage v = { t with Library.supply_voltage = v }
