(* Structural checkers for complete designs.

   Beyond Datapath.validate (wiring sanity), these verify the timing
   disciplines the paper's scheme depends on:

   - partition discipline: a storage element of phase p is only loaded
     at schedule steps belonging to phase p;
   - latch READ/WRITE separation: a level-sensitive latch must never be
     read (transitively feed a storage element being written) in the
     very step it is itself written — the paper merges only variables
     with fully disjoint lifetimes to guarantee this;
   - mux select indices in range, and every select a controller emits
     targets an existing mux;
   - ALU repertoire: the function selected on an ALU at any step is in
     its function set. *)

open Mclock_dfg

type violation = { check : string; message : string }

let violation check fmt =
  Format.kasprintf (fun message -> { check; message }) fmt

(* Transitive combinational fan-in of a source: the set of sequential
   component ids (inputs and storages) that can influence it within one
   step.  When [select] is given, muxes whose routing it resolves
   contribute only their selected input (the read that physically
   matters); unresolved muxes contribute every input, conservatively. *)
let sequential_cone ?select datapath source =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit = function
    | Comp.From_const _ -> ()
    | Comp.From_comp id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          let c = Datapath.comp datapath id in
          match Comp.kind c with
          | Comp.Input _ | Comp.Storage _ -> acc := id :: !acc
          | Comp.Alu a ->
              visit a.Comp.a_src_a;
              Option.iter visit a.Comp.a_src_b
          | Comp.Mux m -> (
              let resolved =
                match select with None -> None | Some f -> f id
              in
              match resolved with
              | Some idx when idx >= 0 && idx < Array.length m.Comp.m_choices
                ->
                  visit m.Comp.m_choices.(idx)
              | Some _ | None -> Array.iter visit m.Comp.m_choices)
        end
  in
  visit source;
  !acc

let check_partition_discipline design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  let clock = Design.clock design in
  let steps = Mclock_util.List_ext.range 1 (Control.num_steps control) in
  List.concat_map
    (fun step ->
      let phase = Clock.phase_of_step clock step in
      List.filter_map
        (fun id ->
          let c = Datapath.comp datapath id in
          match Comp.kind c with
          | Comp.Storage s when s.Comp.s_phase <> phase ->
              Some
                (violation "partition-discipline"
                   "storage c%d(%s) of phase %d loaded at step %d (phase %d)"
                   id (Comp.name c) s.Comp.s_phase step phase)
          | Comp.Storage _ -> None
          | Comp.Input _ | Comp.Alu _ | Comp.Mux _ ->
              Some
                (violation "partition-discipline"
                   "load target c%d(%s) is not a storage element" id
                   (Comp.name c))
        )
        (Control.loads control ~step))
    steps

let check_latch_read_write design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  let is_latch id =
    match Comp.kind (Datapath.comp datapath id) with
    | Comp.Storage s -> s.Comp.s_kind = Mclock_tech.Library.Latch
    | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> false
  in
  let steps = Mclock_util.List_ext.range 1 (Control.num_steps control) in
  List.concat_map
    (fun step ->
      let loads = Control.loads control ~step in
      let select mux = Control.select control ~step ~mux in
      List.concat_map
        (fun target ->
          match Comp.kind (Datapath.comp datapath target) with
          | Comp.Storage s ->
              let readers = sequential_cone ~select datapath s.Comp.s_input in
              List.filter_map
                (fun reader ->
                  if reader <> target && is_latch reader && List.mem reader loads
                  then
                    Some
                      (violation "latch-read-write"
                         "latch c%d is read (feeding c%d) and written in the \
                          same step %d"
                         reader target step)
                  else None)
                readers
          | Comp.Input _ | Comp.Alu _ | Comp.Mux _ -> [])
        loads)
    steps

let check_controls design =
  let datapath = Design.datapath design in
  let control = Design.control design in
  let steps = Mclock_util.List_ext.range 1 (Control.num_steps control) in
  List.concat_map
    (fun step ->
      let word = Control.word control ~step in
      let select_violations =
        List.filter_map
          (fun (mux_id, idx) ->
            match Comp.kind (Datapath.comp datapath mux_id) with
            | Comp.Mux m ->
                if idx < 0 || idx >= Array.length m.Comp.m_choices then
                  Some
                    (violation "mux-select"
                       "step %d selects input %d of mux c%d (has %d)" step idx
                       mux_id
                       (Array.length m.Comp.m_choices))
                else None
            | Comp.Input _ | Comp.Storage _ | Comp.Alu _ ->
                Some
                  (violation "mux-select" "step %d selects on non-mux c%d" step
                     mux_id))
          word.Control.selects
      in
      let alu_violations =
        List.filter_map
          (fun (alu_id, op) ->
            match Comp.kind (Datapath.comp datapath alu_id) with
            | Comp.Alu a ->
                if not (Op.Set.mem op a.Comp.a_fset) then
                  Some
                    (violation "alu-function"
                       "step %d runs %s on ALU c%d with repertoire %s" step
                       (Op.name op) alu_id
                       (Op.Set.to_string a.Comp.a_fset))
                else None
            | Comp.Input _ | Comp.Storage _ | Comp.Mux _ ->
                Some
                  (violation "alu-function" "step %d selects op on non-ALU c%d"
                     step alu_id))
          word.Control.alu_ops
      in
      select_violations @ alu_violations)
    steps

let check_clock design =
  if Clock.non_overlapping (Design.clock design) then []
  else [ violation "clock" "phase clocks overlap" ]

let all design =
  check_clock design @ check_partition_discipline design
  @ check_latch_read_write design @ check_controls design

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.check v.message
