(* The controller: one control word per schedule step, cycled forever.

   A word lists the mux selections, storage load-enables and ALU
   function selections for its step.  Anything unspecified *holds* its
   previous value — the paper's latched-control discipline (§3.2) is
   obtained by simply not re-specifying a partition's controls outside
   its own phase, and the microcode generator (mclock_core.Microcode)
   decides that policy.  The simulator charges control-line power per
   actual change, so held lines are free, as in the paper. *)

open Mclock_dfg

type word = {
  selects : (int * int) list; (* mux component id -> chosen input index *)
  loads : int list; (* storage component ids written this step *)
  alu_ops : (int * Op.t) list; (* alu component id -> function this step *)
}

let empty_word = { selects = []; loads = []; alu_ops = [] }

type t = { words : word array }

let create words =
  if words = [] then invalid_arg "Control.create: no control words";
  { words = Array.of_list words }

let num_steps t = Array.length t.words

let word t ~step =
  if step < 1 then invalid_arg "Control.word: step must be >= 1";
  t.words.((step - 1) mod Array.length t.words)

let select t ~step ~mux = List.assoc_opt mux (word t ~step).selects

let loads t ~step = (word t ~step).loads

let alu_op t ~step ~alu = List.assoc_opt alu (word t ~step).alu_ops

(* Number of control values that change between consecutive steps — the
   basis for control-network power. *)
let changes_between a b =
  let count_assoc la lb =
    List.fold_left
      (fun acc (k, v) ->
        match List.assoc_opt k la with
        | Some v' when v' = v -> acc
        | Some _ | None -> acc + 1)
      0 lb
  in
  let load_changes =
    let in_a = List.filter (fun x -> not (List.mem x b.loads)) a.loads in
    let in_b = List.filter (fun x -> not (List.mem x a.loads)) b.loads in
    List.length in_a + List.length in_b
  in
  count_assoc a.selects b.selects
  + count_assoc
      (List.map (fun (k, op) -> (k, Op.name op)) a.alu_ops)
      (List.map (fun (k, op) -> (k, Op.name op)) b.alu_ops)
  + load_changes

let pp_word ppf w =
  Fmt.pf ppf "sel={%a} load={%a} op={%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (m, i) -> Fmt.pf ppf "c%d:%d" m i))
    w.selects
    (Fmt.list ~sep:Fmt.comma (fun ppf i -> Fmt.pf ppf "c%d" i))
    w.loads
    (Fmt.list ~sep:Fmt.comma (fun ppf (a, op) -> Fmt.pf ppf "c%d:%s" a (Op.name op)))
    w.alu_ops

let pp ppf t =
  Fmt.pf ppf "@[<v>controller (%d steps)@,%a@]" (num_steps t)
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, w) -> Fmt.pf ppf "T%d: %a" (i + 1) pp_word w))
    (Array.to_list (Array.mapi (fun i w -> (i, w)) t.words))
