(** Multi-phase clocking scheme (paper Fig. 2): [n] non-overlapping
    clocks of frequency [f/n] derived from a system clock of frequency
    [f]; global cycle [c] belongs to phase [((c-1) mod n) + 1]. *)

type t

val create : phases:int -> frequency:float -> t
(** Raises [Invalid_argument] for [phases < 1] or a non-positive
    frequency. *)

val single : frequency:float -> t

val phases : t -> int
val frequency : t -> float

val phase_frequency : t -> float
(** [frequency / phases] — the rate seen by each partition. *)

val period : t -> float

val phase_of_cycle : t -> int -> int
(** 1-based phase of a 1-based global cycle. *)

val phase_of_step : t -> int -> int
(** Alias of {!phase_of_cycle} for schedule steps: the partition a step
    belongs to. *)

val waveform : t -> phase:int -> cycles:int -> bool list
(** Half-cycle-sampled level sequence of one phase clock. *)

val non_overlapping : t -> bool
(** Always true by construction; exposed so tests and the Fig. 2 bench
    can verify the defining property. *)

val render_waveforms : t -> cycles:int -> string
(** ASCII waveforms of the base clock and each phase (Fig. 2). *)

val pp : Format.formatter -> t -> unit
