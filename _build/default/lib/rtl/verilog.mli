(** Structural Verilog-2001 emitter (sibling of {!Vhdl}). *)

val keyword_safe : string -> string
(** Mangle an arbitrary name into a legal Verilog identifier. *)

val emit : Design.t -> string
(** The whole design as one module. *)
