(** The controller: one control word per schedule step, cycled forever.
    Unspecified controls hold their previous value, which is how the
    paper's latched-control discipline is expressed. *)

open Mclock_dfg

type word = {
  selects : (int * int) list;
  loads : int list;
  alu_ops : (int * Op.t) list;
}

val empty_word : word

type t

val create : word list -> t
(** One word per step, step 1 first; raises [Invalid_argument] on []. *)

val num_steps : t -> int

val word : t -> step:int -> word
(** Steps beyond the schedule wrap around (cyclic execution). *)

val select : t -> step:int -> mux:int -> int option
val loads : t -> step:int -> int list
val alu_op : t -> step:int -> alu:int -> Op.t option

val changes_between : word -> word -> int
(** Number of control values that differ — the per-transition unit of
    control-network power. *)

val pp_word : Format.formatter -> word -> unit
val pp : Format.formatter -> t -> unit
