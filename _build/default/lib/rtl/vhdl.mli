(** Structural VHDL-87 emitter for complete designs (the hand-off
    artifact the paper fed to the COMPASS synthesizer). *)

val keyword_safe : string -> string
(** Mangle an arbitrary name into a legal VHDL identifier. *)

val emit : Design.t -> string
(** The whole design as one entity/architecture pair. *)
