(* Graphviz DOT emitter for datapaths: components as shaped nodes
   (storage = box, ALU = trapezium-ish, mux = triangle-ish, input =
   plaintext), grouped into clusters by clock partition so multi-clock
   DPM structure is visible at a glance. *)

open Mclock_dfg

let emit datapath =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "digraph datapath {\n  rankdir=TB;\n";
  let decl c =
    let shape, label =
      match Comp.kind c with
      | Comp.Input v -> ("plaintext", Var.name v)
      | Comp.Storage s ->
          let k =
            match s.Comp.s_kind with
            | Mclock_tech.Library.Register -> "REG"
            | Mclock_tech.Library.Latch -> "LAT"
          in
          ( "box",
            Printf.sprintf "%s %s\\n{%s}" k (Comp.name c)
              (String.concat "," (List.map Var.name s.Comp.s_holds)) )
      | Comp.Alu a ->
          ("invtrapezium", Printf.sprintf "ALU %s" (Op.Set.to_string a.Comp.a_fset))
      | Comp.Mux m ->
          ("invtriangle", Printf.sprintf "MUX%d" (Array.length m.Comp.m_choices))
    in
    Printf.sprintf "    c%d [shape=%s, label=\"%s\"];\n" (Comp.id c) shape label
  in
  let groups =
    Mclock_util.List_ext.group_by ~key:Comp.phase ~compare_key:Int.compare
      (Datapath.comps datapath)
  in
  List.iter
    (fun (phase, members) ->
      addf "  subgraph cluster_phase%d {\n    label=\"DPM %d (CLK%d)\";\n"
        phase phase phase;
      List.iter (fun c -> addf "%s" (decl c)) members;
      addf "  }\n")
    groups;
  let edge dst = function
    | Comp.From_const k -> addf "  const%d_%d [shape=plaintext, label=\"%d\"];\n  const%d_%d -> c%d;\n" dst k k dst k dst
    | Comp.From_comp src -> addf "  c%d -> c%d;\n" src dst
  in
  List.iter
    (fun c ->
      match Comp.kind c with
      | Comp.Input _ -> ()
      | Comp.Storage s -> edge (Comp.id c) s.Comp.s_input
      | Comp.Alu a ->
          edge (Comp.id c) a.Comp.a_src_a;
          Option.iter (edge (Comp.id c)) a.Comp.a_src_b
      | Comp.Mux m -> Array.iter (edge (Comp.id c)) m.Comp.m_choices)
    (Datapath.comps datapath);
  List.iter
    (fun (v, src) ->
      addf "  out_%s [shape=plaintext, label=\"%s\"];\n" (Var.name v) (Var.name v);
      match src with
      | Comp.From_comp id -> addf "  c%d -> out_%s;\n" id (Var.name v)
      | Comp.From_const k -> addf "  const_out_%d -> out_%s;\n" k (Var.name v))
    (Datapath.outputs datapath);
  addf "}\n";
  Buffer.contents buf
