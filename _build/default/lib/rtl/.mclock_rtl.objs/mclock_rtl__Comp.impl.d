lib/rtl/comp.ml: Array Fmt List Mclock_dfg Mclock_tech Op Option Var
