lib/rtl/control.ml: Array Fmt List Mclock_dfg Op
