lib/rtl/rtl_dot.mli: Datapath
