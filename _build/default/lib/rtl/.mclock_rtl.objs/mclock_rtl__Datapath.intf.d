lib/rtl/datapath.mli: Comp Format Mclock_dfg Mclock_tech Op Var
