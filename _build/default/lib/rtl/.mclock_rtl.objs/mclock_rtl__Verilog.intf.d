lib/rtl/verilog.mli: Design
