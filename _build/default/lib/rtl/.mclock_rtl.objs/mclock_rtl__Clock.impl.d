lib/rtl/clock.ml: Array Buffer Fmt List Mclock_util Printf
