lib/rtl/vhdl.ml: Array Buffer Clock Comp Control Datapath Design List Mclock_dfg Mclock_tech Mclock_util Op Printf String Var
