lib/rtl/vhdl.mli: Design
