lib/rtl/comp.mli: Format Mclock_dfg Mclock_tech Op Var
