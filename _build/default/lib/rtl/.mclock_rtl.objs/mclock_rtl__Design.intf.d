lib/rtl/design.mli: Clock Comp Control Datapath Format Mclock_dfg Mclock_tech Var
