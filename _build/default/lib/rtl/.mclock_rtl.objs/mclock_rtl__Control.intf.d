lib/rtl/control.mli: Format Mclock_dfg Op
