lib/rtl/check.mli: Comp Datapath Design Format
