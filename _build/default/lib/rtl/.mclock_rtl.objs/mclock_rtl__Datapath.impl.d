lib/rtl/datapath.ml: Array Comp Fmt Format Fun Hashtbl Int List Map Mclock_dfg Mclock_util Op Option Printf String Var
