lib/rtl/rtl_dot.ml: Array Buffer Comp Datapath Int List Mclock_dfg Mclock_tech Mclock_util Op Option Printf String Var
