lib/rtl/design.ml: Clock Comp Control Datapath Fmt List Mclock_dfg Mclock_tech Printf Var
