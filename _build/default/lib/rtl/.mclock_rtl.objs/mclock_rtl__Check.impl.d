lib/rtl/check.ml: Array Clock Comp Control Datapath Design Fmt Format Hashtbl List Mclock_dfg Mclock_tech Mclock_util Op Option
