lib/rtl/clock.mli: Format
