(* Multi-phase clocking scheme.

   A scheme divides the system clock of frequency [f] into [n]
   non-overlapping phase clocks CLK_1 .. CLK_n, each of frequency f/n
   (paper Fig. 2).  Global cycle c (1-based) belongs to phase
   ((c-1) mod n) + 1: CLK_k pulses during the cycles of its phase and is
   low elsewhere, so at most one phase clock is high at any time while
   the *effective* frequency of the whole datapath remains f. *)

type t = { phases : int; frequency : float }

let create ~phases ~frequency =
  if phases < 1 then invalid_arg "Clock.create: phases must be >= 1";
  if frequency <= 0. then invalid_arg "Clock.create: frequency must be > 0";
  { phases; frequency }

let single ~frequency = create ~phases:1 ~frequency

let phases t = t.phases
let frequency t = t.frequency

let phase_frequency t = t.frequency /. float t.phases

let period t = 1. /. t.frequency

let phase_of_cycle t cycle =
  if cycle < 1 then invalid_arg "Clock.phase_of_cycle: cycle must be >= 1";
  ((cycle - 1) mod t.phases) + 1

let phase_of_step t step = phase_of_cycle t step

(* Waveform of one phase clock over [cycles] system cycles, sampled at
   half-cycle resolution: element [2*(c-1)] is the level in the first
   half of cycle c (pulse high when the cycle belongs to the phase),
   element [2*(c-1)+1] the second half (always low: return-to-zero
   pulses guarantee non-overlap with margin). *)
let waveform t ~phase ~cycles =
  if phase < 1 || phase > t.phases then invalid_arg "Clock.waveform: bad phase";
  List.concat_map
    (fun c ->
      if phase_of_cycle t c = phase then [ true; false ] else [ false; false ])
    (Mclock_util.List_ext.range 1 cycles)

(* True iff no two phase clocks are simultaneously high over a full
   macro-cycle — the defining property of the scheme. *)
let non_overlapping t =
  let cycles = t.phases in
  let waves =
    List.map
      (fun k -> Array.of_list (waveform t ~phase:k ~cycles))
      (Mclock_util.List_ext.range 1 t.phases)
  in
  match waves with
  | [] -> true
  | first :: _ ->
      let len = Array.length first in
      List.for_all
        (fun i ->
          let high = List.length (List.filter (fun w -> w.(i)) waves) in
          high <= 1)
        (Mclock_util.List_ext.range 0 (len - 1))

let render_waveforms t ~cycles =
  let buf = Buffer.create 256 in
  let line label wave =
    Buffer.add_string buf (Printf.sprintf "%-6s " label);
    List.iter (fun high -> Buffer.add_char buf (if high then '#' else '_')) wave;
    Buffer.add_char buf '\n'
  in
  let base = List.concat_map (fun _ -> [ true; false ]) (Mclock_util.List_ext.range 1 cycles) in
  line "CLK" base;
  List.iter
    (fun k -> line (Printf.sprintf "CLK%d" k) (waveform t ~phase:k ~cycles))
    (Mclock_util.List_ext.range 1 t.phases);
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "%d-phase clock @ %.2f MHz (phase rate %.2f MHz)" t.phases
    (t.frequency /. 1e6)
    (phase_frequency t /. 1e6)
