(** Graphviz DOT emitter for datapaths, clustered by clock partition. *)

val emit : Datapath.t -> string
