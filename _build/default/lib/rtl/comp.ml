(* Datapath components.

   Components follow the paper's Functional Block model (Fig. 3): muxes
   feed ALU ports, ALUs feed memory elements (registers or latches),
   memory elements feed buses back to mux inputs.  Every component has
   one output; wiring refers to components by id through [source].

   [phase] is the clock partition a component belongs to (1-based;
   always 1 in single-clock designs).  For storage it selects the phase
   clock driving the element; for ALUs and muxes it records the
   partition for reporting and for latched-control semantics. *)

open Mclock_dfg

type source = From_comp of int | From_const of int

type storage = {
  s_kind : Mclock_tech.Library.storage_kind;
  s_phase : int;
  s_input : source;
  s_gated : bool; (* clock gated: clock pin toggles only on loads *)
  s_holds : Var.t list; (* behavioural variables merged into this element *)
}

type alu = {
  a_fset : Op.Set.t;
  a_phase : int;
  a_src_a : source;
  a_src_b : source option; (* None for an ALU used only by unary ops *)
  a_isolated : bool; (* operand isolation when idle *)
  a_ops : int list; (* behavioural node ids bound to this ALU *)
}

type mux = {
  m_phase : int;
  m_choices : source array; (* at least 2 *)
}

type kind =
  | Input of Var.t
  | Storage of storage
  | Alu of alu
  | Mux of mux

type t = { id : int; name : string; kind : kind }

let id t = t.id
let name t = t.name
let kind t = t.kind

let phase t =
  match t.kind with
  | Input _ -> 1
  | Storage s -> s.s_phase
  | Alu a -> a.a_phase
  | Mux m -> m.m_phase

(* Upstream component ids of a component (constants excluded). *)
let source_comp = function From_comp id -> Some id | From_const _ -> None

let fanin t =
  match t.kind with
  | Input _ -> []
  | Storage s -> Option.to_list (source_comp s.s_input)
  | Alu a ->
      Option.to_list (source_comp a.a_src_a)
      @ (match a.a_src_b with
        | None -> []
        | Some src -> Option.to_list (source_comp src))
  | Mux m -> List.filter_map source_comp (Array.to_list m.m_choices)

let is_combinational t =
  match t.kind with Alu _ | Mux _ -> true | Input _ | Storage _ -> false

let pp_source ppf = function
  | From_comp id -> Fmt.pf ppf "c%d" id
  | From_const c -> Fmt.pf ppf "#%d" c

let pp ppf t =
  match t.kind with
  | Input v -> Fmt.pf ppf "c%d %s: input %a" t.id t.name Var.pp v
  | Storage s ->
      Fmt.pf ppf "c%d %s: %s[phase %d%s] <- %a holds {%a}" t.id t.name
        (match s.s_kind with
        | Mclock_tech.Library.Register -> "reg"
        | Mclock_tech.Library.Latch -> "latch")
        s.s_phase
        (if s.s_gated then ", gated" else "")
        pp_source s.s_input
        (Fmt.list ~sep:Fmt.comma Var.pp)
        s.s_holds
  | Alu a ->
      Fmt.pf ppf "c%d %s: alu %s [phase %d] a=%a b=%a" t.id t.name
        (Op.Set.to_string a.a_fset) a.a_phase pp_source a.a_src_a
        (Fmt.option ~none:(Fmt.any "-") pp_source)
        a.a_src_b
  | Mux m ->
      Fmt.pf ppf "c%d %s: mux%d [phase %d] (%a)" t.id t.name
        (Array.length m.m_choices) m.m_phase
        Fmt.(array ~sep:comma pp_source)
        m.m_choices
