(** Datapath components (the paper's Functional Block parts, Fig. 3):
    input ports, storage elements, ALUs, and muxes, wired by id. *)

open Mclock_dfg

type source = From_comp of int | From_const of int

type storage = {
  s_kind : Mclock_tech.Library.storage_kind;
  s_phase : int;
  s_input : source;
  s_gated : bool;
  s_holds : Var.t list;
}

type alu = {
  a_fset : Op.Set.t;
  a_phase : int;
  a_src_a : source;
  a_src_b : source option;
  a_isolated : bool;
  a_ops : int list;  (** behavioural node ids bound to this ALU *)
}

type mux = { m_phase : int; m_choices : source array }

type kind =
  | Input of Var.t
  | Storage of storage
  | Alu of alu
  | Mux of mux

type t = { id : int; name : string; kind : kind }

val id : t -> int
val name : t -> string
val kind : t -> kind

val phase : t -> int
(** Clock partition (1 for inputs). *)

val source_comp : source -> int option
val fanin : t -> int list
val is_combinational : t -> bool
val pp_source : Format.formatter -> source -> unit
val pp : Format.formatter -> t -> unit
