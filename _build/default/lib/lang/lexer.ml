(* Hand-written lexer for the behaviour description language.

   '#' starts a comment to end of line; newlines are significant
   (statement separators) and collapse into a single Newline token. *)

exception Error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  is_ident_start c || match c with '0' .. '9' -> true | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let keyword = function
  | "behavior" | "behaviour" -> Some Token.Kw_behavior
  | "input" | "inputs" -> Some Token.Kw_input
  | "output" | "outputs" -> Some Token.Kw_output
  | _ -> None

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { Token.token; line = !line } :: !tokens in
  let last_was_newline () =
    match !tokens with
    | { Token.token = Token.Newline; _ } :: _ -> true
    | [] -> true (* suppress leading newlines *)
    | _ -> false
  in
  let rec go i =
    if i >= n then ()
    else
      let c = text.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          if not (last_was_newline ()) then emit Token.Newline;
          incr line;
          go (i + 1)
      | '#' ->
          let rec skip i = if i < n && text.[i] <> '\n' then skip (i + 1) else i in
          go (skip i)
      | '(' -> emit Token.Lparen; go (i + 1)
      | ')' -> emit Token.Rparen; go (i + 1)
      | ',' -> emit Token.Comma; go (i + 1)
      | '+' -> emit Token.Plus; go (i + 1)
      | '-' -> emit Token.Minus; go (i + 1)
      | '*' -> emit Token.Star; go (i + 1)
      | '/' -> emit Token.Slash; go (i + 1)
      | '&' -> emit Token.Amp; go (i + 1)
      | '|' -> emit Token.Pipe; go (i + 1)
      | '^' -> emit Token.Caret; go (i + 1)
      | '~' -> emit Token.Tilde; go (i + 1)
      | '=' -> emit Token.Eq; go (i + 1)
      | ':' ->
          if i + 1 < n && text.[i + 1] = '=' then begin
            emit Token.Assign;
            go (i + 2)
          end
          else error !line "expected '=' after ':'"
      | '<' ->
          if i + 1 < n && text.[i + 1] = '<' then begin
            emit Token.Shl;
            go (i + 2)
          end
          else begin
            emit Token.Lt;
            go (i + 1)
          end
      | '>' ->
          if i + 1 < n && text.[i + 1] = '>' then begin
            emit Token.Shr;
            go (i + 2)
          end
          else begin
            emit Token.Gt;
            go (i + 1)
          end
      | c when is_digit c ->
          let rec scan j = if j < n && is_digit text.[j] then scan (j + 1) else j in
          let j = scan i in
          emit (Token.Int (int_of_string (String.sub text i (j - i))));
          go j
      | c when is_ident_start c ->
          let rec scan j = if j < n && is_ident_char text.[j] then scan (j + 1) else j in
          let j = scan i in
          let word = String.sub text i (j - i) in
          (match keyword word with
          | Some kw -> emit kw
          | None -> emit (Token.Ident word));
          go j
      | c -> error !line "unexpected character %C" c
  in
  go 0;
  emit Token.Eof;
  List.rev !tokens
