(** Recursive-descent parser for the behaviour description language.

    {v
    behavior diffeq
    input x, y, u, dx, a
    output x1, y1, u1, c
    x1 := x + dx
    y1 := y + u * dx
    u1 := u - (3 * x) * (u * dx) - (3 * y) * dx
    c  := x1 < a
    v} *)

exception Error of { line : int; message : string }

val parse_string : string -> Ast.t
