(* Tokens of the behaviour description language. *)

type t =
  | Ident of string
  | Int of int
  | Kw_behavior
  | Kw_input
  | Kw_output
  | Assign (* := *)
  | Plus
  | Minus
  | Star
  | Slash
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Gt
  | Lt
  | Eq
  | Lparen
  | Rparen
  | Comma
  | Newline
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Kw_behavior -> "'behavior'"
  | Kw_input -> "'input'"
  | Kw_output -> "'output'"
  | Assign -> "':='"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Tilde -> "'~'"
  | Shl -> "'<<'"
  | Shr -> "'>>'"
  | Gt -> "'>'"
  | Lt -> "'<'"
  | Eq -> "'='"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Newline -> "newline"
  | Eof -> "end of input"

type located = { token : t; line : int }
