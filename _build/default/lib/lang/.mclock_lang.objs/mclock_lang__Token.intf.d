lib/lang/token.mli:
