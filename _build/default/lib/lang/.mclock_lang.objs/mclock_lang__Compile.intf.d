lib/lang/compile.mli: Ast Graph Mclock_dfg
