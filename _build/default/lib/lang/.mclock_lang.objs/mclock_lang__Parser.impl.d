lib/lang/parser.ml: Ast Format Lexer List Mclock_dfg Token
