lib/lang/ast.mli: Format Mclock_dfg
