lib/lang/compile.ml: Ast Builder Format List Mclock_dfg Node Op Parser Var
