lib/lang/ast.ml: Fmt Mclock_dfg
