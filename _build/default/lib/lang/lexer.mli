(** Lexer for the behaviour description language. *)

exception Error of { line : int; message : string }

val tokenize : string -> Token.located list
(** Collapses newline runs; a final [Eof] token is always appended. *)
