(** Abstract syntax of the behaviour description language. *)

type expr =
  | Var of string
  | Const of int
  | Unop of Mclock_dfg.Op.t * expr
  | Binop of Mclock_dfg.Op.t * expr * expr

type statement = { target : string; expr : expr; line : int }

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  statements : statement list;
}

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
