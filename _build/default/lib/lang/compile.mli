(** Compilation of behaviour programs to data-flow graphs with common
    subexpression sharing. *)

open Mclock_dfg

exception Error of { line : int; message : string }

val to_graph : Ast.t -> Graph.t
(** Raises {!Error} on undefined variables, double assignment,
    constant-valued named results or unassigned outputs; raises
    {!Graph.Invalid} if the program is otherwise unrealizable. *)

val compile_string : string -> Graph.t
(** Parse + compile; raises {!Parser.Error} or {!Lexer.Error} on
    malformed input too. *)
