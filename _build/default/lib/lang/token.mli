(** Tokens of the behaviour description language. *)

type t =
  | Ident of string
  | Int of int
  | Kw_behavior
  | Kw_input
  | Kw_output
  | Assign
  | Plus
  | Minus
  | Star
  | Slash
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Gt
  | Lt
  | Eq
  | Lparen
  | Rparen
  | Comma
  | Newline
  | Eof

val to_string : t -> string
(** Human-readable form for diagnostics. *)

type located = { token : t; line : int }
