(* Compilation of behaviour programs to data-flow graphs.

   Each assignment's expression tree is flattened into DFG nodes, one
   per operator, introducing fresh temporaries for interior results.
   Common subexpressions are shared (structural hash-consing over
   already-emitted nodes), so 'y := b*x + c' and 'z := b*x - d' emit
   b*x once.  Constant operands pass straight through as node constants
   and constant-only expressions are folded at 4..62-bit width-agnostic
   integer precision (wrapping is applied by the datapath, so folding
   only happens for expressions the hardware computes identically:
   we fold conservatively on addition chains of literals only). *)

open Mclock_dfg

exception Error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

(* A value an expression evaluates to during compilation. *)
type value = V_var of Var.t | V_const of int

let operand_of = function
  | V_var v -> Node.Operand_var v
  | V_const c -> Node.Operand_const c

type env = {
  builder : Builder.t;
  mutable defined : (string * Var.t) list; (* program names in scope *)
  mutable cse : ((Op.t * value list) * Var.t) list;
}

let value_equal a b =
  match (a, b) with
  | V_var u, V_var v -> Var.equal u v
  | V_const x, V_const y -> x = y
  | V_var _, V_const _ | V_const _, V_var _ -> false

let key_equal (op1, args1) (op2, args2) =
  Op.equal op1 op2
  && List.length args1 = List.length args2
  && List.for_all2 value_equal args1 args2

let emit env ?name op args =
  let key = (op, args) in
  match
    (* Named results are always materialized; only anonymous interior
       nodes are shared. *)
    if name = None then
      List.find_opt (fun (k, _) -> key_equal k key) env.cse
    else None
  with
  | Some (_, var) -> V_var var
  | None ->
      let result =
        Builder.add_node env.builder ?result:name op (List.map operand_of args)
      in
      env.cse <- (key, result) :: env.cse;
      V_var result

let rec compile_expr env ~line expr =
  match (expr : Ast.expr) with
  | Ast.Const c -> V_const c
  | Ast.Var name -> (
      match List.assoc_opt name env.defined with
      | Some var -> V_var var
      | None -> error line "undefined variable %s" name)
  | Ast.Unop (op, e) -> (
      match compile_expr env ~line e with
      | V_const c when Op.equal op Op.Not ->
          (* fold ~constant at unbounded precision is unsafe under
             truncation; emit a node instead. *)
          emit env op [ V_const c ]
      | v -> emit env op [ v ])
  | Ast.Binop (op, a, b) -> (
      let va = compile_expr env ~line a in
      let vb = compile_expr env ~line b in
      match (op, va, vb) with
      | Op.Add, V_const x, V_const y -> V_const (x + y)
      | Op.Sub, V_const 0, V_const y -> V_const (-y)
      | _, V_const _, V_const _ | _, V_var _, _ | _, _, V_var _ ->
          emit env op [ va; vb ])

let to_graph program =
  let builder = Builder.create program.Ast.name in
  let env = { builder; defined = []; cse = [] } in
  List.iter
    (fun name ->
      if List.mem_assoc name env.defined then
        error 0 "input %s declared twice" name;
      let var = Builder.input builder name in
      env.defined <- (name, var) :: env.defined)
    program.Ast.inputs;
  List.iter
    (fun stmt ->
      let line = stmt.Ast.line in
      if List.mem_assoc stmt.Ast.target env.defined then
        error line "variable %s assigned twice (single assignment)"
          stmt.Ast.target;
      (* The expression root is emitted under the program name;
         subexpressions become shared anonymous temporaries. *)
      let named =
        match stmt.Ast.expr with
        | Ast.Var source -> (
            (* Alias ('y := x'): reuse the source variable directly. *)
            match List.assoc_opt source env.defined with
            | Some var -> V_var var
            | None -> error line "undefined variable %s" source)
        | Ast.Const c ->
            error line
              "%s is the constant %d; constants cannot be named datapath \
               values"
              stmt.Ast.target c
        | Ast.Unop (op, e) ->
            emit env ~name:stmt.Ast.target op [ compile_expr env ~line e ]
        | Ast.Binop (op, a, b) -> (
            let va = compile_expr env ~line a in
            let vb = compile_expr env ~line b in
            match (op, va, vb) with
            | Op.Add, V_const x, V_const y ->
                error line
                  "%s is the constant %d; constants cannot be named datapath \
                   values"
                  stmt.Ast.target (x + y)
            | _, V_const _, V_const _ | _, V_var _, _ | _, _, V_var _ ->
                emit env ~name:stmt.Ast.target op [ va; vb ])
      in
      match named with
      | V_var var -> env.defined <- (stmt.Ast.target, var) :: env.defined
      | V_const _ -> assert false)
    program.Ast.statements;
  List.iter
    (fun name ->
      match List.assoc_opt name env.defined with
      | Some var -> Builder.output builder var
      | None -> error 0 "output %s is never assigned" name)
    program.Ast.outputs;
  Builder.finish builder

let compile_string text = to_graph (Parser.parse_string text)
