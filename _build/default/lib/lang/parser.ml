(* Recursive-descent parser with precedence climbing.

   Grammar:
     program   := 'behavior' IDENT NL { section } EOF
     section   := 'input' idlist NL | 'output' idlist NL | statement
     statement := IDENT ':=' expr NL
     idlist    := IDENT { [','] IDENT }
     expr      := precedence-climbed binary expression over
                  or, xor, and, comparisons, shifts, add/sub, mul/div
                  (loosest to tightest), unary '~' and '-', with
                  parentheses, identifiers and integers as atoms.

   Unary minus is sugar: -e parses as (0 - e). *)

exception Error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Error { line; message })) fmt

type state = { mutable tokens : Token.located list }

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> { Token.token = Token.Eof; line = 0 }

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let expect st token =
  let t = peek st in
  if t.Token.token = token then advance st
  else
    error t.Token.line "expected %s, found %s" (Token.to_string token)
      (Token.to_string t.Token.token)

let skip_newlines st =
  while (peek st).Token.token = Token.Newline do
    advance st
  done

(* Binary operator precedence; higher binds tighter. *)
let binop_of_token = function
  | Token.Pipe -> Some (Mclock_dfg.Op.Or, 1)
  | Token.Caret -> Some (Mclock_dfg.Op.Xor, 2)
  | Token.Amp -> Some (Mclock_dfg.Op.And, 3)
  | Token.Gt -> Some (Mclock_dfg.Op.Gt, 4)
  | Token.Lt -> Some (Mclock_dfg.Op.Lt, 4)
  | Token.Eq -> Some (Mclock_dfg.Op.Eq, 4)
  | Token.Shl -> Some (Mclock_dfg.Op.Shl, 5)
  | Token.Shr -> Some (Mclock_dfg.Op.Shr, 5)
  | Token.Plus -> Some (Mclock_dfg.Op.Add, 6)
  | Token.Minus -> Some (Mclock_dfg.Op.Sub, 6)
  | Token.Star -> Some (Mclock_dfg.Op.Mul, 7)
  | Token.Slash -> Some (Mclock_dfg.Op.Div, 7)
  | _ -> None

let rec parse_atom st =
  let t = peek st in
  match t.Token.token with
  | Token.Ident name ->
      advance st;
      Ast.Var name
  | Token.Int n ->
      advance st;
      Ast.Const n
  | Token.Lparen ->
      advance st;
      let e = parse_expr st 0 in
      expect st Token.Rparen;
      e
  | Token.Tilde ->
      advance st;
      Ast.Unop (Mclock_dfg.Op.Not, parse_atom st)
  | Token.Minus ->
      advance st;
      Ast.Binop (Mclock_dfg.Op.Sub, Ast.Const 0, parse_atom st)
  | other -> error t.Token.line "expected an expression, found %s" (Token.to_string other)

and parse_expr st min_prec =
  let lhs = parse_atom st in
  let rec loop lhs =
    match binop_of_token (peek st).Token.token with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        (* Left associative: the right side climbs at prec + 1. *)
        let rhs = parse_expr st (prec + 1) in
        loop (Ast.Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

let parse_idlist st =
  let rec go acc =
    match (peek st).Token.token with
    | Token.Ident name ->
        advance st;
        (match (peek st).Token.token with
        | Token.Comma -> advance st
        | _ -> ());
        go (name :: acc)
    | Token.Newline | Token.Eof -> List.rev acc
    | other ->
        error (peek st).Token.line "expected identifier, found %s"
          (Token.to_string other)
  in
  go []

let parse_string text =
  let st = { tokens = Lexer.tokenize text } in
  skip_newlines st;
  expect st Token.Kw_behavior;
  let name =
    match (peek st).Token.token with
    | Token.Ident n ->
        advance st;
        n
    | other -> error (peek st).Token.line "expected behaviour name, found %s" (Token.to_string other)
  in
  let inputs = ref [] and outputs = ref [] and statements = ref [] in
  skip_newlines st;
  let rec sections () =
    match (peek st).Token.token with
    | Token.Eof -> ()
    | Token.Kw_input ->
        advance st;
        inputs := !inputs @ parse_idlist st;
        skip_newlines st;
        sections ()
    | Token.Kw_output ->
        advance st;
        outputs := !outputs @ parse_idlist st;
        skip_newlines st;
        sections ()
    | Token.Ident target ->
        let line = (peek st).Token.line in
        advance st;
        expect st Token.Assign;
        let expr = parse_expr st 0 in
        statements := { Ast.target; expr; line } :: !statements;
        skip_newlines st;
        sections ()
    | other ->
        error (peek st).Token.line
          "expected 'input', 'output' or an assignment, found %s"
          (Token.to_string other)
  in
  sections ();
  {
    Ast.name;
    inputs = !inputs;
    outputs = !outputs;
    statements = List.rev !statements;
  }
