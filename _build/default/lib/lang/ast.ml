(* Abstract syntax of the behaviour description language. *)

type expr =
  | Var of string
  | Const of int
  | Unop of Mclock_dfg.Op.t * expr
  | Binop of Mclock_dfg.Op.t * expr * expr

type statement = { target : string; expr : expr; line : int }

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  statements : statement list;
}

let rec pp_expr ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Fmt.int ppf c
  | Unop (op, e) -> Fmt.pf ppf "%s%a" (Mclock_dfg.Op.symbol op) pp_expr e
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (Mclock_dfg.Op.symbol op) pp_expr b

let pp ppf t =
  Fmt.pf ppf "@[<v>behavior %s@,inputs: %a@,outputs: %a@,%a@]" t.name
    (Fmt.list ~sep:(Fmt.any " ") Fmt.string)
    t.inputs
    (Fmt.list ~sep:(Fmt.any " ") Fmt.string)
    t.outputs
    (Fmt.list ~sep:Fmt.cut (fun ppf s ->
         Fmt.pf ppf "%s := %a" s.target pp_expr s.expr))
    t.statements
