(* Stimulus models for power simulation.

   The paper measures power under long streams of uniform random inputs
   ("a large number of random inputs").  Real DSP datapaths often see
   correlated data whose bit-level activity is much lower, which shifts
   the balance between clock power (data-independent) and combinational
   power (data-dependent).  These models let the benches quantify that
   sensitivity:

   - Uniform: independent uniform samples per computation (the paper);
   - Correlated p: each input bit flips with probability p between
     consecutive computations (p = 0.5 is Uniform in distribution);
   - Ramp k: each input advances by k per computation (slowly varying,
     low-activity data);
   - Constant: inputs never change after the first computation — the
     data-activity floor, isolating clock/control power. *)

open Mclock_dfg
module B = Mclock_util.Bitvec

type model =
  | Uniform
  | Correlated of float
  | Ramp of int
  | Constant

let name = function
  | Uniform -> "uniform"
  | Correlated p -> Printf.sprintf "correlated(p=%.2f)" p
  | Ramp k -> Printf.sprintf "ramp(+%d)" k
  | Constant -> "constant"

let flip_bits rng ~p ~width v =
  let rec go acc bit =
    if bit >= width then acc
    else
      let acc =
        if Mclock_util.Rng.float rng 1.0 < p then acc lxor (1 lsl bit) else acc
      in
      go acc (bit + 1)
  in
  B.create ~width (go (B.to_int v) 0)

let generate model rng ~width ~iterations graph =
  if iterations < 1 then invalid_arg "Stimulus.generate: iterations >= 1";
  (match model with
  | Correlated p when p < 0. || p > 1. ->
      invalid_arg "Stimulus.generate: flip probability out of [0, 1]"
  | Correlated _ | Uniform | Ramp _ | Constant -> ());
  let inputs = Graph.inputs graph in
  let first =
    List.fold_left
      (fun env v -> Var.Map.add v (B.random rng ~width) env)
      Var.Map.empty inputs
  in
  let next env =
    List.fold_left
      (fun acc v ->
        let prev = Var.Map.find v env in
        let fresh =
          match model with
          | Uniform -> B.random rng ~width
          | Correlated p -> flip_bits rng ~p ~width prev
          | Ramp k -> B.add prev (B.create ~width k)
          | Constant -> prev
        in
        Var.Map.add v fresh acc)
      Var.Map.empty inputs
  in
  let rec go acc env k =
    if k >= iterations then List.rev acc
    else
      let env' = next env in
      go (env' :: acc) env' (k + 1)
  in
  go [ first ] first 1
