(** Golden reference interpreter: evaluate a DFG directly on bit-vector
    inputs — the functional-correctness oracle for RTL simulation. *)

open Mclock_dfg

type env = Mclock_util.Bitvec.t Var.Map.t

val eval : width:int -> Graph.t -> env -> env
(** Primary-output values; raises [Invalid_argument] on missing
    inputs. *)

val random_inputs : Mclock_util.Rng.t -> width:int -> Graph.t -> env
