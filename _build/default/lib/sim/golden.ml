(* Golden reference interpreter: evaluate a DFG directly on bit-vector
   inputs.  The RTL simulator's observed outputs must match this for
   every design style — the functional-correctness oracle. *)

open Mclock_dfg
module B = Mclock_util.Bitvec

type env = B.t Var.Map.t

let eval_node ~width env node =
  let operand = function
    | Node.Operand_var v -> (
        match Var.Map.find_opt v env with
        | Some value -> value
        | None ->
            invalid_arg
              (Printf.sprintf "Golden.eval: variable %s unbound" (Var.name v)))
    | Node.Operand_const c -> B.create ~width c
  in
  Op.eval (Node.op node) (List.map operand (Node.operands node))

let eval ~width graph inputs =
  List.iter
    (fun v ->
      if not (Var.Map.mem v inputs) then
        invalid_arg
          (Printf.sprintf "Golden.eval: missing input %s" (Var.name v)))
    (Graph.inputs graph);
  let env =
    List.fold_left
      (fun env node ->
        Var.Map.add (Node.result node) (eval_node ~width env node) env)
      inputs (Graph.nodes graph)
  in
  List.fold_left
    (fun acc v -> Var.Map.add v (Var.Map.find v env) acc)
    Var.Map.empty (Graph.outputs graph)

let random_inputs rng ~width graph =
  List.fold_left
    (fun acc v -> Var.Map.add v (B.random rng ~width) acc)
    Var.Map.empty (Graph.inputs graph)
