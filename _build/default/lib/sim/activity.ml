(* Switched-energy bookkeeping for the simulator.

   Energy is accrued per (component, category) in picojoules; the
   categories separate the physical mechanisms so reports can show
   where a design style wins:
   - Clock: clock pins and clock tree;
   - Storage_write: internal write energy of storage elements;
   - Data: output-net transitions of any component;
   - Alu_internal: combinational switching inside ALUs;
   - Mux_data / Mux_select: mux datapath and select lines;
   - Control: controller output network (loads, function selects);
   - Isolation: operand-isolation cells;
   - Gating: clock-gating cells. *)

type category =
  | Clock
  | Storage_write
  | Data
  | Alu_internal
  | Mux_data
  | Mux_select
  | Control
  | Isolation
  | Gating

let all_categories =
  [ Clock; Storage_write; Data; Alu_internal; Mux_data; Mux_select; Control; Isolation; Gating ]

let category_name = function
  | Clock -> "clock"
  | Storage_write -> "storage-write"
  | Data -> "data"
  | Alu_internal -> "alu-internal"
  | Mux_data -> "mux-data"
  | Mux_select -> "mux-select"
  | Control -> "control"
  | Isolation -> "isolation"
  | Gating -> "gating"

type t = {
  table : (int * category, float) Hashtbl.t; (* (comp id, category) -> pJ *)
  mutable total : float;
}

(* Component id 0 is reserved for design-global costs (the control
   network); real components start at 1. *)
let global_component = 0

let create () = { table = Hashtbl.create 64; total = 0. }

let add t ~comp ~category pj =
  if pj <> 0. then begin
    let key = (comp, category) in
    Hashtbl.replace t.table key
      (pj +. Option.value ~default:0. (Hashtbl.find_opt t.table key));
    t.total <- t.total +. pj
  end

let total t = t.total

let by_category t =
  List.filter_map
    (fun cat ->
      let sum =
        Hashtbl.fold
          (fun (_, c) pj acc -> if c = cat then acc +. pj else acc)
          t.table 0.
      in
      if sum = 0. then None else Some (cat, sum))
    all_categories

let by_component t =
  let sums = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (comp, _) pj ->
      Hashtbl.replace sums comp
        (pj +. Option.value ~default:0. (Hashtbl.find_opt sums comp)))
    t.table;
  Hashtbl.fold (fun comp pj acc -> (comp, pj) :: acc) sums []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let of_component t comp =
  Hashtbl.fold
    (fun (c, _) pj acc -> if c = comp then acc +. pj else acc)
    t.table 0.
