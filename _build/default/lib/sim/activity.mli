(** Switched-energy bookkeeping (pJ) per component and mechanism. *)

type category =
  | Clock
  | Storage_write
  | Data
  | Alu_internal
  | Mux_data
  | Mux_select
  | Control
  | Isolation
  | Gating

val all_categories : category list
val category_name : category -> string

type t

val global_component : int
(** Pseudo component id for design-global costs (control network). *)

val create : unit -> t
val add : t -> comp:int -> category:category -> float -> unit
val total : t -> float
val by_category : t -> (category * float) list
val by_component : t -> (int * float) list
val of_component : t -> int -> float
