(** Minimal VCD (Value Change Dump) writer for waveform inspection. *)

type signal
type t

val create : ?timescale:string -> unit -> t

val register : t -> name:string -> width:int -> signal
(** Must precede the first {!sample}. *)

val sample : t -> time:int -> (signal * Mclock_util.Bitvec.t) list -> unit
(** Emit changes at a time stamp (monotonically increasing). *)

val contents : t -> string
val save : t -> string -> unit
