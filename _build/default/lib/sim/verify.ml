(* Functional verification: the design's simulated outputs must equal
   the golden interpreter's on the same random inputs, computation by
   computation.  Every allocator output is checked this way in the test
   suite and before every benchmark run. *)

open Mclock_dfg
module B = Mclock_util.Bitvec

type mismatch = {
  iteration : int; (* 1-based *)
  var : Var.t;
  expected : B.t;
  actual : B.t option; (* None: output never observed *)
}

type report = {
  iterations : int;
  mismatches : mismatch list;
}

let ok report = report.mismatches = []

let check ~width graph (result : Simulator.result) =
  let mismatches = ref [] in
  List.iteri
    (fun idx (inputs, outputs) ->
      let golden = Golden.eval ~width graph inputs in
      List.iter
        (fun var ->
          let expected = Var.Map.find var golden in
          match Var.Map.find_opt var outputs with
          | Some actual when B.equal actual expected -> ()
          | Some actual ->
              mismatches :=
                { iteration = idx + 1; var; expected; actual = Some actual }
                :: !mismatches
          | None ->
              mismatches :=
                { iteration = idx + 1; var; expected; actual = None }
                :: !mismatches)
        (Graph.outputs graph))
    (List.combine result.Simulator.inputs result.Simulator.outputs);
  { iterations = result.Simulator.iterations; mismatches = List.rev !mismatches }

let run ?(seed = 42) ?(iterations = 25) tech design graph =
  let width = Mclock_rtl.Datapath.width (Mclock_rtl.Design.datapath design) in
  let result = Simulator.run ~seed tech design ~iterations in
  check ~width graph result

let pp_mismatch ppf m =
  Fmt.pf ppf "iteration %d, %a: expected %a, got %a" m.iteration Var.pp m.var
    B.pp m.expected
    (Fmt.option ~none:(Fmt.any "nothing") B.pp)
    m.actual
