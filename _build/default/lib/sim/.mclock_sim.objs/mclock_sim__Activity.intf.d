lib/sim/activity.mli:
