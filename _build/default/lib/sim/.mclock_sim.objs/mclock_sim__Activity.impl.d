lib/sim/activity.ml: Hashtbl Int List Option
