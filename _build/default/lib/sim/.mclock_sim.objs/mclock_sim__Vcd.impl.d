lib/sim/vcd.ml: Buffer Char List Mclock_util Printf String
