lib/sim/verify.mli: Format Graph Mclock_dfg Mclock_rtl Mclock_tech Mclock_util Simulator Var
