lib/sim/vcd.mli: Mclock_util
