lib/sim/verify.ml: Fmt Golden Graph List Mclock_dfg Mclock_rtl Mclock_util Simulator Var
