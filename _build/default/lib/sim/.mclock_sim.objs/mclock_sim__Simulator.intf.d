lib/sim/simulator.mli: Activity Golden Mclock_rtl Mclock_tech Mclock_util Vcd
