lib/sim/golden.ml: Graph List Mclock_dfg Mclock_util Node Op Printf Var
