lib/sim/simulator.ml: Activity Array Clock Comp Control Datapath Design Golden List Mclock_dfg Mclock_rtl Mclock_tech Mclock_util Op Option Printf Var Vcd
