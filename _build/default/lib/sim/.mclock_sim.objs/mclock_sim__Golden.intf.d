lib/sim/golden.mli: Graph Mclock_dfg Mclock_util Var
