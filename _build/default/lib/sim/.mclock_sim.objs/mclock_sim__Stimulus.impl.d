lib/sim/stimulus.ml: Graph List Mclock_dfg Mclock_util Printf Var
