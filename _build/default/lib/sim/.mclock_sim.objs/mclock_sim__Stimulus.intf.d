lib/sim/stimulus.mli: Golden Graph Mclock_dfg Mclock_util
