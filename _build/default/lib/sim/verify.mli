(** Functional verification of designs against the golden DFG
    interpreter, computation by computation. *)

open Mclock_dfg

type mismatch = {
  iteration : int;
  var : Var.t;
  expected : Mclock_util.Bitvec.t;
  actual : Mclock_util.Bitvec.t option;
}

type report = { iterations : int; mismatches : mismatch list }

val ok : report -> bool

val check : width:int -> Graph.t -> Simulator.result -> report
(** Compare an existing simulation result against golden evaluation. *)

val run :
  ?seed:int ->
  ?iterations:int ->
  Mclock_tech.Library.t ->
  Mclock_rtl.Design.t ->
  Graph.t ->
  report
(** Simulate then compare (default 25 computations). *)

val pp_mismatch : Format.formatter -> mismatch -> unit
