(** Stimulus models for power simulation: uniform random (the paper's
    methodology), bit-correlated, slowly-varying ramps, and constant
    inputs (the data-activity floor). *)

open Mclock_dfg

type model =
  | Uniform
  | Correlated of float  (** per-bit flip probability between samples *)
  | Ramp of int
  | Constant

val name : model -> string

val generate :
  model ->
  Mclock_util.Rng.t ->
  width:int ->
  iterations:int ->
  Graph.t ->
  Golden.env list
(** One environment per computation; raises [Invalid_argument] on a
    flip probability outside [0, 1] or non-positive iterations. *)
