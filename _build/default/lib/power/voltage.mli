(** Voltage scaling (alpha-power delay model) and the hardware
    duplication alternative the paper contrasts itself with ([12]). *)

type params = { vt : float; alpha : float }

val default_params : params

val delay_factor : ?params:params -> vdd:float -> float -> float
(** Gate-delay ratio of a reduced supply vs. [vdd]; raises for
    [v <= vt]. *)

val scaled_voltage : ?params:params -> vdd:float -> float -> float
(** The supply at which gates are exactly [slowdown] times slower. *)

type duplication = {
  copies : int;
  voltage : float;
  power_mw : float;
  area : float;
}

val duplicate :
  ?params:params ->
  tech:Mclock_tech.Library.t ->
  baseline_power_mw:float ->
  baseline_area:float ->
  int ->
  duplication
(** [n] copies at [f/n] and the correspondingly reduced voltage,
    derived from a measured single-copy baseline. *)
