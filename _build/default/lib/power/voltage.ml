(* Voltage scaling and the duplication alternative.

   The paper contrasts its synthesis-based scheme with the
   "duplicating hardware" technique (Piguet et al. [12]): run the
   datapath at f/n on n parallel copies, which permits a supply
   reduction to the voltage where gates are exactly n times slower.
   Dynamic power then scales as

       P = n_copies * C * V_n^2 * (f / n) = C * V_n^2 * f

   i.e. the win is purely the quadratic voltage factor, paid for with
   n-fold area duplication.  Gate delay follows the alpha-power model

       delay(V) ∝ V / (V - Vt)^alpha

   with Vt and alpha typical of the 0.8 µm generation.  [scaled_voltage]
   inverts the model numerically to find V_n. *)

type params = { vt : float; alpha : float }

let default_params = { vt = 0.8; alpha = 1.5 }

let delay_factor ?(params = default_params) ~vdd v =
  if v <= params.vt then invalid_arg "Voltage.delay_factor: V <= Vt";
  let d x = x /. ((x -. params.vt) ** params.alpha) in
  d v /. d vdd

(* The supply voltage at which gates are [slowdown] times slower than
   at [vdd]; bisection over (vt, vdd]. *)
let scaled_voltage ?(params = default_params) ~vdd slowdown =
  if slowdown < 1. then invalid_arg "Voltage.scaled_voltage: slowdown >= 1";
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if delay_factor ~params ~vdd mid > slowdown then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
  in
  bisect (params.vt +. 1e-6) vdd 60

(* Power and area of the duplication approach, derived from a measured
   single-copy baseline: n copies at f/n and V_n.  The baseline should
   be the conventional non-gated design (as in [12], no power
   management beyond the scaling). *)
type duplication = {
  copies : int;
  voltage : float;
  power_mw : float;
  area : float;
}

let duplicate ?(params = default_params) ~tech ~baseline_power_mw
    ~baseline_area n =
  if n < 1 then invalid_arg "Voltage.duplicate: n >= 1";
  let vdd = tech.Mclock_tech.Library.supply_voltage in
  let v_n = scaled_voltage ~params ~vdd (float n) in
  (* P = n * C V_n^2 f/n = baseline * (V_n / Vdd)^2.  Area: n copies of
     the datapath components plus per-copy routing; the shared base
     overhead is counted once. *)
  let ratio = v_n /. vdd in
  let base = tech.Mclock_tech.Library.base_area in
  let component_part = baseline_area -. base in
  {
    copies = n;
    voltage = v_n;
    power_mw = baseline_power_mw *. ratio *. ratio;
    area = base +. (float n *. component_part);
  }
