lib/power/report.ml: Area Datapath Design List Mclock_rtl Mclock_sim Mclock_util Printf
