lib/power/voltage.mli: Mclock_tech
