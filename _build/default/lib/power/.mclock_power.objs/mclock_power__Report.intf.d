lib/power/report.mli: Area Mclock_dfg Mclock_rtl Mclock_sim Mclock_tech Mclock_util
