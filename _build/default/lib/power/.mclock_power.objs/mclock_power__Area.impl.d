lib/power/area.ml: Array Comp Datapath Design Mclock_rtl Mclock_tech Mclock_util
