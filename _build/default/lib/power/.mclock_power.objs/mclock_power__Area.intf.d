lib/power/area.mli: Mclock_rtl Mclock_tech
