lib/power/voltage.ml: Mclock_tech
