(* Area estimation (the paper's "Area [lambda^2]" column).

   Component areas come from the technology library; the design-level
   figure adds the base block overhead and routing factor
   (Library.design_area), plus gating cells for gated designs and
   operand-isolation logic for isolated ALUs. *)

open Mclock_rtl
module L = Mclock_tech.Library

type breakdown = {
  storage : float;
  alus : float;
  muxes : float;
  gating : float;
  isolation : float;
  component_total : float;
  design_total : float; (* with base area and routing factor *)
}

let of_design tech design =
  let datapath = Design.datapath design in
  let width = Datapath.width datapath in
  let storage =
    Mclock_util.List_ext.sum_by_float
      (fun (_, s) -> L.storage_area tech s.Comp.s_kind ~width)
      (Datapath.storages datapath)
  in
  let alus =
    Mclock_util.List_ext.sum_by_float
      (fun (_, a) -> L.alu_area tech ~width a.Comp.a_fset)
      (Datapath.alus datapath)
  in
  let muxes =
    Mclock_util.List_ext.sum_by_float
      (fun (_, m) ->
        L.mux_area tech ~width ~inputs:(Array.length m.Comp.m_choices))
      (Datapath.muxes datapath)
  in
  let gating =
    if (Design.style design).Design.clock_gated then
      float (Datapath.memory_cells datapath) *. tech.L.gating_cell_area
    else 0.
  in
  let isolation =
    Mclock_util.List_ext.sum_by_float
      (fun (_, a) ->
        if a.Comp.a_isolated then
          tech.L.isolation_area_per_bit *. float (2 * width)
        else 0.)
      (Datapath.alus datapath)
  in
  let component_total = storage +. alus +. muxes +. gating +. isolation in
  {
    storage;
    alus;
    muxes;
    gating;
    isolation;
    component_total;
    design_total = L.design_area tech ~component_area:component_total;
  }

let total tech design = (of_design tech design).design_total
