(** Area estimation (λ²) from the technology library's cell models. *)

type breakdown = {
  storage : float;
  alus : float;
  muxes : float;
  gating : float;
  isolation : float;
  component_total : float;
  design_total : float;
}

val of_design : Mclock_tech.Library.t -> Mclock_rtl.Design.t -> breakdown
val total : Mclock_tech.Library.t -> Mclock_rtl.Design.t -> float
