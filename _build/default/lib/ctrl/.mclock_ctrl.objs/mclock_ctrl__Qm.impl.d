lib/ctrl/qm.ml: Hashtbl Int List Mclock_util
