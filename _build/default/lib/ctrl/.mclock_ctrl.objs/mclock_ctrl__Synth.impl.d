lib/ctrl/synth.ml: Array Comp Control Datapath Design Encoding Hashtbl List Mclock_dfg Mclock_rtl Mclock_tech Mclock_util Printf Qm
