lib/ctrl/encoding.ml: Array List Mclock_util
