lib/ctrl/encoding.mli:
