lib/ctrl/qm.mli:
