lib/ctrl/synth.mli: Encoding Mclock_rtl Mclock_tech
