(** Controller synthesis estimation: extract a design's control lines,
    minimize them over a state encoding (PLA model) and report area and
    switching power. *)

type line = { line_name : string; on_states : int list }

type report = {
  encoding : Encoding.t;
  states : int;
  code_width : int;
  output_lines : int;
  product_terms : int;
  total_literals : int;
  register_toggles_per_period : int;
  output_toggles_per_period : int;
  area : float;
  energy_per_period_pj : float;
  power_mw : float;
}

val output_lines : Mclock_rtl.Design.t -> line list
(** One line per storage load-enable, mux select bit and ALU function
    bit, with hold semantics resolved to concrete per-state values. *)

val estimate :
  Mclock_tech.Library.t -> Mclock_rtl.Design.t -> Encoding.t -> report

val render : report list -> string
