(** Two-level logic minimization (Quine–McCluskey + greedy cover) for
    sizing the controller decode plane. *)

type cube = { mask : int; value : int }

val cube_covers : cube -> int -> bool
val primes : width:int -> int list -> cube list
val cover : width:int -> int list -> cube list
(** A (possibly non-minimum, greedily chosen) prime cover of the
    on-set. *)

val literals : cube -> int

type cost = { product_terms : int; total_literals : int }

val minimize : width:int -> int list -> cost
(** Exact on-set / off-set split (no don't-cares). *)

val eval_cover : cube list -> int -> bool

val cover_with_dc :
  ?max_free:int -> width:int -> off:(int -> bool) -> int list -> cube list
(** Espresso-style greedy expansion against an off-set predicate;
    everything neither on nor off is a don't-care.  The cover contains
    every on-set minterm and never hits the off-set. *)

val minimize_with_dc :
  ?max_free:int -> width:int -> off:(int -> bool) -> int list -> cost
