(* Two-level logic minimization (Quine–McCluskey with a greedy cover).

   Used to size the controller's decode plane: each control line is a
   single-output boolean function of the state code; its product-term
   count after minimization drives the PLA area/power model.  Input
   spaces here are tiny (state codes of at most ~16 bits, on-sets of at
   most the step count), so the textbook algorithm is plenty.

   A cube is (mask, value): bit i is a literal iff mask bit i is 1, and
   then its required value is the value bit.  Minterms are cubes with
   full mask. *)

type cube = { mask : int; value : int }

let cube_covers cube minterm = minterm land cube.mask = cube.value

(* Try to merge two cubes differing in exactly one literal. *)
let merge a b =
  if a.mask <> b.mask then None
  else
    let diff = a.value lxor b.value in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { mask = a.mask land lnot diff; value = a.value land lnot diff }
    else None

let rec dedup_cubes = function
  | [] -> []
  | c :: rest ->
      c :: dedup_cubes (List.filter (fun d -> d.mask <> c.mask || d.value <> c.value) rest)

(* All prime implicants of the on-set (no don't-cares: the controller's
   unused state codes are treated as off-set, a conservative choice). *)
let primes ~width minterms =
  let full_mask = (1 lsl width) - 1 in
  let start =
    dedup_cubes (List.map (fun m -> { mask = full_mask; value = m land full_mask }) minterms)
  in
  let rec round cubes acc =
    let merged = ref [] and used = Hashtbl.create 16 in
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j then
              match merge a b with
              | Some c ->
                  merged := c :: !merged;
                  Hashtbl.replace used (a.mask, a.value) ();
                  Hashtbl.replace used (b.mask, b.value) ()
              | None -> ())
          cubes)
      cubes;
    let primes_here =
      List.filter (fun c -> not (Hashtbl.mem used (c.mask, c.value))) cubes
    in
    let acc = primes_here @ acc in
    match dedup_cubes !merged with
    | [] -> dedup_cubes acc
    | next -> round next acc
  in
  if minterms = [] then [] else round start []

(* Greedy set cover of the minterms by prime implicants. *)
let cover ~width minterms =
  let ps = primes ~width minterms in
  let remaining = ref (Mclock_util.List_ext.dedup ~compare:Int.compare minterms) in
  let chosen = ref [] in
  while !remaining <> [] do
    let best =
      Mclock_util.List_ext.max_by
        (fun p -> List.length (List.filter (cube_covers p) !remaining))
        ps
    in
    chosen := best :: !chosen;
    remaining := List.filter (fun m -> not (cube_covers best m)) !remaining
  done;
  List.rev !chosen

let literals cube =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 cube.mask

type cost = { product_terms : int; total_literals : int }

let minimize ~width minterms =
  let cubes = cover ~width minterms in
  {
    product_terms = List.length cubes;
    total_literals = Mclock_util.List_ext.sum_by literals cubes;
  }

(* Evaluate a cover (for testing): true iff any chosen cube covers. *)
let eval_cover cubes input = List.exists (fun c -> cube_covers c input) cubes

(* --- Minimization with don't-cares ------------------------------------ *)

(* Does [cube] cover any input where [off] holds?  Enumerates the
   cube's free-bit space, so only called when that space is small. *)
let cube_hits_off ~width ~off cube =
  let free_bits =
    List.filter
      (fun b -> cube.mask land (1 lsl b) = 0)
      (Mclock_util.List_ext.range 0 (width - 1))
  in
  let rec enumerate value = function
    | [] -> off value
    | b :: rest -> enumerate value rest || enumerate (value lor (1 lsl b)) rest
  in
  enumerate cube.value free_bits

(* Espresso-style greedy expansion: starting from each on-set minterm,
   drop literals while the cube stays clear of the off-set (everything
   else is a don't-care).  Free-bit enumeration is capped, which only
   limits how far a cube can expand, never correctness. *)
let expand_cube ~width ~off ~max_free cube =
  let rec try_bits cube = function
    | [] -> cube
    | b :: rest ->
        let candidate =
          { mask = cube.mask land lnot (1 lsl b); value = cube.value land lnot (1 lsl b) }
        in
        let free = width - literals candidate in
        if free <= max_free && not (cube_hits_off ~width ~off candidate) then
          try_bits candidate rest
        else try_bits cube rest
  in
  try_bits cube (Mclock_util.List_ext.range 0 (width - 1))

let cover_with_dc ?(max_free = 16) ~width ~off minterms =
  let full_mask = (1 lsl width) - 1 in
  let minterms = Mclock_util.List_ext.dedup ~compare:Int.compare minterms in
  let expanded =
    List.map
      (fun m ->
        expand_cube ~width ~off ~max_free { mask = full_mask; value = m land full_mask })
      minterms
  in
  (* Greedy cover of the on-set by the expanded cubes. *)
  let remaining = ref minterms and chosen = ref [] in
  let candidates = ref (dedup_cubes expanded) in
  while !remaining <> [] do
    let best =
      Mclock_util.List_ext.max_by
        (fun c -> List.length (List.filter (cube_covers c) !remaining))
        !candidates
    in
    chosen := best :: !chosen;
    remaining := List.filter (fun m -> not (cube_covers best m)) !remaining
  done;
  List.rev !chosen

let minimize_with_dc ?max_free ~width ~off minterms =
  if minterms = [] then { product_terms = 0; total_literals = 0 }
  else
    let cubes = cover_with_dc ?max_free ~width ~off minterms in
    {
      product_terms = List.length cubes;
      total_literals = Mclock_util.List_ext.sum_by literals cubes;
    }
