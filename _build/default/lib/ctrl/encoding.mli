(** Controller state encodings: binary, Gray, one-hot. *)

type t = Binary | Gray | One_hot

val all : t list
val name : t -> string

val bits_needed : int -> int
(** ceil(log2 n), at least 1. *)

val width : t -> states:int -> int
val code : t -> states:int -> int -> int
val codes : t -> states:int -> int list

val toggles_per_period : t -> states:int -> int
(** Total state-register bit toggles over one cyclic period. *)
