(* Controller state encodings.

   The controller is a cyclic FSM stepping T states (one per control
   step).  Its power has two components the encoding controls: the
   state-register switching (Hamming distance between consecutive
   codes) and the decode-plane activity.  Three classic encodings:
   - Binary: ceil(log2 T) bits, arbitrary adjacent distances;
   - Gray: same width, exactly one toggle per transition (the cyclic
     Gray sequence needs an even period; odd periods get binary-reflected
     codes whose wrap distance may exceed 1);
   - One_hot: T bits, exactly two toggles per transition, trivial
     decode. *)

type t = Binary | Gray | One_hot

let all = [ Binary; Gray; One_hot ]

let name = function
  | Binary -> "binary"
  | Gray -> "gray"
  | One_hot -> "one-hot"

let bits_needed n =
  if n < 1 then invalid_arg "Encoding.bits_needed";
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  max 1 (go 0)

let width t ~states =
  if states < 1 then invalid_arg "Encoding.width: states must be >= 1";
  match t with
  | Binary | Gray -> bits_needed states
  | One_hot -> states

(* The code of state [i] (0-based) as an integer over [width] bits. *)
let code t ~states i =
  if i < 0 || i >= states then invalid_arg "Encoding.code: state out of range";
  match t with
  | Binary -> i
  | Gray -> i lxor (i lsr 1)
  | One_hot -> 1 lsl i

let codes t ~states =
  List.map (fun i -> code t ~states i) (Mclock_util.List_ext.range 0 (states - 1))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

(* Total state-register bit toggles over one full period (including the
   wrap from the last state back to the first). *)
let toggles_per_period t ~states =
  let cs = Array.of_list (codes t ~states) in
  let n = Array.length cs in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + popcount (cs.(i) lxor cs.((i + 1) mod n))
  done;
  !total
