(** Calibration of the RTL-level ALU power model against gate-level
    switching on random operand streams. *)

open Mclock_dfg

type measurement = {
  op : Op.t;
  width : int;
  gates : int;
  gate_area : float;
  samples : int;
  mean_input_toggles : float;
  mean_gate_toggles : float;
  mean_switched_cap : float;  (** pF per consecutive operand pair *)
  cap_per_input_toggle : float;
  rtl_model_cap : float;  (** the lump model's charge for the same pair *)
  implied_cap_per_area : float;
      (** [fu_cap_per_area] that would make the lump model exact *)
}

val measure :
  ?samples:int ->
  ?seed:int ->
  Mclock_tech.Library.t ->
  width:int ->
  Op.t ->
  measurement

val measure_all :
  ?samples:int -> ?seed:int -> Mclock_tech.Library.t -> width:int -> measurement list

val render : measurement list -> string
