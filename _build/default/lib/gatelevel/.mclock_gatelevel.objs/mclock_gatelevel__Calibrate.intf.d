lib/gatelevel/calibrate.mli: Mclock_dfg Mclock_tech Op
