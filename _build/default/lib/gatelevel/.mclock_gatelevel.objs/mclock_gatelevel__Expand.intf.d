lib/gatelevel/expand.mli: Circuit Mclock_dfg Mclock_util Op
