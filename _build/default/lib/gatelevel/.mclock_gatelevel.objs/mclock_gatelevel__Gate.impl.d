lib/gatelevel/gate.ml: List Printf
