lib/gatelevel/calibrate.ml: Circuit Expand List Mclock_dfg Mclock_tech Mclock_util Op Printf
