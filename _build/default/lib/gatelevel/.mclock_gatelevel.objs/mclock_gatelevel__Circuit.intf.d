lib/gatelevel/circuit.mli: Gate
