lib/gatelevel/gate.mli:
