lib/gatelevel/expand.ml: Array Circuit Gate List Mclock_dfg Mclock_util Op
