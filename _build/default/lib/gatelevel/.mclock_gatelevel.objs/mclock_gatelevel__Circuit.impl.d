lib/gatelevel/circuit.ml: Array Gate List Mclock_util Printf
