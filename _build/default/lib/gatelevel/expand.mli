(** Macro expansion of behavioural operations into gate networks.

    Circuits have 2·width inputs (operand a LSB-first, then operand b)
    and width outputs, functionally identical to {!Mclock_dfg.Op.eval}
    on wrapped unsigned bit vectors. *)

open Mclock_dfg

val circuit : width:int -> Op.t -> Circuit.t

val eval :
  Circuit.t ->
  width:int ->
  Mclock_util.Bitvec.t ->
  Mclock_util.Bitvec.t ->
  Mclock_util.Bitvec.t
(** Evaluate on two operands (unary ops ignore the second). *)

val input_vector :
  width:int -> Mclock_util.Bitvec.t -> Mclock_util.Bitvec.t -> bool array
(** The circuit's input assignment for an operand pair. *)

val bits_of : width:int -> int -> bool array
val int_of_bits : bool list -> int
