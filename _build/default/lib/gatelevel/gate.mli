(** Primitive gates: kinds, per-cell area/capacitance constants
    (0.8 µm-scale standard cells), and boolean evaluation. *)

type kind = Inv | Buf | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2

val arity : kind -> int
val name : kind -> string

val area : kind -> float
(** λ² per gate. *)

val cap : kind -> float
(** Switched capacitance per output transition, pF. *)

val eval : kind -> bool list -> bool
(** Raises [Invalid_argument] on an arity mismatch. *)
