(* Combinational gate networks.

   Signals are identified by integers: primary inputs first (indices
   0 .. num_inputs-1), then one signal per gate output, appended in
   creation order — which is automatically a topological order because
   a gate can only reference already-created signals.  Constants are
   provided as two dedicated pseudo-inputs managed by the builder. *)

type signal = int

type gate = { kind : Gate.kind; inputs : signal list }

type t = {
  num_inputs : int;
  gates : gate array; (* gate i drives signal num_inputs + i *)
  outputs : signal list;
  zero : signal option; (* pseudo-input forced to 0, if requested *)
  one : signal option;
}

type builder = {
  b_num_inputs : int;
  mutable b_gates : gate list; (* reversed *)
  mutable b_count : int;
  mutable b_outputs : signal list; (* reversed *)
  mutable b_zero : signal option;
  mutable b_one : signal option;
}

let builder ~num_inputs =
  if num_inputs < 0 then invalid_arg "Circuit.builder: negative inputs";
  {
    b_num_inputs = num_inputs;
    b_gates = [];
    b_count = 0;
    b_outputs = [];
    b_zero = None;
    b_one = None;
  }

let input (b : builder) i =
  if i < 0 || i >= b.b_num_inputs then invalid_arg "Circuit.input: out of range";
  i

let gate b kind inputs =
  if List.length inputs <> Gate.arity kind then
    invalid_arg
      (Printf.sprintf "Circuit.gate: %s expects %d inputs" (Gate.name kind)
         (Gate.arity kind));
  let limit = b.b_num_inputs + b.b_count in
  List.iter
    (fun s ->
      if s < 0 || s >= limit then
        invalid_arg "Circuit.gate: input signal not yet defined")
    inputs;
  let id = limit in
  b.b_gates <- { kind; inputs } :: b.b_gates;
  b.b_count <- b.b_count + 1;
  id

(* Constants: [zero] = a AND ~a over input 0 (or over itself if there
   are no inputs — then we synthesize from an Inv chain; circuits with
   no inputs and constants are not needed in practice, so require an
   input). *)
let zero b =
  match b.b_zero with
  | Some s -> s
  | None ->
      if b.b_num_inputs = 0 then invalid_arg "Circuit.zero: needs an input";
      let n = gate b Gate.Inv [ 0 ] in
      let z = gate b Gate.And2 [ 0; n ] in
      b.b_zero <- Some z;
      z

let one b =
  match b.b_one with
  | Some s -> s
  | None ->
      let z = zero b in
      let o = gate b Gate.Inv [ z ] in
      b.b_one <- Some o;
      o

let output b s = b.b_outputs <- s :: b.b_outputs

let finish b =
  {
    num_inputs = b.b_num_inputs;
    gates = Array.of_list (List.rev b.b_gates);
    outputs = List.rev b.b_outputs;
    zero = b.b_zero;
    one = b.b_one;
  }

let num_inputs t = t.num_inputs
let num_gates t = Array.length t.gates
let num_signals t = t.num_inputs + Array.length t.gates
let outputs t = t.outputs

let area t =
  Array.fold_left (fun acc g -> acc +. Gate.area g.kind) 0. t.gates

let gate_census t =
  Array.fold_left
    (fun acc g ->
      Mclock_util.List_ext.assoc_update ~key:(Gate.name g.kind) ~default:0
        (fun n -> n + 1)
        acc)
    [] t.gates

(* Evaluate all signals for an input assignment; returns the full
   signal array (inputs then gate outputs). *)
let eval t inputs =
  if Array.length inputs <> t.num_inputs then
    invalid_arg "Circuit.eval: wrong input count";
  let values = Array.make (num_signals t) false in
  Array.blit inputs 0 values 0 t.num_inputs;
  Array.iteri
    (fun i g ->
      let ins = List.map (fun s -> values.(s)) g.inputs in
      values.(t.num_inputs + i) <- Gate.eval g.kind ins)
    t.gates;
  values

let eval_outputs t inputs =
  let values = eval t inputs in
  List.map (fun s -> values.(s)) t.outputs

(* Transition counting between two consecutive input vectors: evaluates
   both (zero-delay model) and accumulates, per toggled gate output,
   its switched capacitance.  Returns (toggled gate outputs, switched
   capacitance in pF). *)
let transitions t ~before ~after =
  let v0 = eval t before and v1 = eval t after in
  let toggles = ref 0 and cap = ref 0. in
  Array.iteri
    (fun i g ->
      let s = t.num_inputs + i in
      if v0.(s) <> v1.(s) then begin
        incr toggles;
        cap := !cap +. Gate.cap g.kind
      end)
    t.gates;
  (!toggles, !cap)
