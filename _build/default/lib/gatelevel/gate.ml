(* Primitive gates of the gate-level substrate.

   The RTL power model treats an ALU as one lump of switched
   capacitance; this library grounds that abstraction by expanding each
   operation into a real gate network (ripple-carry adders, array
   multipliers, restoring dividers, barrel shifters, comparators) and
   counting actual gate-output transitions.  The per-gate constants are
   typical two-input standard cells at the 0.8 micron scale used by
   Cmos08. *)

type kind = Inv | Buf | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2

let arity = function
  | Inv | Buf -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 -> 2
  | Mux2 -> 3 (* select, a, b *)

let name = function
  | Inv -> "inv"
  | Buf -> "buf"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"

(* Area in lambda^2 per gate. *)
let area = function
  | Inv -> 160.
  | Buf -> 220.
  | And2 | Or2 -> 320.
  | Nand2 | Nor2 -> 260.
  | Xor2 | Xnor2 -> 480.
  | Mux2 -> 520.

(* Switched capacitance per output transition, pF (output net plus the
   internal nodes that toggle with it, averaged). *)
let cap = function
  | Inv -> 0.010
  | Buf -> 0.012
  | And2 | Or2 -> 0.016
  | Nand2 | Nor2 -> 0.014
  | Xor2 | Xnor2 -> 0.024
  | Mux2 -> 0.026

let eval kind inputs =
  match (kind, inputs) with
  | Inv, [ a ] -> not a
  | Buf, [ a ] -> a
  | And2, [ a; b ] -> a && b
  | Or2, [ a; b ] -> a || b
  | Nand2, [ a; b ] -> not (a && b)
  | Nor2, [ a; b ] -> not (a || b)
  | Xor2, [ a; b ] -> a <> b
  | Xnor2, [ a; b ] -> a = b
  | Mux2, [ s; a; b ] -> if s then b else a
  | (Inv | Buf | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2), _ ->
      invalid_arg
        (Printf.sprintf "Gate.eval: %s expects %d inputs, got %d" (name kind)
           (arity kind) (List.length inputs))
