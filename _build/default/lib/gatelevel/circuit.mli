(** Combinational gate networks with a creation-order topology. *)

type signal = int
type gate = { kind : Gate.kind; inputs : signal list }
type t
type builder

val builder : num_inputs:int -> builder

val input : builder -> int -> signal
(** The i-th primary input; raises on out-of-range. *)

val gate : builder -> Gate.kind -> signal list -> signal
(** Create a gate over already-defined signals; returns its output. *)

val zero : builder -> signal
(** A constant-0 signal (synthesized once; needs >= 1 input). *)

val one : builder -> signal

val output : builder -> signal -> unit
val finish : builder -> t

val num_inputs : t -> int
val num_gates : t -> int
val num_signals : t -> int
val outputs : t -> signal list

val area : t -> float
(** Sum of gate areas, λ². *)

val gate_census : t -> (string * int) list

val eval : t -> bool array -> bool array
(** All signal values (inputs then gate outputs, creation order). *)

val eval_outputs : t -> bool array -> bool list

val transitions : t -> before:bool array -> after:bool array -> int * float
(** Zero-delay toggles between two input vectors: (number of toggled
    gate outputs, switched capacitance in pF). *)
