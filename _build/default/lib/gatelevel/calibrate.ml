(* Calibration of the RTL-level ALU power model against gate-level
   switching.

   The RTL simulator charges an ALU
       E = 1/2 * V^2 * C_int * h / (2*width)
   per evaluation, where h is the number of toggled operand bits and
   C_int = alu_area * fu_cap_per_area.  This module measures the ground
   truth: expand the operation to gates, drive it with a random operand
   stream, count actual switched capacitance per toggled input bit, and
   report both the measured pF-per-input-toggle and the cap-per-area
   constant that would make the RTL lump model match the gate-level
   average exactly.

   Interpreting the comparison: zero-delay transition counting is a
   *lower bound* on real switching — it excludes glitching (severe in
   array multipliers and ripple structures, typically 2-4x), wire
   capacitance beyond the gate output, and short-circuit current.  The
   RTL lump constant (Cmos08.fu_cap_per_area) deliberately folds those
   in, so model/truth ratios of roughly 4-15x are the expected shape;
   what matters for design-style comparisons is that the ratios stay
   within a small band across operations, which the test suite pins. *)

open Mclock_dfg
module B = Mclock_util.Bitvec

type measurement = {
  op : Op.t;
  width : int;
  gates : int;
  gate_area : float; (* lambda^2, raw gate area *)
  samples : int;
  mean_input_toggles : float; (* toggled operand bits per vector pair *)
  mean_gate_toggles : float; (* toggled gate outputs per vector pair *)
  mean_switched_cap : float; (* pF per vector pair *)
  cap_per_input_toggle : float; (* pF per toggled operand bit *)
  rtl_model_cap : float; (* what the RTL lump model charges per pair *)
  implied_cap_per_area : float; (* fu_cap_per_area matching the truth *)
}

let measure ?(samples = 2000) ?(seed = 7) tech ~width op =
  if samples < 2 then invalid_arg "Calibrate.measure: need >= 2 samples";
  let rng = Mclock_util.Rng.create seed in
  let circuit = Expand.circuit ~width op in
  let random_pair () = (B.random rng ~width, B.random rng ~width) in
  let prev = ref (random_pair ()) in
  let total_in = ref 0 and total_toggles = ref 0 and total_cap = ref 0. in
  for _ = 2 to samples do
    let next = random_pair () in
    let a0, b0 = !prev and a1, b1 = next in
    let before = Expand.input_vector ~width a0 b0 in
    let after = Expand.input_vector ~width a1 b1 in
    let toggles, cap = Circuit.transitions circuit ~before ~after in
    total_in := !total_in + B.hamming a0 a1 + B.hamming b0 b1;
    total_toggles := !total_toggles + toggles;
    total_cap := !total_cap +. cap;
    prev := next
  done;
  let pairs = float (samples - 1) in
  let mean_input_toggles = float !total_in /. pairs in
  let mean_switched_cap = !total_cap /. pairs in
  let gate_area = Circuit.area circuit in
  let fset = Op.Set.singleton op in
  let rtl_area = Mclock_tech.Library.alu_area tech ~width fset in
  let rtl_cap_full = Mclock_tech.Library.alu_internal_cap tech ~width fset in
  let frac = mean_input_toggles /. float (2 * width) in
  {
    op;
    width;
    gates = Circuit.num_gates circuit;
    gate_area;
    samples;
    mean_input_toggles;
    mean_gate_toggles = float !total_toggles /. pairs;
    mean_switched_cap;
    cap_per_input_toggle =
      (if !total_in = 0 then 0. else !total_cap /. float !total_in);
    rtl_model_cap = rtl_cap_full *. frac;
    (* cap/area constant that equates the lump model with the measured
       mean: C_meas = (area * k) * frac. *)
    implied_cap_per_area =
      (if frac = 0. then 0. else mean_switched_cap /. (rtl_area *. frac));
  }

let measure_all ?samples ?seed tech ~width =
  List.map (fun op -> measure ?samples ?seed tech ~width op) Op.all

let render measurements =
  let table =
    Mclock_util.Table.create
      ~title:"gate-level calibration of the RTL ALU power model"
      ~header:
        [
          "op"; "gates"; "gate area"; "pF/pair (gates)"; "pF/pair (RTL model)";
          "model/truth"; "implied cap/area";
        ]
      ~aligns:
        Mclock_util.Table.[ Left; Right; Right; Right; Right; Right; Right ]
      ()
  in
  List.iter
    (fun m ->
      Mclock_util.Table.add_row table
        [
          Op.name m.op;
          string_of_int m.gates;
          Printf.sprintf "%.0f" m.gate_area;
          Printf.sprintf "%.4f" m.mean_switched_cap;
          Printf.sprintf "%.4f" m.rtl_model_cap;
          Printf.sprintf "%.2f"
            (if m.mean_switched_cap = 0. then 0.
             else m.rtl_model_cap /. m.mean_switched_cap);
          Printf.sprintf "%.2e" m.implied_cap_per_area;
        ])
    measurements;
  Mclock_util.Table.render table
