(* 8-tap FIR filter benchmark (beyond the paper's four).

   y = sum of c_i * x_i over a balanced adder tree: 8 multiplications,
   7 additions, short critical path (1 mul + 3 add levels) — the
   opposite workload shape from the serial band-pass.  Scheduled on
   demand under 2 adders / 2 multipliers. *)

let t : Workload.t =
  {
    Workload.name = "fir8";
    description = "8-tap FIR filter (balanced adder tree)";
    constraints = [ (Mclock_dfg.Op.Add, 2); (Mclock_dfg.Op.Mul, 2) ];
    source =
      {|
dfg fir8
inputs x0 x1 x2 x3 x4 x5 x6 x7 c0 c1 c2 c3 c4 c5 c6 c7
outputs y
m0 = x0 * c0
m1 = x1 * c1
m2 = x2 * c2
m3 = x3 * c3
m4 = x4 * c4
m5 = x5 * c5
m6 = x6 * c6
m7 = x7 * c7
a0 = m0 + m1
a1 = m2 + m3
a2 = m4 + m5
a3 = m6 + m7
b0 = a0 + a1
b1 = a2 + a3
y = b0 + b1
|};
  }
