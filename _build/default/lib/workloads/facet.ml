(* FACET benchmark (Tseng & Siewiorek, DAC 1983) — Table 1.

   Reconstruction: the published FACET example mixes one occurrence
   each of -, *, /, &, | with several additions over four control
   steps; this version reproduces that operation census (3 add, 1 sub,
   1 mul, 1 div, 1 and, 1 or) and schedule length, which is what the
   paper's Table 1 depends on (its conventional allocation uses mul+add,
   and+add, sub and div ALUs). *)

let t : Workload.t =
  {
    Workload.name = "facet";
    description = "FACET example [Tseng/Siewiorek 83]: 8 ops, 4 steps";
    constraints = [];
    source =
      {|
dfg facet
inputs v1 v2 v4 v6 v10 v12
outputs v14 v15
n1: v3 = v1 + v2 @ 1
n2: v7 = v6 * v10 @ 1
n3: v5 = v3 - v4 @ 2
n4: v8 = v3 + v7 @ 2
n5: v9 = v5 & v12 @ 3
n6: v11 = v7 / v8 @ 3
n7: v14 = v9 | v11 @ 4
n8: v15 = v8 + v9 @ 4
|};
  }
