(** A workload: a named behaviour plus schedule, defined in the text
    DFG format. *)

open Mclock_dfg
open Mclock_sched

type t = {
  name : string;
  description : string;
  source : string;
  constraints : (Op.t * int) list;
      (** resource bounds for the fallback list scheduler (only used
          when the source carries no step annotations) *)
}

val graph : t -> Graph.t

(** From the source's annotations, or list-scheduled under
    [constraints] when the source has none. *)
val schedule : t -> Schedule.t
val pp : Format.formatter -> t -> unit
