(* HAL benchmark (Paulin & Knight, 1989) — Table 2.

   The classic differential-equation solver (one Euler step of
   y'' + 3xy' + 3y = 0): multiplier-dominated, four control steps,
   with a comparison producing the loop-continue flag.  The paper's
   Table 2 conventional allocation — add, mul, mul+add and mul+cmp
   ALUs — matches this operation mix. *)

let t : Workload.t =
  {
    Workload.name = "hal";
    description = "HAL differential-equation solver [Paulin/Knight 89]";
    constraints = [];
    source =
      {|
dfg hal
inputs x y u dx a
outputs u1 y1 x1 c
n1: t1 = 3 * x @ 1
n2: t2 = u * dx @ 1
n3: x1 = x + dx @ 1
n4: t3 = t1 * t2 @ 2
n5: t4 = 3 * y @ 2
n6: y1 = t2 + y @ 2
n7: c = x1 > a @ 2
n8: t5 = u - t3 @ 3
n9: t6 = t4 * dx @ 3
n10: u1 = t5 - t6 @ 4
|};
  }
