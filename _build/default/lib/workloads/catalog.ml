(* All bundled workloads. *)

let all = [ Motivating.t; Facet.t; Hal.t; Biquad.t; Bandpass.t; Ewf.t; Fir.t ]

(* The four benchmarks of the paper's Tables 1-4, in table order. *)
let paper_tables = [ Facet.t; Hal.t; Biquad.t; Bandpass.t ]

(* Additional standard HLS benchmarks beyond the paper's evaluation. *)
let extended = [ Ewf.t; Fir.t ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all
