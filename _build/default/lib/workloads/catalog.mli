(** All bundled workloads. *)

val all : Workload.t list

val paper_tables : Workload.t list
(** FACET, HAL, Biquad, Band-Pass — the paper's Tables 1–4 order. *)

val extended : Workload.t list
(** Standard HLS benchmarks beyond the paper's evaluation (EWF, FIR). *)

val find : string -> Workload.t option
