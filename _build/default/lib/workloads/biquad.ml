(* Biquad filter benchmark (Green & Turner limit-cycle study) —
   Table 3.

   A cascade of two direct-form biquad sections: each computes
   w = x - a1.d1 - a2.d2 and y = b0.w + b1.d1 + b2.d2 on the stored
   states d1/d2, the second section fed by the first's output.  The
   result is the multiply/accumulate-heavy, register-rich behaviour
   behind the paper's Table 3 (ALUs dominated by mul+add combinations,
   18 memory cells). *)

let t : Workload.t =
  {
    Workload.name = "biquad";
    description = "two-section biquad filter [Green/Turner 88]";
    constraints = [];
    source =
      {|
dfg biquad
inputs x a1 a2 b0 b1 b2 d1 d2 c1 c2 e0 e1 e2 f1 f2
outputs y2 w1 w2
# section 1
n1: p1 = a1 * d1 @ 1
n2: p2 = a2 * d2 @ 1
n3: s1 = x - p1 @ 2
n4: w1 = s1 - p2 @ 3
n5: q0 = b0 * w1 @ 4
n6: q1 = b1 * d1 @ 2
n7: q2 = b2 * d2 @ 2
n8: s2 = q0 + q1 @ 5
n9: y1 = s2 + q2 @ 6
# section 2
n10: r1 = c1 * f1 @ 3
n11: r2 = c2 * f2 @ 3
n12: u1 = y1 - r1 @ 7
n13: w2 = u1 - r2 @ 8
n14: g0 = e0 * w2 @ 9
n15: g1 = e1 * f1 @ 4
n16: g2 = e2 * f2 @ 5
n17: s3 = g0 + g1 @ 10
n18: y2 = s3 + g2 @ 11
|};
  }
