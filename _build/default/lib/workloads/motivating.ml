(* The paper's motivating example (Fig. 1): a 6-operation add/subtract
   behaviour scheduled in 5 steps.

   Circuit 1 (minimal, single clock) binds N1,N2,N3 to the left ALU
   (busy T1,T2,T3) and N4,N5,N6 to the right ALU (busy T3,T4,T5);
   Circuit 2 (two clocks) partitions the nodes by odd/even step.  The
   dependencies below reproduce exactly that step/occupancy pattern. *)

let t : Workload.t =
  {
    Workload.name = "motivating";
    description = "Fig. 1 example: 6 add/sub operations in 5 steps";
    constraints = [];
    source =
      {|
dfg motivating
inputs a b c d e f
outputs out
n1: t1 = a + b @ 1
n2: t2 = t1 - c @ 2
n3: t3 = t2 + d @ 3
n4: t4 = e - f @ 3
n5: t5 = t4 + t2 @ 4
n6: out = t5 - t3 @ 5
|};
  }
