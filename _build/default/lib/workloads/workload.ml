(* A workload: a named behaviour with its schedule, as the paper's
   experiments consume them.  The graphs are written in the text DFG
   format (with "@ step" schedule annotations) and parsed at first use,
   which keeps the benchmark definitions readable and exercises the
   parser on every run.  A workload without annotations is scheduled by
   resource-constrained list scheduling under its declared bounds. *)

open Mclock_dfg
open Mclock_sched

type t = {
  name : string;
  description : string;
  source : string; (* text-format DFG, optionally with annotations *)
  constraints : (Op.t * int) list;
      (* resource bounds for the fallback scheduler (unused when the
         source carries step annotations) *)
}

let graph t = (Parse.parse_string t.source).Parse.graph

let schedule t =
  let parsed = Parse.parse_string t.source in
  match parsed.Parse.steps with
  | _ :: _ -> Schedule.create parsed.Parse.graph parsed.Parse.steps
  | [] -> List_sched.run ~constraints:t.constraints parsed.Parse.graph

let pp ppf t = Fmt.pf ppf "%s: %s" t.name t.description
