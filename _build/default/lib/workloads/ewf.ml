(* Elliptic wave filter benchmark (beyond the paper's four).

   A fifth-order wave-digital-filter-style ladder reconstructed as four
   two-multiplier adaptor sections plus an output/state combination
   chain, reproducing the classic EWF operation census used throughout
   the HLS literature: 34 operations, 26 additions + 8 multiplications,
   with a long critical path.  Multiplier coefficients are literal
   constants, as in the original benchmark.  Scheduled on demand by
   list scheduling under 3 adders / 2 multipliers. *)

let adaptor ~prefix ~input ~state_a ~state_b ~coeff1 ~coeff2 =
  Printf.sprintf
    {|%s1 = %s + %s
%s2 = %s1 * %d
%s3 = %s2 + %s
%s4 = %s3 * %d
%s5 = %s4 + %s1
%s6 = %s5 + %s
%s7 = %s6 + %s3
|}
    prefix input state_a prefix prefix coeff1 prefix prefix state_b prefix
    prefix coeff2 prefix prefix prefix prefix prefix state_a prefix prefix
    prefix

let source =
  "dfg ewf\n"
  ^ "inputs x s1 s2 s3 s4 s5 s6 s7 s8 s9\n"
  ^ "outputs y t1 t2\n"
  ^ adaptor ~prefix:"a" ~input:"x" ~state_a:"s1" ~state_b:"s2" ~coeff1:3
      ~coeff2:5
  ^ adaptor ~prefix:"b" ~input:"a7" ~state_a:"s3" ~state_b:"s4" ~coeff1:7
      ~coeff2:3
  ^ adaptor ~prefix:"c" ~input:"b7" ~state_a:"s5" ~state_b:"s6" ~coeff1:5
      ~coeff2:7
  ^ adaptor ~prefix:"d" ~input:"c7" ~state_a:"s7" ~state_b:"s8" ~coeff1:3
      ~coeff2:5
  ^ {|u1 = a5 + b5
u2 = c5 + d5
u3 = u1 + u2
y = u3 + d7
t1 = u1 + s9
t2 = u2 + x
|}

let t : Workload.t =
  {
    Workload.name = "ewf";
    description = "elliptic wave filter (26 add / 8 mul, EWF census)";
    constraints = [ (Mclock_dfg.Op.Add, 3); (Mclock_dfg.Op.Mul, 2) ];
    source;
  }
