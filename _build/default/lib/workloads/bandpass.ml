(* Band-pass filter benchmark (Kung, Whitehouse & Kailath) — Table 4.

   A fourth-order IIR band-pass in transposed direct form II: one
   output accumulation plus four state updates
   s_k' = b_k.x - a_k.y plus the next state, serialized over a long
   schedule — the few-ALU / many-register shape of the paper's Table 4
   (conventional allocation: two add/sub ALUs, one multiplier, 23
   memory cells). *)

let t : Workload.t =
  {
    Workload.name = "bandpass";
    description = "4th-order IIR band-pass filter [Kung/Whitehouse/Kailath]";
    constraints = [];
    source =
      {|
dfg bandpass
inputs x b0 b1 b2 b3 b4 a1 a2 a3 a4 s1 s2 s3 s4
outputs y t1 t2 t3 t4
n1: m0 = b0 * x @ 1
n2: y = m0 + s1 @ 2
n3: p1 = b1 * x @ 2
n4: q1 = a1 * y @ 3
n5: d1 = p1 - q1 @ 4
n6: t1 = d1 + s2 @ 5
n7: p2 = b2 * x @ 3
n8: q2 = a2 * y @ 4
n9: d2 = p2 - q2 @ 5
n10: t2 = d2 + s3 @ 6
n11: p3 = b3 * x @ 5
n12: q3 = a3 * y @ 6
n13: d3 = p3 - q3 @ 7
n14: t3 = d3 + s4 @ 8
n15: p4 = b4 * x @ 6
n16: q4 = a4 * y @ 7
n17: t4 = p4 - q4 @ 9
|};
  }
