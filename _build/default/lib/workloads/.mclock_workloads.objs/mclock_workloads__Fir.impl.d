lib/workloads/fir.ml: Mclock_dfg Workload
