lib/workloads/ewf.ml: Mclock_dfg Printf Workload
