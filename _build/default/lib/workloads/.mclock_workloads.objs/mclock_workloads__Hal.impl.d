lib/workloads/hal.ml: Workload
