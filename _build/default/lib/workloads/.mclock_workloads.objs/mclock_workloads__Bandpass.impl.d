lib/workloads/bandpass.ml: Workload
