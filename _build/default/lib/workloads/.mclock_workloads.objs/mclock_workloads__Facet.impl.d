lib/workloads/facet.ml: Workload
