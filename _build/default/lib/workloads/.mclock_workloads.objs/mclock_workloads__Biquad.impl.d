lib/workloads/biquad.ml: Workload
