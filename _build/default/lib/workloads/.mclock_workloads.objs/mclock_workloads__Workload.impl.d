lib/workloads/workload.ml: Fmt List_sched Mclock_dfg Mclock_sched Op Parse Schedule
