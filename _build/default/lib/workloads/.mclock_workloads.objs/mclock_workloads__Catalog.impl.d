lib/workloads/catalog.ml: Bandpass Biquad Ewf Facet Fir Hal List Motivating String Workload
