lib/workloads/workload.mli: Format Graph Mclock_dfg Mclock_sched Op Schedule
