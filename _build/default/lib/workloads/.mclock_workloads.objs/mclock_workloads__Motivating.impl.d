lib/workloads/motivating.ml: Workload
