(** The split allocation method (paper §4.1): partition the schedule by
    clock, allocate each partition with a conventional allocator on its
    local time axis, then clean up (drop duplicated input registers,
    connect pseudo-I/O directly, split latch READ/WRITE conflicts). *)

open Mclock_sched

type params = { tech : Mclock_tech.Library.t; width : int }

val default_params : params

type cleanup_stats = {
  pseudo_input_registers_removed : int;
  cross_connections : int;
  classes_split : int;
}

type result = {
  design : Mclock_rtl.Design.t;
  stats : cleanup_stats;
  reg_classes : Reg_alloc.reg_class list;
  alus : Alu_alloc.alu list;
}

val run : ?params:params -> n:int -> name:string -> Schedule.t -> result

val allocate :
  ?params:params -> n:int -> name:string -> Schedule.t -> Mclock_rtl.Design.t

val render_partitions : n:int -> Schedule.t -> string
(** Fig. 5-style rendering of the original and per-partition local
    schedules. *)
