(* Conventional single-clock allocation — the SYNTEST-like baseline of
   the paper's tables.

   Flip-flop registers, one free-running clock, classic left-edge
   register merging and greedy ALU merging with no partition
   constraints.  Two variants:
   - non-gated: the clock reaches every register every cycle and the
     controller re-emits (don't-care-filled) controls every step;
   - gated [10]: register clocks are gated to load cycles, ALUs get
     operand isolation, and idle controls hold — the "conventional
     power management" the paper compares against. *)


type params = { tech : Mclock_tech.Library.t; width : int }

let default_params = { tech = Mclock_tech.Cmos08.t; width = 4 }

let allocate ?(params = default_params) ~gated ~name schedule =
  let problem = Lifetime.analyze ~n:1 schedule in
  let reg_classes =
    Reg_alloc.allocate ~kind:Mclock_tech.Library.Register problem
  in
  let partitions = Partition.map ~n:1 schedule in
  (* Conventional allocators bias toward fewer, multifunction ALUs
     (minimal resources); 1.6 reproduces the paper's baseline shapes. *)
  let alu_config =
    {
      Alu_alloc.tech = params.tech;
      width = params.width;
      merge = true;
      merge_threshold = 1.6;
    }
  in
  let alus = Alu_alloc.allocate ~config:alu_config ~partitions schedule in
  let style =
    if gated then Mclock_rtl.Design.gated_style
    else Mclock_rtl.Design.conventional_style
  in
  let idle_controls = if gated then `Hold else `Zero in
  Structure.build
    {
      Structure.tech = params.tech;
      width = params.width;
      style;
      idle_controls;
      park_idle_muxes = false;
      name;
    }
    problem reg_classes alus
