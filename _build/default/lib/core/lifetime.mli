(** READ/WRITE lifetime analysis over a schedule (paper §4.2, Fig. 6),
    and the allocation-problem record the allocators transform. *)

open Mclock_dfg
open Mclock_sched

type source = S_var of Var.t | S_const of int

val source_equal : source -> source -> bool
val pp_source : Format.formatter -> source -> unit

type usage = {
  var : Var.t;
  write_step : int;  (** 0 for primary inputs *)
  read_steps : int list;  (** sorted ascending *)
  partition : int;  (** 0 for port-direct inputs *)
  is_input : bool;
  is_output : bool;
  registered_input : bool;
      (** input sampled into a dedicated register, reloaded at the end
          of the padded final step of each computation *)
}

type transfer = {
  t_src : Var.t;
  t_dest : Var.t;
  t_step : int;  (** destination latched at the end of this step *)
  t_partition : int;
}

type problem = {
  schedule : Schedule.t;
  n : int;
  padded_steps : int;  (** [num_steps] rounded up to a multiple of [n] *)
  usages : usage Var.Map.t;
  node_operands : source list Node.Map.t;
  transfers : transfer list;
}

val padded_steps : n:int -> num_steps:int -> int

val analyze : ?register_inputs:bool -> n:int -> Schedule.t -> problem
(** The initial problem: original operands, no transfers; primary
    outputs persist to the final step.  [register_inputs] (default
    true) samples each input into a dedicated register unless it is
    still read at the padded final step. *)

val usage : problem -> Var.t -> usage
(** Raises [Invalid_argument] on an unknown variable. *)

val last_read : usage -> int

val interval :
  ?padded:int ->
  kind:Mclock_tech.Library.storage_kind ->
  usage ->
  Mclock_util.Interval.t
(** Storage-occupancy interval: registers allow same-step read+write
    ([w+1, last]); latches need fully disjoint spans ([w, last]);
    registered inputs occupy [0, padded] and never share.  Raises
    [Invalid_argument] for port-direct inputs. *)

val problem_interval :
  problem -> kind:Mclock_tech.Library.storage_kind -> usage -> Mclock_util.Interval.t

val stored_usages : problem -> usage list
(** All variables needing storage (produced vars + registered inputs). *)

val registered_inputs : problem -> Var.Set.t

val pp_usage : Format.formatter -> usage -> unit
val pp_transfer : Format.formatter -> transfer -> unit

val render_table : problem -> string
(** Fig. 6-style lifetime table (W/R marks per step). *)
