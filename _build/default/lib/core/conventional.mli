(** Conventional single-clock allocation (the SYNTEST-like baseline):
    flip-flops, left-edge register merging, greedy ALU merging; with
    [gated] the clock-gated + operand-isolated power-managed variant. *)

open Mclock_sched

type params = { tech : Mclock_tech.Library.t; width : int }

val default_params : params

val allocate :
  ?params:params -> gated:bool -> name:string -> Schedule.t -> Mclock_rtl.Design.t
