(** Register allocation: left-edge merging of same-partition variables
    with disjoint storage-occupancy intervals (paper §4.2, step 2). *)

open Mclock_dfg

type reg_class = {
  rc_id : int;
  rc_partition : int;
  rc_vars : Var.t list;
}

val allocate :
  kind:Mclock_tech.Library.storage_kind -> Lifetime.problem -> reg_class list
(** One class per storage element; variables merge only within their
    partition, with latch semantics requiring fully disjoint spans. *)

val class_of : reg_class list -> Var.t -> reg_class option
val class_of_exn : reg_class list -> Var.t -> reg_class

val pp_class : Format.formatter -> reg_class -> unit
