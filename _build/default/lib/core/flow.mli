(** End-to-end synthesis flow: one entry per design style, plus the
    five-design suite each of the paper's tables reports. *)

open Mclock_sched

type method_ =
  | Conventional_non_gated
  | Conventional_gated
  | Integrated of int  (** clock count *)
  | Split of int

val method_label : method_ -> string
(** The paper's row labels, e.g. "Conven. Alloc. (Gated Clock)". *)

type params = { tech : Mclock_tech.Library.t; width : int }

val default_params : params

val synthesize :
  ?params:params -> method_:method_ -> name:string -> Schedule.t -> Mclock_rtl.Design.t

val standard_suite :
  ?params:params -> name:string -> Schedule.t -> (method_ * Mclock_rtl.Design.t) list
(** Non-gated, gated, and integrated 1/2/3-clock designs, in the
    tables' row order. *)
