(* Cross-partition transfer insertion — Step 1 of the integrated
   allocation (paper §4.2, Fig. 6).

   An operation whose variable operands were written in different clock
   partitions would see its ALU inputs change at two different phase
   times, spreading combinational activity across the macro-cycle.  The
   fix: pick the partition of the latest-written operand as the target,
   and for every other-partition operand v introduce a temporary T that
   copies v into the target partition at the very step the latest
   operand is written (a storage-to-storage move, no ALU involved).
   The consuming node then reads T instead of v; v's READ at the
   consumer step disappears (shortening v's lifetime exactly as the
   paper's Fig. 6 deletes the step-3 READ of X).

   Primary inputs live in ports, are stable for a whole computation and
   belong to no partition, so they never need transfers. *)

open Mclock_dfg
open Mclock_sched

let temp_name src step = Printf.sprintf "%s_xfer%d" (Var.name src) step

(* Rebuild usages from effective operands + transfers: read steps come
   from consuming nodes and transfer source reads; temps get fresh
   usage records. *)
let rebuild_usages (problem : Lifetime.problem) node_operands transfers =
  let schedule = problem.Lifetime.schedule in
  let num_steps = Schedule.num_steps schedule in
  let add_read var step acc =
    let existing = Option.value ~default:[] (Var.Map.find_opt var acc) in
    Var.Map.add var (step :: existing) acc
  in
  let reads =
    Node.Map.fold
      (fun node_id sources acc ->
        let step = Schedule.step_of_id schedule node_id in
        List.fold_left
          (fun acc src ->
            match src with
            | Lifetime.S_var v -> add_read v step acc
            | Lifetime.S_const _ -> acc)
          acc sources)
      node_operands Var.Map.empty
  in
  let reads =
    List.fold_left
      (fun acc tr -> add_read tr.Lifetime.t_src tr.Lifetime.t_step acc)
      reads transfers
  in
  let read_steps var ~is_output =
    let base = Option.value ~default:[] (Var.Map.find_opt var reads) in
    let base = if is_output then num_steps :: base else base in
    List.sort_uniq Int.compare base
  in
  let original =
    Var.Map.mapi
      (fun var (u : Lifetime.usage) ->
        { u with Lifetime.read_steps = read_steps var ~is_output:u.Lifetime.is_output })
      problem.Lifetime.usages
  in
  List.fold_left
    (fun acc tr ->
      let var = tr.Lifetime.t_dest in
      let u =
        {
          Lifetime.var;
          write_step = tr.Lifetime.t_step;
          read_steps = read_steps var ~is_output:false;
          partition = tr.Lifetime.t_partition;
          is_input = false;
          is_output = false;
          registered_input = false;
        }
      in
      Var.Map.add var u acc)
    original transfers

let insert (problem : Lifetime.problem) =
  let n = problem.Lifetime.n in
  if n <= 1 then problem
  else begin
    let schedule = problem.Lifetime.schedule in
    let graph = Schedule.graph schedule in
    let transfers = ref [] in
    (* Find or create the transfer of [src] into [partition] at [step]. *)
    let transfer_into ~src ~partition ~step =
      match
        List.find_opt
          (fun tr ->
            Var.equal tr.Lifetime.t_src src
            && tr.Lifetime.t_partition = partition
            && tr.Lifetime.t_step = step)
          !transfers
      with
      | Some tr -> tr.Lifetime.t_dest
      | None ->
          let dest = Var.v (temp_name src step) in
          transfers :=
            {
              Lifetime.t_src = src;
              t_dest = dest;
              t_step = step;
              t_partition = partition;
            }
            :: !transfers;
          dest
    in
    let rewrite node =
      let sources =
        Node.Map.find (Node.id node) problem.Lifetime.node_operands
      in
      let operand_info =
        List.map
          (fun src ->
            match src with
            | Lifetime.S_const _ -> (src, None)
            | Lifetime.S_var v ->
                let u = Lifetime.usage problem v in
                if u.Lifetime.is_input then (src, None)
                else (src, Some u))
          sources
      in
      let stored =
        List.filter_map (fun (_, u) -> u) operand_info
      in
      let partitions =
        Mclock_util.List_ext.dedup ~compare:Int.compare
          (List.map (fun u -> u.Lifetime.partition) stored)
      in
      if List.length partitions <= 1 then sources
      else begin
        (* Target: partition of the latest-written stored operand. *)
        let target =
          Mclock_util.List_ext.max_by (fun u -> u.Lifetime.write_step) stored
        in
        let q = target.Lifetime.partition in
        let x = target.Lifetime.write_step in
        List.map
          (fun (src, info) ->
            match info with
            | None -> src
            | Some u ->
                if u.Lifetime.partition = q then src
                else begin
                  assert (u.Lifetime.write_step < x);
                  Lifetime.S_var
                    (transfer_into ~src:u.Lifetime.var ~partition:q ~step:x)
                end)
          operand_info
      end
    in
    let node_operands =
      List.fold_left
        (fun acc node -> Node.Map.add (Node.id node) (rewrite node) acc)
        Node.Map.empty (Graph.nodes graph)
    in
    let transfers = List.rev !transfers in
    let usages = rebuild_usages problem node_operands transfers in
    { problem with Lifetime.node_operands; transfers; usages }
  end
