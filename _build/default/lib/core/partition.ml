(* Clock partitioning of a schedule (paper §4.1).

   With n non-overlapping clocks, the nodes scheduled in step t belong
   to partition ((t-1) mod n) + 1 — equivalently the paper's
   "t mod n = k for partitions 1..n-1, t mod n = 0 for partition n".
   Local steps renumber a partition's steps 1', 2', ... so that any
   conventional allocator can treat each partition as a standalone
   schedule (split allocation). *)

open Mclock_dfg
open Mclock_sched

let of_step ~n step =
  if n < 1 then invalid_arg "Partition.of_step: n must be >= 1";
  if step < 1 then invalid_arg "Partition.of_step: step must be >= 1";
  ((step - 1) mod n) + 1

let local_of_global ~n step = ((step - 1) / n) + 1

let global_of_local ~n ~partition local =
  if partition < 1 || partition > n then
    invalid_arg "Partition.global_of_local: partition out of range";
  ((local - 1) * n) + partition

let of_node ~n schedule node = of_step ~n (Schedule.step schedule node)

(* node id -> partition for a whole schedule. *)
let map ~n schedule =
  List.fold_left
    (fun acc node ->
      Node.Map.add (Node.id node) (of_node ~n schedule node) acc)
    Node.Map.empty
    (Graph.nodes (Schedule.graph schedule))

let nodes_of ~n schedule partition =
  List.filter
    (fun node -> of_node ~n schedule node = partition)
    (Graph.nodes (Schedule.graph schedule))

(* Steps of a partition within 1..T. *)
let steps_of ~n ~num_steps partition =
  List.filter
    (fun s -> of_step ~n s = partition)
    (Mclock_util.List_ext.range 1 num_steps)

(* The partition a variable lives in: the partition of the step that
   writes it.  Primary inputs are written by the environment; they get
   partition 0 (no phase clock drives them). *)
let of_var ~n schedule var =
  match Graph.producer (Schedule.graph schedule) var with
  | None -> 0
  | Some node -> of_node ~n schedule node

(* Number of local steps partition [p] has in a T-step schedule. *)
let local_steps ~n ~num_steps partition =
  List.length (steps_of ~n ~num_steps partition)
