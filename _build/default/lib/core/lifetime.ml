(* READ/WRITE lifetime analysis over a schedule (paper §4.2, Fig. 6).

   The allocation problem tracks, per variable: the step writing it,
   the steps reading it, and its clock partition.  Cross-partition
   transfers (Transfer) rewrite this structure before register
   allocation, so it is kept explicit rather than recomputed from the
   graph.

   Timing model: a variable written at step w is available from the end
   of w; reads happen during their step.  Storage-occupancy intervals
   differ by storage kind:
   - register (edge-triggered): the element can be read and re-written
     in the same step, so the occupancy is [w+1, last_read];
   - latch (level-sensitive): a write in step t corrupts the old value
     during t, so the occupancy is [w, last_read] — merging then
     requires fully disjoint READ/WRITE spans, as the paper demands.

   Primary inputs: by default each is sampled into a dedicated input
   register, reloaded from its port at the end of the (padded) final
   step of every computation, so the next computation reads stable
   values from cycle one — the sample-and-hold front end the paper's
   memory-cell counts imply.  An input that is still read at that final
   step cannot be re-sampled there and stays port-direct; with
   [register_inputs:false] all inputs stay port-direct.

   Primary outputs persist to the end of the computation (the tap must
   observe them), so their last read is forced to the final step. *)

open Mclock_dfg
open Mclock_sched

type source = S_var of Var.t | S_const of int

let source_equal a b =
  match (a, b) with
  | S_var u, S_var v -> Var.equal u v
  | S_const x, S_const y -> x = y
  | S_var _, S_const _ | S_const _, S_var _ -> false

let pp_source ppf = function
  | S_var v -> Var.pp ppf v
  | S_const c -> Fmt.pf ppf "#%d" c

type usage = {
  var : Var.t;
  write_step : int; (* 0 for primary inputs *)
  read_steps : int list; (* sorted ascending *)
  partition : int; (* 0 for port-direct inputs *)
  is_input : bool;
  is_output : bool;
  registered_input : bool; (* input sampled into a dedicated register *)
}

type transfer = {
  t_src : Var.t;
  t_dest : Var.t;
  t_step : int; (* dest latched at the end of this step *)
  t_partition : int; (* partition of the destination *)
}

type problem = {
  schedule : Schedule.t;
  n : int; (* number of clock partitions *)
  padded_steps : int; (* num_steps rounded up to a multiple of n *)
  usages : usage Var.Map.t;
  node_operands : source list Node.Map.t; (* effective operands per node *)
  transfers : transfer list;
}

let padded_steps ~n ~num_steps = (num_steps + n - 1) / n * n

let analyze ?(register_inputs = true) ~n schedule =
  let graph = Schedule.graph schedule in
  let num_steps = Schedule.num_steps schedule in
  let padded = padded_steps ~n ~num_steps in
  let read_map =
    List.fold_left
      (fun acc node ->
        let s = Schedule.step schedule node in
        List.fold_left
          (fun acc v ->
            let existing = Option.value ~default:[] (Var.Map.find_opt v acc) in
            Var.Map.add v (s :: existing) acc)
          acc (Node.operand_vars node))
      Var.Map.empty (Graph.nodes graph)
  in
  let usage_of var =
    let is_input = Graph.is_input graph var in
    let is_output = Graph.is_output graph var in
    let write_step =
      match Graph.producer graph var with
      | None -> 0
      | Some node -> Schedule.step schedule node
    in
    let read_steps =
      Option.value ~default:[] (Var.Map.find_opt var read_map)
      |> List.sort_uniq Int.compare
    in
    let read_steps =
      if is_output then List.sort_uniq Int.compare (num_steps :: read_steps)
      else read_steps
    in
    let last = match List.rev read_steps with [] -> 0 | r :: _ -> r in
    (* An input still read at the re-sampling step cannot be registered
       there: its old value would be corrupted while in use. *)
    let registered_input = is_input && register_inputs && last < padded in
    let partition =
      if registered_input then ((padded - 1) mod n) + 1
      else Partition.of_var ~n schedule var
    in
    { var; write_step; read_steps; partition; is_input; is_output; registered_input }
  in
  let usages =
    List.fold_left
      (fun acc var -> Var.Map.add var (usage_of var) acc)
      Var.Map.empty (Graph.variables graph)
  in
  let node_operands =
    List.fold_left
      (fun acc node ->
        let sources =
          List.map
            (function
              | Node.Operand_var v -> S_var v
              | Node.Operand_const c -> S_const c)
            (Node.operands node)
        in
        Node.Map.add (Node.id node) sources acc)
      Node.Map.empty (Graph.nodes graph)
  in
  { schedule; n; padded_steps = padded; usages; node_operands; transfers = [] }

let usage problem var =
  match Var.Map.find_opt var problem.usages with
  | Some u -> u
  | None ->
      invalid_arg
        (Printf.sprintf "Lifetime.usage: unknown variable %s" (Var.name var))

let last_read usage =
  match List.rev usage.read_steps with
  | [] -> usage.write_step (* written, never read: dies immediately *)
  | last :: _ -> last

(* Storage-occupancy interval; see the header comment for semantics.
   Registered inputs occupy their element for the whole (padded)
   computation including the re-sampling step, so they never share. *)
let interval ?padded ~kind usage =
  if usage.is_input && not usage.registered_input then
    invalid_arg "Lifetime.interval: port-direct inputs live in ports";
  if usage.registered_input then
    (* Occupies through the re-sampling step *and* the first step of
       the next computation (cyclic execution), so nothing shares. *)
    let hi =
      match padded with Some p -> p + 1 | None -> max 1 (last_read usage) + 1
    in
    Mclock_util.Interval.make 0 hi
  else
    let death = max (last_read usage) usage.write_step in
    match (kind : Mclock_tech.Library.storage_kind) with
    | Mclock_tech.Library.Register ->
        Mclock_util.Interval.make (usage.write_step + 1)
          (max (usage.write_step + 1) death)
    | Mclock_tech.Library.Latch ->
        Mclock_util.Interval.make usage.write_step (max usage.write_step death)

let problem_interval problem ~kind u =
  interval ~padded:problem.padded_steps ~kind u

(* Variables that need a storage element: everything produced, plus the
   registered inputs. *)
let stored_usages problem =
  Var.Map.fold
    (fun _ u acc ->
      if u.is_input && not u.registered_input then acc else u :: acc)
    problem.usages []
  |> List.sort (fun a b -> Var.compare a.var b.var)

let registered_inputs problem =
  Var.Map.fold
    (fun v u acc -> if u.registered_input then Var.Set.add v acc else acc)
    problem.usages Var.Set.empty

let pp_usage ppf u =
  Fmt.pf ppf "%a: w=%d reads=[%a] part=%d%s%s%s" Var.pp u.var u.write_step
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    u.read_steps u.partition
    (if u.is_input then " in" else "")
    (if u.registered_input then "(reg)" else "")
    (if u.is_output then " out" else "")

let pp_transfer ppf t =
  Fmt.pf ppf "%a -> %a @ T%d (partition %d)" Var.pp t.t_src Var.pp t.t_dest
    t.t_step t.t_partition

(* Lifetime table in the style of Fig. 6: one row per variable, one
   column per step, W/R/| marks. *)
let render_table problem =
  let num_steps = Schedule.num_steps problem.schedule in
  let header =
    "var"
    :: List.map (fun s -> Printf.sprintf "T%d" s)
         (Mclock_util.List_ext.range 1 num_steps)
  in
  let aligns = List.map (fun _ -> Mclock_util.Table.Left) header in
  let table = Mclock_util.Table.create ~header ~aligns () in
  let sorted =
    Var.Map.bindings problem.usages
    |> List.map snd
    |> List.sort (fun a b ->
           let c = Int.compare a.write_step b.write_step in
           if c <> 0 then c else Var.compare a.var b.var)
  in
  List.iter
    (fun u ->
      let death = last_read u in
      let cell s =
        let w = (not u.is_input) && s = u.write_step in
        let r = List.mem s u.read_steps in
        if w && r then "WR"
        else if w then "W"
        else if r then "R"
        else if s > u.write_step && s < death then "|"
        else ""
      in
      Mclock_util.Table.add_row table
        (Var.name u.var
        :: List.map cell (Mclock_util.List_ext.range 1 num_steps)))
    sorted;
  Mclock_util.Table.render table
