(** Cross-partition transfer insertion — Step 1 of the integrated
    allocation (paper §4.2, Fig. 6): unify each operation's stored
    operands into one partition by copying stragglers through temporary
    variables at the latest operand's write step. *)

val temp_name : Mclock_dfg.Var.t -> int -> string
(** Name of the temporary created for a (source, step) transfer. *)

val insert : Lifetime.problem -> Lifetime.problem
(** Identity when [n <= 1]; otherwise returns the problem with rewritten
    node operands, the transfer list, and rebuilt usages (source reads
    shortened to the transfer step, temps added). *)
