(* Interconnect-aware register binding.

   Plain left-edge packing (Reg_alloc) minimizes the number of storage
   elements but is blind to wiring: merging two variables written by
   different ALUs forces a mux in front of the shared element, and
   scattering one ALU's results over many elements widens its
   consumers' port muxes.  This binder keeps the left-edge scan (so the
   element count stays minimal — the packing is still greedy over
   interval-disjoint tracks) but, when several tracks can accept a
   variable, scores them by interconnect affinity:

   + same writer: the variable's producing ALU already writes the
     track (no new storage-mux input);
   + same readers: an ALU port already fed by the track also reads
     this variable (no new port-mux input).

   The allocators expose this as [~binding:`Mux_aware] next to the
   default [`Left_edge]; the Ablations bench quantifies the mux-input
   difference. *)

open Mclock_dfg
open Mclock_sched

type strategy = [ `Left_edge | `Mux_aware ]

(* The producing ALU id of a variable (None for transfers: their writer
   is a storage element, handled as a distinct pseudo-writer). *)
let writer_of (problem : Lifetime.problem) alus var =
  match Graph.producer (Schedule.graph problem.Lifetime.schedule) var with
  | Some node -> (
      match Alu_alloc.alu_of alus (Node.id node) with
      | Some alu -> `Alu alu.Alu_alloc.alu_id
      | None -> `None)
  | None -> (
      match
        List.find_opt
          (fun tr -> Var.equal tr.Lifetime.t_dest var)
          problem.Lifetime.transfers
      with
      | Some tr -> `Transfer_of tr.Lifetime.t_src
      | None -> `None)

(* The ALU ports reading a variable: (alu id, port index) pairs. *)
let readers_of (problem : Lifetime.problem) alus var =
  let graph = Schedule.graph problem.Lifetime.schedule in
  List.concat_map
    (fun node ->
      match Alu_alloc.alu_of alus (Node.id node) with
      | None -> []
      | Some alu ->
          let operands =
            Node.Map.find (Node.id node) problem.Lifetime.node_operands
          in
          List.filteri
            (fun _ src -> Lifetime.source_equal src (Lifetime.S_var var))
            operands
          |> List.mapi (fun i _ -> (alu.Alu_alloc.alu_id, i)))
    (Graph.nodes graph)

let allocate ?(strategy = `Left_edge) ~kind (problem : Lifetime.problem) alus =
  match strategy with
  | `Left_edge -> Reg_alloc.allocate ~kind problem
  | `Mux_aware ->
      let groups =
        Mclock_util.List_ext.group_by
          ~key:(fun u -> u.Lifetime.partition)
          ~compare_key:Int.compare
          (Lifetime.stored_usages problem)
      in
      let next = ref 0 in
      List.concat_map
        (fun (partition, members) ->
          let sorted =
            List.sort
              (fun a b ->
                Mclock_util.Interval.compare_left_edge
                  (Lifetime.problem_interval problem ~kind a)
                  (Lifetime.problem_interval problem ~kind b))
              members
          in
          (* Track: (last interval end, members rev, writers, readers). *)
          let tracks = ref [] in
          let place u =
            let itv = Lifetime.problem_interval problem ~kind u in
            let writer = writer_of problem alus u.Lifetime.var in
            let readers = readers_of problem alus u.Lifetime.var in
            let feasible =
              List.filter
                (fun (last, _, _, _) -> Mclock_util.Interval.lo itv > last)
                !tracks
            in
            match feasible with
            | [] ->
                tracks :=
                  !tracks
                  @ [ (Mclock_util.Interval.hi itv, [ u ], [ writer ], readers) ]
            | _ :: _ ->
                let score (_, _, writers, track_readers) =
                  (if List.mem writer writers then 2 else 0)
                  + List.length
                      (List.filter (fun r -> List.mem r track_readers) readers)
                in
                let best = Mclock_util.List_ext.max_by score feasible in
                tracks :=
                  List.map
                    (fun t ->
                      if t == best then
                        let _, us, ws, rs = t in
                        ( Mclock_util.Interval.hi itv,
                          u :: us,
                          writer :: ws,
                          readers @ rs )
                      else t)
                    !tracks
          in
          List.iter place sorted;
          List.map
            (fun (_, us, _, _) ->
              let id = !next in
              incr next;
              {
                Reg_alloc.rc_id = id;
                rc_partition = max 1 partition;
                rc_vars = List.rev_map (fun u -> u.Lifetime.var) us;
              })
            !tracks)
        groups
