(** ALU allocation: greedy, partition-respecting merging of operations
    into (multifunction) ALUs, costed by the technology area model
    (paper §4.2, step 3). *)

open Mclock_dfg
open Mclock_sched

type alu = {
  alu_id : int;
  alu_partition : int;
  alu_fset : Op.Set.t;
  alu_nodes : (int * int) list;  (** (node id, step) pairs *)
}

type config = {
  tech : Mclock_tech.Library.t;
  width : int;
  merge : bool;  (** false disables sharing entirely (one ALU per op) *)
  merge_threshold : float;
      (** merge when grow cost <= threshold × fresh cost; 1.0 is
          area-optimal, higher trades area for fewer ALUs *)
}

val default_config : config

val allocate :
  ?config:config -> partitions:int Node.Map.t -> Schedule.t -> alu list
(** [partitions] maps every node id to its clock partition (all 1 for a
    single-clock design). *)

val alu_of : alu list -> int -> alu option
val alu_of_exn : alu list -> int -> alu

val pp_alu : Format.formatter -> alu -> unit
