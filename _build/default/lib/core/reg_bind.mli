(** Interconnect-aware register binding: left-edge packing (so the
    element count stays minimal) with track selection scored by writer
    and reader affinity, reducing mux inputs. *)

type strategy = [ `Left_edge | `Mux_aware ]

val allocate :
  ?strategy:strategy ->
  kind:Mclock_tech.Library.storage_kind ->
  Lifetime.problem ->
  Alu_alloc.alu list ->
  Reg_alloc.reg_class list
(** [`Left_edge] (default) delegates to {!Reg_alloc.allocate};
    [`Mux_aware] uses the affinity-scored packing (needs the ALU
    binding).  Both produce the same number of storage elements. *)
