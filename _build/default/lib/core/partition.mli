(** Clock partitioning of a schedule (paper §4.1): step [t] belongs to
    partition [((t-1) mod n) + 1]; local steps renumber each
    partition's steps 1, 2, ... *)

open Mclock_dfg
open Mclock_sched

val of_step : n:int -> int -> int
val local_of_global : n:int -> int -> int
val global_of_local : n:int -> partition:int -> int -> int
val of_node : n:int -> Schedule.t -> Node.t -> int
val map : n:int -> Schedule.t -> int Node.Map.t
val nodes_of : n:int -> Schedule.t -> int -> Node.t list
val steps_of : n:int -> num_steps:int -> int -> int list

val of_var : n:int -> Schedule.t -> Var.t -> int
(** Partition of the producing step; 0 for primary inputs. *)

val local_steps : n:int -> num_steps:int -> int -> int
